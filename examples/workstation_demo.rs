//! The interactive workstation corpus: three scripted sessions — a boot
//! splash, a keystroke storm, a sprite animation — each scanning a live
//! 256×32 raster out of main storage while BitBlt races the beam and
//! keyboard/mouse traffic arrives over slow I/O.
//!
//! ```sh
//! cargo run --release --example workstation_demo              # metrics + final frames
//! cargo run --release --example workstation_demo -- --check tests/golden_frames
//! cargo run --release --example workstation_demo -- --dump /tmp/frames
//! ```
//!
//! `--check DIR` compares every scenario's frame-hash stream against the
//! committed fixtures and exits nonzero on drift; with
//! `DORADO_BLESS_FRAMES=1` it rewrites the fixtures instead (the CI
//! escape hatch for intentional rendering changes).  `--dump DIR` writes
//! the final frame of each scenario as PNG and PBM.

use dorado::emu::scenario::{run_scenario, ScenarioKind, ScenarioReport};
use dorado::io::Framebuffer;
use std::fmt::Write as _;
use std::path::Path;
use std::process::ExitCode;

/// Rebuilds a surface from a report's final frame so the dump helpers on
/// [`Framebuffer`] can render it.
fn surface(report: &ScenarioReport) -> Framebuffer {
    let mut fb = Framebuffer::new(report.width_words, report.lines);
    for &w in &report.final_frame {
        fb.push(w);
    }
    fb
}

/// A terminal-width rendering: each character cell covers 2×2 pixels.
fn ascii_preview(report: &ScenarioReport) -> String {
    let fb = surface(report);
    let (w, h) = (usize::from(report.width_words) * 16, usize::from(report.lines));
    let mut out = String::new();
    for y in (0..h).step_by(2) {
        for x in (0..w).step_by(2) {
            let lit = fb.pixel(x, y) as u8
                + fb.pixel(x + 1, y) as u8
                + fb.pixel(x, y + 1) as u8
                + fb.pixel(x + 1, y + 1) as u8;
            out.push(match lit {
                0 => ' ',
                1 => '.',
                2 => 'o',
                _ => '#',
            });
        }
        out.push('\n');
    }
    out
}

fn print_report(report: &ScenarioReport) {
    println!("== {} ==", report.name);
    println!(
        "   {} fields in {} cycles ({:.1} ms of 60 ns machine time, {:.0} fields/s)",
        report.fields,
        report.cycles,
        report.cycles as f64 * 60e-9 * 1e3,
        report.frames_per_second()
    );
    println!(
        "   display task: {} instructions = {:.2} per scanline (§7 claims ~2), {} hold cycles",
        report.display_executed,
        report.instructions_per_scanline(),
        report.display_held
    );
    println!(
        "   scan-out: {} words painted, {} underruns",
        report.painted, report.underruns
    );
    if report.input_events > 0 {
        println!(
            "   input: {} events serviced, latency mean {:.0} / max {} cycles",
            report.input_events, report.input_latency_mean, report.input_latency_max
        );
    }
    println!("{}", ascii_preview(report));
}

fn check_fixtures(dir: &Path, reports: &[ScenarioReport]) -> Result<bool, std::io::Error> {
    let bless = std::env::var_os("DORADO_BLESS_FRAMES").is_some_and(|v| v == "1");
    let mut clean = true;
    for report in reports {
        let path = dir.join(format!("{}.hashes", report.name));
        if bless {
            let mut out = String::new();
            writeln!(out, "# Golden per-field CRC64 hashes for scenario `{}`.", report.name)
                .unwrap();
            writeln!(out, "# Regenerate with DORADO_BLESS_FRAMES=1 (see tests/golden_frames.rs).")
                .unwrap();
            for h in &report.frame_hashes {
                writeln!(out, "{h:016x}").unwrap();
            }
            std::fs::create_dir_all(dir)?;
            std::fs::write(&path, out)?;
            println!("blessed {} ({} fields)", path.display(), report.fields);
            continue;
        }
        let golden: Vec<u64> = std::fs::read_to_string(&path)?
            .lines()
            .map(str::trim)
            .filter(|l| !l.is_empty() && !l.starts_with('#'))
            .map(|l| u64::from_str_radix(l, 16).expect("malformed golden hash"))
            .collect();
        if golden == report.frame_hashes {
            println!("{}: {} golden frames OK", report.name, golden.len());
        } else {
            let first = golden
                .iter()
                .zip(&report.frame_hashes)
                .position(|(a, b)| a != b)
                .unwrap_or(golden.len().min(report.frame_hashes.len()));
            eprintln!(
                "{}: FRAME HASH DRIFT at field {first} (golden {} fields, got {})",
                report.name,
                golden.len(),
                report.frame_hashes.len()
            );
            clean = false;
        }
    }
    Ok(clean)
}

fn dump_frames(dir: &Path, reports: &[ScenarioReport]) -> Result<(), std::io::Error> {
    std::fs::create_dir_all(dir)?;
    for report in reports {
        let fb = surface(report);
        let png = dir.join(format!("{}.png", report.name));
        let pbm = dir.join(format!("{}.pbm", report.name));
        std::fs::write(&png, fb.to_png())?;
        std::fs::write(&pbm, fb.to_pbm())?;
        println!("wrote {} and {}", png.display(), pbm.display());
    }
    Ok(())
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut check_dir: Option<String> = None;
    let mut dump_dir: Option<String> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--check" => check_dir = args.next().or_else(|| {
                eprintln!("--check needs a directory argument");
                std::process::exit(2);
            }),
            "--dump" => dump_dir = args.next().or_else(|| {
                eprintln!("--dump needs a directory argument");
                std::process::exit(2);
            }),
            other => {
                eprintln!("unknown argument `{other}` (expected --check DIR or --dump DIR)");
                return ExitCode::from(2);
            }
        }
    }

    let reports: Vec<ScenarioReport> = ScenarioKind::ALL
        .into_iter()
        .map(|kind| run_scenario(kind, false))
        .collect();

    if check_dir.is_none() {
        for report in &reports {
            print_report(report);
        }
    }
    if let Some(dir) = &dump_dir {
        if let Err(e) = dump_frames(Path::new(dir), &reports) {
            eprintln!("dump failed: {e}");
            return ExitCode::FAILURE;
        }
    }
    if let Some(dir) = &check_dir {
        match check_fixtures(Path::new(dir), &reports) {
            Ok(true) => {}
            Ok(false) => return ExitCode::FAILURE,
            Err(e) => {
                eprintln!("golden fixture read failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
