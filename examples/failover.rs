//! Fault injection against a cluster: kill one machine mid-workload,
//! recover it from the last epoch-barrier checkpoint, and verify the
//! recovered run reproduces the uninterrupted run's report bit for bit.
//! Then mangle packets on the wire and show the drop accounting.
//!
//! ```sh
//! cargo run --release --example failover
//! cargo run --release --example failover -- --machines=4 --epochs=60 --kill-epoch=17
//! ```
//!
//! Exits nonzero if the recovered cluster diverges from the straight run.

use dorado::cluster::{inject, ClusterConfig, ClusterSim, Exec, PacketMangler};

fn parse<T: std::str::FromStr>(flag: &str, value: &str) -> Result<T, String> {
    value
        .parse()
        .map_err(|_| format!("{flag} needs a number, got `{value}`"))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut machines = 4usize;
    let mut epochs = 60u64;
    let mut kill_epoch = 17u64;
    let mut victim = 3usize;
    let mut seed = 0xD0D0u64;
    let mut exec = Exec::Pool(0);
    for arg in std::env::args().skip(1) {
        if arg == "--sequential" {
            exec = Exec::Sequential;
            continue;
        }
        match arg.split_once('=') {
            Some(("--machines", v)) => machines = parse("--machines", v)?,
            Some(("--epochs", v)) => epochs = parse("--epochs", v)?,
            Some(("--kill-epoch", v)) => kill_epoch = parse("--kill-epoch", v)?,
            Some(("--victim", v)) => victim = parse("--victim", v)?,
            Some(("--seed", v)) => seed = parse("--seed", v)?,
            Some(("--pool", v)) => exec = Exec::Pool(parse("--pool", v)?),
            _ => return Err(format!("unknown argument `{arg}`").into()),
        }
    }

    let cfg = ClusterConfig::pairs(machines, 3, 2);
    println!(
        "failover: {machines} machine(s), {epochs} epoch(s); killing m{victim} \
         during epoch {kill_epoch} (seed {seed:#x})\n"
    );

    // The reference: the same cluster, uninterrupted.
    let mut straight = ClusterSim::build(&cfg)?;
    straight.run(epochs, exec);

    // The faulted run: crash, roll back, replay, finish — under the same
    // (production pool, by default) executor.
    let mut faulted = ClusterSim::build(&cfg)?;
    let recovery = inject::kill_and_recover(&mut faulted, epochs, kill_epoch, victim, seed, exec);
    println!(
        "recovered from a {}-byte checkpoint, replaying {} cycles",
        recovery.checkpoint_bytes, recovery.replayed_cycles
    );

    let identical_report = faulted.report() == straight.report();
    let identical_state = faulted.save_checkpoint() == straight.save_checkpoint();
    println!(
        "straight run: {} response(s); recovered run: {} response(s)",
        straight.responses(),
        faulted.responses()
    );
    println!(
        "report identical: {identical_report}; full dynamic state identical: {identical_state}\n"
    );

    // Packet mangling: corrupt destinations (fabric drops, charged to the
    // source) and lose packets on the wire, deterministically from a seed.
    let mut mangled = ClusterSim::build(&cfg)?;
    let mut mangler = PacketMangler::new(seed, 150, 50);
    mangled.run_mangled(epochs, exec, &mut |_, _, pkt| mangler.apply(pkt));
    println!(
        "mangler: {} corrupted, {} lost on the wire; fabric drops {}; {} response(s) \
         (vs {} clean)",
        mangler.corrupted,
        mangler.dropped,
        mangled.report().fabric().drops(),
        mangled.responses(),
        straight.responses()
    );

    if !(identical_report && identical_state) {
        return Err("recovered run diverged from the straight run".into());
    }
    println!("\nfailover: recovery is exact");
    Ok(())
}
