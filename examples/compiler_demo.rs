//! Compile a Mesa-like source program and run it on the simulated
//! Dorado, reporting the byte-code size and the macro-instruction cost
//! the paper's §7 table is about.
//!
//! ```sh
//! cargo run --example compiler_demo
//! ```

use dorado::emu::{mesa, suite::build_mesa};
use dorado::lang::compile;

const PROGRAM: &str = r#"
// Greatest common divisor, Euclid's algorithm.
proc gcd(a, b) {
    while b != 0 {
        let t = b;
        b = a % b;
        a = t;
    }
    return a;
}

// Recursive Fibonacci: every call is a Mesa XFER through the frame
// free list, the expensive path the paper prices at ~70 cycles.
proc fib(n) {
    if n < 2 { return n; }
    return fib(n - 1) + fib(n - 2);
}

// A little memory traffic through the cache: sum a table built in the
// scratch area.
proc tablesum(base, n) {
    let i = 0;
    let sum = 0;
    while i < n {
        aset(base, i, i * i);
        i = i + 1;
    }
    i = 0;
    while i < n {
        sum = sum + aref(base, i);
        i = i + 1;
    }
    return sum;
}

global answer;
answer = gcd(1071, 462) * 1000 + fib(12);
answer + tablesum(0x200, 10) - 285;
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("source program:\n{PROGRAM}");

    let bytes = compile(PROGRAM).map_err(|e| e.render(PROGRAM))?;
    println!("compiled to {} bytes of Mesa byte code", bytes.len());

    let mut machine = build_mesa(&bytes)?;
    let outcome = machine.run(10_000_000);
    assert!(outcome.halted(), "program did not halt: {outcome:?}");

    let result = mesa::tos(&machine);
    println!("\nresult (top of stack): {result}");
    println!("  gcd(1071, 462)  = 21       -> thousands digit x21");
    println!("  fib(12)         = 144");
    println!("  tablesum(_, 10) = 285      (added then subtracted)");
    assert_eq!(result, 21 * 1000 + 144);

    println!("\nmachine cost:");
    println!(
        "  {} microcycles (60 ns each -> {:.2} ms simulated)",
        machine.cycles(),
        machine.cycles() as f64 * 60e-9 * 1e3
    );
    let stats = machine.stats();
    println!(
        "  macroinstructions dispatched: {} ({:.1} microcycles each)",
        stats.macro_instructions,
        stats.cycles as f64 / stats.macro_instructions.max(1) as f64
    );
    println!(
        "  cache refs: {}, hits: {} ({:.1}% hit rate)",
        stats.cache_refs,
        stats.cache_hits,
        100.0 * stats.cache_hits as f64 / stats.cache_refs.max(1) as f64
    );
    println!("  held cycles: {}", stats.held_cycles());
    Ok(())
}
