//! A cluster of Dorados on one Ethernet fabric: client/server pairs run
//! the RPC microcode on the work-stealing pool executor, and the run ends
//! with the cluster-wide report — per-machine task utilization, fabric
//! bandwidth, and the request-latency SLO summary.
//!
//! ```sh
//! cargo run --release --example cluster
//! cargo run --release --example cluster -- --machines=256 --pool=0 --epochs=50
//! cargo run --release --example cluster -- --machines=16 --open-loop --period=40 --burst=4
//! cargo run --release --example cluster -- --machines=32 --pool=4 --verify
//! ```
//!
//! `--pool=0` (the default executor) sizes the pool to the host's cores;
//! `--threads` selects the legacy thread-per-machine executor;
//! `--verify` replays the run sequentially and exits nonzero unless the
//! report and the full checkpoint image are bit-identical.

use dorado::cluster::{ClusterConfig, ClusterSim, Exec};

fn parse<T: std::str::FromStr>(flag: &str, value: &str) -> Result<T, String> {
    value
        .parse()
        .map_err(|_| format!("{flag} needs a number, got `{value}`"))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut machines = 4usize;
    let mut epochs = 200u64;
    let mut epoch_cycles = 2_000u64;
    let mut window = 3u16;
    let mut payload = 2u16;
    let mut open_loop = false;
    let mut period = 50u16;
    let mut burst = 1u16;
    let mut exec = Exec::Pool(0);
    let mut verify = false;
    for arg in std::env::args().skip(1) {
        match arg.split_once('=') {
            Some(("--machines", v)) => machines = parse("--machines", v)?,
            Some(("--epochs", v)) => epochs = parse("--epochs", v)?,
            Some(("--epoch-cycles", v)) => epoch_cycles = parse("--epoch-cycles", v)?,
            Some(("--window", v)) => window = parse("--window", v)?,
            Some(("--payload", v)) => payload = parse("--payload", v)?,
            Some(("--period", v)) => period = parse("--period", v)?,
            Some(("--burst", v)) => burst = parse("--burst", v)?,
            Some(("--pool", v)) => exec = Exec::Pool(parse("--pool", v)?),
            None if arg == "--open-loop" => open_loop = true,
            None if arg == "--sequential" => exec = Exec::Sequential,
            None if arg == "--threads" => exec = Exec::Threads,
            None if arg == "--parallel" => exec = Exec::Threads,
            None if arg == "--verify" => verify = true,
            _ => return Err(format!("unknown argument `{arg}`").into()),
        }
    }

    let mut cfg = if open_loop {
        ClusterConfig::open_loop(machines, period, burst, payload)
    } else {
        ClusterConfig::pairs(machines, window, payload)
    };
    cfg.epoch_cycles = epoch_cycles;
    let load = if open_loop {
        format!("open-loop period {period} x burst {burst}")
    } else {
        format!("closed-loop window {window}")
    };
    let exec_name = match exec {
        Exec::Sequential => "sequential".to_string(),
        Exec::Threads => "thread-per-machine".to_string(),
        Exec::Pool(n) => format!("pool({})", Exec::pool_workers(n, machines)),
    };
    println!(
        "cluster: {machines} machine(s), {epochs} epoch(s) x {epoch_cycles} cycles, \
         {load}, payload {payload} word(s), {exec_name} execution\n"
    );
    let mut sim = ClusterSim::build(&cfg)?;
    let wall = std::time::Instant::now();
    sim.run(epochs, exec);
    let wall = wall.elapsed();

    println!("{}", sim.report());
    println!(
        "wall clock: {:.1} ms for {} simulated cycles per machine \
         ({:.0} epochs/s)",
        wall.as_secs_f64() * 1e3,
        sim.cycles(),
        epochs as f64 / wall.as_secs_f64().max(1e-9)
    );

    if verify {
        let mut oracle = ClusterSim::build(&cfg)?;
        oracle.run(epochs, Exec::Sequential);
        let reports_match = sim.report() == oracle.report();
        let state_matches = sim.save_checkpoint() == oracle.save_checkpoint();
        println!(
            "\nverify vs sequential oracle: report identical: {reports_match}; \
             full dynamic state identical: {state_matches}"
        );
        if !(reports_match && state_matches) {
            return Err(format!("{exec_name} diverged from the sequential oracle").into());
        }
    }
    Ok(())
}
