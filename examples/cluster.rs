//! A cluster of Dorados on one Ethernet fabric: client/server pairs run
//! the closed-loop RPC microcode, one OS thread per machine, and the run
//! ends with the cluster-wide report (per-machine task utilization plus
//! fabric bandwidth).
//!
//! ```sh
//! cargo run --example cluster
//! cargo run --example cluster -- --machines=4 --epochs=300
//! cargo run --example cluster -- --machines=2 --sequential
//! ```

use dorado::cluster::{ClusterConfig, ClusterSim};

fn parse<T: std::str::FromStr>(flag: &str, value: &str) -> Result<T, String> {
    value
        .parse()
        .map_err(|_| format!("{flag} needs a number, got `{value}`"))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut machines = 4usize;
    let mut epochs = 200u64;
    let mut epoch_cycles = 2_000u64;
    let mut window = 3u16;
    let mut payload = 2u16;
    let mut parallel = true;
    for arg in std::env::args().skip(1) {
        match arg.split_once('=') {
            Some(("--machines", v)) => machines = parse("--machines", v)?,
            Some(("--epochs", v)) => epochs = parse("--epochs", v)?,
            Some(("--epoch-cycles", v)) => epoch_cycles = parse("--epoch-cycles", v)?,
            Some(("--window", v)) => window = parse("--window", v)?,
            Some(("--payload", v)) => payload = parse("--payload", v)?,
            None if arg == "--sequential" => parallel = false,
            None if arg == "--parallel" => parallel = true,
            _ => return Err(format!("unknown argument `{arg}`").into()),
        }
    }

    let mut cfg = ClusterConfig::pairs(machines, window, payload);
    cfg.epoch_cycles = epoch_cycles;
    println!(
        "cluster: {machines} machine(s), {} epoch(s) x {epoch_cycles} cycles, closed-loop window {window}, payload {payload} word(s), {} execution\n",
        epochs,
        if parallel { "parallel" } else { "sequential" }
    );
    let mut sim = ClusterSim::build(&cfg)?;
    let wall = std::time::Instant::now();
    sim.run(epochs, parallel);
    let wall = wall.elapsed();

    println!("{}", sim.report());
    let lat = sim.request_latencies();
    let mean = if lat.is_empty() {
        0.0
    } else {
        lat.iter().sum::<u64>() as f64 / lat.len() as f64
    };
    let max = lat.iter().copied().max().unwrap_or(0);
    println!(
        "workload: {} request(s) completed = {:.0} req/s of simulated time",
        sim.responses(),
        sim.requests_per_sec()
    );
    println!(
        "latency: mean {mean:.0} cycles, max {max} cycles over {} matched round trip(s)",
        lat.len()
    );
    println!(
        "wall clock: {:.1} ms for {} simulated cycles per machine",
        wall.as_secs_f64() * 1e3,
        sim.cycles()
    );
    Ok(())
}
