//! BitBlt in action: paint a small bitmap with fills, copies, and shifted
//! scrolls, then print it as ASCII art with the measured bandwidths (§7).
//!
//! ```sh
//! cargo run --example bitblt_demo
//! ```

use dorado::base::{ClockConfig, Cycles, VirtAddr, Word};
use dorado::core::Dorado;
use dorado::emu::bitblt::{self, BitBltParams, BlitKind};
use dorado::emu::layout::TASK_EMU;
use dorado::emu::SuiteBuilder;

const SCREEN: u32 = 0x1000; // bitmap base (word address)
const PITCH: Word = 4; // 4 words = 64 pixels wide
const ROWS: Word = 16;

fn blit(m: &mut Dorado, kind: BlitKind, p: &BitBltParams) -> u64 {
    bitblt::load_params(m, p, kind);
    m.restart_at(kind.entry()).expect("entry exists");
    let before = m.stats().cycles;
    let out = m.run(1_000_000);
    assert!(out.halted(), "{out:?}");
    m.stats().cycles - before
}

fn show(m: &Dorado) {
    for row in 0..ROWS {
        let mut line = String::new();
        for col in 0..PITCH {
            let w = m
                .memory()
                .read_virt(VirtAddr::new(SCREEN + u32::from(row * PITCH + col)));
            for bit in (0..16).rev() {
                line.push(if w >> bit & 1 == 1 { '#' } else { '.' });
            }
        }
        println!("  {line}");
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let suite = SuiteBuilder::new().with_bitblt().assemble()?;
    let mut m = suite
        .machine()
        .task_entry(TASK_EMU, "bitblt:fill")
        .build()?;
    let clock = ClockConfig::multiwire();

    // 1. Fill a band with a stipple.
    let band = BitBltParams {
        dst: SCREEN as Word + PITCH, // second row
        width: PITCH,
        height: 6,
        src_pitch: PITCH,
        dst_pitch: PITCH,
        fill: 0xaaaa,
        ..BitBltParams::default()
    };
    let cycles = blit(&mut m, BlitKind::Fill, &band);
    let bits = u64::from(band.width) * u64::from(band.height) * 16;
    println!(
        "fill:   {:>5} cycles, {:>5.1} Mbit/s",
        cycles,
        clock.mbits_per_sec(bits, Cycles(cycles))
    );

    // 2. Copy the band two rows down.
    let copy = BitBltParams {
        src: band.dst,
        dst: band.dst + 8 * PITCH,
        width: PITCH,
        height: 6,
        src_pitch: PITCH,
        dst_pitch: PITCH,
        ..BitBltParams::default()
    };
    let cycles = blit(&mut m, BlitKind::Copy, &copy);
    println!(
        "copy:   {:>5} cycles, {:>5.1} Mbit/s",
        cycles,
        clock.mbits_per_sec(bits, Cycles(cycles))
    );

    // 3. Scroll (shifted copy) the lower band right by 3 pixels.
    let scroll = BitBltParams {
        src: copy.dst - 1, // pairing window starts one word earlier
        dst: copy.dst,
        width: PITCH - 1,
        height: 6,
        src_pitch: PITCH,
        dst_pitch: PITCH,
        shift: 13, // left-cycle 13 = shift right 3 within the pair
        ..BitBltParams::default()
    };
    let cycles = blit(&mut m, BlitKind::ShiftedCopy, &scroll);
    println!(
        "scroll: {:>5} cycles, {:>5.1} Mbit/s (the paper's 34 Mbit/s class)",
        cycles,
        clock.mbits_per_sec(
            u64::from(scroll.width) * u64::from(scroll.height) * 16,
            Cycles(cycles)
        )
    );

    // 4. Merge a filter into the middle rows (the 24 Mbit/s class).
    let merge = BitBltParams {
        src: band.dst - 1,
        dst: SCREEN as Word + 4 * PITCH,
        width: PITCH - 1,
        height: 3,
        src_pitch: PITCH,
        dst_pitch: PITCH,
        shift: 0,
        filter: 0x0ff0,
        ..BitBltParams::default()
    };
    let cycles = blit(&mut m, BlitKind::Merge, &merge);
    println!(
        "merge:  {:>5} cycles, {:>5.1} Mbit/s (the paper's 24 Mbit/s class)",
        cycles,
        clock.mbits_per_sec(
            u64::from(merge.width) * u64::from(merge.height) * 16,
            Cycles(cycles)
        )
    );

    // 5. A bit-boundary rectangle: ragged edges through the fillmask
    // planner (left edge, interior words, right edge).
    let rect = bitblt::BitRect {
        base: SCREEN as Word,
        pitch: PITCH,
        x: 9,      // starts mid-word
        y: 12,
        w: 37,     // ends mid-word two words later
        h: 3,
    };
    let before = m.stats().cycles;
    bitblt::fill_rect_bits(&mut m, &rect, 0xffff);
    println!(
        "bit-rect fill ({} steps): {:>5} cycles",
        bitblt::plan_fill_bits(&rect).len(),
        m.stats().cycles - before
    );

    println!("\nthe screen:");
    show(&m);
    Ok(())
}
