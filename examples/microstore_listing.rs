//! Dump the placed microstore of the full suite: a disassembled listing
//! with placement statistics, the artifact Ed Fiala's debugger would show.
//!
//! ```sh
//! cargo run --example microstore_listing | less
//! ```

use dorado::asm::disasm::disassemble;
use dorado::asm::placer::SlotUse;
use dorado::base::MicroAddr;
use dorado::emu::SuiteBuilder;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let suite = SuiteBuilder::everything().assemble()?;
    let placed = suite.placed();
    let stats = placed.stats();
    println!(
        "; full microcode suite: {} instructions, {} relays, {} wasted words",
        stats.instructions, stats.relays, stats.waste
    );
    println!(
        "; footprint {} of 4096 words, utilization {:.2}%\n",
        stats.footprint(),
        stats.utilization() * 100.0
    );

    // Invert the label map for annotation.
    let mut labels: Vec<(MicroAddr, &str)> = placed.labels().map(|(n, a)| (a, n)).collect();
    labels.sort();
    let label_at = |addr: MicroAddr| -> Vec<&str> {
        labels
            .iter()
            .filter(|(a, _)| *a == addr)
            .map(|(_, n)| *n)
            .collect()
    };

    let mut shown = 0usize;
    for (i, slot) in placed.uses().iter().enumerate() {
        let addr = MicroAddr::new(i as u16);
        match slot {
            SlotUse::Empty => continue,
            SlotUse::Waste => {
                println!("{addr}:  ; (padding)");
            }
            SlotUse::Relay(target) => {
                println!("{}  ; relay -> {target}", disassemble(addr, placed.word(addr)));
            }
            SlotUse::Inst(_) => {
                for l in label_at(addr) {
                    println!("{l}:");
                }
                println!("{}", disassemble(addr, placed.word(addr)));
            }
        }
        shown += 1;
    }
    println!("\n; {shown} words listed");
    Ok(())
}
