//! Dump the placed microstore of the full suite: a disassembled listing
//! with placement statistics and the static analyzer's findings
//! interleaved — the artifact Ed Fiala's debugger would show.
//!
//! ```sh
//! cargo run --example microstore_listing | less
//! ```

use dorado::asm::disasm::disassemble_annotated;
use dorado::base::MicroAddr;
use dorado::emu::SuiteBuilder;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let suite = SuiteBuilder::everything().assemble()?;
    let placed = suite.placed();
    let stats = placed.stats();
    println!(
        "; full microcode suite: {} instructions, {} relays, {} wasted words",
        stats.instructions, stats.relays, stats.waste
    );
    println!(
        "; footprint {} of 4096 words, utilization {:.2}%\n",
        stats.footprint(),
        stats.utilization() * 100.0
    );

    // Lint the image and hang each finding off the word it refers to.
    let report = dorado::ulint::lint(placed);
    let notes: Vec<(MicroAddr, String)> = report
        .diags
        .iter()
        .map(|d| (d.at, d.render_line()))
        .collect();
    print!("{}", disassemble_annotated(placed, &notes));

    println!(
        "\n; {} words listed; ulint: {} error(s), {} warning(s), {} info",
        placed.words_used(),
        report.errors(),
        report.warnings(),
        report.count(dorado::ulint::Severity::Info)
    );
    Ok(())
}
