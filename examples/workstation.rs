//! The full personal-computer scenario of §4: the Mesa emulator computing
//! in the foreground while the display refreshes over fast I/O, the disk
//! streams a transfer, and the network receives a packet — all sharing one
//! processor by task priority.
//!
//! ```sh
//! cargo run --example workstation
//! ```

use dorado::base::{BaseRegId, ClockConfig, Cycles, TaskId, VirtAddr, Word};
use dorado::emu::layout::*;
use dorado::emu::mesa::{self, MesaAsm};
use dorado::emu::SuiteBuilder;
use dorado::io::{DiskController, DisplayController, NetworkController};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The foreground program: naive recursive fib(15).
    let mut p = MesaAsm::new();
    p.lib(15);
    p.call("fib", 1);
    p.halt();
    p.label("fib");
    p.ll(0);
    p.lib(2);
    p.sub();
    p.sl(2);
    p.ll(0);
    p.jzb("base0");
    p.ll(0);
    p.lib(1);
    p.sub();
    p.jzb("base1");
    p.ll(0);
    p.lib(1);
    p.sub();
    p.call("fib", 1);
    p.ll(2);
    p.call("fib", 1);
    p.add();
    p.ret();
    p.label("base0");
    p.lib(0);
    p.ret();
    p.label("base1");
    p.lib(1);
    p.ret();
    let program = p.assemble()?;

    // Devices.
    let mut display = DisplayController::with_rate(TASK_DISPLAY, 256.0, 60.0);
    display.start();
    let mut disk = DiskController::new(TASK_DISK);
    for (i, w) in disk.platter_mut().iter_mut().take(2048).enumerate() {
        *w = i as Word;
    }
    disk.start_read(2048);
    let mut net = NetworkController::new(TASK_NET);
    net.inject_packet((1..=48).map(|x| x * 3).collect());

    // One microstore image holds the emulator and every device task (§5.1).
    let suite = SuiteBuilder::new()
        .with_mesa()
        .with_display()
        .with_disk()
        .with_network()
        .assemble()?;
    println!(
        "microstore: {} words placed, {:.1}% utilization",
        suite.placed().words_used(),
        suite.placed().stats().utilization() * 100.0
    );

    let mut m = suite
        .machine()
        .task_entry(TASK_EMU, "mesa:boot")
        .device(Box::new(display), IOA_DISPLAY, 2)
        .wire_ioaddress(TASK_DISPLAY, IOA_DISPLAY)
        .task_entry(TASK_DISPLAY, "disp:init")
        .device(Box::new(disk), IOA_DISK, 2)
        .wire_ioaddress(TASK_DISK, IOA_DISK)
        .task_entry(TASK_DISK, "disk:init")
        .device(Box::new(net), IOA_NET, 3)
        .wire_ioaddress(TASK_NET, IOA_NET)
        .task_entry(TASK_NET, "net:init")
        .build()?;
    mesa::configure_ifu(&mut m);
    mesa::init_runtime(&mut m);
    mesa::load_program(&mut m, &program);
    // Buffer regions for the device tasks.
    m.memory_mut().set_base_reg(BaseRegId::new(BR_DISPLAY), 0x2000);
    m.memory_mut().set_base_reg(BaseRegId::new(BR_DISK), 0x3000);
    m.memory_mut().set_base_reg(BaseRegId::new(BR_NET), 0x3800);
    // A visible bitmap for the display to show.
    for i in 0..0x1000u32 {
        m.memory_mut()
            .write_virt(VirtAddr::new(0x2000 + i), (i as Word).wrapping_mul(3));
    }

    let outcome = m.run(2_000_000);
    println!("\nfib(15) = {} (expected 610); outcome {outcome:?}", mesa::tos(&m));

    let s = m.stats();
    let clock = ClockConfig::multiwire();
    println!(
        "\nran {} cycles = {:.2} ms of simulated time",
        s.cycles,
        clock.to_seconds(Cycles(s.cycles)) * 1e3
    );
    println!("\nprocessor shares (the §4 sharing story):");
    for (name, task) in [
        ("emulator (Mesa)", TaskId::EMULATOR),
        ("disk", TASK_DISK),
        ("network", TASK_NET),
        ("display", TASK_DISPLAY),
    ] {
        println!(
            "  {name:<16} {:>6.2}%  ({} instructions)",
            s.processor_share(task) * 100.0,
            s.executed[task.index()]
        );
    }
    println!(
        "  held (memory/IFU waits): {:.2}%",
        s.held_cycles() as f64 / s.cycles as f64 * 100.0
    );
    println!(
        "\ncache: {:.1}% hits over {} refs; {} storage cycles; {} fast munches",
        s.cache_hit_rate() * 100.0,
        s.cache_refs,
        s.storage_refs,
        s.fast_io_munches
    );
    println!("macroinstructions executed: {}", s.macro_instructions);

    // The disk transfer landed in memory:
    let good = (0..2048u32)
        .take_while(|&i| m.memory().read_virt(VirtAddr::new(0x3000 + i)) == i as Word)
        .count();
    let d = m.device_mut::<DiskController>("disk").unwrap();
    println!(
        "disk transfer: {good}/2048 words intact, overruns {}",
        d.overruns
    );
    Ok(())
}
