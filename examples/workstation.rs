//! The full personal-computer scenario of §4: the Mesa emulator computing
//! in the foreground while the display refreshes over fast I/O, the disk
//! streams a transfer, and the network receives a packet — all sharing one
//! processor by task priority.
//!
//! ```sh
//! cargo run --example workstation
//! cargo run --example workstation -- --trace trace.jsonl   # last 64Ki cycles as JSONL
//! cargo run --example workstation -- --trace=trace.jsonl   # same, one-argument form
//! ```

use dorado::base::{BaseRegId, TaskId, VirtAddr, Word};
use dorado::emu::layout::*;
use dorado::emu::mesa::{self, MesaAsm};
use dorado::emu::SuiteBuilder;
use dorado::io::{DiskController, DisplayController, NetworkController};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // `--trace FILE` records the last 64Ki cycles and exports them as
    // JSONL (one event per line) for offline tooling.
    let mut args = std::env::args().skip(1);
    let mut trace_path: Option<String> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--trace" => {
                trace_path =
                    Some(args.next().ok_or("--trace needs a file argument")?);
            }
            s if s.starts_with("--trace=") => {
                let path = &s["--trace=".len()..];
                if path.is_empty() {
                    return Err("--trace= needs a file argument".into());
                }
                trace_path = Some(path.to_string());
            }
            other => return Err(format!("unknown argument `{other}`").into()),
        }
    }

    // The foreground program: naive recursive fib(15).
    let mut p = MesaAsm::new();
    p.lib(15);
    p.call("fib", 1);
    p.halt();
    p.label("fib");
    p.ll(0);
    p.lib(2);
    p.sub();
    p.sl(2);
    p.ll(0);
    p.jzb("base0");
    p.ll(0);
    p.lib(1);
    p.sub();
    p.jzb("base1");
    p.ll(0);
    p.lib(1);
    p.sub();
    p.call("fib", 1);
    p.ll(2);
    p.call("fib", 1);
    p.add();
    p.ret();
    p.label("base0");
    p.lib(0);
    p.ret();
    p.label("base1");
    p.lib(1);
    p.ret();
    let program = p.assemble()?;

    // Devices.
    let mut display = DisplayController::with_rate(TASK_DISPLAY, 256.0, 60.0);
    display.start();
    let mut disk = DiskController::new(TASK_DISK);
    for (i, w) in disk.platter_mut().iter_mut().take(2048).enumerate() {
        *w = i as Word;
    }
    disk.start_read(2048);
    let mut net = NetworkController::new(TASK_NET);
    net.inject_packet((1..=48).map(|x| x * 3).collect());

    // One microstore image holds the emulator and every device task (§5.1).
    let suite = SuiteBuilder::new()
        .with_mesa()
        .with_display()
        .with_disk()
        .with_network()
        .assemble()?;
    println!(
        "microstore: {} words placed, {:.1}% utilization",
        suite.placed().words_used(),
        suite.placed().stats().utilization() * 100.0
    );

    let mut m = suite
        .machine()
        .task_entry(TASK_EMU, "mesa:boot")
        .device(Box::new(display), IOA_DISPLAY, 2)
        .wire_ioaddress(TASK_DISPLAY, IOA_DISPLAY)
        .task_entry(TASK_DISPLAY, "disp:init")
        .device(Box::new(disk), IOA_DISK, 2)
        .wire_ioaddress(TASK_DISK, IOA_DISK)
        .task_entry(TASK_DISK, "disk:init")
        .device(Box::new(net), IOA_NET, 3)
        .wire_ioaddress(TASK_NET, IOA_NET)
        .task_entry(TASK_NET, "net:init")
        .build()?;
    mesa::configure_ifu(&mut m);
    mesa::init_runtime(&mut m);
    mesa::load_program(&mut m, &program);
    // Buffer regions for the device tasks.
    m.memory_mut().set_base_reg(BaseRegId::new(BR_DISPLAY), 0x2000);
    m.memory_mut().set_base_reg(BaseRegId::new(BR_DISK), 0x3000);
    m.memory_mut().set_base_reg(BaseRegId::new(BR_NET), 0x3800);
    // A visible bitmap for the display to show.
    for i in 0..0x1000u32 {
        m.memory_mut()
            .write_virt(VirtAddr::new(0x2000 + i), (i as Word).wrapping_mul(3));
    }

    if trace_path.is_some() {
        m.trace_enable(1 << 16);
    }

    let outcome = m.run(2_000_000);
    println!("\nfib(15) = {} (expected 610); outcome {outcome:?}", mesa::tos(&m));

    // The §7 tables, straight from the metrics registry.
    println!("\n{}", m.report());
    println!("\nprocessor shares by task (the §4 sharing story):");
    let r = m.report();
    for (name, task) in [
        ("emulator (Mesa)", TaskId::EMULATOR),
        ("disk", TASK_DISK),
        ("network", TASK_NET),
        ("display", TASK_DISPLAY),
    ] {
        println!(
            "  {name:<16} {:>6.2}%  ({} instructions)",
            r.utilization(task) * 100.0,
            r.executed(task)
        );
    }

    if let (Some(path), Some(tracer)) = (&trace_path, m.tracer()) {
        let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
        tracer.write_jsonl(&mut f)?;
        println!(
            "\nwrote {} trace event(s) to {path} ({} older dropped)",
            tracer.len(),
            tracer.dropped()
        );
    }

    // The disk transfer landed in memory:
    let good = (0..2048u32)
        .take_while(|&i| m.memory().read_virt(VirtAddr::new(0x3000 + i)) == i as Word)
        .count();
    let d = m.device_mut::<DiskController>("disk").unwrap();
    println!(
        "disk transfer: {good}/2048 words intact, overruns {}",
        d.overruns
    );
    Ok(())
}
