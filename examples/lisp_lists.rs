//! The Lisp emulator: build a list with CONS, walk it with CAR/CDR, and
//! watch the run-time tag checking cost (§7: "Lisp deals with 32 bit items
//! and keeps its stack in memory").
//!
//! ```sh
//! cargo run --example lisp_lists
//! ```

use dorado::emu::lisp::{self, LispAsm};
use dorado::emu::suite::build_lisp;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // (setq l (cons 10 (cons 20 (cons 30 nil))))
    // (+ (car l) (+ (car (cdr l)) (car (cdr (cdr l))))) = 60
    let mut p = LispAsm::new();
    p.push_fix(10);
    p.push_fix(20);
    p.push_fix(30);
    p.push_nil();
    p.cons(); // (30)
    p.cons(); // (20 30)
    p.cons(); // (10 20 30)
    p.lset(0); // l = the list

    p.lget(0);
    p.car(); // 10
    p.lget(0);
    p.cdr();
    p.car(); // 20
    p.add();
    p.lget(0);
    p.cdr();
    p.cdr();
    p.car(); // 30
    p.add();
    p.halt();
    let bytes = p.assemble()?;

    let mut m = build_lisp(&bytes)?;
    let outcome = m.run(1_000_000);
    let (tag, value) = lisp::tos(&m);
    println!("outcome: {outcome:?}");
    println!("(+ 10 20 30) via list walking = {value} (tag {tag})");

    let s = m.stats();
    println!(
        "\n{} macroinstructions in {} cycles = {:.1} µinstructions each",
        s.macro_instructions,
        s.cycles,
        s.executed[0] as f64 / s.macro_instructions as f64
    );
    println!(
        "(Mesa averages 1-3 for the same work — the 32-bit items, the \
         memory-resident\n stack, and the tag checks are the difference the \
         paper describes in §7.)"
    );

    // And the type system bites: adding NIL to a number halts at the
    // type-error trap.
    let mut p = LispAsm::new();
    p.push_fix(1);
    p.push_nil();
    p.add();
    p.halt();
    let mut m = build_lisp(&p.assemble()?)?;
    let _ = m.run(100_000);
    let at_trap = m.control().this_pc == m.label("lisp:tagerr").unwrap();
    println!("\n(+ 1 NIL) halts at the run-time type trap: {at_trap}");
    Ok(())
}
