//! The microassembler's automatic placement at work (§5.5, §7): place this
//! repository's real microcode suite and a sweep of synthetic near-full
//! stores, reporting utilization — the experiment behind the paper's
//! "99.9% of the available memory" remark.
//!
//! ```sh
//! cargo run --example placement_report
//! ```

use dorado::asm::synth::{random_program, SynthProfile};
use dorado::emu::SuiteBuilder;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("real microcode (the full emulator + device suite):");
    let suite = SuiteBuilder::everything().assemble()?;
    let s = suite.placed().stats();
    println!(
        "  {:>4} instructions + {:>3} relays, {:>3} wasted words → {:>6.2}% utilization",
        s.instructions,
        s.relays,
        s.waste,
        s.utilization() * 100.0
    );

    println!("\nsynthetic programs (statistics like real microcode), by size:");
    println!("  {:>6} {:>7} {:>7} {:>7} {:>9} {:>8}", "insts", "relays", "waste", "rounds", "footprint", "util%");
    for n in [500, 1000, 2000, 3000, 3400] {
        let p = random_program(7, n, &SynthProfile::default());
        let placed = p.place()?;
        let s = placed.stats();
        println!(
            "  {:>6} {:>7} {:>7} {:>7} {:>9} {:>8.2}",
            s.instructions,
            s.relays,
            s.waste,
            s.repair_rounds,
            s.footprint(),
            s.utilization() * 100.0
        );
    }

    println!("\nbranch-heavy vs straight-line code:");
    for (name, profile) in [
        (
            "straight",
            SynthProfile {
                branch_pct: 5,
                ..SynthProfile::default()
            },
        ),
        ("typical", SynthProfile::default()),
        (
            "branchy",
            SynthProfile {
                branch_pct: 70,
                ..SynthProfile::default()
            },
        ),
    ] {
        let p = random_program(11, 2000, &profile);
        let placed = p.place()?;
        let s = placed.stats();
        println!(
            "  {name:<9} {:>5} relays, {:>4} waste → {:>6.2}%",
            s.relays,
            s.waste,
            s.utilization() * 100.0
        );
    }
    println!(
        "\n(The paper reports 99.9%; this placer's greedy packing plus\n\
         repair reaches the high nineties — the residual is page-boundary\n\
         escapes and duplicated branch targets, see EXPERIMENTS.md.)"
    );
    Ok(())
}
