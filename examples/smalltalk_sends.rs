//! Smalltalk message sends through the microcoded method cache — the
//! dispatch structure of Smalltalk-76 (§7), with first-send misses walking
//! the method dictionary and later sends hitting the cache.
//!
//! ```sh
//! cargo run --example smalltalk_sends
//! ```

use dorado::base::{VirtAddr, Word};
use dorado::emu::layout::{GLOBAL_FRAME, SCRATCH};
use dorado::emu::smalltalk::{self, StAsm};
use dorado::emu::suite::build_smalltalk;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A Point-ish object: class with two methods, instance with two fields.
    //   sel 1 = x (field 0), sel 2 = y (field 1), sel 3 = manhattan (x+y
    //   via two nested self-sends).
    let mut p = StAsm::new();
    // main: push point; send #manhattan; store to global 1; halt.
    p.push_var(0);
    p.send(3, 0);
    p.set_var(1);
    // Send #x twice more: the second probe hits the method cache.
    p.push_var(0);
    p.send(1, 0);
    p.set_var(2);
    p.push_var(0);
    p.send(1, 0);
    p.set_var(3);
    p.halt();
    // Methods.
    let m_x = p.label("m_x");
    p.push_inst(0);
    p.mret();
    let m_y = p.label("m_y");
    p.push_inst(1);
    p.mret();
    let m_manhattan = p.label("m_manhattan");
    p.push_var(0);
    p.send(1, 0); // self x  (receiver refetched from the global)
    p.push_var(0);
    p.send(2, 0); // self y
    p.add();
    p.mret();
    let bytes = p.assemble();

    let class_addr = SCRATCH;
    let obj_addr = SCRATCH + 0x40;
    let mut m = build_smalltalk(&bytes)?;
    smalltalk::define_class(
        &mut m,
        class_addr,
        &[(1, m_x), (2, m_y), (3, m_manhattan)],
    );
    smalltalk::define_object(&mut m, obj_addr, class_addr, &[30, 12]);
    m.memory_mut()
        .write_virt(VirtAddr::new(GLOBAL_FRAME), obj_addr as Word);

    let outcome = m.run(1_000_000);
    println!("outcome: {outcome:?}");
    let g = |n: u32| m.memory().read_virt(VirtAddr::new(GLOBAL_FRAME + n));
    println!("point manhattan (30+12) = {}", g(1));
    println!("point x = {} (sent twice: miss, then cache hit)", g(2));
    assert_eq!(g(2), g(3));

    let s = m.stats();
    println!(
        "\n{} macroinstructions, {} cycles, {:.1} cycles per send-heavy opcode",
        s.macro_instructions,
        s.cycles,
        s.cycles as f64 / s.macro_instructions as f64
    );
    println!(
        "(Every send fetches the receiver's class, hashes class+selector, \
         probes the\n method cache, and on a miss walks the class's method \
         dictionary — all in\n microcode, as in Smalltalk-76.)"
    );
    Ok(())
}
