//! Quickstart: write a few microinstructions, run them on the Dorado, and
//! look at the machine state.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use dorado::asm::{ASel, AluOp, Assembler, Cond, FfOp, Inst};
use dorado::base::TaskId;
use dorado::core::DoradoBuilder;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Microcode: sum the integers 1..=10 into T using the COUNT register
    // and a conditional branch (§6.3.3's one-instruction decrement-and-test).
    let mut a = Assembler::new();
    a.emit(Inst::new().ff(FfOp::LoadCountImm(10)).goto_("top"));
    a.pair_align();
    a.label("top"); // even: the loop head
    a.emit(
        Inst::new()
            .rm(1)
            .a(ASel::Rm)
            .alu(AluOp::INC_A)
            .load_rm()
            .goto_("body"),
    );
    a.label("exit"); // odd: the loop exit, adjacent per §5.5
    a.emit(Inst::new().ff_halt().goto_("exit"));
    a.label("body");
    a.emit(
        Inst::new()
            .rm(1)
            .b(dorado::asm::BSel::Rm)
            .a(ASel::T)
            .alu(AluOp::ADD)
            .load_t()
            .ff(FfOp::DecCount)
            .branch(Cond::CntZero, "exit", "top"),
    );
    let placed = a.place()?;
    println!(
        "placed {} words (utilization {:.1}%)",
        placed.words_used(),
        placed.stats().utilization() * 100.0
    );

    // Build the machine and run.
    let mut m = DoradoBuilder::new().microcode(placed).build()?;
    m.trace_enable(64);
    let outcome = m.run(1000);
    println!("outcome: {outcome:?}");
    println!("T = {} (expected 55)", m.t(TaskId::EMULATOR));

    println!("\nfirst cycles of the trace:");
    for e in m.take_trace().iter().take(10) {
        println!("  {e}");
    }

    let stats = m.stats();
    println!("\n{stats}");
    Ok(())
}
