//! `NEXTPC` control: the 8-bit `NextControl` field (§5.5, §6.2.2) and the
//! symbolic control-flow forms the assembler accepts.
//!
//! "The alternative, used in the Dorado, is to divide the microstore into
//! pages, use a few bits to specify a next address within the current page,
//! and have a type field which can specify branches and returns, transfers
//! to another page, or whatever."
//!
//! Concrete encoding (8 bits, with 16-word pages):
//!
//! | Bits         | Type |
//! |--------------|------|
//! | `0000 oooo`  | [`ControlOp::Goto`]: next = current page, offset *o* |
//! | `0001 oooo`  | [`ControlOp::GotoLong`]: page from FF, offset *o* |
//! | `0010 oooo`  | [`ControlOp::Call`]: like Goto; LINK ← THISPC+1 |
//! | `0011 oooo`  | [`ControlOp::CallLong`]: page from FF; LINK ← THISPC+1 |
//! | `01cc cppp`  | [`ControlOp::CondGoto`]: false → pair *p* (offset 2p) in current page, true → offset 2p+1 |
//! | `1000 0000`  | [`ControlOp::Return`]: next = LINK; LINK ← THISPC+1 |
//! | `1000 0001`  | [`ControlOp::IfuJump`]: next supplied by the IFU |
//! | `1000 001b`  | [`ControlOp::Dispatch8`]: next = current page, offset 8·b + (B AND 7) |
//! | `1000 0100`  | [`ControlOp::Dispatch256`]: next = (FF AND 0xF)·256 + (B AND 0xFF) |
//!
//! The conditional branch ORs the condition into the low bit of NEXTPC
//! "about half way into the instruction fetch cycle" with no extra delay;
//! the cost is the placement constraint on target pairs.

use crate::error::AsmError;
use crate::fields::Cond;
use dorado_base::{MicroAddr, PAGE_SIZE};

/// A decoded `NextControl` field: how NEXTPC is computed (§6.2.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ControlOp {
    /// Unconditional transfer within the current page.
    Goto {
        /// Target offset within the current page.
        offset: u8,
    },
    /// Unconditional transfer to another page; FF holds the page number
    /// ("FF can also serve ... as part of a microstore address", §5.5).
    GotoLong {
        /// Target offset within the FF-named page.
        offset: u8,
    },
    /// Subroutine call within the current page; LINK ← THISPC+1 (§6.2.3).
    Call {
        /// Target offset within the current page.
        offset: u8,
    },
    /// Subroutine call to another page (page from FF); LINK ← THISPC+1.
    CallLong {
        /// Target offset within the FF-named page.
        offset: u8,
    },
    /// Conditional branch to an even/odd pair in the current page: NEXTPC =
    /// offset `2·pair`, with the condition ORed into the low bit (§5.5).
    CondGoto {
        /// The branch condition.
        cond: Cond,
        /// The pair index (0–7): false target at offset `2·pair`.
        pair: u8,
    },
    /// Return: NEXTPC ← LINK; LINK ← THISPC+1 (the exchange makes LINK-based
    /// coroutines possible, §6.2.3).
    Return,
    /// The current macroinstruction is finished: NEXTPC is supplied by the
    /// IFU's decode of the next opcode (§5.8).
    IfuJump,
    /// Eight-way dispatch on B: NEXTPC = current page, offset `8·base_hi +
    /// (B AND 7)` (§6.2.3).
    Dispatch8 {
        /// Whether the table is the upper half (offset 8) of the page.
        base_hi: bool,
    },
    /// 256-way dispatch on B: NEXTPC = `(FF AND 0xF)·256 + (B AND 0xFF)`
    /// (§6.2.3).
    Dispatch256,
}

impl ControlOp {
    /// Encodes into the 8-bit `NextControl` field.
    pub fn encode(self) -> u8 {
        match self {
            ControlOp::Goto { offset } => {
                debug_assert!((offset as usize) < PAGE_SIZE);
                offset & 0xf
            }
            ControlOp::GotoLong { offset } => 0x10 | (offset & 0xf),
            ControlOp::Call { offset } => 0x20 | (offset & 0xf),
            ControlOp::CallLong { offset } => 0x30 | (offset & 0xf),
            ControlOp::CondGoto { cond, pair } => {
                debug_assert!(pair < 8);
                0x40 | (cond.raw() << 3) | (pair & 7)
            }
            ControlOp::Return => 0x80,
            ControlOp::IfuJump => 0x81,
            ControlOp::Dispatch8 { base_hi } => 0x82 | u8::from(base_hi),
            ControlOp::Dispatch256 => 0x84,
        }
    }

    /// Decodes the 8-bit `NextControl` field.
    ///
    /// # Errors
    ///
    /// Returns [`AsmError::ReservedEncoding`] for undefined encodings.
    pub fn decode(raw: u8) -> Result<Self, AsmError> {
        Ok(match raw {
            0x00..=0x0f => ControlOp::Goto { offset: raw & 0xf },
            0x10..=0x1f => ControlOp::GotoLong { offset: raw & 0xf },
            0x20..=0x2f => ControlOp::Call { offset: raw & 0xf },
            0x30..=0x3f => ControlOp::CallLong { offset: raw & 0xf },
            0x40..=0x7f => ControlOp::CondGoto {
                cond: Cond::decode((raw >> 3) & 7).expect("3 bits"),
                pair: raw & 7,
            },
            0x80 => ControlOp::Return,
            0x81 => ControlOp::IfuJump,
            0x82 => ControlOp::Dispatch8 { base_hi: false },
            0x83 => ControlOp::Dispatch8 { base_hi: true },
            0x84 => ControlOp::Dispatch256,
            _ => {
                return Err(AsmError::ReservedEncoding {
                    field: "NextControl",
                    value: raw.into(),
                })
            }
        })
    }

    /// Whether this control type consumes the FF field for a page number.
    pub fn uses_ff_page(self) -> bool {
        matches!(
            self,
            ControlOp::GotoLong { .. } | ControlOp::CallLong { .. } | ControlOp::Dispatch256
        )
    }

    /// Whether this is a call (loads LINK with the return address).
    pub fn is_call(self) -> bool {
        matches!(self, ControlOp::Call { .. } | ControlOp::CallLong { .. })
    }

    /// Computes NEXTPC before any condition OR, given the current
    /// instruction's address and the FF byte.
    ///
    /// Returns `None` for [`ControlOp::Return`], [`ControlOp::IfuJump`],
    /// [`ControlOp::Dispatch8`] and [`ControlOp::Dispatch256`], whose
    /// successors depend on processor state (LINK, the IFU, or the B bus).
    pub fn static_next(self, at: MicroAddr, ff: u8) -> Option<MicroAddr> {
        match self {
            ControlOp::Goto { offset } | ControlOp::Call { offset } => {
                Some(at.with_offset(offset.into()))
            }
            ControlOp::GotoLong { offset } | ControlOp::CallLong { offset } => {
                Some(MicroAddr::from_parts(ff.into(), offset.into()))
            }
            ControlOp::CondGoto { pair, .. } => Some(at.with_offset(u16::from(pair) * 2)),
            _ => None,
        }
    }
}

impl std::fmt::Display for ControlOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ControlOp::Goto { offset } => write!(f, "goto .{offset:02o}"),
            ControlOp::GotoLong { offset } => write!(f, "goto FF.{offset:02o}"),
            ControlOp::Call { offset } => write!(f, "call .{offset:02o}"),
            ControlOp::CallLong { offset } => write!(f, "call FF.{offset:02o}"),
            ControlOp::CondGoto { cond, pair } => write!(f, "if {cond} → pair {pair}"),
            ControlOp::Return => f.write_str("return"),
            ControlOp::IfuJump => f.write_str("ifujump"),
            ControlOp::Dispatch8 { base_hi } => {
                write!(f, "disp8 @{}", if *base_hi { 8 } else { 0 })
            }
            ControlOp::Dispatch256 => f.write_str("disp256"),
        }
    }
}

/// Symbolic control flow, as written in assembler source.  The placer turns
/// these into concrete [`ControlOp`]s (inserting long forms and relay
/// instructions where targets land on other pages).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
#[derive(Default)]
pub enum Flow {
    /// Continue with the next instruction in the listing.  (The hardware
    /// has no fall-through: the placer encodes this as a `Goto` to wherever
    /// the next instruction lands.)
    #[default]
    Next,
    /// Unconditional transfer to a label.
    Goto(String),
    /// Subroutine call to a label.
    Call(String),
    /// Return via LINK.
    Return,
    /// Finish the macroinstruction; the IFU supplies the next address.
    IfuJump,
    /// Conditional branch: `when_false` is placed at an even offset,
    /// `when_true` at the following odd offset, in this instruction's page.
    Branch {
        /// The condition tested.
        cond: Cond,
        /// Label taken when the condition holds.
        when_true: String,
        /// Label taken when the condition does not hold.
        when_false: String,
    },
    /// Eight-way dispatch on B into the 8-aligned table at the label.
    Dispatch8(String),
    /// 256-way dispatch on B into the 256-aligned table at the label.
    Dispatch256(String),
}

impl Flow {
    /// The labels this flow references.
    pub fn labels(&self) -> Vec<&str> {
        match self {
            Flow::Next | Flow::Return | Flow::IfuJump => vec![],
            Flow::Goto(l) | Flow::Call(l) | Flow::Dispatch8(l) | Flow::Dispatch256(l) => {
                vec![l]
            }
            Flow::Branch {
                when_true,
                when_false,
                ..
            } => vec![when_false, when_true],
        }
    }
}


#[cfg(test)]
mod tests {
    use super::*;

    fn all_ops() -> Vec<ControlOp> {
        let mut v = vec![
            ControlOp::Return,
            ControlOp::IfuJump,
            ControlOp::Dispatch8 { base_hi: false },
            ControlOp::Dispatch8 { base_hi: true },
            ControlOp::Dispatch256,
        ];
        for offset in [0u8, 7, 15] {
            v.push(ControlOp::Goto { offset });
            v.push(ControlOp::GotoLong { offset });
            v.push(ControlOp::Call { offset });
            v.push(ControlOp::CallLong { offset });
        }
        for cond in Cond::all() {
            for pair in [0u8, 3, 7] {
                v.push(ControlOp::CondGoto { cond, pair });
            }
        }
        v
    }

    #[test]
    fn encode_decode_roundtrip() {
        for op in all_ops() {
            assert_eq!(ControlOp::decode(op.encode()).unwrap(), op);
        }
    }

    #[test]
    fn encodings_unique() {
        let ops = all_ops();
        for (i, a) in ops.iter().enumerate() {
            for b in &ops[i + 1..] {
                assert_ne!(a.encode(), b.encode(), "{a:?} vs {b:?}");
            }
        }
    }

    #[test]
    fn reserved_encodings_fail() {
        for raw in [0x85u8, 0x90, 0xa0, 0xff] {
            assert!(ControlOp::decode(raw).is_err(), "{raw:#04x}");
        }
    }

    #[test]
    fn sequencing_uses_8_bits() {
        // E10: the paper's point is that paged NEXTPC costs 8 bits instead
        // of the ~16 a full next-address would need (12-bit store + type).
        // All control ops must fit one byte:
        for op in all_ops() {
            let _byte: u8 = op.encode(); // type-checked 8-bit encoding
        }
    }

    #[test]
    fn static_next_computation() {
        let at = MicroAddr::from_parts(5, 9);
        assert_eq!(
            ControlOp::Goto { offset: 3 }.static_next(at, 0),
            Some(MicroAddr::from_parts(5, 3))
        );
        assert_eq!(
            ControlOp::GotoLong { offset: 3 }.static_next(at, 77),
            Some(MicroAddr::from_parts(77, 3))
        );
        assert_eq!(
            ControlOp::CondGoto {
                cond: Cond::Zero,
                pair: 6
            }
            .static_next(at, 0),
            Some(MicroAddr::from_parts(5, 12))
        );
        assert_eq!(ControlOp::Return.static_next(at, 0), None);
        assert_eq!(ControlOp::IfuJump.static_next(at, 0), None);
    }

    #[test]
    fn ff_page_classification() {
        assert!(ControlOp::GotoLong { offset: 0 }.uses_ff_page());
        assert!(ControlOp::CallLong { offset: 0 }.uses_ff_page());
        assert!(ControlOp::Dispatch256.uses_ff_page());
        assert!(!ControlOp::Goto { offset: 0 }.uses_ff_page());
        assert!(!ControlOp::Return.uses_ff_page());
    }

    #[test]
    fn flow_labels() {
        assert!(Flow::Next.labels().is_empty());
        assert_eq!(Flow::Goto("x".into()).labels(), vec!["x"]);
        let b = Flow::Branch {
            cond: Cond::Carry,
            when_true: "t".into(),
            when_false: "f".into(),
        };
        assert_eq!(b.labels(), vec!["f", "t"]);
    }

    #[test]
    fn display_nonempty() {
        for op in all_ops() {
            assert!(!format!("{op}").is_empty());
        }
    }
}
