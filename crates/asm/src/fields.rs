//! The small fields of the microinstruction (§6.3.1).
//!
//! | Field       | Bits | Role |
//! |-------------|------|------|
//! | RAddress    | 4    | low RM address (with `RBASE`), or the stack-pointer adjustment when `Block` selects a stack op for task 0 |
//! | ALUOp       | 4    | index into `ALUFM`, which yields the 6-bit ALU control |
//! | BSelect     | 3    | B-bus source, including the four byte-form constants |
//! | LoadControl | 3    | loading of `RESULT` into RM and T |
//! | ASelect     | 3    | A-bus source; also starts memory references |
//! | Block       | 1    | blocks an I/O task; selects a stack op for task 0 |
//! | FF          | 8    | catchall functions / constant byte / page address |
//! | NextControl | 8    | how to compute NEXTPC |

use crate::error::AsmError;

/// The 4-bit `ALUOp` field: an index into the 16-entry `ALUFM` memory, which
/// "maps the four-bit ALUOp field into the six bits required to control the
/// ALU" (§6.3.3).
///
/// The named constants refer to the *default* `ALUFM` contents installed by
/// [`default_alufm`](crate::default_alufm); microcode may remap entries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct AluOp(u8);

impl AluOp {
    /// `A + B`.
    pub const ADD: AluOp = AluOp(0);
    /// `A - B`.
    pub const SUB: AluOp = AluOp(1);
    /// `A AND B`.
    pub const AND: AluOp = AluOp(2);
    /// `A OR B`.
    pub const OR: AluOp = AluOp(3);
    /// `A XOR B`.
    pub const XOR: AluOp = AluOp(4);
    /// Pass `A`.
    pub const A: AluOp = AluOp(5);
    /// Pass `B`.
    pub const B: AluOp = AluOp(6);
    /// `NOT A`.
    pub const NOT_A: AluOp = AluOp(7);
    /// `A + 1`.
    pub const INC_A: AluOp = AluOp(8);
    /// `A - 1`.
    pub const DEC_A: AluOp = AluOp(9);
    /// `A + B + saved carry` (multi-precision arithmetic).
    pub const ADD_CARRY: AluOp = AluOp(10);
    /// `A AND NOT B`.
    pub const AND_NOT_B: AluOp = AluOp(11);
    /// `A - B - saved borrow`.
    pub const SUB_BORROW: AluOp = AluOp(12);
    /// `A OR NOT B`.
    pub const OR_NOT_B: AluOp = AluOp(13);
    /// Constant zero.
    pub const ZERO: AluOp = AluOp(14);
    /// `NOT (A XOR B)`.
    pub const XNOR: AluOp = AluOp(15);

    /// Creates an `AluOp` from a raw 4-bit index.
    ///
    /// # Errors
    ///
    /// Returns [`AsmError::FieldRange`] if `raw >= 16`.
    pub fn new(raw: u8) -> Result<Self, AsmError> {
        if raw < 16 {
            Ok(AluOp(raw))
        } else {
            Err(AsmError::FieldRange {
                field: "ALUOp",
                value: raw.into(),
                max: 15,
            })
        }
    }

    /// The raw 4-bit index.
    #[inline]
    pub fn raw(self) -> u8 {
        self.0
    }

    /// The index into ALUFM.
    #[inline]
    pub fn index(self) -> usize {
        usize::from(self.0)
    }
}

impl std::fmt::Display for AluOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "aluop{}", self.0)
    }
}

/// The 3-bit `BSelect` field: the source for the B bus (§6.3.1), including
/// the four byte-form constant encodings of §5.9 ("a useful subset of
/// constants can be specified using the eight bits of FF for one byte ... and
/// two other bits [from BSelect] for the other byte value and position").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[repr(u8)]
pub enum BSel {
    /// B from the RM register bank (or the stack, for a task-0 stack op).
    #[default]
    Rm = 0,
    /// B from the task-specific T register.
    T = 1,
    /// B from the Q register.
    Q = 2,
    /// B from `MEMDATA` — the most recently fetched memory word; using it
    /// before the fetch completes asserts `Hold` (§5.7).
    MemData = 3,
    /// Constant: FF in the low byte, high byte all zeroes.
    ConstLo0 = 4,
    /// Constant: FF in the low byte, high byte all ones.
    ConstLo1 = 5,
    /// Constant: FF in the high byte, low byte all zeroes.
    ConstHi0 = 6,
    /// Constant: FF in the high byte, low byte all ones.
    ConstHi1 = 7,
}

impl BSel {
    /// Decodes a raw 3-bit field.
    ///
    /// # Errors
    ///
    /// Returns [`AsmError::FieldRange`] if `raw >= 8`.
    pub fn decode(raw: u8) -> Result<Self, AsmError> {
        Ok(match raw {
            0 => BSel::Rm,
            1 => BSel::T,
            2 => BSel::Q,
            3 => BSel::MemData,
            4 => BSel::ConstLo0,
            5 => BSel::ConstLo1,
            6 => BSel::ConstHi0,
            7 => BSel::ConstHi1,
            _ => {
                return Err(AsmError::FieldRange {
                    field: "BSelect",
                    value: raw.into(),
                    max: 7,
                })
            }
        })
    }

    /// The raw field value.
    #[inline]
    pub fn raw(self) -> u8 {
        self as u8
    }

    /// Whether this selection is one of the four byte-form constants, which
    /// claims the FF field for the constant byte.
    #[inline]
    pub fn is_constant(self) -> bool {
        matches!(
            self,
            BSel::ConstLo0 | BSel::ConstLo1 | BSel::ConstHi0 | BSel::ConstHi1
        )
    }

    /// Whether this selection reads `MEMDATA` (and can therefore hold).
    #[inline]
    pub fn uses_memdata(self) -> bool {
        self == BSel::MemData
    }
}

/// The 3-bit `ASelect` field: the source for the A bus, "and starts memory
/// references" (§6.3.1).  `MEMADDRESS` is a copy of the A bus (§6.3.2), so
/// the fetch/store variants both source A and launch the reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[repr(u8)]
pub enum ASel {
    /// A from RM (or the stack, for a task-0 stack op).
    #[default]
    Rm = 0,
    /// A from the task-specific T register.
    T = 1,
    /// A from `IFUDATA`: the next operand of the current macroinstruction
    /// (§6.3.2); holds if the IFU has not decoded it yet.
    IfuData = 2,
    /// A from `IFUDATA`; start a fetch at `base[MEMBASE] + A` — the path
    /// that makes "such operations as ... indirect addressing fast" (§5.8)
    /// and lets a Mesa load run in one or two microinstructions (§7).
    FetchIfu = 3,
    /// A from RM; start a memory *fetch* at `base[MEMBASE] + A`.
    FetchR = 4,
    /// A from RM; start a memory *store* of the B bus at `base[MEMBASE] + A`.
    StoreR = 5,
    /// A from T; start a fetch.
    FetchT = 6,
    /// A from `IFUDATA`; start a store of B.
    StoreIfu = 7,
}

impl ASel {
    /// Decodes a raw 3-bit field.
    ///
    /// # Errors
    ///
    /// Returns [`AsmError::FieldRange`] if `raw >= 8`.
    pub fn decode(raw: u8) -> Result<Self, AsmError> {
        Ok(match raw {
            0 => ASel::Rm,
            1 => ASel::T,
            2 => ASel::IfuData,
            3 => ASel::FetchIfu,
            4 => ASel::FetchR,
            5 => ASel::StoreR,
            6 => ASel::FetchT,
            7 => ASel::StoreIfu,
            _ => {
                return Err(AsmError::FieldRange {
                    field: "ASelect",
                    value: raw.into(),
                    max: 7,
                })
            }
        })
    }

    /// The raw field value.
    #[inline]
    pub fn raw(self) -> u8 {
        self as u8
    }

    /// Whether this selection starts a memory fetch.
    #[inline]
    pub fn is_fetch(self) -> bool {
        matches!(self, ASel::FetchR | ASel::FetchT | ASel::FetchIfu)
    }

    /// Whether this selection starts a memory store.
    #[inline]
    pub fn is_store(self) -> bool {
        matches!(self, ASel::StoreR | ASel::StoreIfu)
    }

    /// Whether this selection starts any memory reference.
    #[inline]
    pub fn starts_memory_ref(self) -> bool {
        self.is_fetch() || self.is_store()
    }

    /// Whether the A bus is sourced from RM for this selection.
    #[inline]
    pub fn reads_rm(self) -> bool {
        matches!(self, ASel::Rm | ASel::FetchR | ASel::StoreR)
    }

    /// Whether the A bus is sourced from T for this selection.
    #[inline]
    pub fn reads_t(self) -> bool {
        matches!(self, ASel::T | ASel::FetchT)
    }

    /// Whether this selection consumes IFU operand data (and can hold).
    #[inline]
    pub fn uses_ifudata(self) -> bool {
        matches!(self, ASel::IfuData | ASel::FetchIfu | ASel::StoreIfu)
    }
}

/// The 3-bit `LoadControl` field: "Controls loading of results into RM and T"
/// (§6.3.1).  Values 4–7 are reserved.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[repr(u8)]
pub enum LoadControl {
    /// Load nothing.
    #[default]
    None = 0,
    /// T ← RESULT.
    T = 1,
    /// RM (or stack) ← RESULT.
    Rm = 2,
    /// Both T and RM ← RESULT.
    Both = 3,
}

impl LoadControl {
    /// Decodes a raw 3-bit field.
    ///
    /// # Errors
    ///
    /// Returns [`AsmError::ReservedEncoding`] for values 4–7.
    pub fn decode(raw: u8) -> Result<Self, AsmError> {
        Ok(match raw {
            0 => LoadControl::None,
            1 => LoadControl::T,
            2 => LoadControl::Rm,
            3 => LoadControl::Both,
            _ => {
                return Err(AsmError::ReservedEncoding {
                    field: "LoadControl",
                    value: raw.into(),
                })
            }
        })
    }

    /// The raw field value.
    #[inline]
    pub fn raw(self) -> u8 {
        self as u8
    }

    /// Whether T is loaded.
    #[inline]
    pub fn loads_t(self) -> bool {
        matches!(self, LoadControl::T | LoadControl::Both)
    }

    /// Whether RM (or the stack) is loaded.
    #[inline]
    pub fn loads_rm(self) -> bool {
        matches!(self, LoadControl::Rm | LoadControl::Both)
    }
}

/// One of the eight branch conditions (§5.5: "allowing one of eight branch
/// conditions to modify the low order bit of NEXTPC").
///
/// Conditions are computed from the *previous* instruction's results, held in
/// the task-specific branch-condition register (§5.3).  There are no negated
/// forms: microcode negates a test by exchanging the true and false targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[repr(u8)]
pub enum Cond {
    /// The previous ALU result was zero.
    #[default]
    Zero = 0,
    /// The previous ALU result was negative (bit 15 set).
    Neg = 1,
    /// The previous ALU operation produced a carry out.
    Carry = 2,
    /// The previous ALU operation overflowed (signed).
    Overflow = 3,
    /// The previous ALU result was odd (bit 0 set).
    ROdd = 4,
    /// COUNT reached zero on the most recent decrement (§6.3.3: COUNT "can
    /// be decremented and tested for zero in one microinstruction").
    CntZero = 5,
    /// The device addressed by IOADDRESS is asserting attention.
    IoAtten = 6,
    /// A stack overflow or underflow has occurred (§6.3.3: "independent
    /// underflow and overflow checking").
    StackError = 7,
}

impl Cond {
    /// Decodes a raw 3-bit condition select.
    ///
    /// # Errors
    ///
    /// Returns [`AsmError::FieldRange`] if `raw >= 8`.
    pub fn decode(raw: u8) -> Result<Self, AsmError> {
        Ok(match raw {
            0 => Cond::Zero,
            1 => Cond::Neg,
            2 => Cond::Carry,
            3 => Cond::Overflow,
            4 => Cond::ROdd,
            5 => Cond::CntZero,
            6 => Cond::IoAtten,
            7 => Cond::StackError,
            _ => {
                return Err(AsmError::FieldRange {
                    field: "Cond",
                    value: raw.into(),
                    max: 7,
                })
            }
        })
    }

    /// The raw field value.
    #[inline]
    pub fn raw(self) -> u8 {
        self as u8
    }

    /// All eight conditions.
    pub fn all() -> impl Iterator<Item = Cond> {
        (0..8).map(|i| Cond::decode(i).expect("0..8 are all valid"))
    }
}

impl std::fmt::Display for Cond {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            Cond::Zero => "ALU=0",
            Cond::Neg => "ALU<0",
            Cond::Carry => "Carry",
            Cond::Overflow => "Overflow",
            Cond::ROdd => "R odd",
            Cond::CntZero => "CNT=0",
            Cond::IoAtten => "IOAtten",
            Cond::StackError => "StkErr",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aluop_range() {
        assert!(AluOp::new(15).is_ok());
        assert!(AluOp::new(16).is_err());
        assert_eq!(AluOp::ADD.index(), 0);
        assert_eq!(AluOp::XNOR.raw(), 15);
    }

    #[test]
    fn bsel_roundtrip() {
        for raw in 0..8 {
            let b = BSel::decode(raw).unwrap();
            assert_eq!(b.raw(), raw);
        }
        assert!(BSel::decode(8).is_err());
    }

    #[test]
    fn bsel_constant_classification() {
        assert!(!BSel::Rm.is_constant());
        assert!(!BSel::MemData.is_constant());
        assert!(BSel::ConstLo0.is_constant());
        assert!(BSel::ConstHi1.is_constant());
        assert!(BSel::MemData.uses_memdata());
        assert!(!BSel::T.uses_memdata());
    }

    #[test]
    fn asel_roundtrip_and_classes() {
        for raw in 0..8 {
            let a = ASel::decode(raw).unwrap();
            assert_eq!(a.raw(), raw);
        }
        assert!(ASel::decode(9).is_err());
        assert!(ASel::FetchR.is_fetch() && !ASel::FetchR.is_store());
        assert!(ASel::StoreIfu.is_store() && ASel::StoreIfu.starts_memory_ref());
        assert!(ASel::FetchR.reads_rm() && !ASel::FetchR.reads_t());
        assert!(ASel::FetchT.reads_t());
        assert!(ASel::IfuData.uses_ifudata());
        assert!(ASel::FetchIfu.uses_ifudata() && ASel::FetchIfu.is_fetch());
        assert!(!ASel::T.starts_memory_ref());
    }

    #[test]
    fn load_control_decoding() {
        assert_eq!(LoadControl::decode(3).unwrap(), LoadControl::Both);
        assert!(LoadControl::decode(4).is_err());
        assert!(LoadControl::Both.loads_t() && LoadControl::Both.loads_rm());
        assert!(LoadControl::T.loads_t() && !LoadControl::T.loads_rm());
        assert!(!LoadControl::None.loads_t());
    }

    #[test]
    fn cond_roundtrip_and_display() {
        for c in Cond::all() {
            assert_eq!(Cond::decode(c.raw()).unwrap(), c);
            assert!(!format!("{c}").is_empty());
        }
        assert!(Cond::decode(8).is_err());
    }
}
