//! Independent structural verification of placed microcode.
//!
//! The placer is trusted nowhere: this module re-checks a
//! [`PlacedProgram`] against the hardware's rules, word by word, with no
//! reference to how placement was computed:
//!
//! * every used word decodes;
//! * every static successor (goto/call/fall-through) lands on a used word;
//! * in-page transfers really are in-page; long transfers carry a page in
//!   FF that is not simultaneously claimed by a constant or function;
//! * conditional branches address an even/odd pair inside their own page,
//!   and both pair words are used;
//! * dispatch instructions point at aligned, fully-populated tables.
//!
//! [`verify`] is used by the property tests and is handy when writing new
//! microcode generators.

use crate::error::AsmError;
use crate::fields::BSel;
use crate::flow::ControlOp;
use crate::placer::{PlacedProgram, SlotUse};
use dorado_base::{MicroAddr, PAGE_SIZE};

/// A structural violation found in a placed image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// The offending word.
    pub at: MicroAddr,
    /// What is wrong.
    pub what: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.at, self.what)
    }
}

fn used(placed: &PlacedProgram, addr: MicroAddr) -> bool {
    !matches!(
        placed.uses()[addr.raw() as usize],
        SlotUse::Empty | SlotUse::Waste
    )
}

/// Checks every used word of `placed`; returns all violations found.
pub fn verify(placed: &PlacedProgram) -> Vec<Violation> {
    let mut out = Vec::new();
    for (i, slot) in placed.uses().iter().enumerate() {
        if matches!(slot, SlotUse::Empty | SlotUse::Waste) {
            continue;
        }
        let at = MicroAddr::new(i as u16);
        let word = placed.word(at);
        let control = match word.control() {
            Ok(c) => c,
            Err(e) => {
                out.push(Violation {
                    at,
                    what: format!("undecodable NextControl: {e}"),
                });
                continue;
            }
        };
        let ff_is_const = match word.bsel() {
            Ok(b) => b.is_constant(),
            Err(_) => false,
        };
        // FF sharing: a long transfer's page must not collide with a
        // constant byte.
        if control.uses_ff_page() && ff_is_const {
            out.push(Violation {
                at,
                what: "FF used as both page and constant".into(),
            });
        }
        // When FF carries neither a page nor a constant, it must decode as
        // a function.
        if !control.uses_ff_page() && !ff_is_const {
            if let Err(e) = crate::ff::FfOp::decode(word.ff()) {
                out.push(Violation {
                    at,
                    what: format!("undecodable FF function: {e}"),
                });
            }
        }
        match control {
            ControlOp::Goto { offset } | ControlOp::Call { offset } => {
                let dest = at.with_offset(offset.into());
                if !used(placed, dest) {
                    out.push(Violation {
                        at,
                        what: format!("in-page transfer to unused word {dest}"),
                    });
                }
            }
            ControlOp::GotoLong { offset } | ControlOp::CallLong { offset } => {
                let dest = MicroAddr::from_parts(word.ff().into(), offset.into());
                if !used(placed, dest) {
                    out.push(Violation {
                        at,
                        what: format!("long transfer to unused word {dest}"),
                    });
                }
            }
            ControlOp::CondGoto { pair, .. } => {
                let base = at.with_offset(u16::from(pair) * 2);
                debug_assert_eq!(base.page(), at.page());
                if !base.page_offset().is_multiple_of(2) {
                    out.push(Violation {
                        at,
                        what: "branch pair base is odd".into(),
                    });
                }
                for k in 0..2u16 {
                    let d = MicroAddr::new(base.raw() + k);
                    if !used(placed, d) {
                        out.push(Violation {
                            at,
                            what: format!("branch pair word {d} unused"),
                        });
                    }
                }
            }
            ControlOp::Dispatch8 { base_hi } => {
                let base =
                    MicroAddr::from_parts(word.ff().into(), if base_hi { 8 } else { 0 });
                for k in 0..8u16 {
                    let d = MicroAddr::new(base.raw() + k);
                    if !used(placed, d) {
                        out.push(Violation {
                            at,
                            what: format!("dispatch-8 entry {d} unused"),
                        });
                    }
                }
            }
            ControlOp::Dispatch256 => {
                let base = u16::from(word.ff() & 0xf) * 256;
                for k in 0..256u16 {
                    let d = MicroAddr::new(base + k);
                    if !used(placed, d) {
                        out.push(Violation {
                            at,
                            what: format!("dispatch-256 entry {d} unused"),
                        });
                        break; // one report per table is enough
                    }
                }
            }
            ControlOp::Return | ControlOp::IfuJump => {}
        }
        // Constants must reconstruct.
        if ff_is_const {
            let b = word.bsel().expect("checked");
            if b != BSel::Rm && crate::constants::const_value(b, word.ff()).is_none() {
                out.push(Violation {
                    at,
                    what: "constant BSelect without a constant value".into(),
                });
            }
        }
        let _ = PAGE_SIZE;
    }
    out
}

/// Convenience: verify and convert the violations into an error.
///
/// # Errors
///
/// Returns [`AsmError::Verification`] carrying *every* violation found,
/// rendered and deduplicated (a corrupt dispatch table would otherwise
/// repeat one complaint per entry).
pub fn verify_ok(placed: &PlacedProgram) -> Result<(), AsmError> {
    let mut rendered: Vec<String> = Vec::new();
    for v in verify(placed) {
        let line = format!("{v}");
        if !rendered.contains(&line) {
            rendered.push(line);
        }
    }
    if rendered.is_empty() {
        Ok(())
    } else {
        Err(AsmError::Verification(rendered))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fields::{AluOp, Cond};
    use crate::inst::Inst;
    use crate::program::Assembler;

    fn nop() -> Inst {
        Inst::new()
    }

    #[test]
    fn clean_program_verifies() {
        let mut a = Assembler::new();
        a.emit(nop().ff(crate::ff::FfOp::LoadCountImm(3)).goto_("top"));
        a.pair_align();
        a.label("top");
        a.emit(nop().alu(AluOp::INC_A).load_t().goto_("body"));
        a.label("exit");
        a.emit(nop().ff_halt().goto_("exit"));
        a.label("body");
        a.emit(nop().ff(crate::ff::FfOp::DecCount).branch(Cond::CntZero, "exit", "top"));
        let placed = a.place().unwrap();
        assert_eq!(verify(&placed), vec![]);
        assert!(verify_ok(&placed).is_ok());
    }

    #[test]
    fn synthetic_programs_verify() {
        use crate::synth::{random_program, SynthProfile};
        for seed in 1..20 {
            let p = random_program(seed, 400, &SynthProfile::default());
            let placed = p.place().unwrap();
            let violations = verify(&placed);
            assert!(violations.is_empty(), "seed {seed}: {violations:?}");
        }
    }

    #[test]
    fn corrupted_goto_is_caught() {
        let mut a = Assembler::new();
        a.label("x");
        a.emit(nop().ff_halt().goto_("x"));
        let mut placed = a.place().unwrap();
        assert!(verify(&placed).is_empty());
        // Point the goto into an unused slot.
        let bad = placed
            .word(MicroAddr::new(0))
            .with_control(crate::flow::ControlOp::Goto { offset: 9 });
        placed.set_word(MicroAddr::new(0), bad);
        let violations = verify(&placed);
        assert_eq!(violations.len(), 1, "{violations:?}");
        assert!(violations[0].what.contains("unused word"));
        assert!(verify_ok(&placed).is_err());
    }

    #[test]
    fn ff_collision_is_caught() {
        let mut a = Assembler::new();
        a.label("x");
        a.emit(nop().ff_halt().goto_("x"));
        let mut placed = a.place().unwrap();
        // A long goto whose FF simultaneously feeds a constant BSelect.
        let bad = crate::microword::Microword::default()
            .with_bsel(crate::fields::BSel::ConstLo0)
            .with_ff(0x07)
            .with_control(crate::flow::ControlOp::GotoLong { offset: 0 });
        placed.set_word(MicroAddr::new(0), bad);
        let violations = verify(&placed);
        assert!(
            violations.iter().any(|v| v.what.contains("page and constant")),
            "{violations:?}"
        );
    }

    #[test]
    fn verify_ok_reports_all_violations() {
        let mut a = Assembler::new();
        a.label("x");
        a.emit(nop().goto_("y"));
        a.label("y");
        a.emit(nop().ff_halt().goto_("y"));
        let mut placed = a.place().unwrap();
        assert!(verify(&placed).is_empty());
        // Two independent corruptions: a goto into an unused slot and an
        // FF page/constant collision at a second word.
        let bad0 = placed
            .word(MicroAddr::new(0))
            .with_control(crate::flow::ControlOp::Goto { offset: 9 });
        placed.set_word(MicroAddr::new(0), bad0);
        let bad1 = crate::microword::Microword::default()
            .with_bsel(crate::fields::BSel::ConstLo0)
            .with_ff(0x07)
            .with_control(crate::flow::ControlOp::GotoLong { offset: 9 });
        placed.set_word(MicroAddr::new(1), bad1);
        let err = verify_ok(&placed).unwrap_err();
        let AsmError::Verification(lines) = &err else {
            panic!("expected Verification, got {err:?}");
        };
        assert!(lines.len() >= 2, "{lines:?}");
        // Deduplication: rendering the same violation twice collapses.
        let mut seen = lines.clone();
        seen.sort();
        seen.dedup();
        assert_eq!(seen.len(), lines.len(), "duplicates in {lines:?}");
        assert!(format!("{err}").contains("verification failed"));
    }
}
