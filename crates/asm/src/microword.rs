//! The packed 34-bit microinstruction word (§6.3.1).
//!
//! "MIR ... is 34 bits wide and is partitioned into the following fields:
//! RAddress 4, ALUOp 4, BSelect 3, LoadControl 3, ASelect 3, Block 1, FF 8,
//! NextControl 8."
//!
//! Bit layout used here (LSB-0 in a `u64`):
//!
//! | Bits   | Field |
//! |--------|-------|
//! | 0–7    | NextControl |
//! | 8–15   | FF |
//! | 16     | Block |
//! | 17–19  | ASelect |
//! | 20–22  | LoadControl |
//! | 23–25  | BSelect |
//! | 26–29  | ALUOp |
//! | 30–33  | RAddress |

use crate::error::AsmError;
use crate::fields::{ASel, AluOp, BSel, LoadControl};
use crate::flow::ControlOp;
use dorado_base::bits::{field, with_field};

/// One packed 34-bit microinstruction.
///
/// # Examples
///
/// ```
/// use dorado_asm::{Microword, AluOp, BSel};
///
/// let w = Microword::default()
///     .with_raddr(5)
///     .with_aluop(AluOp::ADD)
///     .with_bsel(BSel::T);
/// assert_eq!(w.raddr(), 5);
/// assert_eq!(w.bsel().unwrap(), BSel::T);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Microword(u64);

impl Microword {
    /// Width of the microinstruction in bits.
    pub const WIDTH: u32 = 34;

    /// Creates a word from raw bits.
    ///
    /// # Errors
    ///
    /// Returns [`AsmError::FieldRange`] if bits above bit 33 are set.
    pub fn from_raw(raw: u64) -> Result<Self, AsmError> {
        if raw >> Self::WIDTH != 0 {
            Err(AsmError::FieldRange {
                field: "Microword",
                value: (raw >> 32) as u32,
                max: 3,
            })
        } else {
            Ok(Microword(raw))
        }
    }

    /// The raw 34-bit value.
    #[inline]
    pub fn raw(self) -> u64 {
        self.0
    }

    /// The 8-bit NextControl field.
    #[inline]
    pub fn next_control_raw(self) -> u8 {
        field(self.0, 0, 8) as u8
    }

    /// The decoded NextControl field.
    ///
    /// # Errors
    ///
    /// Returns an error for reserved encodings.
    pub fn control(self) -> Result<ControlOp, AsmError> {
        ControlOp::decode(self.next_control_raw())
    }

    /// Replaces NextControl.
    #[must_use]
    pub fn with_control(self, op: ControlOp) -> Self {
        Microword(with_field(self.0, 0, 8, op.encode().into()))
    }

    /// The 8-bit FF field (function, constant byte, or page number).
    #[inline]
    pub fn ff(self) -> u8 {
        field(self.0, 8, 8) as u8
    }

    /// Replaces the FF field.
    #[must_use]
    pub fn with_ff(self, ff: u8) -> Self {
        Microword(with_field(self.0, 8, 8, ff.into()))
    }

    /// The Block bit (§6.3.1: "Blocks an I/O task, selects a stack
    /// operation for task 0").
    #[inline]
    pub fn block(self) -> bool {
        field(self.0, 16, 1) != 0
    }

    /// Replaces the Block bit.
    #[must_use]
    pub fn with_block(self, block: bool) -> Self {
        Microword(with_field(self.0, 16, 1, block.into()))
    }

    /// The decoded ASelect field.
    ///
    /// # Errors
    ///
    /// Never fails for 3-bit input, but kept fallible for uniformity.
    pub fn asel(self) -> Result<ASel, AsmError> {
        ASel::decode(field(self.0, 17, 3) as u8)
    }

    /// Replaces ASelect.
    #[must_use]
    pub fn with_asel(self, asel: ASel) -> Self {
        Microword(with_field(self.0, 17, 3, asel.raw().into()))
    }

    /// The decoded LoadControl field.
    ///
    /// # Errors
    ///
    /// Returns an error for the reserved encodings 4–7.
    pub fn load_control(self) -> Result<LoadControl, AsmError> {
        LoadControl::decode(field(self.0, 20, 3) as u8)
    }

    /// Replaces LoadControl.
    #[must_use]
    pub fn with_load_control(self, lc: LoadControl) -> Self {
        Microword(with_field(self.0, 20, 3, lc.raw().into()))
    }

    /// The decoded BSelect field.
    ///
    /// # Errors
    ///
    /// Never fails for 3-bit input, but kept fallible for uniformity.
    pub fn bsel(self) -> Result<BSel, AsmError> {
        BSel::decode(field(self.0, 23, 3) as u8)
    }

    /// Replaces BSelect.
    #[must_use]
    pub fn with_bsel(self, bsel: BSel) -> Self {
        Microword(with_field(self.0, 23, 3, bsel.raw().into()))
    }

    /// The ALUOp field (an ALUFM index).
    #[inline]
    pub fn aluop(self) -> AluOp {
        AluOp::new(field(self.0, 26, 4) as u8).expect("4 bits")
    }

    /// Replaces ALUOp.
    #[must_use]
    pub fn with_aluop(self, op: AluOp) -> Self {
        Microword(with_field(self.0, 26, 4, op.raw().into()))
    }

    /// The 4-bit RAddress field: low RM address bits, or the stack-pointer
    /// adjustment (two's complement) for a task-0 stack op.
    #[inline]
    pub fn raddr(self) -> u8 {
        field(self.0, 30, 4) as u8
    }

    /// Replaces RAddress.
    ///
    /// # Panics
    ///
    /// Panics if `raddr >= 16`.
    #[must_use]
    pub fn with_raddr(self, raddr: u8) -> Self {
        Microword(with_field(self.0, 30, 4, raddr.into()))
    }

    /// The RAddress field interpreted as the signed stack-pointer delta of
    /// a stack operation (−8..=7).
    #[inline]
    pub fn stack_delta(self) -> i8 {
        ((self.raddr() as i8) << 4) >> 4
    }
}

impl std::fmt::Display for Microword {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:09x}", self.0)
    }
}

impl std::fmt::LowerHex for Microword {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::LowerHex::fmt(&self.0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fields::Cond;

    #[test]
    fn fields_are_independent() {
        let w = Microword::default()
            .with_control(ControlOp::CondGoto {
                cond: Cond::Carry,
                pair: 5,
            })
            .with_ff(0xab)
            .with_block(true)
            .with_asel(ASel::FetchT)
            .with_load_control(LoadControl::Both)
            .with_bsel(BSel::ConstHi1)
            .with_aluop(AluOp::XNOR)
            .with_raddr(0xf);
        assert_eq!(
            w.control().unwrap(),
            ControlOp::CondGoto {
                cond: Cond::Carry,
                pair: 5
            }
        );
        assert_eq!(w.ff(), 0xab);
        assert!(w.block());
        assert_eq!(w.asel().unwrap(), ASel::FetchT);
        assert_eq!(w.load_control().unwrap(), LoadControl::Both);
        assert_eq!(w.bsel().unwrap(), BSel::ConstHi1);
        assert_eq!(w.aluop(), AluOp::XNOR);
        assert_eq!(w.raddr(), 0xf);
        assert!(w.raw() >> Microword::WIDTH == 0);
    }

    #[test]
    fn word_is_34_bits() {
        let full = Microword::default()
            .with_control(ControlOp::Dispatch256)
            .with_ff(0xff)
            .with_block(true)
            .with_asel(ASel::StoreIfu)
            .with_load_control(LoadControl::Both)
            .with_bsel(BSel::ConstHi1)
            .with_aluop(AluOp::XNOR)
            .with_raddr(0xf);
        assert!(full.raw() < 1u64 << 34);
        assert!(Microword::from_raw(1 << 34).is_err());
        assert!(Microword::from_raw((1 << 34) - 1).is_ok());
    }

    #[test]
    fn stack_delta_is_signed() {
        assert_eq!(Microword::default().with_raddr(1).stack_delta(), 1);
        assert_eq!(Microword::default().with_raddr(0xf).stack_delta(), -1);
        assert_eq!(Microword::default().with_raddr(0x8).stack_delta(), -8);
        assert_eq!(Microword::default().with_raddr(7).stack_delta(), 7);
    }

    #[test]
    fn default_is_benign() {
        let w = Microword::default();
        assert_eq!(w.control().unwrap(), ControlOp::Goto { offset: 0 });
        assert_eq!(w.load_control().unwrap(), LoadControl::None);
        assert!(!w.block());
    }
}
