//! Error types for assembly, encoding, and placement.

use dorado_base::MicroAddr;

/// Errors produced while assembling, encoding, or placing microcode.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum AsmError {
    /// Two different uses of the FF field were requested in one instruction
    /// (§5.5: "This encoding saves many bits in the microinstruction, at the
    /// expense of allowing only one FF-specified operation ... in each
    /// cycle").
    FfConflict {
        /// Description of the first use.
        first: String,
        /// Description of the conflicting second use.
        second: String,
    },
    /// A label was defined twice.
    DuplicateLabel(String),
    /// A label was referenced but never defined.
    UndefinedLabel(String),
    /// A field value did not fit its encoding.
    FieldRange {
        /// The field name.
        field: &'static str,
        /// The offending value.
        value: u32,
        /// The maximum encodable value.
        max: u32,
    },
    /// A 16-bit constant is not representable in byte form (§5.9) and so
    /// cannot be loaded by a single microinstruction.
    ConstantNotByteForm(u16),
    /// An encoding in the microword did not decode to a defined operation.
    ReservedEncoding {
        /// The field name.
        field: &'static str,
        /// The raw value found.
        value: u32,
    },
    /// The program did not fit in the 4096-word microstore.
    StoreFull {
        /// How many words were needed when space ran out.
        needed: usize,
    },
    /// A dispatch table was not aligned or sized as required.
    BadDispatchTable(String),
    /// A conditional branch could not be encoded: its targets could not be
    /// arranged as an even/odd pair in the branch's page.
    BranchPairUnplaceable {
        /// The branch's address.
        at: MicroAddr,
        /// The false target label.
        when_false: String,
        /// The true target label.
        when_true: String,
    },
    /// The program is empty.
    EmptyProgram,
    /// Post-placement verification found one or more violations.  Each
    /// entry is one rendered [`crate::verify::Violation`], deduplicated.
    Verification(Vec<String>),
}

impl std::fmt::Display for AsmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AsmError::FfConflict { first, second } => {
                write!(f, "FF field conflict: {first} vs {second}")
            }
            AsmError::DuplicateLabel(l) => write!(f, "duplicate label `{l}`"),
            AsmError::UndefinedLabel(l) => write!(f, "undefined label `{l}`"),
            AsmError::FieldRange { field, value, max } => {
                write!(f, "{field} value {value} exceeds maximum {max}")
            }
            AsmError::ConstantNotByteForm(v) => {
                write!(f, "constant {v:#06x} is not in byte form (needs two instructions)")
            }
            AsmError::ReservedEncoding { field, value } => {
                write!(f, "reserved {field} encoding {value:#x}")
            }
            AsmError::StoreFull { needed } => {
                write!(f, "microstore full: {needed} words needed")
            }
            AsmError::BadDispatchTable(msg) => write!(f, "bad dispatch table: {msg}"),
            AsmError::BranchPairUnplaceable {
                at,
                when_false,
                when_true,
            } => write!(
                f,
                "branch at {at} cannot reach pair ({when_false}, {when_true})"
            ),
            AsmError::EmptyProgram => write!(f, "program contains no instructions"),
            AsmError::Verification(violations) => {
                write!(f, "verification failed ({} violations):", violations.len())?;
                for v in violations {
                    write!(f, "\n  {v}")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for AsmError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = AsmError::DuplicateLabel("x".into());
        assert_eq!(format!("{e}"), "duplicate label `x`");
        let e = AsmError::ConstantNotByteForm(0x1234);
        assert!(format!("{e}").contains("0x1234"));
        let e = AsmError::StoreFull { needed: 5000 };
        assert!(format!("{e}").contains("5000"));
    }
}
