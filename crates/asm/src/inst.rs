//! Symbolic microinstructions and the chainable builder used to write
//! microcode in Rust.
//!
//! An [`Inst`] is the pre-placement form of one microinstruction: fields are
//! fully specified, but control flow refers to labels and the FF byte may be
//! claimed by a constant, a function, or (after placement) a page number.
//! The builder enforces, at construction time, the structural rules the
//! paper describes — above all the single-FF-use rule of §5.5.

use crate::constants::const_bsel;
use crate::fields::{ASel, AluOp, BSel, Cond, LoadControl};
use crate::ff::FfOp;
use crate::flow::Flow;
use dorado_base::Word;

/// How an instruction's FF field is committed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum FfSlot {
    /// FF is free: the placer may use it for a cross-page transfer.
    #[default]
    Free,
    /// FF encodes a function.
    Op(FfOp),
    /// FF is the byte of a byte-form constant (BSelect names the form).
    Const(u8),
}

impl FfSlot {
    /// A description for conflict diagnostics.
    fn describe(self) -> String {
        match self {
            FfSlot::Free => "free".into(),
            FfSlot::Op(op) => format!("function {op}"),
            FfSlot::Const(b) => format!("constant byte {b:#04x}"),
        }
    }
}

/// A symbolic microinstruction.
///
/// Build one with the chainable methods and hand it to
/// [`Assembler::emit`](crate::Assembler::emit):
///
/// ```
/// use dorado_asm::{ASel, AluOp, BSel, Inst};
///
/// // T ← RM[3] + 7, and start a fetch at base[MEMBASE] + RM[3]:
/// let i = Inst::new()
///     .rm(3)
///     .a(ASel::FetchR)
///     .const16(7)
///     .alu(AluOp::ADD)
///     .load_t();
/// assert!(i.starts_fetch());
/// ```
///
/// # Panics
///
/// The builder methods panic on structurally invalid combinations (two uses
/// of FF, two stack specifications, out-of-range fields).  These are
/// assembly-time programming errors, reported as early as possible.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Inst {
    /// Low 4 bits of the RM address (high bits from RBASE), or the stack
    /// pointer delta for a stack op.
    pub raddr: u8,
    /// A-bus source / memory reference start.
    pub asel: ASel,
    /// B-bus source.
    pub bsel: BSel,
    /// ALUFM index.
    pub aluop: AluOp,
    /// Result loading.
    pub load: LoadControl,
    /// The Block bit: block (I/O task) or stack op (task 0).
    pub block: bool,
    /// FF usage.
    pub ff: FfSlot,
    /// Symbolic control flow.
    pub flow: Flow,
    /// Optional source annotation carried into traces and disassembly.
    pub comment: Option<String>,
}

impl Inst {
    /// A fresh instruction: `RESULT ← RM[0] + RM-sourced B`?  No — all
    /// fields default to benign values: A and B from RM\[RBASE‖0\], ALU op 0
    /// (ADD), no load, no block, FF free, flow `Next`.
    pub fn new() -> Self {
        Inst::default()
    }

    fn claim_ff(mut self, slot: FfSlot) -> Self {
        match self.ff {
            FfSlot::Free => {
                self.ff = slot;
                self
            }
            prior => panic!(
                "FF field conflict: {} vs {} (§5.5: only one FF-specified \
                 operation per cycle)",
                prior.describe(),
                slot.describe()
            ),
        }
    }

    /// Addresses RM register `RBASE‖n` (low 4 bits `n`).
    ///
    /// # Panics
    ///
    /// Panics if `n >= 16` or a stack op was already specified.
    #[must_use]
    pub fn rm(mut self, n: u8) -> Self {
        assert!(n < 16, "RAddress {n} out of range (high bits from RBASE)");
        assert!(!self.block, "rm() conflicts with an earlier stack()/block()");
        self.raddr = n;
        self
    }

    /// Specifies a stack operation (task 0 only): the stack replaces RM and
    /// `delta` (−8..=7) adjusts STACKPTR (§6.3.3).  Reads see the current
    /// top; writes go to the adjusted position.
    ///
    /// # Panics
    ///
    /// Panics if `delta` is out of range or RM addressing was already
    /// specified.
    #[must_use]
    pub fn stack(mut self, delta: i8) -> Self {
        assert!((-8..=7).contains(&delta), "stack delta {delta} out of range");
        assert!(!self.block, "stack()/block() specified twice");
        assert!(
            self.raddr == 0,
            "stack() conflicts with an earlier rm() (stack replaces RM)"
        );
        self.block = true;
        self.raddr = (delta as u8) & 0xf;
        self
    }

    /// Sets the Block bit for an I/O task: relinquish the processor after
    /// this instruction (§5.2).
    ///
    /// # Panics
    ///
    /// Panics if a stack op or block was already specified.
    #[must_use]
    pub fn io_block(mut self) -> Self {
        assert!(!self.block, "stack()/block() specified twice");
        self.block = true;
        self
    }

    /// Selects the A-bus source (and memory-reference start).
    #[must_use]
    pub fn a(mut self, asel: ASel) -> Self {
        self.asel = asel;
        self
    }

    /// Selects the B-bus source.
    ///
    /// # Panics
    ///
    /// Panics if `bsel` is a constant form — use [`Inst::const16`] or
    /// [`Inst::const_byte`] so the FF byte is claimed consistently.
    #[must_use]
    pub fn b(mut self, bsel: BSel) -> Self {
        assert!(
            !bsel.is_constant(),
            "use const16()/const_byte() for constant BSelect forms"
        );
        self.bsel = bsel;
        self
    }

    /// Puts a 16-bit byte-form constant on B (§5.9): claims FF.
    ///
    /// # Panics
    ///
    /// Panics if `value` is not in byte form (call
    /// [`synthesis_cost`](crate::synthesis_cost) first, or emit two
    /// instructions), or if FF is already claimed.
    #[must_use]
    pub fn const16(mut self, value: Word) -> Self {
        let (bsel, byte) = const_bsel(value).unwrap_or_else(|| {
            panic!(
                "constant {value:#06x} is not in byte form; assemble it in \
                 two instructions (§5.9)"
            )
        });
        self.bsel = bsel;
        self.claim_ff(FfSlot::Const(byte))
    }

    /// Puts an explicit (BSelect, FF) constant pair on B.
    ///
    /// # Panics
    ///
    /// Panics if `bsel` is not a constant form, or FF is already claimed.
    #[must_use]
    pub fn const_byte(mut self, bsel: BSel, byte: u8) -> Self {
        assert!(bsel.is_constant(), "{bsel:?} is not a constant BSelect");
        self.bsel = bsel;
        self.claim_ff(FfSlot::Const(byte))
    }

    /// Selects the ALU operation (ALUFM index).
    #[must_use]
    pub fn alu(mut self, op: AluOp) -> Self {
        self.aluop = op;
        self
    }

    /// Loads T from RESULT.
    #[must_use]
    pub fn load_t(mut self) -> Self {
        self.load = match self.load {
            LoadControl::None | LoadControl::T => LoadControl::T,
            LoadControl::Rm | LoadControl::Both => LoadControl::Both,
        };
        self
    }

    /// Loads RM (or the stack) from RESULT.
    #[must_use]
    pub fn load_rm(mut self) -> Self {
        self.load = match self.load {
            LoadControl::None | LoadControl::Rm => LoadControl::Rm,
            LoadControl::T | LoadControl::Both => LoadControl::Both,
        };
        self
    }

    /// Invokes an FF function (§5.5): claims FF.
    ///
    /// # Panics
    ///
    /// Panics if FF is already claimed.
    #[must_use]
    pub fn ff(self, op: FfOp) -> Self {
        self.claim_ff(FfSlot::Op(op))
    }

    // --- FF conveniences -------------------------------------------------

    /// FF: COUNT ← COUNT − 1 (tested with [`Cond::CntZero`]).
    #[must_use]
    pub fn ff_dec_count(self) -> Self {
        self.ff(FfOp::DecCount)
    }

    /// FF: halt the simulation.
    #[must_use]
    pub fn ff_halt(self) -> Self {
        self.ff(FfOp::Halt)
    }

    /// FF: slow I/O input (RESULT ← device word).
    #[must_use]
    pub fn ff_input(self) -> Self {
        self.ff(FfOp::IoInput)
    }

    /// FF: slow I/O output (device ← B).
    #[must_use]
    pub fn ff_output(self) -> Self {
        self.ff(FfOp::IoOutput)
    }

    // --- control flow ----------------------------------------------------

    fn set_flow(mut self, flow: Flow) -> Self {
        assert!(
            matches!(self.flow, Flow::Next),
            "control flow specified twice: {:?} then {:?}",
            self.flow,
            flow
        );
        self.flow = flow;
        self
    }

    /// Continue at `label`.
    #[must_use]
    pub fn goto_(self, label: impl Into<String>) -> Self {
        self.set_flow(Flow::Goto(label.into()))
    }

    /// Call the subroutine at `label` (LINK ← return address).
    #[must_use]
    pub fn call(self, label: impl Into<String>) -> Self {
        self.set_flow(Flow::Call(label.into()))
    }

    /// Return via LINK.
    #[must_use]
    pub fn ret(self) -> Self {
        self.set_flow(Flow::Return)
    }

    /// Finish the macroinstruction: the IFU supplies the successor (§5.8).
    #[must_use]
    pub fn ifu_jump(self) -> Self {
        self.set_flow(Flow::IfuJump)
    }

    /// Conditional branch: to `when_true` if `cond` holds, else
    /// `when_false`.  The placer puts `when_false` at an even address and
    /// `when_true` at the next odd address (§5.5).
    #[must_use]
    pub fn branch(
        self,
        cond: Cond,
        when_true: impl Into<String>,
        when_false: impl Into<String>,
    ) -> Self {
        self.set_flow(Flow::Branch {
            cond,
            when_true: when_true.into(),
            when_false: when_false.into(),
        })
    }

    /// Eight-way dispatch on B into the table at `label`.
    #[must_use]
    pub fn dispatch8(self, label: impl Into<String>) -> Self {
        self.set_flow(Flow::Dispatch8(label.into()))
    }

    /// 256-way dispatch on B into the table at `label`.
    #[must_use]
    pub fn dispatch256(self, label: impl Into<String>) -> Self {
        self.set_flow(Flow::Dispatch256(label.into()))
    }

    /// Attaches a source comment (shown in disassembly and traces).
    #[must_use]
    pub fn note(mut self, text: impl Into<String>) -> Self {
        self.comment = Some(text.into());
        self
    }

    // --- queries ----------------------------------------------------------

    /// Whether this instruction starts a memory fetch.
    pub fn starts_fetch(&self) -> bool {
        self.asel.is_fetch()
    }

    /// Whether this instruction starts a memory store.
    pub fn starts_store(&self) -> bool {
        self.asel.is_store()
    }

    /// Whether this instruction is a task-0 stack operation.
    pub fn is_stack_op(&self) -> bool {
        // Task context decides; symbolically, block + any RM use is a stack
        // op for the emulator and a Block for I/O tasks.
        self.block
    }

    /// The FF function, if one is specified.
    pub fn ff_op(&self) -> Option<FfOp> {
        match self.ff {
            FfSlot::Op(op) => Some(op),
            _ => None,
        }
    }

    /// Whether the FF field is still free for the placer (for long jumps).
    pub fn ff_free(&self) -> bool {
        matches!(self.ff, FfSlot::Free)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_composes() {
        let i = Inst::new()
            .rm(7)
            .a(ASel::FetchR)
            .b(BSel::T)
            .alu(AluOp::SUB)
            .load_t()
            .load_rm()
            .goto_("next");
        assert_eq!(i.raddr, 7);
        assert_eq!(i.load, LoadControl::Both);
        assert!(i.starts_fetch());
        assert!(!i.starts_store());
        assert_eq!(i.flow, Flow::Goto("next".into()));
    }

    #[test]
    fn const16_picks_form() {
        let i = Inst::new().const16(0xff07);
        assert_eq!(i.bsel, BSel::ConstLo1);
        assert_eq!(i.ff, FfSlot::Const(7));
        assert!(!i.ff_free());
    }

    #[test]
    #[should_panic(expected = "byte form")]
    fn const16_rejects_general() {
        let _ = Inst::new().const16(0x1234);
    }

    #[test]
    #[should_panic(expected = "FF field conflict")]
    fn ff_conflict_constant_then_op() {
        let _ = Inst::new().const16(7).ff_dec_count();
    }

    #[test]
    #[should_panic(expected = "FF field conflict")]
    fn ff_conflict_two_ops() {
        let _ = Inst::new().ff(FfOp::ReadQ).ff(FfOp::LoadCount);
    }

    #[test]
    #[should_panic(expected = "control flow specified twice")]
    fn flow_conflict() {
        let _ = Inst::new().ret().goto_("x");
    }

    #[test]
    #[should_panic(expected = "constant BSelect")]
    fn b_rejects_constant_forms() {
        let _ = Inst::new().b(BSel::ConstLo0);
    }

    #[test]
    fn stack_encodes_delta() {
        let i = Inst::new().stack(-1);
        assert!(i.block);
        assert_eq!(i.raddr, 0xf);
        let i = Inst::new().stack(1);
        assert_eq!(i.raddr, 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn stack_rejects_big_delta() {
        let _ = Inst::new().stack(8);
    }

    #[test]
    #[should_panic(expected = "conflicts")]
    fn stack_conflicts_with_rm() {
        let _ = Inst::new().rm(3).stack(1);
    }

    #[test]
    fn io_block_sets_bit() {
        let i = Inst::new().io_block();
        assert!(i.block);
        assert!(i.is_stack_op()); // same bit; task context disambiguates
    }

    #[test]
    fn ff_op_query() {
        assert_eq!(Inst::new().ff_dec_count().ff_op(), Some(FfOp::DecCount));
        assert_eq!(Inst::new().ff_op(), None);
        assert!(Inst::new().ff_free());
    }
}
