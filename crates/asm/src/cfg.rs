//! A control-flow graph over a placed microprogram.
//!
//! Nodes are the used microstore words (instructions and placer relays);
//! edges follow the NEXTPC scheme of §3.1/§5.5: in-page gotos and calls,
//! long transfers through the FF field, conditional even/odd pairs,
//! dispatch tables, call-return continuations through LINK.  `RETURN`
//! and `IFUJUMP` have no static successors (their targets are LINK and
//! the IFU decode table respectively); analysis of code behind them
//! starts again from labeled roots.
//!
//! TASK switches are *not* edges: the scheduler can preempt between any
//! two microinstructions, so passes that care about cross-task
//! interference (task-safety) treat every edge as a potential TASK
//! point rather than materializing interference edges.

use crate::{ControlOp, Microword, PlacedProgram};
use dorado_base::{MicroAddr, MICROSTORE_SIZE};

/// One used microstore word and its static flow edges.
#[derive(Debug, Clone)]
pub struct Node {
    /// Where the word lives.
    pub addr: MicroAddr,
    /// The word itself.
    pub word: Microword,
    /// True if the placer synthesized this word (a cross-page escape
    /// relay), false for listed instructions.
    pub relay: bool,
    /// Static successors (only used words; transfers into unused words
    /// are structural violations and carry no edge).
    pub succs: Vec<MicroAddr>,
    /// Static predecessors.
    pub preds: Vec<MicroAddr>,
}

/// The control-flow graph: a dense array over the 4096-word store.
#[derive(Debug, Clone)]
pub struct Cfg {
    nodes: Vec<Option<Node>>,
}

impl Cfg {
    /// Builds the CFG for a placed program.
    pub fn build(placed: &PlacedProgram) -> Cfg {
        use crate::placer::SlotUse;
        let uses = placed.uses();
        let used = |a: MicroAddr| !matches!(uses[a.raw() as usize], SlotUse::Empty | SlotUse::Waste);
        let mut nodes: Vec<Option<Node>> = vec![None; MICROSTORE_SIZE];
        for (i, slot) in uses.iter().enumerate() {
            let relay = match slot {
                SlotUse::Empty | SlotUse::Waste => continue,
                SlotUse::Inst(_) => false,
                SlotUse::Relay(_) => true,
            };
            let addr = MicroAddr::new(i as u16);
            let word = placed.word(addr);
            let succs = successors(addr, word)
                .into_iter()
                .filter(|&s| used(s))
                .collect();
            nodes[i] = Some(Node {
                addr,
                word,
                relay,
                succs,
                preds: Vec::new(),
            });
        }
        // Invert the edges.
        for i in 0..nodes.len() {
            let Some(node) = &nodes[i] else { continue };
            let from = node.addr;
            for s in node.succs.clone() {
                if let Some(t) = nodes[s.raw() as usize].as_mut() {
                    if !t.preds.contains(&from) {
                        t.preds.push(from);
                    }
                }
            }
        }
        Cfg { nodes }
    }

    /// The node at `addr`, if that word is used.
    pub fn node(&self, addr: MicroAddr) -> Option<&Node> {
        self.nodes[addr.raw() as usize].as_ref()
    }

    /// All nodes, in address order.
    pub fn iter(&self) -> impl Iterator<Item = &Node> {
        self.nodes.iter().filter_map(Option::as_ref)
    }

    /// Number of nodes (used words).
    pub fn len(&self) -> usize {
        self.nodes.iter().filter(|n| n.is_some()).count()
    }

    /// True when the program has no used words.
    pub fn is_empty(&self) -> bool {
        self.nodes.iter().all(Option::is_none)
    }

    /// The set of words reachable from `roots` along static edges, as a
    /// dense bitmap indexed by raw address.
    pub fn reach(&self, roots: &[MicroAddr]) -> Vec<bool> {
        let mut seen = vec![false; MICROSTORE_SIZE];
        let mut work: Vec<MicroAddr> = Vec::new();
        for &r in roots {
            if self.node(r).is_some() && !seen[r.raw() as usize] {
                seen[r.raw() as usize] = true;
                work.push(r);
            }
        }
        while let Some(a) = work.pop() {
            let node = self.node(a).expect("reachable nodes exist");
            for &s in &node.succs {
                if !seen[s.raw() as usize] {
                    seen[s.raw() as usize] = true;
                    work.push(s);
                }
            }
        }
        seen
    }
}

/// The static successor addresses of one word, mirroring the machine's
/// NEXTPC computation (unused-word filtering happens in the builder).
pub fn successors(at: MicroAddr, word: Microword) -> Vec<MicroAddr> {
    let Ok(control) = word.control() else {
        return Vec::new();
    };
    let ff = word.ff();
    match control {
        ControlOp::Goto { .. } | ControlOp::GotoLong { .. } => {
            control.static_next(at, ff).into_iter().collect()
        }
        ControlOp::Call { .. } | ControlOp::CallLong { .. } => {
            // The callee, plus the continuation RETURN resumes at
            // (LINK ← THISPC+1, crossing pages like the machine does).
            let mut out: Vec<MicroAddr> = control.static_next(at, ff).into_iter().collect();
            out.push(MicroAddr::new(at.raw().wrapping_add(1)));
            out
        }
        ControlOp::CondGoto { pair, .. } => {
            let base = at.with_offset(u16::from(pair) * 2);
            vec![base, base.or_low_bit(true)]
        }
        ControlOp::Return | ControlOp::IfuJump => Vec::new(),
        ControlOp::Dispatch8 { base_hi } => {
            let base = MicroAddr::from_parts(ff.into(), if base_hi { 8 } else { 0 });
            (0..8).map(|k| base.with_offset(base.page_offset() + k)).collect()
        }
        ControlOp::Dispatch256 => {
            let base = u16::from(ff & 0xf) << 8;
            (0..256).map(|k| MicroAddr::new(base | k)).collect()
        }
    }
}
