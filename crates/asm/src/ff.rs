//! The FF "catchall" function field (§5.5, §6.3.1).
//!
//! "The Dorado encodes most of its operations ... in an eight bit function
//! field called FF \[which\] is used to invoke all of the less frequently used
//! operations that the processor can do: controlling I/O busses, reading and
//! setting state in the memory and IFU, extracting an arbitrary field from a
//! word, reading and loading most registers, non-standard carry and shift
//! operations, and loading small constants into small registers.  FF can
//! also serve as an eight bit constant or as part of a microstore address."
//!
//! [`FfOp`] is the decoded form; the encoding (in 8 bits) is:
//!
//! | Range        | Meaning |
//! |--------------|---------|
//! | `0x00`       | no operation |
//! | `0x01..=0x08`| read a small register onto RESULT |
//! | `0x09..=0x0F`| multiply/divide steps, halt, slow/fast I/O transfers |
//! | `0x10..=0x17`| load a small register from B |
//! | `0x18..=0x19`| decrement COUNT; clear the stack-error flag |
//! | `0x20..=0x3F`| `MEMBASE` ← 5-bit immediate |
//! | `0x40..=0x5F`| `COUNT` ← 5-bit immediate |
//! | `0x60..=0x6F`| make task *n* ready (software wakeup) |
//! | `0x80..=0x9F`| `SHIFTCTL` ← left-cycle-*n* (5-bit immediate) |
//! | `0xC0..=0xC2`| RESULT ← shifter output (no mask / zero mask / MEMDATA mask) |
//! | `0xD0..=0xDF`| `ALUFM[n]` ← B |
//!
//! All other encodings are reserved and fail to decode.  When `BSelect`
//! names a byte-form constant, or `NextControl` is a long (cross-page)
//! transfer, the FF byte carries the constant or page instead and is *not*
//! decoded as a function — the sharing the paper describes.

use crate::error::AsmError;
use dorado_base::TaskId;

/// A decoded FF function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[non_exhaustive]
pub enum FfOp {
    /// No FF operation this cycle.
    #[default]
    Nop,
    /// RESULT ← RBASE (4 bits, zero-extended).
    ReadRBase,
    /// RESULT ← STACKPTR (8 bits).
    ReadStackPtr,
    /// RESULT ← COUNT.
    ReadCount,
    /// RESULT ← SHIFTCTL.
    ReadShiftCtl,
    /// RESULT ← LINK (the task's subroutine linkage register, §6.2.3).
    ReadLink,
    /// RESULT ← Q.
    ReadQ,
    /// RESULT ← MEMBASE (5 bits, zero-extended).
    ReadMemBase,
    /// RESULT ← IOADDRESS (task-specific device address register).
    ReadIoAddress,
    /// One multiply step: Q and the ALU cooperate (§6.3.3: Q "is
    /// automatically shifted in useful ways during multiply and divide
    /// step microinstructions").
    MulStep,
    /// One (restoring) divide step.
    DivStep,
    /// Stop the simulation (stands in for the console microcomputer's halt).
    Halt,
    /// Slow I/O input: RESULT ← IODATA from the device at IOADDRESS (§5.8).
    IoInput,
    /// Slow I/O output: IODATA ← B, to the device at IOADDRESS (§5.8).
    IoOutput,
    /// Fast I/O: move one 16-word munch from storage (address `base\[MEMBASE\]
    /// + A`) to the device at IOADDRESS, bypassing the cache (§5.8).
    IoFetch16,
    /// Fast I/O: move one 16-word munch from the device at IOADDRESS to
    /// storage, bypassing the cache.
    IoStore16,
    /// RBASE ← B (low 4 bits).
    LoadRBase,
    /// MEMBASE ← B (low 5 bits).
    LoadMemBase,
    /// STACKPTR ← B (low 8 bits).
    LoadStackPtr,
    /// COUNT ← B.
    LoadCount,
    /// SHIFTCTL ← B.
    LoadShiftCtl,
    /// Q ← B.
    LoadQ,
    /// IOADDRESS ← B.
    LoadIoAddress,
    /// LINK ← B ("LINK can also be loaded from a data bus, so that control
    /// can be sent to an arbitrary computed address", §6.2.3).
    LoadLink,
    /// COUNT ← COUNT − 1, updating the CntZero branch condition (§6.3.3).
    DecCount,
    /// Clear the sticky stack-error flag.
    ResetStackError,
    /// IFU: load the macro program counter (byte address) from B, starting
    /// prefetch at the new location — the macro-jump primitive (§5.8).
    IfuLoadPc,
    /// IFU: RESULT ← the macro program counter (byte address, low 16 bits).
    IfuReadPc,
    /// Explicitly notify the device at IOADDRESS that its wakeup has been
    /// served.  Unused on the shipped Dorado (the NEXT-bus broadcast does
    /// this for free); required by the §6.2.1 "simpler design" ablation in
    /// which "the microcode \[must\] explicitly notify its device when the
    /// wakeup should be removed", raising the task grain from 2 to 3 cycles.
    IoNotify,
    /// Memory base register `base[MEMBASE]` ← B, zero-extended to 28 bits
    /// ("reading and setting state in the memory", §5.5; the B bus "is
    /// extended to the remainder of the machine ... for the transfer of
    /// status and control", §5.8).
    LoadBase,
    /// RESULT ← low 16 bits of `base[MEMBASE]`.
    ReadBase,
    /// TPC[B₁₅₋₁₂] ← B₁₁₋₀: write another task's program counter ("data
    /// paths for reading and writing [the microstore] ... allow reading
    /// and writing TPC", §6.2.3) — how the emulator bootstraps I/O tasks.
    WriteTpc,
    /// RESULT ← TPC[B₁₅₋₁₂]: read another task's program counter.
    ReadTpc,
    /// MEMBASE ← immediate (0–31).
    LoadMemBaseImm(u8),
    /// COUNT ← immediate (0–31).
    LoadCountImm(u8),
    /// Set the READY bit for a task: a software wakeup ("A task can be
    /// explicitly made ready by a microcode function", §6.2.1).
    WakeTask(TaskId),
    /// SHIFTCTL ← left cycle by immediate (0–31), no masks.
    ShiftCtlImm(u8),
    /// RESULT ← shifter output, unmasked (§6.3.4).
    ShOut,
    /// RESULT ← shifter output, masked positions zeroed.
    ShOutZ,
    /// RESULT ← shifter output, masked positions filled from MEMDATA.
    ShOutM,
    /// ALUFM\[n\] ← B (low 6 bits): remap an ALUOp encoding (§6.3.3).
    LoadAluFm(u8),
}

impl FfOp {
    /// Encodes the operation into the 8-bit FF field.
    pub fn encode(self) -> u8 {
        match self {
            FfOp::Nop => 0x00,
            FfOp::ReadRBase => 0x01,
            FfOp::ReadStackPtr => 0x02,
            FfOp::ReadCount => 0x03,
            FfOp::ReadShiftCtl => 0x04,
            FfOp::ReadLink => 0x05,
            FfOp::ReadQ => 0x06,
            FfOp::ReadMemBase => 0x07,
            FfOp::ReadIoAddress => 0x08,
            FfOp::MulStep => 0x09,
            FfOp::DivStep => 0x0a,
            FfOp::Halt => 0x0b,
            FfOp::IoInput => 0x0c,
            FfOp::IoOutput => 0x0d,
            FfOp::IoFetch16 => 0x0e,
            FfOp::IoStore16 => 0x0f,
            FfOp::LoadRBase => 0x10,
            FfOp::LoadMemBase => 0x11,
            FfOp::LoadStackPtr => 0x12,
            FfOp::LoadCount => 0x13,
            FfOp::LoadShiftCtl => 0x14,
            FfOp::LoadQ => 0x15,
            FfOp::LoadIoAddress => 0x16,
            FfOp::LoadLink => 0x17,
            FfOp::DecCount => 0x18,
            FfOp::ResetStackError => 0x19,
            FfOp::IfuLoadPc => 0x1a,
            FfOp::IfuReadPc => 0x1b,
            FfOp::IoNotify => 0x1c,
            FfOp::LoadBase => 0x1d,
            FfOp::ReadBase => 0x1e,
            FfOp::WriteTpc => 0x1f,
            FfOp::ReadTpc => 0xc4,
            FfOp::LoadMemBaseImm(n) => {
                debug_assert!(n < 32);
                0x20 | (n & 0x1f)
            }
            FfOp::LoadCountImm(n) => {
                debug_assert!(n < 32);
                0x40 | (n & 0x1f)
            }
            FfOp::WakeTask(t) => 0x60 | t.number(),
            FfOp::ShiftCtlImm(n) => {
                debug_assert!(n < 32);
                0x80 | (n & 0x1f)
            }
            FfOp::ShOut => 0xc0,
            FfOp::ShOutZ => 0xc1,
            FfOp::ShOutM => 0xc2,
            FfOp::LoadAluFm(n) => {
                debug_assert!(n < 16);
                0xd0 | (n & 0xf)
            }
        }
    }

    /// Decodes an 8-bit FF field.
    ///
    /// # Errors
    ///
    /// Returns [`AsmError::ReservedEncoding`] for undefined encodings.
    pub fn decode(raw: u8) -> Result<Self, AsmError> {
        Ok(match raw {
            0x00 => FfOp::Nop,
            0x01 => FfOp::ReadRBase,
            0x02 => FfOp::ReadStackPtr,
            0x03 => FfOp::ReadCount,
            0x04 => FfOp::ReadShiftCtl,
            0x05 => FfOp::ReadLink,
            0x06 => FfOp::ReadQ,
            0x07 => FfOp::ReadMemBase,
            0x08 => FfOp::ReadIoAddress,
            0x09 => FfOp::MulStep,
            0x0a => FfOp::DivStep,
            0x0b => FfOp::Halt,
            0x0c => FfOp::IoInput,
            0x0d => FfOp::IoOutput,
            0x0e => FfOp::IoFetch16,
            0x0f => FfOp::IoStore16,
            0x10 => FfOp::LoadRBase,
            0x11 => FfOp::LoadMemBase,
            0x12 => FfOp::LoadStackPtr,
            0x13 => FfOp::LoadCount,
            0x14 => FfOp::LoadShiftCtl,
            0x15 => FfOp::LoadQ,
            0x16 => FfOp::LoadIoAddress,
            0x17 => FfOp::LoadLink,
            0x18 => FfOp::DecCount,
            0x19 => FfOp::ResetStackError,
            0x1a => FfOp::IfuLoadPc,
            0x1b => FfOp::IfuReadPc,
            0x1c => FfOp::IoNotify,
            0x1d => FfOp::LoadBase,
            0x1e => FfOp::ReadBase,
            0x1f => FfOp::WriteTpc,
            0xc4 => FfOp::ReadTpc,
            0x20..=0x3f => FfOp::LoadMemBaseImm(raw & 0x1f),
            0x40..=0x5f => FfOp::LoadCountImm(raw & 0x1f),
            0x60..=0x6f => FfOp::WakeTask(TaskId::from_bits(raw)),
            0x80..=0x9f => FfOp::ShiftCtlImm(raw & 0x1f),
            0xc0 => FfOp::ShOut,
            0xc1 => FfOp::ShOutZ,
            0xc2 => FfOp::ShOutM,
            0xd0..=0xdf => FfOp::LoadAluFm(raw & 0xf),
            _ => {
                return Err(AsmError::ReservedEncoding {
                    field: "FF",
                    value: raw.into(),
                })
            }
        })
    }

    /// Whether the operation overrides the RESULT bus (reads of small
    /// registers, shifter outputs, slow I/O input).
    pub fn drives_result(self) -> bool {
        matches!(
            self,
            FfOp::ReadRBase
                | FfOp::ReadStackPtr
                | FfOp::ReadCount
                | FfOp::ReadShiftCtl
                | FfOp::ReadLink
                | FfOp::ReadQ
                | FfOp::ReadMemBase
                | FfOp::ReadIoAddress
                | FfOp::IfuReadPc
                | FfOp::ReadBase
                | FfOp::ReadTpc
                | FfOp::IoInput
                | FfOp::ShOut
                | FfOp::ShOutZ
                | FfOp::ShOutM
                | FfOp::MulStep
                | FfOp::DivStep
        )
    }

    /// Whether the operation transfers a word on the slow I/O bus (for
    /// bandwidth accounting, §5.8).
    pub fn is_slow_io(self) -> bool {
        matches!(self, FfOp::IoInput | FfOp::IoOutput)
    }

    /// Whether the operation starts a fast-I/O munch transfer (§5.8).
    pub fn is_fast_io(self) -> bool {
        matches!(self, FfOp::IoFetch16 | FfOp::IoStore16)
    }

    /// A short mnemonic for disassembly.
    pub fn mnemonic(self) -> String {
        match self {
            FfOp::Nop => "".into(),
            FfOp::ReadRBase => "RBASE↑".into(),
            FfOp::ReadStackPtr => "STKP↑".into(),
            FfOp::ReadCount => "CNT↑".into(),
            FfOp::ReadShiftCtl => "SHC↑".into(),
            FfOp::ReadLink => "LINK↑".into(),
            FfOp::ReadQ => "Q↑".into(),
            FfOp::ReadMemBase => "MB↑".into(),
            FfOp::ReadIoAddress => "IOA↑".into(),
            FfOp::MulStep => "MULSTEP".into(),
            FfOp::DivStep => "DIVSTEP".into(),
            FfOp::Halt => "HALT".into(),
            FfOp::IoInput => "INPUT".into(),
            FfOp::IoOutput => "OUTPUT".into(),
            FfOp::IoFetch16 => "IOFETCH16".into(),
            FfOp::IoStore16 => "IOSTORE16".into(),
            FfOp::LoadRBase => "RBASE←B".into(),
            FfOp::LoadMemBase => "MB←B".into(),
            FfOp::LoadStackPtr => "STKP←B".into(),
            FfOp::LoadCount => "CNT←B".into(),
            FfOp::LoadShiftCtl => "SHC←B".into(),
            FfOp::LoadQ => "Q←B".into(),
            FfOp::LoadIoAddress => "IOA←B".into(),
            FfOp::LoadLink => "LINK←B".into(),
            FfOp::DecCount => "CNT-1".into(),
            FfOp::ResetStackError => "STKERR←0".into(),
            FfOp::IfuLoadPc => "IFUPC←B".into(),
            FfOp::IfuReadPc => "IFUPC↑".into(),
            FfOp::IoNotify => "IONOTIFY".into(),
            FfOp::LoadBase => "BASE←B".into(),
            FfOp::ReadBase => "BASE↑".into(),
            FfOp::WriteTpc => "TPC←B".into(),
            FfOp::ReadTpc => "TPC↑".into(),
            FfOp::LoadMemBaseImm(n) => format!("MB←{n}"),
            FfOp::LoadCountImm(n) => format!("CNT←{n}"),
            FfOp::WakeTask(t) => format!("WAKE[{}]", t.number()),
            FfOp::ShiftCtlImm(n) => format!("SHC←CY{n}"),
            FfOp::ShOut => "SHOUT".into(),
            FfOp::ShOutZ => "SHOUTZ".into(),
            FfOp::ShOutM => "SHOUTM".into(),
            FfOp::LoadAluFm(n) => format!("ALUFM[{n}]←B"),
        }
    }
}

impl std::fmt::Display for FfOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if matches!(self, FfOp::Nop) {
            f.write_str("nop")
        } else {
            f.write_str(&self.mnemonic())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_ops() -> Vec<FfOp> {
        let mut v = vec![
            FfOp::Nop,
            FfOp::ReadRBase,
            FfOp::ReadStackPtr,
            FfOp::ReadCount,
            FfOp::ReadShiftCtl,
            FfOp::ReadLink,
            FfOp::ReadQ,
            FfOp::ReadMemBase,
            FfOp::ReadIoAddress,
            FfOp::MulStep,
            FfOp::DivStep,
            FfOp::Halt,
            FfOp::IoInput,
            FfOp::IoOutput,
            FfOp::IoFetch16,
            FfOp::IoStore16,
            FfOp::LoadRBase,
            FfOp::LoadMemBase,
            FfOp::LoadStackPtr,
            FfOp::LoadCount,
            FfOp::LoadShiftCtl,
            FfOp::LoadQ,
            FfOp::LoadIoAddress,
            FfOp::LoadLink,
            FfOp::DecCount,
            FfOp::ResetStackError,
            FfOp::IfuLoadPc,
            FfOp::IfuReadPc,
            FfOp::IoNotify,
            FfOp::LoadBase,
            FfOp::ReadBase,
            FfOp::WriteTpc,
            FfOp::ReadTpc,
            FfOp::ShOut,
            FfOp::ShOutZ,
            FfOp::ShOutM,
        ];
        for n in [0u8, 1, 17, 31] {
            v.push(FfOp::LoadMemBaseImm(n));
            v.push(FfOp::LoadCountImm(n));
            v.push(FfOp::ShiftCtlImm(n));
        }
        for n in [0u8, 5, 15] {
            v.push(FfOp::LoadAluFm(n));
        }
        for t in [0u8, 3, 15] {
            v.push(FfOp::WakeTask(TaskId::new(t)));
        }
        v
    }

    #[test]
    fn encode_decode_roundtrip() {
        for op in all_ops() {
            let raw = op.encode();
            let back = FfOp::decode(raw).unwrap_or_else(|e| panic!("{op:?}: {e}"));
            assert_eq!(back, op, "raw {raw:#04x}");
        }
    }

    #[test]
    fn encodings_are_unique() {
        let ops = all_ops();
        for (i, a) in ops.iter().enumerate() {
            for b in &ops[i + 1..] {
                assert_ne!(a.encode(), b.encode(), "{a:?} vs {b:?}");
            }
        }
    }

    #[test]
    fn reserved_encodings_fail() {
        for raw in [0x70u8, 0x7f, 0xa0, 0xc3, 0xc5, 0xcf, 0xe0, 0xff] {
            assert!(FfOp::decode(raw).is_err(), "raw {raw:#04x}");
        }
    }

    #[test]
    fn classification() {
        assert!(FfOp::ReadQ.drives_result());
        assert!(FfOp::IoInput.drives_result());
        assert!(!FfOp::IoOutput.drives_result());
        assert!(!FfOp::LoadCount.drives_result());
        assert!(FfOp::IoInput.is_slow_io() && FfOp::IoOutput.is_slow_io());
        assert!(!FfOp::IoFetch16.is_slow_io());
        assert!(FfOp::IoFetch16.is_fast_io() && FfOp::IoStore16.is_fast_io());
    }

    #[test]
    fn display_nonempty() {
        for op in all_ops() {
            assert!(!format!("{op}").is_empty(), "{op:?}");
        }
    }
}
