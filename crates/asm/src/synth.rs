//! Synthetic microprogram generation, for the placement experiment (E6).
//!
//! §7: "the automatic [placer used] 99.9% of the available memory when
//! called upon to place an essentially full microstore."  To reproduce
//! that, we need microprograms with the statistical shape of real
//! microcode — straight-line runs, conditional branches, calls and
//! returns, FF-consuming constants — big enough to fill the 4096-word
//! store.  The generator is deterministic given a seed (a small xorshift
//! PRNG, so this crate needs no external randomness).

use crate::fields::{ASel, AluOp, BSel, Cond};
use crate::ff::FfOp;
use crate::inst::Inst;
use crate::program::{Assembler, MicroProgram};

/// Statistical profile of generated code.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SynthProfile {
    /// Probability (percent) that an instruction carries a byte-form
    /// constant (claiming FF).
    pub constant_pct: u8,
    /// Probability (percent) that an instruction carries an FF function.
    pub ff_op_pct: u8,
    /// Probability (percent) that a basic block ends in a conditional
    /// branch (vs goto / call / return).
    pub branch_pct: u8,
    /// Mean basic-block length in instructions.
    pub block_len: u8,
}

impl Default for SynthProfile {
    /// Roughly the mix observed in this repository's emulator microcode.
    fn default() -> Self {
        SynthProfile {
            constant_pct: 15,
            ff_op_pct: 25,
            branch_pct: 30,
            block_len: 5,
        }
    }
}

/// A small deterministic xorshift PRNG.
#[derive(Debug, Clone)]
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    fn pct(&mut self, p: u8) -> bool {
        self.below(100) < u64::from(p)
    }
}

fn random_body(rng: &mut Rng, profile: &SynthProfile) -> Inst {
    let mut i = Inst::new()
        .rm((rng.below(16)) as u8)
        .alu(AluOp::new(rng.below(16) as u8).expect("4 bits"));
    i.asel = match rng.below(4) {
        0 => ASel::Rm,
        1 => ASel::T,
        2 => ASel::FetchR,
        _ => ASel::StoreR,
    };
    if rng.pct(profile.constant_pct) {
        // Byte-form constant: low byte random, high byte zero.
        i = i.const16(rng.below(256) as u16);
    } else {
        i.bsel = if rng.pct(50) { BSel::T } else { BSel::Rm };
        if rng.pct(profile.ff_op_pct) {
            let op = match rng.below(6) {
                0 => FfOp::DecCount,
                1 => FfOp::ReadCount,
                2 => FfOp::LoadQ,
                3 => FfOp::ReadQ,
                4 => FfOp::LoadShiftCtl,
                _ => FfOp::ShOut,
            };
            i = i.ff(op);
        }
    }
    match rng.below(3) {
        0 => i.load_t(),
        1 => i.load_rm(),
        _ => i,
    }
}

/// Generates a placeable microprogram of roughly `n_insts` instructions.
///
/// The program is a soup of basic blocks: each block is a short
/// straight-line run ending in a control transfer to another block
/// (conditional branch, goto, or call paired with a return).  Every block
/// is reachable by name so the placer must satisfy the full constraint set.
///
/// # Panics
///
/// Panics if `n_insts < 8`.
pub fn random_program(seed: u64, n_insts: usize, profile: &SynthProfile) -> MicroProgram {
    assert!(n_insts >= 8, "too small to form blocks");
    let mut rng = Rng::new(seed);
    let mut a = Assembler::new();

    // Decide the block structure up front so transfers have real targets.
    let mut blocks = Vec::new();
    let mut budget = n_insts;
    while budget > 0 {
        let len = 1 + (rng.below(u64::from(profile.block_len) * 2 - 1)) as usize;
        let len = len.min(budget);
        blocks.push(len);
        budget -= len;
    }
    let n_blocks = blocks.len();
    let block_label = |i: usize| format!("blk{i}");

    for (bi, len) in blocks.iter().enumerate() {
        a.label(block_label(bi));
        for _ in 0..len.saturating_sub(1) {
            a.emit(random_body(&mut rng, profile));
        }
        // Terminator.
        let term = random_body(&mut rng, profile);
        let succ = block_label(rng.below(n_blocks as u64) as usize);
        let other = block_label(rng.below(n_blocks as u64) as usize);
        let t = if term.ff_free() && rng.pct(30) {
            // Transfers that may need FF keep it free.
            term
        } else {
            let mut t = term;
            t.ff = crate::inst::FfSlot::Free;
            if t.bsel.is_constant() {
                t.bsel = BSel::T;
            }
            t
        };
        if rng.pct(profile.branch_pct) {
            a.emit(t.branch(
                Cond::decode(rng.below(8) as u8).expect("3 bits"),
                succ,
                other,
            ));
        } else {
            match rng.below(3) {
                0 => a.emit(t.goto_(succ)),
                1 => a.emit(t.call(succ)),
                _ => a.emit(t.ret()),
            }
        }
    }
    a.program()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_programs_place() {
        for seed in 1..6 {
            let p = random_program(seed, 400, &SynthProfile::default());
            let placed = p.place().unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            assert!(placed.words_used() >= 400);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = random_program(7, 200, &SynthProfile::default());
        let b = random_program(7, 200, &SynthProfile::default());
        assert_eq!(a.len(), b.len());
        let pa = a.place().unwrap();
        let pb = b.place().unwrap();
        assert_eq!(pa.words(), pb.words());
    }

    #[test]
    fn near_full_store_places_with_high_utilization() {
        // The §7 experiment at reduced scale (the full-size version is the
        // E6 bench): ~3000 instructions of realistic soup.
        let p = random_program(42, 3000, &SynthProfile::default());
        let placed = p.place().expect("must place");
        let stats = placed.stats();
        assert!(
            stats.utilization() > 0.96,
            "utilization {:.4} ({stats:?})",
            stats.utilization()
        );
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn rejects_tiny_programs() {
        let _ = random_program(1, 4, &SynthProfile::default());
    }
}
