//! Symbolic microprograms and the [`Assembler`] front end.
//!
//! Microcode in this workspace is written in Rust, against the chainable
//! [`Inst`] builder, and collected by an [`Assembler`] (playing the role of
//! the Dorado microassembler written by Peter Deutsch and Ed Fiala, see the
//! paper's acknowledgements).  The result is a [`MicroProgram`], which the
//! [placer](crate::placer) turns into a concrete 4096-word microstore image.

use std::collections::HashSet;

use crate::error::AsmError;
use crate::ff::FfOp;
use crate::flow::Flow;
use crate::inst::Inst;
use crate::placer::{place, PlacedProgram};

/// One element of a symbolic program: an instruction or a placer directive.
#[derive(Debug, Clone, PartialEq)]
pub enum Item {
    /// A microinstruction.
    Inst(Inst),
    /// Attach a label to the next instruction.
    Label(String),
    /// Round the next instruction's address up to an even offset, so that it
    /// and its successor form a conditional-branch pair (§5.5).
    PairAlign,
    /// Round the next instruction's address up to an 8-aligned offset (a
    /// dispatch-8 table base, §6.2.3).
    Align8,
    /// Round the next instruction's address up to a 256-aligned address (a
    /// dispatch-256 table base, §6.2.3).
    Align256,
    /// Start a new page (primarily for tests and placement experiments).
    PageBreak,
}

/// A complete symbolic microprogram, ready for placement.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MicroProgram {
    items: Vec<Item>,
}

impl MicroProgram {
    /// The items in listing order.
    pub fn items(&self) -> &[Item] {
        &self.items
    }

    /// The number of instructions (directives and labels excluded).
    pub fn len(&self) -> usize {
        self.items
            .iter()
            .filter(|i| matches!(i, Item::Inst(_)))
            .count()
    }

    /// Whether the program has no instructions.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Places the program into a microstore image.
    ///
    /// # Errors
    ///
    /// Returns an [`AsmError`] when a label is undefined or duplicated, the
    /// store overflows, or a structural constraint cannot be met.
    pub fn place(&self) -> Result<PlacedProgram, AsmError> {
        place(self)
    }

    /// Inserts no-op padding after every instruction whose loaded result is
    /// read by the immediately following instruction, producing microcode
    /// that is correct on a machine *without* the data-bypassing hardware of
    /// §5.6 (the Model-0 ablation, experiment E9).
    ///
    /// Only straight-line (`Flow::Next`) adjacencies are padded; microcode
    /// that branches into a hazard is the microcoder's own lookout, exactly
    /// as it was on the Model 0 ("The result was a number of subtle bugs and
    /// a significant loss of performance").
    pub fn pad_for_no_bypass(&self) -> MicroProgram {
        let mut out = Vec::with_capacity(self.items.len());
        let mut prev_inst: Option<&Inst> = None;
        for item in &self.items {
            if let Item::Inst(inst) = item {
                if let Some(prev) = prev_inst {
                    if matches!(prev.flow, Flow::Next) && hazard(prev, inst) {
                        out.push(Item::Inst(
                            Inst::new().note("no-bypass pad (Model 0)"),
                        ));
                    }
                }
                prev_inst = Some(inst);
            }
            out.push(item.clone());
        }
        MicroProgram { items: out }
    }
}

/// Whether `next` reads a result that `prev` is still writing back — the
/// one-instruction hazard that bypassing (§5.6, Figure 4) hides.
fn hazard(prev: &Inst, next: &Inst) -> bool {
    let prev_loads_t = prev.load.loads_t();
    let prev_loads_rm = prev.load.loads_rm();
    let prev_loads_q = prev.ff_op() == Some(FfOp::LoadQ);

    // Shift microoperations read both halves of the shifter input (RM, T).
    let next_shifts = matches!(
        next.ff_op(),
        Some(FfOp::ShOut) | Some(FfOp::ShOutZ) | Some(FfOp::ShOutM)
    );

    let next_reads_t =
        next.asel.reads_t() || next.bsel == crate::fields::BSel::T || next_shifts;
    // Conservative on RM: the low 4 address bits must match (RBASE is
    // dynamic, so equality of the full address cannot be decided here).
    let next_reads_same_rm = (next.asel.reads_rm()
        || next.bsel == crate::fields::BSel::Rm
        || next_shifts)
        && next.raddr == prev.raddr
        && next.block == prev.block; // stack ops only alias stack ops
    let next_reads_q = next.bsel == crate::fields::BSel::Q
        || next.ff_op() == Some(FfOp::ReadQ)
        || matches!(next.ff_op(), Some(FfOp::MulStep) | Some(FfOp::DivStep));

    (prev_loads_t && next_reads_t)
        || (prev_loads_rm && next_reads_same_rm)
        || (prev_loads_q && next_reads_q)
}

/// The microassembler front end: collects labels, directives, and
/// instructions into a [`MicroProgram`].
///
/// # Examples
///
/// ```
/// use dorado_asm::{Assembler, AluOp, Inst};
///
/// let mut a = Assembler::new();
/// a.label("entry");
/// a.emit(Inst::new().alu(AluOp::INC_A).load_t());
/// a.emit(Inst::new().ff_halt().goto_("entry"));
/// let placed = a.place()?;
/// assert!(placed.address_of("entry").is_some());
/// # Ok::<(), dorado_asm::AsmError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct Assembler {
    items: Vec<Item>,
    defined: HashSet<String>,
}

impl Assembler {
    /// Creates an empty assembler.
    pub fn new() -> Self {
        Assembler::default()
    }

    /// Attaches a label to the next emitted instruction.
    ///
    /// # Panics
    ///
    /// Panics if the label was already defined (an authoring error).
    pub fn label(&mut self, name: impl Into<String>) {
        let name = name.into();
        assert!(
            self.defined.insert(name.clone()),
            "duplicate label `{name}`"
        );
        self.items.push(Item::Label(name));
    }

    /// Emits one instruction.
    pub fn emit(&mut self, inst: Inst) {
        self.items.push(Item::Inst(inst));
    }

    /// Requests that the next two instructions form an even/odd
    /// conditional-branch pair.
    pub fn pair_align(&mut self) {
        self.items.push(Item::PairAlign);
    }

    /// Requests 8-alignment for the next instruction (dispatch-8 table).
    pub fn align8(&mut self) {
        self.items.push(Item::Align8);
    }

    /// Requests 256-alignment for the next instruction (dispatch-256 table).
    pub fn align256(&mut self) {
        self.items.push(Item::Align256);
    }

    /// Forces the next instruction onto a fresh page.
    pub fn page_break(&mut self) {
        self.items.push(Item::PageBreak);
    }

    /// Emits `T ← value` for an arbitrary 16-bit constant, using one
    /// instruction when `value` is in byte form and two otherwise (§5.9).
    /// Returns the number of instructions emitted.
    pub fn load_t_const(&mut self, value: u16) -> usize {
        use crate::constants::{const_bsel, two_part};
        use crate::fields::AluOp;
        if const_bsel(value).is_some() {
            self.emit(Inst::new().const16(value).alu(AluOp::B).load_t());
            1
        } else {
            let [(b1, f1), (b2, f2)] = two_part(value);
            self.emit(Inst::new().const_byte(b1, f1).alu(AluOp::B).load_t());
            self.emit(
                Inst::new()
                    .const_byte(b2, f2)
                    .a(crate::fields::ASel::T)
                    .alu(AluOp::OR)
                    .load_t(),
            );
            2
        }
    }

    /// The number of instructions emitted so far.
    pub fn len(&self) -> usize {
        self.items
            .iter()
            .filter(|i| matches!(i, Item::Inst(_)))
            .count()
    }

    /// Whether no instructions have been emitted.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Finishes assembly, yielding the symbolic program.
    pub fn program(self) -> MicroProgram {
        MicroProgram { items: self.items }
    }

    /// Convenience: finish and place in one step.
    ///
    /// # Errors
    ///
    /// See [`MicroProgram::place`].
    pub fn place(self) -> Result<PlacedProgram, AsmError> {
        self.program().place()
    }
}

/// Builds a `MicroProgram` directly from items (for tests and generators).
impl FromIterator<Item> for MicroProgram {
    fn from_iter<I: IntoIterator<Item = Item>>(iter: I) -> Self {
        MicroProgram {
            items: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fields::{ASel, AluOp, BSel};

    #[test]
    fn assembler_counts_instructions() {
        let mut a = Assembler::new();
        assert!(a.is_empty());
        a.label("x");
        a.emit(Inst::new());
        a.pair_align();
        a.emit(Inst::new());
        assert_eq!(a.len(), 2);
        let p = a.program();
        assert_eq!(p.len(), 2);
        assert!(!p.is_empty());
    }

    #[test]
    #[should_panic(expected = "duplicate label")]
    fn duplicate_labels_panic() {
        let mut a = Assembler::new();
        a.label("x");
        a.label("x");
    }

    #[test]
    fn load_t_const_costs() {
        let mut a = Assembler::new();
        assert_eq!(a.load_t_const(0x0042), 1);
        assert_eq!(a.load_t_const(0x1234), 2);
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn pad_detects_t_hazard() {
        let mut a = Assembler::new();
        a.emit(Inst::new().alu(AluOp::INC_A).load_t()); // writes T
        a.emit(Inst::new().a(ASel::T).alu(AluOp::A)); // reads T next cycle
        let p = a.program();
        assert_eq!(p.len(), 2);
        let padded = p.pad_for_no_bypass();
        assert_eq!(padded.len(), 3);
    }

    #[test]
    fn pad_detects_rm_hazard_same_address_only() {
        let mut a = Assembler::new();
        a.emit(Inst::new().rm(3).alu(AluOp::INC_A).load_rm());
        a.emit(Inst::new().rm(4).alu(AluOp::A)); // different register: safe
        a.emit(Inst::new().rm(4).alu(AluOp::INC_A).load_rm());
        a.emit(Inst::new().rm(4).alu(AluOp::A)); // same register: hazard
        let padded = a.program().pad_for_no_bypass();
        assert_eq!(padded.len(), 5);
    }

    #[test]
    fn pad_detects_q_hazard() {
        let mut a = Assembler::new();
        a.emit(Inst::new().b(BSel::T).ff(FfOp::LoadQ));
        a.emit(Inst::new().b(BSel::Q).alu(AluOp::B).load_t());
        let padded = a.program().pad_for_no_bypass();
        assert_eq!(padded.len(), 3);
    }

    #[test]
    fn pad_ignores_non_adjacent_flow() {
        let mut a = Assembler::new();
        a.label("top");
        a.emit(Inst::new().alu(AluOp::INC_A).load_t().goto_("top"));
        a.emit(Inst::new().a(ASel::T)); // not reached by fall-through
        let padded = a.program().pad_for_no_bypass();
        assert_eq!(padded.len(), 2);
    }

    #[test]
    fn shift_ops_read_both_inputs() {
        let mut a = Assembler::new();
        a.emit(Inst::new().rm(0).alu(AluOp::ADD).load_t());
        a.emit(Inst::new().rm(1).ff(FfOp::ShOut).load_t()); // reads T via shifter
        let padded = a.program().pad_for_no_bypass();
        assert_eq!(padded.len(), 3);
    }
}
