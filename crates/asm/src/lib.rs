//! The Dorado microinstruction format, microassembler, and instruction placer.
//!
//! This crate defines everything about Dorado microcode *as data*: the 34-bit
//! microinstruction word and its eight fields (§6.3.1 of the paper), the
//! `NEXTPC` control encoding (§5.5), the FF catchall function catalog, the
//! byte-form constant scheme (§5.9), ALU and shifter semantics, a symbolic
//! assembler with labels and structured control flow, and the **placer** that
//! assigns symbolic instructions to concrete microstore addresses under the
//! paper's constraints:
//!
//! * a `Goto` carries only a 4-bit in-page offset; crossing pages needs the
//!   FF field ("FF can also serve ... as part of a microstore address"),
//! * a conditional branch names one of eight in-page *pairs*; "the assembler
//!   must place each false branch target at an even address, and the
//!   corresponding true branch target at the next higher odd address",
//! * dispatch tables need 8- or 256-alignment.
//!
//! §7 reports that automatic placement used 99.9 % of an essentially full
//! microstore; the placer reports the statistics needed to reproduce that
//! experiment.
//!
//! # Examples
//!
//! Assemble a counted loop and place it:
//!
//! ```
//! use dorado_asm::{Assembler, AluOp, Cond, Inst};
//!
//! let mut a = Assembler::new();
//! a.pair_align();
//! a.label("top");
//! a.emit(Inst::new().ff_dec_count().goto_("body")); // even pair slot
//! a.label("exit");
//! a.emit(Inst::new().ff_halt().goto_("exit")); // odd pair slot
//! a.label("body");
//! a.emit(Inst::new().alu(AluOp::INC_A).load_t().branch(Cond::CntZero, "exit", "top"));
//! let placed = a.place()?;
//! assert!(placed.words_used() >= 3);
//! # Ok::<(), dorado_asm::AsmError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alu;
pub mod cfg;
pub mod constants;
pub mod disasm;
pub mod error;
pub mod fields;
pub mod ff;
pub mod flow;
pub mod inst;
pub mod microword;
pub mod placer;
pub mod program;
pub mod shifter;
pub mod synth;
pub mod verify;

pub use alu::{alu_eval, default_alufm, AluFunction, AluOutput};
pub use constants::{const_bsel, const_value, synthesis_cost};
pub use error::AsmError;
pub use fields::{ASel, AluOp, BSel, Cond, LoadControl};
pub use ff::FfOp;
pub use flow::{ControlOp, Flow};
pub use inst::{FfSlot, Inst};
pub use microword::Microword;
pub use placer::{PlacedProgram, PlacementHints, PlacementStats, SlotUse};
pub use program::{Assembler, Item, MicroProgram};
pub use shifter::{shifter_output, MaskMode, ShiftCtl};
