//! ALU semantics and the `ALUFM` mapping memory (§6.3.3).
//!
//! The 4-bit `ALUOp` field does not control the ALU directly; it indexes
//! `ALUFM`, "a 16 word memory which maps the four-bit ALUOp field into the
//! six bits required to control the ALU".  [`AluFunction`] is the decoded
//! form of those six bits; [`default_alufm`] is the mapping the microcode
//! loader installs at boot (and which the named [`AluOp`](crate::AluOp)
//! constants assume).

use crate::error::AsmError;
use dorado_base::Word;

/// A decoded 6-bit ALU control value: the operation the ALU actually
/// performs in the second half of the instruction's first execution cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[repr(u8)]
pub enum AluFunction {
    /// `A + B`.
    #[default]
    Add = 0,
    /// `A - B` (implemented as `A + NOT B + 1`).
    Sub = 1,
    /// `A AND B`.
    And = 2,
    /// `A OR B`.
    Or = 3,
    /// `A XOR B`.
    Xor = 4,
    /// Pass `A`.
    PassA = 5,
    /// Pass `B`.
    PassB = 6,
    /// `NOT A`.
    NotA = 7,
    /// `A + 1`.
    IncA = 8,
    /// `A - 1`.
    DecA = 9,
    /// `A + B + saved carry` — non-standard carry for multi-precision
    /// arithmetic (§5.5 mentions "non-standard carry and shift operations").
    AddCarry = 10,
    /// `A AND NOT B`.
    AndNotB = 11,
    /// `A - B - saved borrow`.
    SubBorrow = 12,
    /// `A OR NOT B`.
    OrNotB = 13,
    /// Constant zero.
    Zero = 14,
    /// `NOT (A XOR B)`.
    Xnor = 15,
    /// `NOT B`.
    NotB = 16,
    /// `A + B + 1`.
    AddOne = 17,
    /// `NOT (A AND B)`.
    Nand = 18,
    /// `NOT (A OR B)`.
    Nor = 19,
    /// Constant all-ones.
    Ones = 20,
    /// `B - A`.
    RSub = 21,
    /// `A + A` (left shift by one with carry out).
    Double = 22,
    /// `B + 1`.
    IncB = 23,
}

impl AluFunction {
    /// Decodes a raw 6-bit control value.
    ///
    /// # Errors
    ///
    /// Returns [`AsmError::ReservedEncoding`] for undefined encodings.
    pub fn decode(raw: u8) -> Result<Self, AsmError> {
        Ok(match raw {
            0 => AluFunction::Add,
            1 => AluFunction::Sub,
            2 => AluFunction::And,
            3 => AluFunction::Or,
            4 => AluFunction::Xor,
            5 => AluFunction::PassA,
            6 => AluFunction::PassB,
            7 => AluFunction::NotA,
            8 => AluFunction::IncA,
            9 => AluFunction::DecA,
            10 => AluFunction::AddCarry,
            11 => AluFunction::AndNotB,
            12 => AluFunction::SubBorrow,
            13 => AluFunction::OrNotB,
            14 => AluFunction::Zero,
            15 => AluFunction::Xnor,
            16 => AluFunction::NotB,
            17 => AluFunction::AddOne,
            18 => AluFunction::Nand,
            19 => AluFunction::Nor,
            20 => AluFunction::Ones,
            21 => AluFunction::RSub,
            22 => AluFunction::Double,
            23 => AluFunction::IncB,
            _ => {
                return Err(AsmError::ReservedEncoding {
                    field: "AluFunction",
                    value: raw.into(),
                })
            }
        })
    }

    /// The raw 6-bit control value.
    #[inline]
    pub fn raw(self) -> u8 {
        self as u8
    }

    /// Whether this function is arithmetic (produces meaningful carry and
    /// overflow outputs).
    pub fn is_arithmetic(self) -> bool {
        matches!(
            self,
            AluFunction::Add
                | AluFunction::Sub
                | AluFunction::IncA
                | AluFunction::DecA
                | AluFunction::AddCarry
                | AluFunction::SubBorrow
                | AluFunction::AddOne
                | AluFunction::RSub
                | AluFunction::Double
                | AluFunction::IncB
        )
    }
}

/// The outputs of one ALU evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AluOutput {
    /// The 16-bit result placed on the RESULT bus.
    pub result: Word,
    /// Carry out of bit 15 (for subtraction: *no borrow*).  False for
    /// logical operations.
    pub carry: bool,
    /// Signed (two's-complement) overflow.  False for logical operations.
    pub overflow: bool,
}

fn add3(a: Word, b: Word, carry_in: bool) -> AluOutput {
    let wide = u32::from(a) + u32::from(b) + u32::from(carry_in);
    let result = wide as Word;
    let carry = wide > 0xffff;
    // Signed overflow: both operands same sign, result differs.
    let overflow = ((a ^ result) & (b ^ result) & 0x8000) != 0;
    AluOutput {
        result,
        carry,
        overflow,
    }
}

fn logical(result: Word) -> AluOutput {
    AluOutput {
        result,
        carry: false,
        overflow: false,
    }
}

/// Evaluates an ALU function.
///
/// `saved_carry` is the carry output of the most recent arithmetic operation
/// by the same task, used by [`AluFunction::AddCarry`] and
/// [`AluFunction::SubBorrow`] (`saved_carry` = *no borrow* after a
/// subtraction, following the carry convention).
///
/// # Examples
///
/// ```
/// use dorado_asm::{alu_eval, AluFunction};
/// let out = alu_eval(AluFunction::Add, 0xffff, 1, false);
/// assert_eq!(out.result, 0);
/// assert!(out.carry);
/// ```
pub fn alu_eval(f: AluFunction, a: Word, b: Word, saved_carry: bool) -> AluOutput {
    match f {
        AluFunction::Add => add3(a, b, false),
        AluFunction::AddOne => add3(a, b, true),
        AluFunction::AddCarry => add3(a, b, saved_carry),
        AluFunction::Sub => add3(a, !b, true),
        AluFunction::SubBorrow => add3(a, !b, saved_carry),
        AluFunction::RSub => add3(b, !a, true),
        AluFunction::IncA => add3(a, 0, true),
        AluFunction::DecA => add3(a, 0xffff, false),
        AluFunction::IncB => add3(b, 0, true),
        AluFunction::Double => add3(a, a, false),
        AluFunction::And => logical(a & b),
        AluFunction::Or => logical(a | b),
        AluFunction::Xor => logical(a ^ b),
        AluFunction::Xnor => logical(!(a ^ b)),
        AluFunction::Nand => logical(!(a & b)),
        AluFunction::Nor => logical(!(a | b)),
        AluFunction::AndNotB => logical(a & !b),
        AluFunction::OrNotB => logical(a | !b),
        AluFunction::PassA => logical(a),
        AluFunction::PassB => logical(b),
        AluFunction::NotA => logical(!a),
        AluFunction::NotB => logical(!b),
        AluFunction::Zero => logical(0),
        AluFunction::Ones => logical(0xffff),
    }
}

/// The default `ALUFM` contents: the identity-style mapping assumed by the
/// named [`AluOp`](crate::AluOp) constants.
pub fn default_alufm() -> [AluFunction; 16] {
    [
        AluFunction::Add,
        AluFunction::Sub,
        AluFunction::And,
        AluFunction::Or,
        AluFunction::Xor,
        AluFunction::PassA,
        AluFunction::PassB,
        AluFunction::NotA,
        AluFunction::IncA,
        AluFunction::DecA,
        AluFunction::AddCarry,
        AluFunction::AndNotB,
        AluFunction::SubBorrow,
        AluFunction::OrNotB,
        AluFunction::Zero,
        AluFunction::Xnor,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_basic() {
        let o = alu_eval(AluFunction::Add, 2, 3, false);
        assert_eq!(o.result, 5);
        assert!(!o.carry && !o.overflow);
    }

    #[test]
    fn add_carry_and_overflow() {
        let o = alu_eval(AluFunction::Add, 0x8000, 0x8000, false);
        assert_eq!(o.result, 0);
        assert!(o.carry);
        assert!(o.overflow); // -32768 + -32768 overflows
        let o = alu_eval(AluFunction::Add, 0x7fff, 1, false);
        assert_eq!(o.result, 0x8000);
        assert!(!o.carry);
        assert!(o.overflow); // 32767 + 1 overflows
    }

    #[test]
    fn sub_is_twos_complement() {
        let o = alu_eval(AluFunction::Sub, 5, 3, false);
        assert_eq!(o.result, 2);
        assert!(o.carry); // no borrow
        let o = alu_eval(AluFunction::Sub, 3, 5, false);
        assert_eq!(o.result, 0xfffe); // -2
        assert!(!o.carry); // borrow
        let o = alu_eval(AluFunction::RSub, 3, 5, false);
        assert_eq!(o.result, 2);
    }

    #[test]
    fn saved_carry_chains() {
        // 32-bit add: 0x0001_ffff + 0x0000_0001 = 0x0002_0000
        let lo = alu_eval(AluFunction::Add, 0xffff, 0x0001, false);
        assert_eq!(lo.result, 0);
        assert!(lo.carry);
        let hi = alu_eval(AluFunction::AddCarry, 0x0001, 0x0000, lo.carry);
        assert_eq!(hi.result, 2);
        // 32-bit subtract with borrow: 0x0002_0000 - 0x0000_0001
        let lo = alu_eval(AluFunction::Sub, 0x0000, 0x0001, false);
        assert_eq!(lo.result, 0xffff);
        assert!(!lo.carry); // borrow
        let hi = alu_eval(AluFunction::SubBorrow, 0x0002, 0x0000, lo.carry);
        assert_eq!(hi.result, 0x0001);
    }

    #[test]
    fn inc_dec() {
        assert_eq!(alu_eval(AluFunction::IncA, 0xffff, 0, false).result, 0);
        assert!(alu_eval(AluFunction::IncA, 0xffff, 0, false).carry);
        assert_eq!(alu_eval(AluFunction::DecA, 0, 0, false).result, 0xffff);
        assert_eq!(alu_eval(AluFunction::IncB, 0, 7, false).result, 8);
    }

    #[test]
    fn logic_ops() {
        assert_eq!(
            alu_eval(AluFunction::And, 0b1100, 0b1010, false).result,
            0b1000
        );
        assert_eq!(
            alu_eval(AluFunction::Or, 0b1100, 0b1010, false).result,
            0b1110
        );
        assert_eq!(
            alu_eval(AluFunction::Xor, 0b1100, 0b1010, false).result,
            0b0110
        );
        assert_eq!(
            alu_eval(AluFunction::AndNotB, 0b1100, 0b1010, false).result,
            0b0100
        );
        assert_eq!(alu_eval(AluFunction::NotA, 0, 0, false).result, 0xffff);
        assert_eq!(alu_eval(AluFunction::Zero, 0xdead, 0xbeef, false).result, 0);
        assert_eq!(
            alu_eval(AluFunction::Ones, 0xdead, 0xbeef, false).result,
            0xffff
        );
    }

    #[test]
    fn double_shifts_left() {
        let o = alu_eval(AluFunction::Double, 0x8001, 0, false);
        assert_eq!(o.result, 0x0002);
        assert!(o.carry);
    }

    #[test]
    fn decode_roundtrip() {
        for raw in 0..24u8 {
            let f = AluFunction::decode(raw).unwrap();
            assert_eq!(f.raw(), raw);
        }
        assert!(AluFunction::decode(63).is_err());
    }

    #[test]
    fn default_alufm_matches_aluop_constants() {
        use crate::fields::AluOp;
        let fm = default_alufm();
        assert_eq!(fm[AluOp::ADD.index()], AluFunction::Add);
        assert_eq!(fm[AluOp::SUB.index()], AluFunction::Sub);
        assert_eq!(fm[AluOp::XNOR.index()], AluFunction::Xnor);
        assert_eq!(fm[AluOp::ZERO.index()], AluFunction::Zero);
    }

    #[test]
    fn arithmetic_classification() {
        assert!(AluFunction::Add.is_arithmetic());
        assert!(AluFunction::SubBorrow.is_arithmetic());
        assert!(!AluFunction::And.is_arithmetic());
        assert!(!AluFunction::PassB.is_arithmetic());
    }
}
