//! Automatic placement of microinstructions (§5.5, §7).
//!
//! The `NEXTPC` scheme trades microword bits for placement constraints:
//! in-page successors are cheap, cross-page transfers need the FF byte, a
//! conditional branch's false target must sit at an even address with the
//! true target at the next odd address, and dispatch tables must be aligned.
//! "We were concerned about the amount of microstore which might be wasted
//! by automatic placement of instructions under all these constraints.  In
//! fact, however, the automatic [placer used] 99.9% of the available memory
//! when called upon to place an essentially full microstore." (§7)
//!
//! The algorithm here is a greedy sequential packer with a constraint-repair
//! fixpoint:
//!
//! 1. **Layout** walks the listing, assigning each instruction the next
//!    free slot (honouring alignment directives).  Conditional branches get
//!    their target pair allocated immediately after them — inlining the
//!    fall-through arm when possible, otherwise materializing one-word
//!    *relay* jumps (the duplication cost the paper mentions for shared
//!    branch targets).
//! 2. **Encoding** resolves labels into concrete [`ControlOp`]s.  When it
//!    discovers a violated constraint that layout could not foresee (e.g. a
//!    fall-through crossing a page boundary out of an instruction whose FF
//!    is already claimed by a constant), it reports a *repair* — a forced
//!    page break or an extra relay — and layout runs again.  Each round adds
//!    at least one repair, so the loop terminates.

use std::collections::{HashMap, HashSet};

use crate::error::AsmError;

use crate::flow::{ControlOp, Flow};
use crate::inst::{FfSlot, Inst};
use crate::microword::Microword;
use crate::program::{Item, MicroProgram};
use dorado_base::{MicroAddr, MICROSTORE_SIZE, PAGE_SIZE};

/// What occupies one microstore word after placement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SlotUse {
    /// Unallocated.
    Empty,
    /// Program instruction (by listing index).
    Inst(usize),
    /// A placer-inserted relay jump to the named label.
    Relay(String),
    /// A word lost to alignment or page-escape padding.
    Waste,
}

/// Counters describing placement quality — the quantities behind the §7
/// placement experiment (E6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PlacementStats {
    /// Program instructions placed.
    pub instructions: usize,
    /// Relay words inserted (cross-page escapes, duplicated branch targets).
    pub relays: usize,
    /// Words wasted to alignment and page-escape padding.
    pub waste: usize,
    /// Number of constraint-repair rounds the fixpoint needed.
    pub repair_rounds: usize,
}

impl PlacementStats {
    /// Useful words: instructions plus relays.
    pub fn used(&self) -> usize {
        self.instructions + self.relays
    }

    /// The footprint: used plus wasted words.
    pub fn footprint(&self) -> usize {
        self.used() + self.waste
    }

    /// Fraction of the footprint holding useful words — the utilization
    /// measure of §7 ("99.9% of the available memory").
    pub fn utilization(&self) -> f64 {
        if self.footprint() == 0 {
            1.0
        } else {
            self.used() as f64 / self.footprint() as f64
        }
    }
}

/// A placed microprogram: the 4096-word store image plus symbol and
/// provenance information.
#[derive(Debug, Clone)]
pub struct PlacedProgram {
    words: Vec<Microword>,
    uses: Vec<SlotUse>,
    labels: HashMap<String, MicroAddr>,
    inst_addrs: Vec<MicroAddr>,
    stats: PlacementStats,
}

impl PlacedProgram {
    /// The microword at `addr`.
    pub fn word(&self, addr: MicroAddr) -> Microword {
        self.words[addr.raw() as usize]
    }

    /// The full 4096-word image.
    pub fn words(&self) -> &[Microword] {
        &self.words
    }

    /// What occupies each word.
    pub fn uses(&self) -> &[SlotUse] {
        &self.uses
    }

    /// The address a label was placed at.
    pub fn address_of(&self, label: &str) -> Option<MicroAddr> {
        self.labels.get(label).copied()
    }

    /// The address of the *n*-th instruction in the listing.
    pub fn inst_addr(&self, index: usize) -> Option<MicroAddr> {
        self.inst_addrs.get(index).copied()
    }

    /// All labels and their addresses.
    pub fn labels(&self) -> impl Iterator<Item = (&str, MicroAddr)> {
        self.labels.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Words holding instructions or relays.
    pub fn words_used(&self) -> usize {
        self.stats.used()
    }

    /// Placement statistics.
    pub fn stats(&self) -> &PlacementStats {
        &self.stats
    }

    /// Patches one word of the image (the console's microstore-write path;
    /// also used to corrupt images in verification tests).  The slot's
    /// provenance is unchanged.
    pub fn set_word(&mut self, addr: MicroAddr, word: Microword) {
        self.words[addr.raw() as usize] = word;
    }

    /// Replaces a placer relay word with a copy of instruction `inst`
    /// (branch-slot filling): the word, provenance, and statistics all
    /// change together so listings, structural verification, and the CFG
    /// stay coherent with the patched image.
    ///
    /// # Panics
    ///
    /// Panics if the slot at `addr` does not hold a relay — only wasted
    /// branch-window words may be filled this way.
    pub fn fill_relay(&mut self, addr: MicroAddr, word: Microword, inst: usize) {
        let raw = addr.raw() as usize;
        assert!(
            matches!(self.uses[raw], SlotUse::Relay(_)),
            "fill_relay at {addr}: slot holds {:?}, not a relay",
            self.uses[raw]
        );
        self.words[raw] = word;
        self.uses[raw] = SlotUse::Inst(inst);
        self.stats.relays -= 1;
        self.stats.instructions += 1;
    }
}

/// Advisory placement preferences an optimizer can feed into
/// [`place_with_hints`].  Hints never change program semantics — they only
/// bias where the packer puts things.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PlacementHints {
    /// Labels to place at even addresses (as if the source carried a
    /// `pair_align` directive), so branches targeting them can reuse the
    /// even/odd pair ("case A") instead of burning relay words.  Unknown
    /// labels are ignored.
    pub pair_align: Vec<String>,
}

/// Internal repair requests discovered during encoding.
enum Repair {
    /// Force instruction `index` to start a fresh page.
    Break(usize),
    /// Allocate a relay immediately after instruction `index`, targeting
    /// the label.
    Relay(usize, String),
}

/// One scheduled word during layout.
#[derive(Debug, Clone)]
enum Slot {
    Inst(usize),
    Relay { target: String },
    Waste,
}

struct Layout {
    /// slot index -> contents (parallel to store addresses 0..4096).
    slots: Vec<Option<Slot>>,
    labels: HashMap<String, MicroAddr>,
    inst_addr: Vec<Option<MicroAddr>>,
    /// For each branch instruction index: the pair base offset (even) used.
    branch_pair: HashMap<usize, u16>,
    /// Instructions that may not be relocated by compaction (branches and
    /// inlined pair arms, whose positions encode their semantics).
    pinned: HashSet<usize>,
    waste: usize,
}

/// Preprocessed program: instructions with their attached labels/directives.
struct Listing<'p> {
    insts: Vec<&'p Inst>,
    /// Labels attached to each instruction.
    labels_at: Vec<Vec<&'p str>>,
    /// Directives attached to each instruction.
    pair_align: Vec<bool>,
    align8: Vec<bool>,
    align256: Vec<bool>,
    page_break: Vec<bool>,
    /// label -> instruction index.
    label_index: HashMap<&'p str, usize>,
}

fn preprocess(program: &MicroProgram) -> Result<Listing<'_>, AsmError> {
    let mut insts = Vec::new();
    let mut labels_at: Vec<Vec<&str>> = Vec::new();
    let mut pair_align = Vec::new();
    let mut align8 = Vec::new();
    let mut align256 = Vec::new();
    let mut page_break = Vec::new();
    let mut label_index = HashMap::new();

    let mut pending_labels: Vec<&str> = Vec::new();
    let mut pending = (false, false, false, false);
    for item in program.items() {
        match item {
            Item::Label(name) => {
                if label_index.contains_key(name.as_str()) {
                    return Err(AsmError::DuplicateLabel(name.clone()));
                }
                label_index.insert(name.as_str(), insts.len());
                pending_labels.push(name);
            }
            Item::PairAlign => pending.0 = true,
            Item::Align8 => pending.1 = true,
            Item::Align256 => pending.2 = true,
            Item::PageBreak => pending.3 = true,
            Item::Inst(inst) => {
                insts.push(inst);
                labels_at.push(std::mem::take(&mut pending_labels));
                pair_align.push(pending.0);
                align8.push(pending.1);
                align256.push(pending.2);
                page_break.push(pending.3);
                pending = (false, false, false, false);
            }
        }
    }
    if !pending_labels.is_empty() {
        return Err(AsmError::UndefinedLabel(format!(
            "label `{}` attached past the last instruction",
            pending_labels[0]
        )));
    }
    if insts.is_empty() {
        return Err(AsmError::EmptyProgram);
    }
    // Check label references.
    for inst in &insts {
        for l in inst.flow.labels() {
            if !label_index.contains_key(l) {
                return Err(AsmError::UndefinedLabel(l.to_string()));
            }
        }
    }
    Ok(Listing {
        insts,
        labels_at,
        pair_align,
        align8,
        align256,
        page_break,
        label_index,
    })
}

/// Whether instruction `i` may be moved to any free slot: nothing falls
/// through into it, its own flow works from anywhere, and its position does
/// not carry meaning (not a branch, pair arm, or aligned table entry).
fn relocatable(listing: &Listing<'_>, layout: &Layout, i: usize) -> bool {
    if layout.pinned.contains(&i)
        || listing.pair_align[i]
        || listing.align8[i]
        || listing.align256[i]
    {
        return false;
    }
    if i > 0 && matches!(listing.insts[i - 1].flow, Flow::Next) {
        return false; // the predecessor falls into this slot
    }
    match &listing.insts[i].flow {
        Flow::Return => true,
        Flow::Goto(_) | Flow::Call(_) => listing.insts[i].ff_free(),
        _ => false,
    }
}

/// Moves relocatable instructions from the tail of the store into interior
/// holes, shrinking the footprint — the squeeze that lets the placer
/// approach the paper's "99.9% of the available memory" (§7).
fn compact(listing: &Listing<'_>, layout: &mut Layout) {
    loop {
        let Some(last) = layout.slots.iter().rposition(|s| s.is_some()) else {
            return;
        };
        match &layout.slots[last] {
            Some(Slot::Waste) => {
                layout.slots[last] = None;
                layout.waste -= 1;
            }
            Some(Slot::Inst(i)) if relocatable(listing, layout, *i) => {
                let i = *i;
                let Some(hole) = layout.slots[..last]
                    .iter()
                    .position(|s| matches!(s, Some(Slot::Waste)))
                else {
                    return;
                };
                layout.slots[hole] = Some(Slot::Inst(i));
                layout.slots[last] = None;
                layout.waste -= 1;
                record_inst(listing, layout, i, hole as u16);
            }
            _ => return,
        }
    }
}

/// Places a microprogram.  See the [module docs](self) for the algorithm.
///
/// # Errors
///
/// Returns an [`AsmError`] for undefined/duplicate labels, store overflow,
/// misaligned dispatch tables, or unsatisfiable FF sharing.
pub fn place(program: &MicroProgram) -> Result<PlacedProgram, AsmError> {
    place_with_hints(program, &PlacementHints::default())
}

/// [`place`] with advisory [`PlacementHints`]: hinted labels acquire a
/// pair-align constraint before layout, biasing branch pairs onto even/odd
/// addresses so later branches can reuse them.
///
/// # Errors
///
/// Same failure modes as [`place`].
pub fn place_with_hints(
    program: &MicroProgram,
    hints: &PlacementHints,
) -> Result<PlacedProgram, AsmError> {
    let mut listing = preprocess(program)?;
    for label in &hints.pair_align {
        if let Some(&i) = listing.label_index.get(label.as_str()) {
            listing.pair_align[i] = true;
        }
    }
    let mut breaks: HashSet<usize> = HashSet::new();
    let mut relays: HashMap<usize, Vec<String>> = HashMap::new();
    // Each repair round adds a break or a relay keyed by instruction, so
    // the loop is bounded by a small multiple of the program size.
    let max_rounds = 2 * listing.insts.len() + 16;
    for round in 0..max_rounds {
        let mut layout = layout_pass(&listing, &breaks, &relays)?;
        compact(&listing, &mut layout);
        match encode_pass(&listing, &layout) {
            Ok((words, uses, mut stats)) => {
                stats.repair_rounds = round;
                let inst_addrs = layout
                    .inst_addr
                    .iter()
                    .map(|a| a.expect("all instructions placed"))
                    .collect();
                return Ok(PlacedProgram {
                    words,
                    uses,
                    labels: layout.labels,
                    inst_addrs,
                    stats,
                });
            }
            Err(Ok(Repair::Break(i))) => {
                if !breaks.insert(i) {
                    // No progress is possible: surface the diagnostic.
                    return Err(AsmError::FfConflict {
                        first: format!(
                            "instruction {i} cannot reach its successor \
                             even from a fresh page"
                        ),
                        second: "FF already claimed".into(),
                    });
                }
            }
            Err(Ok(Repair::Relay(i, label))) => {
                relays.entry(i).or_default().push(label);
            }
            Err(Err(e)) => return Err(e),
        }
    }
    Err(AsmError::StoreFull {
        needed: MICROSTORE_SIZE + 1,
    })
}

const PAGE: u16 = PAGE_SIZE as u16;

fn page_of(raw: u16) -> u16 {
    raw / PAGE
}

struct Cursor {
    next: u16,
}

impl Cursor {
    fn skip_to(&mut self, addr: u16, layout: &mut Layout) -> Result<(), AsmError> {
        while self.next < addr {
            self.waste_one(layout)?;
        }
        Ok(())
    }

    fn waste_one(&mut self, layout: &mut Layout) -> Result<(), AsmError> {
        let i = self.next as usize;
        if i >= MICROSTORE_SIZE {
            return Err(AsmError::StoreFull { needed: i + 1 });
        }
        if layout.slots[i].is_none() {
            layout.slots[i] = Some(Slot::Waste);
            layout.waste += 1;
        }
        self.next += 1;
        Ok(())
    }

    fn alloc(&mut self, layout: &mut Layout, slot: Slot) -> Result<u16, AsmError> {
        let i = self.next as usize;
        if i >= MICROSTORE_SIZE {
            return Err(AsmError::StoreFull { needed: i + 1 });
        }
        debug_assert!(layout.slots[i].is_none(), "slot {i} already allocated");
        layout.slots[i] = Some(slot);
        self.next += 1;
        Ok(i as u16)
    }
}

fn layout_pass(
    listing: &Listing<'_>,
    breaks: &HashSet<usize>,
    relay_reqs: &HashMap<usize, Vec<String>>,
) -> Result<Layout, AsmError> {
    let n = listing.insts.len();
    let mut layout = Layout {
        slots: vec![None; MICROSTORE_SIZE],
        labels: HashMap::new(),
        inst_addr: vec![None; n],
        branch_pair: HashMap::new(),
        pinned: HashSet::new(),
        waste: 0,
    };
    let mut cur = Cursor { next: 0 };

    let has_directive = |k: usize| {
        listing.pair_align[k]
            || listing.align8[k]
            || listing.align256[k]
            || listing.page_break[k]
    };

    let mut i = 0usize;
    while i < n {
        if layout.inst_addr[i].is_some() {
            // Already placed (inlined into a branch pair).
            i += 1;
            continue;
        }
        // Collect the fall-through segment starting here: a run of
        // `Flow::Next` instructions plus its terminator.  Fall-through does
        // not require adjacency (every word names its successor), only
        // same-page reach or a free FF for the cross-page long form — so a
        // segment is placed page by page, splitting at FF-free words.
        let mut seg = vec![i];
        while matches!(listing.insts[*seg.last().expect("nonempty")].flow, Flow::Next) {
            let j = seg.last().unwrap() + 1;
            if j >= n || layout.inst_addr[j].is_some() || has_directive(j) {
                break;
            }
            seg.push(j);
        }

        // Alignment directives (attached to the segment head); a repair
        // break anywhere in the segment moves the whole segment.
        if (listing.page_break[i] || seg.iter().any(|k| breaks.contains(k)))
            && !cur.next.is_multiple_of(PAGE)
        {
            cur.skip_to((page_of(cur.next) + 1) * PAGE, &mut layout)?;
        }
        if listing.align256[i] && !cur.next.is_multiple_of(256) {
            cur.skip_to((cur.next / 256 + 1) * 256, &mut layout)?;
        }
        if listing.align8[i] && !cur.next.is_multiple_of(8) {
            cur.skip_to((cur.next / 8 + 1) * 8, &mut layout)?;
        }
        if listing.pair_align[i] && !cur.next.is_multiple_of(2) {
            cur.waste_one(&mut layout)?;
        }

        let arms = when_of(listing, &seg);
        place_segment(listing, &mut layout, &mut cur, &seg, arms)?;
        let term = *seg.last().unwrap();
        // Explicitly requested relays (repairs for FF-busy cross-page
        // gotos).  A relay only needs to share the *page* of its source,
        // so an existing alignment hole in that page is the perfect home.
        if let Some(targets) = relay_reqs.get(&term) {
            let page = layout.inst_addr[term].expect("just placed").page() as usize;
            for tgt in targets {
                let hole = (page * PAGE_SIZE..(page + 1) * PAGE_SIZE)
                    .find(|&s| matches!(layout.slots[s], Some(Slot::Waste)));
                match hole {
                    Some(s) => {
                        layout.slots[s] = Some(Slot::Relay { target: tgt.clone() });
                        layout.waste -= 1;
                    }
                    None => {
                        cur.alloc(&mut layout, Slot::Relay { target: tgt.clone() })?;
                    }
                }
            }
        }
        i = term + 1;
    }
    Ok(layout)
}

/// The branch arms of a segment's terminator, if it is a branch.
fn when_of<'p>(listing: &Listing<'p>, seg: &[usize]) -> Option<(&'p str, &'p str)> {
    match &listing.insts[*seg.last().expect("nonempty")].flow {
        Flow::Branch {
            when_true,
            when_false,
            ..
        } => Some((when_true.as_str(), when_false.as_str())),
        _ => None,
    }
}

/// Places one fall-through segment: as much as fits per page, splitting
/// only at instructions whose FF is free (they escape with a long goto).
/// A branch terminator needs three contiguous words (its target pair and
/// itself) unless its pair already exists in the landing page.
fn place_segment(
    listing: &Listing<'_>,
    layout: &mut Layout,
    cur: &mut Cursor,
    seg: &[usize],
    branch_arms: Option<(&str, &str)>,
) -> Result<(), AsmError> {
    let mut pos = 0usize; // next unplaced element of `seg`
    while pos < seg.len() {
        let left = &seg[pos..];
        let offset = (cur.next % PAGE) as usize;
        let room = PAGE as usize - offset;
        // Cost of finishing the whole segment in this page.
        let tail_cost = match branch_arms {
            Some((wt, wf)) => {
                let case_a = pair_ready(listing, layout, cur, wt, wf, left.len() - 1);
                left.len() - 1 + if case_a { 1 } else { 3 }
            }
            None => left.len(),
        };
        if tail_cost <= room {
            for &k in &left[..left.len() - 1] {
                let a = cur.alloc(layout, Slot::Inst(k))?;
                record_inst(listing, layout, k, a);
            }
            let term = *left.last().expect("nonempty");
            match branch_arms {
                Some((wt, wf)) => {
                    place_branch(listing, layout, cur, term, wt, wf)?;
                }
                None => {
                    let a = cur.alloc(layout, Slot::Inst(term))?;
                    record_inst(listing, layout, term, a);
                }
            }
            return Ok(());
        }
        // Must split: the last body instruction placed in this page needs a
        // free FF for its cross-page escape.
        let max_here = room.min(left.len().saturating_sub(1));
        let split = (1..=max_here)
            .rev()
            .find(|&s| listing.insts[left[s - 1]].ff_free());
        match split {
            Some(s) => {
                for &k in &left[..s] {
                    let a = cur.alloc(layout, Slot::Inst(k))?;
                    record_inst(listing, layout, k, a);
                }
                pos += s;
                if !cur.next.is_multiple_of(PAGE) {
                    cur.skip_to((page_of(cur.next) + 1) * PAGE, layout)?;
                }
            }
            None if offset > 0 => {
                // Retry with a whole fresh page.
                cur.skip_to((page_of(cur.next) + 1) * PAGE, layout)?;
            }
            None => {
                return Err(AsmError::FfConflict {
                    first: format!(
                        "a fall-through run of {} FF-busy instructions                          cannot cross a page boundary",
                        left.len()
                    ),
                    second: "no free FF for the page escape".into(),
                });
            }
        }
    }
    Ok(())
}

/// Whether a branch's target pair already exists, correctly arranged, in
/// the page the branch would land in (`body_len` words past the cursor) —
/// the placer's "case A".
fn pair_ready(
    listing: &Listing<'_>,
    layout: &Layout,
    cur: &Cursor,
    when_true: &str,
    when_false: &str,
    body_len: usize,
) -> bool {
    let f_idx = listing.label_index[when_false];
    let t_idx = listing.label_index[when_true];
    match (layout.inst_addr[f_idx], layout.inst_addr[t_idx]) {
        (Some(fa), Some(ta)) => {
            fa.page_offset() % 2 == 0
                && ta.raw() == fa.raw() + 1
                && page_of(cur.next + body_len as u16) == fa.page()
        }
        _ => false,
    }
}

fn record_inst(listing: &Listing<'_>, layout: &mut Layout, i: usize, addr: u16) {
    layout.inst_addr[i] = Some(MicroAddr::new(addr));
    for l in &listing.labels_at[i] {
        layout.labels.insert((*l).to_string(), MicroAddr::new(addr));
    }
}

/// Places a conditional branch and arranges its even/odd target pair.
fn place_branch(
    listing: &Listing<'_>,
    layout: &mut Layout,
    cur: &mut Cursor,
    i: usize,
    when_true: &str,
    when_false: &str,
) -> Result<(), AsmError> {
    let f_idx = listing.label_index[when_false];
    let t_idx = listing.label_index[when_true];

    // Case A: the pair already exists — `when_false` placed at an even
    // offset with `when_true` at the next odd offset.  The branch must land
    // in the same page; if the cursor is elsewhere, fall through to pair
    // allocation (relays) instead of forcing a page move.
    layout.pinned.insert(i);
    if let (Some(fa), Some(ta)) = (layout.inst_addr[f_idx], layout.inst_addr[t_idx]) {
        if fa.page_offset() % 2 == 0
            && ta.raw() == fa.raw() + 1
            && page_of(cur.next) == fa.page()
        {
            let addr = cur.alloc(layout, Slot::Inst(i))?;
            record_inst(listing, layout, i, addr);
            layout.branch_pair.insert(i, fa.page_offset() / 2);
            return Ok(());
        }
    }

    // Allocate a fresh pair adjacent to the branch, in the same page: three
    // consecutive words are needed.  At an even cursor the pair goes
    // *first* and the branch third (instruction order in the store is
    // free — every word names its successor explicitly, §5.5); at an odd
    // cursor the branch goes first.  Either way, no padding.
    loop {
        let offset = cur.next % PAGE;
        if offset + 2 < PAGE {
            break;
        }
        // Not enough room in this page: move to the next one.
        cur.waste_one(layout)?;
    }

    let branch_first = cur.next % 2 == 1;
    // An inlined arm is pinned to the pair's position, so its own outgoing
    // flow must work from *anywhere*: a free FF covers every cross-page
    // case (long goto/call, long fall-through escape), and Return/IFUJump
    // need no target at all.  Arms that fail this are relayed instead and
    // their instruction placed later as a normal segment.
    let inline_ok = |k: usize| {
        listing.insts[k].ff_free()
            || matches!(listing.insts[k].flow, Flow::Return | Flow::IfuJump)
    };
    let addr;
    if branch_first {
        addr = cur.alloc(layout, Slot::Inst(i))?;
        record_inst(listing, layout, i, addr);
    } else {
        addr = cur.next + 2; // the branch will land after the pair
    }
    let pair_base = cur.next % PAGE;
    layout.branch_pair.insert(i, pair_base / 2);

    // False arm (even slot): inline the next listing instruction when it is
    // exactly the false target and nothing else constrains it.
    let inline_false = f_idx == i + 1
        && inline_ok(f_idx)
        && layout.inst_addr[f_idx].is_none()
        && !listing.pair_align[f_idx]
        && !listing.align8[f_idx]
        && !listing.align256[f_idx]
        && !listing.page_break[f_idx]
        && !matches!(listing.insts[f_idx].flow, Flow::Branch { .. });
    if inline_false {
        layout.pinned.insert(f_idx);
        let a = cur.alloc(layout, Slot::Inst(f_idx))?;
        record_inst(listing, layout, f_idx, a);
    } else {
        cur.alloc(
            layout,
            Slot::Relay {
                target: when_false.to_string(),
            },
        )?;
    }

    // True arm (odd slot): inline when it is the next instruction and the
    // false arm did not already claim it.
    let inline_true = !inline_false
        && t_idx == i + 1
        && inline_ok(t_idx)
        && layout.inst_addr[t_idx].is_none()
        && !listing.pair_align[t_idx]
        && !listing.align8[t_idx]
        && !listing.align256[t_idx]
        && !listing.page_break[t_idx]
        && !matches!(listing.insts[t_idx].flow, Flow::Branch { .. });
    if inline_true {
        layout.pinned.insert(t_idx);
        let a = cur.alloc(layout, Slot::Inst(t_idx))?;
        record_inst(listing, layout, t_idx, a);
    } else {
        cur.alloc(
            layout,
            Slot::Relay {
                target: when_true.to_string(),
            },
        )?;
    }
    if !branch_first {
        let a = cur.alloc(layout, Slot::Inst(i))?;
        debug_assert_eq!(a, addr);
        record_inst(listing, layout, i, a);
    }
    Ok(())
}

type EncodeResult = Result<(Vec<Microword>, Vec<SlotUse>, PlacementStats), Result<Repair, AsmError>>;

fn encode_pass(listing: &Listing<'_>, layout: &Layout) -> EncodeResult {
    let mut words = vec![Microword::default(); MICROSTORE_SIZE];
    let mut uses = vec![SlotUse::Empty; MICROSTORE_SIZE];
    let mut stats = PlacementStats {
        waste: layout.waste,
        ..PlacementStats::default()
    };

    for (raw, slot) in layout.slots.iter().enumerate() {
        let addr = MicroAddr::new(raw as u16);
        match slot {
            None => {}
            Some(Slot::Waste) => {
                uses[raw] = SlotUse::Waste;
            }
            Some(Slot::Relay { target, .. }) => {
                let dest = layout.labels[target];
                let (control, ff) = route(addr, dest, true, false).map_err(Err)?;
                words[raw] = Microword::default().with_control(control).with_ff(ff);
                uses[raw] = SlotUse::Relay(target.clone());
                stats.relays += 1;
            }
            Some(Slot::Inst(i)) => {
                let inst = listing.insts[*i];
                let word = encode_inst(listing, layout, *i, inst, addr)?;
                words[raw] = word;
                uses[raw] = SlotUse::Inst(*i);
                stats.instructions += 1;
            }
        }
    }
    Ok((words, uses, stats))
}

/// Chooses short or long form for a transfer from `at` to `dest`,
/// returning `None` when no encoding exists (cross-page with a busy FF).
/// This is [`route`] for external rewriters — branch-slot filling re-aims
/// a copied instruction's control field with it.
pub fn reroute(
    at: MicroAddr,
    dest: MicroAddr,
    ff_free: bool,
    call: bool,
) -> Option<(ControlOp, u8)> {
    route(at, dest, ff_free, call).ok()
}

/// Chooses short or long form for a transfer from `at` to `dest`.
fn route(
    at: MicroAddr,
    dest: MicroAddr,
    ff_free: bool,
    call: bool,
) -> Result<(ControlOp, u8), AsmError> {
    let offset = dest.page_offset() as u8;
    if dest.page() == at.page() {
        Ok((
            if call {
                ControlOp::Call { offset }
            } else {
                ControlOp::Goto { offset }
            },
            0,
        ))
    } else if ff_free {
        Ok((
            if call {
                ControlOp::CallLong { offset }
            } else {
                ControlOp::GotoLong { offset }
            },
            dest.page() as u8,
        ))
    } else {
        // Caller converts this into a repair.
        Err(AsmError::FfConflict {
            first: "cross-page transfer needs FF".into(),
            second: "FF already claimed".into(),
        })
    }
}

fn encode_inst(
    listing: &Listing<'_>,
    layout: &Layout,
    i: usize,
    inst: &Inst,
    at: MicroAddr,
) -> Result<Microword, Result<Repair, AsmError>> {
    let mut word = Microword::default()
        .with_raddr(inst.raddr)
        .with_aluop(inst.aluop)
        .with_bsel(inst.bsel)
        .with_asel(inst.asel)
        .with_block(inst.block);
    word = word.with_load_control(inst.load);
    let base_ff = match inst.ff {
        FfSlot::Free => None,
        FfSlot::Op(op) => Some(op.encode()),
        FfSlot::Const(b) => Some(b),
    };

    let ff_free = base_ff.is_none();
    let (control, flow_ff) = match &inst.flow {
        Flow::Next => {
            let dest = next_inst_addr(listing, layout, i)
                .ok_or(Err(AsmError::UndefinedLabel(
                    "fall-through past the last instruction".into(),
                )))?;
            match route(at, dest, ff_free, false) {
                Ok(x) => x,
                Err(_) if at.page_offset() != 0 => {
                    // Move this instruction to a fresh page so that it and
                    // its successor share a page again.
                    return Err(Ok(Repair::Break(i)));
                }
                Err(_) => {
                    return Err(Err(AsmError::FfConflict {
                        first: format!(
                            "fall-through at {at} (instruction {i}) crosses to {:?}",
                            next_inst_addr(listing, layout, i)
                        ),
                        second: "FF already claimed".into(),
                    }))
                }
            }
        }
        Flow::Goto(label) | Flow::Call(label) => {
            let call = matches!(inst.flow, Flow::Call(_));
            let dest = layout.labels[label.as_str()];
            match route(at, dest, ff_free, call) {
                Ok(x) => x,
                Err(_) => {
                    // FF busy and target off-page: route through a relay
                    // placed right after this instruction.
                    match find_relay(layout, at, label) {
                        Some(relay_addr) if relay_addr.page() == at.page() => {
                            let offset = relay_addr.page_offset() as u8;
                            (
                                if call {
                                    ControlOp::Call { offset }
                                } else {
                                    ControlOp::Goto { offset }
                                },
                                0,
                            )
                        }
                        Some(_) => return Err(Ok(Repair::Break(i))),
                        None => return Err(Ok(Repair::Relay(i, label.clone()))),
                    }
                }
            }
        }
        Flow::Return => (ControlOp::Return, 0),
        Flow::IfuJump => (ControlOp::IfuJump, 0),
        Flow::Branch { cond, .. } => {
            let pair = layout.branch_pair[&i] as u8;
            if pair >= 8 {
                return Err(Err(AsmError::BranchPairUnplaceable {
                    at,
                    when_false: "pair index out of range".into(),
                    when_true: String::new(),
                }));
            }
            (ControlOp::CondGoto { cond: *cond, pair }, 0)
        }
        Flow::Dispatch8(label) => {
            let dest = layout.labels[label.as_str()];
            if !dest.page_offset().is_multiple_of(8) {
                return Err(Err(AsmError::BadDispatchTable(format!(
                    "dispatch-8 table `{label}` at {dest} is not 8-aligned"
                ))));
            }
            if !ff_free {
                return Err(Err(AsmError::FfConflict {
                    first: "dispatch-8 needs FF for the table page".into(),
                    second: "FF already claimed".into(),
                }));
            }
            (
                ControlOp::Dispatch8 {
                    base_hi: dest.page_offset() >= 8,
                },
                dest.page() as u8,
            )
        }
        Flow::Dispatch256(label) => {
            let dest = layout.labels[label.as_str()];
            if !dest.raw().is_multiple_of(256) {
                return Err(Err(AsmError::BadDispatchTable(format!(
                    "dispatch-256 table `{label}` at {dest} is not 256-aligned"
                ))));
            }
            if !ff_free {
                return Err(Err(AsmError::FfConflict {
                    first: "dispatch-256 needs FF for the table quadrant".into(),
                    second: "FF already claimed".into(),
                }));
            }
            (ControlOp::Dispatch256, (dest.raw() / 256) as u8)
        }
    };

    word = word.with_control(control);
    word = word.with_ff(base_ff.unwrap_or(flow_ff));
    Ok(word)
}

fn next_inst_addr(listing: &Listing<'_>, layout: &Layout, i: usize) -> Option<MicroAddr> {
    if i + 1 < listing.insts.len() {
        layout.inst_addr[i + 1]
    } else {
        None
    }
}

/// Finds a relay slot for `label` in the same page as `at`.
fn find_relay(layout: &Layout, at: MicroAddr, label: &str) -> Option<MicroAddr> {
    let page = at.page() as usize;
    (page * PAGE_SIZE..(page + 1) * PAGE_SIZE).find_map(|raw| match &layout.slots[raw] {
        Some(Slot::Relay { target }) if target == label => Some(MicroAddr::new(raw as u16)),
        _ => None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fields::{AluOp, Cond};
    use crate::program::Assembler;

    fn nop() -> Inst {
        Inst::new()
    }

    #[test]
    fn straight_line_is_sequential() {
        let mut a = Assembler::new();
        for _ in 0..5 {
            a.emit(nop());
        }
        a.emit(nop().ff_halt().goto_("end"));
        a.label("end");
        // "end" needs an instruction after it:
        // (re-emit: label must precede an instruction)
        a.emit(nop().ret());
        let placed = a.place().unwrap();
        for k in 0..7 {
            assert_eq!(placed.inst_addr(k).unwrap().raw(), k as u16);
        }
        // Fall-throughs encode as in-page gotos to the next slot.
        let w = placed.word(MicroAddr::new(0));
        assert_eq!(w.control().unwrap(), ControlOp::Goto { offset: 1 });
    }

    #[test]
    fn page_crossing_uses_long_goto() {
        let mut a = Assembler::new();
        for _ in 0..(PAGE_SIZE + 2) {
            a.emit(nop());
        }
        a.emit(nop().ret());
        let placed = a.place().unwrap();
        // The word at offset 15 must escape to page 1.
        let w = placed.word(MicroAddr::from_parts(0, 15));
        assert_eq!(w.control().unwrap(), ControlOp::GotoLong { offset: 0 });
        assert_eq!(w.ff(), 1);
    }

    #[test]
    fn page_crossing_with_busy_ff_forces_break() {
        let mut a = Assembler::new();
        // 15 words of filler, then a constant-carrying instruction that
        // would land at offset 15 where its fall-through crosses the page.
        for _ in 0..15 {
            a.emit(nop());
        }
        a.emit(nop().const16(7).alu(AluOp::B).load_t());
        a.emit(nop().ret());
        let placed = a.place().unwrap();
        let const_addr = placed.inst_addr(15).unwrap();
        // The segment planner splits the run at an FF-free word, so the
        // constant-carrying instruction lands at the next page's start —
        // with no repair rounds at all.
        assert_eq!(const_addr, MicroAddr::from_parts(1, 0));
        assert_eq!(placed.stats().repair_rounds, 0);
        assert!(placed.stats().waste >= 1);
    }

    #[test]
    fn branch_pair_inline_false_arm() {
        let mut a = Assembler::new();
        a.emit(nop().branch(Cond::Zero, "t", "f"));
        a.label("f");
        a.emit(nop().ret()); // inlined at the even slot
        a.label("t");
        a.emit(nop().ret()); // placed later; odd slot holds a relay... or inline
        let placed = a.place().unwrap();
        let b = placed.word(placed.inst_addr(0).unwrap());
        let ControlOp::CondGoto { pair, .. } = b.control().unwrap() else {
            panic!("not a branch");
        };
        let f_addr = placed.address_of("f").unwrap();
        assert_eq!(f_addr.page_offset() % 2, 0);
        assert_eq!(f_addr.page_offset(), u16::from(pair) * 2);
        // True target reached via the odd slot (relay or inline).
        let odd = MicroAddr::new(f_addr.raw() + 1);
        let w = placed.word(odd);
        match w.control().unwrap() {
            ControlOp::Goto { offset } => {
                assert_eq!(
                    placed.address_of("t").unwrap().page_offset(),
                    u16::from(offset)
                );
            }
            ControlOp::GotoLong { .. } | ControlOp::Return => {}
            other => panic!("unexpected odd-slot control {other:?}"),
        }
    }

    #[test]
    fn backward_branch_to_prebuilt_pair() {
        let mut a = Assembler::new();
        a.pair_align();
        a.label("top");
        a.emit(nop().ff_dec_count().goto_("body")); // even
        a.label("exit");
        a.emit(nop().ff_halt().goto_("exit")); // odd
        a.label("body");
        a.emit(nop().branch(Cond::CntZero, "exit", "top"));
        let placed = a.place().unwrap();
        let top = placed.address_of("top").unwrap();
        let exit = placed.address_of("exit").unwrap();
        assert_eq!(top.page_offset() % 2, 0);
        assert_eq!(exit.raw(), top.raw() + 1);
        let b = placed.word(placed.inst_addr(2).unwrap());
        assert_eq!(
            b.control().unwrap(),
            ControlOp::CondGoto {
                cond: Cond::CntZero,
                pair: (top.page_offset() / 2) as u8
            }
        );
        // No relays needed: the loop costs no extra words.
        assert_eq!(placed.stats().relays, 0);
    }

    #[test]
    fn shared_branch_targets_get_duplicated_relays() {
        let mut a = Assembler::new();
        a.pair_align();
        a.label("f1");
        a.emit(nop()); // even
        a.label("t1");
        a.emit(nop()); // odd
        a.emit(nop().branch(Cond::Zero, "t1", "f1")); // case A, no relays
        // A second branch to the same targets from elsewhere cannot reuse
        // the pair (it is not at the cursor's page position after more code)
        // — it gets relay duplication, the §5.5 annoyance.
        for _ in 0..20 {
            a.emit(nop());
        }
        a.emit(nop().branch(Cond::Zero, "t1", "f1"));
        a.emit(nop().ret());
        let placed = a.place().unwrap();
        assert!(placed.stats().relays >= 2);
    }

    #[test]
    fn calls_and_returns() {
        let mut a = Assembler::new();
        a.emit(nop().call("sub"));
        a.emit(nop().ff_halt().goto_("done"));
        a.label("done");
        a.emit(nop().ret());
        a.label("sub");
        a.emit(nop().ret());
        let placed = a.place().unwrap();
        let call = placed.word(placed.inst_addr(0).unwrap());
        assert!(matches!(
            call.control().unwrap(),
            ControlOp::Call { .. } | ControlOp::CallLong { .. }
        ));
    }

    #[test]
    fn cross_page_call_uses_ff() {
        let mut a = Assembler::new();
        a.emit(nop().call("sub"));
        a.emit(nop().ff_halt().goto_("self"));
        a.label("self");
        a.emit(nop().ret());
        a.page_break();
        a.page_break(); // still one break; idempotent on page boundary
        // A fall-through predecessor pins `sub` (the compactor would
        // otherwise pull a lone relocatable instruction back into page 0).
        a.emit(nop());
        a.label("sub");
        a.emit(nop().ret());
        let placed = a.place().unwrap();
        let call = placed.word(placed.inst_addr(0).unwrap());
        let sub = placed.address_of("sub").unwrap();
        assert_eq!(sub.page(), 1, "pinned on its own page");
        assert_eq!(
            call.control().unwrap(),
            ControlOp::CallLong {
                offset: sub.page_offset() as u8
            }
        );
        assert_eq!(call.ff(), sub.page() as u8);
    }

    #[test]
    fn cross_page_goto_with_busy_ff_gets_relay() {
        let mut a = Assembler::new();
        // Instruction with FF claimed by a constant, jumping cross-page.
        a.emit(nop().const16(0x42).alu(AluOp::B).load_t().goto_("far"));
        a.page_break();
        a.emit(nop()); // fall-through predecessor pins `far` off-page
        a.label("far");
        a.emit(nop().ret());
        let placed = a.place().unwrap();
        assert!(placed.stats().relays >= 1);
        // The first instruction short-gotos the relay, which long-gotos far.
        let w0 = placed.word(placed.inst_addr(0).unwrap());
        let ControlOp::Goto { offset } = w0.control().unwrap() else {
            panic!("expected short goto to relay");
        };
        let relay = placed.word(MicroAddr::from_parts(0, offset.into()));
        let far = placed.address_of("far").unwrap();
        assert_eq!(
            relay.control().unwrap(),
            ControlOp::GotoLong {
                offset: far.page_offset() as u8
            }
        );
        assert_eq!(relay.ff(), far.page() as u8);
    }

    #[test]
    fn dispatch8_table() {
        let mut a = Assembler::new();
        a.emit(nop().dispatch8("tbl"));
        a.align8();
        a.label("tbl");
        for _ in 0..8 {
            a.emit(nop().ret());
        }
        let placed = a.place().unwrap();
        let d = placed.word(placed.inst_addr(0).unwrap());
        let tbl = placed.address_of("tbl").unwrap();
        assert_eq!(tbl.page_offset() % 8, 0);
        match d.control().unwrap() {
            ControlOp::Dispatch8 { base_hi } => {
                assert_eq!(base_hi, tbl.page_offset() >= 8);
                assert_eq!(d.ff(), tbl.page() as u8);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn dispatch256_table() {
        let mut a = Assembler::new();
        a.emit(nop().dispatch256("tbl"));
        a.align256();
        a.label("tbl");
        for _ in 0..256 {
            a.emit(nop().ret());
        }
        let placed = a.place().unwrap();
        let tbl = placed.address_of("tbl").unwrap();
        assert_eq!(tbl.raw() % 256, 0);
        let d = placed.word(placed.inst_addr(0).unwrap());
        assert_eq!(d.control().unwrap(), ControlOp::Dispatch256);
        assert_eq!(d.ff(), (tbl.raw() / 256) as u8);
    }

    #[test]
    fn undefined_label_errors() {
        let mut a = Assembler::new();
        a.emit(nop().goto_("nowhere"));
        assert!(matches!(
            a.place(),
            Err(AsmError::UndefinedLabel(l)) if l == "nowhere"
        ));
    }

    #[test]
    fn empty_program_errors() {
        let a = Assembler::new();
        assert!(matches!(a.place(), Err(AsmError::EmptyProgram)));
    }

    #[test]
    fn store_overflow_errors() {
        let mut a = Assembler::new();
        for _ in 0..MICROSTORE_SIZE {
            a.emit(nop());
        }
        a.emit(nop().ret());
        assert!(matches!(a.place(), Err(AsmError::StoreFull { .. })));
    }

    #[test]
    fn utilization_of_dense_code_is_high() {
        let mut a = Assembler::new();
        for _ in 0..1000 {
            a.emit(nop());
        }
        a.emit(nop().ret());
        let placed = a.place().unwrap();
        assert!(placed.stats().utilization() > 0.99);
    }

    #[test]
    fn trailing_fallthrough_errors() {
        let mut a = Assembler::new();
        a.emit(nop()); // Flow::Next with no successor
        assert!(a.place().is_err());
    }
}
