//! Byte-form constants (§5.9).
//!
//! "A large fraction of the constants used in microcoding are either small
//! positive or negative (2's complement) integers, or sparsely populated bit
//! vectors, with the property that one of the two eight bit fields in the
//! constant is all zeroes or all ones.  Thus a useful subset can be
//! specified using the eight bits of FF for one byte of the constant and two
//! other bits for the other byte value and position. ... most 16 bit
//! constants can be specified in one microinstruction, and any constant can
//! be assembled in two microinstructions."

use crate::fields::BSel;
use dorado_base::Word;

/// Finds a one-instruction encoding for `value`, if it is in byte form:
/// returns the constant `BSelect` variant and the FF byte.
///
/// When both bytes of `value` qualify (e.g. `0x00ff`), the low-byte
/// position is preferred.
///
/// # Examples
///
/// ```
/// use dorado_asm::{const_bsel, BSel};
/// assert_eq!(const_bsel(0x0042), Some((BSel::ConstLo0, 0x42)));
/// assert_eq!(const_bsel(0xff42), Some((BSel::ConstLo1, 0x42)));
/// assert_eq!(const_bsel(0x4200), Some((BSel::ConstHi0, 0x42)));
/// assert_eq!(const_bsel(0x42ff), Some((BSel::ConstHi1, 0x42)));
/// assert_eq!(const_bsel(0x1234), None);
/// ```
pub fn const_bsel(value: Word) -> Option<(BSel, u8)> {
    let hi = (value >> 8) as u8;
    let lo = (value & 0xff) as u8;
    match (hi, lo) {
        (0x00, b) => Some((BSel::ConstLo0, b)),
        (0xff, b) => Some((BSel::ConstLo1, b)),
        (b, 0x00) => Some((BSel::ConstHi0, b)),
        (b, 0xff) => Some((BSel::ConstHi1, b)),
        _ => None,
    }
}

/// The constant a (`BSelect`, FF) combination places on the B bus, or `None`
/// if `bsel` is not a constant selection.
///
/// # Examples
///
/// ```
/// use dorado_asm::{const_value, BSel};
/// assert_eq!(const_value(BSel::ConstLo1, 0x42), Some(0xff42));
/// assert_eq!(const_value(BSel::T, 0x42), None);
/// ```
pub fn const_value(bsel: BSel, ff: u8) -> Option<Word> {
    let ff = Word::from(ff);
    match bsel {
        BSel::ConstLo0 => Some(ff),
        BSel::ConstLo1 => Some(0xff00 | ff),
        BSel::ConstHi0 => Some(ff << 8),
        BSel::ConstHi1 => Some((ff << 8) | 0x00ff),
        _ => None,
    }
}

/// The number of microinstructions needed to materialize `value`: 1 if it
/// is in byte form, 2 otherwise ("any constant can be assembled in two
/// microinstructions", §5.9 — e.g. load the high byte, then OR in the low).
pub fn synthesis_cost(value: Word) -> usize {
    if const_bsel(value).is_some() {
        1
    } else {
        2
    }
}

/// Decomposes an arbitrary constant into two byte-form parts whose bitwise
/// OR is `value`, for two-instruction synthesis.  The first part is always
/// `ConstHi0`-form, the second `ConstLo0`-form.
pub fn two_part(value: Word) -> [(BSel, u8); 2] {
    [
        (BSel::ConstHi0, (value >> 8) as u8),
        (BSel::ConstLo0, (value & 0xff) as u8),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_integers_are_one_instruction() {
        // Small positive and negative integers: the common cases of §5.9.
        for v in 0..=255u16 {
            assert_eq!(synthesis_cost(v), 1, "{v}");
        }
        for v in 1..=256u16 {
            let neg = 0u16.wrapping_sub(v); // -1..=-256 are 0xff00..=0xffff
            assert_eq!(synthesis_cost(neg), 1, "{neg:#06x}");
        }
        assert_eq!(synthesis_cost(0xffff), 1);
        assert_eq!(synthesis_cost(0x8000), 1);
    }

    #[test]
    fn roundtrip_one_instruction_constants() {
        for v in [0u16, 1, 0xff, 0x100, 0x4200, 0xff01, 0x01ff, 0xffff, 0x8000] {
            let (bsel, ff) = const_bsel(v).unwrap_or_else(|| panic!("{v:#06x}"));
            assert_eq!(const_value(bsel, ff), Some(v), "{v:#06x}");
        }
    }

    #[test]
    fn general_constants_cost_two() {
        assert_eq!(synthesis_cost(0x1234), 2);
        assert_eq!(synthesis_cost(0xabcd), 2);
    }

    #[test]
    fn two_part_or_reconstructs() {
        for v in [0x1234u16, 0xabcd, 0x00ff, 0xffff, 0] {
            let [(b1, f1), (b2, f2)] = two_part(v);
            let part1 = const_value(b1, f1).unwrap();
            let part2 = const_value(b2, f2).unwrap();
            assert_eq!(part1 | part2, v, "{v:#06x}");
        }
    }

    #[test]
    fn non_constant_bsel_gives_none() {
        for b in [BSel::Rm, BSel::T, BSel::Q, BSel::MemData] {
            assert_eq!(const_value(b, 0x42), None);
        }
    }
}
