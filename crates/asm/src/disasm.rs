//! Microword disassembly, for traces, debugging, and the microprogram
//! debugger role that Ed Fiala's tools played on the real machine.

use crate::fields::{ASel, BSel, LoadControl};
use crate::flow::ControlOp;
use crate::microword::Microword;
use crate::placer::{PlacedProgram, SlotUse};
use dorado_base::MicroAddr;

/// Renders one microword as a human-readable line.
///
/// Fields that decode to reserved encodings are rendered as `?(value)`
/// rather than failing, since the debugger must cope with garbage words.
///
/// # Examples
///
/// ```
/// use dorado_asm::{disasm::disassemble, AluOp, BSel, Inst, Microword};
/// use dorado_base::MicroAddr;
///
/// let w = Microword::default().with_aluop(AluOp::SUB);
/// let line = disassemble(MicroAddr::new(0), w);
/// assert!(line.contains("aluop1"));
/// ```
pub fn disassemble(at: MicroAddr, word: Microword) -> String {
    let mut parts: Vec<String> = Vec::new();

    // Destination(s).
    let load = word.load_control();
    match load {
        Ok(LoadControl::None) => {}
        Ok(LoadControl::T) => parts.push("T←".into()),
        Ok(LoadControl::Rm) => parts.push(format!("RM[{:x}]←", word.raddr())),
        Ok(LoadControl::Both) => parts.push(format!("T,RM[{:x}]←", word.raddr())),
        Err(_) => parts.push(format!("?load({})", (word.raw() >> 20) & 7)),
    }

    // ALU expression.
    let a_str = match word.asel() {
        Ok(ASel::Rm) => format!("RM[{:x}]", word.raddr()),
        Ok(ASel::T) => "T".into(),
        Ok(ASel::IfuData) => "IFUDATA".into(),
        Ok(ASel::FetchIfu) => "Fetch[IFUDATA]".into(),
        Ok(ASel::FetchR) => format!("Fetch[RM[{:x}]]", word.raddr()),
        Ok(ASel::StoreR) => format!("Store[RM[{:x}]]", word.raddr()),
        Ok(ASel::FetchT) => "Fetch[T]".into(),
        Ok(ASel::StoreIfu) => "Store[IFUDATA]".into(),
        Err(_) => "?A".into(),
    };
    let b_str = match word.bsel() {
        Ok(BSel::Rm) => format!("RM[{:x}]", word.raddr()),
        Ok(BSel::T) => "T".into(),
        Ok(BSel::Q) => "Q".into(),
        Ok(BSel::MemData) => "MEMDATA".into(),
        Ok(b @ (BSel::ConstLo0 | BSel::ConstLo1 | BSel::ConstHi0 | BSel::ConstHi1)) => {
            match crate::constants::const_value(b, word.ff()) {
                Some(v) => format!("{v:#06x}"),
                None => "?const".into(),
            }
        }
        Err(_) => "?B".into(),
    };
    parts.push(format!("{a_str} {} {b_str}", word.aluop()));

    // Block / stack.
    if word.block() {
        parts.push(format!("BLOCK/STK{:+}", word.stack_delta()));
    }

    // FF, unless consumed by a constant or page.
    let ff_is_const = word.bsel().map(|b| b.is_constant()).unwrap_or(false);
    let ff_is_page = word.control().map(|c| c.uses_ff_page()).unwrap_or(false);
    if !ff_is_const && !ff_is_page && word.ff() != 0 {
        match crate::ff::FfOp::decode(word.ff()) {
            Ok(op) => parts.push(op.mnemonic()),
            Err(_) => parts.push(format!("?ff({:#04x})", word.ff())),
        }
    }

    // Control.
    match word.control() {
        Ok(ControlOp::Goto { offset }) if u16::from(offset) == at.page_offset() + 1 => {}
        Ok(c) => {
            if c.uses_ff_page() {
                parts.push(format!("{c} [page {:#04x}]", word.ff()));
            } else {
                parts.push(format!("{c}"));
            }
        }
        Err(_) => parts.push(format!("?next({:#04x})", word.next_control_raw())),
    }

    format!("{at}: {}", parts.join(", "))
}

/// Renders a full listing of `placed` — labels, instructions, relays
/// and padding — interleaving `annotations` (address-keyed comment
/// lines, e.g. lint diagnostics) beneath the words they refer to.
///
/// # Examples
///
/// ```
/// use dorado_asm::{disasm::disassemble_annotated, Assembler, Inst};
/// use dorado_base::MicroAddr;
///
/// let mut a = Assembler::new();
/// a.label("spin");
/// a.emit(Inst::new().goto_("spin"));
/// let placed = a.place().unwrap();
/// let at = placed.address_of("spin").unwrap();
/// let listing = disassemble_annotated(&placed, &[(at, "busy loop".into())]);
/// assert!(listing.contains("spin:"));
/// assert!(listing.contains("; ^ busy loop"));
/// ```
pub fn disassemble_annotated(
    placed: &PlacedProgram,
    annotations: &[(MicroAddr, String)],
) -> String {
    let mut labels: Vec<(MicroAddr, &str)> = placed.labels().map(|(n, a)| (a, n)).collect();
    labels.sort();
    let mut out = String::new();
    for (i, slot) in placed.uses().iter().enumerate() {
        let addr = MicroAddr::new(i as u16);
        match slot {
            SlotUse::Empty => continue,
            SlotUse::Waste => out.push_str(&format!("{addr}:  ; (padding)\n")),
            SlotUse::Relay(target) => {
                out.push_str(&disassemble(addr, placed.word(addr)));
                out.push_str(&format!("  ; relay -> {target}\n"));
            }
            SlotUse::Inst(_) => {
                for (_, label) in labels.iter().filter(|(a, _)| *a == addr) {
                    out.push_str(&format!("{label}:\n"));
                }
                out.push_str(&disassemble(addr, placed.word(addr)));
                out.push('\n');
            }
        }
        for (_, note) in annotations.iter().filter(|(a, _)| *a == addr) {
            out.push_str(&format!("        ; ^ {note}\n"));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fields::{AluOp, Cond};
    use crate::flow::ControlOp;

    #[test]
    fn renders_loads_and_alu() {
        let w = Microword::default()
            .with_raddr(3)
            .with_aluop(AluOp::ADD)
            .with_load_control(LoadControl::Both)
            .with_asel(ASel::T)
            .with_bsel(BSel::Q);
        let s = disassemble(MicroAddr::new(0), w);
        assert!(s.contains("T,RM[3]←"), "{s}");
        assert!(s.contains("T aluop0 Q"), "{s}");
    }

    #[test]
    fn renders_constants() {
        let w = Microword::default()
            .with_bsel(BSel::ConstLo1)
            .with_ff(0x42);
        let s = disassemble(MicroAddr::new(0), w);
        assert!(s.contains("0xff42"), "{s}");
    }

    #[test]
    fn renders_branches_and_pages() {
        let w = Microword::default().with_control(ControlOp::CondGoto {
            cond: Cond::Carry,
            pair: 3,
        });
        let s = disassemble(MicroAddr::new(0), w);
        assert!(s.contains("Carry"), "{s}");
        let w = Microword::default()
            .with_control(ControlOp::GotoLong { offset: 5 })
            .with_ff(0x21);
        let s = disassemble(MicroAddr::new(0), w);
        assert!(s.contains("page 0x21"), "{s}");
    }

    #[test]
    fn elides_plain_fallthrough() {
        let w = Microword::default().with_control(ControlOp::Goto { offset: 1 });
        let s = disassemble(MicroAddr::new(0), w);
        assert!(!s.contains("goto"), "{s}");
    }

    #[test]
    fn tolerates_garbage() {
        let w = Microword::from_raw(0x3_ffff_ffff).unwrap();
        let s = disassemble(MicroAddr::new(4095), w);
        assert!(!s.is_empty());
    }

    #[test]
    fn annotated_listing_interleaves_notes() {
        use crate::program::Assembler;
        use crate::Inst;

        let mut a = Assembler::new();
        a.label("top");
        a.emit(Inst::new().goto_("next"));
        a.label("next");
        a.emit(Inst::new().ff_halt().goto_("next"));
        let placed = a.place().unwrap();
        let top = placed.address_of("top").unwrap();
        let next = placed.address_of("next").unwrap();
        let listing = disassemble_annotated(
            &placed,
            &[(next, "spins forever".into()), (top, "entry".into())],
        );
        let top_line = listing.find("; ^ entry").unwrap();
        let next_line = listing.find("; ^ spins forever").unwrap();
        assert!(top_line < next_line, "{listing}");
        assert!(listing.contains("top:"), "{listing}");
        assert!(listing.contains("next:"), "{listing}");
    }
}
