//! The 32-bit barrel shifter and masker (§6.3.4).
//!
//! "The Dorado has a 32 bit barrel shifter for handling bit-aligned data.
//! It takes 32 bits from RM and T, performs a left cycle of any number of
//! bit positions, and places the result on RESULT.  The ALU output may be
//! masked during a shift instruction, either with zeroes or with data from
//! MEMDATA."
//!
//! Conventions used here (LSB-0 bit numbering):
//!
//! * the 32-bit input is `R:T` with R the high half;
//! * the output is the *high* 16 bits of the rotated 32-bit value;
//! * `lmask` zeroes (or fills from MEMDATA) the `lmask` most significant
//!   output bits, `rmask` the `rmask` least significant bits.

use crate::error::AsmError;
use dorado_base::bits::mask16;
use dorado_base::Word;

/// How the shifter output is combined with mask fill (§6.3.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum MaskMode {
    /// No masking: RESULT is the raw shifter output.
    #[default]
    None,
    /// Masked positions become zero.
    Zeroes,
    /// Masked positions are filled from `MEMDATA` (field insertion).
    MemData,
}

/// The `SHIFTCTL` register: "controls the direction and amount of shifting
/// and the width of left and right masks" (§6.3.3).
///
/// Layout (LSB-0): bits 0–4 left-cycle count (0–31), bits 5–8 left mask
/// width (0–15), bits 9–12 right mask width (0–15).
///
/// # Examples
///
/// ```
/// use dorado_asm::ShiftCtl;
/// let ctl = ShiftCtl::field_extract(4, 8); // bits 4..12, right justified
/// assert_eq!(ctl.count(), 28);
/// assert_eq!(ctl.lmask(), 8);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct ShiftCtl(Word);

impl ShiftCtl {
    /// Creates a `ShiftCtl` from the raw register value (as microcode
    /// loading it from the B bus would).
    #[inline]
    pub fn from_raw(raw: Word) -> Self {
        ShiftCtl(raw & 0x1fff)
    }

    /// The raw register value.
    #[inline]
    pub fn raw(self) -> Word {
        self.0
    }

    /// A left cycle by `count` bits with no masking.
    ///
    /// # Panics
    ///
    /// Panics if `count >= 32`.
    pub fn left_cycle(count: u8) -> Self {
        assert!(count < 32, "cycle count {count} out of range");
        ShiftCtl(Word::from(count))
    }

    /// A control word with explicit count and mask widths.
    ///
    /// # Panics
    ///
    /// Panics if `count >= 32`, `lmask >= 16`, or `rmask >= 16`.
    pub fn with_masks(count: u8, lmask: u8, rmask: u8) -> Self {
        assert!(count < 32, "cycle count {count} out of range");
        assert!(lmask < 16, "left mask {lmask} out of range");
        assert!(rmask < 16, "right mask {rmask} out of range");
        ShiftCtl(Word::from(count) | Word::from(lmask) << 5 | Word::from(rmask) << 9)
    }

    /// A control word that right-justifies the `size`-bit field at LSB-0 bit
    /// position `pos` of R, zeroing the rest (use with
    /// [`FfOp::ShOutZ`](crate::FfOp::ShOutZ) and T = R).
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= size <= 16` and `pos + size <= 16`.
    pub fn field_extract(pos: u8, size: u8) -> Self {
        assert!((1..=16).contains(&size), "field size {size} out of range");
        assert!(pos as u32 + size as u32 <= 16, "field does not fit a word");
        // Output bit i = R bit (pos + i); see module docs for the algebra.
        let count = ((32 - pos as u32) % 32) as u8;
        let lmask = 16 - size;
        Self::with_masks(count, lmask, 0)
    }

    /// A control word that moves a right-justified `size`-bit value in R to
    /// bit position `pos`, filling the other bits from MEMDATA (use with
    /// [`FfOp::ShOutM`](crate::FfOp::ShOutM) and T = R): field *insertion*.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= size <= 16` and `pos + size <= 16`.
    pub fn field_insert(pos: u8, size: u8) -> Self {
        assert!((1..=16).contains(&size), "field size {size} out of range");
        assert!(pos as u32 + size as u32 <= 16, "field does not fit a word");
        let count = pos % 32;
        let lmask = (16 - pos - size) % 16;
        let rmask = pos;
        Self::with_masks(count, lmask, rmask)
    }

    /// The left-cycle count, 0–31.
    #[inline]
    pub fn count(self) -> u8 {
        (self.0 & 0x1f) as u8
    }

    /// The left (most-significant) mask width, 0–15.
    #[inline]
    pub fn lmask(self) -> u8 {
        ((self.0 >> 5) & 0xf) as u8
    }

    /// The right (least-significant) mask width, 0–15.
    #[inline]
    pub fn rmask(self) -> u8 {
        ((self.0 >> 9) & 0xf) as u8
    }
}

impl std::fmt::Display for ShiftCtl {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "cycle {} lmask {} rmask {}",
            self.count(),
            self.lmask(),
            self.rmask()
        )
    }
}

impl TryFrom<Word> for ShiftCtl {
    type Error = AsmError;
    fn try_from(raw: Word) -> Result<Self, AsmError> {
        if raw & !0x1fff != 0 {
            Err(AsmError::FieldRange {
                field: "SHIFTCTL",
                value: raw.into(),
                max: 0x1fff,
            })
        } else {
            Ok(ShiftCtl(raw))
        }
    }
}

/// The raw barrel shift: the high 16 bits of `R:T` rotated left by `count`.
///
/// # Examples
///
/// ```
/// use dorado_asm::shifter::barrel;
/// assert_eq!(barrel(0x1234, 0x5678, 0), 0x1234);
/// assert_eq!(barrel(0x1234, 0x5678, 4), 0x2345);
/// assert_eq!(barrel(0x1234, 0x5678, 16), 0x5678);
/// ```
#[inline]
pub fn barrel(r: Word, t: Word, count: u8) -> Word {
    let value = (u32::from(r) << 16) | u32::from(t);
    (value.rotate_left(u32::from(count) % 32) >> 16) as Word
}

/// The full shifter+masker output for one shift microoperation.
///
/// `memdata` supplies fill bits when `mode` is [`MaskMode::MemData`].
pub fn shifter_output(ctl: ShiftCtl, r: Word, t: Word, memdata: Word, mode: MaskMode) -> Word {
    let shifted = barrel(r, t, ctl.count());
    let masked_bits = mask_of(ctl);
    match mode {
        MaskMode::None => shifted,
        MaskMode::Zeroes => shifted & !masked_bits,
        MaskMode::MemData => (shifted & !masked_bits) | (memdata & masked_bits),
    }
}

/// The 16-bit mask of positions affected by the masker: the `lmask` most
/// significant and `rmask` least significant bits.
fn mask_of(ctl: ShiftCtl) -> Word {
    let l = u32::from(ctl.lmask());
    let r = u32::from(ctl.rmask());
    let left = if l == 0 { 0 } else { mask16(16 - l, l) };
    let right = if r == 0 { 0 } else { mask16(0, r) };
    left | right
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn barrel_reference() {
        // Exhaustive-ish check against a bit-by-bit reference.
        let r: Word = 0b1010_0011_1100_0101;
        let t: Word = 0b0110_1001_0000_1111;
        let v = (u32::from(r) << 16) | u32::from(t);
        for count in 0..32u8 {
            let expect = {
                let mut out = 0u16;
                for i in 0..16u32 {
                    // output bit i = input bit (16 + i - count) mod 32
                    let src = (16 + i + 32 - u32::from(count)) % 32;
                    if v >> src & 1 == 1 {
                        out |= 1 << i;
                    }
                }
                out
            };
            assert_eq!(barrel(r, t, count), expect, "count {count}");
        }
    }

    #[test]
    fn field_extract_semantics() {
        // Extract bits 4..12 of r.
        let r: Word = 0xabcd;
        let ctl = ShiftCtl::field_extract(4, 8);
        let out = shifter_output(ctl, r, r, 0, MaskMode::Zeroes);
        assert_eq!(out, (r >> 4) & 0xff);
        // Extract the top bit.
        let ctl = ShiftCtl::field_extract(15, 1);
        assert_eq!(shifter_output(ctl, r, r, 0, MaskMode::Zeroes), 1);
        // Extract the whole word.
        let ctl = ShiftCtl::field_extract(0, 16);
        assert_eq!(shifter_output(ctl, r, r, 0, MaskMode::Zeroes), r);
    }

    #[test]
    fn field_insert_semantics() {
        // Insert a 4-bit value at position 8 into existing memdata.
        let value: Word = 0x000a;
        let memdata: Word = 0xf0f0;
        let ctl = ShiftCtl::field_insert(8, 4);
        let out = shifter_output(ctl, value, value, memdata, MaskMode::MemData);
        assert_eq!(out, (memdata & !(0xf << 8)) | (value << 8));
        // Insert at position 0.
        let ctl = ShiftCtl::field_insert(0, 4);
        let out = shifter_output(ctl, value, value, memdata, MaskMode::MemData);
        assert_eq!(out, (memdata & !0xf) | value);
        // Insert filling the whole word: no mask at all.
        let ctl = ShiftCtl::field_insert(0, 16);
        let out = shifter_output(ctl, value, value, memdata, MaskMode::MemData);
        assert_eq!(out, value);
    }

    #[test]
    fn mask_modes() {
        let ctl = ShiftCtl::with_masks(0, 4, 4);
        let r: Word = 0xffff;
        assert_eq!(shifter_output(ctl, r, r, 0, MaskMode::None), 0xffff);
        assert_eq!(shifter_output(ctl, r, r, 0, MaskMode::Zeroes), 0x0ff0);
        assert_eq!(
            shifter_output(ctl, r, r, 0xaaaa, MaskMode::MemData),
            0x0ff0 | (0xaaaa & 0xf00f)
        );
    }

    #[test]
    fn ctl_packing() {
        let ctl = ShiftCtl::with_masks(21, 7, 3);
        assert_eq!(ctl.count(), 21);
        assert_eq!(ctl.lmask(), 7);
        assert_eq!(ctl.rmask(), 3);
        let round = ShiftCtl::from_raw(ctl.raw());
        assert_eq!(round, ctl);
    }

    #[test]
    fn try_from_rejects_high_bits() {
        assert!(ShiftCtl::try_from(0x8000u16).is_err());
        assert!(ShiftCtl::try_from(0x1fffu16).is_ok());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn left_cycle_rejects_32() {
        let _ = ShiftCtl::left_cycle(32);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn field_extract_rejects_overflow() {
        let _ = ShiftCtl::field_extract(10, 8);
    }

    #[test]
    fn display_nonempty() {
        assert!(!format!("{}", ShiftCtl::left_cycle(3)).is_empty());
    }
}
