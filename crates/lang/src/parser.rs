//! Recursive-descent parser with C-like operator precedence.

use crate::ast::{BinOp, Block, Expr, Global, Proc, Program, Stmt, UnOp};
use crate::error::{CompileError, Result};
use crate::lexer::lex;
use crate::span::Span;
use crate::token::{Token, TokenKind};

/// Parses a whole source file.
///
/// # Errors
///
/// Reports the first lexical or syntactic error, with its span.
pub fn parse(src: &str) -> Result<Program> {
    let tokens = lex(src)?;
    Parser { tokens, pos: 0 }.program()
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

/// Binding powers, loosest to tightest; unary binds tighter than all.
fn binop_of(kind: &TokenKind) -> Option<(BinOp, u8)> {
    Some(match kind {
        TokenKind::OrOr => (BinOp::LOr, 1),
        TokenKind::AndAnd => (BinOp::LAnd, 2),
        TokenKind::Pipe => (BinOp::Or, 3),
        TokenKind::Caret => (BinOp::Xor, 4),
        TokenKind::Amp => (BinOp::And, 5),
        TokenKind::Eq => (BinOp::Eq, 6),
        TokenKind::Ne => (BinOp::Ne, 6),
        TokenKind::Lt => (BinOp::Lt, 7),
        TokenKind::Le => (BinOp::Le, 7),
        TokenKind::Gt => (BinOp::Gt, 7),
        TokenKind::Ge => (BinOp::Ge, 7),
        TokenKind::Shl => (BinOp::Shl, 8),
        TokenKind::Shr => (BinOp::Shr, 8),
        TokenKind::Plus => (BinOp::Add, 9),
        TokenKind::Minus => (BinOp::Sub, 9),
        TokenKind::Star => (BinOp::Mul, 10),
        TokenKind::Slash => (BinOp::Div, 10),
        TokenKind::Percent => (BinOp::Rem, 10),
        _ => return None,
    })
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos]
    }

    fn peek2(&self) -> &TokenKind {
        &self.tokens[(self.pos + 1).min(self.tokens.len() - 1)].kind
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos].clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if &self.peek().kind == kind {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: &TokenKind) -> Result<Token> {
        if &self.peek().kind == kind {
            Ok(self.bump())
        } else {
            Err(self.unexpected(&format!("expected {}", kind.describe())))
        }
    }

    fn expect_ident(&mut self) -> Result<(String, Span)> {
        match self.peek().kind.clone() {
            TokenKind::Ident(name) => {
                let span = self.bump().span;
                Ok((name, span))
            }
            _ => Err(self.unexpected("expected identifier")),
        }
    }

    fn unexpected(&self, want: &str) -> CompileError {
        let t = self.peek();
        CompileError::new(t.span, format!("{want}, found {}", t.kind.describe()))
    }

    fn program(&mut self) -> Result<Program> {
        let mut p = Program::default();
        while self.peek().kind != TokenKind::Eof {
            match self.peek().kind {
                TokenKind::Global => p.globals.push(self.global()?),
                TokenKind::Proc => p.procs.push(self.proc()?),
                _ => p.main.push(self.stmt()?),
            }
        }
        Ok(p)
    }

    fn global(&mut self) -> Result<Global> {
        let start = self.expect(&TokenKind::Global)?.span;
        let (name, _) = self.expect_ident()?;
        let init = if self.eat(&TokenKind::Assign) {
            Some(self.expr()?)
        } else {
            None
        };
        let end = self.expect(&TokenKind::Semi)?.span;
        Ok(Global {
            name,
            init,
            span: start.to(end),
        })
    }

    fn proc(&mut self) -> Result<Proc> {
        let start = self.expect(&TokenKind::Proc)?.span;
        let (name, name_span) = self.expect_ident()?;
        self.expect(&TokenKind::LParen)?;
        let mut params = Vec::new();
        if !self.eat(&TokenKind::RParen) {
            loop {
                params.push(self.expect_ident()?.0);
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
            self.expect(&TokenKind::RParen)?;
        }
        let body = self.block()?;
        Ok(Proc {
            name,
            params,
            body,
            span: start.to(name_span),
        })
    }

    fn block(&mut self) -> Result<Block> {
        let start = self.expect(&TokenKind::LBrace)?.span;
        let mut stmts = Vec::new();
        loop {
            if self.peek().kind == TokenKind::RBrace {
                break;
            }
            if self.peek().kind == TokenKind::Eof {
                return Err(self.unexpected("expected `}`"));
            }
            stmts.push(self.stmt()?);
        }
        let end = self.expect(&TokenKind::RBrace)?.span;
        Ok(Block {
            stmts,
            span: start.to(end),
        })
    }

    fn stmt(&mut self) -> Result<Stmt> {
        match self.peek().kind {
            TokenKind::Let => {
                let start = self.bump().span;
                let (name, _) = self.expect_ident()?;
                let init = if self.eat(&TokenKind::Assign) {
                    Some(self.expr()?)
                } else {
                    None
                };
                let end = self.expect(&TokenKind::Semi)?.span;
                Ok(Stmt::Let(name, init, start.to(end)))
            }
            TokenKind::If => self.if_stmt(),
            TokenKind::While => {
                let start = self.bump().span;
                let cond = self.expr()?;
                let body = self.block()?;
                let span = start.to(body.span);
                Ok(Stmt::While(cond, body, span))
            }
            TokenKind::Return => {
                let start = self.bump().span;
                let value = if self.peek().kind == TokenKind::Semi {
                    None
                } else {
                    Some(self.expr()?)
                };
                let end = self.expect(&TokenKind::Semi)?.span;
                Ok(Stmt::Return(value, start.to(end)))
            }
            TokenKind::LBrace => Ok(Stmt::Block(self.block()?)),
            // `name = ...` is an assignment; anything else is an
            // expression statement.
            TokenKind::Ident(_) if *self.peek2() == TokenKind::Assign => {
                let (name, start) = self.expect_ident()?;
                self.expect(&TokenKind::Assign)?;
                let value = self.expr()?;
                let end = self.expect(&TokenKind::Semi)?.span;
                Ok(Stmt::Assign(name, value, start.to(end)))
            }
            _ => {
                let e = self.expr()?;
                let end = self.expect(&TokenKind::Semi)?.span;
                let span = e.span().to(end);
                Ok(Stmt::Expr(e, span))
            }
        }
    }

    fn if_stmt(&mut self) -> Result<Stmt> {
        let start = self.expect(&TokenKind::If)?.span;
        let cond = self.expr()?;
        let then = self.block()?;
        let mut span = start.to(then.span);
        let els = if self.eat(&TokenKind::Else) {
            let b = if self.peek().kind == TokenKind::If {
                // `else if`: nest the chained if as the sole statement.
                let inner = self.if_stmt()?;
                let s = inner.span();
                Block {
                    stmts: vec![inner],
                    span: s,
                }
            } else {
                self.block()?
            };
            span = span.to(b.span);
            Some(b)
        } else {
            None
        };
        Ok(Stmt::If(cond, then, els, span))
    }

    fn expr(&mut self) -> Result<Expr> {
        self.binary(0)
    }

    fn binary(&mut self, min_bp: u8) -> Result<Expr> {
        let mut lhs = self.unary()?;
        while let Some((op, bp)) = binop_of(&self.peek().kind) {
            if bp < min_bp {
                break;
            }
            self.bump();
            // Left associative: the right operand must bind tighter.
            let rhs = self.binary(bp + 1)?;
            let span = lhs.span().to(rhs.span());
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs), span);
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr> {
        let op = match self.peek().kind {
            TokenKind::Minus => Some(UnOp::Neg),
            TokenKind::Tilde => Some(UnOp::Not),
            TokenKind::Bang => Some(UnOp::LNot),
            _ => None,
        };
        if let Some(op) = op {
            let start = self.bump().span;
            let e = self.unary()?;
            let span = start.to(e.span());
            return Ok(Expr::Unary(op, Box::new(e), span));
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Expr> {
        match self.peek().kind.clone() {
            TokenKind::Int(v) => {
                let span = self.bump().span;
                Ok(Expr::Int(v, span))
            }
            TokenKind::LParen => {
                self.bump();
                let e = self.expr()?;
                self.expect(&TokenKind::RParen)?;
                Ok(e)
            }
            TokenKind::Ident(name) => {
                let start = self.bump().span;
                if self.peek().kind == TokenKind::LParen {
                    self.bump();
                    let mut args = Vec::new();
                    if !self.eat(&TokenKind::RParen) {
                        loop {
                            args.push(self.expr()?);
                            if !self.eat(&TokenKind::Comma) {
                                break;
                            }
                        }
                        self.expect(&TokenKind::RParen)?;
                    }
                    let end = self.tokens[self.pos - 1].span;
                    Ok(Expr::Call(name, args, start.to(end)))
                } else {
                    Ok(Expr::Var(name, start))
                }
            }
            _ => Err(self.unexpected("expected expression")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn expr(src: &str) -> Expr {
        let p = parse(&format!("{src};")).unwrap();
        match p.main.into_iter().next().unwrap() {
            Stmt::Expr(e, _) => e,
            other => panic!("not an expr stmt: {other:?}"),
        }
    }

    #[test]
    fn precedence_mul_over_add() {
        // 1 + 2*3 parses as 1 + (2*3): folds to 7.
        assert_eq!(expr("1 + 2 * 3").const_value(), Some(7));
        assert_eq!(expr("(1 + 2) * 3").const_value(), Some(9));
    }

    #[test]
    fn left_associativity() {
        assert_eq!(expr("10 - 3 - 2").const_value(), Some(5));
        assert_eq!(expr("64 / 4 / 2").const_value(), Some(8));
    }

    #[test]
    fn comparison_below_shift() {
        // 1 << 3 < 16 parses as (1<<3) < 16 = 1.
        assert_eq!(expr("1 << 3 < 16").const_value(), Some(1));
    }

    #[test]
    fn logical_operators_loosest() {
        assert_eq!(expr("1 + 1 && 0 + 0").const_value(), Some(0));
        assert_eq!(expr("0 || 2 > 1").const_value(), Some(1));
    }

    #[test]
    fn unary_chains() {
        assert_eq!(expr("!!5").const_value(), Some(1));
        assert_eq!(expr("- - 3").const_value(), Some(3));
        assert_eq!(expr("~0").const_value(), Some(0xffff));
    }

    #[test]
    fn call_with_args() {
        let e = expr("f(1, 2 + 3)");
        match e {
            Expr::Call(name, args, _) => {
                assert_eq!(name, "f");
                assert_eq!(args.len(), 2);
                assert_eq!(args[1].const_value(), Some(5));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn else_if_chain_nests() {
        let p = parse("if a { } else if b { } else { }").unwrap();
        match &p.main[0] {
            Stmt::If(_, _, Some(els), _) => match &els.stmts[0] {
                Stmt::If(_, _, Some(_), _) => {}
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn program_sections() {
        let p = parse(
            "global g = 1;\n\
             proc f(x, y) { return x + y; }\n\
             let a = f(2, 3);\n\
             a;",
        )
        .unwrap();
        assert_eq!(p.globals.len(), 1);
        assert_eq!(p.procs.len(), 1);
        assert_eq!(p.procs[0].params, vec!["x", "y"]);
        assert_eq!(p.main.len(), 2);
    }

    #[test]
    fn assignment_vs_equality() {
        let p = parse("x = 1; x == 1;").unwrap();
        assert!(matches!(p.main[0], Stmt::Assign(..)));
        assert!(matches!(p.main[1], Stmt::Expr(..)));
    }

    #[test]
    fn missing_semicolon_is_reported() {
        let e = parse("let x = 1").unwrap_err();
        assert!(e.msg.contains("`;`"), "{e}");
    }

    #[test]
    fn unclosed_block_is_reported() {
        let e = parse("while 1 { let x = 2;").unwrap_err();
        assert!(e.msg.contains("`}`"), "{e}");
    }

    #[test]
    fn error_span_points_at_offender() {
        let src = "let x = ;";
        let e = parse(src).unwrap_err();
        assert_eq!(&src[e.span.start..e.span.end], ";");
    }
}
