//! The abstract syntax tree.

use crate::span::Span;

/// A binary operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+` (wrapping).
    Add,
    /// `-` (wrapping).
    Sub,
    /// `*` (low 16 bits).
    Mul,
    /// `/` (unsigned).
    Div,
    /// `%` (unsigned).
    Rem,
    /// `&`
    And,
    /// `|`
    Or,
    /// `^`
    Xor,
    /// `<<` — the shift amount must be a constant 0–15.
    Shl,
    /// `>>` (logical) — the shift amount must be a constant 0–15.
    Shr,
    /// `==`, producing 0 or 1.
    Eq,
    /// `!=`, producing 0 or 1.
    Ne,
    /// `<` (signed difference test), producing 0 or 1.
    Lt,
    /// `<=`, producing 0 or 1.
    Le,
    /// `>`, producing 0 or 1.
    Gt,
    /// `>=`, producing 0 or 1.
    Ge,
    /// `&&` with short-circuit evaluation, producing 0 or 1.
    LAnd,
    /// `||` with short-circuit evaluation, producing 0 or 1.
    LOr,
}

/// A unary operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    /// `-` (two's complement).
    Neg,
    /// `~` (bitwise complement).
    Not,
    /// `!` (logical: 0 becomes 1, anything else 0).
    LNot,
}

/// An expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// An integer literal.
    Int(u16, Span),
    /// A variable reference.
    Var(String, Span),
    /// A unary operation.
    Unary(UnOp, Box<Expr>, Span),
    /// A binary operation.
    Binary(BinOp, Box<Expr>, Box<Expr>, Span),
    /// A procedure or builtin call.
    Call(String, Vec<Expr>, Span),
}

impl Expr {
    /// The source span of the expression.
    pub fn span(&self) -> Span {
        match self {
            Expr::Int(_, s)
            | Expr::Var(_, s)
            | Expr::Unary(_, _, s)
            | Expr::Binary(_, _, _, s)
            | Expr::Call(_, _, s) => *s,
        }
    }

    /// The constant value of the expression, if it folds without
    /// evaluating variables or calls.
    pub fn const_value(&self) -> Option<u16> {
        match self {
            Expr::Int(v, _) => Some(*v),
            Expr::Unary(op, e, _) => {
                let v = e.const_value()?;
                Some(match op {
                    UnOp::Neg => v.wrapping_neg(),
                    UnOp::Not => !v,
                    UnOp::LNot => u16::from(v == 0),
                })
            }
            Expr::Binary(op, a, b, _) => {
                let a = a.const_value()?;
                let b = b.const_value()?;
                Some(match op {
                    BinOp::Add => a.wrapping_add(b),
                    BinOp::Sub => a.wrapping_sub(b),
                    BinOp::Mul => a.wrapping_mul(b),
                    BinOp::Div => a.checked_div(b)?,
                    BinOp::Rem => a.checked_rem(b)?,
                    BinOp::And => a & b,
                    BinOp::Or => a | b,
                    BinOp::Xor => a ^ b,
                    BinOp::Shl => a.checked_shl(b.into()).unwrap_or(0),
                    BinOp::Shr => a.checked_shr(b.into()).unwrap_or(0),
                    BinOp::Eq => u16::from(a == b),
                    BinOp::Ne => u16::from(a != b),
                    BinOp::Lt => u16::from((a as i16) < (b as i16)),
                    BinOp::Le => u16::from((a as i16) <= (b as i16)),
                    BinOp::Gt => u16::from((a as i16) > (b as i16)),
                    BinOp::Ge => u16::from((a as i16) >= (b as i16)),
                    BinOp::LAnd => u16::from(a != 0 && b != 0),
                    BinOp::LOr => u16::from(a != 0 || b != 0),
                })
            }
            Expr::Var(..) | Expr::Call(..) => None,
        }
    }
}

/// A brace-delimited statement sequence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Block {
    /// The statements, in order.
    pub stmts: Vec<Stmt>,
    /// Source span of the braces.
    pub span: Span,
}

/// A statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Stmt {
    /// `let name = init;` — declares a local (default 0).
    Let(String, Option<Expr>, Span),
    /// `name = expr;`
    Assign(String, Expr, Span),
    /// `if cond { .. } else { .. }` — `else if` chains nest in the else
    /// block.
    If(Expr, Block, Option<Block>, Span),
    /// `while cond { .. }`
    While(Expr, Block, Span),
    /// `return expr?;`
    Return(Option<Expr>, Span),
    /// An expression evaluated for effect (or, as the final top-level
    /// statement, for the program's result).
    Expr(Expr, Span),
    /// A nested block scope.
    Block(Block),
}

impl Stmt {
    /// The source span of the statement.
    pub fn span(&self) -> Span {
        match self {
            Stmt::Let(_, _, s)
            | Stmt::Assign(_, _, s)
            | Stmt::If(_, _, _, s)
            | Stmt::While(_, _, s)
            | Stmt::Return(_, s)
            | Stmt::Expr(_, s) => *s,
            Stmt::Block(b) => b.span,
        }
    }
}

/// A procedure definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Proc {
    /// Procedure name.
    pub name: String,
    /// Parameter names, becoming locals 0..n.
    pub params: Vec<String>,
    /// The body.
    pub body: Block,
    /// Span of the `proc` header.
    pub span: Span,
}

/// A global variable declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Global {
    /// Variable name.
    pub name: String,
    /// Optional initializer, evaluated before the first top-level
    /// statement.
    pub init: Option<Expr>,
    /// Span of the declaration.
    pub span: Span,
}

/// A whole source file: globals, procedures, and the implicit main body.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Program {
    /// Global declarations, in order.
    pub globals: Vec<Global>,
    /// Procedure definitions.
    pub procs: Vec<Proc>,
    /// Top-level statements forming the implicit main.
    pub main: Vec<Stmt>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn int(v: u16) -> Expr {
        Expr::Int(v, Span::default())
    }

    fn bin(op: BinOp, a: Expr, b: Expr) -> Expr {
        Expr::Binary(op, Box::new(a), Box::new(b), Span::default())
    }

    #[test]
    fn const_folding_arithmetic() {
        assert_eq!(bin(BinOp::Add, int(65535), int(2)).const_value(), Some(1));
        assert_eq!(bin(BinOp::Mul, int(300), int(300)).const_value(), Some(300u16.wrapping_mul(300)));
        assert_eq!(bin(BinOp::Div, int(7), int(0)).const_value(), None);
    }

    #[test]
    fn const_folding_comparisons_are_signed() {
        // 0xffff is -1: less than 1.
        assert_eq!(bin(BinOp::Lt, int(0xffff), int(1)).const_value(), Some(1));
        assert_eq!(bin(BinOp::Gt, int(0xffff), int(1)).const_value(), Some(0));
    }

    #[test]
    fn const_folding_stops_at_variables() {
        let e = bin(BinOp::Add, int(1), Expr::Var("x".into(), Span::default()));
        assert_eq!(e.const_value(), None);
    }

    #[test]
    fn logical_unary_folds() {
        assert_eq!(Expr::Unary(UnOp::LNot, Box::new(int(0)), Span::default()).const_value(), Some(1));
        assert_eq!(Expr::Unary(UnOp::LNot, Box::new(int(7)), Span::default()).const_value(), Some(0));
        assert_eq!(Expr::Unary(UnOp::Neg, Box::new(int(1)), Span::default()).const_value(), Some(0xffff));
    }
}
