//! Compiler diagnostics.

use crate::span::Span;

/// A compile-time error, with the source region it blames.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompileError {
    /// Where in the source.
    pub span: Span,
    /// What went wrong.
    pub msg: String,
}

impl CompileError {
    /// An error blaming `span`.
    pub fn new(span: Span, msg: impl Into<String>) -> Self {
        CompileError {
            span,
            msg: msg.into(),
        }
    }

    /// Renders the error against its source: `line:col: msg`, the source
    /// line, and a caret under the offending text.
    pub fn render(&self, src: &str) -> String {
        let (line, col) = self.span.line_col(src);
        let text = src.lines().nth(line - 1).unwrap_or("");
        let width = (self.span.end - self.span.start).max(1).min(text.len() + 1 - (col - 1).min(text.len()));
        format!(
            "{line}:{col}: error: {}\n  {text}\n  {}{}",
            self.msg,
            " ".repeat(col - 1),
            "^".repeat(width.max(1)),
        )
    }
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "error: {}", self.msg)
    }
}

impl std::error::Error for CompileError {}

/// Compiler result alias.
pub type Result<T> = std::result::Result<T, CompileError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_points_at_the_span() {
        let src = "let x = ;\n";
        let e = CompileError::new(Span::new(8, 9), "expected expression");
        let r = e.render(src);
        assert!(r.starts_with("1:9: error: expected expression"), "{r}");
        assert!(r.contains("let x = ;"), "{r}");
        assert!(r.ends_with("        ^"), "{r}");
    }

    #[test]
    fn display_is_terse() {
        let e = CompileError::new(Span::default(), "boom");
        assert_eq!(e.to_string(), "error: boom");
    }
}
