//! A small Mesa-like systems language compiling to the Dorado's Mesa
//! byte codes.
//!
//! The paper (§2, §7) motivates the Dorado as a host for *compiled*
//! languages: "the Mesa instruction set is implemented by a Mesa-specific
//! set of microinstructions," and the §7 cost table is stated in terms of
//! what a compiler emits for loads, stores, jumps, and calls.  This crate
//! closes that loop: it is the compiler whose output the Mesa emulator
//! runs, so end-to-end tests and benches can be written in source text
//! instead of hand-threaded byte codes.
//!
//! # Language
//!
//! ```text
//! global vsum;                      // global frame slots (LG/SG)
//! proc gcd(a, b) {                  // procedures: XFER calls, locals in frames
//!     while b != 0 {
//!         let t = b;                // block-scoped locals (LL/SL)
//!         b = a % b;
//!         a = t;
//!     }
//!     return a;
//! }
//! vsum = gcd(12, 18) + gcd(25, 15); // top-level statements form main
//! vsum;                             // the final expression is the result
//! ```
//!
//! * 16-bit words; `+ - *` wrap, `/ %` are unsigned, comparisons are
//!   signed (exact while `|a−b| < 2^15`).
//! * `<< >>` need compile-time constant amounts 0–15 (they become raw
//!   `SHIFTCTL` immediates).
//! * Builtins `peek(addr)`, `aref(base, index)` read memory;
//!   `poke(addr, v)` and `aset(base, index, v)` are store statements.
//! * `&&`/`||`/`!` are logical (0 or 1) with short-circuit evaluation.
//! * Conditional jumps carry signed byte displacements: a single `if` or
//!   `while` body is limited to ~127 bytes of code.  Split long bodies
//!   into procedures.
//!
//! # Pipeline
//!
//! [`lexer`] → [`parser`] → [`sema`] (resolution, arity and shift checks,
//! constant folding, frame-slot allocation) → [`codegen`] (byte codes via
//! [`dorado_emu::mesa::MesaAsm`]).
//!
//! # Examples
//!
//! ```
//! let bytes = dorado_lang::compile("let x = 6; let y = 7; x * y;")?;
//! let mut m = dorado_emu::suite::build_mesa(&bytes)?;
//! assert!(m.run(1_000_000).halted());
//! assert_eq!(dorado_emu::mesa::tos(&m), 42);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]

pub mod ast;
pub mod codegen;
pub mod error;
pub mod lexer;
pub mod parser;
pub mod sema;
pub mod span;
pub mod token;

pub use error::CompileError;
pub use span::Span;

/// Compiles source text to a Mesa byte program.
///
/// # Errors
///
/// Returns the first lexical, syntactic, or semantic error with its
/// source span ([`CompileError::render`] formats it against the text).
pub fn compile(src: &str) -> error::Result<Vec<u8>> {
    let program = parser::parse(src)?;
    let resolved = sema::resolve(&program)?;
    codegen::generate(&resolved)
}

/// Compiles source text to a Mesa byte program plus a bytecode→source
/// map: `(byte_offset, (span_start, span_end))` pairs, one per statement,
/// with non-decreasing offsets.  Analyzers use the map to render
/// bytecode diagnostics against the source text.
///
/// # Errors
///
/// Same as [`compile`].
#[allow(clippy::type_complexity)]
pub fn compile_with_map(src: &str) -> error::Result<(Vec<u8>, Vec<(usize, (usize, usize))>)> {
    let program = parser::parse(src)?;
    let resolved = sema::resolve(&program)?;
    codegen::generate_with_map(&resolved)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compile_produces_bytes() {
        // `1 + 2` folds; an unfoldable add emits LL/LIB/ADD.
        assert_eq!(compile("1 + 2;").unwrap(), vec![0x01, 3, 0xfe]);
        let bytes = compile("let a = 1; a + 2;").unwrap();
        // lib 1, sl 0, ll 0, lib 2, add, halt.
        assert_eq!(bytes, vec![0x01, 1, 0x11, 0, 0x10, 0, 0x01, 2, 0x20, 0xfe]);
    }

    #[test]
    fn constant_folding_reaches_the_bytecode() {
        // The whole expression folds to one push.
        let bytes = compile("(3 + 4) * (10 - 8);").unwrap();
        assert_eq!(bytes, vec![0x01, 14, 0xfe]);
    }

    #[test]
    fn errors_carry_spans() {
        let src = "let x = yonder;";
        let e = compile(src).unwrap_err();
        assert_eq!(&src[e.span.start..e.span.end], "yonder");
        assert!(e.render(src).contains("unknown variable"));
    }

    #[test]
    fn big_literals_use_liw() {
        let bytes = compile("999;").unwrap();
        assert_eq!(bytes, vec![0x02, 0x03, 0xe7, 0xfe]);
    }
}
