//! Token definitions for the lexer.

use crate::span::Span;

/// The kind of a lexed token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword argument name.
    Ident(String),
    /// An integer literal, already range-checked to 16 bits.
    Int(u16),

    // Keywords.
    /// `global`
    Global,
    /// `proc`
    Proc,
    /// `let`
    Let,
    /// `if`
    If,
    /// `else`
    Else,
    /// `while`
    While,
    /// `return`
    Return,

    // Punctuation and operators.
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `,`
    Comma,
    /// `;`
    Semi,
    /// `=`
    Assign,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `&`
    Amp,
    /// `|`
    Pipe,
    /// `^`
    Caret,
    /// `~`
    Tilde,
    /// `!`
    Bang,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,

    /// End of input.
    Eof,
}

impl TokenKind {
    /// A short human-readable name for diagnostics.
    pub fn describe(&self) -> String {
        match self {
            TokenKind::Ident(n) => format!("identifier `{n}`"),
            TokenKind::Int(v) => format!("integer `{v}`"),
            TokenKind::Global => "`global`".into(),
            TokenKind::Proc => "`proc`".into(),
            TokenKind::Let => "`let`".into(),
            TokenKind::If => "`if`".into(),
            TokenKind::Else => "`else`".into(),
            TokenKind::While => "`while`".into(),
            TokenKind::Return => "`return`".into(),
            TokenKind::LParen => "`(`".into(),
            TokenKind::RParen => "`)`".into(),
            TokenKind::LBrace => "`{`".into(),
            TokenKind::RBrace => "`}`".into(),
            TokenKind::Comma => "`,`".into(),
            TokenKind::Semi => "`;`".into(),
            TokenKind::Assign => "`=`".into(),
            TokenKind::Eq => "`==`".into(),
            TokenKind::Ne => "`!=`".into(),
            TokenKind::Lt => "`<`".into(),
            TokenKind::Le => "`<=`".into(),
            TokenKind::Gt => "`>`".into(),
            TokenKind::Ge => "`>=`".into(),
            TokenKind::Plus => "`+`".into(),
            TokenKind::Minus => "`-`".into(),
            TokenKind::Star => "`*`".into(),
            TokenKind::Slash => "`/`".into(),
            TokenKind::Percent => "`%`".into(),
            TokenKind::Amp => "`&`".into(),
            TokenKind::Pipe => "`|`".into(),
            TokenKind::Caret => "`^`".into(),
            TokenKind::Tilde => "`~`".into(),
            TokenKind::Bang => "`!`".into(),
            TokenKind::Shl => "`<<`".into(),
            TokenKind::Shr => "`>>`".into(),
            TokenKind::AndAnd => "`&&`".into(),
            TokenKind::OrOr => "`||`".into(),
            TokenKind::Eof => "end of input".into(),
        }
    }
}

/// A token with its source span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// What was lexed.
    pub kind: TokenKind,
    /// Where it was lexed from.
    pub span: Span,
}
