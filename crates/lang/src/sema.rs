//! Semantic analysis: name resolution, arity checking, constant folding,
//! and lowering to a resolved IR the code generator can emit directly.
//!
//! Resolution maps every variable to a *place*: a local frame slot
//! (Mesa `LL`/`SL` through the `L` base register) or a global frame slot
//! (`LG`/`SG` through `G`).  Locals follow block scoping; slots are
//! reclaimed when a block ends, so sibling blocks share slots exactly as
//! the Mesa compiler packed frames.

use std::collections::HashMap;

use crate::ast::{BinOp, Block, Expr, Program, Stmt, UnOp};
use crate::error::{CompileError, Result};
use crate::span::Span;

/// Most local slots a frame may use, scratch included.  Frames are 32
/// words; two words hold the saved `L` and return PC ahead of `L`, and we
/// keep a margin of two.
pub const MAX_LOCALS: u8 = 28;

/// Most global slots a program may declare (the global frame is 256 words;
/// we use a page-aligned quarter).
pub const MAX_GLOBALS: u8 = 64;

/// Where a resolved variable lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Place {
    /// Frame slot *n* of the enclosing procedure (`LL`/`SL`).
    Local(u8),
    /// Global frame slot *n* (`LG`/`SG`).
    Global(u8),
}

/// A resolved expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RExpr {
    /// A compile-time constant.
    Const(u16),
    /// Load from a place.
    Load(Place),
    /// A unary operation.
    Unary(UnOp, Box<RExpr>),
    /// A non-shift binary operation.
    Binary(BinOp, Box<RExpr>, Box<RExpr>),
    /// A shift by a constant amount (`left`, amount, operand).
    Shift {
        /// True for `<<`, false for logical `>>`.
        left: bool,
        /// Bits, 0–15.
        amount: u8,
        /// The shifted operand.
        operand: Box<RExpr>,
    },
    /// A call to procedure `procs[index]`.
    Call(usize, Vec<RExpr>),
    /// `aref(base, index)` — read `MEM[base + index]`.
    ARef(Box<RExpr>, Box<RExpr>),
}

/// A resolved statement: the lowered operation plus the source span it
/// came from, threaded through codegen into the bytecode span map so
/// analyzers can point diagnostics back at source text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RStmt {
    /// The source range this statement was lowered from.
    pub span: Span,
    /// The lowered operation.
    pub kind: RStmtKind,
}

impl RStmt {
    fn new(span: Span, kind: RStmtKind) -> Self {
        RStmt { span, kind }
    }
}

/// A resolved statement's operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RStmtKind {
    /// Evaluate and store to a place.
    Store(Place, RExpr),
    /// `if` with lowered arms.
    If(RExpr, Vec<RStmt>, Vec<RStmt>),
    /// `while` loop.
    While(RExpr, Vec<RStmt>),
    /// Return a value from the enclosing procedure.
    Return(RExpr),
    /// Evaluate for effect; the value is dropped.
    Eval(RExpr),
    /// Evaluate and keep: the program result (final main statement only).
    Result(RExpr),
    /// `aset(base, index, value)` — write `MEM[base + index]`.
    ASet(RExpr, RExpr, RExpr),
}

/// A resolved procedure body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RProc {
    /// Source name (label `proc:<name>` in the byte code).
    pub name: String,
    /// Declared parameter count.
    pub nargs: u8,
    /// Lowered body.
    pub body: Vec<RStmt>,
    /// Scratch frame slot for multiply/divide lowering, if any part of
    /// the body needs one.
    pub scratch: Option<u8>,
    /// High-water mark of frame slots used (scratch included).
    pub frame_size: u8,
}

/// A fully resolved program, ready for code generation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RProgram {
    /// Number of global slots in use.
    pub num_globals: u8,
    /// Global initializers, in declaration order.
    pub global_inits: Vec<(u8, RExpr)>,
    /// Procedure bodies, in definition order (call sites index this).
    pub procs: Vec<RProc>,
    /// The implicit main body.
    pub main: RProc,
}

const BUILTINS: &[(&str, usize)] = &[("peek", 1), ("poke", 2), ("aref", 2), ("aset", 3)];

/// Resolves and lowers a parsed program.
///
/// # Errors
///
/// Reports the first semantic error: unknown or duplicate names, arity
/// mismatches, non-constant shift amounts, builtins misused in value or
/// statement position, too many locals or globals, or `return` outside a
/// procedure.
pub fn resolve(program: &Program) -> Result<RProgram> {
    let mut globals = HashMap::new();
    let mut global_inits = Vec::new();
    let mut proc_ids = HashMap::new();
    let mut arities = Vec::new();

    for (i, p) in program.procs.iter().enumerate() {
        if BUILTINS.iter().any(|&(b, _)| b == p.name) {
            return Err(CompileError::new(
                p.span,
                format!("`{}` redefines a builtin", p.name),
            ));
        }
        if proc_ids.insert(p.name.clone(), i).is_some() {
            return Err(CompileError::new(
                p.span,
                format!("duplicate procedure `{}`", p.name),
            ));
        }
        arities.push(p.params.len());
    }

    let mut ctx = Ctx {
        procs: &proc_ids,
        arities: &arities,
        globals: &mut globals,
    };
    let ctx = &mut ctx;

    for g in &program.globals {
        let slot = u8::try_from(ctx.globals.len())
            .ok()
            .filter(|&n| n < MAX_GLOBALS)
            .ok_or_else(|| CompileError::new(g.span, "too many globals"))?;
        if ctx.globals.insert(g.name.clone(), slot).is_some() {
            return Err(CompileError::new(
                g.span,
                format!("duplicate global `{}`", g.name),
            ));
        }
        if let Some(init) = &g.init {
            // Initializers run before main, where no locals are in scope.
            let mut frame = FrameCtx::new(&[], g.span)?;
            let e = lower_expr(init, ctx, &mut frame)?;
            global_inits.push((slot, e));
        }
    }

    let mut procs = Vec::new();
    for p in &program.procs {
        let mut frame = FrameCtx::new(&p.params, p.span)?;
        let body = lower_stmts(&p.body.stmts, ctx, &mut frame, true, false)?;
        procs.push(RProc {
            name: p.name.clone(),
            nargs: p.params.len() as u8,
            body,
            scratch: frame.scratch,
            frame_size: frame.max,
        });
    }

    let mut frame = FrameCtx::new(&[], Span::default())?;
    let main_body = lower_stmts(&program.main, ctx, &mut frame, false, true)?;
    let main = RProc {
        name: "main".into(),
        nargs: 0,
        body: main_body,
        scratch: frame.scratch,
        frame_size: frame.max,
    };

    Ok(RProgram {
        num_globals: globals.len() as u8,
        global_inits,
        procs,
        main,
    })
}

struct Ctx<'a> {
    procs: &'a HashMap<String, usize>,
    arities: &'a [usize],
    globals: &'a mut HashMap<String, u8>,
}

/// Local-slot allocation for one frame: a scope stack with high-water
/// tracking, plus lazily reserved multiply/divide scratch.
struct FrameCtx {
    scopes: Vec<HashMap<String, u8>>,
    next: u8,
    max: u8,
    scratch: Option<u8>,
}

impl FrameCtx {
    fn new(params: &[String], span: Span) -> Result<Self> {
        let mut top = HashMap::new();
        for (i, p) in params.iter().enumerate() {
            if top.insert(p.clone(), i as u8).is_some() {
                return Err(CompileError::new(span, format!("duplicate parameter `{p}`")));
            }
        }
        let next = params.len() as u8;
        if next > MAX_LOCALS {
            return Err(CompileError::new(span, "too many parameters"));
        }
        Ok(FrameCtx {
            scopes: vec![top],
            next,
            max: next,
            scratch: None,
        })
    }

    fn declare(&mut self, name: &str, span: Span) -> Result<u8> {
        let scope = self.scopes.last_mut().expect("at least one scope");
        if scope.contains_key(name) {
            return Err(CompileError::new(
                span,
                format!("`{name}` already declared in this scope"),
            ));
        }
        if self.next >= MAX_LOCALS {
            return Err(CompileError::new(span, "too many locals in this frame"));
        }
        let slot = self.next;
        scope.insert(name.to_string(), slot);
        self.next += 1;
        self.max = self.max.max(self.next);
        Ok(slot)
    }

    fn lookup(&self, name: &str) -> Option<u8> {
        self.scopes.iter().rev().find_map(|s| s.get(name)).copied()
    }

    fn enter(&mut self) {
        self.scopes.push(HashMap::new());
    }

    fn exit(&mut self) {
        let popped = self.scopes.pop().expect("scope to pop");
        self.next -= popped.len() as u8;
    }

    fn reserve_scratch(&mut self) -> Result<u8> {
        if let Some(s) = self.scratch {
            return Ok(s);
        }
        // The scratch lives above every scope's watermark; reserving the
        // current max is unsound (a later, deeper scope would collide), so
        // take the top slot of the frame.
        let slot = MAX_LOCALS;
        self.scratch = Some(slot);
        Ok(slot)
    }
}

fn resolve_var(name: &str, span: Span, ctx: &Ctx<'_>, frame: &FrameCtx) -> Result<Place> {
    if let Some(slot) = frame.lookup(name) {
        return Ok(Place::Local(slot));
    }
    if let Some(&slot) = ctx.globals.get(name) {
        return Ok(Place::Global(slot));
    }
    Err(CompileError::new(span, format!("unknown variable `{name}`")))
}

fn lower_expr(e: &Expr, ctx: &Ctx<'_>, frame: &mut FrameCtx) -> Result<RExpr> {
    // Shift amounts are validated even when the whole expression folds,
    // so `1 << 16` is an error rather than silently zero.
    if let Expr::Binary(op @ (BinOp::Shl | BinOp::Shr), lhs, rhs, span) = e {
        let amount = rhs.const_value().ok_or_else(|| {
            CompileError::new(
                rhs.span(),
                "shift amount must be a compile-time constant (the SHIFTCTL operand is an immediate)",
            )
        })?;
        if amount > 15 {
            return Err(CompileError::new(*span, "shift amount must be 0-15"));
        }
        if let Some(v) = e.const_value() {
            return Ok(RExpr::Const(v));
        }
        return Ok(RExpr::Shift {
            left: *op == BinOp::Shl,
            amount: amount as u8,
            operand: Box::new(lower_expr(lhs, ctx, frame)?),
        });
    }
    // Fold any fully constant subtree.
    if let Some(v) = e.const_value() {
        return Ok(RExpr::Const(v));
    }
    match e {
        Expr::Int(v, _) => Ok(RExpr::Const(*v)),
        Expr::Var(name, span) => Ok(RExpr::Load(resolve_var(name, *span, ctx, frame)?)),
        Expr::Unary(op, inner, _) => Ok(RExpr::Unary(*op, Box::new(lower_expr(inner, ctx, frame)?))),
        Expr::Binary(op, lhs, rhs, _) => {
            if matches!(op, BinOp::Mul | BinOp::Div | BinOp::Rem) {
                frame.reserve_scratch()?;
            }
            Ok(RExpr::Binary(
                *op,
                Box::new(lower_expr(lhs, ctx, frame)?),
                Box::new(lower_expr(rhs, ctx, frame)?),
            ))
        }
        Expr::Call(name, args, span) => {
            let lowered: Vec<RExpr> = args
                .iter()
                .map(|a| lower_expr(a, ctx, frame))
                .collect::<Result<_>>()?;
            match name.as_str() {
                "peek" | "aref" => {
                    let want = if name == "peek" { 1 } else { 2 };
                    check_arity(name, want, args.len(), *span)?;
                    let mut it = lowered.into_iter();
                    let base = it.next().expect("arity checked");
                    let index = it.next().unwrap_or(RExpr::Const(0));
                    Ok(RExpr::ARef(Box::new(base), Box::new(index)))
                }
                "poke" | "aset" => Err(CompileError::new(
                    *span,
                    format!("`{name}` stores to memory and has no value; use it as a statement"),
                )),
                _ => {
                    let &id = ctx.procs.get(name).ok_or_else(|| {
                        CompileError::new(*span, format!("unknown procedure `{name}`"))
                    })?;
                    check_arity(name, ctx.arities[id], args.len(), *span)?;
                    Ok(RExpr::Call(id, lowered))
                }
            }
        }
    }
}

fn check_arity(name: &str, want: usize, got: usize, span: Span) -> Result<()> {
    if want == got {
        Ok(())
    } else {
        Err(CompileError::new(
            span,
            format!("`{name}` takes {want} argument(s), {got} given"),
        ))
    }
}

fn lower_block(b: &Block, ctx: &Ctx<'_>, frame: &mut FrameCtx, in_proc: bool) -> Result<Vec<RStmt>> {
    frame.enter();
    let out = lower_stmts(&b.stmts, ctx, frame, in_proc, false);
    frame.exit();
    out
}

fn lower_stmts(
    stmts: &[Stmt],
    ctx: &Ctx<'_>,
    frame: &mut FrameCtx,
    in_proc: bool,
    is_main: bool,
) -> Result<Vec<RStmt>> {
    let mut out = Vec::new();
    for (i, s) in stmts.iter().enumerate() {
        let last_of_main = is_main && i + 1 == stmts.len();
        match s {
            Stmt::Let(name, init, span) => {
                let value = match init {
                    Some(e) => lower_expr(e, ctx, frame)?,
                    None => RExpr::Const(0),
                };
                // Resolve the initializer before the name enters scope:
                // `let x = x;` refers to the outer `x`.
                let slot = frame.declare(name, *span)?;
                out.push(RStmt::new(*span, RStmtKind::Store(Place::Local(slot), value)));
            }
            Stmt::Assign(name, e, span) => {
                let place = resolve_var(name, *span, ctx, frame)?;
                let value = lower_expr(e, ctx, frame)?;
                out.push(RStmt::new(*span, RStmtKind::Store(place, value)));
            }
            Stmt::If(cond, then, els, span) => {
                let c = lower_expr(cond, ctx, frame)?;
                let t = lower_block(then, ctx, frame, in_proc)?;
                let e = match els {
                    Some(b) => lower_block(b, ctx, frame, in_proc)?,
                    None => Vec::new(),
                };
                out.push(RStmt::new(*span, RStmtKind::If(c, t, e)));
            }
            Stmt::While(cond, body, span) => {
                let c = lower_expr(cond, ctx, frame)?;
                let b = lower_block(body, ctx, frame, in_proc)?;
                out.push(RStmt::new(*span, RStmtKind::While(c, b)));
            }
            Stmt::Return(value, span) => {
                if !in_proc {
                    return Err(CompileError::new(
                        *span,
                        "`return` outside a procedure; the last top-level expression is the program result",
                    ));
                }
                let v = match value {
                    Some(e) => lower_expr(e, ctx, frame)?,
                    None => RExpr::Const(0),
                };
                out.push(RStmt::new(*span, RStmtKind::Return(v)));
            }
            Stmt::Expr(e, span) => {
                // Builtin stores are statements, not values.
                if let Expr::Call(name, args, _) = e {
                    if name == "poke" || name == "aset" {
                        let want = if name == "poke" { 2 } else { 3 };
                        check_arity(name, want, args.len(), *span)?;
                        let mut it = args
                            .iter()
                            .map(|a| lower_expr(a, ctx, frame))
                            .collect::<Result<Vec<_>>>()?
                            .into_iter();
                        let base = it.next().expect("arity checked");
                        let (index, value) = if want == 2 {
                            (RExpr::Const(0), it.next().expect("arity checked"))
                        } else {
                            (
                                it.next().expect("arity checked"),
                                it.next().expect("arity checked"),
                            )
                        };
                        out.push(RStmt::new(*span, RStmtKind::ASet(base, index, value)));
                        continue;
                    }
                }
                let v = lower_expr(e, ctx, frame)?;
                out.push(RStmt::new(
                    *span,
                    if last_of_main {
                        RStmtKind::Result(v)
                    } else {
                        RStmtKind::Eval(v)
                    },
                ));
            }
            Stmt::Block(b) => {
                out.extend(lower_block(b, ctx, frame, in_proc)?);
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn lower(src: &str) -> RProgram {
        resolve(&parse(src).unwrap()).unwrap()
    }

    fn lower_err(src: &str) -> CompileError {
        resolve(&parse(src).unwrap()).unwrap_err()
    }

    #[test]
    fn locals_get_sequential_slots() {
        let p = lower("let a = 1; let b = 2; a + b;");
        assert!(matches!(p.main.body[0].kind, RStmtKind::Store(Place::Local(0), _)));
        assert!(matches!(p.main.body[1].kind, RStmtKind::Store(Place::Local(1), _)));
        assert_eq!(p.main.frame_size, 2);
    }

    #[test]
    fn sibling_blocks_share_slots() {
        let p = lower("{ let a = 1; a; } { let b = 2; b; }");
        assert!(matches!(p.main.body[0].kind, RStmtKind::Store(Place::Local(0), _)));
        assert!(matches!(p.main.body[2].kind, RStmtKind::Store(Place::Local(0), _)));
    }

    #[test]
    fn shadowing_resolves_innermost() {
        let p = lower("let a = 1; { let a = 2; a; } a;");
        match &p.main.body[2].kind {
            RStmtKind::Eval(RExpr::Load(Place::Local(1))) => {}
            other => panic!("{other:?}"),
        }
        match &p.main.body[3].kind {
            RStmtKind::Result(RExpr::Load(Place::Local(0))) => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn let_initializer_sees_outer_binding() {
        let p = lower("let x = 5; { let x = x; x; }");
        // Inner `let x = x` loads outer slot 0 into new slot 1.
        match &p.main.body[1].kind {
            RStmtKind::Store(Place::Local(1), RExpr::Load(Place::Local(0))) => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn globals_resolve_everywhere() {
        let p = lower("global g = 7; proc f() { return g; } f();");
        assert_eq!(p.num_globals, 1);
        assert_eq!(p.global_inits.len(), 1);
        match &p.procs[0].body[0].kind {
            RStmtKind::Return(RExpr::Load(Place::Global(0))) => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn constants_fold() {
        let p = lower("let x = 2 * 3 + 4;");
        assert!(matches!(p.main.body[0].kind, RStmtKind::Store(_, RExpr::Const(10))));
        // A folded multiply needs no scratch slot.
        assert_eq!(p.main.scratch, None);
    }

    #[test]
    fn runtime_multiply_reserves_scratch() {
        let p = lower("let x = 3; x * x;");
        assert_eq!(p.main.scratch, Some(MAX_LOCALS));
    }

    #[test]
    fn shift_amount_must_be_constant() {
        let e = lower_err("let n = 2; 1 << n;");
        assert!(e.msg.contains("compile-time constant"), "{e}");
        assert!(lower_err("let n = 2; 1 << 16;").msg.contains("0-15"));
    }

    #[test]
    fn unknowns_are_reported() {
        assert!(lower_err("y = 1;").msg.contains("unknown variable"));
        assert!(lower_err("f(1);").msg.contains("unknown procedure"));
    }

    #[test]
    fn scope_exit_unbinds() {
        let e = lower_err("{ let a = 1; } a;");
        assert!(e.msg.contains("unknown variable `a`"), "{e}");
    }

    #[test]
    fn arity_is_checked() {
        let e = lower_err("proc f(a, b) { return a; } f(1);");
        assert!(e.msg.contains("takes 2 argument(s), 1 given"), "{e}");
    }

    #[test]
    fn duplicates_are_reported() {
        assert!(lower_err("let a = 1; let a = 2;").msg.contains("already declared"));
        assert!(lower_err("global g; global g;").msg.contains("duplicate global"));
        assert!(lower_err("proc f() {} proc f() {}").msg.contains("duplicate procedure"));
        assert!(lower_err("proc f(x, x) {}").msg.contains("duplicate parameter"));
    }

    #[test]
    fn builtins_cannot_be_redefined_or_misused() {
        assert!(lower_err("proc peek(a) {}").msg.contains("redefines a builtin"));
        assert!(lower_err("let v = poke(1, 2);").msg.contains("as a statement"));
        assert!(lower_err("peek(1, 2);").msg.contains("takes 1 argument(s)"));
    }

    #[test]
    fn return_only_in_procs() {
        let e = lower_err("return 1;");
        assert!(e.msg.contains("outside a procedure"), "{e}");
    }

    #[test]
    fn last_main_expr_is_the_result() {
        let p = lower("1 + 1; 2 + 2;");
        assert!(matches!(p.main.body[0].kind, RStmtKind::Eval(_)));
        assert!(matches!(p.main.body[1].kind, RStmtKind::Result(_)));
    }

    #[test]
    fn peek_and_aset_lower_to_memory_ops() {
        let p = lower("poke(0x100, 5); aset(0x100, 2, 6); peek(0x100) + aref(0x100, 2);");
        assert!(matches!(p.main.body[0].kind, RStmtKind::ASet(_, _, _)));
        assert!(matches!(p.main.body[1].kind, RStmtKind::ASet(_, _, _)));
        match &p.main.body[2].kind {
            RStmtKind::Result(RExpr::Binary(BinOp::Add, a, b)) => {
                assert!(matches!(**a, RExpr::ARef(_, _)));
                assert!(matches!(**b, RExpr::ARef(_, _)));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn too_many_locals_is_reported() {
        let mut src = String::new();
        for i in 0..=MAX_LOCALS {
            src.push_str(&format!("let v{i} = 0;\n"));
        }
        assert!(lower_err(&src).msg.contains("too many locals"));
    }
}
