//! Code generation: resolved IR to Mesa byte codes.
//!
//! The target is the stack bytecode of [`dorado_emu::mesa`]; every
//! construct lowers to the opcodes the paper's §7 table costs out.  The
//! interesting lowerings:
//!
//! * **Comparisons** have no dedicated opcodes; they compute a difference
//!   and test it with a conditional jump, materializing 0 or 1.  The
//!   difference test is signed and exact while `|a-b| < 2^15` (the same
//!   contract as Mesa's `INTEGER` compare).
//! * **Multiply/divide** push two results (high/low, remainder/quotient);
//!   discarding the extra word beneath the top of stack costs a
//!   store-drop-reload through a scratch frame slot, because the stack
//!   has no swap. `%` gets the remainder for free by dropping the
//!   quotient.
//! * **Shifts** become `Shift` opcodes whose operand is a raw `SHIFTCTL`
//!   immediate — which is why shift amounts must be compile-time
//!   constants.
//! * **`&&`/`||`** short-circuit with forward jumps.

use dorado_asm::ShiftCtl;
use dorado_emu::mesa::MesaAsm;

use crate::ast::{BinOp, UnOp};
use crate::error::{CompileError, Result};
use crate::sema::{Place, RExpr, RProc, RProgram, RStmt, RStmtKind};
use crate::span::Span;

/// Generates the final byte program for a resolved program.
///
/// Layout: global initializers, the main body, `HALT`, then each
/// procedure in definition order.
///
/// # Errors
///
/// Reports jump displacements that overflow a signed byte (bodies longer
/// than 127 bytes must be split into procedures).
pub fn generate(p: &RProgram) -> Result<Vec<u8>> {
    emit(p).assemble().map_err(assemble_error)
}

/// Like [`generate`], but also returns the bytecode→source map: for each
/// statement boundary, the byte offset it starts at and the source
/// `(start, end)` range it was lowered from.
///
/// # Errors
///
/// Same as [`generate`].
#[allow(clippy::type_complexity)]
pub fn generate_with_map(p: &RProgram) -> Result<(Vec<u8>, Vec<(usize, (usize, usize))>)> {
    emit(p).assemble_with_map().map_err(assemble_error)
}

fn assemble_error(e: String) -> CompileError {
    CompileError::new(
        Span::default(),
        format!("{e} (conditional bodies are limited to 127 bytes of code; split long bodies into procedures)"),
    )
}

fn emit(p: &RProgram) -> MesaAsm {
    let mut g = Gen {
        asm: MesaAsm::new(),
        next_label: 0,
        proc_labels: p.procs.iter().map(|q| proc_label(&q.name)).collect(),
    };
    for (slot, init) in &p.global_inits {
        g.expr(init, &p.main);
        g.asm.sg(*slot);
    }
    g.stmts(&p.main.body, &p.main);
    g.asm.halt();
    for proc in &p.procs {
        g.asm.label(proc_label(&proc.name));
        g.stmts(&proc.body, proc);
        // Fallthrough return value: 0.
        g.asm.lib(0);
        g.asm.ret();
    }
    g.asm
}

fn proc_label(name: &str) -> String {
    format!("proc:{name}")
}

struct Gen {
    asm: MesaAsm,
    next_label: u32,
    proc_labels: Vec<String>,
}

impl Gen {
    fn fresh(&mut self, what: &str) -> String {
        self.next_label += 1;
        format!("{what}.{}", self.next_label)
    }

    fn push_const(&mut self, v: u16) {
        if v <= 0xff {
            self.asm.lib(v as u8);
        } else {
            self.asm.liw(v);
        }
    }

    fn load(&mut self, place: Place) {
        match place {
            Place::Local(n) => self.asm.ll(n),
            Place::Global(n) => self.asm.lg(n),
        }
    }

    fn store(&mut self, place: Place) {
        match place {
            Place::Local(n) => self.asm.sl(n),
            Place::Global(n) => self.asm.sg(n),
        }
    }

    fn scratch(&self, frame: &RProc) -> u8 {
        frame
            .scratch
            .expect("sema reserves a scratch slot for every multiply/divide")
    }

    /// Drops the word *beneath* the top of stack: store the top to the
    /// frame scratch, drop the word under it, reload.
    fn drop_under(&mut self, frame: &RProc) {
        let s = self.scratch(frame);
        self.asm.sl(s);
        self.asm.drop_top();
        self.asm.ll(s);
    }

    /// Pushes 1 if the popped condition satisfies `jump_if_zero`
    /// (inverted otherwise) — the common tail of every comparison.
    fn flag_from_jump(&mut self, jump_if_zero: bool) {
        let yes = self.fresh("cmp.t");
        let end = self.fresh("cmp.e");
        if jump_if_zero {
            self.asm.jzb(yes.clone());
        } else {
            self.asm.jnzb(yes.clone());
        }
        self.asm.lib(0);
        self.asm.jb(end.clone());
        self.asm.label(yes);
        self.asm.lib(1);
        self.asm.label(end);
    }

    /// Pops `a, b`; pushes the sign bit test input for the comparison.
    /// `negate` turns `a-b` into `b-a` for `>`/`<=`.
    fn signed_diff(&mut self, negate: bool) {
        self.asm.sub();
        if negate {
            self.asm.neg();
        }
        self.asm.liw(0x8000);
        self.asm.and();
    }

    fn expr(&mut self, e: &RExpr, frame: &RProc) {
        match e {
            RExpr::Const(v) => self.push_const(*v),
            RExpr::Load(place) => self.load(*place),
            RExpr::Unary(op, inner) => {
                self.expr(inner, frame);
                match op {
                    UnOp::Neg => self.asm.neg(),
                    UnOp::Not => {
                        self.asm.liw(0xffff);
                        self.asm.xor();
                    }
                    UnOp::LNot => self.flag_from_jump(true),
                }
            }
            RExpr::Shift { left, amount, operand } => {
                self.expr(operand, frame);
                if *amount > 0 {
                    let ctl = if *left {
                        // Left cycle then zero the wrapped low bits.
                        ShiftCtl::with_masks(*amount, 0, *amount)
                    } else {
                        // Extract bits amount..16, right justified.
                        ShiftCtl::field_extract(*amount, 16 - *amount)
                    };
                    self.asm.shift(ctl);
                }
            }
            RExpr::Binary(op, a, b) => self.binary(*op, a, b, frame),
            RExpr::Call(id, args) => {
                // Arguments push left to right; XFER moves them into the
                // callee's locals 0..n.
                for a in args {
                    self.expr(a, frame);
                }
                let name = self.proc_labels[*id].clone();
                self.asm.call(name, args.len() as u8);
            }
            RExpr::ARef(base, index) => {
                self.expr(base, frame);
                self.expr(index, frame);
                self.asm.aread();
            }
        }
    }

    fn binary(&mut self, op: BinOp, a: &RExpr, b: &RExpr, frame: &RProc) {
        // Short-circuit forms control evaluation of `b`.
        match op {
            BinOp::LAnd => {
                let no = self.fresh("and.f");
                let end = self.fresh("and.e");
                self.expr(a, frame);
                self.asm.jzb(no.clone());
                self.expr(b, frame);
                self.asm.jzb(no.clone());
                self.asm.lib(1);
                self.asm.jb(end.clone());
                self.asm.label(no);
                self.asm.lib(0);
                self.asm.label(end);
                return;
            }
            BinOp::LOr => {
                let yes = self.fresh("or.t");
                let end = self.fresh("or.e");
                self.expr(a, frame);
                self.asm.jnzb(yes.clone());
                self.expr(b, frame);
                self.asm.jnzb(yes.clone());
                self.asm.lib(0);
                self.asm.jb(end.clone());
                self.asm.label(yes);
                self.asm.lib(1);
                self.asm.label(end);
                return;
            }
            _ => {}
        }
        self.expr(a, frame);
        self.expr(b, frame);
        match op {
            BinOp::Add => self.asm.add(),
            BinOp::Sub => self.asm.sub(),
            BinOp::And => self.asm.and(),
            BinOp::Or => self.asm.or(),
            BinOp::Xor => self.asm.xor(),
            BinOp::Mul => {
                // MUL pushes high then low; keep the low word.
                self.asm.mul();
                self.drop_under(frame);
            }
            BinOp::Div => {
                // DIV pushes remainder then quotient; keep the quotient.
                self.asm.div();
                self.drop_under(frame);
            }
            BinOp::Rem => {
                // ... or drop the quotient to keep the remainder.
                self.asm.div();
                self.asm.drop_top();
            }
            BinOp::Eq => {
                self.asm.sub();
                self.flag_from_jump(true);
            }
            BinOp::Ne => {
                self.asm.sub();
                self.flag_from_jump(false);
            }
            BinOp::Lt => {
                // a < b  ⇔  sign(a-b) set.
                self.signed_diff(false);
                self.flag_from_jump(false);
            }
            BinOp::Ge => {
                self.signed_diff(false);
                self.flag_from_jump(true);
            }
            BinOp::Gt => {
                // a > b  ⇔  sign(b-a) set.
                self.signed_diff(true);
                self.flag_from_jump(false);
            }
            BinOp::Le => {
                self.signed_diff(true);
                self.flag_from_jump(true);
            }
            BinOp::Shl | BinOp::Shr => unreachable!("sema lowers shifts to RExpr::Shift"),
            BinOp::LAnd | BinOp::LOr => unreachable!("handled above"),
        }
    }

    fn stmts(&mut self, body: &[RStmt], frame: &RProc) {
        for s in body {
            self.stmt(s, frame);
        }
    }

    fn stmt(&mut self, s: &RStmt, frame: &RProc) {
        self.asm.mark(s.span.start, s.span.end);
        match &s.kind {
            RStmtKind::Store(place, e) => {
                self.expr(e, frame);
                self.store(*place);
            }
            RStmtKind::If(cond, then, els) => {
                let end = self.fresh("if.e");
                self.expr(cond, frame);
                if els.is_empty() {
                    self.asm.jzb(end.clone());
                    self.stmts(then, frame);
                } else {
                    let no = self.fresh("if.f");
                    self.asm.jzb(no.clone());
                    self.stmts(then, frame);
                    self.asm.jb(end.clone());
                    self.asm.label(no);
                    self.stmts(els, frame);
                }
                self.asm.label(end);
            }
            RStmtKind::While(cond, body) => {
                let top = self.fresh("wh.t");
                let end = self.fresh("wh.e");
                self.asm.label(top.clone());
                self.expr(cond, frame);
                self.asm.jzb(end.clone());
                self.stmts(body, frame);
                self.asm.jb(top);
                self.asm.label(end);
            }
            RStmtKind::Return(e) => {
                self.expr(e, frame);
                self.asm.ret();
            }
            RStmtKind::Eval(e) => {
                self.expr(e, frame);
                self.asm.drop_top();
            }
            RStmtKind::Result(e) => {
                self.expr(e, frame);
            }
            RStmtKind::ASet(base, index, value) => {
                self.expr(base, frame);
                self.expr(index, frame);
                self.expr(value, frame);
                self.asm.awrite();
            }
        }
    }
}
