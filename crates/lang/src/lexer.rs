//! The lexer: source text to a token stream.
//!
//! Accepts C-style `//` line comments, decimal, hex (`0x`), and octal
//! (`0o`) integer literals, and the operator set of [`TokenKind`].

use crate::error::{CompileError, Result};
use crate::span::Span;
use crate::token::{Token, TokenKind};

/// Lexes `src` completely; the final token is always [`TokenKind::Eof`].
///
/// # Errors
///
/// Reports stray characters and out-of-range integer literals with their
/// source spans.
pub fn lex(src: &str) -> Result<Vec<Token>> {
    let bytes = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let b = bytes[i];
        // Whitespace.
        if b.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        // Line comments.
        if b == b'/' && bytes.get(i + 1) == Some(&b'/') {
            while i < bytes.len() && bytes[i] != b'\n' {
                i += 1;
            }
            continue;
        }
        let start = i;
        // Identifiers and keywords.
        if b.is_ascii_alphabetic() || b == b'_' {
            while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                i += 1;
            }
            let text = &src[start..i];
            let kind = match text {
                "global" => TokenKind::Global,
                "proc" => TokenKind::Proc,
                "let" => TokenKind::Let,
                "if" => TokenKind::If,
                "else" => TokenKind::Else,
                "while" => TokenKind::While,
                "return" => TokenKind::Return,
                _ => TokenKind::Ident(text.to_string()),
            };
            out.push(Token {
                kind,
                span: Span::new(start, i),
            });
            continue;
        }
        // Integer literals.
        if b.is_ascii_digit() {
            let radix = if b == b'0' && matches!(bytes.get(i + 1), Some(b'x' | b'X')) {
                i += 2;
                16
            } else if b == b'0' && matches!(bytes.get(i + 1), Some(b'o' | b'O')) {
                i += 2;
                8
            } else {
                10
            };
            let digits_start = i;
            while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                i += 1;
            }
            let digits: String = src[digits_start..i].chars().filter(|&c| c != '_').collect();
            let span = Span::new(start, i);
            if digits.is_empty() {
                return Err(CompileError::new(span, "integer literal has no digits"));
            }
            let value = u32::from_str_radix(&digits, radix)
                .map_err(|_| CompileError::new(span, "malformed integer literal"))?;
            let value = u16::try_from(value).map_err(|_| {
                CompileError::new(span, format!("integer {value} does not fit in 16 bits"))
            })?;
            out.push(Token {
                kind: TokenKind::Int(value),
                span,
            });
            continue;
        }
        // Operators, longest match first.
        let two = bytes.get(i + 1).map(|&b2| (b, b2));
        let (kind, len) = match two {
            Some((b'=', b'=')) => (TokenKind::Eq, 2),
            Some((b'!', b'=')) => (TokenKind::Ne, 2),
            Some((b'<', b'=')) => (TokenKind::Le, 2),
            Some((b'>', b'=')) => (TokenKind::Ge, 2),
            Some((b'<', b'<')) => (TokenKind::Shl, 2),
            Some((b'>', b'>')) => (TokenKind::Shr, 2),
            Some((b'&', b'&')) => (TokenKind::AndAnd, 2),
            Some((b'|', b'|')) => (TokenKind::OrOr, 2),
            _ => match b {
                b'(' => (TokenKind::LParen, 1),
                b')' => (TokenKind::RParen, 1),
                b'{' => (TokenKind::LBrace, 1),
                b'}' => (TokenKind::RBrace, 1),
                b',' => (TokenKind::Comma, 1),
                b';' => (TokenKind::Semi, 1),
                b'=' => (TokenKind::Assign, 1),
                b'<' => (TokenKind::Lt, 1),
                b'>' => (TokenKind::Gt, 1),
                b'+' => (TokenKind::Plus, 1),
                b'-' => (TokenKind::Minus, 1),
                b'*' => (TokenKind::Star, 1),
                b'/' => (TokenKind::Slash, 1),
                b'%' => (TokenKind::Percent, 1),
                b'&' => (TokenKind::Amp, 1),
                b'|' => (TokenKind::Pipe, 1),
                b'^' => (TokenKind::Caret, 1),
                b'~' => (TokenKind::Tilde, 1),
                b'!' => (TokenKind::Bang, 1),
                _ => {
                    return Err(CompileError::new(
                        Span::new(start, start + 1),
                        format!("unexpected character `{}`", src[start..].chars().next().unwrap()),
                    ));
                }
            },
        };
        i += len;
        out.push(Token {
            kind,
            span: Span::new(start, i),
        });
    }
    out.push(Token {
        kind: TokenKind::Eof,
        span: Span::new(src.len(), src.len()),
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn keywords_and_idents() {
        assert_eq!(
            kinds("let while whiles _x"),
            vec![
                TokenKind::Let,
                TokenKind::While,
                TokenKind::Ident("whiles".into()),
                TokenKind::Ident("_x".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn integer_radixes() {
        assert_eq!(
            kinds("10 0x1f 0o17 1_000"),
            vec![
                TokenKind::Int(10),
                TokenKind::Int(0x1f),
                TokenKind::Int(0o17),
                TokenKind::Int(1000),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn two_char_operators_win() {
        assert_eq!(
            kinds("<< <= < == = && & || |"),
            vec![
                TokenKind::Shl,
                TokenKind::Le,
                TokenKind::Lt,
                TokenKind::Eq,
                TokenKind::Assign,
                TokenKind::AndAnd,
                TokenKind::Amp,
                TokenKind::OrOr,
                TokenKind::Pipe,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            kinds("1 // two three\n4"),
            vec![TokenKind::Int(1), TokenKind::Int(4), TokenKind::Eof]
        );
    }

    #[test]
    fn out_of_range_literal_is_an_error() {
        let e = lex("70000").unwrap_err();
        assert!(e.msg.contains("16 bits"), "{e}");
        assert_eq!(e.span, Span::new(0, 5));
    }

    #[test]
    fn empty_hex_literal_is_an_error() {
        let e = lex("0x;").unwrap_err();
        assert!(e.msg.contains("no digits"), "{e}");
    }

    #[test]
    fn stray_character_is_an_error() {
        let e = lex("a @ b").unwrap_err();
        assert!(e.msg.contains('@'), "{e}");
        assert_eq!(e.span.start, 2);
    }

    #[test]
    fn spans_cover_tokens() {
        let toks = lex("ab + 12").unwrap();
        assert_eq!(toks[0].span, Span::new(0, 2));
        assert_eq!(toks[1].span, Span::new(3, 4));
        assert_eq!(toks[2].span, Span::new(5, 7));
    }
}
