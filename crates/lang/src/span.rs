//! Source positions for error reporting.

/// A half-open byte range into the source text.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Span {
    /// First byte of the spanned text.
    pub start: usize,
    /// One past the last byte.
    pub end: usize,
}

impl Span {
    /// A span covering `start..end`.
    pub fn new(start: usize, end: usize) -> Self {
        Span { start, end }
    }

    /// The smallest span covering both `self` and `other`.
    pub fn to(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }

    /// 1-based line and column of the span start within `src`.
    pub fn line_col(self, src: &str) -> (usize, usize) {
        let upto = &src[..self.start.min(src.len())];
        let line = upto.bytes().filter(|&b| b == b'\n').count() + 1;
        let col = upto.len() - upto.rfind('\n').map_or(0, |i| i + 1) + 1;
        (line, col)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_col_counts_from_one() {
        let src = "ab\ncd\nef";
        assert_eq!(Span::new(0, 1).line_col(src), (1, 1));
        assert_eq!(Span::new(4, 5).line_col(src), (2, 2));
        assert_eq!(Span::new(6, 7).line_col(src), (3, 1));
    }

    #[test]
    fn to_covers_both() {
        let a = Span::new(3, 5);
        let b = Span::new(9, 12);
        assert_eq!(a.to(b), Span::new(3, 12));
        assert_eq!(b.to(a), Span::new(3, 12));
    }

    #[test]
    fn line_col_clamps_past_end() {
        assert_eq!(Span::new(99, 100).line_col("xy"), (1, 3));
    }
}
