//! End-to-end compiler tests: source text through the compiler, the IFU,
//! the Mesa microcode, and the datapath.  Each test's oracle is ordinary
//! host arithmetic.

use dorado_base::VirtAddr;
use dorado_core::Dorado;
use dorado_emu::mesa;
use dorado_emu::suite::build_mesa;
use dorado_lang::compile;

fn run_src(src: &str) -> Dorado {
    let bytes = compile(src).unwrap_or_else(|e| panic!("{}", e.render(src)));
    let mut m = build_mesa(&bytes).expect("machine build");
    let out = m.run(5_000_000);
    assert!(out.halted(), "program did not halt: {out:?}");
    m
}

/// Compiles, runs, and returns the program result (final expression).
fn eval(src: &str) -> u16 {
    mesa::tos(&run_src(src))
}

#[test]
fn arithmetic_on_variables() {
    assert_eq!(eval("let a = 1000; let b = 234; a + b;"), 1234);
    assert_eq!(eval("let a = 5; let b = 9; a - b;"), 5u16.wrapping_sub(9));
    assert_eq!(eval("let a = 0x0ff0; let b = 0x00ff; a & b;"), 0x00f0);
    assert_eq!(eval("let a = 0x0f00; let b = 0x00f0; a | b;"), 0x0ff0);
    assert_eq!(eval("let a = 0xffff; let b = 0x0f0f; a ^ b;"), 0xf0f0);
}

#[test]
fn multiply_divide_remainder() {
    assert_eq!(eval("let a = 123; let b = 45; a * b;"), 123 * 45);
    assert_eq!(eval("let a = 1234; let b = 56; a / b;"), 1234 / 56);
    assert_eq!(eval("let a = 1234; let b = 56; a % b;"), 1234 % 56);
    // Wrapping multiply keeps the low word.
    assert_eq!(eval("let a = 300; let b = 300; a * b;"), 300u16.wrapping_mul(300));
}

#[test]
fn shifts_become_shiftctl() {
    assert_eq!(eval("let x = 0x1234; x << 4;"), 0x2340);
    assert_eq!(eval("let x = 0x1234; x >> 4;"), 0x0123);
    assert_eq!(eval("let x = 0x8001; x >> 1;"), 0x4000); // logical, not arithmetic
    assert_eq!(eval("let x = 7; x << 0;"), 7);
    assert_eq!(eval("let x = 1; x << 15;"), 0x8000);
}

#[test]
fn comparisons_produce_flags() {
    assert_eq!(eval("let a = 3; let b = 4; a < b;"), 1);
    assert_eq!(eval("let a = 4; let b = 4; a < b;"), 0);
    assert_eq!(eval("let a = 4; let b = 4; a <= b;"), 1);
    assert_eq!(eval("let a = 5; let b = 4; a > b;"), 1);
    assert_eq!(eval("let a = 4; let b = 5; a >= b;"), 0);
    assert_eq!(eval("let a = 9; let b = 9; a == b;"), 1);
    assert_eq!(eval("let a = 9; let b = 8; a != b;"), 1);
}

#[test]
fn comparisons_are_signed() {
    // -1 < 1 even though 0xffff > 1 unsigned.
    assert_eq!(eval("let a = 0 - 1; let b = 1; a < b;"), 1);
    assert_eq!(eval("let a = 0 - 1; let b = 1; a > b;"), 0);
}

#[test]
fn logical_operators_short_circuit() {
    assert_eq!(eval("let a = 2; let b = 0; a && b;"), 0);
    assert_eq!(eval("let a = 2; let b = 3; a && b;"), 1);
    assert_eq!(eval("let a = 0; let b = 3; a || b;"), 1);
    assert_eq!(eval("let a = 0; let b = 0; a || b;"), 0);
    // RHS with a side effect must not run when short-circuited.
    assert_eq!(
        eval("global hits = 0; proc bump() { hits = hits + 1; return 1; }\n\
              let r = 0 && bump(); hits;"),
        0
    );
    assert_eq!(
        eval("global hits = 0; proc bump() { hits = hits + 1; return 1; }\n\
              let r = 1 || bump(); hits;"),
        0
    );
}

#[test]
fn unary_operators() {
    assert_eq!(eval("let x = 5; -x;"), 5u16.wrapping_neg());
    assert_eq!(eval("let x = 0x00ff; ~x;"), 0xff00);
    assert_eq!(eval("let x = 0; !x;"), 1);
    assert_eq!(eval("let x = 44; !x;"), 0);
}

#[test]
fn if_else_chains() {
    let classify = "proc classify(n) {\n\
                    if n < 10 { return 1; }\n\
                    else if n < 100 { return 2; }\n\
                    else { return 3; }\n\
                    }\n";
    assert_eq!(eval(&format!("{classify} classify(5);")), 1);
    assert_eq!(eval(&format!("{classify} classify(50);")), 2);
    assert_eq!(eval(&format!("{classify} classify(500);")), 3);
}

#[test]
fn while_loops() {
    // Sum 1..=10.
    assert_eq!(
        eval("let s = 0; let i = 1; while i <= 10 { s = s + i; i = i + 1; } s;"),
        55
    );
    // Zero-iteration loop.
    assert_eq!(eval("let s = 9; while 0 { s = 1; } s;"), 9);
}

#[test]
fn gcd_via_euclid() {
    let gcd = "proc gcd(a, b) { while b != 0 { let t = b; b = a % b; a = t; } return a; }\n";
    assert_eq!(eval(&format!("{gcd} gcd(48, 36);")), 12);
    assert_eq!(eval(&format!("{gcd} gcd(17, 5);")), 1);
    assert_eq!(eval(&format!("{gcd} gcd(0, 7);")), 7);
}

#[test]
fn recursive_fibonacci() {
    let fib = "proc fib(n) { if n < 2 { return n; } return fib(n - 1) + fib(n - 2); }\n";
    assert_eq!(eval(&format!("{fib} fib(10);")), 55);
    assert_eq!(eval(&format!("{fib} fib(15);")), 610);
}

#[test]
fn iterative_fibonacci_matches_recursive() {
    let src = "proc fib(n) {\n\
                 let a = 0; let b = 1;\n\
                 while n > 0 { let t = a + b; a = b; b = t; n = n - 1; }\n\
                 return a;\n\
               }\n\
               fib(20);";
    assert_eq!(eval(src), 6765);
}

#[test]
fn nested_calls_and_expressions() {
    let src = "proc sq(x) { return x * x; }\n\
               proc hyp2(a, b) { return sq(a) + sq(b); }\n\
               hyp2(3, 4);";
    assert_eq!(eval(src), 25);
}

#[test]
fn globals_persist_across_calls() {
    let src = "global counter = 100;\n\
               proc tick() { counter = counter + 1; return counter; }\n\
               tick(); tick(); tick();";
    assert_eq!(eval(src), 103);
}

#[test]
fn memory_builtins_roundtrip() {
    // SCRATCH area starts at 0x100.
    let src = "poke(0x100, 1234);\n\
               aset(0x100, 3, 111);\n\
               peek(0x100) + aref(0x100, 3);";
    assert_eq!(eval(src), 1234 + 111);
}

#[test]
fn memory_builtins_hit_real_memory() {
    let m = run_src("poke(0x120, 0xbeef); 0;");
    assert_eq!(m.memory().read_virt(VirtAddr::new(0x120)), 0xbeef);
}

#[test]
fn block_scoping_at_runtime() {
    let src = "let x = 1;\n\
               { let x = 10; x = x + 1; }\n\
               { let y = 100; x = x + y; }\n\
               x;";
    assert_eq!(eval(src), 101);
}

#[test]
fn collatz_steps() {
    // Steps for 27 to reach 1 (a long-ish loop: 111 steps).
    let src = "proc step(n) { if n % 2 == 0 { return n / 2; } return 3 * n + 1; }\n\
               let n = 27; let steps = 0;\n\
               while n != 1 { n = step(n); steps = steps + 1; }\n\
               steps;";
    assert_eq!(eval(src), 111);
}

#[test]
fn sieve_of_eratosthenes_in_memory() {
    // Count primes below 64 using the scratch area as the sieve array.
    let src = "let base = 0x200;\n\
               let i = 0;\n\
               while i < 64 { aset(base, i, 1); i = i + 1; }\n\
               aset(base, 0, 0); aset(base, 1, 0);\n\
               let p = 2;\n\
               while p * p < 64 {\n\
                 if aref(base, p) { let k = p * p; while k < 64 { aset(base, k, 0); k = k + p; } }\n\
                 p = p + 1;\n\
               }\n\
               let count = 0; i = 0;\n\
               while i < 64 { count = count + aref(base, i); i = i + 1; }\n\
               count;";
    // Primes < 64: 2,3,5,7,11,13,17,19,23,29,31,37,41,43,47,53,59,61.
    assert_eq!(eval(src), 18);
}

#[test]
fn program_result_is_last_expression() {
    assert_eq!(eval("1 + 1; 2 + 2; let x = 9; x * 3;"), 27);
}

#[test]
fn deep_recursion_within_frame_pool() {
    // 64 frames in the pool; depth ~30 is comfortably inside.
    let src = "proc depth(n) { if n == 0 { return 0; } return 1 + depth(n - 1); }\n\
               depth(30);";
    assert_eq!(eval(src), 30);
}

#[test]
fn cycle_costs_are_sane() {
    // An empty program (just HALT) should cost only boot + dispatch.
    let bytes = compile("0;").unwrap();
    let mut m = build_mesa(&bytes).expect("machine build");
    let out = m.run(10_000);
    assert!(out.halted());
    assert!(m.cycles() < 200, "trivial program took {} cycles", m.cycles());
}
