//! Differential property tests: random programs are compiled and run on
//! the simulated Dorado, and the result is compared against a host
//! interpreter implementing the language's documented semantics
//! (wrapping arithmetic, sign-bit comparisons, logical shifts).
//!
//! This exercises the whole stack at once — lexer, parser, sema,
//! codegen, the IFU's decode table, the Mesa microcode, the placer, the
//! cache, and the datapath — with one oracle.

use proptest::prelude::*;

use dorado_emu::mesa;
use dorado_emu::suite::build_mesa;
use dorado_lang::compile;

/// A generated expression over variables `v0..vN`, printed fully
/// parenthesized so precedence never matters.
#[derive(Debug, Clone)]
enum GenExpr {
    Const(u16),
    Var(usize),
    Unary(&'static str, Box<GenExpr>),
    Bin(&'static str, Box<GenExpr>, Box<GenExpr>),
    /// Division family: divisor forced to a nonzero constant.
    DivBy(&'static str, Box<GenExpr>, u16),
    /// Shift by a constant 0–15.
    Shift(&'static str, Box<GenExpr>, u8),
}

impl GenExpr {
    fn print(&self, out: &mut String) {
        match self {
            GenExpr::Const(v) => out.push_str(&v.to_string()),
            GenExpr::Var(i) => out.push_str(&format!("v{i}")),
            GenExpr::Unary(op, e) => {
                out.push('(');
                out.push_str(op);
                e.print(out);
                out.push(')');
            }
            GenExpr::Bin(op, a, b) => {
                out.push('(');
                a.print(out);
                out.push_str(&format!(" {op} "));
                b.print(out);
                out.push(')');
            }
            GenExpr::DivBy(op, a, d) => {
                out.push('(');
                a.print(out);
                out.push_str(&format!(" {op} {d})"));
            }
            GenExpr::Shift(op, a, n) => {
                out.push('(');
                a.print(out);
                out.push_str(&format!(" {op} {n})"));
            }
        }
    }

    /// The language's semantics on the host: the oracle.
    fn eval(&self, env: &[u16]) -> u16 {
        match self {
            GenExpr::Const(v) => *v,
            GenExpr::Var(i) => env[*i],
            GenExpr::Unary(op, e) => {
                let v = e.eval(env);
                match *op {
                    "-" => v.wrapping_neg(),
                    "~" => !v,
                    "!" => u16::from(v == 0),
                    other => unreachable!("{other}"),
                }
            }
            GenExpr::Bin(op, a, b) => {
                let (a, b) = (a.eval(env), b.eval(env));
                match *op {
                    "+" => a.wrapping_add(b),
                    "-" => a.wrapping_sub(b),
                    "*" => a.wrapping_mul(b),
                    "&" => a & b,
                    "|" => a | b,
                    "^" => a ^ b,
                    "==" => u16::from(a == b),
                    "!=" => u16::from(a != b),
                    // Documented contract: sign bit of the difference.
                    "<" => u16::from(a.wrapping_sub(b) & 0x8000 != 0),
                    ">=" => u16::from(a.wrapping_sub(b) & 0x8000 == 0),
                    ">" => u16::from(b.wrapping_sub(a) & 0x8000 != 0),
                    "<=" => u16::from(b.wrapping_sub(a) & 0x8000 == 0),
                    "&&" => u16::from(a != 0 && b != 0),
                    "||" => u16::from(a != 0 || b != 0),
                    other => unreachable!("{other}"),
                }
            }
            GenExpr::DivBy(op, a, d) => {
                let a = a.eval(env);
                match *op {
                    "/" => a / d,
                    "%" => a % d,
                    other => unreachable!("{other}"),
                }
            }
            GenExpr::Shift(op, a, n) => {
                let a = a.eval(env);
                match *op {
                    "<<" => a << n,
                    ">>" => a >> n,
                    other => unreachable!("{other}"),
                }
            }
        }
    }
}

/// Strategy for expressions over `nvars` variables.
fn expr_strategy(nvars: usize) -> impl Strategy<Value = GenExpr> {
    let leaf = prop_oneof![
        any::<u16>().prop_map(GenExpr::Const),
        (0..nvars).prop_map(GenExpr::Var),
    ];
    leaf.prop_recursive(4, 24, 3, |inner| {
        prop_oneof![
            (
                prop_oneof![
                    Just("+"),
                    Just("-"),
                    Just("*"),
                    Just("&"),
                    Just("|"),
                    Just("^"),
                    Just("=="),
                    Just("!="),
                    Just("<"),
                    Just("<="),
                    Just(">"),
                    Just(">="),
                    Just("&&"),
                    Just("||"),
                ],
                inner.clone(),
                inner.clone()
            )
                .prop_map(|(op, a, b)| GenExpr::Bin(op, Box::new(a), Box::new(b))),
            (
                prop_oneof![Just("-"), Just("~"), Just("!")],
                inner.clone()
            )
                .prop_map(|(op, e)| GenExpr::Unary(op, Box::new(e))),
            (prop_oneof![Just("/"), Just("%")], inner.clone(), 1u16..)
                .prop_map(|(op, a, d)| GenExpr::DivBy(op, Box::new(a), d)),
            (prop_oneof![Just("<<"), Just(">>")], inner, 0u8..16)
                .prop_map(|(op, a, n)| GenExpr::Shift(op, Box::new(a), n)),
        ]
    })
}

/// Compiles `src` and runs it to a halt, returning the result.
fn run(src: &str) -> u16 {
    let bytes = compile(src).unwrap_or_else(|e| panic!("{}\n{src}", e.render(src)));
    let mut m = build_mesa(&bytes).expect("machine build");
    let out = m.run(20_000_000);
    assert!(out.halted(), "did not halt: {out:?}\n{src}");
    mesa::tos(&m)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// A single random expression over three variables agrees with the
    /// host oracle.
    #[test]
    fn expressions_match_host_oracle(
        e in expr_strategy(3),
        vals in proptest::array::uniform3(any::<u16>()),
    ) {
        let mut src = String::new();
        for (i, v) in vals.iter().enumerate() {
            src.push_str(&format!("let v{i} = {v};\n"));
        }
        e.print(&mut src);
        src.push(';');
        prop_assert_eq!(run(&src), e.eval(&vals));
    }

    /// A straight-line program of dependent lets agrees with the oracle:
    /// each statement binds a new variable over everything before it.
    #[test]
    fn straightline_programs_match_host_oracle(
        seeds in proptest::collection::vec(expr_strategy(1), 2..5),
        v0 in any::<u16>(),
    ) {
        // Rebase each expression onto the variables defined so far by
        // reusing var index 0 as "most recent binding".
        let mut src = format!("let v0 = {v0};\n");
        let mut env = vec![v0];
        for (i, e) in seeds.iter().enumerate() {
            // Variables inside `e` refer to v{i} (the latest).
            let mut text = String::new();
            e.print(&mut text);
            let text = text.replace("v0", &format!("v{i}"));
            src.push_str(&format!("let v{} = {text};\n", i + 1));
            env.push(e.eval(&env[i..=i]));
        }
        src.push_str(&format!("v{};", env.len() - 1));
        prop_assert_eq!(run(&src), *env.last().expect("nonempty"));
    }

    /// A counted loop computes the same running sum as the host.
    #[test]
    fn counted_loops_match_host_oracle(
        n in 1u16..40,
        step in expr_strategy(1),
    ) {
        let mut body = String::new();
        step.print(&mut body);
        let src = format!(
            "let acc = 0; let i = 0;\n\
             while i < {n} {{ let v0 = i; acc = acc + ({body}); i = i + 1; }}\n\
             acc;"
        );
        let mut want = 0u16;
        for i in 0..n {
            want = want.wrapping_add(step.eval(&[i]));
        }
        prop_assert_eq!(run(&src), want);
    }
}
