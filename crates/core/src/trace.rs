//! Cycle-stamped execution traces, in the spirit of the microprogram
//! debugger the real machine was controlled with.
//!
//! Tracing is off by default and costs nothing when off (the machine's
//! per-cycle work is gated on the tracer being present).  When on, events
//! land in a fixed-capacity ring buffer: a long run keeps its *last* N
//! cycles, which is what a debugger wants when the interesting part is
//! just before the stop.  The buffer exports as JSONL (one event per
//! line, stable keys) for offline tooling, or as a human-readable dump.

use dorado_base::{HoldCause, MicroAddr, TaskId};

/// How the cache answered a reference started by the traced instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CacheOutcome {
    /// The instruction started no cache reference.
    #[default]
    None,
    /// The reference hit in the cache.
    Hit,
    /// The reference went to storage.
    Miss,
}

impl CacheOutcome {
    /// A short stable name (`"hit"`, `"miss"`, `"none"`).
    pub fn name(self) -> &'static str {
        match self {
            CacheOutcome::None => "none",
            CacheOutcome::Hit => "hit",
            CacheOutcome::Miss => "miss",
        }
    }
}

/// One cycle of execution, as recorded when tracing is enabled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// The cycle number (from machine reset).
    pub cycle: u64,
    /// The task whose instruction occupied the cycle.
    pub task: TaskId,
    /// The instruction's microstore address.
    pub addr: MicroAddr,
    /// Why the instruction was held, if it was.
    pub held: Option<HoldCause>,
    /// The task selected to execute in the following cycle.
    pub next_task: TaskId,
    /// Cache outcome of any reference the instruction started.
    pub cache: CacheOutcome,
    /// Whether the §5.6 bypass hardware forwarded this instruction's
    /// RESULT to its register sinks immediately (always `false` when the
    /// instruction was held, wrote no register, or the machine runs in
    /// the Model-0 no-bypass configuration).
    pub bypass: bool,
}

impl TraceEvent {
    /// One JSON object, on one line, with stable keys.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"cycle\":{},\"task\":{},\"addr\":{},\"held\":{},\"next_task\":{},\"cache\":\"{}\",\"bypass\":{}}}",
            self.cycle,
            self.task.number(),
            self.addr.raw(),
            match self.held {
                Some(cause) => format!("\"{}\"", cause.name()),
                None => "null".to_string(),
            },
            self.next_task.number(),
            self.cache.name(),
            self.bypass,
        )
    }
}

impl std::fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "[{:>8}] {} @{}{}{}{}{}",
            self.cycle,
            self.task,
            self.addr,
            match self.held {
                Some(cause) => format!(" HELD({cause})"),
                None => String::new(),
            },
            match self.cache {
                CacheOutcome::None => String::new(),
                c => format!(" cache:{}", c.name()),
            },
            if self.bypass { " bypass" } else { "" },
            if self.next_task != self.task {
                format!(" -> {}", self.next_task)
            } else {
                String::new()
            }
        )
    }
}

/// A fixed-capacity ring buffer of [`TraceEvent`]s: always keeps the most
/// recent `capacity` events, counting what it had to drop.
#[derive(Debug, Clone)]
pub struct Tracer {
    buf: Vec<TraceEvent>,
    /// Index of the oldest event once the buffer has wrapped.
    head: usize,
    capacity: usize,
    dropped: u64,
}

impl Tracer {
    /// Creates a tracer keeping the last `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "tracer capacity must be positive");
        Tracer {
            buf: Vec::with_capacity(capacity.min(1 << 20)),
            head: 0,
            capacity,
            dropped: 0,
        }
    }

    /// Records one event, evicting the oldest once full.
    pub fn record(&mut self, event: TraceEvent) {
        if self.buf.len() < self.capacity {
            self.buf.push(event);
        } else {
            self.buf[self.head] = event;
            self.head = (self.head + 1) % self.capacity;
            self.dropped += 1;
        }
    }

    /// Events currently retained.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether no events are retained.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The retention capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Events evicted because the buffer was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        let (wrapped, start) = self.buf.split_at(self.head);
        start.iter().chain(wrapped.iter())
    }

    /// Drains the retained events (oldest first), leaving the tracer
    /// empty but enabled.
    pub fn take(&mut self) -> Vec<TraceEvent> {
        let events: Vec<TraceEvent> = self.events().copied().collect();
        self.buf.clear();
        self.head = 0;
        events
    }

    /// The retained events as JSONL: one JSON object per line.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for e in self.events() {
            out.push_str(&e.to_json());
            out.push('\n');
        }
        out
    }

    /// Writes the retained events as JSONL.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from `w`.
    pub fn write_jsonl<W: std::io::Write>(&self, w: &mut W) -> std::io::Result<()> {
        for e in self.events() {
            writeln!(w, "{}", e.to_json())?;
        }
        Ok(())
    }
}

impl std::fmt::Display for Tracer {
    /// A human-readable dump: one event per line, plus a header noting
    /// any eviction.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "trace: {} event(s), capacity {}{}",
            self.len(),
            self.capacity,
            if self.dropped > 0 {
                format!(", {} older dropped", self.dropped)
            } else {
                String::new()
            }
        )?;
        for e in self.events() {
            writeln!(f, "{e}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(cycle: u64) -> TraceEvent {
        TraceEvent {
            cycle,
            task: TaskId::EMULATOR,
            addr: MicroAddr::new(cycle as u16),
            held: None,
            next_task: TaskId::EMULATOR,
            cache: CacheOutcome::None,
            bypass: false,
        }
    }

    #[test]
    fn display_shows_switches_and_holds() {
        let e = TraceEvent {
            cycle: 5,
            task: TaskId::EMULATOR,
            addr: MicroAddr::new(0o100),
            held: None,
            next_task: TaskId::new(11),
            cache: CacheOutcome::Hit,
            bypass: true,
        };
        let s = format!("{e}");
        assert!(s.contains("task0") && s.contains("-> task11"), "{s}");
        assert!(s.contains("cache:hit") && s.contains("bypass"), "{s}");
        let e = TraceEvent {
            held: Some(HoldCause::MemData),
            next_task: TaskId::EMULATOR,
            cache: CacheOutcome::None,
            bypass: false,
            ..e
        };
        let s = format!("{e}");
        assert!(s.contains("HELD"), "{s}");
        assert!(!s.contains("->"), "{s}");
    }

    #[test]
    fn ring_keeps_the_most_recent_events() {
        let mut t = Tracer::new(3);
        for c in 0..5 {
            t.record(event(c));
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.dropped(), 2);
        let cycles: Vec<u64> = t.events().map(|e| e.cycle).collect();
        assert_eq!(cycles, vec![2, 3, 4]);
    }

    #[test]
    fn take_drains_in_order_and_resets() {
        let mut t = Tracer::new(2);
        for c in 0..3 {
            t.record(event(c));
        }
        let taken = t.take();
        assert_eq!(taken.iter().map(|e| e.cycle).collect::<Vec<_>>(), vec![1, 2]);
        assert!(t.is_empty());
        t.record(event(9));
        assert_eq!(t.events().next().unwrap().cycle, 9);
    }

    #[test]
    fn jsonl_is_one_valid_object_per_line() {
        let mut t = Tracer::new(4);
        t.record(TraceEvent {
            held: Some(HoldCause::IfuDispatch),
            cache: CacheOutcome::Miss,
            ..event(7)
        });
        t.record(event(8));
        let text = t.to_jsonl();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with('{') && lines[0].ends_with('}'));
        assert!(lines[0].contains("\"held\":\"ifu-dispatch\""), "{}", lines[0]);
        assert!(lines[0].contains("\"cache\":\"miss\""), "{}", lines[0]);
        assert!(lines[1].contains("\"held\":null"), "{}", lines[1]);
        let mut sink = Vec::new();
        t.write_jsonl(&mut sink).unwrap();
        assert_eq!(String::from_utf8(sink).unwrap(), text);
    }

    #[test]
    fn tracer_display_dumps_events() {
        let mut t = Tracer::new(2);
        for c in 0..4 {
            t.record(event(c));
        }
        let s = format!("{t}");
        assert!(s.contains("2 event(s)"), "{s}");
        assert!(s.contains("2 older dropped"), "{s}");
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_is_rejected() {
        let _ = Tracer::new(0);
    }
}
