//! Cycle-stamped execution traces, in the spirit of the microprogram
//! debugger the real machine was controlled with.

use crate::machine::HoldCause;
use dorado_base::{MicroAddr, TaskId};

/// One cycle of execution, as recorded when tracing is enabled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// The cycle number (from machine reset).
    pub cycle: u64,
    /// The task whose instruction occupied the cycle.
    pub task: TaskId,
    /// The instruction's microstore address.
    pub addr: MicroAddr,
    /// Why the instruction was held, if it was.
    pub held: Option<HoldCause>,
    /// The task selected to execute in the following cycle.
    pub next_task: TaskId,
}

impl std::fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "[{:>8}] {} @{}{}{}",
            self.cycle,
            self.task,
            self.addr,
            match self.held {
                Some(cause) => format!(" HELD({cause:?})"),
                None => String::new(),
            },
            if self.next_task != self.task {
                format!(" -> {}", self.next_task)
            } else {
                String::new()
            }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_shows_switches_and_holds() {
        let e = TraceEvent {
            cycle: 5,
            task: TaskId::EMULATOR,
            addr: MicroAddr::new(0o100),
            held: None,
            next_task: TaskId::new(11),
        };
        let s = format!("{e}");
        assert!(s.contains("task0") && s.contains("-> task11"), "{s}");
        let e = TraceEvent {
            held: Some(HoldCause::MemData),
            next_task: TaskId::EMULATOR,
            ..e
        };
        let s = format!("{e}");
        assert!(s.contains("HELD"), "{s}");
        assert!(!s.contains("->"), "{s}");
    }
}
