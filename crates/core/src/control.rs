//! The control section (§6.2): task-specific program counters, subroutine
//! linkage, and the task arbitration pipeline.

use dorado_base::snap::{Reader, SnapError, Snapshot, Writer};
use dorado_base::task::TaskSet;
use dorado_base::{MicroAddr, TaskId, NUM_TASKS};

/// How wakeup removal is signalled to devices — the §6.2.1 design choice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TaskingMode {
    /// The shipped design: NEXT is broadcast to all devices, which drop
    /// their wakeups on seeing their task number.  Grain of allocation:
    /// two cycles.
    #[default]
    OnDemand,
    /// The "simpler design" ablation: "the microcode \[must\] explicitly
    /// notify its device when the wakeup should be removed" (`IoNotify`).
    /// NEXT is not broadcast; the grain becomes three cycles.
    NotifyGrain3,
}

/// The first (arbitration) stage's output registers: BESTNEXTTASK and
/// BESTNEXTPC (§6.2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Stage1 {
    /// The highest-priority requesting task.
    pub task: TaskId,
    /// That task's TPC, read in advance.
    pub pc: MicroAddr,
}

/// The control section state.
#[derive(Debug, Clone)]
pub struct ControlSection {
    /// Task-specific program counters (§5.3, §6.2.2).
    pub tpc: [MicroAddr; NUM_TASKS],
    /// Task-specific subroutine linkage registers (§6.2.3).
    pub link: [MicroAddr; NUM_TASKS],
    /// READY: preempted and explicitly readied tasks (§6.2.1).
    pub ready: TaskSet,
    /// The task whose instruction executes this cycle (THISTASK).
    pub this_task: TaskId,
    /// The address of the instruction executing this cycle (THISPC).
    pub this_pc: MicroAddr,
    /// The arbitration-stage output latched last cycle.
    pub stage1: Stage1,
}

impl Default for ControlSection {
    fn default() -> Self {
        Self::new()
    }
}

impl ControlSection {
    /// A reset control section: all TPCs at 0, task 0 running from 0.
    pub fn new() -> Self {
        ControlSection {
            tpc: [MicroAddr::new(0); NUM_TASKS],
            link: [MicroAddr::new(0); NUM_TASKS],
            ready: TaskSet::EMPTY,
            this_task: TaskId::EMULATOR,
            this_pc: MicroAddr::new(0),
            stage1: Stage1 {
                task: TaskId::EMULATOR,
                pc: MicroAddr::new(0),
            },
        }
    }

    /// Latches the arbitration stage: priority-encode the requests and read
    /// the winner's TPC (the first pipe stage of Figure 3).  `requests`
    /// must already include task 0 (which "requests service from the
    /// processor at all times", §5.1).
    ///
    /// # Panics
    ///
    /// Panics if `requests` is empty.
    pub fn arbitrate(&mut self, requests: TaskSet) {
        let best = requests
            .highest()
            .expect("task 0 always requests the processor");
        self.stage1 = Stage1 {
            task: best,
            pc: self.tpc[best.index()],
        };
    }

    /// The NEXT computation (second pipe stage): "The NEXT bus normally
    /// gets the larger of BESTNEXTTASK and THISTASK"; Block "indicate\[s\]
    /// that NEXT should get BESTNEXTTASK unconditionally" (§6.2.1).
    pub fn next_task(&self, block: bool) -> TaskId {
        if block || self.stage1.task > self.this_task {
            self.stage1.task
        } else {
            self.this_task
        }
    }
}

impl Snapshot for ControlSection {
    fn save(&self, w: &mut Writer) {
        w.tag(b"CTRL");
        for &pc in &self.tpc {
            w.u16(pc.raw());
        }
        for &l in &self.link {
            w.u16(l.raw());
        }
        w.u16(self.ready.bits());
        w.u8(self.this_task.number());
        w.u16(self.this_pc.raw());
        w.u8(self.stage1.task.number());
        w.u16(self.stage1.pc.raw());
    }

    fn restore(&mut self, r: &mut Reader<'_>) -> Result<(), SnapError> {
        r.tag(b"CTRL")?;
        for pc in &mut self.tpc {
            *pc = MicroAddr::new(r.u16()?);
        }
        for l in &mut self.link {
            *l = MicroAddr::new(r.u16()?);
        }
        self.ready = TaskSet::from_bits(r.u16()?);
        self.this_task = TaskId::new(r.u8()?);
        self.this_pc = MicroAddr::new(r.u16()?);
        self.stage1 = Stage1 {
            task: TaskId::new(r.u8()?),
            pc: MicroAddr::new(r.u16()?),
        };
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn requests(tasks: &[u8]) -> TaskSet {
        let mut s: TaskSet = tasks.iter().map(|&t| TaskId::new(t)).collect();
        s.insert(TaskId::EMULATOR);
        s
    }

    #[test]
    fn arbitrate_picks_highest() {
        let mut c = ControlSection::new();
        c.tpc[11] = MicroAddr::new(0o1234);
        c.arbitrate(requests(&[3, 11, 7]));
        assert_eq!(c.stage1.task, TaskId::new(11));
        assert_eq!(c.stage1.pc, MicroAddr::new(0o1234));
    }

    #[test]
    fn next_prefers_higher_priority() {
        let mut c = ControlSection::new();
        c.this_task = TaskId::new(5);
        c.arbitrate(requests(&[3]));
        // Best (3) is lower than running (5): keep running.
        assert_eq!(c.next_task(false), TaskId::new(5));
        // Unless the running task blocks.
        assert_eq!(c.next_task(true), TaskId::new(3));
        // A higher-priority request preempts.
        c.arbitrate(requests(&[9]));
        assert_eq!(c.next_task(false), TaskId::new(9));
    }

    #[test]
    fn emulator_runs_when_nothing_else_wants_to() {
        let mut c = ControlSection::new();
        c.this_task = TaskId::new(5);
        c.arbitrate(requests(&[]));
        assert_eq!(c.next_task(true), TaskId::EMULATOR);
    }

    #[test]
    #[should_panic(expected = "task 0")]
    fn empty_requests_panic() {
        ControlSection::new().arbitrate(TaskSet::EMPTY);
    }
}
