//! The data section (§6.3): registers, stacks, and condition flags.
//!
//! "Not all registers are task specific" (§5.3): RM, the stack memory,
//! COUNT, Q, SHIFTCTL, and ALUFM are shared; T, IOADDRESS, RBASE, MEMBASE,
//! and the branch-condition flags are task specific (TPC and LINK live in
//! the [control section](crate::control)).  RBASE and MEMBASE must be task
//! specific for the §6.2.1 two-instruction service loops to work: a device
//! task addresses its own RM region and buffer base with no save/restore.

use dorado_asm::{default_alufm, AluFunction, ShiftCtl};
use dorado_base::snap::{Reader, SnapError, Snapshot, Writer};
use dorado_base::{BaseRegId, TaskId, Word, NUM_TASKS, RM_SIZE, STACK_SIZE};

/// Branch-condition flags computed from a task's most recent ALU operation
/// (the task-specific branch-condition register of §5.3).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CondFlags {
    /// The result was zero.
    pub zero: bool,
    /// The result was negative (bit 15).
    pub neg: bool,
    /// Carry out (no-borrow for subtraction).
    pub carry: bool,
    /// Signed overflow.
    pub overflow: bool,
    /// The result was odd (bit 0).
    pub odd: bool,
}

impl CondFlags {
    /// Flags for a 16-bit result with explicit carry/overflow.
    pub fn from_result(result: Word, carry: bool, overflow: bool) -> Self {
        CondFlags {
            zero: result == 0,
            neg: result & 0x8000 != 0,
            carry,
            overflow,
            odd: result & 1 != 0,
        }
    }
}

/// The data section state.
#[derive(Debug, Clone)]
pub struct DataSection {
    /// The 256 general registers (§6.3.3).
    pub rm: [Word; RM_SIZE],
    /// The 256-word stack memory: four 64-word stacks (§6.3.3).
    pub stack: [Word; STACK_SIZE],
    /// STACKPTR: 2 bits of stack select, 6 bits of position.
    stackptr: u8,
    /// Sticky stack over/underflow flag (§6.3.3).
    pub stack_error: bool,
    /// Task-specific working register T.
    pub t: [Word; NUM_TASKS],
    /// The COUNT register (shared; "normally used only by task 0", §5.3).
    pub count: Word,
    /// The Q register for multiply/divide (shared).
    pub q: Word,
    /// SHIFTCTL (shared).
    pub shiftctl: ShiftCtl,
    /// RBASE: high 4 bits of the RM address (task specific).
    rbase: [u8; NUM_TASKS],
    /// MEMBASE: selects one of 32 memory base registers (task specific).
    membase: [BaseRegId; NUM_TASKS],
    /// ALUFM: maps ALUOp to an ALU function (§6.3.3).
    pub alufm: [AluFunction; 16],
    /// Task-specific IOADDRESS registers (§6.3.3).
    pub ioaddress: [Word; NUM_TASKS],
    /// Task-specific branch-condition flags.
    pub flags: [CondFlags; NUM_TASKS],
}

impl Default for DataSection {
    fn default() -> Self {
        Self::new()
    }
}

impl DataSection {
    /// A zeroed data section with the default ALUFM mapping.
    pub fn new() -> Self {
        DataSection {
            rm: [0; RM_SIZE],
            stack: [0; STACK_SIZE],
            stackptr: 0,
            stack_error: false,
            t: [0; NUM_TASKS],
            count: 0,
            q: 0,
            shiftctl: ShiftCtl::default(),
            rbase: [0; NUM_TASKS],
            membase: [BaseRegId::new(0); NUM_TASKS],
            alufm: default_alufm(),
            ioaddress: [0; NUM_TASKS],
            flags: [CondFlags::default(); NUM_TASKS],
        }
    }

    /// The full 8-bit RM address formed from the task's RBASE and a 4-bit
    /// RAddress ("Four come from the RAddress field ... and the other four
    /// are supplied from RBASE", §6.3.3).
    pub fn rm_address(&self, task: TaskId, raddr: u8) -> usize {
        usize::from(self.rbase[task.index()]) << 4 | usize::from(raddr & 0xf)
    }

    /// The task's RBASE.
    pub fn rbase(&self, task: TaskId) -> u8 {
        self.rbase[task.index()]
    }

    /// Sets the task's RBASE (low 4 bits).
    pub fn set_rbase(&mut self, task: TaskId, value: u8) {
        self.rbase[task.index()] = value & 0xf;
    }

    /// The task's MEMBASE.
    pub fn membase(&self, task: TaskId) -> BaseRegId {
        self.membase[task.index()]
    }

    /// Sets the task's MEMBASE (low 5 bits).
    pub fn set_membase(&mut self, task: TaskId, value: u8) {
        self.membase[task.index()] = BaseRegId::new(value);
    }

    /// STACKPTR: 2 bits of stack select and 6 bits of position.
    pub fn stackptr(&self) -> u8 {
        self.stackptr
    }

    /// Sets STACKPTR.
    pub fn set_stackptr(&mut self, value: u8) {
        self.stackptr = value;
    }

    /// The current top-of-stack address.
    pub fn stack_address(&self) -> usize {
        usize::from(self.stackptr)
    }

    /// Reads the word STACKPTR addresses.
    pub fn stack_read(&self) -> Word {
        self.stack[self.stack_address()]
    }

    /// The stack address `delta` away from STACKPTR, staying within the
    /// selected 64-word stack; sets the sticky error flag on over/underflow
    /// ("with independent underflow and overflow checking", §6.3.3).
    pub fn stack_adjusted(&mut self, delta: i8) -> usize {
        let select = self.stackptr & 0xc0;
        let pos = i16::from(self.stackptr & 0x3f) + i16::from(delta);
        if !(0..64).contains(&pos) {
            self.stack_error = true;
        }
        usize::from(select | (pos.rem_euclid(64) as u8))
    }

    /// Applies a stack-pointer adjustment, returning the *write* address
    /// (the adjusted position; reads use the pre-adjust position, §6.3.3).
    pub fn stack_bump(&mut self, delta: i8) -> usize {
        let addr = self.stack_adjusted(delta);
        self.stackptr = addr as u8;
        addr
    }
}

impl Snapshot for CondFlags {
    fn save(&self, w: &mut Writer) {
        let bits = u8::from(self.zero)
            | u8::from(self.neg) << 1
            | u8::from(self.carry) << 2
            | u8::from(self.overflow) << 3
            | u8::from(self.odd) << 4;
        w.u8(bits);
    }

    fn restore(&mut self, r: &mut Reader<'_>) -> Result<(), SnapError> {
        let bits = r.u8()?;
        if bits & !0x1f != 0 {
            return Err(SnapError::Invalid { what: "cond flags" });
        }
        self.zero = bits & 1 != 0;
        self.neg = bits & 2 != 0;
        self.carry = bits & 4 != 0;
        self.overflow = bits & 8 != 0;
        self.odd = bits & 16 != 0;
        Ok(())
    }
}

impl Snapshot for DataSection {
    fn save(&self, w: &mut Writer) {
        w.tag(b"DATA");
        w.words(&self.rm);
        w.words(&self.stack);
        w.u8(self.stackptr);
        w.bool(self.stack_error);
        w.words(&self.t);
        w.u16(self.count);
        w.u16(self.q);
        w.u16(self.shiftctl.raw());
        for &rb in &self.rbase {
            w.u8(rb);
        }
        for &mb in &self.membase {
            w.u8(mb.index() as u8);
        }
        for &f in &self.alufm {
            w.u8(f.raw());
        }
        w.words(&self.ioaddress);
        for f in &self.flags {
            f.save(w);
        }
    }

    fn restore(&mut self, r: &mut Reader<'_>) -> Result<(), SnapError> {
        r.tag(b"DATA")?;
        r.words(&mut self.rm)?;
        r.words(&mut self.stack)?;
        self.stackptr = r.u8()?;
        self.stack_error = r.bool()?;
        r.words(&mut self.t)?;
        self.count = r.u16()?;
        self.q = r.u16()?;
        self.shiftctl = ShiftCtl::from_raw(r.u16()?);
        for rb in &mut self.rbase {
            *rb = r.u8()?;
        }
        for mb in &mut self.membase {
            *mb = BaseRegId::new(r.u8()?);
        }
        for f in &mut self.alufm {
            *f = AluFunction::decode(r.u8()?)
                .map_err(|_| SnapError::Invalid { what: "alufm entry" })?;
        }
        r.words(&mut self.ioaddress)?;
        for f in &mut self.flags {
            f.restore(r)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rm_addressing_uses_rbase() {
        let mut d = DataSection::new();
        let t0 = TaskId::EMULATOR;
        let t9 = TaskId::new(9);
        assert_eq!(d.rm_address(t0, 0x5), 0x05);
        d.set_rbase(t0, 0x3);
        assert_eq!(d.rm_address(t0, 0x5), 0x35);
        // Another task's RBASE is independent (§6.2.1 service loops).
        assert_eq!(d.rm_address(t9, 0x5), 0x05);
        d.set_rbase(t0, 0x13); // only 4 bits kept
        assert_eq!(d.rbase(t0), 0x3);
    }

    #[test]
    fn stack_push_pop() {
        let mut d = DataSection::new();
        d.set_stackptr(0);
        // Push: write at ptr+1.
        let w = d.stack_bump(1);
        assert_eq!(w, 1);
        d.stack[w] = 42;
        assert_eq!(d.stackptr(), 1);
        assert_eq!(d.stack_read(), 42);
        // Pop: read at ptr, then decrement.
        let r = d.stack_read();
        assert_eq!(r, 42);
        d.stack_bump(-1);
        assert_eq!(d.stackptr(), 0);
        assert!(!d.stack_error);
    }

    #[test]
    fn stack_overflow_is_sticky_and_stays_in_stack() {
        let mut d = DataSection::new();
        d.set_stackptr(0x3f); // top of stack 0
        let w = d.stack_bump(1);
        assert!(d.stack_error);
        assert_eq!(w, 0, "wraps within stack 0, not into stack 1");
        // Underflow too.
        let mut d = DataSection::new();
        d.set_stackptr(0x40); // bottom of stack 1
        let w = d.stack_bump(-1);
        assert!(d.stack_error);
        assert_eq!(w, 0x7f, "wraps within stack 1");
    }

    #[test]
    fn four_independent_stacks() {
        let mut d = DataSection::new();
        for s in 0..4u8 {
            d.set_stackptr(s << 6);
            let w = d.stack_bump(1);
            d.stack[w] = Word::from(s) + 100;
        }
        for s in 0..4u8 {
            d.set_stackptr((s << 6) | 1);
            assert_eq!(d.stack_read(), Word::from(s) + 100);
        }
    }

    #[test]
    fn cond_flags_from_result() {
        let f = CondFlags::from_result(0, true, false);
        assert!(f.zero && f.carry && !f.neg && !f.odd);
        let f = CondFlags::from_result(0x8001, false, true);
        assert!(!f.zero && f.neg && f.odd && f.overflow);
    }

    #[test]
    fn membase_masks_to_5_bits() {
        let mut d = DataSection::new();
        d.set_membase(TaskId::EMULATOR, 0x25);
        assert_eq!(d.membase(TaskId::EMULATOR).index(), 5);
        assert_eq!(d.membase(TaskId::new(3)).index(), 0);
    }
}
