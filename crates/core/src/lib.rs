//! The Dorado processor: control section, data section, and the complete
//! machine (processor + memory + IFU + devices).
//!
//! This crate implements §5 and §6 of the paper at the microcycle level:
//!
//! * the **instruction pipeline** (Figure 2): one microinstruction issues
//!   per cycle, completing over three, with **data bypassing** (§5.6) —
//!   and a Model-0 mode without it, for the E9 ablation;
//! * the **task arbitration pipeline** (Figure 3, §6.2.1): WAKEUP/READY
//!   latching, priority encoding, BESTNEXTTASK/BESTNEXTPC, the NEXT bus
//!   broadcast, and the resulting two-cycle grain of processor allocation;
//! * **task-specific state** (§5.3): TPC, LINK, T, IOADDRESS, and the
//!   branch-condition register, all addressed by task number;
//! * **`Hold`** (§5.7): a held instruction becomes "no operation, jump to
//!   self" while the clocks — and task switching — keep running;
//! * the **data section** (§6.3): RM, the four hardware stacks with
//!   over/underflow checking, COUNT, Q, SHIFTCTL, RBASE, MEMBASE, ALUFM,
//!   the ALU, and the 32-bit barrel shifter/masker;
//! * **NEXTPC computation** (§5.5, §6.2.2) with the late branch-condition
//!   OR, LINK-exchanging calls and returns, dispatches, and IFU jumps.
//!
//! # Examples
//!
//! Build a machine that adds two constants and halts:
//!
//! ```
//! use dorado_asm::{Assembler, AluOp, Inst};
//! use dorado_core::DoradoBuilder;
//!
//! let mut a = Assembler::new();
//! a.label("go");
//! a.emit(Inst::new().const16(2).alu(AluOp::B).load_t());
//! a.emit(Inst::new().a(dorado_asm::ASel::T).const16(3).alu(AluOp::ADD).load_t());
//! a.emit(Inst::new().ff_halt().goto_("go"));
//! let placed = a.place()?;
//!
//! let mut m = DoradoBuilder::new().microcode(placed).build()?;
//! let outcome = m.run(1000);
//! assert!(outcome.halted());
//! assert_eq!(m.t(dorado_base::TaskId::EMULATOR), 5);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compiled;
pub mod console;
pub mod control;
pub mod datapath;
pub mod decoded;
pub mod machine;
pub mod trace;

pub use console::Console;
pub use control::{ControlSection, TaskingMode};
pub use datapath::{CondFlags, DataSection};
pub use decoded::DecodedInst;
pub use machine::{BuildError, Dorado, DoradoBuilder, ExecMode, HoldCause, RunOutcome, StepEvent};
pub use trace::{CacheOutcome, TraceEvent, Tracer};
