//! The console view of a running machine (§6.2: "an interface to a console
//! and monitoring microcomputer which is used for initialization and
//! debugging of the Dorado"; §4: "sophisticated debugging facilities").
//!
//! [`Console`] renders machine state the way Ed Fiala's microprogram
//! debugger did: task status, the visible registers, and disassembled
//! microcode around the program counter.

use dorado_asm::disasm::disassemble;
use dorado_base::{HoldCause, MicroAddr, TaskId, NUM_TASKS};

use crate::machine::Dorado;

/// A read-only debugging view over a machine.
#[derive(Debug)]
pub struct Console<'m> {
    m: &'m Dorado,
}

impl<'m> Console<'m> {
    /// Attaches to a machine.
    pub fn new(m: &'m Dorado) -> Self {
        Console { m }
    }

    /// One line per task: TPC, LINK, T, IOADDRESS (the task-specific state
    /// of §5.3).
    pub fn task_status(&self) -> String {
        let mut out = String::from("task  TPC      LINK     T      IOADDR\n");
        let c = self.m.control();
        let d = self.m.datapath();
        for t in TaskId::all() {
            let marker = if t == c.this_task { '*' } else { ' ' };
            out.push_str(&format!(
                "{marker}{:<4} {:<8} {:<8} {:04x}   {:04x}\n",
                t.number(),
                format!("{}", c.tpc[t.index()]),
                format!("{}", c.link[t.index()]),
                d.t[t.index()],
                d.ioaddress[t.index()],
            ));
        }
        out.push_str(&format!("ready: {}\n", c.ready));
        out
    }

    /// The shared data-section registers.
    pub fn registers(&self) -> String {
        let d = self.m.datapath();
        let t = self.m.control().this_task;
        let mut out = format!(
            "COUNT={:04x}  Q={:04x}  SHIFTCTL=[{}]  RBASE={:x}  MEMBASE={}  STKP={:02x}{}\n",
            d.count,
            d.q,
            d.shiftctl,
            d.rbase(t),
            d.membase(t),
            d.stackptr(),
            if d.stack_error { "  STKERR" } else { "" }
        );
        out.push_str("RM[0..16): ");
        for i in 0..16 {
            out.push_str(&format!("{:04x} ", d.rm[i]));
        }
        out.push('\n');
        out
    }

    /// Disassembles `count` words starting at `addr`, marking the current
    /// program counter.
    pub fn listing(&self, addr: MicroAddr, count: usize) -> String {
        let mut out = String::new();
        let pc = self.m.control().this_pc;
        for k in 0..count {
            let a = MicroAddr::new(addr.raw().wrapping_add(k as u16));
            let marker = if a == pc { "->" } else { "  " };
            out.push_str(&format!(
                "{marker} {}\n",
                disassemble(a, self.m.read_microstore(a))
            ));
        }
        out
    }

    /// Disassembly around the current program counter.
    pub fn where_am_i(&self) -> String {
        let pc = self.m.control().this_pc;
        let start = MicroAddr::new(pc.raw().saturating_sub(2));
        self.listing(start, 5)
    }

    /// A full status screen.
    pub fn snapshot(&self) -> String {
        let s = self.m.stats();
        format!(
            "cycle {}  task {}  pc {}\n\n{}\n{}\n{}",
            s.cycles,
            self.m.control().this_task,
            self.m.control().this_pc,
            self.registers(),
            self.task_status(),
            self.where_am_i()
        )
    }

    /// Per-task cycle accounting (executed / held).
    pub fn accounting(&self) -> String {
        let s = self.m.stats();
        let mut out = String::from("task  executed   held     share\n");
        for t in 0..NUM_TASKS {
            if s.executed[t] == 0 && s.held[t] == 0 {
                continue;
            }
            out.push_str(&format!(
                "{:<5} {:<10} {:<8} {:.2}%\n",
                t,
                s.executed[t],
                s.held[t],
                s.executed[t] as f64 / s.cycles.max(1) as f64 * 100.0
            ));
        }
        out
    }

    /// Holds broken down by cause, per task and machine-wide (§5.7).
    pub fn hold_breakdown(&self) -> String {
        let s = self.m.stats();
        let mut out = String::from("task");
        for cause in HoldCause::ALL {
            out.push_str(&format!("  {:>12}", cause.name()));
        }
        out.push('\n');
        for t in 0..NUM_TASKS {
            if s.held[t] == 0 {
                continue;
            }
            out.push_str(&format!("{t:<4}"));
            for cause in HoldCause::ALL {
                out.push_str(&format!("  {:>12}", s.held_by[t][cause.index()]));
            }
            out.push('\n');
        }
        out.push_str("all ");
        for cause in HoldCause::ALL {
            out.push_str(&format!("  {:>12}", s.holds_for(cause)));
        }
        out.push('\n');
        out
    }

    /// The last `n` trace events, human-readable — or a note that tracing
    /// is off.
    pub fn trace_tail(&self, n: usize) -> String {
        match self.m.tracer() {
            None => String::from("trace: off (Dorado::trace_enable to record)\n"),
            Some(tracer) => {
                let mut out = String::new();
                let skip = tracer.len().saturating_sub(n);
                for e in tracer.events().skip(skip) {
                    out.push_str(&format!("{e}\n"));
                }
                if out.is_empty() {
                    out.push_str("trace: on, no events yet\n");
                }
                out
            }
        }
    }

    /// The §7 measurement tables for this machine's full run.
    pub fn report(&self) -> String {
        format!("{}", self.m.report())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::DoradoBuilder;
    use dorado_asm::{Assembler, Inst};

    fn machine() -> Dorado {
        let mut a = Assembler::new();
        a.label("spin");
        a.emit(Inst::new().ff_halt().goto_("spin"));
        DoradoBuilder::new()
            .microcode(a.place().unwrap())
            .build()
            .unwrap()
    }

    #[test]
    fn snapshot_renders_everything() {
        let mut m = machine();
        let _ = m.run(10);
        let c = Console::new(&m);
        let snap = c.snapshot();
        assert!(snap.contains("task0"), "{snap}");
        assert!(snap.contains("COUNT="), "{snap}");
        assert!(snap.contains("RM[0..16)"), "{snap}");
        assert!(snap.contains("->"), "current pc marked: {snap}");
    }

    #[test]
    fn task_status_marks_running_task() {
        let m = machine();
        let c = Console::new(&m);
        let status = c.task_status();
        assert!(status.lines().any(|l| l.starts_with('*')), "{status}");
        assert_eq!(status.lines().count(), 18, "16 tasks + header + ready");
    }

    #[test]
    fn listing_disassembles() {
        let m = machine();
        let c = Console::new(&m);
        let l = c.listing(MicroAddr::new(0), 3);
        assert_eq!(l.lines().count(), 3);
        assert!(l.contains("HALT"), "{l}");
    }

    #[test]
    fn accounting_counts_cycles() {
        let mut m = machine();
        let _ = m.run(5);
        let c = Console::new(&m);
        let acc = c.accounting();
        assert!(acc.contains("0"), "{acc}");
    }

    #[test]
    fn hold_breakdown_lists_every_cause() {
        let mut m = machine();
        let _ = m.run(5);
        let c = Console::new(&m);
        let hb = c.hold_breakdown();
        assert!(hb.contains("mem-data"), "{hb}");
        assert!(hb.contains("ifu-dispatch"), "{hb}");
        assert!(hb.starts_with("task"), "{hb}");
    }

    #[test]
    fn trace_tail_reports_off_then_events() {
        let mut m = machine();
        let c = Console::new(&m);
        assert!(c.trace_tail(4).contains("off"));
        m.trace_enable(16);
        let _ = m.run(3);
        let c = Console::new(&m);
        let tail = c.trace_tail(2);
        assert!(tail.contains("task0"), "{tail}");
        assert!(tail.lines().count() <= 2, "{tail}");
    }

    #[test]
    fn report_renders_the_tables() {
        let mut m = machine();
        let _ = m.run(5);
        let c = Console::new(&m);
        let r = c.report();
        assert!(r.contains("task utilization"), "{r}");
        assert!(r.contains("Mbit/s"), "{r}");
    }
}
