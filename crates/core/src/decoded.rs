//! Predecoded microinstructions.
//!
//! The hardware decodes MIR fields combinationally every cycle (§6.3); the
//! simulator decodes each microstore word once, when it is loaded, into
//! this flat struct.

use dorado_asm::{ASel, AluOp, AsmError, BSel, ControlOp, FfOp, LoadControl, Microword};
use dorado_base::Word;

/// One microinstruction, decoded for execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodedInst {
    /// Low 4 bits of the RM address / stack-pointer delta.
    pub raddr: u8,
    /// A-bus source and memory-reference start.
    pub asel: ASel,
    /// B-bus source.
    pub bsel: BSel,
    /// ALUFM index.
    pub aluop: AluOp,
    /// Result loading.
    pub load: LoadControl,
    /// Block / stack-op bit.
    pub block: bool,
    /// Raw FF byte (constant byte or page number when not an op).
    pub ff_raw: u8,
    /// The FF function, when the FF byte is one (i.e. BSelect is not a
    /// constant and NextControl is not a long transfer).
    pub ff_op: Option<FfOp>,
    /// Sequencing.
    pub control: ControlOp,
    /// The B-bus constant, pre-assembled from BSelect and the FF byte when
    /// BSelect names one (the hardware merges them combinationally, §5.4;
    /// resolving at decode time keeps it off the per-cycle path).
    pub bconst: Word,
}

impl DecodedInst {
    /// Decodes a packed microword.
    ///
    /// # Errors
    ///
    /// Returns an [`AsmError`] for reserved field encodings.
    pub fn decode(word: Microword) -> Result<Self, AsmError> {
        let control = word.control()?;
        let bsel = word.bsel()?;
        let ff_is_function = !bsel.is_constant() && !control.uses_ff_page();
        let ff_op = if ff_is_function {
            Some(FfOp::decode(word.ff())?)
        } else {
            None
        };
        if ff_op == Some(FfOp::IfuLoadPc) && control == ControlOp::IfuJump {
            // The jump clears the IFU's buffer; a same-cycle dispatch
            // would read a stream that no longer exists.  Microcode must
            // redirect first and dispatch in a later instruction.
            return Err(AsmError::FfConflict {
                first: "IfuLoadPc redirects the IFU".into(),
                second: "IFUJump dispatches in the same cycle".into(),
            });
        }
        Ok(DecodedInst {
            raddr: word.raddr(),
            asel: word.asel()?,
            bsel,
            aluop: word.aluop(),
            load: word.load_control()?,
            block: word.block(),
            ff_raw: word.ff(),
            ff_op,
            control,
            bconst: dorado_asm::const_value(bsel, word.ff()).unwrap_or(0),
        })
    }

    /// The stack-pointer delta encoded in RAddress (−8..=7).
    pub fn stack_delta(&self) -> i8 {
        ((self.raddr as i8) << 4) >> 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dorado_asm::Cond;

    #[test]
    fn decode_plain_instruction() {
        let w = Microword::default()
            .with_raddr(7)
            .with_aluop(AluOp::SUB)
            .with_bsel(BSel::T)
            .with_asel(ASel::FetchR)
            .with_load_control(LoadControl::T)
            .with_ff(FfOp::DecCount.encode())
            .with_control(ControlOp::Goto { offset: 3 });
        let d = DecodedInst::decode(w).unwrap();
        assert_eq!(d.raddr, 7);
        assert_eq!(d.ff_op, Some(FfOp::DecCount));
        assert_eq!(d.control, ControlOp::Goto { offset: 3 });
    }

    #[test]
    fn constant_bsel_suppresses_ff_decode() {
        // FF byte 0xff would be a reserved function encoding, but as a
        // constant byte it must pass.
        let w = Microword::default().with_bsel(BSel::ConstLo0).with_ff(0xff);
        let d = DecodedInst::decode(w).unwrap();
        assert_eq!(d.ff_op, None);
        assert_eq!(d.ff_raw, 0xff);
    }

    #[test]
    fn long_goto_suppresses_ff_decode() {
        let w = Microword::default()
            .with_control(ControlOp::GotoLong { offset: 1 })
            .with_ff(0xff);
        let d = DecodedInst::decode(w).unwrap();
        assert_eq!(d.ff_op, None);
    }

    #[test]
    fn reserved_ff_function_rejected() {
        let w = Microword::default().with_ff(0xff); // bsel Rm: FF is a function
        assert!(DecodedInst::decode(w).is_err());
    }

    #[test]
    fn stack_delta_sign() {
        let w = Microword::default().with_raddr(0xe);
        let d = DecodedInst::decode(w).unwrap();
        assert_eq!(d.stack_delta(), -2);
    }

    #[test]
    fn branch_decodes() {
        let w = Microword::default().with_control(ControlOp::CondGoto {
            cond: Cond::CntZero,
            pair: 4,
        });
        let d = DecodedInst::decode(w).unwrap();
        assert_eq!(
            d.control,
            ControlOp::CondGoto {
                cond: Cond::CntZero,
                pair: 4
            }
        );
    }
}
