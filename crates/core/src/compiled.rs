//! Compiled simulation: basic-block superinstructions over placed
//! microcode.
//!
//! The interpreter pays for generality on every microcycle — arbitration,
//! NEXT selection, READY bookkeeping, device clocks — even though the
//! emulator task runs long stretches where none of it can matter: no
//! wakeup can rise before the I/O event horizon, READY is empty, and the
//! highest requester is task 0 itself.  Following the compiled-simulation
//! line of CVC and Reshadi & Dutt, this module pre-translates the placed
//! program once: the [`Cfg`] partitions the used microstore words into
//! maximal single-entry chains of statically-known control transfers
//! (`GOTO`/`CALL`, including the placer's cross-page relays), and each
//! word becomes a [`Step`] carrying its decode plus the facts the fused
//! runner needs hoisted out of the cycle loop — can it stall, does it
//! touch the IFU, does it force a deoptimization.
//!
//! The runner itself lives in `machine.rs` ([`crate::Dorado`] `fused_frame`);
//! this module is pure data.  Translation is cheap (one pass over the
//! store), so the machine rebuilds the table lazily whenever the control
//! store is written — stale superinstructions can never execute.

use dorado_asm::cfg::Cfg;
use dorado_asm::{BSel, ControlOp, FfOp, PlacedProgram};
use dorado_base::{MicroAddr, MICROSTORE_SIZE};

use crate::decoded::DecodedInst;

/// Sentinel in [`CompiledProgram::index`]: no step at this address (the
/// word is unused by the placement), so execution there stays interpreted.
pub(crate) const NO_STEP: u32 = u32::MAX;

/// How the fused runner executes a step: through the general interpreter
/// body, or through a specialized kernel whose shape was proven at
/// translation time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Kernel {
    /// The full `execute` body — anything the specializations don't cover.
    General,
    /// Register-to-register ALU with a statically known successor: A from
    /// RM or T, B from RM/T/Q/constant, no FF side effect, no memory or
    /// IFU contact, no stack op, no condition.  The runner's straight-line
    /// body skips the FF, memory-start, and NEXTPC dispatches wholesale.
    Alu {
        /// The precomputed successor address.
        next: MicroAddr,
    },
}

/// One pre-translated microinstruction inside a basic block.
#[derive(Debug, Clone)]
pub(crate) struct Step {
    /// The word's microstore address.
    pub addr: MicroAddr,
    /// The specialized execution kernel for this step.
    pub kernel: Kernel,
    /// The decoded instruction, copied out of the machine's decode RAM at
    /// translation time (and invalidated with it).
    pub inst: DecodedInst,
    /// Whether any §5.7 hold condition applies to this instruction; steps
    /// without one skip the hold check entirely.
    pub may_hold: bool,
    /// Whether executing this instruction reads or mutates prefetcher
    /// state (IFU operands, dispatch, `IfuLoadPc`) — the fence for the
    /// fused runner's batched quiescent IFU ticks.
    pub touches_ifu: bool,
    /// Whether this instruction must run under the full interpreter:
    /// slow/fast I/O, TPC access, task wakeups, halt.  The fused runner
    /// exits *before* executing such a step.
    pub deopt: bool,
    /// Last step of its block: the successor is computed at run time and
    /// the runner re-enters through [`CompiledProgram::step_at`].
    pub last: bool,
}

/// The translated program: a dense address→step map, the flat step table
/// (blocks are contiguous runs ending at a `last` step), and the block
/// length census for the E20 experiment.
#[derive(Debug, Clone)]
pub(crate) struct CompiledProgram {
    index: Vec<u32>,
    pub steps: Vec<Step>,
    block_lens: Vec<u32>,
}

impl CompiledProgram {
    /// The step index for the word at `addr`, or `None` when the address
    /// is outside the placed program.
    #[inline]
    pub fn step_at(&self, addr: MicroAddr) -> Option<usize> {
        let i = self.index[addr.raw() as usize];
        (i != NO_STEP).then_some(i as usize)
    }

    /// Basic-block lengths in instructions, one entry per block.
    pub fn block_lens(&self) -> &[u32] {
        &self.block_lens
    }
}

/// Whether the instruction forces a deoptimization to the interpreter.
///
/// Everything here either talks to the device world (whose clock the
/// fused runner batches), or touches scheduler state the runner holds
/// stale on purpose (TPC, READY): `WakeTask` makes READY non-empty,
/// `ReadTpc`/`WriteTpc` see task 0's TPC only at block boundaries, and
/// `Halt` must unwind the run loop.
fn deoptimizes(inst: &DecodedInst) -> bool {
    matches!(
        inst.ff_op,
        Some(
            FfOp::IoInput
                | FfOp::IoOutput
                | FfOp::IoNotify
                | FfOp::IoFetch16
                | FfOp::IoStore16
                | FfOp::WriteTpc
                | FfOp::ReadTpc
                | FfOp::WakeTask(_)
                | FfOp::Halt
        )
    )
}

/// Whether any §5.7 hold condition can apply to the instruction (the
/// fused runner's license to skip the hold check).
fn may_hold(inst: &DecodedInst) -> bool {
    inst.bsel == BSel::MemData
        || inst.ff_op == Some(FfOp::ShOutM)
        || inst.asel.uses_ifudata()
        || inst.asel.starts_memory_ref()
        || matches!(inst.ff_op, Some(FfOp::IoFetch16 | FfOp::IoStore16))
        || inst.control == ControlOp::IfuJump
}

/// Whether executing the instruction reads or mutates IFU state.
/// (`IfuReadPc` reads a register quiescent ticks never move, so it does
/// not fence the batch.)
fn touches_ifu(inst: &DecodedInst) -> bool {
    inst.asel.uses_ifudata()
        || inst.control == ControlOp::IfuJump
        || inst.ff_op == Some(FfOp::IfuLoadPc)
}

/// Classifies a step for the fused runner.  The `Alu` kernel must imply
/// *everything* the general body could otherwise do is provably absent:
/// no hold source, no FF operation, no memory start, no IFU contact, no
/// stack discipline, and a successor known at translation time.
fn kernel_of(at: MicroAddr, inst: &DecodedInst) -> Kernel {
    let simple_a = !inst.asel.uses_ifudata() && !inst.asel.starts_memory_ref();
    let simple_b = inst.bsel != BSel::MemData;
    let no_ff = matches!(inst.ff_op, None | Some(FfOp::Nop));
    let static_next = matches!(
        inst.control,
        ControlOp::Goto { .. } | ControlOp::GotoLong { .. }
    );
    if simple_a && simple_b && no_ff && static_next && !inst.block {
        if let Some(next) = inst.control.static_next(at, inst.ff_raw) {
            return Kernel::Alu { next };
        }
    }
    Kernel::General
}

/// The *executed* successor when it is statically unique: in-page and
/// long `GOTO`s and `CALL`s (a call's dynamic next is its callee; the
/// return continuation is a separate block).  Everything else —
/// conditionals, returns, dispatches — resolves at run time.
fn chain_next(at: MicroAddr, inst: &DecodedInst) -> Option<MicroAddr> {
    match inst.control {
        ControlOp::Goto { .. }
        | ControlOp::GotoLong { .. }
        | ControlOp::Call { .. }
        | ControlOp::CallLong { .. } => inst.control.static_next(at, inst.ff_raw),
        _ => None,
    }
}

/// Translates a placed program into basic-block superinstructions.
///
/// `decoded` is the machine's decode RAM (one entry per store word,
/// already patched by any control-store writes); the CFG supplies the
/// used-word set.  Block discovery: a word starts a block unless exactly
/// one used word chains into it; chains then extend through every
/// unique-static-successor transfer until a dynamic terminator, a block
/// leader, or an already-translated word (which closes chain cycles such
/// as `spin: goto spin`).
pub(crate) fn compile(placed: &PlacedProgram, decoded: &[DecodedInst]) -> CompiledProgram {
    let cfg = Cfg::build(placed);
    let mut chain_preds = vec![0u32; MICROSTORE_SIZE];
    for node in cfg.iter() {
        let inst = &decoded[node.addr.raw() as usize];
        if let Some(n) = chain_next(node.addr, inst) {
            if cfg.node(n).is_some() {
                chain_preds[n.raw() as usize] += 1;
            }
        }
    }
    let mut index = vec![NO_STEP; MICROSTORE_SIZE];
    let mut steps = Vec::new();
    let mut block_lens = Vec::new();
    // Pass 1: blocks rooted at leaders.  Pass 2: whatever remains lives on
    // chain cycles with no leader (every member has exactly one chain
    // predecessor); root a block arbitrarily at the first unvisited word.
    let leaders = cfg
        .iter()
        .map(|n| n.addr)
        .filter(|a| chain_preds[a.raw() as usize] != 1);
    let leftovers: Vec<MicroAddr> = cfg.iter().map(|n| n.addr).collect();
    for start in leaders.collect::<Vec<_>>().into_iter().chain(leftovers) {
        if index[start.raw() as usize] != NO_STEP {
            continue;
        }
        let begin = steps.len();
        let mut at = start;
        loop {
            index[at.raw() as usize] = steps.len() as u32;
            let inst = decoded[at.raw() as usize];
            let next = chain_next(at, &inst);
            steps.push(Step {
                addr: at,
                kernel: kernel_of(at, &inst),
                may_hold: may_hold(&inst),
                touches_ifu: touches_ifu(&inst),
                deopt: deoptimizes(&inst),
                last: false,
                inst,
            });
            match next {
                Some(n)
                    if cfg.node(n).is_some()
                        && index[n.raw() as usize] == NO_STEP
                        && chain_preds[n.raw() as usize] == 1 =>
                {
                    at = n;
                }
                _ => break,
            }
        }
        steps.last_mut().expect("block has a step").last = true;
        block_lens.push((steps.len() - begin) as u32);
    }
    CompiledProgram {
        index,
        steps,
        block_lens,
    }
}
