//! The complete Dorado: processor, memory, IFU, and devices, stepped one
//! microcycle at a time.
//!
//! Each [`Dorado::step`] performs, in hardware order:
//!
//! 1. device clocks tick; the arbitration pipeline latches WAKEUP∪READY,
//!    priority-encodes it, and reads the winner's TPC (Figure 3 stage 1);
//! 2. the current microinstruction either executes or is **held** (§5.7) —
//!    a held instruction changes no state and becomes a jump-to-self;
//! 3. the NEXT task is chosen ("the larger of BESTNEXTTASK and THISTASK",
//!    unconditionally BESTNEXTTASK on Block), broadcast to the devices, and
//!    the next instruction's address selected — the running task's computed
//!    NEXTPC, or the incoming task's TPC on a switch;
//! 4. the IFU prefetcher and the memory pipeline advance.
//!
//! The two-cycle wakeup-to-run latency and the two-instruction minimum
//! grain of §6.2.1 emerge from the stage-1 latch being one cycle ahead of
//! the NEXT decision, exactly as in the hardware.

use dorado_asm::{
    alu_eval, shifter_output, AluFunction, AsmError, BSel, Cond, ControlOp, FfOp, MaskMode,
    Microword, PlacedProgram, ShiftCtl,
};
use dorado_base::snap::{Reader, SnapError, Snapshot, Writer};
use dorado_base::{
    ClockConfig, MicroAddr, Report, Stats, TaskId, Word, MICROSTORE_SIZE, NUM_TASKS, PAGE_SIZE,
};
pub use dorado_base::HoldCause;
use dorado_ifu::Ifu;
use dorado_io::{Device, IoSystem};
use dorado_mem::{MemConfig, MemorySystem};

use crate::compiled::{self, CompiledProgram};
use crate::control::{ControlSection, Stage1, TaskingMode};
use crate::datapath::{CondFlags, DataSection};
use crate::decoded::DecodedInst;
use crate::trace::{CacheOutcome, TraceEvent, Tracer};

/// How [`Dorado::run`] and [`Dorado::run_quantum`] execute microcode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecMode {
    /// Per-cycle interpretation: fetch, decode lookup, arbitration, hold
    /// check, execute — every cycle.  The reference semantics.
    #[default]
    Interpreted,
    /// Compiled simulation: emulator-task stretches run as fused
    /// basic-block superinstructions with arbitration, device clocks, and
    /// scheduler bookkeeping hoisted to block entry/exit (see
    /// [`crate::compiled`]).  Architecturally invisible: every observable
    /// — statistics, traces, snapshot images — is bit-identical to
    /// [`ExecMode::Interpreted`].
    Compiled,
}

/// What one [`Dorado::step`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StepEvent {
    /// Cycle number of the executed (or held) instruction.
    pub cycle: u64,
    /// The task that owned the cycle.
    pub task: TaskId,
    /// The instruction's address.
    pub addr: MicroAddr,
    /// The hold cause, if the instruction was held.
    pub held: Option<HoldCause>,
    /// The task selected for the following cycle.
    pub next_task: TaskId,
    /// Whether the machine halted this cycle.
    pub halted: bool,
}

/// The result of [`Dorado::run`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// An `FF Halt` executed.
    Halted {
        /// Total cycles elapsed at the halt.
        cycles: u64,
    },
    /// The cycle budget was exhausted first.
    CycleLimit {
        /// Cycles executed.
        cycles: u64,
    },
    /// The same instruction was held for an implausibly long time — almost
    /// certainly a microcode bug (e.g. consuming more IFU operands than the
    /// opcode has).
    Wedged {
        /// The stuck instruction.
        at: MicroAddr,
        /// The stuck task.
        task: TaskId,
    },
    /// Execution reached a console breakpoint (§6.2: the role the console
    /// microcomputer's debugger played).
    Breakpoint {
        /// The breakpointed address (not yet executed).
        at: MicroAddr,
        /// The task about to execute it.
        task: TaskId,
    },
}

impl RunOutcome {
    /// Whether the machine reached a halt.
    pub fn halted(&self) -> bool {
        matches!(self, RunOutcome::Halted { .. })
    }

    /// Cycles executed, if the run ended normally.
    pub fn cycles(&self) -> Option<u64> {
        match self {
            RunOutcome::Halted { cycles } | RunOutcome::CycleLimit { cycles } => Some(*cycles),
            RunOutcome::Wedged { .. } | RunOutcome::Breakpoint { .. } => None,
        }
    }
}

/// Errors from [`DoradoBuilder::build`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum BuildError {
    /// No microcode image was supplied.
    NoMicrocode,
    /// A microstore word failed to decode.
    Decode(MicroAddr, AsmError),
    /// A task entry label is not defined in the placed program.
    UnknownLabel(String),
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildError::NoMicrocode => write!(f, "no microcode image supplied"),
            BuildError::Decode(at, e) => write!(f, "bad microword at {at}: {e}"),
            BuildError::UnknownLabel(l) => write!(f, "unknown task entry label `{l}`"),
        }
    }
}

impl std::error::Error for BuildError {}

/// A deferred register-file write (the Model-0 no-bypass pipeline model).
#[derive(Debug, Clone, Copy)]
enum WbWrite {
    T(TaskId, Word),
    Rm(usize, Word),
    Stack(usize, Word),
}

/// The deferred-writeback queue.  An instruction retires at most two
/// register-file writes — T plus one of RM/stack — so two inline slots
/// replace a heap-allocated `Vec` on the per-instruction hot path.
#[derive(Debug, Clone, Copy, Default)]
struct WbQueue {
    slots: [Option<WbWrite>; 2],
}

impl WbQueue {
    fn push(&mut self, write: WbWrite) {
        if self.slots[0].is_none() {
            self.slots[0] = Some(write);
        } else {
            debug_assert!(self.slots[1].is_none(), "at most two writes per instruction");
            self.slots[1] = Some(write);
        }
    }

    fn take(&mut self) -> [Option<WbWrite>; 2] {
        std::mem::take(&mut self.slots)
    }

    fn iter(&self) -> impl Iterator<Item = WbWrite> + '_ {
        self.slots.iter().flatten().copied()
    }

    fn len(&self) -> usize {
        self.slots.iter().flatten().count()
    }
}

/// Builder for a [`Dorado`] machine.
///
/// # Examples
///
/// See the [crate-level example](crate).
#[derive(Debug, Default)]
pub struct DoradoBuilder {
    microcode: Option<PlacedProgram>,
    mem_cfg: Option<MemConfig>,
    clock: Option<ClockConfig>,
    bypass: Option<bool>,
    tasking: TaskingMode,
    devices: Vec<(Box<dyn Device>, Word, Word)>,
    wires: Vec<(TaskId, Word)>,
    entries: Vec<(TaskId, String)>,
    wedge_limit: Option<u64>,
    exec_mode: ExecMode,
}

impl DoradoBuilder {
    /// Starts a builder with all defaults (production machine).
    pub fn new() -> Self {
        DoradoBuilder::default()
    }

    /// Supplies the placed microcode image (required).
    #[must_use]
    pub fn microcode(mut self, placed: PlacedProgram) -> Self {
        self.microcode = Some(placed);
        self
    }

    /// Overrides the memory configuration.
    #[must_use]
    pub fn memory(mut self, cfg: MemConfig) -> Self {
        self.mem_cfg = Some(cfg);
        self
    }

    /// Overrides the clock (stitchweld vs multiwire, §2).
    #[must_use]
    pub fn clock(mut self, clock: ClockConfig) -> Self {
        self.clock = Some(clock);
        self
    }

    /// Enables or disables the §5.6 bypassing hardware (disable for the
    /// Model-0 ablation).
    #[must_use]
    pub fn bypass(mut self, on: bool) -> Self {
        self.bypass = Some(on);
        self
    }

    /// Selects the tasking mode (§6.2.1 grain ablation).
    #[must_use]
    pub fn tasking(mut self, mode: TaskingMode) -> Self {
        self.tasking = mode;
        self
    }

    /// Attaches a device at `base..base+regs` on the IOADDRESS bus.
    #[must_use]
    pub fn device(mut self, dev: Box<dyn Device>, base: Word, regs: Word) -> Self {
        self.devices.push((dev, base, regs));
        self
    }

    /// Presets a task's IOADDRESS register (the wiring between a controller
    /// and its task; microcode may overwrite it with `LoadIoAddress`).
    #[must_use]
    pub fn wire_ioaddress(mut self, task: TaskId, ioaddr: Word) -> Self {
        self.wires.push((task, ioaddr));
        self
    }

    /// Sets a task's initial TPC to the placed address of `label`.
    #[must_use]
    pub fn task_entry(mut self, task: TaskId, label: impl Into<String>) -> Self {
        self.entries.push((task, label.into()));
        self
    }

    /// Overrides the wedge detector threshold (consecutive held cycles of
    /// one instruction before [`RunOutcome::Wedged`]).
    #[must_use]
    pub fn wedge_limit(mut self, cycles: u64) -> Self {
        self.wedge_limit = Some(cycles);
        self
    }

    /// Selects the execution mode (interpreted vs compiled simulation).
    #[must_use]
    pub fn exec_mode(mut self, mode: ExecMode) -> Self {
        self.exec_mode = mode;
        self
    }

    /// Builds the machine.
    ///
    /// # Errors
    ///
    /// Returns a [`BuildError`] for a missing image, undecodable microwords,
    /// or unknown entry labels.
    pub fn build(self) -> Result<Dorado, BuildError> {
        let placed = self.microcode.ok_or(BuildError::NoMicrocode)?;
        let mut store = Vec::with_capacity(MICROSTORE_SIZE);
        let mut decoded = Vec::with_capacity(MICROSTORE_SIZE);
        for (i, &w) in placed.words().iter().enumerate() {
            let d = DecodedInst::decode(w)
                .map_err(|e| BuildError::Decode(MicroAddr::new(i as u16), e))?;
            store.push(w);
            decoded.push(d);
        }
        let labels: std::collections::HashMap<String, MicroAddr> = placed
            .labels()
            .map(|(k, v)| (k.to_string(), v))
            .collect();

        let mut io = IoSystem::new();
        for (dev, base, regs) in self.devices {
            io.attach(dev, base, regs);
        }
        let mut machine = Dorado {
            dp: DataSection::new(),
            control: ControlSection::new(),
            mem: MemorySystem::new(self.mem_cfg.unwrap_or_default()),
            ifu: Ifu::new(),
            io,
            store,
            decoded,
            placed,
            exec_mode: self.exec_mode,
            compiled: None,
            labels,
            bypass: self.bypass.unwrap_or(true),
            pending_wb: WbQueue::default(),
            tasking: self.tasking,
            clock: self.clock.unwrap_or_default(),
            stats: Stats::new(),
            slow_io_words: 0,
            halted: false,
            tracer: None,
            consecutive_holds: 0,
            wedge_limit: self.wedge_limit.unwrap_or(100_000),
            breakpoints: std::collections::HashSet::new(),
            fused_frames: 0,
            fused_cycles: 0,
        };
        for (task, ioaddr) in self.wires {
            machine.dp.ioaddress[task.index()] = ioaddr;
        }
        for (task, label) in self.entries {
            let addr = machine
                .labels
                .get(&label)
                .copied()
                .ok_or(BuildError::UnknownLabel(label))?;
            machine.control.tpc[task.index()] = addr;
            if task == TaskId::EMULATOR {
                machine.control.this_pc = addr;
            }
        }
        Ok(machine)
    }
}

/// A complete Dorado machine.
pub struct Dorado {
    dp: DataSection,
    control: ControlSection,
    mem: MemorySystem,
    ifu: Ifu,
    io: IoSystem,
    store: Vec<Microword>,
    decoded: Vec<DecodedInst>,
    /// The placed image, retained so the compiled-mode translator can
    /// rebuild its block table (with patched words) after any
    /// control-store write.
    placed: PlacedProgram,
    exec_mode: ExecMode,
    /// Lazily built superinstruction table; `None` = invalidated (never
    /// yet built, control store written, or snapshot restored).
    compiled: Option<Box<CompiledProgram>>,
    labels: std::collections::HashMap<String, MicroAddr>,
    bypass: bool,
    pending_wb: WbQueue,
    tasking: TaskingMode,
    clock: ClockConfig,
    stats: Stats,
    slow_io_words: u64,
    halted: bool,
    tracer: Option<Tracer>,
    consecutive_holds: u64,
    wedge_limit: u64,
    breakpoints: std::collections::HashSet<MicroAddr>,
    /// Fused frames entered and cycles retired inside them (compiled mode
    /// only).  Host-side coverage telemetry for E20 — deliberately not
    /// part of [`Stats`] or the snapshot image, which must stay
    /// mode-independent.
    fused_frames: u64,
    fused_cycles: u64,
}

impl std::fmt::Debug for Dorado {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Dorado")
            .field("task", &self.control.this_task)
            .field("pc", &self.control.this_pc)
            .field("cycles", &self.stats.cycles)
            .field("halted", &self.halted)
            .finish_non_exhaustive()
    }
}

impl Dorado {
    /// Executes one microcycle.
    pub fn step(&mut self) -> StepEvent {
        // Monomorphize on tracing so the untraced hot path carries no
        // probe reads, no `Option` checks, and no record call at all.
        if self.tracer.is_some() {
            self.step_impl::<true>()
        } else {
            self.step_impl::<false>()
        }
    }

    fn step_impl<const TRACED: bool>(&mut self) -> StepEvent {
        let task = self.control.this_task;
        let at = self.control.this_pc;
        let inst = self.decoded[at.raw() as usize];

        // Phase 1: device clocks and the arbitration latch (Figure 3,
        // stage 1).  The wakeups are sampled *before* this cycle's NEXT
        // broadcast, which is what makes the minimum grain two
        // instructions (§6.2.1).
        self.io.tick();
        let mut wake_requests = self.io.wakeups();
        wake_requests.insert(TaskId::EMULATOR); // task 0 always requests (§5.1)
        let requests = wake_requests.union(self.control.ready);
        let stage1 = self.control.stage1;
        self.control.arbitrate(requests);

        // Phase 2: hold check, then execution.  The cache-counter probe
        // exists only in the traced instantiation, so the tracing-off path
        // stays free.  (Only the processor and fast-I/O ports: the IFU
        // port belongs to the prefetcher, which runs in phase 4.)
        let probe = if TRACED {
            let c = &self.mem.counters().cache;
            (
                c.processor.refs + c.fast_io.refs,
                c.processor.hits + c.fast_io.hits,
            )
        } else {
            (0, 0)
        };
        let held = self.check_hold(&inst, task);
        let this_task_next_pc;
        let mut block_effective = false;
        let mut halted_now = false;
        if let Some(cause) = held {
            // "No operation, jump to self" — clocks keep running (§5.7),
            // so the previous instruction's writeback still lands.
            self.drain_wb();
            this_task_next_pc = at;
            self.stats.held[task.index()] += 1;
            self.stats.held_by[task.index()][cause.index()] += 1;
            self.consecutive_holds += 1;
        } else {
            let (next_pc, halt) = self.execute(&inst, task, at);
            this_task_next_pc = next_pc;
            block_effective = inst.block && task != TaskId::EMULATOR;
            self.stats.executed[task.index()] += 1;
            self.consecutive_holds = 0;
            if halt {
                self.halted = true;
                halted_now = true;
            }
        }

        // Phase 3: the NEXT decision uses the *previous* cycle's stage-1
        // latch (the second pipe stage of Figure 3).
        let next = if block_effective || stage1.task > task {
            stage1.task
        } else {
            task
        };
        self.control.tpc[task.index()] = this_task_next_pc;
        if next != task {
            self.stats.task_switches += 1;
            if block_effective {
                self.control.ready.remove(task);
            } else {
                // Preempted: the hardware remembers it in READY (§6.2.1).
                self.control.ready.insert(task);
            }
        } else if block_effective {
            self.control.ready.remove(task);
        }
        // A READY bit is *consumed* by the dispatch it wins: clear it and
        // re-arbitrate this cycle's latch (still using the wakeups sampled
        // at the cycle's start, so device wakeups keep their two-cycle
        // pipeline behaviour).  Without this, a task that resumes from
        // preemption and blocks immediately would get one ghost
        // re-dispatch from the stale arbitration pipe.
        if self.control.ready.contains(next) {
            self.control.ready.remove(next);
            self.control
                .arbitrate(wake_requests.union(self.control.ready));
        }
        if matches!(self.tasking, TaskingMode::OnDemand) {
            self.io.observe_next(next);
        }
        self.control.this_task = next;
        self.control.this_pc = if next != task {
            self.control.tpc[next.index()]
        } else {
            this_task_next_pc
        };

        // Phase 4: the rest of the machine advances.
        self.ifu.tick(&mut self.mem);
        self.mem.tick();
        let cycle = self.stats.cycles;
        self.stats.cycles += 1;

        let event = StepEvent {
            cycle,
            task,
            addr: at,
            held,
            next_task: next,
            halted: halted_now,
        };
        if let Some(tracer) = self.tracer.as_mut().filter(|_| TRACED) {
            let (refs_before, hits_before) = probe;
            let c = &self.mem.counters().cache;
            let (refs_after, hits_after) = (
                c.processor.refs + c.fast_io.refs,
                c.processor.hits + c.fast_io.hits,
            );
            let cache = if refs_after == refs_before {
                CacheOutcome::None
            } else if hits_after > hits_before {
                CacheOutcome::Hit
            } else {
                CacheOutcome::Miss
            };
            let bypass = held.is_none()
                && self.bypass
                && (inst.load.loads_t() || inst.load.loads_rm());
            tracer.record(TraceEvent {
                cycle,
                task,
                addr: at,
                held,
                next_task: next,
                cache,
                bypass,
            });
        }
        event
    }

    /// Runs until halt, a breakpoint, the cycle budget, or a wedge.
    pub fn run(&mut self, max_cycles: u64) -> RunOutcome {
        if self.exec_mode == ExecMode::Compiled {
            return self.run_compiled(max_cycles);
        }
        let start = self.stats.cycles;
        if self.breakpoints.is_empty() {
            // Hot path: no per-cycle breakpoint probe, and the wedge test
            // runs only where it can newly fire — `consecutive_holds`
            // grows on held cycles alone, so executed cycles need just the
            // halt and budget checks.
            while !self.halted {
                if self.stats.cycles - start >= max_cycles {
                    return RunOutcome::CycleLimit {
                        cycles: self.stats.cycles - start,
                    };
                }
                if self.consecutive_holds > self.wedge_limit {
                    return RunOutcome::Wedged {
                        at: self.control.this_pc,
                        task: self.control.this_task,
                    };
                }
                loop {
                    let ev = self.step();
                    if ev.held.is_some()
                        || self.halted
                        || self.stats.cycles - start >= max_cycles
                    {
                        break;
                    }
                }
            }
            return RunOutcome::Halted {
                cycles: self.stats.cycles - start,
            };
        }
        while !self.halted {
            if self.stats.cycles - start >= max_cycles {
                return RunOutcome::CycleLimit {
                    cycles: self.stats.cycles - start,
                };
            }
            if self.consecutive_holds > self.wedge_limit {
                return RunOutcome::Wedged {
                    at: self.control.this_pc,
                    task: self.control.this_task,
                };
            }
            if self.stats.cycles > start && self.breakpoints.contains(&self.control.this_pc)
            {
                return RunOutcome::Breakpoint {
                    at: self.control.this_pc,
                    task: self.control.this_task,
                };
            }
            self.step();
        }
        RunOutcome::Halted {
            cycles: self.stats.cycles - start,
        }
    }

    /// Runs *exactly* `cycles` microcycles, stopping early only on halt;
    /// returns the cycles actually stepped.
    ///
    /// Unlike [`Dorado::run`], breakpoints and wedge detection do not cut
    /// the quantum short: a cluster executor needs every machine to cover
    /// the same simulated window so that epoch boundaries line up, and a
    /// machine spinning in an idle loop (all wakeups drained) must keep
    /// consuming cycles rather than trip the wedge detector.
    pub fn run_quantum(&mut self, cycles: u64) -> u64 {
        let start = self.stats.cycles;
        if self.exec_mode == ExecMode::Compiled {
            self.ensure_compiled();
            while !self.halted && self.stats.cycles - start < cycles {
                // Budget the frame with the exact remaining quantum: the
                // returned count and every statistic must match the
                // interpreter even when the quantum boundary lands
                // mid-block.  Breakpoints and the wedge detector do not
                // cut quanta short (see above), so the frame ignores both
                // — a wedge-limit frame exit just re-enters here.
                let remaining = cycles - (self.stats.cycles - start);
                if self.frame_ready() && self.run_fused_frame(remaining, false, false) > 0 {
                    continue;
                }
                self.step();
            }
            return self.stats.cycles - start;
        }
        while !self.halted && self.stats.cycles - start < cycles {
            self.step();
        }
        self.stats.cycles - start
    }

    /// [`Dorado::run`] in compiled mode: alternate fused basic-block
    /// frames (while the emulator task owns the machine and the I/O event
    /// horizon is open) with interpreted single steps everywhere else —
    /// task switches, deoptimizing instructions, unplaced addresses.  The
    /// outer loop's checks are identical to the interpreted path, so
    /// outcomes, cycle counts, and statistics agree exactly.
    fn run_compiled(&mut self, max_cycles: u64) -> RunOutcome {
        let start = self.stats.cycles;
        self.ensure_compiled();
        while !self.halted {
            let done = self.stats.cycles - start;
            if done >= max_cycles {
                return RunOutcome::CycleLimit { cycles: done };
            }
            if self.consecutive_holds > self.wedge_limit {
                return RunOutcome::Wedged {
                    at: self.control.this_pc,
                    task: self.control.this_task,
                };
            }
            if !self.breakpoints.is_empty()
                && self.stats.cycles > start
                && self.breakpoints.contains(&self.control.this_pc)
            {
                return RunOutcome::Breakpoint {
                    at: self.control.this_pc,
                    task: self.control.this_task,
                };
            }
            if self.frame_ready()
                && self.run_fused_frame(max_cycles - done, true, self.stats.cycles == start) > 0
            {
                continue;
            }
            self.step();
        }
        RunOutcome::Halted {
            cycles: self.stats.cycles - start,
        }
    }

    /// Cheap preconditions for entering a fused frame: the emulator task
    /// holds the machine and no preempted task is parked in READY.  (The
    /// frame itself re-checks the I/O-side conditions and returns 0 when
    /// any fails.)
    #[inline]
    fn frame_ready(&self) -> bool {
        self.control.this_task == TaskId::EMULATOR && self.control.ready.is_empty()
    }

    fn run_fused_frame(&mut self, budget: u64, honor_bp: bool, skip_bp_first: bool) -> u64 {
        if self.tracer.is_some() {
            self.fused_frame::<true>(budget, honor_bp, skip_bp_first)
        } else {
            self.fused_frame::<false>(budget, honor_bp, skip_bp_first)
        }
    }

    /// Executes fused basic-block superinstructions until a deoptimization
    /// point, the cycle `budget`, a device wakeup, a breakpoint, or a
    /// wedge-limit overrun; returns the cycles consumed (0 = conditions
    /// not met, caller interprets one step).
    ///
    /// # Why eliding the per-cycle scheduler is exact
    ///
    /// Entry requires: task 0 running, READY empty, no wakeups asserted,
    /// and the NEXT bus already carrying task 0.  The device clock is
    /// hoisted out of the cycle loop in *stable spans*
    /// ([`IoSystem::stable_span`]): stretches over which no wakeup or
    /// attention line can move, so the deferred ticks are settled en bloc
    /// ([`IoSystem::tick_span`]) at span boundaries and frame exits with
    /// bit-identical device state.  At a span boundary the frame drops to
    /// a per-cycle tick and breaks on the first cycle whose tick raises a
    /// wakeup.  Every *other* per-cycle interpreter phase is provably a
    /// no-op until the frame exits:
    ///
    /// * arbitration — requests stay `{0}` while no wakeup is up and READY
    ///   is empty, so `stage1` is `(0, tpc[0])` every cycle; the exit
    ///   fixup stores the final latch value, which is `(0, addr of the
    ///   last processed instruction)` because phase 3 writes `tpc[0]`
    ///   before phase 1 reads it back.  On a wakeup break the latch is
    ///   instead materialized by re-running the arbitration for that
    ///   cycle, whose NEXT decision (made from the *previous* latch, the
    ///   §6.2.1 two-cycle grain) still ran task 0 — so the woken cycle
    ///   itself executes in-frame and the interpreter takes over from the
    ///   next one, switching exactly when the interpreter would have.
    /// * the NEXT decision — `stage1.task == task == 0` and task-0
    ///   `block` means stack op, not wakeup-block, so `next == task`, no
    ///   READY transfer happens, and `observe_next(0)` is edge-filtered
    ///   to a no-op by the entry condition on the NEXT bus.
    /// * `WakeTask`, `WriteTpc`/`ReadTpc`, and `Halt` — the only
    ///   instructions that could invalidate the above from *inside* the
    ///   frame — deoptimize, as does everything that talks to a device
    ///   register file.
    ///
    /// Held cycles stall *inside* the frame (drain, count, tick), exactly
    /// like the interpreter's no-op-jump-to-self, so MEMDATA waits and
    /// IFU refills behave identically.  `Cond::IoAtten` reads the
    /// attention line, which the span contract freezes, so the deferred
    /// tick order is invisible to it.
    fn fused_frame<const TRACED: bool>(
        &mut self,
        budget: u64,
        honor_bp: bool,
        skip_bp_first: bool,
    ) -> u64 {
        let task = TaskId::EMULATOR;
        // The frame elides the per-cycle NEXT broadcast, so the bus must
        // already carry task 0 (always true after one interpreted task-0
        // cycle; only a freshly built machine fails this).  Grain-3 mode
        // never broadcasts, so there is nothing to elide.
        let next_settled = match self.tasking {
            TaskingMode::OnDemand => self.io.next_was(task),
            TaskingMode::NotifyGrain3 => true,
        };
        if !next_settled || !self.io.wakeups().is_empty() || budget == 0 {
            return 0;
        }
        let compiled = self.compiled.take().expect("ensured by caller");
        let watch_bp = honor_bp && !self.breakpoints.is_empty();
        let cycle_base = self.stats.cycles;
        let mut used: u64 = 0;
        let mut executed: u64 = 0;
        let mut woke = false;
        let mut pc = self.control.this_pc;
        let mut last_addr = pc;
        // The prefetcher usually saturates its buffer during straight-line
        // emulator code; quiescent ticks fold into one counter update at
        // the next IFU-touching instruction or frame exit.
        let mut ifu_quiet = self.ifu.is_quiescent(&self.mem);
        let mut ifu_pending: u64 = 0;
        // Device-clock hoisting: `span` cycles may still run before any
        // line can move; `io_pending` cycles have run but not yet been
        // settled into the device clock.  Settled at span boundaries and
        // at every frame exit.
        let mut span: u64 = 0;
        let mut io_pending: u64 = 0;
        // Advances the device clock for one frame cycle: inside a stable
        // span the tick is deferred; at a boundary the pending ticks are
        // settled, a new span is opened, and — if the very next tick may
        // move a line — the clock runs for real.  Returns whether that
        // real tick raised a wakeup (impossible inside a span).
        #[inline]
        fn io_cycle(io: &mut IoSystem, span: &mut u64, pending: &mut u64) -> bool {
            if *span > 0 {
                *span -= 1;
                *pending += 1;
                return false;
            }
            io.tick_span(*pending);
            *pending = 0;
            *span = io.stable_span();
            if *span > 0 {
                *span -= 1;
                *pending = 1;
                false
            } else {
                io.tick();
                !io.wakeups().is_empty()
            }
        }
        'frame: while let Some(mut si) = compiled.step_at(pc) {
            loop {
                let step = &compiled.steps[si];
                debug_assert_eq!(step.addr, pc, "step table / NEXTPC disagreement");
                if watch_bp
                    && (used > 0 || !skip_bp_first)
                    && self.breakpoints.contains(&pc)
                {
                    break 'frame;
                }
                if step.deopt {
                    break 'frame;
                }
                if step.may_hold {
                    // Stall in-frame: each held cycle is the interpreter's
                    // "no operation, jump to self" with the elided phases
                    // still provably no-ops.  (`check_hold` consults only
                    // the memory system and the IFU, so probing it before
                    // this cycle's device tick is equivalent.)
                    while let Some(cause) = self.check_hold(&step.inst, task) {
                        woke = io_cycle(&mut self.io, &mut span, &mut io_pending);
                        self.drain_wb();
                        self.stats.held[task.index()] += 1;
                        self.stats.held_by[task.index()][cause.index()] += 1;
                        self.consecutive_holds += 1;
                        if TRACED {
                            if let Some(tracer) = self.tracer.as_mut() {
                                tracer.record(TraceEvent {
                                    cycle: cycle_base + used,
                                    task,
                                    addr: pc,
                                    held: Some(cause),
                                    next_task: task,
                                    cache: CacheOutcome::None,
                                    bypass: false,
                                });
                            }
                        }
                        used += 1;
                        last_addr = pc;
                        if ifu_quiet {
                            ifu_pending += 1;
                        } else {
                            self.ifu.tick(&mut self.mem);
                            ifu_quiet = self.ifu.is_quiescent(&self.mem);
                        }
                        self.mem.tick();
                        if woke
                            || used >= budget
                            || self.consecutive_holds > self.wedge_limit
                        {
                            break 'frame;
                        }
                    }
                }
                // Phase 1 of the executing cycle: the device clock is
                // deferred inside a stable span, runs for real at a span
                // boundary.  A wakeup the boundary tick raises ends the
                // frame *after* this cycle — the interpreter's NEXT
                // decision for this cycle was made from the previous
                // latch and still runs task 0.
                woke = io_cycle(&mut self.io, &mut span, &mut io_pending);
                if step.touches_ifu && ifu_pending > 0 {
                    // Fold the batched quiescent ticks at the occupancy
                    // they ran under, before this instruction mutates the
                    // buffer.
                    self.ifu.tick_quiescent_n(ifu_pending);
                    ifu_pending = 0;
                }
                let probe = if TRACED {
                    let c = &self.mem.counters().cache;
                    (
                        c.processor.refs + c.fast_io.refs,
                        c.processor.hits + c.fast_io.hits,
                    )
                } else {
                    (0, 0)
                };
                let next_pc = match step.kernel {
                    compiled::Kernel::Alu { next } => {
                        self.exec_alu_step(&step.inst, task);
                        next
                    }
                    compiled::Kernel::General => {
                        let (next_pc, halt) = self.execute(&step.inst, task, pc);
                        debug_assert!(!halt, "Halt deoptimizes before execution");
                        next_pc
                    }
                };
                executed += 1;
                self.consecutive_holds = 0;
                if TRACED {
                    if let Some(tracer) = self.tracer.as_mut() {
                        let c = &self.mem.counters().cache;
                        let (refs_after, hits_after) = (
                            c.processor.refs + c.fast_io.refs,
                            c.processor.hits + c.fast_io.hits,
                        );
                        let cache = if refs_after == probe.0 {
                            CacheOutcome::None
                        } else if hits_after > probe.1 {
                            CacheOutcome::Hit
                        } else {
                            CacheOutcome::Miss
                        };
                        let bypass = self.bypass
                            && (step.inst.load.loads_t() || step.inst.load.loads_rm());
                        tracer.record(TraceEvent {
                            cycle: cycle_base + used,
                            task,
                            addr: pc,
                            held: None,
                            next_task: task,
                            cache,
                            bypass,
                        });
                    }
                }
                used += 1;
                last_addr = pc;
                let is_last = step.last;
                let touched_ifu = step.touches_ifu;
                pc = next_pc;
                if touched_ifu || !ifu_quiet {
                    self.ifu.tick(&mut self.mem);
                    ifu_quiet = self.ifu.is_quiescent(&self.mem);
                } else {
                    ifu_pending += 1;
                }
                self.mem.tick();
                if woke || used >= budget {
                    break 'frame;
                }
                if is_last {
                    break;
                }
                si += 1;
            }
        }
        self.io.tick_span(io_pending);
        if used > 0 {
            if ifu_pending > 0 {
                self.ifu.tick_quiescent_n(ifu_pending);
            }
            self.stats.cycles += used;
            self.stats.executed[task.index()] += executed;
            // Reconstruct the elided per-cycle bookkeeping at its final
            // value: the arbitration latch holds (0, addr of the last
            // processed instruction), and task 0's TPC — written every
            // phase 3 — holds the next address.
            self.control.stage1 = Stage1 {
                task,
                pc: last_addr,
            };
            self.control.tpc[task.index()] = pc;
            self.control.this_pc = pc;
            if woke {
                // The last cycle's tick raised a wakeup: materialize that
                // cycle's arbitration, which the frame elided.  READY is
                // still empty (nothing in-frame touches it), so requests
                // are exactly task 0 plus the asserted wakeups.
                let mut requests = self.io.wakeups();
                requests.insert(task);
                self.control.arbitrate(requests);
            }
            self.fused_frames += 1;
            self.fused_cycles += used;
        }
        self.compiled = Some(compiled);
        used
    }

    /// Compiled-mode coverage telemetry: `(frames entered, cycles retired
    /// inside fused frames)` since construction.  Both zero under the
    /// interpreter.
    pub fn fused_coverage(&self) -> (u64, u64) {
        (self.fused_frames, self.fused_cycles)
    }

    /// Builds the superinstruction table if it is missing or was
    /// invalidated (control-store write, snapshot restore).
    fn ensure_compiled(&mut self) {
        if self.compiled.is_none() {
            self.compiled = Some(Box::new(compiled::compile(&self.placed, &self.decoded)));
        }
    }

    /// The execution mode in force.
    pub fn exec_mode(&self) -> ExecMode {
        self.exec_mode
    }

    /// Switches between interpreted and compiled execution.  Safe at any
    /// point — the modes are bit-identical — and dropping back to
    /// [`ExecMode::Interpreted`] releases the block table.
    pub fn set_exec_mode(&mut self, mode: ExecMode) {
        self.exec_mode = mode;
        if mode == ExecMode::Interpreted {
            self.compiled = None;
        }
    }

    /// Basic-block lengths (in microinstructions) of the compiled
    /// translation of the current control store — the E20 block census.
    /// Builds the table on demand.
    pub fn compiled_block_lengths(&mut self) -> Vec<u32> {
        self.ensure_compiled();
        self.compiled
            .as_ref()
            .expect("just ensured")
            .block_lens()
            .to_vec()
    }

    /// Sets a microstore breakpoint: [`Dorado::run`] stops *before* the
    /// word at `addr` executes.
    pub fn add_breakpoint(&mut self, addr: MicroAddr) {
        self.breakpoints.insert(addr);
    }

    /// Removes a breakpoint; returns whether it existed.
    pub fn remove_breakpoint(&mut self, addr: MicroAddr) -> bool {
        self.breakpoints.remove(&addr)
    }

    /// Clears the halted flag so the machine can be stepped again (the
    /// console restart path).
    pub fn resume(&mut self) {
        self.halted = false;
    }

    /// Whether an `FF Halt` has executed.
    pub fn halted(&self) -> bool {
        self.halted
    }

    // --- hold computation -----------------------------------------------

    fn check_hold(&mut self, inst: &DecodedInst, task: TaskId) -> Option<HoldCause> {
        // MEMDATA consumers (B bus or the shifter's MEMDATA mask).
        let uses_memdata =
            inst.bsel == BSel::MemData || inst.ff_op == Some(FfOp::ShOutM);
        if uses_memdata && !self.mem.memdata_ready(task) {
            return Some(HoldCause::MemData);
        }
        // IFU operand on the A bus (including operand-addressed refs).
        if inst.asel.uses_ifudata() && self.ifu.operands_remaining() == 0 {
            return Some(HoldCause::IfuOperand);
        }
        // Memory reference starts.
        if inst.asel.starts_memory_ref() {
            let a = self.read_a_for_address(inst, task);
            let vaddr = self.mem.resolve(self.dp.membase(task), a);
            if inst.asel.is_fetch() {
                if !self.mem.fetch_pipe_free(task) {
                    return Some(HoldCause::MemPipe);
                }
                if !self.mem.would_hit(vaddr) && !self.mem.storage_free() {
                    return Some(HoldCause::MemStorage);
                }
            } else if !self.mem.can_start_store(vaddr) {
                return Some(HoldCause::MemStorage);
            }
        }
        // Fast I/O needs a storage cycle.
        if matches!(inst.ff_op, Some(FfOp::IoFetch16) | Some(FfOp::IoStore16))
            && !self.mem.storage_free()
        {
            return Some(HoldCause::MemStorage);
        }
        // IFUJump needs a decoded opcode.
        if inst.control == ControlOp::IfuJump && self.ifu.dispatch_peek().is_none() {
            return Some(HoldCause::IfuDispatch);
        }
        None
    }

    /// The A-bus value for address formation, without consuming anything
    /// (IFU operands are peeked; the execute phase consumes them).
    fn read_a_for_address(&self, inst: &DecodedInst, task: TaskId) -> Word {
        let stack_op = inst.block && task == TaskId::EMULATOR;
        if inst.asel.uses_ifudata() {
            self.ifu.peek_operand().unwrap_or(0)
        } else if inst.asel.reads_rm() {
            if stack_op {
                self.dp.stack_read()
            } else {
                self.dp.rm[self.dp.rm_address(task, inst.raddr)]
            }
        } else {
            self.dp.t[task.index()]
        }
    }

    // --- execution ---------------------------------------------------------

    /// Commits the previous instruction's register-file writes.  In bypass
    /// mode writes were applied immediately and this is a no-op; in Model-0
    /// mode it runs after the current instruction's operands are read.
    fn drain_wb(&mut self) {
        for w in self.pending_wb.take().into_iter().flatten() {
            match w {
                WbWrite::T(task, v) => self.dp.t[task.index()] = v,
                WbWrite::Rm(i, v) => self.dp.rm[i] = v,
                WbWrite::Stack(i, v) => self.dp.stack[i] = v,
            }
        }
    }

    /// The fused runner's straight-line body for [`compiled::Kernel::Alu`]
    /// steps: operand reads, ALU, writeback, flags — with the FF,
    /// memory-start, and NEXTPC dispatches proven absent at translation
    /// time.  Must stay observably identical to [`Dorado::execute`] on the
    /// shapes the classifier admits (no FF effect, no memory or IFU
    /// contact, no stack op, static successor).
    #[inline]
    fn exec_alu_step(&mut self, inst: &DecodedInst, task: TaskId) -> Word {
        let a = if inst.asel.reads_rm() {
            self.dp.rm[self.dp.rm_address(task, inst.raddr)]
        } else {
            self.dp.t[task.index()]
        };
        let b = match inst.bsel {
            BSel::Rm => self.dp.rm[self.dp.rm_address(task, inst.raddr)],
            BSel::T => self.dp.t[task.index()],
            BSel::Q => self.dp.q,
            _ => inst.bconst,
        };
        self.drain_wb();
        let f = self.dp.alufm[inst.aluop.index()];
        let saved_carry = self.dp.flags[task.index()].carry;
        let alu = alu_eval(f, a, b, saved_carry);
        let mut writes = WbQueue::default();
        if inst.load.loads_t() {
            writes.push(WbWrite::T(task, alu.result));
        }
        if inst.load.loads_rm() {
            writes.push(WbWrite::Rm(
                self.dp.rm_address(task, inst.raddr),
                alu.result,
            ));
        }
        self.pending_wb = writes;
        if self.bypass {
            self.drain_wb();
        }
        self.dp.flags[task.index()] =
            CondFlags::from_result(alu.result, alu.carry, alu.overflow);
        alu.result
    }

    fn execute(&mut self, inst: &DecodedInst, task: TaskId, at: MicroAddr) -> (MicroAddr, bool) {
        let stack_op = inst.block && task == TaskId::EMULATOR;
        let rm_idx = self.dp.rm_address(task, inst.raddr);
        let rm_or_stack = if stack_op {
            self.dp.stack_read()
        } else {
            self.dp.rm[rm_idx]
        };
        let t_val = self.dp.t[task.index()];

        // Operand reads (before the previous writeback commits, which is
        // what makes the Model-0 mode see stale values).
        let a: Word = match inst.asel {
            s if s.reads_rm() => rm_or_stack,
            s if s.reads_t() => t_val,
            s if s.uses_ifudata() => self.ifu.ifudata().expect("hold-checked"),
            _ => unreachable!("every ASel reads RM, T, or IFUDATA"),
        };
        let b: Word = match inst.bsel {
            BSel::Rm => rm_or_stack,
            BSel::T => t_val,
            BSel::Q => self.dp.q,
            BSel::MemData => self.mem.memdata(task).expect("hold-checked"),
            _ => inst.bconst,
        };

        // Previous instruction's writeback commits now (§5.6, Figure 4):
        // with bypassing this already happened at execute time.
        self.drain_wb();

        // ALU (first half of the execution, Figure 2).
        let f = self.dp.alufm[inst.aluop.index()];
        let saved_carry = self.dp.flags[task.index()].carry;
        let alu = alu_eval(f, a, b, saved_carry);
        let mut result = alu.result;
        let mut flags = CondFlags::from_result(alu.result, alu.carry, alu.overflow);
        let mut io_input_word: Option<Word> = None;
        let mut halt = false;

        // FF function (§5.5).
        if let Some(op) = inst.ff_op {
            match op {
                FfOp::Nop => {}
                FfOp::ReadRBase => result = Word::from(self.dp.rbase(task)),
                FfOp::ReadStackPtr => result = Word::from(self.dp.stackptr()),
                FfOp::ReadCount => result = self.dp.count,
                FfOp::ReadShiftCtl => result = self.dp.shiftctl.raw(),
                FfOp::ReadLink => result = self.control.link[task.index()].raw(),
                FfOp::ReadQ => result = self.dp.q,
                FfOp::ReadMemBase => result = self.dp.membase(task).index() as Word,
                FfOp::ReadIoAddress => result = self.dp.ioaddress[task.index()],
                FfOp::MulStep => {
                    // One shift-add multiply step (§6.3.3): A is the
                    // accumulator, B the multiplicand, Q the multiplier.
                    let (sum, c) = if self.dp.q & 1 == 1 {
                        a.overflowing_add(b)
                    } else {
                        (a, false)
                    };
                    result = (sum >> 1) | (Word::from(c) << 15);
                    self.dp.q = (self.dp.q >> 1) | ((sum & 1) << 15);
                    flags = CondFlags::from_result(result, c, false);
                }
                FfOp::DivStep => {
                    // One restoring divide step: A:Q is the dividend, B the
                    // divisor; quotient bits shift into Q.
                    let r2 = (u32::from(a) << 1) | u32::from(self.dp.q >> 15);
                    let (r, qbit) = if r2 >= u32::from(b) && b != 0 {
                        (r2 - u32::from(b), 1)
                    } else {
                        (r2, 0)
                    };
                    result = r as Word;
                    self.dp.q = (self.dp.q << 1) | qbit;
                    flags = CondFlags::from_result(result, qbit == 1, false);
                }
                FfOp::Halt => halt = true,
                FfOp::IoInput => {
                    let w = self.io.input(self.dp.ioaddress[task.index()]);
                    io_input_word = Some(w);
                    // When combined with a store, the input word travels
                    // the direct IODATA→memory path (§5.8) and RESULT
                    // stays with the ALU (free for the pointer bump that
                    // makes "three cycles ... two words" possible, §7).
                    if !inst.asel.is_store() {
                        result = w;
                    }
                    self.slow_io_words += 1;
                }
                FfOp::IoOutput => {
                    self.io.output(self.dp.ioaddress[task.index()], b);
                    self.slow_io_words += 1;
                }
                FfOp::IoNotify => self.io.notify(self.dp.ioaddress[task.index()]),
                FfOp::IoFetch16 => {
                    let vaddr = self.mem.resolve(self.dp.membase(task), a);
                    let munch = self.mem.fast_fetch(vaddr).expect("hold-checked");
                    self.io
                        .accept_munch(self.dp.ioaddress[task.index()], &munch);
                }
                FfOp::IoStore16 => {
                    let vaddr = self.mem.resolve(self.dp.membase(task), a);
                    let munch = self.io.supply_munch(self.dp.ioaddress[task.index()]);
                    self.mem.fast_store(vaddr, &munch).expect("hold-checked");
                }
                FfOp::LoadBase => {
                    self.mem.set_base_reg(self.dp.membase(task), u32::from(b));
                }
                FfOp::ReadBase => {
                    result = self.mem.base_reg(self.dp.membase(task)) as Word;
                }
                FfOp::WriteTpc => {
                    let target = TaskId::from_bits((b >> 12) as u8);
                    self.control.tpc[target.index()] = MicroAddr::new(b & 0xfff);
                }
                FfOp::ReadTpc => {
                    let target = TaskId::from_bits((b >> 12) as u8);
                    result = self.control.tpc[target.index()].raw();
                }
                FfOp::LoadRBase => self.dp.set_rbase(task, b as u8),
                FfOp::LoadMemBase => self.dp.set_membase(task, b as u8),
                FfOp::LoadStackPtr => self.dp.set_stackptr(b as u8),
                FfOp::LoadCount => self.dp.count = b,
                FfOp::LoadShiftCtl => self.dp.shiftctl = ShiftCtl::from_raw(b),
                FfOp::LoadQ => self.dp.q = b,
                FfOp::LoadIoAddress => self.dp.ioaddress[task.index()] = b,
                FfOp::LoadLink => {
                    self.control.link[task.index()] = MicroAddr::new(b)
                }
                FfOp::DecCount => self.dp.count = self.dp.count.wrapping_sub(1),
                FfOp::ResetStackError => self.dp.stack_error = false,
                FfOp::IfuLoadPc => {
                    self.ifu.jump(u32::from(b));
                    self.mem.ifu_abort_fetch();
                }
                FfOp::IfuReadPc => result = self.ifu.pc() as Word,
                FfOp::LoadMemBaseImm(n) => self.dp.set_membase(task, n),
                FfOp::LoadCountImm(n) => self.dp.count = Word::from(n),
                FfOp::WakeTask(t) => self.control.ready.insert(t),
                FfOp::ShiftCtlImm(n) => self.dp.shiftctl = ShiftCtl::left_cycle(n),
                FfOp::ShOut | FfOp::ShOutZ | FfOp::ShOutM => {
                    let mode = match op {
                        FfOp::ShOut => MaskMode::None,
                        FfOp::ShOutZ => MaskMode::Zeroes,
                        _ => MaskMode::MemData,
                    };
                    let md = if mode == MaskMode::MemData {
                        self.mem.memdata(task).expect("hold-checked")
                    } else {
                        0
                    };
                    result =
                        shifter_output(self.dp.shiftctl, rm_or_stack, t_val, md, mode);
                }
                FfOp::LoadAluFm(n) => {
                    if let Ok(func) = AluFunction::decode((b & 0x3f) as u8) {
                        self.dp.alufm[usize::from(n)] = func;
                    }
                }
                _ => {}
            }
        }

        // Memory reference start (ASelect, §6.3.1).  A combined
        // `Input`+store moves the device word straight to memory; a
        // combined fetch+`Output` moved MEMDATA out on the same cycle —
        // "both the memory reference and the I/O transfer can be specified
        // in a single instruction" (§5.8).
        if inst.asel.starts_memory_ref() {
            let vaddr = self.mem.resolve(self.dp.membase(task), a);
            if inst.asel.is_fetch() {
                self.mem.start_fetch(task, vaddr).expect("hold-checked");
            } else {
                let data = io_input_word.unwrap_or(b);
                self.mem
                    .start_store(task, vaddr, data)
                    .expect("hold-checked");
            }
        }

        // NEXTPC (§5.5, §6.2.2) — branch conditions read the *previous*
        // instruction's flags (the task-specific branch-condition register,
        // §5.3), except the live COUNT/attention/stack tests.
        let at_plus_1 = MicroAddr::new(at.raw().wrapping_add(1));
        let next_pc = match inst.control {
            ControlOp::Goto { offset } => at.with_offset(offset.into()),
            ControlOp::GotoLong { offset } => {
                MicroAddr::from_parts(inst.ff_raw.into(), offset.into())
            }
            ControlOp::Call { offset } => {
                self.control.link[task.index()] = at_plus_1;
                at.with_offset(offset.into())
            }
            ControlOp::CallLong { offset } => {
                self.control.link[task.index()] = at_plus_1;
                MicroAddr::from_parts(inst.ff_raw.into(), offset.into())
            }
            ControlOp::CondGoto { cond, pair } => {
                let taken = self.cond_value(cond, task);
                at.with_offset(u16::from(pair) * 2).or_low_bit(taken)
            }
            ControlOp::Return => {
                // "LINK ... is loaded with THISPC+1 on every microcode call
                // or return" — the exchange enables coroutines (§6.2.3).
                let ret = self.control.link[task.index()];
                self.control.link[task.index()] = at_plus_1;
                ret
            }
            ControlOp::IfuJump => {
                let (entry, membase) = self.ifu.dispatch().expect("hold-checked");
                if let Some(mb) = membase {
                    // "MEMBASE ... can also be loaded from the IFU at the
                    // start of a macroinstruction" (§6.3.3).
                    self.dp.set_membase(task, mb);
                }
                self.stats.macro_instructions += 1;
                entry
            }
            ControlOp::Dispatch8 { base_hi } => {
                let base = if base_hi { 8u16 } else { 0 };
                MicroAddr::from_parts(inst.ff_raw.into(), base + (b & 7))
            }
            ControlOp::Dispatch256 => {
                MicroAddr::new((u16::from(inst.ff_raw & 0xf) << 8) | (b & 0xff))
            }
        };

        // Writebacks (RESULT into T and RM/stack, Figure 2's final half
        // cycle).  STACKPTR adjusts for every stack op, read or write.
        let mut writes = WbQueue::default();
        if inst.load.loads_t() {
            writes.push(WbWrite::T(task, result));
        }
        if stack_op {
            let waddr = self.dp.stack_bump(inst.stack_delta());
            if inst.load.loads_rm() {
                writes.push(WbWrite::Stack(waddr, result));
            }
        } else if inst.load.loads_rm() {
            writes.push(WbWrite::Rm(rm_idx, result));
        }
        self.pending_wb = writes;
        if self.bypass {
            self.drain_wb();
        }

        // Commit the branch-condition register for the next instruction.
        self.dp.flags[task.index()] = flags;

        (next_pc, halt)
    }

    fn cond_value(&mut self, cond: Cond, task: TaskId) -> bool {
        let f = self.dp.flags[task.index()];
        match cond {
            Cond::Zero => f.zero,
            Cond::Neg => f.neg,
            Cond::Carry => f.carry,
            Cond::Overflow => f.overflow,
            Cond::ROdd => f.odd,
            Cond::CntZero => self.dp.count == 0,
            Cond::IoAtten => self.io.attention(self.dp.ioaddress[task.index()]),
            Cond::StackError => self.dp.stack_error,
        }
    }

    // --- host access -----------------------------------------------------

    /// Merged machine statistics.
    pub fn stats(&self) -> Stats {
        let mut s = self.stats.clone();
        let mc = self.mem.counters();
        s.cache_refs = mc.cache_refs();
        s.cache_hits = mc.cache_hits();
        s.storage_refs = mc.storage_refs();
        s.fast_io_munches = mc.fast_munches();
        s.slow_io_words = self.slow_io_words;
        s.ifu_fetches = mc.ifu_refs();
        s.io_overruns = self.io.rx_overruns();
        s.cache = mc.cache;
        s.storage = mc.storage;
        s.ifu = *self.ifu.counters();
        s
    }

    /// A [`Report`] over the counters accumulated since reset, rendered
    /// with this machine's clock — the §7 tables as a queryable value.
    pub fn report(&self) -> Report {
        Report::new(self.stats(), self.clock)
    }

    /// The clock configuration.
    pub fn clock(&self) -> &ClockConfig {
        &self.clock
    }

    /// Elapsed cycles.
    pub fn cycles(&self) -> u64 {
        self.stats.cycles
    }

    /// The task-specific T register.
    pub fn t(&self, task: TaskId) -> Word {
        self.dp.t[task.index()]
    }

    /// Sets the task-specific T register.
    pub fn set_t(&mut self, task: TaskId, value: Word) {
        self.dp.t[task.index()] = value;
    }

    /// An RM register.
    pub fn rm(&self, index: usize) -> Word {
        self.dp.rm[index]
    }

    /// Sets an RM register.
    pub fn set_rm(&mut self, index: usize, value: Word) {
        self.dp.rm[index] = value;
    }

    /// The COUNT register.
    pub fn count(&self) -> Word {
        self.dp.count
    }

    /// The Q register.
    pub fn q(&self) -> Word {
        self.dp.q
    }

    /// Sets the Q register.
    pub fn set_q(&mut self, value: Word) {
        self.dp.q = value;
    }

    /// The data section (full host visibility).
    pub fn datapath(&self) -> &DataSection {
        &self.dp
    }

    /// Mutable data section access (host preloading).
    pub fn datapath_mut(&mut self) -> &mut DataSection {
        &mut self.dp
    }

    /// The control section.
    pub fn control(&self) -> &ControlSection {
        &self.control
    }

    /// Mutable control section access (set TPCs, READY, ...).
    pub fn control_mut(&mut self) -> &mut ControlSection {
        &mut self.control
    }

    /// The memory system.
    pub fn memory(&self) -> &MemorySystem {
        &self.mem
    }

    /// Mutable memory access (host preloading).
    pub fn memory_mut(&mut self) -> &mut MemorySystem {
        &mut self.mem
    }

    /// The IFU.
    pub fn ifu(&self) -> &Ifu {
        &self.ifu
    }

    /// Mutable IFU access (decode tables, code base).
    pub fn ifu_mut(&mut self) -> &mut Ifu {
        &mut self.ifu
    }

    /// The I/O interconnect.
    pub fn io(&self) -> &IoSystem {
        &self.io
    }

    /// Mutable I/O access.
    pub fn io_mut(&mut self) -> &mut IoSystem {
        &mut self.io
    }

    /// Mutably borrows an attached device, downcast to its concrete type.
    pub fn device_mut<T: Device>(&mut self, name: &str) -> Option<&mut T> {
        self.io
            .device_by_name_mut(name)?
            .as_any_mut()
            .downcast_mut::<T>()
    }

    /// Re-enters the microcode at `label` on the emulator task: resets
    /// the task-0 PC, clears the halt latch, and leaves every register
    /// and memory word intact.  This is how a host driver invokes
    /// several microcode routines in sequence on one machine (e.g.
    /// successive BitBlt calls).
    ///
    /// Returns the entry address, or `None` when the label is unknown.
    pub fn restart_at(&mut self, label: &str) -> Option<MicroAddr> {
        let addr = self.label(label)?;
        self.control.tpc[TaskId::EMULATOR.index()] = addr;
        self.control.this_task = TaskId::EMULATOR;
        self.control.this_pc = addr;
        self.halted = false;
        self.consecutive_holds = 0;
        Some(addr)
    }

    /// The placed address of a microcode label.
    pub fn label(&self, name: &str) -> Option<MicroAddr> {
        self.labels.get(name).copied()
    }

    /// Reads a microstore word (the read path of §6.2.3).
    pub fn read_microstore(&self, addr: MicroAddr) -> Microword {
        self.store[addr.raw() as usize]
    }

    /// Writes a microstore word ("the Dorado's microstore is writeable",
    /// §6.2.3), re-decoding it.
    ///
    /// # Errors
    ///
    /// Returns an error if the word has reserved encodings.
    pub fn write_microstore(&mut self, addr: MicroAddr, word: Microword) -> Result<(), AsmError> {
        let d = DecodedInst::decode(word)?;
        self.store[addr.raw() as usize] = word;
        self.decoded[addr.raw() as usize] = d;
        // Every derived decode product dies with the store word: the
        // superinstruction table is rebuilt from the patched image before
        // the next fused frame, and the I/O decode hint is dropped so no
        // fast path survives a control-store write with stale state.
        self.placed.set_word(addr, word);
        self.compiled = None;
        self.io.reset_decode_cache();
        Ok(())
    }

    /// Enables tracing into a ring buffer keeping the last `capacity`
    /// events.  Tracing is off by default and costs nothing while off.
    pub fn trace_enable(&mut self, capacity: usize) {
        self.tracer = Some(Tracer::new(capacity));
    }

    /// Disables tracing, returning the tracer (with its retained events)
    /// if one was active.
    pub fn trace_disable(&mut self) -> Option<Tracer> {
        self.tracer.take()
    }

    /// The active tracer, if tracing is enabled.
    pub fn tracer(&self) -> Option<&Tracer> {
        self.tracer.as_ref()
    }

    /// Takes the accumulated trace, oldest first (tracing stays enabled).
    pub fn take_trace(&mut self) -> Vec<TraceEvent> {
        match &mut self.tracer {
            Some(tracer) => tracer.take(),
            None => Vec::new(),
        }
    }

    /// The page size constant, re-exported for microcode tooling.
    pub const PAGE_SIZE: usize = PAGE_SIZE;

    /// Number of microcode tasks.
    pub const NUM_TASKS: usize = NUM_TASKS;
}

impl Snapshot for Dorado {
    /// Saves every piece of dynamic machine state: datapath, control
    /// section, memory system (cache, storage, in-flight fetches), IFU,
    /// devices, statistics, and the deferred-writeback queue.
    ///
    /// Configuration — the microcode image, decode tables, clock, tasking
    /// mode, breakpoints, and the tracer — stays with the live object: a
    /// snapshot restores onto a machine built the same way, and
    /// `restore` rejects images whose shape disagrees.
    fn save(&self, w: &mut Writer) {
        w.tag(b"DRDO");
        self.dp.save(w);
        self.control.save(w);
        self.mem.save(w);
        self.ifu.save(w);
        self.io.save(w);
        self.stats.save(w);
        w.u64(self.slow_io_words);
        w.bool(self.halted);
        w.u64(self.consecutive_holds);
        w.len(self.pending_wb.len());
        for wb in self.pending_wb.iter() {
            match wb {
                WbWrite::T(task, v) => {
                    w.u8(0);
                    w.u8(task.number());
                    w.u16(v);
                }
                WbWrite::Rm(i, v) => {
                    w.u8(1);
                    w.u64(i as u64);
                    w.u16(v);
                }
                WbWrite::Stack(i, v) => {
                    w.u8(2);
                    w.u64(i as u64);
                    w.u16(v);
                }
            }
        }
    }

    fn restore(&mut self, r: &mut Reader<'_>) -> Result<(), SnapError> {
        r.tag(b"DRDO")?;
        // Invalidate every cached decode product before new state lands:
        // the block table is rebuilt lazily against the (unchanged) store,
        // and `IoSystem::restore` drops its own decode hint.
        self.compiled = None;
        self.dp.restore(r)?;
        self.control.restore(r)?;
        self.mem.restore(r)?;
        self.ifu.restore(r)?;
        self.io.restore(r)?;
        self.stats.restore(r)?;
        self.slow_io_words = r.u64()?;
        self.halted = r.bool()?;
        self.consecutive_holds = r.u64()?;
        let n = r.len()?;
        if n > 2 {
            return Err(SnapError::Invalid { what: "wb count" });
        }
        self.pending_wb = WbQueue::default();
        for _ in 0..n {
            let wb = match r.u8()? {
                0 => WbWrite::T(TaskId::new(r.u8()?), r.u16()?),
                1 => {
                    let i = r.u64()? as usize;
                    if i >= self.dp.rm.len() {
                        return Err(SnapError::Invalid { what: "wb rm index" });
                    }
                    WbWrite::Rm(i, r.u16()?)
                }
                2 => {
                    let i = r.u64()? as usize;
                    if i >= self.dp.stack.len() {
                        return Err(SnapError::Invalid {
                            what: "wb stack index",
                        });
                    }
                    WbWrite::Stack(i, r.u16()?)
                }
                _ => return Err(SnapError::Invalid { what: "wb kind" }),
            };
            self.pending_wb.push(wb);
        }
        Ok(())
    }
}
