//! Second battery of machine-level tests: software task control, ALUFM
//! remapping, dispatch-256, breakpoints, microstore rewriting, and
//! multi-device priority chains.

use dorado_asm::{ASel, Assembler, AluFunction, AluOp, BSel, FfOp, Inst};
use dorado_base::{MicroAddr, TaskId};
use dorado_core::{Console, Dorado, DoradoBuilder, ExecMode, RunOutcome};

const T0: TaskId = TaskId::EMULATOR;

fn nop() -> Inst {
    Inst::new()
}

fn build(f: impl FnOnce(&mut Assembler)) -> Dorado {
    let mut a = Assembler::new();
    f(&mut a);
    DoradoBuilder::new()
        .microcode(a.place().expect("place"))
        .build()
        .expect("build")
}

#[test]
fn software_task_bootstrap_via_writetpc_and_wake() {
    // The emulator points task 5's TPC at a worker routine and makes it
    // ready (§6.2.1 "explicitly readied" / §6.2.3 TPC write paths).
    let mut a = Assembler::new();
    // T ← 5<<12 | address-of-worker; write TPC; wake task 5; spin.
    a.emit(nop().rm(2).b(BSel::Rm).ff(FfOp::WriteTpc));
    a.emit(nop().ff(FfOp::WakeTask(TaskId::new(5))));
    a.label("spin");
    a.emit(nop().a(ASel::T).alu(AluOp::INC_A).load_t().goto_("spin"));
    a.label("worker");
    a.emit(nop().rm(7).const16(0x77).alu(AluOp::B).load_rm());
    a.emit(nop().ff_halt().goto_("worker"));
    let placed = a.place().unwrap();
    let worker = placed.address_of("worker").unwrap();
    let mut m = DoradoBuilder::new().microcode(placed).build().unwrap();
    m.set_rm(2, (5 << 12) | worker.raw());
    let out = m.run(1000);
    assert!(out.halted(), "{out:?}");
    assert_eq!(m.rm(7), 0x77, "the worker task ran");
    let s = m.stats();
    assert!(s.executed[5] >= 2, "task 5 executed: {}", s.executed[5]);
}

#[test]
fn readtpc_observes_another_task() {
    let mut a = Assembler::new();
    a.emit(nop().rm(2).b(BSel::Rm).ff(FfOp::WriteTpc));
    a.emit(nop().rm(3).b(BSel::Rm).ff(FfOp::ReadTpc).load_t());
    a.label("fin");
    a.emit(nop().ff_halt().goto_("fin"));
    let mut m = build(|b| *b = a.clone());
    m.set_rm(2, (9 << 12) | 0o1234);
    m.set_rm(3, 9 << 12);
    assert!(m.run(100).halted());
    assert_eq!(m.t(T0), 0o1234);
}

#[test]
fn alufm_remapping_changes_an_opcode() {
    // Microcode rewrites ALUFM entry 0 from Add to Xor (§6.3.3).
    let mut m = build(|a| {
        a.emit(nop().const16(AluFunction::Xor.raw().into()).alu(AluOp::B).load_t());
        a.emit(nop().b(BSel::T).ff(FfOp::LoadAluFm(0)));
        // Now "ADD" (index 0) computes XOR.
        a.emit(nop().rm(1).b(BSel::Rm).a(ASel::T).alu(AluOp::ADD).load_t());
        a.label("fin");
        a.emit(nop().ff_halt().goto_("fin"));
    });
    m.set_rm(1, 0x0ff0);
    let out = m.run(100);
    assert!(out.halted());
    // T was Xor.raw()=4 before the "ADD": 4 XOR 0x0ff0 = 0x0ff4.
    assert_eq!(m.t(T0), 4 ^ 0x0ff0);
}

#[test]
fn dispatch256_covers_a_byte() {
    let mut a = Assembler::new();
    a.emit(nop().b(BSel::T).dispatch256("tbl"));
    a.align256();
    a.label("tbl");
    for _ in 0..256 {
        // Every entry: RM[9] ← COUNT (marker), halt.  Distinguish targets
        // by their own address via ReadTpc? Simpler: entries write their
        // index via COUNT preloaded... use a shared body: record entry by
        // storing T (the dispatch selector) and halting.
        a.emit(nop().rm(9).b(BSel::T).alu(AluOp::B).load_rm().goto_("h"));
    }
    a.label("h");
    a.emit(nop().ff_halt().goto_("h"));
    let placed = a.place().unwrap();
    for selector in [0u16, 1, 77, 255] {
        let mut m = DoradoBuilder::new()
            .microcode(placed.clone())
            .build()
            .unwrap();
        m.set_t(T0, selector);
        assert!(m.run(100).halted());
        assert_eq!(m.rm(9), selector, "selector {selector}");
    }
}

#[test]
fn breakpoints_stop_before_execution() {
    let mut a = Assembler::new();
    a.emit(nop().a(ASel::T).alu(AluOp::INC_A).load_t()); // 0
    a.emit(nop().a(ASel::T).alu(AluOp::INC_A).load_t()); // 1
    a.label("bp");
    a.emit(nop().a(ASel::T).alu(AluOp::INC_A).load_t()); // 2
    a.label("fin");
    a.emit(nop().ff_halt().goto_("fin"));
    let placed = a.place().unwrap();
    let bp = placed.address_of("bp").unwrap();
    let mut m = DoradoBuilder::new().microcode(placed).build().unwrap();
    m.add_breakpoint(bp);
    let out = m.run(100);
    assert_eq!(
        out,
        RunOutcome::Breakpoint { at: bp, task: T0 },
        "stopped at the breakpoint"
    );
    assert_eq!(m.t(T0), 2, "instructions before the breakpoint ran");
    // Continue to completion.
    assert!(m.remove_breakpoint(bp));
    assert!(!m.remove_breakpoint(bp));
    let out = m.run(100);
    assert!(out.halted());
    assert_eq!(m.t(T0), 3);
}

#[test]
fn breakpoint_inside_a_fused_block_deoptimizes_at_the_exact_instruction() {
    // Compiled mode fuses the straight-line increment chain into one
    // superinstruction block; a console breakpoint planted mid-block must
    // still stop *before* the flagged microinstruction, with every earlier
    // step's effects committed — exactly like the interpreter — and the
    // console must report the same stopped state.
    let build_chain = || {
        let mut a = Assembler::new();
        for _ in 0..4 {
            a.emit(nop().a(ASel::T).alu(AluOp::INC_A).load_t());
        }
        a.label("bp");
        for _ in 0..4 {
            a.emit(nop().a(ASel::T).alu(AluOp::INC_A).load_t());
        }
        a.label("fin");
        a.emit(nop().ff_halt().goto_("fin"));
        let placed = a.place().unwrap();
        let bp = placed.address_of("bp").unwrap();
        let mut m = DoradoBuilder::new().microcode(placed).build().unwrap();
        m.add_breakpoint(bp);
        (m, bp)
    };
    let (mut interp, bp) = build_chain();
    let (mut compiled, _) = build_chain();
    compiled.set_exec_mode(ExecMode::Compiled);

    for m in [&mut interp, &mut compiled] {
        let out = m.run(100);
        assert_eq!(out, RunOutcome::Breakpoint { at: bp, task: T0 });
        assert_eq!(m.t(T0), 4, "the four pre-breakpoint increments ran");
    }
    assert_eq!(interp.cycles(), compiled.cycles(), "stopped on the same cycle");
    assert_eq!(
        Console::new(&interp).where_am_i(),
        Console::new(&compiled).where_am_i(),
        "console agrees on the stopped location"
    );

    // Resuming steps over the breakpointed instruction (it is skipped on
    // the first cycle of a run), then completes in both modes.
    for m in [&mut interp, &mut compiled] {
        assert!(m.run(100).halted());
        assert_eq!(m.t(T0), 8);
    }
    assert_eq!(interp.cycles(), compiled.cycles());
    assert_eq!(interp.stats(), compiled.stats());
}

#[test]
fn console_snapshot_of_live_machine() {
    let mut m = build(|a| {
        a.emit(nop().const16(0xab).alu(AluOp::B).load_t());
        a.label("fin");
        a.emit(nop().ff_halt().goto_("fin"));
    });
    let _ = m.run(100);
    let c = Console::new(&m);
    let snap = c.snapshot();
    assert!(snap.contains("00ab"), "T visible in the snapshot: {snap}");
    let acc = c.accounting();
    assert!(acc.contains("0"), "{acc}");
}

#[test]
fn microstore_rewrite_changes_behavior() {
    // Rewrite a constant inside a placed instruction and re-run — the
    // writeable microstore of §6.2.3.
    let mut a = Assembler::new();
    a.label("go");
    a.emit(nop().const16(0x11).alu(AluOp::B).load_t());
    a.label("fin");
    a.emit(nop().ff_halt().goto_("fin"));
    let placed = a.place().unwrap();
    let go = placed.address_of("go").unwrap();
    let mut m = DoradoBuilder::new().microcode(placed).build().unwrap();
    assert!(m.run(10).halted());
    assert_eq!(m.t(T0), 0x11);
    // Patch the FF byte (the constant) to 0x42.
    let word = m.read_microstore(go).with_ff(0x42);
    m.write_microstore(go, word).unwrap();
    m.control_mut().this_pc = go;
    m.control_mut().tpc[0] = go;
    m.resume();
    assert!(m.run(10).halted());
    assert_eq!(m.t(T0), 0x42);
}

#[test]
fn microstore_rewrite_rejects_garbage() {
    let mut m = build(|a| {
        a.label("fin");
        a.emit(nop().ff_halt().goto_("fin"));
    });
    // FF = reserved function encoding with a non-constant BSelect.
    let bad = dorado_asm::Microword::default().with_ff(0xff);
    assert!(m.write_microstore(MicroAddr::new(9), bad).is_err());
}

#[test]
fn priority_chain_three_devices() {
    // Three synthetic devices at tasks 9 < 12 < 15; all want service
    // constantly.  Priority order must hold exactly: task 15 gets all it
    // asks for, 12 the remainder, 9 the scraps, emulator the rest.
    use dorado_io::{synth::SynthPath, RateDevice};
    let mut a = Assembler::new();
    a.label("emu");
    a.emit(nop().a(ASel::T).alu(AluOp::INC_A).load_t().goto_("emu"));
    for t in [9u8, 12, 15] {
        a.label(format!("io{t}"));
        a.emit(nop().ff(FfOp::IoInput).load_rm().rm((t & 0xf) % 16));
        a.emit(nop());
        a.emit(nop().io_block().goto_(format!("io{t}")));
    }
    let placed = a.place().unwrap();
    let mut b = DoradoBuilder::new().microcode(placed).task_entry(T0, "emu");
    for (t, mbps, base) in [(9u8, 60.0, 0x10u16), (12, 60.0, 0x20), (15, 60.0, 0x30)] {
        let task = TaskId::new(t);
        let mut dev = RateDevice::new(task, mbps, 60.0, SynthPath::Slow);
        dev.set_words_per_service(1);
        dev.start();
        b = b
            .device(Box::new(dev), base, 2)
            .wire_ioaddress(task, base)
            .task_entry(task, format!("io{t}"));
    }
    let mut m = b.build().unwrap();
    let _ = m.run(50_000);
    let s = m.stats();
    let sh = |t: u8| s.processor_share(TaskId::new(t));
    // Each device offers 0.225 words/cycle and its service costs 3
    // instructions per word; under contention the fixed priority must
    // order the shares strictly, with the lowest device squeezed hardest.
    assert!(
        sh(15) >= sh(12) && sh(12) >= sh(9),
        "priority order: {:.3} {:.3} {:.3}",
        sh(15),
        sh(12),
        sh(9)
    );
    assert!(sh(15) > 0.3, "task 15 gets the most: {:.3}", sh(15));
    assert!(
        sh(15) - sh(9) > 0.05,
        "the spread is visible: {:.3} vs {:.3}",
        sh(15),
        sh(9)
    );
    assert_eq!(
        s.executed.iter().sum::<u64>() + s.held_cycles(),
        s.cycles,
        "every cycle is accounted for"
    );
}

#[test]
fn shifter_memdata_mask_through_machine() {
    // ShOutM merges shifter output with MEMDATA — field insertion at the
    // machine level (§6.3.4).
    use dorado_asm::ShiftCtl;
    let ctl = ShiftCtl::field_insert(4, 8).raw();
    let mut m = build(|a| {
        a.load_t_const(ctl);
        a.emit(nop().b(BSel::T).ff(FfOp::LoadShiftCtl));
        a.emit(nop().rm(1).a(ASel::FetchR)); // fetch the old word
        a.emit(nop().rm(2).alu(AluOp::A).load_t()); // T ← value (also in RM[2])
        a.emit(nop().rm(2).ff(FfOp::ShOutM).load_t()); // merge
        a.label("fin");
        a.emit(nop().ff_halt().goto_("fin"));
    });
    m.set_rm(1, 0x500);
    m.set_rm(2, 0x00ab); // value to insert at bits 4..12
    m.memory_mut()
        .write_virt(dorado_base::VirtAddr::new(0x500), 0xf00f);
    assert!(m.run(1000).halted());
    assert_eq!(m.t(T0), (0xf00f & !0x0ff0) | (0x00ab << 4));
}

#[test]
fn count_register_wraps_and_tests() {
    let mut m = build(|a| {
        a.emit(nop().ff(FfOp::LoadCountImm(0)));
        a.emit(nop().ff(FfOp::DecCount)); // 0 -> 0xffff
        a.emit(nop().ff(FfOp::ReadCount).load_t());
        a.label("fin");
        a.emit(nop().ff_halt().goto_("fin"));
    });
    assert!(m.run(100).halted());
    assert_eq!(m.t(T0), 0xffff);
}

#[test]
fn q_register_shifts_during_divide() {
    // DivStep shifts quotient bits into Q even standalone.
    let mut m = build(|a| {
        a.emit(nop().rm(1).a(ASel::T).b(BSel::Rm).ff(FfOp::DivStep).load_t());
        a.label("fin");
        a.emit(nop().ff_halt().goto_("fin"));
    });
    m.set_t(T0, 0x0005);
    m.set_q(0x8000);
    m.set_rm(1, 0x0003);
    assert!(m.run(100).halted());
    // r2 = (5<<1)|1 = 11 >= 3: result 8, qbit 1.
    assert_eq!(m.t(T0), 8);
    assert_eq!(m.q(), 1);
}

#[test]
fn link_register_load_from_b() {
    // LoadLink then Return transfers control to a computed address
    // ("control can be sent to an arbitrary computed address", §6.2.3).
    let mut a = Assembler::new();
    a.emit(nop().rm(1).b(BSel::Rm).ff(FfOp::LoadLink));
    a.emit(nop().ret());
    a.emit(nop().goto_("bad")); // skipped by the computed return
    a.label("bad");
    a.emit(nop().goto_("bad"));
    a.label("target");
    a.emit(nop().const16(0x99).alu(AluOp::B).load_t());
    a.label("fin");
    a.emit(nop().ff_halt().goto_("fin"));
    let placed = a.place().unwrap();
    let target = placed.address_of("target").unwrap();
    let mut m = DoradoBuilder::new().microcode(placed).build().unwrap();
    m.set_rm(1, target.raw());
    assert!(m.run(100).halted());
    assert_eq!(m.t(T0), 0x99);
}
