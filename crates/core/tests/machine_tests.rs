//! Machine-level tests: microcode programs executed end to end on the
//! full processor + memory + IFU + I/O model.

use dorado_asm::{ASel, Assembler, AluOp, BSel, Cond, FfOp, Inst};
use dorado_base::{MicroAddr, TaskId, VirtAddr, Word};
use dorado_core::{Dorado, DoradoBuilder, RunOutcome, TaskingMode};
use dorado_io::{synth::SynthPath, RateDevice};

const T0: TaskId = TaskId::EMULATOR;

fn build(f: impl FnOnce(&mut Assembler)) -> Dorado {
    let mut a = Assembler::new();
    f(&mut a);
    let placed = a.place().expect("placement");
    DoradoBuilder::new()
        .microcode(placed)
        .build()
        .expect("build")
}

fn nop() -> Inst {
    Inst::new()
}

#[test]
fn halt_stops_the_machine() {
    let mut m = build(|a| {
        a.label("go");
        a.emit(nop().ff_halt().goto_("go"));
    });
    let out = m.run(100);
    assert_eq!(out, RunOutcome::Halted { cycles: 1 });
    assert!(m.halted());
    // Resume and run again.
    m.resume();
    assert!(m.run(100).halted());
}

#[test]
fn counted_loop_has_exact_cycle_count() {
    // COUNT ← 10; loop: T ← T + 1, DecCount, branch CntZero ? exit : top.
    let mut m = build(|a| {
        a.emit(nop().ff(FfOp::LoadCountImm(10)).goto_("top"));
        a.pair_align();
        a.label("top");
        a.emit(nop().a(ASel::T).alu(AluOp::INC_A).load_t().goto_("body"));
        a.label("exit");
        a.emit(nop().ff_halt().goto_("exit"));
        a.label("body");
        a.emit(nop().ff(FfOp::DecCount).branch(Cond::CntZero, "exit", "top"));
    });
    let out = m.run(1000);
    // 1 init + 10 × (inc, dec/branch) + 1 halt = 22 cycles.
    assert_eq!(out, RunOutcome::Halted { cycles: 22 });
    assert_eq!(m.t(T0), 10);
    assert_eq!(m.count(), 0);
}

#[test]
fn subroutine_call_and_return() {
    let mut m = build(|a| {
        a.emit(nop().call("sub"));
        a.emit(nop().ff_halt().goto_("end")); // return lands here
        a.label("end");
        a.emit(nop().goto_("end"));
        a.label("sub");
        a.emit(nop().const16(0x0042).alu(AluOp::B).load_t().ret());
    });
    let out = m.run(100);
    assert_eq!(out, RunOutcome::Halted { cycles: 3 });
    assert_eq!(m.t(T0), 0x42);
}

#[test]
fn link_exchange_supports_coroutines() {
    // Return writes THISPC+1 back into LINK (§6.2.3): two returns
    // ping-pong between coroutines.
    let mut m = build(|a| {
        // Seed LINK = address of "co" via Call, then bounce.
        a.emit(nop().call("co"));
        a.label("back1");
        // LINK now holds co's second instruction address.
        a.emit(nop().a(ASel::T).alu(AluOp::INC_A).load_t().ret()); // -> co2
        a.label("back2");
        a.emit(nop().ff_halt().goto_("back2"));
        a.label("co");
        a.emit(nop().ret()); // -> back1, LINK <- co+1
        a.label("co2");
        a.emit(nop().a(ASel::T).alu(AluOp::INC_A).load_t().ret()); // -> back1+1 = back2
    });
    let out = m.run(100);
    assert!(out.halted(), "{out:?}");
    assert_eq!(m.t(T0), 2);
}

#[test]
fn memory_fetch_roundtrip_with_hold() {
    let mut m = build(|a| {
        // RM[1] holds the address; fetch, then T ← MEMDATA, halt.
        a.emit(nop().rm(1).a(ASel::FetchR).goto_("use"));
        a.label("use");
        a.emit(nop().b(BSel::MemData).alu(AluOp::B).load_t().goto_("fin"));
        a.label("fin");
        a.emit(nop().ff_halt().goto_("fin"));
    });
    m.set_rm(1, 0x0200);
    m.memory_mut().write_virt(VirtAddr::new(0x0200), 0xbead);
    let out = m.run(1000);
    assert!(out.halted());
    assert_eq!(m.t(T0), 0xbead);
    // Cold cache: the consumer was held for ~miss_penalty cycles.
    let s = m.stats();
    assert!(s.held[0] >= 20, "held {} cycles", s.held[0]);
    assert_eq!(s.cache_hits, 0);
}

#[test]
fn memory_store_and_increment_in_one_instruction() {
    // Store[RM[2]] ← T while RM[2] ← RM[2]+1: the store-and-bump idiom.
    let mut m = build(|a| {
        a.emit(nop().ff(FfOp::LoadCountImm(4)).goto_("top"));
        a.pair_align();
        a.label("top");
        a.emit(
            nop()
                .rm(2)
                .a(ASel::StoreR)
                .b(BSel::T)
                .alu(AluOp::INC_A)
                .load_rm()
                .goto_("body"),
        );
        a.label("exit");
        a.emit(nop().ff_halt().goto_("exit"));
        a.label("body");
        a.emit(nop().a(ASel::T).alu(AluOp::INC_A).load_t().ff(FfOp::DecCount).branch(
            Cond::CntZero,
            "exit",
            "top",
        ));
    });
    m.set_rm(2, 0x300);
    m.set_t(T0, 7);
    let out = m.run(4000);
    assert!(out.halted(), "{out:?}");
    assert_eq!(m.rm(2), 0x304);
    for i in 0..4u32 {
        assert_eq!(
            m.memory().read_virt(VirtAddr::new(0x300 + i)),
            7 + i as Word,
            "word {i}"
        );
    }
}

#[test]
fn stack_push_pop_microcode() {
    let mut m = build(|a| {
        // Push two constants, pop them in reverse order into RM.
        a.emit(nop().stack(1).const16(0x11).alu(AluOp::B).load_rm()); // push 0x11
        a.emit(nop().stack(1).const16(0x22).alu(AluOp::B).load_rm()); // push 0x22
        // Pop: read TOS onto A, decrement pointer.
        a.emit(nop().stack(-1).alu(AluOp::A).load_t()); // T ← 0x22
        a.emit(nop().rm(5).a(ASel::T).alu(AluOp::A).load_rm()); // RM[5] ← T
        a.emit(nop().stack(-1).alu(AluOp::A).load_t()); // T ← 0x11
        a.emit(nop().rm(6).a(ASel::T).alu(AluOp::A).load_rm());
        a.label("fin");
        a.emit(nop().ff_halt().goto_("fin"));
    });
    let out = m.run(100);
    assert!(out.halted());
    assert_eq!(m.rm(5), 0x22);
    assert_eq!(m.rm(6), 0x11);
    assert!(!m.datapath().stack_error);
    assert_eq!(m.datapath().stackptr(), 0);
}

#[test]
fn stack_underflow_sets_error_condition() {
    let mut a = Assembler::new();
    a.emit(nop().stack(-1).alu(AluOp::A)); // pop the empty stack
    a.emit(nop().branch(Cond::StackError, "bad", "ok"));
    a.label("ok");
    a.emit(nop().ff_halt().goto_("ok")); // halts with T = 0
    a.label("bad");
    a.emit(nop().const16(1).alu(AluOp::B).load_t().goto_("bad2"));
    a.label("bad2");
    a.emit(nop().ff_halt().goto_("bad2"));
    let placed = a.place().unwrap();
    let mut m = DoradoBuilder::new().microcode(placed).build().unwrap();
    assert!(m.run(100).halted());
    assert_eq!(m.t(T0), 1, "stack error branch must be taken");
}

#[test]
fn multiply_with_mulstep_loop() {
    // 16 MulSteps: T (accumulator) and Q end up holding a × b.
    let mut m = build(|a| {
        a.emit(nop().rm(0).alu(AluOp::B).b(BSel::T).ff(FfOp::LoadQ).note("Q ← multiplier"));
        a.emit(nop().alu(AluOp::ZERO).load_t().ff(FfOp::LoadCountImm(16)));
        a.pair_align();
        a.label("mul");
        a.emit(
            nop()
                .rm(1)
                .a(ASel::T)
                .b(BSel::Rm)
                .ff(FfOp::MulStep)
                .load_t()
                .goto_("step"),
        );
        a.label("done");
        a.emit(nop().ff_halt().goto_("done"));
        a.label("step");
        a.emit(nop().ff(FfOp::DecCount).branch(Cond::CntZero, "done", "mul"));
    });
    let x: Word = 0xbeef;
    let y: Word = 0x1234;
    m.set_t(T0, x); // multiplier (loaded into Q by inst 0)
    m.set_rm(1, y); // multiplicand
    let out = m.run(1000);
    assert!(out.halted(), "{out:?}");
    let product = (u32::from(m.t(T0)) << 16) | u32::from(m.q());
    assert_eq!(product, u32::from(x) * u32::from(y));
}

#[test]
fn divide_with_divstep_loop() {
    // 32-bit dividend in (T:Q), divisor in RM[1]: 16 DivSteps leave the
    // quotient in Q and the remainder in T.
    let mut m = build(|a| {
        a.emit(nop().ff(FfOp::LoadCountImm(16)).goto_("div"));
        a.pair_align();
        a.label("div");
        a.emit(
            nop()
                .rm(1)
                .a(ASel::T)
                .b(BSel::Rm)
                .ff(FfOp::DivStep)
                .load_t()
                .goto_("step"),
        );
        a.label("done");
        a.emit(nop().ff_halt().goto_("done"));
        a.label("step");
        a.emit(nop().ff(FfOp::DecCount).branch(Cond::CntZero, "done", "div"));
    });
    let dividend: u32 = 0x0012_3456;
    let divisor: Word = 0x0765;
    m.set_t(T0, (dividend >> 16) as Word);
    m.set_q(dividend as Word);
    m.set_rm(1, divisor);
    let out = m.run(1000);
    assert!(out.halted(), "{out:?}");
    assert_eq!(u32::from(m.q()), dividend / u32::from(divisor));
    assert_eq!(u32::from(m.t(T0)), dividend % u32::from(divisor));
}

#[test]
fn shifter_field_extract_microcode() {
    use dorado_asm::ShiftCtl;
    let ctl = ShiftCtl::field_extract(5, 6).raw();
    let mut m = build(|a| {
        a.load_t_const(ctl); // T ← control word (1-2 instructions)
        a.emit(nop().b(BSel::T).ff(FfOp::LoadShiftCtl));
        // RM[3] into both shifter inputs, extract bits 5..11 into T.
        a.emit(nop().rm(3).b(BSel::Rm).ff(FfOp::LoadQ).note("stage r to q? no"));
        a.emit(nop().rm(3).a(ASel::Rm).alu(AluOp::A).load_t()); // T ← RM[3]
        a.emit(nop().rm(3).ff(FfOp::ShOutZ).load_t());
        a.label("fin");
        a.emit(nop().ff_halt().goto_("fin"));
    });
    let v: Word = 0b1010_1101_0110_1011;
    m.set_rm(3, v);
    let out = m.run(100);
    assert!(out.halted());
    assert_eq!(m.t(T0), (v >> 5) & 0x3f);
}

#[test]
fn dispatch8_selects_by_b_bus() {
    let mut m = build(|a| {
        a.emit(nop().b(BSel::T).dispatch8("tbl"));
        a.align8();
        a.label("tbl");
        // A classic dispatch table: eight relay jumps (FF free, so the
        // placer may route them cross-page).
        for i in 0..8u16 {
            a.emit(nop().goto_(format!("e{i}")));
        }
        for i in 0..8u16 {
            a.label(format!("e{i}"));
            a.emit(nop().rm(9).const16(0x10 + i).alu(AluOp::B).load_rm().goto_(format!("h{i}")));
            a.label(format!("h{i}"));
            a.emit(nop().ff_halt().goto_(format!("h{i}")));
        }
    });
    m.set_t(T0, 5);
    assert!(m.run(100).halted());
    assert_eq!(m.rm(9), 0x15);
}

#[test]
fn wakeup_latency_is_two_cycles_and_grain_is_two() {
    // A rate device on task 10; its microcode reads 2 words into RM and
    // blocks. The emulator spins.
    let task = TaskId::new(10);
    let mut a = Assembler::new();
    a.label("emu");
    a.emit(nop().a(ASel::T).alu(AluOp::INC_A).load_t().goto_("emu"));
    a.label("io");
    a.emit(nop().ff_input().load_rm().rm(0));
    a.emit(nop().ff_input().load_rm().rm(1).io_block().goto_("io"));
    let placed = a.place().unwrap();

    let mut dev = RateDevice::new(task, 5.0, 60.0, SynthPath::Slow);
    dev.start();
    let mut m = DoradoBuilder::new()
        .microcode(placed)
        .device(Box::new(dev), 0x40, 2)
        .wire_ioaddress(task, 0x40)
        .task_entry(task, "io")
        .task_entry(T0, "emu")
        .build()
        .unwrap();
    m.trace_enable(4000);
    let _ = m.run(2000);
    let trace = m.take_trace();
    // Find the first cycle the io task ran.
    let first = trace.iter().position(|e| e.task == task).expect("io ran");
    // It must run exactly 2 consecutive instructions then yield (grain 2).
    assert_eq!(trace[first + 1].task, task);
    assert_ne!(trace[first + 2].task, task, "grain must be 2 instructions");
    // Service pairs arrive in order: RM holds the most recent pair.
    assert_eq!(m.rm(0) % 2, 1, "pairs start at odd values (1, 3, ...)");
    assert_eq!(m.rm(1), m.rm(0) + 1);
    // And the emulator kept the remaining cycles.
    let s = m.stats();
    assert!(s.executed[0] > 0);
    assert!(s.executed[task.index()] >= 2);
    assert!(s.task_switches >= 2);
}

#[test]
fn preemption_preserves_emulator_state() {
    // The emulator increments T forever; a device periodically steals the
    // processor. After N total emulator instructions, T == N.
    let task = TaskId::new(12);
    let mut a = Assembler::new();
    a.label("emu");
    a.emit(nop().a(ASel::T).alu(AluOp::INC_A).load_t().goto_("emu"));
    a.label("io");
    a.emit(nop().ff_input().load_rm().rm(4));
    a.emit(nop().io_block().goto_("io"));
    let placed = a.place().unwrap();
    let mut dev = RateDevice::new(task, 30.0, 60.0, SynthPath::Slow);
    dev.set_words_per_service(1);
    dev.start();
    let mut m = DoradoBuilder::new()
        .microcode(placed)
        .device(Box::new(dev), 0x10, 2)
        .wire_ioaddress(task, 0x10)
        .task_entry(task, "io")
        .task_entry(T0, "emu")
        .build()
        .unwrap();
    let _ = m.run(3000);
    let s = m.stats();
    assert_eq!(u64::from(m.t(T0)), s.executed[0] % 65536);
    assert!(s.executed[task.index()] > 0, "device got service");
    assert!(
        s.executed[0] + s.executed[task.index()] + s.held[0] >= 2990,
        "no cycles vanish"
    );
}

#[test]
fn hold_cycles_can_be_stolen_by_other_tasks() {
    // Emulator fetches from uncached memory (long Hold); a device task
    // runs during the held cycles.
    let task = TaskId::new(9);
    let mut a = Assembler::new();
    a.label("emu");
    a.emit(nop().rm(1).a(ASel::FetchR)); // start fetch
    a.emit(nop().b(BSel::MemData).alu(AluOp::B).load_t()); // held on miss
    a.emit(nop().rm(1).a(ASel::Rm).const16(16).alu(AluOp::ADD).load_rm().goto_("emu"));
    a.label("io");
    a.emit(nop().ff_input().load_rm().rm(8));
    a.emit(nop().io_block().goto_("io"));
    let placed = a.place().unwrap();
    let mut dev = RateDevice::new(task, 100.0, 60.0, SynthPath::Slow);
    dev.set_words_per_service(1);
    dev.start();
    let mut m = DoradoBuilder::new()
        .microcode(placed)
        .device(Box::new(dev), 0x20, 2)
        .wire_ioaddress(task, 0x20)
        .task_entry(task, "io")
        .task_entry(T0, "emu")
        .build()
        .unwrap();
    m.set_rm(1, 0x1000);
    let _ = m.run(3000);
    let s = m.stats();
    assert!(s.held[0] > 100, "emulator must be held a lot");
    assert!(
        s.executed[task.index()] > 50,
        "device work proceeds during holds: got {}",
        s.executed[task.index()]
    );
}

#[test]
fn bypass_ablation_changes_semantics() {
    // T ← 5; T ← T + 1 immediately: with bypassing T = 6; without, the
    // second instruction reads the stale T (0) and T = 1.
    let program = |a: &mut Assembler| {
        a.emit(nop().const16(5).alu(AluOp::B).load_t());
        a.emit(nop().a(ASel::T).alu(AluOp::INC_A).load_t());
        a.label("fin");
        a.emit(nop().ff_halt().goto_("fin"));
    };
    let mut a1 = Assembler::new();
    program(&mut a1);
    let mut with = DoradoBuilder::new()
        .microcode(a1.place().unwrap())
        .bypass(true)
        .build()
        .unwrap();
    assert!(with.run(100).halted());
    assert_eq!(with.t(T0), 6);

    let mut a2 = Assembler::new();
    program(&mut a2);
    let mut without = DoradoBuilder::new()
        .microcode(a2.place().unwrap())
        .bypass(false)
        .build()
        .unwrap();
    assert!(without.run(100).halted());
    assert_eq!(without.t(T0), 1, "Model 0 reads the stale T");

    // The padded program is correct on the Model 0 — at one extra cycle.
    let mut a3 = Assembler::new();
    program(&mut a3);
    let padded = a3.program().pad_for_no_bypass();
    let mut fixed = DoradoBuilder::new()
        .microcode(padded.place().unwrap())
        .bypass(false)
        .build()
        .unwrap();
    let out = fixed.run(100);
    assert!(out.halted());
    assert_eq!(fixed.t(T0), 6);
}

#[test]
fn ifu_dispatch_executes_macroinstructions() {
    use dorado_ifu::{DecodeEntry, OperandKind};
    // Two opcodes: 0x01 n = T += n (one µinst!); 0xff = halt.
    let mut a = Assembler::new();
    a.label("spin");
    a.emit(nop().goto_("spin")); // address 0: trap for unknown opcodes
    a.label("op_add");
    a.emit(nop().a(ASel::IfuData).b(BSel::T).alu(AluOp::ADD).load_t().ifu_jump());
    a.label("op_halt");
    a.emit(nop().ff_halt().goto_("op_halt"));
    a.label("boot");
    a.emit(nop().ifu_jump()); // first dispatch
    let placed = a.place().unwrap();
    let add_entry = placed.address_of("op_add").unwrap();
    let halt_entry = placed.address_of("op_halt").unwrap();

    let mut m = DoradoBuilder::new()
        .microcode(placed)
        .task_entry(T0, "boot")
        .build()
        .unwrap();
    m.ifu_mut().set_decode_entry(
        0x01,
        DecodeEntry::new(add_entry).with_operand(OperandKind::Byte),
    );
    m.ifu_mut().set_decode_entry(0xff, DecodeEntry::new(halt_entry));
    // Code: ADD 3; ADD 4; ADD 10; HALT.
    let code: &[u8] = &[0x01, 3, 0x01, 4, 0x01, 10, 0xff, 0];
    for (i, pair) in code.chunks(2).enumerate() {
        let w = (Word::from(pair[0]) << 8) | Word::from(pair[1]);
        m.memory_mut().write_virt(VirtAddr::new(0x800 + i as u32), w);
    }
    m.ifu_mut().set_code_base(VirtAddr::new(0x800));
    let out = m.run(10_000);
    assert!(out.halted(), "{out:?}");
    assert_eq!(m.t(T0), 17);
    let s = m.stats();
    assert_eq!(s.macro_instructions, 4);
    // Warm execution is one microinstruction (= one cycle) per ADD.
    assert!(s.executed[0] < 100);
}

#[test]
fn wedged_microcode_is_detected() {
    // Consume an IFU operand that never exists.
    let _m = build(|a| {
        a.label("bad");
        a.emit(nop().a(ASel::IfuData).alu(AluOp::A).load_t().goto_("bad"));
    });
    let m = {
        let mut a = Assembler::new();
        a.label("bad");
        a.emit(nop().a(ASel::IfuData).alu(AluOp::A).load_t().goto_("bad"));
        DoradoBuilder::new()
            .microcode(a.place().unwrap())
            .wedge_limit(500)
            .build()
            .unwrap()
    };
    let mut m = m;
    let out = m.run(10_000);
    assert!(matches!(out, RunOutcome::Wedged { .. }), "{out:?}");
}

#[test]
fn grain3_mode_requires_explicit_notify() {
    // In NotifyGrain3 mode a task that never notifies keeps being
    // rescheduled (the device never drops its wakeup): the emulator
    // starves relative to OnDemand mode.
    let task = TaskId::new(10);
    let asm = || {
        let mut a = Assembler::new();
        a.label("emu");
        a.emit(nop().a(ASel::T).alu(AluOp::INC_A).load_t().goto_("emu"));
        a.label("io");
        a.emit(nop().ff_input().load_rm().rm(0));
        a.emit(nop().ff(FfOp::IoNotify));
        a.emit(nop().io_block().goto_("io"));
        a.place().unwrap()
    };
    let mk = |mode: TaskingMode| {
        let mut dev = RateDevice::new(task, 20.0, 60.0, SynthPath::Slow);
        dev.set_words_per_service(1);
        dev.start();
        let mut m = DoradoBuilder::new()
            .microcode(asm())
            .tasking(mode)
            .device(Box::new(dev), 0x40, 2)
            .wire_ioaddress(task, 0x40)
            .task_entry(task, "io")
            .task_entry(T0, "emu")
            .build()
            .unwrap();
        let _ = m.run(4000);
        m.stats()
    };
    let on_demand = mk(TaskingMode::OnDemand);
    let grain3 = mk(TaskingMode::NotifyGrain3);
    // The same service loop costs 3 instructions per word either way here,
    // but in grain-3 mode the io task still gets service (via IoNotify)
    // rather than wedging.
    assert!(grain3.executed[task.index()] > 0);
    assert!(on_demand.executed[task.index()] > 0);
    // Both modes leave the emulator the majority of cycles at this rate.
    assert!(on_demand.executed[0] > 2000, "{}", on_demand.executed[0]);
    assert!(grain3.executed[0] > 1500, "{}", grain3.executed[0]);
}

#[test]
fn microstore_is_writeable() {
    let mut m = build(|a| {
        a.label("fin");
        a.emit(nop().ff_halt().goto_("fin"));
    });
    let addr = MicroAddr::new(100);
    let word = m.read_microstore(MicroAddr::new(0));
    m.write_microstore(addr, word).unwrap();
    assert_eq!(m.read_microstore(addr), word);
}

#[test]
fn io_attention_branch() {
    // The network device raises attention at end of packet.
    use dorado_io::NetworkController;
    let task = TaskId::new(13);
    let mut a = Assembler::new();
    a.label("emu");
    a.emit(nop().goto_("emu"));
    a.label("io");
    // Read one word; if attention (packet done) write marker, else block.
    a.emit(nop().ff_input().load_rm().rm(0));
    a.emit(nop().branch(Cond::IoAtten, "done", "more"));
    a.label("more");
    a.emit(nop().io_block().goto_("io"));
    a.label("done");
    a.emit(nop().const16(0x77).alu(AluOp::B).load_rm().rm(15));
    a.emit(nop().io_block().goto_("io"));
    let placed = a.place().unwrap();
    let mut net = NetworkController::with_rate(task, 100.0, 60.0);
    net.inject_packet(vec![5, 6]);
    let mut m = DoradoBuilder::new()
        .microcode(placed)
        .device(Box::new(net), 0x30, 3)
        .wire_ioaddress(task, 0x30)
        .task_entry(task, "io")
        .task_entry(T0, "emu")
        .build()
        .unwrap();
    let _ = m.run(2000);
    assert_eq!(m.rm(15), 0x77, "attention branch must fire at packet end");
}
