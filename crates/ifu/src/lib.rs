//! The instruction fetch unit (IFU).
//!
//! "An instruction fetch unit in the Dorado fetches such a stream [of byte
//! codes], decodes them as instructions and operands, and provides the
//! necessary control and data information to the processor" (§3; the full
//! unit is the subject of a companion paper).  The processor paper depends
//! on three behaviours, all modeled here:
//!
//! * **dispatch**: "any microinstruction can specify [that it is] the last
//!   of a macroinstruction, in which case the successor address is supplied
//!   by the IFU" (§5.8) — [`Ifu::dispatch`];
//! * **operand delivery**: "IFUDATA has an operand of the current
//!   macroinstruction; as each operand is used, the IFU provides the next
//!   one" (§6.3.2) — [`Ifu::ifudata`];
//! * **holds**: when the IFU has not finished decoding (e.g. after a macro
//!   jump or a cache miss on its private port), the consuming
//!   microinstruction is held.
//!
//! The prefetcher owns a dedicated cache port on the
//! [`MemorySystem`] ("independent busses
//! communicate with the memory, IFU, and I/O systems", §4) and keeps a small
//! byte buffer ahead of the macro program counter.
//!
//! # Examples
//!
//! ```
//! use dorado_base::{MicroAddr, VirtAddr};
//! use dorado_ifu::{DecodeEntry, Ifu, OperandKind};
//! use dorado_mem::{MemConfig, MemorySystem};
//!
//! let mut mem = MemorySystem::new(MemConfig::default());
//! let mut ifu = Ifu::new();
//! // Opcode 0x01 takes one byte operand and enters microcode at 0o100.
//! ifu.set_decode_entry(
//!     0x01,
//!     DecodeEntry::new(MicroAddr::new(0o100)).with_operand(OperandKind::Byte),
//! );
//! // Code: opcode 0x01, operand 0x2a (packed big-endian into words).
//! mem.write_virt(VirtAddr::new(0), 0x012a);
//! ifu.jump(0);
//! while ifu.dispatch_peek().is_none() {
//!     ifu.tick(&mut mem);
//!     mem.tick();
//! }
//! let (entry, _membase) = ifu.dispatch().unwrap();
//! assert_eq!(entry, MicroAddr::new(0o100));
//! assert_eq!(ifu.ifudata(), Some(0x2a));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::VecDeque;

use dorado_base::snap::{Reader, SnapError, Snapshot, Writer};
use dorado_base::{MicroAddr, VirtAddr, Word};
use dorado_mem::MemorySystem;

/// How one macroinstruction operand is assembled from the byte stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OperandKind {
    /// One byte, zero-extended to 16 bits.
    Byte,
    /// One byte, sign-extended to 16 bits.
    SignedByte,
    /// Two bytes, big-endian, as one 16-bit word.
    WordPair,
}

impl OperandKind {
    /// How many instruction-stream bytes this operand consumes.
    pub fn bytes(self) -> usize {
        match self {
            OperandKind::Byte | OperandKind::SignedByte => 1,
            OperandKind::WordPair => 2,
        }
    }
}

/// One entry of the IFU's 256-entry decode table: where the opcode's
/// microcode starts and what operands follow it in the byte stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeEntry {
    entry: MicroAddr,
    operands: Vec<OperandKind>,
    membase: Option<u8>,
}

impl DecodeEntry {
    /// An entry dispatching to `entry` with no operands.
    pub fn new(entry: MicroAddr) -> Self {
        DecodeEntry {
            entry,
            operands: Vec::new(),
            membase: None,
        }
    }

    /// Selects the memory base register loaded at dispatch ("MEMBASE ...
    /// can also be loaded from the IFU at the start of a macroinstruction",
    /// §6.3.3) — how the emulators address locals, globals, and the flat
    /// data space without base-switching instructions.
    #[must_use]
    pub fn with_membase(mut self, membase: u8) -> Self {
        self.membase = Some(membase & 0x1f);
        self
    }

    /// The base register this opcode selects at dispatch, if any.
    pub fn membase(&self) -> Option<u8> {
        self.membase
    }

    /// Adds an operand (at most two are allowed, as on the real IFU).
    ///
    /// # Panics
    ///
    /// Panics if the entry already has two operands.
    #[must_use]
    pub fn with_operand(mut self, kind: OperandKind) -> Self {
        assert!(self.operands.len() < 2, "at most two operands per opcode");
        self.operands.push(kind);
        self
    }

    /// The microcode entry address.
    pub fn entry(&self) -> MicroAddr {
        self.entry
    }

    /// The operand descriptors.
    pub fn operands(&self) -> &[OperandKind] {
        &self.operands
    }

    /// Total instruction length in bytes (opcode + operands).
    pub fn length(&self) -> usize {
        1 + self.operands.iter().map(|o| o.bytes()).sum::<usize>()
    }
}

impl Default for DecodeEntry {
    /// An undefined opcode: dispatches to microstore address 0 (where the
    /// emulator's breakpoint/trap microcode conventionally lives).
    fn default() -> Self {
        DecodeEntry::new(MicroAddr::new(0))
    }
}

/// IFU statistics: the shared [`IfuActivity`] registry block
/// (dispatches, branch outcomes, prefetch-buffer fullness).
pub use dorado_base::IfuActivity as IfuCounters;

/// The instruction fetch unit.
#[derive(Debug, Clone)]
pub struct Ifu {
    /// Word address of the start of the code segment.
    code_base: VirtAddr,
    /// Macro PC as a byte offset from `code_base`.
    pc: u32,
    /// Prefetched bytes, front = next opcode byte.
    buffer: VecDeque<u8>,
    /// Byte offset of the next byte the prefetcher will request (its
    /// containing word is fetched; an odd offset skips the high byte).
    fetch_byte: u32,
    /// Words fetched but to be discarded (issued before a jump).
    discard: u32,
    /// Operands of the current (dispatched) macroinstruction.
    operands: VecDeque<Word>,
    table: Vec<DecodeEntry>,
    counters: IfuCounters,
    buffer_cap: usize,
}

impl Default for Ifu {
    fn default() -> Self {
        Self::new()
    }
}

impl Ifu {
    /// Creates an IFU with an empty buffer and a default decode table.
    pub fn new() -> Self {
        Ifu {
            code_base: VirtAddr::new(0),
            pc: 0,
            buffer: VecDeque::new(),
            fetch_byte: 0,
            discard: 0,
            operands: VecDeque::new(),
            table: vec![DecodeEntry::default(); 256],
            counters: IfuCounters::default(),
            buffer_cap: 6,
        }
    }

    /// Sets the word address of the code segment; resets the PC to 0.
    pub fn set_code_base(&mut self, base: VirtAddr) {
        self.code_base = base;
        self.jump(0);
    }

    /// The code segment base.
    pub fn code_base(&self) -> VirtAddr {
        self.code_base
    }

    /// The macro program counter (byte offset from the code base).
    pub fn pc(&self) -> u32 {
        self.pc
    }

    /// Installs a decode-table entry for `opcode`.
    pub fn set_decode_entry(&mut self, opcode: u8, entry: DecodeEntry) {
        self.table[usize::from(opcode)] = entry;
    }

    /// Reads the decode-table entry for `opcode`.
    pub fn decode_entry(&self, opcode: u8) -> &DecodeEntry {
        &self.table[usize::from(opcode)]
    }

    /// Statistics.
    pub fn counters(&self) -> &IfuCounters {
        &self.counters
    }

    /// Macro jump: PC ← `byte_addr`; the buffer refills from the new
    /// location (the `IfuLoadPc` FF operation).
    pub fn jump(&mut self, byte_addr: u32) {
        self.pc = byte_addr;
        self.fetch_byte = byte_addr;
        self.buffer.clear();
        self.operands.clear();
        self.counters.jumps += 1;
        // One word fetch may be in flight; its data is stale now.
        self.discard = 1;
    }

    /// Whether this tick has no prefetch work beyond occupancy accounting:
    /// the buffer is saturated (no room for a fetched word, so none will
    /// be issued), no fetch is in flight (so none can arrive), and there
    /// is no stale fetch to discard.  The quiescence invariant behind the
    /// [`Ifu::tick`] fast path.
    pub fn is_quiescent(&self, mem: &MemorySystem) -> bool {
        self.discard == 0
            && !mem.ifu_fetch_outstanding()
            && self.buffer.len() + 2 > self.buffer_cap
    }

    /// Advances the prefetch engine one microcycle.  Call once per machine
    /// cycle, before the processor's instruction executes.
    pub fn tick(&mut self, mem: &mut MemorySystem) {
        // Buffer-fullness accounting: mean occupancy and the fraction of
        // ticks on which the prefetcher was saturated (no room for a word).
        self.counters.ticks += 1;
        self.counters.buffer_bytes_accum += self.buffer.len() as u64;
        if self.buffer.len() + 2 > self.buffer_cap {
            self.counters.buffer_full_cycles += 1;
            // Saturated with nothing in flight and nothing to discard:
            // the rest of the tick is provably a no-op.
            if self.discard == 0 && !mem.ifu_fetch_outstanding() {
                return;
            }
        }
        // Collect arrived data.
        if let Some(word) = mem.ifu_data() {
            if self.discard > 0 {
                self.discard -= 1;
            } else {
                let hi = (word >> 8) as u8;
                let lo = (word & 0xff) as u8;
                // The refill point may be mid-word after an odd jump.
                if self.fetch_byte % 2 == 1 {
                    self.buffer.push_back(lo);
                } else {
                    self.buffer.push_back(hi);
                    self.buffer.push_back(lo);
                }
                // Round up to the next word boundary.
                self.fetch_byte = (self.fetch_byte / 2 + 1) * 2;
                self.counters.fetches += 1;
            }
        }
        if self.discard > 0 && !mem.ifu_fetch_outstanding() {
            // The stale in-flight fetch never existed (port was idle at
            // jump time); nothing to discard after all.
            self.discard = 0;
        }
        // Issue the next prefetch if there is room and the port is free.
        if self.discard == 0
            && !mem.ifu_fetch_outstanding()
            && self.buffer.len() + 2 <= self.buffer_cap
        {
            let word_addr = self.code_base.0 + self.fetch_byte / 2;
            let _ = mem.ifu_start_fetch(VirtAddr::new(word_addr));
        }
    }

    /// Folds `n` consecutive quiescent ticks into the occupancy counters
    /// in one call.  Only valid while [`Ifu::is_quiescent`] holds: each
    /// such [`Ifu::tick`] provably takes the saturated early-out, which
    /// touches nothing but the three counters updated here, so the fold
    /// is bit-identical to `n` individual ticks.  The compiled execution
    /// core uses this to hoist the prefetcher clock out of fused
    /// basic-block runs.
    #[inline]
    pub fn tick_quiescent_n(&mut self, n: u64) {
        debug_assert!(
            self.discard == 0 && self.buffer.len() + 2 > self.buffer_cap,
            "tick_quiescent_n on a non-quiescent IFU"
        );
        self.counters.ticks += n;
        self.counters.buffer_bytes_accum += self.buffer.len() as u64 * n;
        self.counters.buffer_full_cycles += n;
    }

    /// Whether a dispatch would succeed, and with which entry (does not
    /// consume anything).
    pub fn dispatch_peek(&self) -> Option<MicroAddr> {
        let &op = self.buffer.front()?;
        let entry = &self.table[usize::from(op)];
        if self.buffer.len() >= entry.length() {
            Some(entry.entry())
        } else {
            None
        }
    }

    /// Dispatches the next macroinstruction: consumes the opcode and its
    /// operand bytes, making the operands available via [`Ifu::ifudata`],
    /// and returns the microcode entry address plus the entry's MEMBASE
    /// selection.  `None` means the IFU is not ready and the `IFUJump`
    /// microinstruction must be held (§5.7).
    pub fn dispatch(&mut self) -> Option<(MicroAddr, Option<u8>)> {
        let &op = self.buffer.front()?;
        let entry = self.table[usize::from(op)].clone();
        if self.buffer.len() < entry.length() {
            return None;
        }
        self.buffer.pop_front();
        self.operands.clear();
        for kind in entry.operands() {
            let word = match kind {
                OperandKind::Byte => Word::from(self.buffer.pop_front().expect("checked")),
                OperandKind::SignedByte => {
                    let b = self.buffer.pop_front().expect("checked");
                    b as i8 as i16 as Word
                }
                OperandKind::WordPair => {
                    let hi = self.buffer.pop_front().expect("checked");
                    let lo = self.buffer.pop_front().expect("checked");
                    (Word::from(hi) << 8) | Word::from(lo)
                }
            };
            self.operands.push_back(word);
        }
        self.pc += entry.length() as u32;
        self.counters.dispatches += 1;
        Some((entry.entry(), entry.membase()))
    }

    /// Supplies the next operand of the current macroinstruction, or `None`
    /// (hold) if none remains unconsumed.
    pub fn ifudata(&mut self) -> Option<Word> {
        self.operands.pop_front()
    }

    /// Peeks the next operand without consuming it (the processor's hold
    /// check).
    pub fn peek_operand(&self) -> Option<Word> {
        self.operands.front().copied()
    }

    /// Operands not yet consumed for the current macroinstruction.
    pub fn operands_remaining(&self) -> usize {
        self.operands.len()
    }
}

impl Snapshot for Ifu {
    fn save(&self, w: &mut Writer) {
        w.tag(b"IFU ");
        w.u32(self.code_base.0);
        w.u32(self.pc);
        w.byte_seq(self.buffer.iter().copied());
        w.u32(self.fetch_byte);
        w.u32(self.discard);
        w.word_seq(self.operands.iter().copied());
        self.counters.save(w);
    }

    fn restore(&mut self, r: &mut Reader<'_>) -> Result<(), SnapError> {
        r.tag(b"IFU ")?;
        // The decode table is configuration, not dynamic state; it stays
        // with the live object.
        self.code_base = VirtAddr::new(r.u32()?);
        self.pc = r.u32()?;
        self.buffer = r.byte_seq()?.into();
        self.fetch_byte = r.u32()?;
        self.discard = r.u32()?;
        self.operands = r.word_seq()?.into();
        self.counters.restore(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dorado_mem::MemConfig;

    fn setup(code: &[u8]) -> (MemorySystem, Ifu) {
        let mut mem = MemorySystem::new(MemConfig::default());
        for (i, pair) in code.chunks(2).enumerate() {
            let hi = pair[0] as Word;
            let lo = *pair.get(1).unwrap_or(&0) as Word;
            mem.write_virt(VirtAddr::new(i as u32), (hi << 8) | lo);
        }
        let ifu = Ifu::new();
        (mem, ifu)
    }

    fn run_to_dispatch(mem: &mut MemorySystem, ifu: &mut Ifu) -> MicroAddr {
        for _ in 0..1000 {
            if let Some((e, _)) = ifu.dispatch() {
                return e;
            }
            ifu.tick(mem);
            mem.tick();
        }
        panic!("IFU never became ready");
    }

    #[test]
    fn dispatch_simple_opcode() {
        let (mut mem, mut ifu) = setup(&[0x05, 0x05]);
        ifu.set_decode_entry(0x05, DecodeEntry::new(MicroAddr::new(0o777)));
        ifu.jump(0);
        let e = run_to_dispatch(&mut mem, &mut ifu);
        assert_eq!(e, MicroAddr::new(0o777));
        assert_eq!(ifu.pc(), 1);
        assert_eq!(ifu.counters().dispatches, 1);
    }

    #[test]
    fn operands_are_delivered_in_order() {
        let (mut mem, mut ifu) = setup(&[0x10, 0xff, 0x22, 0x00]);
        ifu.set_decode_entry(
            0x10,
            DecodeEntry::new(MicroAddr::new(8))
                .with_operand(OperandKind::SignedByte)
                .with_operand(OperandKind::Byte),
        );
        ifu.jump(0);
        let _ = run_to_dispatch(&mut mem, &mut ifu);
        assert_eq!(ifu.operands_remaining(), 2);
        assert_eq!(ifu.ifudata(), Some(0xffff)); // sign-extended 0xff
        assert_eq!(ifu.ifudata(), Some(0x22));
        assert_eq!(ifu.ifudata(), None);
        assert_eq!(ifu.pc(), 3);
    }

    #[test]
    fn word_pair_operand() {
        let (mut mem, mut ifu) = setup(&[0x11, 0x12, 0x34, 0x00]);
        ifu.set_decode_entry(
            0x11,
            DecodeEntry::new(MicroAddr::new(16)).with_operand(OperandKind::WordPair),
        );
        ifu.jump(0);
        let _ = run_to_dispatch(&mut mem, &mut ifu);
        assert_eq!(ifu.ifudata(), Some(0x1234));
    }

    #[test]
    fn not_ready_right_after_jump() {
        let (mut mem, mut ifu) = setup(&[0x05]);
        ifu.set_decode_entry(0x05, DecodeEntry::new(MicroAddr::new(1)));
        ifu.jump(0);
        assert!(ifu.dispatch().is_none(), "buffer is empty after a jump");
        let mut waited = 0u64;
        while ifu.dispatch_peek().is_none() {
            ifu.tick(&mut mem);
            mem.tick();
            waited += 1;
            assert!(waited < 100);
        }
        // Cold cache: at least the miss penalty must have elapsed.
        assert!(waited >= MemConfig::default().miss_penalty);
    }

    #[test]
    fn jump_to_odd_byte_address() {
        // Code: [pad, opcode 0x07] in word 0, operand in word 1.
        let (mut mem, mut ifu) = setup(&[0x00, 0x07, 0x09, 0x00]);
        ifu.set_decode_entry(
            0x07,
            DecodeEntry::new(MicroAddr::new(32)).with_operand(OperandKind::Byte),
        );
        ifu.jump(1);
        let e = run_to_dispatch(&mut mem, &mut ifu);
        assert_eq!(e, MicroAddr::new(32));
        assert_eq!(ifu.ifudata(), Some(0x09));
        assert_eq!(ifu.pc(), 3);
    }

    #[test]
    fn sequential_dispatches_advance_pc() {
        let (mut mem, mut ifu) = setup(&[0x01, 0x02, 0x01, 0x02]);
        ifu.set_decode_entry(0x01, DecodeEntry::new(MicroAddr::new(4)));
        ifu.set_decode_entry(0x02, DecodeEntry::new(MicroAddr::new(6)));
        ifu.jump(0);
        assert_eq!(run_to_dispatch(&mut mem, &mut ifu), MicroAddr::new(4));
        assert_eq!(run_to_dispatch(&mut mem, &mut ifu), MicroAddr::new(6));
        assert_eq!(run_to_dispatch(&mut mem, &mut ifu), MicroAddr::new(4));
        assert_eq!(ifu.pc(), 3);
    }

    #[test]
    fn jump_discards_stale_prefetch() {
        let (mut mem, mut ifu) = setup(&[0x01, 0x01, 0x02, 0x02]);
        ifu.set_decode_entry(0x01, DecodeEntry::new(MicroAddr::new(4)));
        ifu.set_decode_entry(0x02, DecodeEntry::new(MicroAddr::new(6)));
        ifu.jump(0);
        // Let a fetch get in flight, then jump elsewhere before it lands.
        ifu.tick(&mut mem);
        ifu.jump(2);
        let e = run_to_dispatch(&mut mem, &mut ifu);
        assert_eq!(e, MicroAddr::new(6), "must not decode stale bytes");
    }

    #[test]
    fn code_base_offsets_fetches() {
        let mut mem = MemorySystem::new(MemConfig::default());
        mem.write_virt(VirtAddr::new(0x100), 0x0900);
        let mut ifu = Ifu::new();
        ifu.set_decode_entry(0x09, DecodeEntry::new(MicroAddr::new(40)));
        ifu.set_code_base(VirtAddr::new(0x100));
        assert_eq!(ifu.code_base(), VirtAddr::new(0x100));
        let e = run_to_dispatch(&mut mem, &mut ifu);
        assert_eq!(e, MicroAddr::new(40));
    }

    #[test]
    fn default_entry_traps_to_zero() {
        let (mut mem, mut ifu) = setup(&[0xee, 0x00]);
        ifu.jump(0);
        let e = run_to_dispatch(&mut mem, &mut ifu);
        assert_eq!(e, MicroAddr::new(0));
    }

    #[test]
    fn buffer_fullness_is_accounted() {
        let (mut mem, mut ifu) = setup(&[0x05, 0x05, 0x05, 0x05, 0x05, 0x05]);
        ifu.set_decode_entry(0x05, DecodeEntry::new(MicroAddr::new(1)));
        ifu.jump(0);
        // Run without dispatching: the buffer fills to capacity and stays
        // there, so the tail of the window must be all-full ticks.
        for _ in 0..200 {
            ifu.tick(&mut mem);
            mem.tick();
        }
        let c = ifu.counters();
        assert_eq!(c.ticks, 200);
        assert!(c.buffer_full_cycles > 0, "buffer must saturate: {c:?}");
        assert!(c.buffer_bytes_accum > 0);
        assert!(c.mean_buffer_bytes() > 0.0);
        assert!(c.buffer_full_fraction() > 0.5, "{}", c.buffer_full_fraction());
        assert_eq!(c.jumps, 1);
    }

    #[test]
    fn snapshot_mid_prefetch_resumes_identically() {
        use dorado_base::snap::{restore_image, save_image};
        let (mut mem, mut ifu) = setup(&[0x10, 0xff, 0x22, 0x05, 0x05, 0x00]);
        ifu.set_decode_entry(
            0x10,
            DecodeEntry::new(MicroAddr::new(8))
                .with_operand(OperandKind::SignedByte)
                .with_operand(OperandKind::Byte),
        );
        ifu.set_decode_entry(0x05, DecodeEntry::new(MicroAddr::new(1)));
        ifu.jump(0);
        // Stop mid-prefetch, with bytes buffered and possibly a fetch in
        // flight on the memory side.
        for _ in 0..3 {
            ifu.tick(&mut mem);
            mem.tick();
        }
        let ifu_img = save_image(&ifu);
        let mem_img = save_image(&mem);

        // The restored IFU keeps its own (live) decode table.
        let mut ifu2 = Ifu::new();
        ifu2.set_decode_entry(
            0x10,
            DecodeEntry::new(MicroAddr::new(8))
                .with_operand(OperandKind::SignedByte)
                .with_operand(OperandKind::Byte),
        );
        ifu2.set_decode_entry(0x05, DecodeEntry::new(MicroAddr::new(1)));
        restore_image(&mut ifu2, &ifu_img).unwrap();
        let mut mem2 = MemorySystem::new(MemConfig::default());
        restore_image(&mut mem2, &mem_img).unwrap();

        assert_eq!(run_to_dispatch(&mut mem, &mut ifu), MicroAddr::new(8));
        assert_eq!(run_to_dispatch(&mut mem2, &mut ifu2), MicroAddr::new(8));
        assert_eq!(ifu.ifudata(), ifu2.ifudata());
        assert_eq!(ifu.ifudata(), ifu2.ifudata());
        assert_eq!(ifu.pc(), ifu2.pc());
        assert_eq!(run_to_dispatch(&mut mem, &mut ifu), MicroAddr::new(1));
        assert_eq!(run_to_dispatch(&mut mem2, &mut ifu2), MicroAddr::new(1));
        assert_eq!(save_image(&ifu), save_image(&ifu2));
    }

    #[test]
    #[should_panic(expected = "two operands")]
    fn at_most_two_operands() {
        let _ = DecodeEntry::new(MicroAddr::new(0))
            .with_operand(OperandKind::Byte)
            .with_operand(OperandKind::Byte)
            .with_operand(OperandKind::Byte);
    }
}
