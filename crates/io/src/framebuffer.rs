//! The monitor on the end of the display cable: a fixed-geometry bitmap
//! surface the [`DisplayController`](crate::DisplayController) paints one
//! word at a time as its FIFO drains at the video rate.
//!
//! The Dorado's display controller (§7 of the paper) is a pure bandwidth
//! device: microcode fetches 16-word munches from the bitmap in memory
//! and the monitor consumes them serially.  The `Framebuffer` models the
//! monitor side — the raster that those bits become.  Every
//! `width_words × lines` words painted completes one *field*; the frame
//! is hashed (CRC64) into a log so scripted scenarios can pin raster
//! output byte-for-byte in golden tests, and the surface can be dumped as
//! ASCII art, PBM, or PNG for humans.
//!
//! Bit convention (shared with bitblt): bit 0 of the raster is the **most
//! significant bit of the first word** — display order, the order the
//! serializer shifts bits out to the monitor.

use dorado_base::crc::{adler32, crc32, crc64_words, Crc64};
use dorado_base::snap::{Reader, SnapError, Writer};
use dorado_base::Word;

/// Cap on the retained hash log: long soaks keep the newest hashes
/// without growing unboundedly.
const HASH_LOG_LIMIT: usize = 1 << 16;

/// A fixed-geometry 1-bit raster surface with per-field CRC64 hashing.
#[derive(Debug, Clone)]
pub struct Framebuffer {
    width_words: u16,
    lines: u16,
    pixels: Vec<Word>,
    cursor: usize,
    fields: u64,
    hash_log: Vec<u64>,
    running: Crc64,
}

impl Framebuffer {
    /// A dark surface of `width_words × 16` pixels by `lines` scanlines.
    ///
    /// # Panics
    /// Panics on a degenerate geometry (zero words or zero lines).
    #[must_use]
    pub fn new(width_words: u16, lines: u16) -> Self {
        assert!(width_words > 0 && lines > 0, "degenerate framebuffer geometry");
        Framebuffer {
            width_words,
            lines,
            pixels: vec![0; usize::from(width_words) * usize::from(lines)],
            cursor: 0,
            fields: 0,
            hash_log: Vec::new(),
            running: Crc64::new(),
        }
    }

    /// Raster width in words.
    #[must_use]
    pub fn width_words(&self) -> u16 {
        self.width_words
    }

    /// Raster width in pixels.
    #[must_use]
    pub fn width_pixels(&self) -> usize {
        usize::from(self.width_words) * 16
    }

    /// Number of scanlines.
    #[must_use]
    pub fn lines(&self) -> u16 {
        self.lines
    }

    /// Words per field.
    #[must_use]
    pub fn field_words(&self) -> usize {
        self.pixels.len()
    }

    /// Completed fields since power-on.
    #[must_use]
    pub fn fields(&self) -> u64 {
        self.fields
    }

    /// Scan position within the current field, in words.
    #[must_use]
    pub fn cursor(&self) -> usize {
        self.cursor
    }

    /// The surface contents, row-major, one word = 16 pixels.
    #[must_use]
    pub fn pixels(&self) -> &[Word] {
        &self.pixels
    }

    /// CRC64 hashes of completed fields, oldest first (bounded log).
    #[must_use]
    pub fn hashes(&self) -> &[u64] {
        &self.hash_log
    }

    /// Paint the next word of the raster.  Returns `true` when this word
    /// completed a field (the caller should enter vertical retrace).
    pub fn push(&mut self, w: Word) -> bool {
        self.pixels[self.cursor] = w;
        self.step(w)
    }

    /// Advance the scan position without painting — the raster marches on
    /// during a FIFO underrun and the monitor keeps whatever was there.
    /// Returns `true` when the field completed.
    pub fn advance(&mut self) -> bool {
        let stale = self.pixels[self.cursor];
        self.step(stale)
    }

    fn step(&mut self, scanned: Word) -> bool {
        self.running.update_word(scanned);
        self.cursor += 1;
        if self.cursor == self.pixels.len() {
            self.cursor = 0;
            self.fields += 1;
            if self.hash_log.len() == HASH_LOG_LIMIT {
                self.hash_log.remove(0);
            }
            self.hash_log.push(self.running.finish());
            self.running = Crc64::new();
            true
        } else {
            false
        }
    }

    /// CRC64 of the surface as it stands now (not of a scanned field).
    #[must_use]
    pub fn surface_hash(&self) -> u64 {
        crc64_words(&self.pixels)
    }

    /// Whether pixel (`x`, `y`) is lit.  Display bit order: `x = 0` is
    /// the MSB of the first word of row `y`.
    #[must_use]
    pub fn pixel(&self, x: usize, y: usize) -> bool {
        let w = self.pixels[y * usize::from(self.width_words) + x / 16];
        w & (0x8000 >> (x % 16)) != 0
    }

    /// The raster as ASCII art, `#` for ink and `.` for background —
    /// good enough to eyeball a splash screen in a terminal.
    #[must_use]
    pub fn to_ascii(&self) -> String {
        let mut out = String::with_capacity((self.width_pixels() + 1) * usize::from(self.lines));
        for y in 0..usize::from(self.lines) {
            for x in 0..self.width_pixels() {
                out.push(if self.pixel(x, y) { '#' } else { '.' });
            }
            out.push('\n');
        }
        out
    }

    /// The raster as a binary PBM (P4) image; set bits are black ink.
    /// PBM packs each row MSB-first, which is exactly the display word
    /// order, so rows serialize as big-endian word bytes.
    #[must_use]
    pub fn to_pbm(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(
            format!("P4\n{} {}\n", self.width_pixels(), self.lines).as_bytes(),
        );
        for &w in &self.pixels {
            out.extend_from_slice(&w.to_be_bytes());
        }
        out
    }

    /// The raster as a 1-bit grayscale PNG.  Hand-rolled: stored
    /// (uncompressed) deflate blocks inside a zlib stream, so the encoder
    /// needs no external dependency.  Set bits render as ink (black).
    #[must_use]
    pub fn to_png(&self) -> Vec<u8> {
        // Raw scanline data: one filter byte (0 = None) per row, then the
        // row's pixels packed 8 per byte, MSB first.  PNG bit depth 1
        // grayscale maps 0 = black, so invert: ink (set bit) -> 0.
        let row_bytes = usize::from(self.width_words) * 2;
        let mut raw = Vec::with_capacity(usize::from(self.lines) * (row_bytes + 1));
        for y in 0..usize::from(self.lines) {
            raw.push(0u8);
            for xw in 0..usize::from(self.width_words) {
                let w = !self.pixels[y * usize::from(self.width_words) + xw];
                raw.extend_from_slice(&w.to_be_bytes());
            }
        }

        // zlib wrapper: CMF/FLG, stored deflate blocks, adler32 trailer.
        let mut z = vec![0x78u8, 0x01];
        let mut rest = &raw[..];
        loop {
            let take = rest.len().min(0xFFFF);
            let (chunk, tail) = rest.split_at(take);
            let last = tail.is_empty();
            z.push(u8::from(last));
            z.extend_from_slice(&(take as u16).to_le_bytes());
            z.extend_from_slice(&(!(take as u16)).to_le_bytes());
            z.extend_from_slice(chunk);
            if last {
                break;
            }
            rest = tail;
        }
        z.extend_from_slice(&adler32(&raw).to_be_bytes());

        let mut png = Vec::new();
        png.extend_from_slice(&[0x89, b'P', b'N', b'G', 0x0D, 0x0A, 0x1A, 0x0A]);
        let mut chunk = |kind: &[u8; 4], data: &[u8]| {
            png.extend_from_slice(&(data.len() as u32).to_be_bytes());
            png.extend_from_slice(kind);
            png.extend_from_slice(data);
            let mut body = Vec::with_capacity(4 + data.len());
            body.extend_from_slice(kind);
            body.extend_from_slice(data);
            png.extend_from_slice(&crc32(&body).to_be_bytes());
        };
        let mut ihdr = Vec::new();
        ihdr.extend_from_slice(&(self.width_pixels() as u32).to_be_bytes());
        ihdr.extend_from_slice(&u32::from(self.lines).to_be_bytes());
        // bit depth 1, color type 0 (grayscale), deflate, filter 0, no interlace
        ihdr.extend_from_slice(&[1, 0, 0, 0, 0]);
        chunk(b"IHDR", &ihdr);
        chunk(b"IDAT", &z);
        chunk(b"IEND", &[]);
        png
    }

    /// Serialize the surface into a snapshot stream.  The running
    /// mid-field CRC state is not stored: it is recomputed from the
    /// surface prefix on restore, so images stay a pure function of the
    /// architectural state.
    pub fn save(&self, w: &mut Writer) {
        w.tag(b"FRMB");
        w.u16(self.width_words);
        w.u16(self.lines);
        w.word_seq(self.pixels.iter().copied());
        w.u64(self.cursor as u64);
        w.u64(self.fields);
        w.len(self.hash_log.len());
        for &h in &self.hash_log {
            w.u64(h);
        }
    }

    /// Restore a surface from a snapshot stream.
    ///
    /// # Errors
    /// Fails on a malformed stream or degenerate geometry.
    pub fn restore(r: &mut Reader) -> Result<Self, SnapError> {
        r.tag(b"FRMB")?;
        let width_words = r.u16()?;
        let lines = r.u16()?;
        if width_words == 0 || lines == 0 {
            return Err(SnapError::Mismatch { what: "framebuffer geometry" });
        }
        let pixels = r.word_seq()?;
        if pixels.len() != usize::from(width_words) * usize::from(lines) {
            return Err(SnapError::Mismatch { what: "framebuffer surface size" });
        }
        let cursor = r.u64()? as usize;
        if cursor >= pixels.len() {
            return Err(SnapError::Mismatch { what: "framebuffer cursor" });
        }
        let fields = r.u64()?;
        let n = r.len()?;
        if n > HASH_LOG_LIMIT {
            return Err(SnapError::Mismatch { what: "framebuffer hash log" });
        }
        let mut hash_log = Vec::with_capacity(n);
        for _ in 0..n {
            hash_log.push(r.u64()?);
        }
        let mut running = Crc64::new();
        for &w in &pixels[..cursor] {
            running.update_word(w);
        }
        Ok(Framebuffer {
            width_words,
            lines,
            pixels,
            cursor,
            fields,
            hash_log,
            running,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dorado_base::crc::crc64_words;

    #[test]
    fn field_completion_hashes_the_scanned_words() {
        let mut fb = Framebuffer::new(2, 2);
        let words = [0x8000u16, 0x0001, 0xFFFF, 0x1234];
        for (i, &w) in words.iter().enumerate() {
            let done = fb.push(w);
            assert_eq!(done, i == 3, "field boundary at word {i}");
        }
        assert_eq!(fb.fields(), 1);
        assert_eq!(fb.hashes(), &[crc64_words(&words)]);
        assert_eq!(fb.cursor(), 0);
    }

    #[test]
    fn underrun_advance_keeps_stale_pixels() {
        let mut fb = Framebuffer::new(1, 2);
        fb.push(0xAAAA);
        fb.push(0x5555);
        // Second field: one real word, one underrun slot.
        fb.push(0x00FF);
        assert!(fb.advance());
        assert_eq!(fb.pixels(), &[0x00FF, 0x5555]);
        assert_eq!(fb.fields(), 2);
        assert_eq!(fb.hashes()[1], crc64_words(&[0x00FF, 0x5555]));
    }

    #[test]
    fn pixel_uses_display_bit_order() {
        let mut fb = Framebuffer::new(1, 1);
        fb.push(0x8001);
        assert!(fb.pixel(0, 0), "bit 0 is the word MSB");
        assert!(fb.pixel(15, 0), "bit 15 is the word LSB");
        assert!(!fb.pixel(1, 0));
    }

    #[test]
    fn ascii_dump_shape() {
        let mut fb = Framebuffer::new(1, 2);
        fb.push(0xF000);
        fb.push(0x000F);
        assert_eq!(fb.to_ascii(), "####............\n............####\n");
    }

    #[test]
    fn pbm_has_header_and_rows() {
        let mut fb = Framebuffer::new(2, 1);
        fb.push(0x8000);
        fb.push(0x0001);
        let pbm = fb.to_pbm();
        assert!(pbm.starts_with(b"P4\n32 1\n"));
        assert_eq!(&pbm[8..], &[0x80, 0x00, 0x00, 0x01]);
    }

    #[test]
    fn png_is_structurally_sound() {
        let mut fb = Framebuffer::new(2, 2);
        for w in [0xAAAAu16, 0x5555, 0xFF00, 0x00FF] {
            fb.push(w);
        }
        let png = fb.to_png();
        assert_eq!(&png[..8], &[0x89, b'P', b'N', b'G', 0x0D, 0x0A, 0x1A, 0x0A]);
        assert_eq!(&png[12..16], b"IHDR");
        assert!(png.windows(4).any(|w| w == b"IDAT"));
        assert!(png.ends_with(&{
            let mut tail = Vec::new();
            tail.extend_from_slice(b"IEND");
            tail.extend_from_slice(&crc32(b"IEND").to_be_bytes());
            tail
        }));
    }

    #[test]
    fn snapshot_round_trip_mid_field() {
        let mut fb = Framebuffer::new(2, 2);
        fb.push(1);
        fb.push(2);
        fb.push(3);
        fb.push(4);
        fb.push(0x0F0F); // mid-field: cursor 1, running CRC live
        let mut w = Writer::new();
        fb.save(&mut w);
        let bytes = w.finish();
        let mut r = Reader::open(&bytes).unwrap();
        let mut back = Framebuffer::restore(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(back.cursor(), fb.cursor());
        assert_eq!(back.fields(), fb.fields());
        assert_eq!(back.hashes(), fb.hashes());
        // The restored running CRC continues identically.
        for w in [7u16, 8, 9] {
            fb.push(w);
            back.push(w);
        }
        assert_eq!(back.hashes(), fb.hashes());
    }
}
