//! The display controller (§7, Figure 8).
//!
//! "The Dorado supports raster scan displays which are refreshed from a full
//! bitmap in main storage."  The controller consumes bitmap words at the
//! monitor's dot rate from a munch FIFO kept full by fast-I/O microcode
//! ("the fast I/O microcode for the display takes only two instructions to
//! transfer a 16 word block of data from memory to the device").  Control
//! functions (start/stop, mode) arrive over the slow I/O bus — the
//! dual-path structure of Figure 8.
//!
//! With a [`Framebuffer`] attached the controller becomes a full monitor
//! model: drained words paint a fixed-geometry raster, and completing a
//! field enters **vertical retrace** — painting pauses (blanking), the
//! attention line rises so the fast-I/O microcode can branch off its
//! munch loop (`IOAtten`, §4.2's attention path), rewind its bitmap
//! pointer, and acknowledge the field via `IONotify`.  The ack flushes
//! the FIFO (bits fetched past the field boundary were never displayed)
//! and resumes scanning.  Without a framebuffer the controller behaves
//! exactly as before: a pure bandwidth sink.

use crate::{Device, Framebuffer, RatePacer};
use dorado_base::snap::{Reader, SnapError, Snapshot, Writer};
use dorado_base::{ClockConfig, TaskId, Word, MUNCH_WORDS};
use std::collections::VecDeque;

/// Registers: 0 = control (1 = start refresh, 0 = stop), 1 = status.
#[derive(Debug)]
pub struct DisplayController {
    task: TaskId,
    pacer: RatePacer,
    fifo: VecDeque<Word>,
    fifo_depth_munches: usize,
    active: bool,
    /// FIFO slots promised to in-flight fast-I/O service.
    committed: usize,
    /// Words actually painted (drained at the dot rate).
    pub painted: u64,
    /// Words the monitor needed but the FIFO could not supply.
    pub underruns: u64,
    /// The most recently painted words, kept for verification (bounded).
    screen: Vec<Word>,
    screen_limit: usize,
    /// The monitor raster, when one is attached.
    fb: Option<Framebuffer>,
    /// In vertical retrace: a field just completed and the microcode has
    /// not yet acknowledged it.  Only ever true with a framebuffer.
    retrace: bool,
    /// Remaining blanking paint events after a field acknowledge: the
    /// beam is still flying back, giving the microcode time to refill
    /// the FIFO before the first visible word of the new field.
    blank: u64,
}

impl DisplayController {
    /// The default dot rate in Mbit/s (a modest monitor; §3 quotes device
    /// bandwidths of 20–400 Mbit/s).
    pub const DEFAULT_MBPS: f64 = 100.0;

    /// Creates a display wired to `task` at the default dot rate on the
    /// default (multiwire, 60 ns) clock.
    pub fn new(task: TaskId) -> Self {
        Self::with_clock(task, Self::DEFAULT_MBPS, &ClockConfig::default())
    }

    /// Creates a display with an explicit dot rate and cycle time.
    pub fn with_rate(task: TaskId, mbps: f64, cycle_ns: f64) -> Self {
        Self::with_clock(task, mbps, &ClockConfig::with_cycle_ns(cycle_ns))
    }

    /// Creates a display whose dot rate is paced against `clock`.
    pub fn with_clock(task: TaskId, mbps: f64, clock: &ClockConfig) -> Self {
        DisplayController {
            task,
            pacer: RatePacer::for_clock(mbps, clock),
            fifo: VecDeque::new(),
            fifo_depth_munches: 4,
            active: false,
            committed: 0,
            painted: 0,
            underruns: 0,
            screen: Vec::new(),
            screen_limit: 1 << 16,
            fb: None,
            retrace: false,
            blank: 0,
        }
    }

    /// Paint events granted as post-retrace blanking: vertical flyback
    /// takes a few percent of the field time, which is exactly the head
    /// start the fast-I/O microcode needs to refill the flushed FIFO
    /// before the first visible word (two munches at the dot rate).
    pub const BLANK_EVENTS: u64 = 2 * MUNCH_WORDS as u64;

    /// Whether refresh is running.
    pub fn active(&self) -> bool {
        self.active
    }

    /// Starts refresh (equivalent to slow-I/O control register write).
    pub fn start(&mut self) {
        self.active = true;
    }

    /// Stops refresh.
    pub fn stop(&mut self) {
        self.active = false;
    }

    /// The captured screen words (bounded; oldest first).
    pub fn screen(&self) -> &[Word] {
        &self.screen
    }

    /// Attach a monitor raster; drained words paint it from its current
    /// scan position onward.
    pub fn set_framebuffer(&mut self, fb: Framebuffer) {
        self.fb = Some(fb);
    }

    /// The attached raster, if any.
    pub fn framebuffer(&self) -> Option<&Framebuffer> {
        self.fb.as_ref()
    }

    /// Whether the monitor is in vertical retrace (field complete,
    /// awaiting the microcode's acknowledge).
    pub fn in_retrace(&self) -> bool {
        self.retrace
    }

    /// Whether the dot-rate pacer runs: the *single* gate used by tick,
    /// skip, and snapshot projection alike.  A stopped display freezes
    /// the pacer in every mode and in the snapshot image, so a stopped
    /// display's state round-trips exactly like a running one's.
    fn pacer_runs(&self) -> bool {
        self.active
    }

    /// Whether a whole munch of FIFO space is free and unpromised.
    fn fifo_space(&self) -> bool {
        self.fifo.len() + self.committed + 2 * MUNCH_WORDS
            <= self.fifo_depth_munches * MUNCH_WORDS
    }

    /// The microcode's field acknowledge (delivered over `IONotify`):
    /// leave retrace, discard bits fetched past the field boundary, and
    /// resume scanning the new field.
    fn field_ack(&mut self) {
        self.retrace = false;
        self.fifo.clear();
        self.committed = 0;
        self.blank = Self::BLANK_EVENTS;
    }

    /// One dot-clock paint event.  During retrace the monitor is blanking:
    /// the event is a pure no-op (no FIFO drain, no underrun).  Just after
    /// an acknowledge the beam is still flying back: those events burn the
    /// blanking allowance instead of painting.
    fn paint_event(&mut self) {
        if self.retrace {
            return;
        }
        if self.blank > 0 {
            self.blank -= 1;
            return;
        }
        match self.fifo.pop_front() {
            Some(w) => {
                self.painted += 1;
                if self.screen.len() < self.screen_limit {
                    self.screen.push(w);
                }
                if let Some(fb) = &mut self.fb {
                    if fb.push(w) {
                        self.retrace = true;
                    }
                }
            }
            None => {
                self.underruns += 1;
                if let Some(fb) = &mut self.fb {
                    if fb.advance() {
                        self.retrace = true;
                    }
                }
            }
        }
    }

    /// [`Snapshot::save`] with the pacer projected over `pending` skipped
    /// quiescent cycles (see [`Device::snapshot_save`]).  The projection
    /// applies exactly when [`Self::pacer_runs`] — the same predicate that
    /// gates `tick` and `skip` — so images never depend on whether the
    /// display was stopped, retracing, or running when they were taken.
    fn save_projected(&self, w: &mut Writer, pending: u64) {
        w.tag(b"DISP");
        w.u8(self.task.number());
        let pacer = if self.pacer_runs() {
            self.pacer.advanced(pending)
        } else {
            self.pacer
        };
        pacer.save(w);
        w.word_seq(self.fifo.iter().copied());
        w.bool(self.active);
        w.u64(self.committed as u64);
        w.u64(self.painted);
        w.u64(self.underruns);
        w.word_seq(self.screen.iter().copied());
        w.bool(self.retrace);
        w.u64(self.blank);
        match &self.fb {
            Some(fb) => {
                w.bool(true);
                fb.save(w);
            }
            None => w.bool(false),
        }
    }
}

impl Device for DisplayController {
    fn name(&self) -> &str {
        "display"
    }

    fn task(&self) -> TaskId {
        self.task
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn wakeup(&self) -> bool {
        // Wake the fast-I/O task whenever a whole munch of FIFO space is
        // free (and not already promised) and refresh is running.  One
        // extra munch of headroom absorbs the ghost prefetch a preempted
        // two-instruction service can trigger on resume (§6.2.1's minimum
        // grain rule).  Retrace also wakes the task: it must reach its
        // IOAtten branch to service the field boundary.
        self.active && (self.fifo_space() || self.retrace)
    }

    fn observe_next(&mut self) {
        // Only a space wakeup promises FIFO slots; a retrace wakeup
        // carries no data transfer.
        if self.active && self.fifo_space() {
            self.committed += MUNCH_WORDS;
        }
    }

    fn notify(&mut self) {
        // IONotify doubles as the field acknowledge: during retrace it
        // resumes scanning; otherwise it keeps the legacy meaning (a NEXT
        // observation).
        if self.retrace {
            self.field_ack();
        } else {
            self.observe_next();
        }
    }

    fn tick(&mut self) {
        if !self.pacer_runs() {
            return;
        }
        for _ in 0..self.pacer.step() {
            self.paint_event();
        }
    }

    fn input(&mut self, reg: Word) -> Word {
        match reg {
            1 => self.fifo.len() as Word,
            _ => u16::from(self.active),
        }
    }

    fn output(&mut self, reg: Word, word: Word) {
        if reg == 0 {
            self.active = word != 0;
        }
    }

    fn accept_munch(&mut self, munch: &[Word; MUNCH_WORDS]) {
        self.committed = self.committed.saturating_sub(MUNCH_WORDS);
        for &w in munch {
            self.fifo.push_back(w);
        }
    }

    fn attention(&self) -> bool {
        // The IOAtten line is the field-boundary signal: the munch loop
        // branches off to its rewind stanza when it sees it.
        self.retrace
    }

    fn next_due(&self, now: u64) -> Option<u64> {
        // A stopped display's tick is a pure no-op (it does not even step
        // the pacer).  During retrace the pacer free-runs but every event
        // is a blanking no-op, so the device is quiescent until the
        // microcode's acknowledge arrives (an external access).  Only a
        // running, scanning display changes state — at its next paint
        // event.
        if !self.active || self.retrace {
            return None;
        }
        self.pacer.cycles_until_event().map(|k| now + k - 1)
    }

    fn skip(&mut self, cycles: u64) {
        if self.pacer_runs() {
            self.pacer = self.pacer.advanced(cycles);
        }
    }

    fn stable_span(&self, _now: u64) -> u64 {
        // A stopped display's tick is a no-op; a retracing one is blanking
        // (quiescent until the microcode's acknowledge, an external
        // access).  Either way the lines are frozen indefinitely.
        if !self.active || self.retrace {
            return u64::MAX;
        }
        // Scanning: every paint event past the blanking allowance drains
        // one FIFO word (or underruns) and advances the raster one word.
        // The lines can only move when
        //   (a) the drain frees a whole unpromised munch of FIFO space —
        //       the wakeup line rises — or
        //   (b) the beam reaches the field boundary — retrace raises both
        //       attention and wakeup.
        // Count paint events until the earlier of the two, then convert to
        // cycles with the pacer's closed form.  If space is already free
        // the wakeup is up and pure draining cannot take it down again, so
        // (a) never fires from a tick.
        let backlog = self.fifo.len() + self.committed;
        let space_at = (self.fifo_depth_munches - 2) * MUNCH_WORDS;
        let pops_until_space = if backlog > space_at {
            let need = backlog - space_at;
            if need <= self.fifo.len() {
                need as u64
            } else {
                // The promised slots alone exceed the threshold: draining
                // the whole FIFO cannot free space, only an external
                // munch delivery changes the picture.
                u64::MAX
            }
        } else {
            u64::MAX
        };
        let until_boundary = match &self.fb {
            Some(fb) => (fb.field_words() - fb.cursor()) as u64,
            None => u64::MAX,
        };
        let events = pops_until_space
            .min(until_boundary)
            .saturating_add(self.blank);
        if events == u64::MAX {
            return u64::MAX;
        }
        match self.pacer.cycles_until_events(events) {
            // The tick on which the line-moving event fires is unsafe;
            // everything strictly before it is fair game.
            Some(k) => k - 1,
            None => u64::MAX,
        }
    }

    fn snapshot_save(&self, w: &mut Writer, pending: u64) {
        self.save_projected(w, pending);
    }

    fn snapshot_restore(&mut self, r: &mut Reader<'_>) -> Result<(), SnapError> {
        Snapshot::restore(self, r)
    }
}

impl Snapshot for DisplayController {
    fn save(&self, w: &mut Writer) {
        self.save_projected(w, 0);
    }

    fn restore(&mut self, r: &mut Reader<'_>) -> Result<(), SnapError> {
        r.tag(b"DISP")?;
        if r.u8()? != self.task.number() {
            return Err(SnapError::Mismatch {
                what: "display task",
            });
        }
        self.pacer.restore(r)?;
        self.fifo = r.word_seq()?.into();
        self.active = r.bool()?;
        self.committed = r.u64()? as usize;
        self.painted = r.u64()?;
        self.underruns = r.u64()?;
        self.screen = r.word_seq()?;
        self.retrace = r.bool()?;
        self.blank = r.u64()?;
        self.fb = if r.bool()? {
            Some(Framebuffer::restore(r)?)
        } else {
            None
        };
        if self.retrace && self.fb.is_none() {
            return Err(SnapError::Mismatch {
                what: "display retrace without framebuffer",
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dorado_base::snap::{restore_image, save_image};

    fn display() -> DisplayController {
        DisplayController::with_rate(TaskId::new(14), 100.0, 60.0)
    }

    fn monitor() -> DisplayController {
        let mut d = display();
        d.set_framebuffer(Framebuffer::new(2, 2));
        d
    }

    #[test]
    fn wakeup_tracks_fifo_space() {
        let mut d = display();
        assert!(!d.wakeup(), "inactive display must not wake its task");
        d.start();
        assert!(d.wakeup());
        for _ in 0..4 {
            d.accept_munch(&[7; MUNCH_WORDS]);
        }
        assert!(!d.wakeup(), "full FIFO");
    }

    #[test]
    fn painting_drains_fifo_at_rate() {
        let mut d = display();
        d.start();
        d.accept_munch(&[42; MUNCH_WORDS]);
        // 100 Mbit/s at 60 ns = 0.375 words/cycle: 16 words in ~43 cycles.
        for _ in 0..43 {
            d.tick();
        }
        assert_eq!(d.painted, 16);
        assert_eq!(d.underruns, 0);
        assert!(d.screen().iter().all(|&w| w == 42));
    }

    #[test]
    fn starvation_counts_underruns() {
        let mut d = display();
        d.start();
        for _ in 0..100 {
            d.tick();
        }
        assert!(d.underruns > 0);
        assert_eq!(d.painted, 0);
    }

    #[test]
    fn slow_io_control_path() {
        let mut d = display();
        d.output(0, 1);
        assert!(d.active());
        assert_eq!(d.input(0), 1);
        d.accept_munch(&[1; MUNCH_WORDS]);
        assert_eq!(d.input(1), MUNCH_WORDS as Word);
        d.output(0, 0);
        assert!(!d.active());
    }

    #[test]
    fn field_completion_enters_retrace_and_raises_attention() {
        let mut d = monitor();
        d.start();
        d.accept_munch(&[0xBEEF; MUNCH_WORDS]);
        let mut ticks = 0;
        while !d.in_retrace() {
            d.tick();
            ticks += 1;
            assert!(ticks < 1_000, "field never completed");
        }
        assert!(d.attention());
        assert_eq!(d.framebuffer().unwrap().fields(), 1);
        assert_eq!(d.painted, 4, "2x2 raster is 4 words");
        // Blanking: paint events are no-ops, no underruns accrue.
        let before = d.underruns;
        for _ in 0..100 {
            d.tick();
        }
        assert_eq!(d.underruns, before);
        assert_eq!(d.next_due(0), None, "retrace is quiescent");
        assert!(d.wakeup(), "retrace must wake the task for the ack");
    }

    #[test]
    fn notify_acknowledges_the_field_and_flushes_stale_bits() {
        let mut d = monitor();
        d.start();
        d.accept_munch(&[3; MUNCH_WORDS]);
        while !d.in_retrace() {
            d.tick();
        }
        assert_eq!(d.input(1), 12, "stale post-field bits linger in the FIFO");
        d.notify();
        assert!(!d.in_retrace());
        assert!(!d.attention());
        assert_eq!(d.input(1), 0, "ack flushed the stale bits");
        assert!(d.next_due(0).is_some(), "scanning resumes");
    }

    #[test]
    fn ack_grants_a_blanking_lead_before_painting_resumes() {
        let mut d = monitor();
        d.start();
        d.accept_munch(&[3; MUNCH_WORDS]);
        while !d.in_retrace() {
            d.tick();
        }
        d.notify();
        // The flyback allowance: the next BLANK_EVENTS paint events
        // neither paint nor underrun, even with an empty FIFO.
        let (painted, underruns) = (d.painted, d.underruns);
        for _ in 0..DisplayController::BLANK_EVENTS {
            d.paint_event();
        }
        assert_eq!((d.painted, d.underruns), (painted, underruns));
        d.paint_event();
        assert_eq!(d.underruns, underruns + 1, "allowance exhausted");
    }

    #[test]
    fn retrace_survives_snapshot_round_trip() {
        let mut d = monitor();
        d.start();
        d.accept_munch(&[9; MUNCH_WORDS]);
        while !d.in_retrace() {
            d.tick();
        }
        let img = save_image(&d);
        let mut back = monitor();
        restore_image(&mut back, &img).unwrap();
        assert!(back.in_retrace());
        assert_eq!(back.framebuffer().unwrap().hashes(), d.framebuffer().unwrap().hashes());
        assert_eq!(save_image(&back), img);
    }

    #[test]
    fn stopped_display_snapshot_matches_running_gating() {
        // A display stopped mid-field must freeze its pacer identically in
        // tick, skip, and the snapshot projection: the image of a stopped
        // display taken with pending cycles equals the image taken after
        // naive ticking over the same window.
        let mut a = monitor();
        let mut b = monitor();
        for d in [&mut a, &mut b] {
            d.start();
            d.accept_munch(&[5; MUNCH_WORDS]);
            for _ in 0..7 {
                d.tick();
            }
            d.stop();
        }
        // `a` sits idle (scheduled mode: no ticks while stopped, snapshot
        // projects over the pending window); `b` is naively ticked.
        for _ in 0..500 {
            b.tick();
        }
        let mut w = Writer::new();
        a.snapshot_save(&mut w, 500);
        let image_a = w.finish();
        let mut w = Writer::new();
        b.snapshot_save(&mut w, 0);
        assert_eq!(image_a, w.finish());
    }
}
