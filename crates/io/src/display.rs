//! The display controller (§7, Figure 8).
//!
//! "The Dorado supports raster scan displays which are refreshed from a full
//! bitmap in main storage."  The controller consumes bitmap words at the
//! monitor's dot rate from a munch FIFO kept full by fast-I/O microcode
//! ("the fast I/O microcode for the display takes only two instructions to
//! transfer a 16 word block of data from memory to the device").  Control
//! functions (start/stop, mode) arrive over the slow I/O bus — the
//! dual-path structure of Figure 8.

use crate::{Device, RatePacer};
use dorado_base::snap::{Reader, SnapError, Snapshot, Writer};
use dorado_base::{ClockConfig, TaskId, Word, MUNCH_WORDS};
use std::collections::VecDeque;

/// Registers: 0 = control (1 = start refresh, 0 = stop), 1 = status.
#[derive(Debug)]
pub struct DisplayController {
    task: TaskId,
    pacer: RatePacer,
    fifo: VecDeque<Word>,
    fifo_depth_munches: usize,
    active: bool,
    /// FIFO slots promised to in-flight fast-I/O service.
    committed: usize,
    /// Words actually painted (drained at the dot rate).
    pub painted: u64,
    /// Words the monitor needed but the FIFO could not supply.
    pub underruns: u64,
    /// The most recently painted words, kept for verification (bounded).
    screen: Vec<Word>,
    screen_limit: usize,
}

impl DisplayController {
    /// The default dot rate in Mbit/s (a modest monitor; §3 quotes device
    /// bandwidths of 20–400 Mbit/s).
    pub const DEFAULT_MBPS: f64 = 100.0;

    /// Creates a display wired to `task` at the default dot rate on the
    /// default (multiwire, 60 ns) clock.
    pub fn new(task: TaskId) -> Self {
        Self::with_clock(task, Self::DEFAULT_MBPS, &ClockConfig::default())
    }

    /// Creates a display with an explicit dot rate and cycle time.
    pub fn with_rate(task: TaskId, mbps: f64, cycle_ns: f64) -> Self {
        Self::with_clock(task, mbps, &ClockConfig::with_cycle_ns(cycle_ns))
    }

    /// Creates a display whose dot rate is paced against `clock`.
    pub fn with_clock(task: TaskId, mbps: f64, clock: &ClockConfig) -> Self {
        DisplayController {
            task,
            pacer: RatePacer::for_clock(mbps, clock),
            fifo: VecDeque::new(),
            fifo_depth_munches: 4,
            active: false,
            committed: 0,
            painted: 0,
            underruns: 0,
            screen: Vec::new(),
            screen_limit: 1 << 16,
        }
    }

    /// Whether refresh is running.
    pub fn active(&self) -> bool {
        self.active
    }

    /// Starts refresh (equivalent to slow-I/O control register write).
    pub fn start(&mut self) {
        self.active = true;
    }

    /// Stops refresh.
    pub fn stop(&mut self) {
        self.active = false;
    }

    /// The captured screen words (bounded; oldest first).
    pub fn screen(&self) -> &[Word] {
        &self.screen
    }

    /// [`Snapshot::save`] with the pacer projected over `pending` skipped
    /// quiescent cycles (see [`Device::snapshot_save`]).  An inactive
    /// display's tick returns before stepping the pacer, so the projection
    /// only applies while refresh is running.
    fn save_projected(&self, w: &mut Writer, pending: u64) {
        w.tag(b"DISP");
        w.u8(self.task.number());
        let pacer = if self.active {
            self.pacer.advanced(pending)
        } else {
            self.pacer
        };
        pacer.save(w);
        w.word_seq(self.fifo.iter().copied());
        w.bool(self.active);
        w.u64(self.committed as u64);
        w.u64(self.painted);
        w.u64(self.underruns);
        w.word_seq(self.screen.iter().copied());
    }
}

impl Device for DisplayController {
    fn name(&self) -> &str {
        "display"
    }

    fn task(&self) -> TaskId {
        self.task
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn wakeup(&self) -> bool {
        // Wake the fast-I/O task whenever a whole munch of FIFO space is
        // free (and not already promised) and refresh is running.  One
        // extra munch of headroom absorbs the ghost prefetch a preempted
        // two-instruction service can trigger on resume (§6.2.1's minimum
        // grain rule).
        self.active
            && self.fifo.len() + self.committed + 2 * MUNCH_WORDS
                <= self.fifo_depth_munches * MUNCH_WORDS
    }

    fn observe_next(&mut self) {
        if self.wakeup() {
            self.committed += MUNCH_WORDS;
        }
    }

    fn tick(&mut self) {
        if !self.active {
            return;
        }
        for _ in 0..self.pacer.step() {
            match self.fifo.pop_front() {
                Some(w) => {
                    self.painted += 1;
                    if self.screen.len() < self.screen_limit {
                        self.screen.push(w);
                    }
                }
                None => self.underruns += 1,
            }
        }
    }

    fn input(&mut self, reg: Word) -> Word {
        match reg {
            1 => self.fifo.len() as Word,
            _ => u16::from(self.active),
        }
    }

    fn output(&mut self, reg: Word, word: Word) {
        if reg == 0 {
            self.active = word != 0;
        }
    }

    fn accept_munch(&mut self, munch: &[Word; MUNCH_WORDS]) {
        self.committed = self.committed.saturating_sub(MUNCH_WORDS);
        for &w in munch {
            self.fifo.push_back(w);
        }
    }

    fn next_due(&self, now: u64) -> Option<u64> {
        // A stopped display's tick is a pure no-op (it does not even step
        // the pacer); a running one only changes state when a paint event
        // fires.
        if !self.active {
            return None;
        }
        self.pacer.cycles_until_event().map(|k| now + k - 1)
    }

    fn skip(&mut self, cycles: u64) {
        if self.active {
            self.pacer = self.pacer.advanced(cycles);
        }
    }

    fn snapshot_save(&self, w: &mut Writer, pending: u64) {
        self.save_projected(w, pending);
    }

    fn snapshot_restore(&mut self, r: &mut Reader<'_>) -> Result<(), SnapError> {
        Snapshot::restore(self, r)
    }
}

impl Snapshot for DisplayController {
    fn save(&self, w: &mut Writer) {
        self.save_projected(w, 0);
    }

    fn restore(&mut self, r: &mut Reader<'_>) -> Result<(), SnapError> {
        r.tag(b"DISP")?;
        if r.u8()? != self.task.number() {
            return Err(SnapError::Mismatch {
                what: "display task",
            });
        }
        self.pacer.restore(r)?;
        self.fifo = r.word_seq()?.into();
        self.active = r.bool()?;
        self.committed = r.u64()? as usize;
        self.painted = r.u64()?;
        self.underruns = r.u64()?;
        self.screen = r.word_seq()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn display() -> DisplayController {
        DisplayController::with_rate(TaskId::new(14), 100.0, 60.0)
    }

    #[test]
    fn wakeup_tracks_fifo_space() {
        let mut d = display();
        assert!(!d.wakeup(), "inactive display must not wake its task");
        d.start();
        assert!(d.wakeup());
        for _ in 0..4 {
            d.accept_munch(&[7; MUNCH_WORDS]);
        }
        assert!(!d.wakeup(), "full FIFO");
    }

    #[test]
    fn painting_drains_fifo_at_rate() {
        let mut d = display();
        d.start();
        d.accept_munch(&[42; MUNCH_WORDS]);
        // 100 Mbit/s at 60 ns = 0.375 words/cycle: 16 words in ~43 cycles.
        for _ in 0..43 {
            d.tick();
        }
        assert_eq!(d.painted, 16);
        assert_eq!(d.underruns, 0);
        assert!(d.screen().iter().all(|&w| w == 42));
    }

    #[test]
    fn starvation_counts_underruns() {
        let mut d = display();
        d.start();
        for _ in 0..100 {
            d.tick();
        }
        assert!(d.underruns > 0);
        assert_eq!(d.painted, 0);
    }

    #[test]
    fn slow_io_control_path() {
        let mut d = display();
        d.output(0, 1);
        assert!(d.active());
        assert_eq!(d.input(0), 1);
        d.accept_munch(&[1; MUNCH_WORDS]);
        assert_eq!(d.input(1), MUNCH_WORDS as Word);
        d.output(0, 0);
        assert!(!d.active());
    }
}
