//! A synthetic device with a configurable data rate, for utilization
//! sweeps (processor share vs device bandwidth, experiments E3/E4/E7).

use crate::{Device, RatePacer};
use dorado_base::snap::{Reader, SnapError, Snapshot, Writer};
use dorado_base::{ClockConfig, TaskId, Word, MUNCH_WORDS};
use std::collections::VecDeque;

/// Which I/O path the synthetic device exercises.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SynthPath {
    /// Words over the slow I/O bus, `words_per_service` per wakeup.
    Slow,
    /// Munches over the fast I/O path, one munch per wakeup.
    Fast,
}

/// A source device producing data at a fixed rate; its task's microcode
/// must drain it into memory.  Registers: 0 = data, 1 = status.
#[derive(Debug)]
pub struct RateDevice {
    task: TaskId,
    pacer: RatePacer,
    path: SynthPath,
    fifo: VecDeque<Word>,
    depth_words: usize,
    /// Minimum words available before requesting service (slow path).
    words_per_service: usize,
    next_value: Word,
    /// Words already promised to an in-flight service (dropped from the
    /// wakeup calculation once the task's number appears on NEXT, §6.2.1).
    committed: usize,
    /// Total words generated.
    pub generated: u64,
    /// Words dropped to FIFO overflow (service too slow).
    pub overruns: u64,
    /// Whether the device is running.
    active: bool,
}

impl RateDevice {
    /// Creates a source at `mbps` megabits/second on the given path.
    pub fn new(task: TaskId, mbps: f64, cycle_ns: f64, path: SynthPath) -> Self {
        Self::with_clock(task, mbps, &ClockConfig::with_cycle_ns(cycle_ns), path)
    }

    /// Creates a source whose rate is paced against `clock`.
    pub fn with_clock(task: TaskId, mbps: f64, clock: &ClockConfig, path: SynthPath) -> Self {
        RateDevice {
            task,
            pacer: RatePacer::for_clock(mbps, clock),
            path,
            fifo: VecDeque::new(),
            depth_words: 8 * MUNCH_WORDS,
            words_per_service: 2,
            next_value: 1,
            committed: 0,
            generated: 0,
            overruns: 0,
            active: false,
        }
    }

    /// Sets how many words each slow-path service call handles.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or exceeds the FIFO depth.
    pub fn set_words_per_service(&mut self, n: usize) {
        assert!(n > 0 && n <= self.depth_words);
        self.words_per_service = n;
    }

    /// Starts the data flow.
    pub fn start(&mut self) {
        self.active = true;
    }

    /// Stops the data flow.
    pub fn stop(&mut self) {
        self.active = false;
    }

    /// The configured rate in words per cycle.
    pub fn words_per_cycle(&self) -> f64 {
        self.pacer.rate()
    }

    /// [`Snapshot::save`] with the pacer projected over `pending` skipped
    /// quiescent cycles (see [`Device::snapshot_save`]).  A stopped
    /// device's tick returns before stepping the pacer, so the projection
    /// only applies while the flow is running.
    fn save_projected(&self, w: &mut Writer, pending: u64) {
        w.tag(b"SYNT");
        w.u8(self.task.number());
        let pacer = if self.active {
            self.pacer.advanced(pending)
        } else {
            self.pacer
        };
        pacer.save(w);
        w.word_seq(self.fifo.iter().copied());
        w.u64(self.words_per_service as u64);
        w.u16(self.next_value);
        w.u64(self.committed as u64);
        w.u64(self.generated);
        w.u64(self.overruns);
        w.bool(self.active);
    }
}

impl Device for RateDevice {
    fn name(&self) -> &str {
        "rate-device"
    }

    fn task(&self) -> TaskId {
        self.task
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn wakeup(&self) -> bool {
        match self.path {
            SynthPath::Slow => self.fifo.len() >= self.committed + self.words_per_service,
            SynthPath::Fast => self.fifo.len() >= self.committed + MUNCH_WORDS,
        }
    }

    fn observe_next(&mut self) {
        // One service unit is committed per NEXT observation while
        // requesting ("it then removes the request, unless it needs more
        // than one unit of service", §5.2).
        if self.wakeup() {
            self.committed += match self.path {
                SynthPath::Slow => self.words_per_service,
                SynthPath::Fast => MUNCH_WORDS,
            };
        }
    }

    fn tick(&mut self) {
        if !self.active {
            return;
        }
        for _ in 0..self.pacer.step() {
            self.generated += 1;
            if self.fifo.len() >= self.depth_words {
                self.overruns += 1;
            } else {
                self.fifo.push_back(self.next_value);
                self.next_value = self.next_value.wrapping_add(1);
            }
        }
    }

    fn input(&mut self, reg: Word) -> Word {
        match reg {
            0 => {
                self.committed = self.committed.saturating_sub(1);
                self.fifo.pop_front().unwrap_or(0)
            }
            _ => self.fifo.len() as Word,
        }
    }

    fn output(&mut self, _reg: Word, _word: Word) {}

    fn supply_munch(&mut self) -> [Word; MUNCH_WORDS] {
        self.committed = self.committed.saturating_sub(MUNCH_WORDS);
        let mut munch = [0; MUNCH_WORDS];
        for slot in &mut munch {
            *slot = self.fifo.pop_front().unwrap_or(0);
        }
        munch
    }

    fn rx_overruns(&self) -> u64 {
        self.overruns
    }

    fn next_due(&self, now: u64) -> Option<u64> {
        // A stopped source's tick is a pure no-op (the pacer does not even
        // step); a running one only changes state when a word is generated.
        if !self.active {
            return None;
        }
        self.pacer.cycles_until_event().map(|k| now + k - 1)
    }

    fn skip(&mut self, cycles: u64) {
        if self.active {
            self.pacer = self.pacer.advanced(cycles);
        }
    }

    fn snapshot_save(&self, w: &mut Writer, pending: u64) {
        self.save_projected(w, pending);
    }

    fn snapshot_restore(&mut self, r: &mut Reader<'_>) -> Result<(), SnapError> {
        Snapshot::restore(self, r)
    }
}

impl Snapshot for RateDevice {
    fn save(&self, w: &mut Writer) {
        self.save_projected(w, 0);
    }

    fn restore(&mut self, r: &mut Reader<'_>) -> Result<(), SnapError> {
        r.tag(b"SYNT")?;
        if r.u8()? != self.task.number() {
            return Err(SnapError::Mismatch {
                what: "rate-device task",
            });
        }
        self.pacer.restore(r)?;
        self.fifo = r.word_seq()?.into();
        self.words_per_service = r.u64()? as usize;
        self.next_value = r.u16()?;
        self.committed = r.u64()? as usize;
        self.generated = r.u64()?;
        self.overruns = r.u64()?;
        self.active = r.bool()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_at_rate() {
        let mut d = RateDevice::new(TaskId::new(10), 16.0, 60.0, SynthPath::Slow);
        d.start();
        // 16 Mbit/s at 60 ns = 0.06 words/cycle: 5000 cycles → 300 words.
        for _ in 0..5000 {
            d.tick();
        }
        assert_eq!(d.generated, 300);
        assert!(d.overruns > 0, "unserviced 128-word FIFO must overflow");
    }

    #[test]
    fn slow_wakeup_threshold() {
        let mut d = RateDevice::new(TaskId::new(10), 100.0, 60.0, SynthPath::Slow);
        d.set_words_per_service(4);
        d.start();
        while !d.wakeup() {
            d.tick();
        }
        assert!(d.input(1) >= 4);
        let first = d.input(0);
        assert_eq!(first, 1, "values count from 1");
    }

    #[test]
    fn fast_path_supplies_munches() {
        let mut d = RateDevice::new(TaskId::new(10), 300.0, 60.0, SynthPath::Fast);
        d.start();
        while !d.wakeup() {
            d.tick();
        }
        let m = d.supply_munch();
        assert_eq!(m[0], 1);
        assert_eq!(m[15], 16);
    }

    #[test]
    fn stopped_device_is_quiet() {
        let mut d = RateDevice::new(TaskId::new(10), 100.0, 60.0, SynthPath::Slow);
        for _ in 0..100 {
            d.tick();
        }
        assert_eq!(d.generated, 0);
        assert!(!d.wakeup());
        d.start();
        d.stop();
        for _ in 0..100 {
            d.tick();
        }
        assert_eq!(d.generated, 0);
    }

    #[test]
    #[should_panic]
    fn words_per_service_bounds() {
        let mut d = RateDevice::new(TaskId::new(10), 1.0, 60.0, SynthPath::Slow);
        d.set_words_per_service(0);
    }
}
