//! The disk controller: a ~10 Mbit/s device served over the slow I/O
//! system (§7: "the microcode for the disk takes three cycles to transfer
//! two words each way; thus the 10 megabit/sec disk consumes 5% of the
//! processor").

use crate::{Device, RatePacer};
use dorado_base::snap::{Reader, SnapError, Snapshot, Writer};
use dorado_base::{ClockConfig, TaskId, Word};
use std::collections::VecDeque;

/// What the drive is currently doing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Idle,
    /// Reading `remaining` words from the platter into the FIFO.
    Reading { remaining: usize },
    /// Writing `remaining` words from the FIFO to the platter.
    Writing { remaining: usize },
}

/// Registers (relative to the controller's IOADDRESS base):
/// 0 = data, 1 = status (FIFO occupancy).
#[derive(Debug)]
pub struct DiskController {
    task: TaskId,
    pacer: RatePacer,
    mode: Mode,
    fifo: VecDeque<Word>,
    fifo_depth: usize,
    platter: Vec<Word>,
    head: usize,
    /// Words (read) or FIFO slots (write) promised to in-flight service.
    committed: usize,
    /// Words lost because the FIFO overflowed (microcode was too slow).
    pub overruns: u64,
    /// Cycles the medium stalled because the FIFO was empty on a write.
    pub underruns: u64,
}

impl DiskController {
    /// The default data rate in Mbit/s.
    pub const DEFAULT_MBPS: f64 = 10.0;

    /// Creates a disk wired to `task` with the default 10 Mbit/s medium on
    /// the default (multiwire, 60 ns) clock.
    pub fn new(task: TaskId) -> Self {
        Self::with_clock(task, Self::DEFAULT_MBPS, &ClockConfig::default())
    }

    /// Creates a disk with an explicit media rate and cycle time.
    pub fn with_rate(task: TaskId, mbps: f64, cycle_ns: f64) -> Self {
        Self::with_clock(task, mbps, &ClockConfig::with_cycle_ns(cycle_ns))
    }

    /// Creates a disk whose media rate is paced against `clock`.
    pub fn with_clock(task: TaskId, mbps: f64, clock: &ClockConfig) -> Self {
        DiskController {
            task,
            pacer: RatePacer::for_clock(mbps, clock),
            mode: Mode::Idle,
            fifo: VecDeque::new(),
            fifo_depth: 16,
            platter: vec![0; 64 * 1024],
            head: 0,
            committed: 0,
            overruns: 0,
            underruns: 0,
        }
    }

    /// The platter contents (for loading test data).
    pub fn platter_mut(&mut self) -> &mut Vec<Word> {
        &mut self.platter
    }

    /// The platter contents.
    pub fn platter(&self) -> &[Word] {
        &self.platter
    }

    /// Seeks the head to word `pos`.
    ///
    /// # Panics
    ///
    /// Panics if `pos` is past the platter end.
    pub fn seek(&mut self, pos: usize) {
        assert!(pos <= self.platter.len(), "seek past platter end");
        self.head = pos;
    }

    /// Begins a read transfer of `words` words from the head position.
    pub fn start_read(&mut self, words: usize) {
        self.mode = Mode::Reading { remaining: words };
        self.committed = 0;
    }

    /// Begins a write transfer of `words` words at the head position.
    pub fn start_write(&mut self, words: usize) {
        self.mode = Mode::Writing { remaining: words };
        self.committed = 0;
    }

    /// Whether a transfer is still in progress (medium side).
    pub fn busy(&self) -> bool {
        !matches!(self.mode, Mode::Idle) || !self.fifo.is_empty()
    }

    /// [`Snapshot::save`] with the pacer projected over `pending` skipped
    /// quiescent cycles, so images are independent of the scheduling mode
    /// (see [`Device::snapshot_save`]).
    fn save_projected(&self, w: &mut Writer, pending: u64) {
        w.tag(b"DISK");
        w.u8(self.task.number());
        self.pacer.advanced(pending).save(w);
        match self.mode {
            Mode::Idle => w.u8(0),
            Mode::Reading { remaining } => {
                w.u8(1);
                w.u64(remaining as u64);
            }
            Mode::Writing { remaining } => {
                w.u8(2);
                w.u64(remaining as u64);
            }
        }
        w.word_seq(self.fifo.iter().copied());
        w.word_seq(self.platter.iter().copied());
        w.u64(self.head as u64);
        w.u64(self.committed as u64);
        w.u64(self.overruns);
        w.u64(self.underruns);
    }
}

impl Device for DiskController {
    fn name(&self) -> &str {
        "disk"
    }

    fn task(&self) -> TaskId {
        self.task
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn wakeup(&self) -> bool {
        match self.mode {
            // Service unit is a word pair (§7); also drain a trailing odd
            // word once the medium is done.
            Mode::Reading { remaining } => {
                self.fifo.len() >= self.committed + 2
                    || (remaining == 0 && self.fifo.len() > self.committed)
            }
            Mode::Writing { remaining } => {
                // Two slots of slack beyond the pair: the task-switch
                // pipeline is two cycles deep (§6.2.1), so one extra pair
                // can land after the wakeup drops.
                remaining >= 2
                    && self.fifo_depth - self.fifo.len() >= self.committed + 4
            }
            Mode::Idle => false,
        }
    }

    fn observe_next(&mut self) {
        if self.wakeup() {
            self.committed += 2;
        }
    }

    fn tick(&mut self) {
        // A completed read drains to Idle as soon as the FIFO empties,
        // independent of the media rate.
        if matches!(self.mode, Mode::Reading { remaining: 0 }) && self.fifo.is_empty() {
            self.mode = Mode::Idle;
        }
        let events = self.pacer.step();
        for _ in 0..events {
            match self.mode {
                Mode::Idle => {}
                Mode::Reading { remaining } => {
                    if remaining == 0 {
                        if self.fifo.is_empty() {
                            self.mode = Mode::Idle;
                        }
                    } else if self.fifo.len() >= self.fifo_depth {
                        self.overruns += 1;
                        self.head = (self.head + 1) % self.platter.len();
                        self.mode = Mode::Reading {
                            remaining: remaining - 1,
                        };
                    } else {
                        self.fifo.push_back(self.platter[self.head]);
                        self.head = (self.head + 1) % self.platter.len();
                        self.mode = Mode::Reading {
                            remaining: remaining - 1,
                        };
                    }
                }
                Mode::Writing { remaining } => {
                    if remaining == 0 {
                        self.mode = Mode::Idle;
                    } else {
                        match self.fifo.pop_front() {
                            Some(w) => {
                                self.platter[self.head] = w;
                                self.head = (self.head + 1) % self.platter.len();
                                self.mode = Mode::Writing {
                                    remaining: remaining - 1,
                                };
                            }
                            None => self.underruns += 1,
                        }
                    }
                }
            }
        }
    }

    fn input(&mut self, reg: Word) -> Word {
        match reg {
            0 => {
                self.committed = self.committed.saturating_sub(1);
                self.fifo.pop_front().unwrap_or(0)
            }
            _ => self.fifo.len() as Word,
        }
    }

    fn output(&mut self, reg: Word, word: Word) {
        if reg == 0 && self.fifo.len() < self.fifo_depth {
            self.committed = self.committed.saturating_sub(1);
            self.fifo.push_back(word);
        }
    }

    fn attention(&self) -> bool {
        matches!(self.mode, Mode::Idle) && self.fifo.is_empty()
    }

    fn rx_overruns(&self) -> u64 {
        self.overruns
    }

    fn next_due(&self, now: u64) -> Option<u64> {
        // A completed read with a drained FIFO collapses to Idle on the
        // very next tick, independent of the media rate.
        if matches!(self.mode, Mode::Reading { remaining: 0 }) && self.fifo.is_empty() {
            return Some(now);
        }
        match self.mode {
            // Idle ticks and no-op events only advance the pacer phase,
            // which skip() reconstructs; likewise a completed read still
            // waiting on the microcode to drain the FIFO.
            Mode::Idle | Mode::Reading { remaining: 0 } => None,
            _ => self.pacer.cycles_until_event().map(|k| now + k - 1),
        }
    }

    fn skip(&mut self, cycles: u64) {
        // The medium spins regardless of mode: quiescent ticks still
        // advance the pacer phase.
        self.pacer = self.pacer.advanced(cycles);
    }

    fn snapshot_save(&self, w: &mut Writer, pending: u64) {
        self.save_projected(w, pending);
    }

    fn snapshot_restore(&mut self, r: &mut Reader<'_>) -> Result<(), SnapError> {
        Snapshot::restore(self, r)
    }
}

impl Snapshot for DiskController {
    fn save(&self, w: &mut Writer) {
        self.save_projected(w, 0);
    }

    fn restore(&mut self, r: &mut Reader<'_>) -> Result<(), SnapError> {
        r.tag(b"DISK")?;
        if r.u8()? != self.task.number() {
            return Err(SnapError::Mismatch { what: "disk task" });
        }
        self.pacer.restore(r)?;
        self.mode = match r.u8()? {
            0 => Mode::Idle,
            1 => Mode::Reading {
                remaining: r.u64()? as usize,
            },
            2 => Mode::Writing {
                remaining: r.u64()? as usize,
            },
            _ => return Err(SnapError::Invalid { what: "disk mode" }),
        };
        self.fifo = r.word_seq()?.into();
        self.platter = r.word_seq()?;
        self.head = r.u64()? as usize;
        if self.head >= self.platter.len() {
            return Err(SnapError::Invalid { what: "disk head" });
        }
        self.committed = r.u64()? as usize;
        self.overruns = r.u64()?;
        self.underruns = r.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn disk() -> DiskController {
        DiskController::new(TaskId::new(11))
    }

    #[test]
    fn read_produces_words_at_rate() {
        let mut d = disk();
        for (i, w) in d.platter_mut().iter_mut().take(8).enumerate() {
            *w = 100 + i as Word;
        }
        d.start_read(8);
        assert!(!d.wakeup());
        // 10 Mbit/s = 3 words per 80 cycles: after 80 cycles, 3 words.
        for _ in 0..80 {
            d.tick();
        }
        assert!(d.wakeup());
        assert_eq!(d.input(0), 100);
        assert_eq!(d.input(0), 101);
        // Status register reports occupancy.
        assert_eq!(d.input(1), 1);
    }

    #[test]
    fn trailing_odd_word_still_wakes() {
        let mut d = disk();
        d.start_read(1);
        for _ in 0..200 {
            d.tick();
        }
        assert!(d.wakeup());
        let _ = d.input(0);
        assert!(!d.wakeup());
        d.tick();
        assert!(!d.busy());
        assert!(d.attention());
    }

    #[test]
    fn write_consumes_fifo() {
        let mut d = disk();
        d.seek(16);
        d.start_write(4);
        assert!(d.wakeup()); // room for a pair
        for w in [1u16, 2, 3, 4] {
            d.output(0, w);
        }
        for _ in 0..400 {
            d.tick();
        }
        assert_eq!(&d.platter()[16..20], &[1, 2, 3, 4]);
        assert!(!d.busy());
        assert_eq!(d.underruns, 0);
    }

    #[test]
    fn overrun_counts_lost_words() {
        let mut d = disk();
        d.start_read(64); // never serviced
        for _ in 0..64 * 30 {
            d.tick();
        }
        assert!(d.overruns > 0);
    }

    #[test]
    fn underrun_counts_starved_cycles() {
        let mut d = disk();
        d.start_write(4); // no data ever provided
        for _ in 0..400 {
            d.tick();
        }
        assert!(d.underruns > 0);
        assert!(d.busy());
    }

    #[test]
    #[should_panic(expected = "seek past")]
    fn seek_bounds() {
        disk().seek(usize::MAX);
    }
}
