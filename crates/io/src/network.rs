//! The network controller: a ~3 Mbit/s experimental-Ethernet-style link of
//! the kind the Alto pioneered and the Dorado inherited (§2, §3).
//!
//! Receive: arriving packets trickle words into a FIFO at line rate; the
//! controller wakes its task per word and raises *attention* while a
//! complete packet is buffered.  Transmit: microcode pushes words; the
//! controller drains them at line rate and "puts them on the wire" — a
//! captured transcript that a cluster fabric can drain and deliver to a
//! peer controller.

use crate::{Device, RatePacer};
use dorado_base::snap::{Reader, SnapError, Snapshot, Writer};
use dorado_base::{ClockConfig, TaskId, Word};
use std::collections::VecDeque;

/// Receive FIFO capacity in words; arrivals beyond this are dropped and
/// counted as overruns.
pub const RX_FIFO_WORDS: usize = 64;

/// Registers: 0 = data, 1 = status (rx FIFO occupancy), 2 = control
/// (writing any value ends the current transmit packet), 3 = length in
/// words of the first *complete* packet in the rx FIFO (0 if none).
#[derive(Debug)]
pub struct NetworkController {
    task: TaskId,
    pacer: RatePacer,
    /// Packets waiting to arrive (front = in progress).
    inbound: VecDeque<Vec<Word>>,
    /// Words of the in-progress inbound packet already delivered.
    rx_pos: usize,
    /// Words of the in-progress inbound packet that actually entered the
    /// FIFO (as opposed to being dropped to overrun).
    rx_accepted: usize,
    /// Received words, each flagged if it is the last word of its packet.
    rx_fifo: VecDeque<(Word, bool)>,
    /// Complete packets currently buffered (count of end flags in the FIFO).
    rx_boundaries: usize,
    /// Words promised to in-flight service.
    committed: usize,
    /// Words queued by microcode for transmit.
    tx_fifo: VecDeque<Word>,
    tx_current: Vec<Word>,
    /// Fully transmitted packets, each stamped with the controller-local
    /// cycle its end-of-packet control write committed it, until a fabric
    /// drains them.
    pub transmitted: Vec<(u64, Vec<Word>)>,
    /// Controller-local cycle counter: real ticks plus skipped quiescent
    /// cycles, so it tracks the machine clock exactly.  Stamps the
    /// transmit transcript for sub-epoch latency accounting.
    clock: u64,
    /// Words lost to rx FIFO overflow.
    pub overruns: u64,
    /// Packets lost *entirely* to overrun: every word was dropped, so no
    /// terminated word — and therefore no boundary — ever reached the FIFO.
    pub truncated_packets: u64,
    tx_packets: u64,
    tx_words: u64,
}

impl NetworkController {
    /// The default line rate in Mbit/s (the 3 Mbit/s experimental Ethernet).
    pub const DEFAULT_MBPS: f64 = 3.0;

    /// Creates a controller wired to `task` at the default line rate on
    /// the default (multiwire, 60 ns) clock.
    pub fn new(task: TaskId) -> Self {
        Self::with_clock(task, Self::DEFAULT_MBPS, &ClockConfig::default())
    }

    /// Creates a controller with an explicit line rate and cycle time.
    pub fn with_rate(task: TaskId, mbps: f64, cycle_ns: f64) -> Self {
        Self::with_clock(task, mbps, &ClockConfig::with_cycle_ns(cycle_ns))
    }

    /// Creates a controller whose line rate is paced against `clock` — a
    /// 50 ns stitchweld machine serves the same Mbit/s in more cycles.
    pub fn with_clock(task: TaskId, mbps: f64, clock: &ClockConfig) -> Self {
        NetworkController {
            task,
            pacer: RatePacer::for_clock(mbps, clock),
            inbound: VecDeque::new(),
            rx_pos: 0,
            rx_accepted: 0,
            rx_fifo: VecDeque::new(),
            rx_boundaries: 0,
            committed: 0,
            tx_fifo: VecDeque::new(),
            tx_current: Vec::new(),
            transmitted: Vec::new(),
            clock: 0,
            overruns: 0,
            truncated_packets: 0,
            tx_packets: 0,
            tx_words: 0,
        }
    }

    /// Queues a packet to arrive from the wire.
    pub fn inject_packet(&mut self, words: Vec<Word>) {
        assert!(!words.is_empty(), "packets must be non-empty");
        self.inbound.push_back(words);
    }

    /// Whether any receive work remains.
    pub fn rx_busy(&self) -> bool {
        !self.inbound.is_empty() || !self.rx_fifo.is_empty()
    }

    /// Takes the packets transmitted since the last drain, oldest first —
    /// the fabric-facing side of the wire.
    pub fn drain_transmitted(&mut self) -> Vec<Vec<Word>> {
        self.drain_transmitted_stamped()
            .into_iter()
            .map(|(_, words)| words)
            .collect()
    }

    /// [`NetworkController::drain_transmitted`], keeping each packet's
    /// completion stamp: the controller-local cycle at which the
    /// end-of-packet control write committed it to the wire transcript.
    /// Cluster executors feed the stamp into the fabric's transmit log so
    /// request latency is measured from packet completion, not from the
    /// epoch boundary the drain happens to land on.
    pub fn drain_transmitted_stamped(&mut self) -> Vec<(u64, Vec<Word>)> {
        std::mem::take(&mut self.transmitted)
    }

    /// Whether fully transmitted packets are waiting for a fabric drain.
    /// Exact without a device sync: the transcript only grows on an
    /// end-of-packet control write, which always syncs.
    pub fn has_transmitted(&self) -> bool {
        !self.transmitted.is_empty()
    }

    /// Packets fully transmitted since reset (survives draining).
    pub fn tx_packets(&self) -> u64 {
        self.tx_packets
    }

    /// Words fully transmitted since reset (survives draining).
    pub fn tx_words(&self) -> u64 {
        self.tx_words
    }

    /// [`Snapshot::save`] with the pacer projected over `pending` skipped
    /// quiescent cycles (see [`Device::snapshot_save`]).  The line clock
    /// runs whether or not traffic is flowing, so the projection always
    /// applies.
    fn save_projected(&self, w: &mut Writer, pending: u64) {
        w.tag(b"NETC");
        w.u8(self.task.number());
        self.pacer.advanced(pending).save(w);
        // The local clock free-runs like the pacer: project it over the
        // skipped window so scheduled and naive images agree byte for byte.
        w.u64(self.clock + pending);
        w.len(self.inbound.len());
        for pkt in &self.inbound {
            w.word_seq(pkt.iter().copied());
        }
        w.u64(self.rx_pos as u64);
        w.u64(self.rx_accepted as u64);
        w.len(self.rx_fifo.len());
        for &(word, end) in &self.rx_fifo {
            w.u16(word);
            w.bool(end);
        }
        w.u64(self.rx_boundaries as u64);
        w.u64(self.committed as u64);
        w.word_seq(self.tx_fifo.iter().copied());
        w.word_seq(self.tx_current.iter().copied());
        w.len(self.transmitted.len());
        for (at, pkt) in &self.transmitted {
            w.u64(*at);
            w.word_seq(pkt.iter().copied());
        }
        w.u64(self.overruns);
        w.u64(self.truncated_packets);
        w.u64(self.tx_packets);
        w.u64(self.tx_words);
    }
}

impl Device for NetworkController {
    fn name(&self) -> &str {
        "network"
    }

    fn task(&self) -> TaskId {
        self.task
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn wakeup(&self) -> bool {
        self.rx_fifo.len() > self.committed || self.rx_boundaries > 0
    }

    fn observe_next(&mut self) {
        if self.rx_fifo.len() > self.committed {
            self.committed += 1;
        }
    }

    fn tick(&mut self) {
        self.clock += 1;
        for _ in 0..self.pacer.step() {
            // Receive side: one word of the in-progress packet arrives.
            if let Some(pkt) = self.inbound.front() {
                let last = self.rx_pos + 1 == pkt.len();
                if self.rx_fifo.len() >= RX_FIFO_WORDS {
                    self.overruns += 1;
                    if last {
                        if self.rx_accepted > 0 {
                            // The truncated packet still ends: terminate it
                            // at its last word that did fit.  That word is
                            // the FIFO's back — this packet's words are the
                            // most recent pushes.
                            if let Some(back) = self.rx_fifo.back_mut() {
                                if !back.1 {
                                    back.1 = true;
                                    self.rx_boundaries += 1;
                                }
                            }
                        } else {
                            // Every word was dropped: no terminated word is
                            // in the FIFO to carry a boundary, so the packet
                            // would otherwise vanish without a trace.
                            self.truncated_packets += 1;
                        }
                    }
                } else {
                    self.rx_fifo.push_back((pkt[self.rx_pos], last));
                    self.rx_accepted += 1;
                    if last {
                        self.rx_boundaries += 1;
                    }
                }
                self.rx_pos += 1;
                if last {
                    self.inbound.pop_front();
                    self.rx_pos = 0;
                    self.rx_accepted = 0;
                }
            }
            // Transmit side.
            if let Some(w) = self.tx_fifo.pop_front() {
                self.tx_current.push(w);
            }
        }
    }

    fn input(&mut self, reg: Word) -> Word {
        match reg {
            0 => {
                self.committed = self.committed.saturating_sub(1);
                let (w, end) = self.rx_fifo.pop_front().unwrap_or((0, false));
                if end {
                    self.rx_boundaries -= 1;
                }
                w
            }
            3 => self
                .rx_fifo
                .iter()
                .position(|&(_, end)| end)
                .map_or(0, |p| (p + 1) as Word),
            _ => self.rx_fifo.len() as Word,
        }
    }

    fn output(&mut self, reg: Word, word: Word) {
        match reg {
            0 => self.tx_fifo.push_back(word),
            2 => {
                // End of packet: flush anything still in the tx FIFO, then
                // commit the packet to the wire transcript.
                while let Some(w) = self.tx_fifo.pop_front() {
                    self.tx_current.push(w);
                }
                if !self.tx_current.is_empty() {
                    self.tx_packets += 1;
                    self.tx_words += self.tx_current.len() as u64;
                    self.transmitted
                        .push((self.clock, std::mem::take(&mut self.tx_current)));
                }
            }
            _ => {}
        }
    }

    fn attention(&self) -> bool {
        self.rx_boundaries > 0
    }

    fn rx_overruns(&self) -> u64 {
        self.overruns
    }

    fn next_due(&self, now: u64) -> Option<u64> {
        // With nothing arriving and nothing queued to transmit, line-rate
        // events are no-ops; only the pacer phase advances, and skip()
        // reconstructs that.
        if self.inbound.is_empty() && self.tx_fifo.is_empty() {
            return None;
        }
        self.pacer.cycles_until_event().map(|k| now + k - 1)
    }

    fn skip(&mut self, cycles: u64) {
        self.pacer = self.pacer.advanced(cycles);
        self.clock += cycles;
    }

    fn tx_pending(&self) -> bool {
        self.has_transmitted()
    }

    fn snapshot_save(&self, w: &mut Writer, pending: u64) {
        self.save_projected(w, pending);
    }

    fn snapshot_restore(&mut self, r: &mut Reader<'_>) -> Result<(), SnapError> {
        Snapshot::restore(self, r)
    }
}

impl Snapshot for NetworkController {
    fn save(&self, w: &mut Writer) {
        self.save_projected(w, 0);
    }

    fn restore(&mut self, r: &mut Reader<'_>) -> Result<(), SnapError> {
        r.tag(b"NETC")?;
        if r.u8()? != self.task.number() {
            return Err(SnapError::Mismatch { what: "network task" });
        }
        self.pacer.restore(r)?;
        self.clock = r.u64()?;
        let inbound = r.len()?;
        self.inbound.clear();
        for _ in 0..inbound {
            self.inbound.push_back(r.word_seq()?);
        }
        self.rx_pos = r.u64()? as usize;
        self.rx_accepted = r.u64()? as usize;
        let fifo = r.len()?;
        self.rx_fifo.clear();
        for _ in 0..fifo {
            let word = r.u16()?;
            let end = r.bool()?;
            self.rx_fifo.push_back((word, end));
        }
        self.rx_boundaries = r.u64()? as usize;
        self.committed = r.u64()? as usize;
        self.tx_fifo = r.word_seq()?.into();
        self.tx_current = r.word_seq()?;
        let transmitted = r.len()?;
        self.transmitted.clear();
        for _ in 0..transmitted {
            let at = r.u64()?;
            self.transmitted.push((at, r.word_seq()?));
        }
        self.overruns = r.u64()?;
        self.truncated_packets = r.u64()?;
        self.tx_packets = r.u64()?;
        self.tx_words = r.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net() -> NetworkController {
        NetworkController::new(TaskId::new(13))
    }

    #[test]
    fn receive_delivers_packet_and_attention() {
        let mut n = net();
        n.inject_packet(vec![10, 20, 30]);
        assert!(!n.wakeup());
        // 3 Mbit/s = 0.01125 words/cycle: 3 words need ~267 cycles.
        for _ in 0..300 {
            n.tick();
        }
        assert!(n.wakeup());
        assert!(n.attention(), "end of packet raises attention");
        assert_eq!(n.input(1), 3);
        assert_eq!(n.input(3), 3, "first complete packet is 3 words");
        assert_eq!((n.input(0), n.input(0), n.input(0)), (10, 20, 30));
        assert!(!n.attention(), "drained packet clears attention");
        assert!(!n.rx_busy());
    }

    #[test]
    fn transmit_collects_packets() {
        let mut n = net();
        for w in [1u16, 2, 3] {
            n.output(0, w);
        }
        for _ in 0..400 {
            n.tick();
        }
        n.output(2, 0); // end of packet
        assert_eq!(n.transmitted, vec![(400, vec![1, 2, 3])]);
        assert!(n.has_transmitted());
        // Next packet accumulates separately.
        n.output(0, 9);
        n.output(2, 0);
        assert_eq!(n.transmitted.len(), 2);
        assert_eq!(n.transmitted[1], (400, vec![9]));
        assert_eq!(n.tx_packets(), 2);
        assert_eq!(n.tx_words(), 4);
    }

    #[test]
    fn drain_takes_packets_but_keeps_counters() {
        let mut n = net();
        n.output(0, 7);
        n.output(2, 0);
        assert_eq!(n.drain_transmitted(), vec![vec![7]]);
        assert!(n.drain_transmitted().is_empty());
        assert!(!n.has_transmitted());
        assert_eq!(n.tx_packets(), 1);
        assert_eq!(n.tx_words(), 1);
    }

    #[test]
    fn transmit_stamps_track_the_local_clock() {
        let mut n = net();
        n.output(0, 1);
        n.output(2, 0); // committed before any tick: stamp 0
        for _ in 0..123 {
            n.tick();
        }
        n.output(0, 2);
        n.output(2, 0);
        // A skipped quiescent window counts like real ticks.
        n.skip(77);
        n.output(0, 3);
        n.output(2, 0);
        let got = n.drain_transmitted_stamped();
        assert_eq!(
            got,
            vec![(0, vec![1]), (123, vec![2]), (200, vec![3])]
        );
    }

    #[test]
    fn overrun_when_unserviced() {
        let mut n = net();
        n.inject_packet(vec![0; 200]);
        for _ in 0..200 * 100 {
            n.tick();
        }
        assert!(n.overruns > 0);
        assert_eq!(n.rx_overruns(), n.overruns);
        // The truncated packet still terminates: attention is up and the
        // FIFO's last word carries the end flag.
        assert!(n.attention());
        assert_eq!(n.input(3), RX_FIFO_WORDS as Word);
        for _ in 0..RX_FIFO_WORDS {
            n.input(0);
        }
        assert!(!n.attention());
    }

    #[test]
    fn fully_truncated_packet_is_accounted() {
        let mut n = net();
        // The first packet alone overfills the FIFO; the second arrives
        // while the FIFO is still saturated, so *every* one of its words is
        // dropped — it must be counted, not silently vanish.
        n.inject_packet(vec![1; RX_FIFO_WORDS + 8]);
        n.inject_packet(vec![2; 4]);
        for _ in 0..(RX_FIFO_WORDS + 12) * 100 {
            n.tick();
        }
        assert!(n.inbound.is_empty(), "both packets fully arrived");
        assert_eq!(n.truncated_packets, 1, "second packet fully dropped");
        assert_eq!(
            n.overruns,
            8 + 4,
            "8 words of packet one, all 4 of packet two"
        );
        // Exactly one boundary: the first (truncated) packet's.
        assert_eq!(n.input(3), RX_FIFO_WORDS as Word);
        for _ in 0..RX_FIFO_WORDS {
            n.input(0);
        }
        assert!(!n.attention(), "no phantom boundary from the lost packet");
        assert_eq!(n.input(1), 0, "no words left over");
    }

    #[test]
    fn snapshot_round_trip_mid_receive() {
        use dorado_base::snap::{restore_image, save_image};
        let mut n = net();
        n.inject_packet(vec![10, 20, 30]);
        n.output(0, 7); // tx word pending
        for _ in 0..150 {
            n.tick(); // partway through the inbound packet
        }
        let img = save_image(&n);
        let mut m = net();
        restore_image(&mut m, &img).unwrap();
        assert_eq!(save_image(&m), img);
        for _ in 0..200 {
            n.tick();
            m.tick();
        }
        n.output(2, 0);
        m.output(2, 0);
        assert_eq!(n.transmitted, m.transmitted);
        assert_eq!((n.input(3), n.input(0)), (m.input(3), m.input(0)));
        assert_eq!(save_image(&n), save_image(&m));

        // A snapshot from a differently-wired controller is rejected.
        let mut other = NetworkController::new(TaskId::new(9));
        assert_eq!(
            restore_image(&mut other, &img).unwrap_err(),
            SnapError::Mismatch {
                what: "network task"
            }
        );
    }

    #[test]
    fn attention_distinguishes_buffered_packets() {
        let mut n = NetworkController::with_rate(TaskId::new(13), 300.0, 60.0);
        n.inject_packet(vec![1, 2]);
        n.inject_packet(vec![3]);
        for _ in 0..40 {
            n.tick();
        }
        // Both packets are in the FIFO; reg 3 sees only the first.
        assert_eq!(n.input(1), 3);
        assert_eq!(n.input(3), 2);
        assert!(n.attention());
        n.input(0);
        n.input(0);
        assert!(n.attention(), "second packet keeps attention up");
        assert_eq!(n.input(3), 1);
        n.input(0);
        assert!(!n.attention());
    }

    #[test]
    fn stitchweld_clock_paces_more_cycles_per_word() {
        let mut fast = NetworkController::with_clock(
            TaskId::new(13),
            3.0,
            &ClockConfig::stitchweld(),
        );
        let mut slow = net();
        fast.inject_packet(vec![1]);
        slow.inject_packet(vec![1]);
        let arrival = |n: &mut NetworkController| {
            let mut cycles = 0u64;
            while !n.attention() {
                n.tick();
                cycles += 1;
                assert!(cycles < 10_000);
            }
            cycles
        };
        // Same Mbit/s, shorter cycle: the 50 ns machine needs *more* cycles
        // per word than the 60 ns machine.
        assert!(arrival(&mut fast) > arrival(&mut slow));
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_packets_rejected() {
        net().inject_packet(vec![]);
    }
}
