//! The network controller: a ~3 Mbit/s experimental-Ethernet-style link of
//! the kind the Alto pioneered and the Dorado inherited (§2, §3).
//!
//! Receive: arriving packets trickle words into a FIFO at line rate; the
//! controller wakes its task per word and raises *attention* at packet end.
//! Transmit: microcode pushes words; the controller drains them at line
//! rate and "puts them on the wire" (a captured transcript here).

use crate::{Device, RatePacer};
use dorado_base::{TaskId, Word};
use std::collections::VecDeque;

/// Registers: 0 = data, 1 = status (rx FIFO occupancy), 2 = control
/// (writing any value ends the current transmit packet).
#[derive(Debug)]
pub struct NetworkController {
    task: TaskId,
    pacer: RatePacer,
    /// Packets waiting to arrive (front = in progress).
    inbound: VecDeque<Vec<Word>>,
    /// Words of the in-progress inbound packet already delivered.
    rx_pos: usize,
    rx_fifo: VecDeque<Word>,
    rx_end: bool,
    /// Words promised to in-flight service.
    committed: usize,
    /// Words queued by microcode for transmit.
    tx_fifo: VecDeque<Word>,
    tx_current: Vec<Word>,
    /// Fully transmitted packets (for verification).
    pub transmitted: Vec<Vec<Word>>,
    /// Words lost to rx FIFO overflow.
    pub overruns: u64,
}

impl NetworkController {
    /// The default line rate in Mbit/s (the 3 Mbit/s experimental Ethernet).
    pub const DEFAULT_MBPS: f64 = 3.0;

    /// Creates a controller wired to `task` at the default line rate and a
    /// 60 ns cycle.
    pub fn new(task: TaskId) -> Self {
        Self::with_rate(task, Self::DEFAULT_MBPS, 60.0)
    }

    /// Creates a controller with an explicit line rate.
    pub fn with_rate(task: TaskId, mbps: f64, cycle_ns: f64) -> Self {
        NetworkController {
            task,
            pacer: RatePacer::words_for_mbps(mbps, cycle_ns),
            inbound: VecDeque::new(),
            rx_pos: 0,
            rx_fifo: VecDeque::new(),
            rx_end: false,
            committed: 0,
            tx_fifo: VecDeque::new(),
            tx_current: Vec::new(),
            transmitted: Vec::new(),
            overruns: 0,
        }
    }

    /// Queues a packet to arrive from the wire.
    pub fn inject_packet(&mut self, words: Vec<Word>) {
        assert!(!words.is_empty(), "packets must be non-empty");
        self.inbound.push_back(words);
    }

    /// Whether any receive work remains.
    pub fn rx_busy(&self) -> bool {
        !self.inbound.is_empty() || !self.rx_fifo.is_empty()
    }
}

impl Device for NetworkController {
    fn name(&self) -> &str {
        "network"
    }

    fn task(&self) -> TaskId {
        self.task
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn wakeup(&self) -> bool {
        self.rx_fifo.len() > self.committed || self.rx_end
    }

    fn observe_next(&mut self) {
        if self.rx_fifo.len() > self.committed {
            self.committed += 1;
        }
    }

    fn tick(&mut self) {
        for _ in 0..self.pacer.step() {
            // Receive side.
            if let Some(pkt) = self.inbound.front() {
                if self.rx_pos < pkt.len() {
                    if self.rx_fifo.len() >= 64 {
                        self.overruns += 1;
                    } else {
                        self.rx_fifo.push_back(pkt[self.rx_pos]);
                    }
                    self.rx_pos += 1;
                    if self.rx_pos == pkt.len() {
                        self.inbound.pop_front();
                        self.rx_pos = 0;
                        self.rx_end = true;
                    }
                }
            }
            // Transmit side.
            if let Some(w) = self.tx_fifo.pop_front() {
                self.tx_current.push(w);
            }
        }
    }

    fn input(&mut self, reg: Word) -> Word {
        match reg {
            0 => {
                self.committed = self.committed.saturating_sub(1);
                let w = self.rx_fifo.pop_front().unwrap_or(0);
                if self.rx_fifo.is_empty() {
                    self.rx_end = false;
                }
                w
            }
            _ => self.rx_fifo.len() as Word,
        }
    }

    fn output(&mut self, reg: Word, word: Word) {
        match reg {
            0 => self.tx_fifo.push_back(word),
            2 => {
                // End of packet: flush anything still in the tx FIFO, then
                // commit the packet to the wire transcript.
                while let Some(w) = self.tx_fifo.pop_front() {
                    self.tx_current.push(w);
                }
                if !self.tx_current.is_empty() {
                    self.transmitted.push(std::mem::take(&mut self.tx_current));
                }
            }
            _ => {}
        }
    }

    fn attention(&self) -> bool {
        self.rx_end
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net() -> NetworkController {
        NetworkController::new(TaskId::new(13))
    }

    #[test]
    fn receive_delivers_packet_and_attention() {
        let mut n = net();
        n.inject_packet(vec![10, 20, 30]);
        assert!(!n.wakeup());
        // 3 Mbit/s = 0.01125 words/cycle: 3 words need ~267 cycles.
        for _ in 0..300 {
            n.tick();
        }
        assert!(n.wakeup());
        assert!(n.attention(), "end of packet raises attention");
        assert_eq!(n.input(1), 3);
        assert_eq!((n.input(0), n.input(0), n.input(0)), (10, 20, 30));
        assert!(!n.attention(), "drained packet clears attention");
        assert!(!n.rx_busy());
    }

    #[test]
    fn transmit_collects_packets() {
        let mut n = net();
        for w in [1u16, 2, 3] {
            n.output(0, w);
        }
        for _ in 0..400 {
            n.tick();
        }
        n.output(2, 0); // end of packet
        assert_eq!(n.transmitted, vec![vec![1, 2, 3]]);
        // Next packet accumulates separately.
        n.output(0, 9);
        n.output(2, 0);
        assert_eq!(n.transmitted.len(), 2);
        assert_eq!(n.transmitted[1], vec![9]);
    }

    #[test]
    fn overrun_when_unserviced() {
        let mut n = net();
        n.inject_packet(vec![0; 200]);
        for _ in 0..200 * 100 {
            n.tick();
        }
        assert!(n.overruns > 0);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_packets_rejected() {
        net().inject_packet(vec![]);
    }
}
