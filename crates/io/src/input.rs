//! Keyboard and mouse on the slow-I/O path.
//!
//! The Dorado's user-input devices are low-bandwidth slow-I/O clients
//! (§4.2): a keypress or mouse delta arrives as a single word, raises the
//! device's wakeup, and a two-instruction microcode handler reads it over
//! the IOB with `Input` and stores it into a memory ring.  For
//! reproducible workstation scenarios the device replays a
//! **cycle-stamped event script**: each `(cycle, word)` pair enters the
//! device FIFO on exactly that cycle of device time, in every scheduling
//! mode, so an interactive session is a pure function of its script.
//!
//! Service latency (delivery to microcode `Input` read) is tracked per
//! event — the number EXPERIMENTS.md E19 reports against the §4 claim
//! that slow I/O comfortably absorbs human-speed devices.

use crate::Device;
use dorado_base::snap::{Reader, SnapError, Snapshot, Writer};
use dorado_base::{TaskId, Word};
use std::collections::VecDeque;

/// Device FIFO depth; a real interface chip has a few words of buffering.
const FIFO_WORDS: usize = 16;

/// Which human-input device this is (fixes the device name).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum InputKind {
    Keyboard,
    Mouse,
}

/// A scripted keyboard or mouse on the slow-I/O bus.
///
/// Registers: 0 = data (pops the oldest event word), 1 = FIFO occupancy,
/// 2 = total events delivered (low 16 bits).
#[derive(Debug)]
pub struct InputDevice {
    kind: InputKind,
    task: TaskId,
    /// Device-time clock: counts ticks (and skipped cycles) since attach.
    clock: u64,
    /// The remaining script, stamp-ordered.
    script: VecDeque<(u64, Word)>,
    /// Delivered events awaiting microcode service: (word, delivery cycle).
    fifo: VecDeque<(Word, u64)>,
    /// FIFO words promised to in-flight slow-I/O service.
    committed: usize,
    /// Events that have entered the FIFO.
    pub delivered: u64,
    /// Events the microcode has read.
    pub serviced: u64,
    /// Events dropped on FIFO overflow.
    pub dropped: u64,
    /// Sum of (service cycle - delivery cycle) over serviced events.
    pub latency_total: u64,
    /// Worst-case service latency in cycles.
    pub latency_max: u64,
}

impl InputDevice {
    /// A keyboard wired to `task`.
    pub fn keyboard(task: TaskId) -> Self {
        Self::new(InputKind::Keyboard, task)
    }

    /// A mouse wired to `task`.
    pub fn mouse(task: TaskId) -> Self {
        Self::new(InputKind::Mouse, task)
    }

    fn new(kind: InputKind, task: TaskId) -> Self {
        InputDevice {
            kind,
            task,
            clock: 0,
            script: VecDeque::new(),
            fifo: VecDeque::new(),
            committed: 0,
            delivered: 0,
            serviced: 0,
            dropped: 0,
            latency_total: 0,
            latency_max: 0,
        }
    }

    /// Schedule an event word for delivery at device cycle `at`.
    ///
    /// # Panics
    /// Panics if `at` precedes the last scheduled stamp (scripts must be
    /// stamp-ordered so delivery order is well defined).
    pub fn schedule(&mut self, at: u64, word: Word) {
        if let Some(&(last, _)) = self.script.back() {
            assert!(at >= last, "input script stamps must be non-decreasing");
        }
        self.script.push_back((at, word));
    }

    /// Schedule a whole script of `(cycle, word)` events.
    pub fn schedule_all(&mut self, events: impl IntoIterator<Item = (u64, Word)>) {
        for (at, w) in events {
            self.schedule(at, w);
        }
    }

    /// Events still waiting in the script.
    pub fn pending(&self) -> usize {
        self.script.len()
    }

    /// Mean service latency in cycles over serviced events.
    pub fn latency_mean(&self) -> f64 {
        if self.serviced == 0 {
            0.0
        } else {
            self.latency_total as f64 / self.serviced as f64
        }
    }

    /// Move script events whose stamp has arrived into the FIFO.
    fn deliver_due(&mut self) {
        while let Some(&(at, w)) = self.script.front() {
            if at > self.clock {
                break;
            }
            self.script.pop_front();
            if self.fifo.len() < FIFO_WORDS {
                self.fifo.push_back((w, self.clock));
                self.delivered += 1;
            } else {
                self.dropped += 1;
            }
        }
    }
}

impl Device for InputDevice {
    fn name(&self) -> &str {
        match self.kind {
            InputKind::Keyboard => "keyboard",
            InputKind::Mouse => "mouse",
        }
    }

    fn task(&self) -> TaskId {
        self.task
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn wakeup(&self) -> bool {
        self.fifo.len() > self.committed
    }

    fn observe_next(&mut self) {
        if self.fifo.len() > self.committed {
            self.committed += 1;
        }
    }

    fn tick(&mut self) {
        self.clock += 1;
        self.deliver_due();
    }

    fn input(&mut self, reg: Word) -> Word {
        match reg {
            1 => self.fifo.len() as Word,
            2 => self.delivered as Word,
            _ => match self.fifo.pop_front() {
                Some((w, at)) => {
                    self.committed = self.committed.saturating_sub(1);
                    self.serviced += 1;
                    let latency = self.clock.saturating_sub(at);
                    self.latency_total += latency;
                    self.latency_max = self.latency_max.max(latency);
                    w
                }
                None => 0,
            },
        }
    }

    fn output(&mut self, _reg: Word, _word: Word) {}

    fn attention(&self) -> bool {
        !self.fifo.is_empty()
    }

    fn next_due(&self, now: u64) -> Option<u64> {
        // Quiescent until the next scripted stamp: FIFO contents are
        // frozen observables, and an empty script means the device never
        // changes state again on its own.  The event stamped `at` enters
        // the FIFO on the tick that advances the clock to `at` (or the
        // first tick, for stamps already in the past).
        let &(at, _) = self.script.front()?;
        Some(now.max((at.max(self.clock + 1)) - 1))
    }

    fn skip(&mut self, cycles: u64) {
        self.clock += cycles;
    }

    fn snapshot_save(&self, w: &mut Writer, pending: u64) {
        w.tag(b"INPT");
        w.u8(match self.kind {
            InputKind::Keyboard => 0,
            InputKind::Mouse => 1,
        });
        w.u8(self.task.number());
        // The clock free-runs through quiescent windows: project it so
        // images do not depend on the scheduling mode.
        w.u64(self.clock + pending);
        w.len(self.script.len());
        for &(at, word) in &self.script {
            w.u64(at);
            w.u16(word);
        }
        w.len(self.fifo.len());
        for &(word, at) in &self.fifo {
            w.u16(word);
            w.u64(at);
        }
        w.u64(self.committed as u64);
        w.u64(self.delivered);
        w.u64(self.serviced);
        w.u64(self.dropped);
        w.u64(self.latency_total);
        w.u64(self.latency_max);
    }

    fn snapshot_restore(&mut self, r: &mut Reader<'_>) -> Result<(), SnapError> {
        Snapshot::restore(self, r)
    }
}

impl Snapshot for InputDevice {
    fn save(&self, w: &mut Writer) {
        self.snapshot_save(w, 0);
    }

    fn restore(&mut self, r: &mut Reader<'_>) -> Result<(), SnapError> {
        r.tag(b"INPT")?;
        let kind = match r.u8()? {
            0 => InputKind::Keyboard,
            1 => InputKind::Mouse,
            _ => return Err(SnapError::Mismatch { what: "input device kind" }),
        };
        if kind != self.kind {
            return Err(SnapError::Mismatch { what: "input device kind" });
        }
        if r.u8()? != self.task.number() {
            return Err(SnapError::Mismatch { what: "input device task" });
        }
        self.clock = r.u64()?;
        let n = r.len()?;
        self.script.clear();
        for _ in 0..n {
            let at = r.u64()?;
            let word = r.u16()?;
            self.script.push_back((at, word));
        }
        let n = r.len()?;
        self.fifo.clear();
        for _ in 0..n {
            let word = r.u16()?;
            let at = r.u64()?;
            self.fifo.push_back((word, at));
        }
        if self.fifo.len() > FIFO_WORDS {
            return Err(SnapError::Mismatch { what: "input FIFO depth" });
        }
        self.committed = r.u64()? as usize;
        self.delivered = r.u64()?;
        self.serviced = r.u64()?;
        self.dropped = r.u64()?;
        self.latency_total = r.u64()?;
        self.latency_max = r.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dorado_base::snap::{restore_image, save_image};

    #[test]
    fn events_deliver_on_their_stamped_cycle() {
        let mut k = InputDevice::keyboard(TaskId::new(9));
        k.schedule(3, 0x41);
        k.schedule(3, 0x42);
        k.schedule(10, 0x43);
        for t in 1..=12u64 {
            k.tick();
            let expect = match t {
                0..=2 => 0,
                3..=9 => 2,
                _ => 3,
            };
            assert_eq!(k.delivered, expect, "delivered at clock {t}");
        }
        assert!(k.wakeup());
        assert_eq!(k.input(1), 3);
    }

    #[test]
    fn service_records_latency() {
        let mut k = InputDevice::keyboard(TaskId::new(9));
        k.schedule(5, 0x2A);
        for _ in 0..9 {
            k.tick();
        }
        assert_eq!(k.input(0), 0x2A);
        assert_eq!(k.serviced, 1);
        assert_eq!(k.latency_max, 4, "delivered at 5, serviced at clock 9");
        assert_eq!(k.latency_total, 4);
    }

    #[test]
    fn overflow_drops_and_counts() {
        let mut k = InputDevice::keyboard(TaskId::new(9));
        for i in 0..(FIFO_WORDS as u64 + 3) {
            k.schedule(1, i as Word);
        }
        k.tick();
        assert_eq!(k.delivered, FIFO_WORDS as u64);
        assert_eq!(k.dropped, 3);
        assert_eq!(k.rx_overruns(), 0, "input drops are not rx overruns");
    }

    #[test]
    fn due_cycle_matches_naive_delivery_edge() {
        // The scheduled mode must wake exactly when a naive tick loop
        // would first expose the event.
        let mut naive = InputDevice::mouse(TaskId::new(8));
        naive.schedule(40, 7);
        let mut t = 0u64;
        while !naive.wakeup() {
            naive.tick();
            t += 1;
        }
        let mut sched = InputDevice::mouse(TaskId::new(8));
        sched.schedule(40, 7);
        let due = sched.next_due(0).unwrap();
        sched.skip(due);
        sched.tick();
        assert!(sched.wakeup());
        assert_eq!(due + 1, t, "wakeup rises on the same tick in both modes");
        assert_eq!(save_image(&sched), save_image(&naive));
    }

    #[test]
    fn quiescent_when_script_is_exhausted() {
        let mut k = InputDevice::keyboard(TaskId::new(9));
        assert_eq!(k.next_due(17), None);
        k.schedule(2, 1);
        assert_eq!(k.next_due(0), Some(1));
        for _ in 0..4 {
            k.tick();
        }
        assert_eq!(k.next_due(4), None, "FIFO contents are frozen observables");
    }

    #[test]
    fn snapshot_round_trips_mid_script() {
        let mut k = InputDevice::keyboard(TaskId::new(9));
        k.schedule_all([(2, 10), (8, 11), (90, 12)]);
        for _ in 0..5 {
            k.tick();
        }
        assert_eq!(k.input(0), 10);
        let img = save_image(&k);
        let mut back = InputDevice::keyboard(TaskId::new(9));
        restore_image(&mut back, &img).unwrap();
        assert_eq!(save_image(&back), img);
        // Identical future behaviour.
        for _ in 0..90 {
            k.tick();
            back.tick();
        }
        assert_eq!(k.input(0), back.input(0));
        assert_eq!(save_image(&k), save_image(&back));
    }

    #[test]
    fn projected_clock_is_mode_independent() {
        let mut naive = InputDevice::mouse(TaskId::new(8));
        let sched = InputDevice::mouse(TaskId::new(8));
        for _ in 0..123 {
            naive.tick();
        }
        // Scheduled mode never ticked the idle device; the snapshot layer
        // passes the pending window instead.
        let mut w = Writer::new();
        sched.snapshot_save(&mut w, 123);
        let mut nw = Writer::new();
        naive.snapshot_save(&mut nw, 0);
        assert_eq!(w.finish(), nw.finish());
    }

    #[test]
    fn script_stamps_must_be_ordered() {
        let mut k = InputDevice::keyboard(TaskId::new(9));
        k.schedule(10, 1);
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            k.schedule(5, 2);
        }));
        assert!(err.is_err());
    }
}
