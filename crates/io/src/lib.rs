//! Device controllers and the I/O interconnect (§5.8, §7).
//!
//! The Dorado "shares the processor among all the I/O devices and the
//! emulator" (§4): a device controller is mostly *microcode* plus a little
//! hardware.  This crate models the hardware halves: each [`Device`] raises
//! wakeup requests for its task, exchanges words over the slow I/O busses
//! (`IOADDRESS`/`IODATA`, one word per cycle = 265 Mbit/s), and exchanges
//! 16-word munches over the fast I/O path (530 Mbit/s, cache-bypassing).
//! The microcode halves live in `dorado-emu`.
//!
//! Included controllers:
//!
//! * [`DiskController`] — the ~10 Mbit/s removable disk of §7;
//! * [`DisplayController`] — a raster display refreshed over fast I/O
//!   (Figure 8's dual-path controller);
//! * [`NetworkController`] — a ~3 Mbit/s experimental-Ethernet-style link;
//! * [`RateDevice`] — a synthetic device with a configurable data rate, for
//!   the utilization sweeps in the benchmarks.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod disk;
pub mod display;
pub mod framebuffer;
pub mod input;
pub mod network;
pub mod synth;

pub use disk::DiskController;
pub use display::DisplayController;
pub use framebuffer::Framebuffer;
pub use input::InputDevice;
pub use network::NetworkController;
pub use synth::RateDevice;

use dorado_base::snap::{Reader, SnapError, Snapshot, Writer};
use dorado_base::task::TaskSet;
use dorado_base::{ClockConfig, TaskId, Word, MUNCH_WORDS};

/// A device controller's hardware half.
///
/// The trait is object-safe; controllers are boxed into an [`IoSystem`].
/// Default method bodies let simple devices ignore the fast I/O path.
/// Controllers are plain data and must be [`Send`] so whole machines can
/// move onto worker threads (the cluster executor runs one machine per
/// thread).
pub trait Device: std::fmt::Debug + std::any::Any + Send {
    /// A short name for traces.
    fn name(&self) -> &str;

    /// The microcode task this controller is wired to wake (§5.1).
    fn task(&self) -> TaskId;

    /// Whether the controller is requesting a wakeup this cycle.  "A
    /// controller will continue to request a wakeup until notified by the
    /// processor that it is about to receive service" (§5.2).
    fn wakeup(&self) -> bool;

    /// Called when the controller's task number appears on the NEXT bus —
    /// the notification that service is imminent (§6.2.1).
    fn observe_next(&mut self) {}

    /// Called for an explicit `IoNotify` FF operation (the grain-3
    /// ablation's software wakeup removal); defaults to the same behaviour
    /// as the NEXT-bus broadcast.
    fn notify(&mut self) {
        self.observe_next();
    }

    /// Upcast for concrete-type access from benches and tests.
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any;

    /// Advances the device's internal clock by one microcycle.
    fn tick(&mut self);

    /// The earliest cycle `>= now` at which this device next needs a real
    /// [`Device::tick`], or `None` if it is quiescent until some external
    /// call (slow/fast I/O, NEXT broadcast, host access) changes its state.
    ///
    /// This is the event-horizon scheduling hint: the device promises that
    /// ticking it anywhere before the returned cycle would change nothing
    /// observable — wakeup line, attention line, counters, FIFO contents —
    /// beyond what [`Device::skip`] reconstructs.  The default, `Some(now)`,
    /// requests a tick every cycle (exactly the naive behaviour), so
    /// devices opt in to being skipped.
    fn next_due(&self, now: u64) -> Option<u64> {
        Some(now)
    }

    /// Fast-forwards the device over `cycles` quiescent microcycles the
    /// scheduler skipped.  Called before the next real [`Device::tick`] and
    /// before any externally visible access, so free-running internal state
    /// (a [`RatePacer`] phase) stays bit-identical to a device that was
    /// ticked every cycle.  Devices keeping the default [`Device::next_due`]
    /// are never skipped and may keep the default no-op.
    fn skip(&mut self, cycles: u64) {
        let _ = cycles;
    }

    /// How many upcoming [`Device::tick`] calls provably cannot change the
    /// device's *lines* — the wakeup and attention outputs — assuming no
    /// external access (slow/fast I/O, NEXT broadcast, host poke) arrives
    /// in between.  Unlike [`Device::next_due`] the ticks inside the span
    /// may do arbitrary internal work (drain a FIFO, paint a raster); the
    /// promise is only that nothing the *processor* can observe without an
    /// external access moves before the span ends.
    ///
    /// The compiled execution core uses this to run a fused stretch of
    /// microinstructions with zero device calls and then settle the whole
    /// stretch with one [`Device::tick_span`].  The default is derived
    /// from [`Device::next_due`]: a device quiescent until its due cycle
    /// has frozen lines exactly that long, and a device that is due *now*
    /// promises nothing.  Must only be called on a device whose skipped
    /// cycles have been folded in (see [`Device::skip`]).
    fn stable_span(&self, now: u64) -> u64 {
        match self.next_due(now) {
            None => u64::MAX,
            Some(d) => d.saturating_sub(now),
        }
    }

    /// Performs the work of `n` consecutive [`Device::tick`] calls in one
    /// call.  The default literally loops; devices override it only if
    /// they can batch the work more cheaply.  Callers must not let `n`
    /// overrun a span promised by [`Device::stable_span`] without
    /// re-checking the lines in between.
    fn tick_span(&mut self, n: u64) {
        for _ in 0..n {
            self.tick();
        }
    }

    /// Slow I/O input: the device drives IODATA (processor `Input`).
    /// `reg` is the device-relative register number from IOADDRESS.
    fn input(&mut self, reg: Word) -> Word;

    /// Slow I/O output: the device accepts a word from IODATA (`Output`).
    fn output(&mut self, reg: Word, word: Word);

    /// The device's attention line (the `IoAtten` branch condition).
    fn attention(&self) -> bool {
        false
    }

    /// Fast I/O: the device accepts a munch moved from storage
    /// (`IOFetch16`).
    fn accept_munch(&mut self, munch: &[Word; MUNCH_WORDS]) {
        let _ = munch;
    }

    /// Fast I/O: the device supplies a munch to be moved to storage
    /// (`IOStore16`).
    fn supply_munch(&mut self) -> [Word; MUNCH_WORDS] {
        [0; MUNCH_WORDS]
    }

    /// Words this device dropped because its rx FIFO overflowed while the
    /// service task fell behind the line rate.  Devices without a paced
    /// receive path report zero.
    fn rx_overruns(&self) -> u64 {
        0
    }

    /// Whether the device holds fully committed outbound work a host-side
    /// fabric has yet to drain (a network controller's transmitted-packet
    /// transcript).  This is a *frozen-read* probe: cluster executors call
    /// it through [`IoSystem::device_by_name`] every epoch, so it must be
    /// exact without a sync and must not disturb scheduler state — the
    /// whole point is that an idle machine's controller stays skippable
    /// instead of being forced awake by an unconditional mutable lookup.
    fn tx_pending(&self) -> bool {
        false
    }

    /// Serializes the device's dynamic state into a snapshot (the
    /// object-safe face of [`Snapshot::save`]).  `pending` is the number of
    /// quiescent cycles the scheduler has skipped but not yet folded in via
    /// [`Device::skip`]; devices with free-running state must serialize it
    /// *projected forward* by `pending` cycles so an image taken under the
    /// event-horizon scheduler is byte-identical to one taken under naive
    /// per-cycle ticking.  Stateless devices may keep the default no-op,
    /// paired with the default [`Device::snapshot_restore`].
    fn snapshot_save(&self, w: &mut Writer, pending: u64) {
        let _ = (w, pending);
    }

    /// Restores the device's dynamic state from a snapshot.
    ///
    /// # Errors
    ///
    /// Returns a [`SnapError`] if the image is malformed or was taken from
    /// a device with different configuration.
    fn snapshot_restore(&mut self, r: &mut Reader<'_>) -> Result<(), SnapError> {
        let _ = r;
        Ok(())
    }
}

/// The I/O interconnect: device registry, IOADDRESS decoding, and wakeup
/// collection, with an event-horizon scheduler that only ticks devices at
/// their [`Device::next_due`] cycles.
///
/// The scheduler is architecturally invisible.  Its correctness rests on
/// two invariants: (1) a quiescent device's observable state — wakeup line,
/// attention line, counters, FIFOs — is frozen until its due cycle or an
/// external access, so the cached copies served meanwhile are exact; and
/// (2) `now` never passes a stored due cycle, because a cycle is skipped
/// only when it is earlier than the minimum due over all devices.
#[derive(Debug, Default)]
pub struct IoSystem {
    devices: Vec<Attached>,
    /// The task seen on NEXT last cycle: devices observe only the rising
    /// edge of their grant (one wakeup removal per activation, §6.2.1),
    /// not every cycle of a multi-instruction service.
    last_next: Option<TaskId>,
    /// The interconnect's cycle counter: how many [`IoSystem::tick`] calls
    /// have completed.
    now: u64,
    /// The earliest due cycle over all devices (`u64::MAX` when everything
    /// is quiescent) — the event horizon the tick fast path compares
    /// against.
    min_due: u64,
    /// Cached union of the asserted wakeup lines, maintained by every path
    /// that can change one (tick, NEXT broadcast, external access).
    wakeups: TaskSet,
    /// Naive reference mode: tick every device every cycle, ignoring
    /// `next_due` hints.  For equivalence tests and baseline benchmarks.
    always_tick: bool,
    /// Last IOADDRESS decode hit, since slow-IO loops poll one device.
    last_decode: usize,
}

#[derive(Debug)]
struct Attached {
    base: Word,
    regs: Word,
    /// Cache of `device.task()`, so NEXT broadcasts don't virtual-dispatch
    /// into every device.
    task: TaskId,
    /// The device has processed every cycle before this one (via real
    /// ticks or [`Device::skip`]).  Always `<= IoSystem::now`.
    synced_at: u64,
    /// Next cycle needing a real tick; `u64::MAX` = quiescent until an
    /// external access.
    due: u64,
    /// Cache of `device.wakeup()`, exact while the device is quiescent.
    wake: bool,
    device: Box<dyn Device>,
}

impl IoSystem {
    /// Creates an empty interconnect.
    pub fn new() -> Self {
        IoSystem::default()
    }

    /// Attaches a device claiming IOADDRESS values `base .. base + regs`.
    ///
    /// # Panics
    ///
    /// Panics if the address range overlaps an attached device, `regs` is
    /// zero, or the range wraps.
    pub fn attach(&mut self, device: Box<dyn Device>, base: Word, regs: Word) {
        assert!(regs > 0, "device must claim at least one register");
        assert!(base.checked_add(regs - 1).is_some(), "address range wraps");
        for a in &self.devices {
            let overlap = base < a.base + a.regs && a.base < base + regs;
            assert!(
                !overlap,
                "IOADDRESS range {base}..{} overlaps {}",
                base + regs,
                a.device.name()
            );
        }
        let task = device.task();
        let due = Self::due_of(device.as_ref(), self.now);
        let wake = device.wakeup();
        self.devices.push(Attached {
            base,
            regs,
            task,
            synced_at: self.now,
            due,
            wake,
            device,
        });
        self.rebuild_summary();
    }

    /// Switches between the event-horizon scheduler (default) and naive
    /// always-tick mode, which ticks every device every microcycle and
    /// ignores [`Device::next_due`] hints.  The scheduler is required to be
    /// architecturally invisible, so this exists as the reference side of
    /// the equivalence tests and the `e17_sim_throughput` baseline.
    pub fn set_always_tick(&mut self, on: bool) {
        self.always_tick = on;
        if !on {
            // Re-entering scheduled mode: the dues were not maintained
            // while every device was being ticked, so recompute them all.
            for i in 0..self.devices.len() {
                let a = &mut self.devices[i];
                a.due = Self::due_of(a.device.as_ref(), self.now);
                a.wake = a.device.wakeup();
            }
            self.rebuild_summary();
        }
    }

    fn due_of(device: &dyn Device, now: u64) -> u64 {
        device.next_due(now).map_or(u64::MAX, |d| d.max(now))
    }

    /// Folds skipped quiescent cycles into device `i` so its internal state
    /// matches a naively ticked device's, before an external access.
    fn sync_device(&mut self, i: usize) {
        let a = &mut self.devices[i];
        if a.synced_at < self.now {
            a.device.skip(self.now - a.synced_at);
            a.synced_at = self.now;
        }
    }

    /// Recomputes device `i`'s cached due cycle and wakeup line after an
    /// external access may have changed its state.
    fn refresh_device(&mut self, i: usize) {
        let a = &mut self.devices[i];
        a.due = Self::due_of(a.device.as_ref(), self.now);
        a.wake = a.device.wakeup();
        self.rebuild_summary();
    }

    fn rebuild_summary(&mut self) {
        let mut min_due = u64::MAX;
        let mut wakeups = TaskSet::EMPTY;
        for a in &self.devices {
            min_due = min_due.min(a.due);
            if a.wake {
                wakeups.insert(a.task);
            }
        }
        self.min_due = min_due;
        self.wakeups = wakeups;
    }

    /// Number of attached devices.
    pub fn len(&self) -> usize {
        self.devices.len()
    }

    /// Whether no devices are attached.
    pub fn is_empty(&self) -> bool {
        self.devices.is_empty()
    }

    /// Advances all devices one microcycle.
    ///
    /// Hot path: while every device's due cycle lies in the future, the
    /// whole call is one compare against the event horizon.  Skipped
    /// cycles are folded back in by [`Device::skip`] before a device's
    /// next real tick, so observable state stays bit-identical to ticking
    /// every device every cycle.
    pub fn tick(&mut self) {
        let now = self.now;
        self.now = now + 1;
        if self.always_tick {
            // Naive reference mode: tick everything, keep the wakeup cache
            // fresh, and leave the (unused) due bookkeeping alone so the
            // reference loop costs what the pre-scheduler loop cost.  The
            // dues are recomputed wholesale if the scheduler is re-enabled
            // (see `set_always_tick`).
            let mut wakeups = TaskSet::EMPTY;
            for a in &mut self.devices {
                a.device.tick();
                a.synced_at = now + 1;
                a.wake = a.device.wakeup();
                if a.wake {
                    wakeups.insert(a.task);
                }
            }
            self.wakeups = wakeups;
            return;
        }
        if now < self.min_due {
            return;
        }
        let mut min_due = u64::MAX;
        let mut wakeups = TaskSet::EMPTY;
        for a in &mut self.devices {
            if a.due <= now {
                if a.synced_at < now {
                    a.device.skip(now - a.synced_at);
                }
                a.device.tick();
                a.synced_at = now + 1;
                a.due = Self::due_of(a.device.as_ref(), now + 1);
                a.wake = a.device.wakeup();
            }
            min_due = min_due.min(a.due);
            if a.wake {
                wakeups.insert(a.task);
            }
        }
        self.min_due = min_due;
        self.wakeups = wakeups;
    }

    /// The wakeup requests currently asserted, as a task set (the WAKEUP
    /// register's inputs, §6.2.1).  Served from the cache: a device's
    /// wakeup line only changes on a real tick or an external access, and
    /// both refresh it.
    pub fn wakeups(&self) -> TaskSet {
        self.wakeups
    }

    /// Whether naive always-tick mode is on (see
    /// [`IoSystem::set_always_tick`]).
    pub fn always_tick(&self) -> bool {
        self.always_tick
    }

    /// Whether the most recent NEXT broadcast named `task` — i.e. another
    /// [`IoSystem::observe_next`] with the same task would be a no-op.
    pub fn next_was(&self, task: TaskId) -> bool {
        self.last_next == Some(task)
    }

    /// How many upcoming [`IoSystem::tick`] calls are guaranteed to be
    /// complete no-ops beyond advancing the clock: the distance from `now`
    /// to the event horizon.  Zero in always-tick mode, where every tick
    /// does real work.  The compiled execution core uses this to hoist the
    /// per-cycle device clock out of a fused basic-block run and replay it
    /// with one [`IoSystem::advance_quiet`].
    pub fn quiet_horizon(&self) -> u64 {
        if self.always_tick {
            return 0;
        }
        self.min_due.saturating_sub(self.now)
    }

    /// Advances the interconnect clock over `cycles` ticks that
    /// [`IoSystem::quiet_horizon`] promised are no-ops.  Bit-identical to
    /// calling [`IoSystem::tick`] `cycles` times while inside the horizon:
    /// each such tick only increments `now` and returns at the fast path.
    pub fn advance_quiet(&mut self, cycles: u64) {
        debug_assert!(
            !self.always_tick && self.now + cycles <= self.min_due,
            "advance_quiet({cycles}) past the event horizon"
        );
        self.now += cycles;
    }

    /// How many upcoming [`IoSystem::tick`] calls provably cannot change
    /// any device's wakeup or attention line, assuming no external access
    /// intervenes.  This is strictly stronger than
    /// [`IoSystem::quiet_horizon`]: a device may need real per-cycle work
    /// inside the span (a display draining its FIFO at the dot rate) as
    /// long as its *lines* hold still.  The compiled core runs that many
    /// fused cycles without touching the device clock and then settles
    /// them with one [`IoSystem::tick_span`].  Zero in always-tick mode.
    pub fn stable_span(&mut self) -> u64 {
        if self.always_tick {
            return 0;
        }
        let now = self.now;
        let mut span = u64::MAX;
        for a in &mut self.devices {
            let s = if a.due > now {
                // Quiescent until due; at the due cycle its lines may move.
                a.due - now
            } else {
                // Due now: fold any skipped cycles so the device's span
                // arithmetic sees its true phase, then ask it directly.
                if a.synced_at < now {
                    a.device.skip(now - a.synced_at);
                    a.synced_at = now;
                }
                a.device.stable_span(now)
            };
            span = span.min(s);
        }
        span
    }

    /// Advances the interconnect clock `n` cycles in one call, giving each
    /// device that falls due inside the window its ticks en bloc.
    /// Bit-identical to `n` calls of [`IoSystem::tick`] *provided* the
    /// wakeup and attention lines cannot change inside the window — i.e.
    /// `n` must not overrun a span promised by [`IoSystem::stable_span`]
    /// plus one boundary re-check.  (A device's early ticks equal
    /// [`Device::skip`] by the `next_due` contract, so handing it the
    /// whole window as consecutive ticks matches the naive reference.)
    pub fn tick_span(&mut self, n: u64) {
        if n == 0 {
            return;
        }
        debug_assert!(!self.always_tick, "tick_span in always-tick mode");
        let end = self.now + n;
        if end <= self.min_due {
            // Every device stays quiescent through the window: the whole
            // call is the fast path of `n` ticks.
            self.now = end;
            return;
        }
        for a in &mut self.devices {
            if a.due >= end {
                continue;
            }
            // Quiescent prefix folds via skip; the rest are real ticks.
            if a.due > a.synced_at {
                a.device.skip(a.due - a.synced_at);
            }
            a.device.tick_span(end - a.due);
            a.synced_at = end;
            a.due = Self::due_of(a.device.as_ref(), end);
            a.wake = a.device.wakeup();
        }
        self.now = end;
        self.rebuild_summary();
    }

    /// Forgets the one-entry IOADDRESS decode hint.  The hint is only a
    /// cache (every decode still range-checks), but fast paths built on
    /// top of the decoder invalidate it defensively whenever machine state
    /// is replaced wholesale (snapshot restore, control-store writes).
    pub fn reset_decode_cache(&mut self) {
        self.last_decode = 0;
    }

    /// Broadcasts the NEXT bus: devices whose task is *newly* granted see
    /// the notification and may drop their wakeup (§6.2.1: "the earliest
    /// the wakeup can be removed is t0 of the task's first instruction").
    pub fn observe_next(&mut self, next: TaskId) {
        if self.last_next != Some(next) {
            let mut touched = false;
            for i in 0..self.devices.len() {
                if self.devices[i].task == next {
                    self.sync_device(i);
                    let a = &mut self.devices[i];
                    a.device.observe_next();
                    a.due = Self::due_of(a.device.as_ref(), self.now);
                    a.wake = a.device.wakeup();
                    touched = true;
                }
            }
            if touched {
                self.rebuild_summary();
            }
        }
        self.last_next = Some(next);
    }

    /// IOADDRESS decode with a one-entry cache: slow-IO service loops poll
    /// one device's register block repeatedly, so the common case is a
    /// single range check instead of a scan over every attachment.
    fn decode_index(&mut self, ioaddr: Word) -> Option<usize> {
        if let Some(a) = self.devices.get(self.last_decode) {
            if ioaddr >= a.base && ioaddr < a.base + a.regs {
                return Some(self.last_decode);
            }
        }
        let i = self
            .devices
            .iter()
            .position(|a| ioaddr >= a.base && ioaddr < a.base + a.regs)?;
        self.last_decode = i;
        Some(i)
    }

    /// Slow I/O input from the device at `ioaddr`; an unclaimed address
    /// reads as zero (open bus).
    pub fn input(&mut self, ioaddr: Word) -> Word {
        match self.decode_index(ioaddr) {
            Some(i) => {
                self.sync_device(i);
                let a = &mut self.devices[i];
                let word = a.device.input(ioaddr - a.base);
                self.refresh_device(i);
                word
            }
            None => 0,
        }
    }

    /// Slow I/O output to the device at `ioaddr`; unclaimed addresses
    /// swallow the word.
    pub fn output(&mut self, ioaddr: Word, word: Word) {
        if let Some(i) = self.decode_index(ioaddr) {
            self.sync_device(i);
            let a = &mut self.devices[i];
            a.device.output(ioaddr - a.base, word);
            self.refresh_device(i);
        }
    }

    /// Explicit wakeup-served notification to the device at `ioaddr`
    /// (the `IoNotify` FF operation).
    pub fn notify(&mut self, ioaddr: Word) {
        if let Some(i) = self.decode_index(ioaddr) {
            self.sync_device(i);
            self.devices[i].device.notify();
            self.refresh_device(i);
        }
    }

    /// The attention line of the device at `ioaddr`.  Read-only, and a
    /// quiescent device's attention line is frozen (part of the
    /// [`Device::next_due`] contract), so the cached state is exact.
    pub fn attention(&mut self, ioaddr: Word) -> bool {
        match self.decode_index(ioaddr) {
            Some(i) => self.devices[i].device.attention(),
            None => false,
        }
    }

    /// Fast I/O delivery of a munch to the device at `ioaddr`.
    pub fn accept_munch(&mut self, ioaddr: Word, munch: &[Word; MUNCH_WORDS]) {
        if let Some(i) = self.decode_index(ioaddr) {
            self.sync_device(i);
            self.devices[i].device.accept_munch(munch);
            self.refresh_device(i);
        }
    }

    /// Fast I/O collection of a munch from the device at `ioaddr`.
    pub fn supply_munch(&mut self, ioaddr: Word) -> [Word; MUNCH_WORDS] {
        match self.decode_index(ioaddr) {
            Some(i) => {
                self.sync_device(i);
                let munch = self.devices[i].device.supply_munch();
                self.refresh_device(i);
                munch
            }
            None => [0; MUNCH_WORDS],
        }
    }

    /// Total rx-FIFO overrun words across every attached device — the
    /// machine-wide `io_overruns` counter in `Stats`.  Overrun counters
    /// only move on real ticks, so no sync is needed.
    pub fn rx_overruns(&self) -> u64 {
        self.devices.iter().map(|a| a.device.rx_overruns()).sum()
    }

    /// Borrows an attached device by name, for test assertions.  The
    /// device may be mid-quiescent-window; everything observable is frozen
    /// then, so reads are exact.
    pub fn device_by_name(&self, name: &str) -> Option<&dyn Device> {
        self.devices
            .iter()
            .find(|a| a.device.name() == name)
            .map(|a| a.device.as_ref())
    }

    /// Mutably borrows an attached device by name.  The borrow is opaque
    /// to the scheduler (hosts use it to inject packets, start transfers,
    /// flip device modes), so the device is synced first and its due cycle
    /// pulled forward to now — the next [`IoSystem::tick`] gives it a real
    /// tick and re-evaluates the hint against the mutated state.
    pub fn device_by_name_mut(&mut self, name: &str) -> Option<&mut Box<dyn Device>> {
        let i = self.devices.iter().position(|a| a.device.name() == name)?;
        self.sync_device(i);
        self.devices[i].due = self.now;
        self.min_due = self.min_due.min(self.now);
        Some(&mut self.devices[i].device)
    }
}

/// A fixed-point rate accumulator: delivers `num` events per `den` cycles,
/// spread as evenly as integer arithmetic allows.  Used by every controller
/// to model its media data rate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RatePacer {
    num: u64,
    den: u64,
    acc: u64,
}

impl RatePacer {
    /// A pacer delivering `num` events every `den` cycles.
    ///
    /// # Panics
    ///
    /// Panics if `den` is zero.
    pub fn new(num: u64, den: u64) -> Self {
        assert!(den > 0, "rate denominator must be positive");
        RatePacer { num, den, acc: 0 }
    }

    /// A pacer for a data rate in megabits/second of 16-bit words, given
    /// the machine cycle time in nanoseconds.
    ///
    /// # Panics
    ///
    /// Panics unless both arguments are positive.
    pub fn words_for_mbps(mbps: f64, cycle_ns: f64) -> Self {
        assert!(mbps > 0.0 && cycle_ns > 0.0);
        // words per cycle = mbps · 1e6 bit/s ÷ 16 bit · cycle_ns · 1e-9 s.
        // Scale to integers with a parts-per-billion denominator.
        let num = (mbps * 1e6 / 16.0 * cycle_ns).round() as u64;
        RatePacer::new(num, 1_000_000_000)
    }

    /// A pacer for a data rate in megabits/second of 16-bit words, taking
    /// the cycle time from a [`ClockConfig`] — the one place the clock and
    /// the line-rate math meet.
    pub fn for_clock(mbps: f64, clock: &ClockConfig) -> Self {
        Self::words_for_mbps(mbps, clock.cycle_ns())
    }

    /// Advances one cycle; returns how many events fire this cycle.
    pub fn step(&mut self) -> u64 {
        self.acc += self.num;
        let events = self.acc / self.den;
        self.acc %= self.den;
        events
    }

    /// How many further [`RatePacer::step`] calls until one fires an
    /// event, counting that call itself (so the result is at least 1), or
    /// `None` for a zero-rate pacer that never fires.
    pub fn cycles_until_event(&self) -> Option<u64> {
        if self.num == 0 {
            return None;
        }
        // The k-th step fires once acc + k·num reaches den.  Devices paced
        // near (or above) one event per cycle ask every tick, so the
        // single-cycle answer avoids the division.
        let gap = self.den - self.acc;
        if self.num >= gap {
            return Some(1);
        }
        Some(gap.div_ceil(self.num))
    }

    /// How many further [`RatePacer::step`] calls until the `n`-th event
    /// fires, counting that call itself, or `None` for a zero-rate pacer.
    /// `n = 0` answers 0.  Closed form of calling
    /// [`RatePacer::cycles_until_event`] and stepping `n` times over.
    pub fn cycles_until_events(&self, n: u64) -> Option<u64> {
        if n == 0 {
            return Some(0);
        }
        if self.num == 0 {
            return None;
        }
        // The k-th step leaves the running total at acc + k·num; the n-th
        // event has fired once that total reaches n·den.
        let need = u128::from(n) * u128::from(self.den) - u128::from(self.acc);
        Some(need.div_ceil(u128::from(self.num)) as u64)
    }

    /// The pacer as it would stand after `cycles` individual
    /// [`RatePacer::step`] calls.  Stepping leaves `acc` at
    /// `(acc + cycles·num) mod den` whether or not events fired along the
    /// way, so the closed form is exact and the scheduler can fast-forward
    /// a pacer across a quiescent window in O(1).
    #[must_use]
    pub fn advanced(&self, cycles: u64) -> RatePacer {
        let acc = ((u128::from(self.acc) + u128::from(cycles) * u128::from(self.num))
            % u128::from(self.den)) as u64;
        RatePacer { acc, ..*self }
    }

    /// Events per cycle as a float (for reporting).
    pub fn rate(&self) -> f64 {
        self.num as f64 / self.den as f64
    }
}

impl Snapshot for RatePacer {
    fn save(&self, w: &mut Writer) {
        w.u64(self.num);
        w.u64(self.den);
        w.u64(self.acc);
    }

    fn restore(&mut self, r: &mut Reader<'_>) -> Result<(), SnapError> {
        // num/den are configuration; only the accumulator phase is dynamic.
        if r.u64()? != self.num || r.u64()? != self.den {
            return Err(SnapError::Mismatch { what: "pacer rate" });
        }
        self.acc = r.u64()?;
        Ok(())
    }
}

impl Snapshot for IoSystem {
    fn save(&self, w: &mut Writer) {
        w.tag(b"IOSY");
        match self.last_next {
            Some(t) => {
                w.bool(true);
                w.u8(t.number());
            }
            None => w.bool(false),
        }
        w.u64(self.now);
        w.len(self.devices.len());
        for a in &self.devices {
            w.byte_seq(a.device.name().bytes());
            // Serialize free-running state projected over the cycles the
            // scheduler skipped but has not yet folded in: images must not
            // depend on the scheduling mode.
            a.device.snapshot_save(w, self.now - a.synced_at);
        }
    }

    fn restore(&mut self, r: &mut Reader<'_>) -> Result<(), SnapError> {
        r.tag(b"IOSY")?;
        self.last_next = if r.bool()? {
            Some(TaskId::new(r.u8()?))
        } else {
            None
        };
        self.now = r.u64()?;
        if r.len()? != self.devices.len() {
            return Err(SnapError::Mismatch {
                what: "device count",
            });
        }
        for a in &mut self.devices {
            if r.byte_seq()? != a.device.name().as_bytes() {
                return Err(SnapError::Mismatch {
                    what: "device order",
                });
            }
            a.device.snapshot_restore(r)?;
            // Scheduler bookkeeping is derived, not serialized: a restored
            // device is fully synced, and its due cycle is recomputed from
            // the restored state.
            a.synced_at = self.now;
            a.due = Self::due_of(a.device.as_ref(), self.now);
            a.wake = a.device.wakeup();
        }
        // The decode hint indexes the pre-restore access pattern; drop it
        // so no fast path can act on it against the restored state.
        self.last_decode = 0;
        self.rebuild_summary();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug)]
    struct Echo {
        task: TaskId,
        last: Word,
        wake: bool,
    }

    impl Device for Echo {
        fn name(&self) -> &str {
            "echo"
        }
        fn task(&self) -> TaskId {
            self.task
        }
        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }
        fn wakeup(&self) -> bool {
            self.wake
        }
        fn observe_next(&mut self) {
            self.wake = false;
        }
        fn tick(&mut self) {}
        fn input(&mut self, reg: Word) -> Word {
            self.last.wrapping_add(reg)
        }
        fn output(&mut self, _reg: Word, word: Word) {
            self.last = word;
        }
    }

    fn echo(task: u8) -> Box<Echo> {
        Box::new(Echo {
            task: TaskId::new(task),
            last: 0,
            wake: true,
        })
    }

    #[test]
    fn attach_and_decode() {
        let mut io = IoSystem::new();
        assert!(io.is_empty());
        io.attach(echo(9), 0x10, 4);
        assert_eq!(io.len(), 1);
        io.output(0x12, 0xabc);
        assert_eq!(io.input(0x12), 0xabc + 2);
        // Unclaimed addresses are open-bus.
        assert_eq!(io.input(0x50), 0);
        io.output(0x50, 1); // swallowed
        assert!(!io.attention(0x10));
    }

    #[test]
    #[should_panic(expected = "overlaps")]
    fn overlapping_ranges_rejected() {
        let mut io = IoSystem::new();
        io.attach(echo(9), 0x10, 4);
        io.attach(echo(10), 0x12, 1);
    }

    #[test]
    fn wakeups_collect_and_clear_on_next() {
        let mut io = IoSystem::new();
        io.attach(echo(9), 0x10, 1);
        io.attach(echo(12), 0x20, 1);
        let w = io.wakeups();
        assert!(w.contains(TaskId::new(9)) && w.contains(TaskId::new(12)));
        io.observe_next(TaskId::new(9));
        let w = io.wakeups();
        assert!(!w.contains(TaskId::new(9)));
        assert!(w.contains(TaskId::new(12)));
    }

    #[test]
    fn device_lookup_by_name() {
        let mut io = IoSystem::new();
        io.attach(echo(9), 0x10, 1);
        assert!(io.device_by_name("echo").is_some());
        assert!(io.device_by_name("ghost").is_none());
        assert!(io.device_by_name_mut("echo").is_some());
    }

    #[test]
    fn pacer_average_rate() {
        let mut p = RatePacer::new(3, 80); // the 10 Mbit/s disk: 3 words/80 cycles
        let total: u64 = (0..8000).map(|_| p.step()).sum();
        assert_eq!(total, 300);
    }

    #[test]
    fn overruns_sum_across_devices() {
        let mut io = IoSystem::new();
        io.attach(echo(9), 0x10, 1);
        assert_eq!(io.rx_overruns(), 0);
        let mut n = NetworkController::new(TaskId::new(13));
        n.overruns = 7;
        io.attach(Box::new(n), 0x30, 4);
        assert_eq!(io.rx_overruns(), 7);
    }

    #[test]
    fn io_system_snapshot_round_trips_attached_devices() {
        use dorado_base::snap::{restore_image, save_image};
        let build = || {
            let mut io = IoSystem::new();
            io.attach(Box::new(NetworkController::new(TaskId::new(13))), 0x30, 4);
            io.attach(Box::new(DiskController::new(TaskId::new(11))), 0x10, 2);
            io
        };
        let mut a = build();
        if let Some(n) = a.device_by_name_mut("network") {
            n.as_any_mut()
                .downcast_mut::<NetworkController>()
                .unwrap()
                .inject_packet(vec![5, 6, 7]);
        }
        for _ in 0..500 {
            a.tick();
        }
        a.observe_next(TaskId::new(13));
        let img = save_image(&a);

        let mut b = build();
        restore_image(&mut b, &img).unwrap();
        assert_eq!(save_image(&b), img);
        assert_eq!(a.wakeups(), b.wakeups());
        for _ in 0..100 {
            a.tick();
            b.tick();
        }
        assert_eq!(a.input(0x30), b.input(0x30));
        assert_eq!(save_image(&a), save_image(&b));

        // Device-order mismatch is rejected.
        let mut wrong = IoSystem::new();
        wrong.attach(Box::new(DiskController::new(TaskId::new(11))), 0x10, 2);
        wrong.attach(Box::new(NetworkController::new(TaskId::new(13))), 0x30, 4);
        assert_eq!(
            restore_image(&mut wrong, &img).unwrap_err(),
            SnapError::Mismatch {
                what: "device order"
            }
        );
    }

    #[test]
    fn pacer_from_mbps() {
        // 10 Mbit/s at 60 ns: 0.0375 words/cycle.
        let p = RatePacer::words_for_mbps(10.0, 60.0);
        assert!((p.rate() - 0.0375).abs() < 1e-9);
        // 265 Mbit/s ≈ one word per cycle.
        let p = RatePacer::words_for_mbps(265.0, 60.0);
        assert!((p.rate() - 1.0).abs() < 0.01);
    }

    #[test]
    fn pacer_spreads_events() {
        let mut p = RatePacer::new(1, 3);
        let pattern: Vec<u64> = (0..9).map(|_| p.step()).collect();
        assert_eq!(pattern.iter().sum::<u64>(), 3);
        assert!(pattern.iter().all(|&e| e <= 1));
    }

    #[test]
    #[should_panic(expected = "denominator")]
    fn pacer_rejects_zero_den() {
        let _ = RatePacer::new(1, 0);
    }

    #[test]
    fn pacer_projection_matches_stepping() {
        let mut naive = RatePacer::new(37, 1000);
        for k in 0..500u64 {
            assert_eq!(
                RatePacer::new(37, 1000).advanced(k),
                naive,
                "closed-form advance equals {k} individual steps"
            );
            let mut probe = naive;
            let due = probe.cycles_until_event().unwrap();
            for i in 1..=due {
                let fired = probe.step() > 0;
                assert_eq!(fired, i == due, "event fires exactly on the predicted step");
            }
            naive.step();
        }
        assert_eq!(RatePacer::new(0, 5).cycles_until_event(), None);
    }

    /// A device with a self-scheduling period: fires an event every
    /// `period` cycles and tells the scheduler so.  `ticks` counts real
    /// ticks, so the test can prove skipping happened while the observable
    /// event count stays exact.
    #[derive(Debug)]
    struct Horizon {
        task: TaskId,
        period: u64,
        clock: u64,
        ticks: u64,
        events: u64,
    }

    impl Device for Horizon {
        fn name(&self) -> &str {
            "horizon"
        }
        fn task(&self) -> TaskId {
            self.task
        }
        fn wakeup(&self) -> bool {
            false
        }
        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }
        fn tick(&mut self) {
            self.clock += 1;
            self.ticks += 1;
            if self.clock.is_multiple_of(self.period) {
                self.events += 1;
            }
        }
        fn next_due(&self, now: u64) -> Option<u64> {
            // The tick at cycle t advances the clock to t+1; the event
            // lands on the last cycle of each period.
            Some(now + (self.period - 1 - now % self.period))
        }
        fn skip(&mut self, cycles: u64) {
            self.clock += cycles;
        }
        fn input(&mut self, _reg: Word) -> Word {
            self.events as Word
        }
        fn output(&mut self, _reg: Word, _word: Word) {}
    }

    #[test]
    fn scheduler_skips_quiescent_cycles_without_losing_events() {
        let horizon = || {
            Box::new(Horizon {
                task: TaskId::new(9),
                period: 50,
                clock: 0,
                ticks: 0,
                events: 0,
            })
        };
        let mut scheduled = IoSystem::new();
        scheduled.attach(horizon(), 0x10, 1);
        let mut naive = IoSystem::new();
        naive.attach(horizon(), 0x10, 1);
        naive.set_always_tick(true);
        for _ in 0..500 {
            scheduled.tick();
            naive.tick();
        }
        assert_eq!(scheduled.input(0x10), 10, "10 events in 500 cycles");
        assert_eq!(naive.input(0x10), 10);
        let ticks = |io: &mut IoSystem| {
            io.device_by_name_mut("horizon")
                .unwrap()
                .as_any_mut()
                .downcast_mut::<Horizon>()
                .unwrap()
                .ticks
        };
        assert_eq!(ticks(&mut naive), 500, "reference mode ticks every cycle");
        assert_eq!(ticks(&mut scheduled), 10, "scheduler ticks only at due cycles");
    }
}
