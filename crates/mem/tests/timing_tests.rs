//! Timing-series tests over the memory system: storage contention, miss
//! streams, write-back pressure, and the IFU port.

use dorado_base::{TaskId, VirtAddr};
use dorado_mem::{MemConfig, MemorySystem};

const T0: TaskId = TaskId::EMULATOR;

fn drain(m: &mut MemorySystem, t: TaskId) -> u16 {
    loop {
        match m.memdata(t) {
            Ok(w) => return w,
            Err(_) => m.tick(),
        }
    }
}

#[test]
fn miss_stream_throughput_is_storage_limited() {
    // Fetching a new munch every time: limited to one munch per storage
    // cycle (8), i.e. the miss stream cannot beat 1 fetch / 8 cycles.
    let mut m = MemorySystem::new(MemConfig::default());
    let start = m.now();
    for k in 0..32u32 {
        let addr = VirtAddr::new(k * 16);
        loop {
            match m.start_fetch(T0, addr) {
                Ok(()) => break,
                Err(_) => m.tick(),
            }
        }
        let _ = drain(&mut m, T0);
    }
    let elapsed = m.now() - start;
    assert!(elapsed >= 32 * 8, "storage cycle floor: {elapsed}");
    assert_eq!(m.counters().cache_hits(), 0);
    assert_eq!(m.counters().storage_refs(), 32);
}

#[test]
fn hit_stream_sustains_one_reference_per_cycle_pair() {
    // Warm one munch, then fetch within it repeatedly: a fetch can start
    // every cycle (2-deep pipe), so 32 fetches take about 34 cycles.
    let mut m = MemorySystem::new(MemConfig::default());
    m.start_fetch(T0, VirtAddr::new(0)).unwrap();
    let _ = drain(&mut m, T0);
    let start = m.now();
    for k in 0..32u32 {
        while !m.can_start_fetch(T0, VirtAddr::new(k % 16)) {
            m.tick();
        }
        m.start_fetch(T0, VirtAddr::new(k % 16)).unwrap();
        m.tick();
    }
    let elapsed = m.now() - start;
    // Steady state: one reference starts every cycle ("a cache reference
    // [can start] in every cycle", §3); an unconsumed ready word simply
    // rolls into the MEMDATA register as the pipe refills.
    assert!(elapsed <= 36, "pipelined hits: {elapsed} cycles for 32");
}

#[test]
fn writeback_pressure_doubles_storage_traffic() {
    // Dirty every line of a tiny cache, then stream misses: each miss
    // costs a fill plus a write-back.
    let mut m = MemorySystem::new(MemConfig {
        cache_words: 64, // 2 sets x 2 ways
        assoc: 2,
        ..MemConfig::default()
    });
    // Dirty 4 munches (the whole cache).
    for k in 0..4u32 {
        loop {
            match m.start_store(T0, VirtAddr::new(k * 16), 0xaaaa) {
                Ok(()) => break,
                Err(_) => m.tick(),
            }
        }
        for _ in 0..10 {
            m.tick();
        }
    }
    let refs_before = m.counters().storage_refs();
    let wb_before = m.counters().writebacks();
    // Miss through fresh addresses.
    for k in 10..14u32 {
        loop {
            match m.start_fetch(T0, VirtAddr::new(k * 16)) {
                Ok(()) => break,
                Err(_) => m.tick(),
            }
        }
        let _ = drain(&mut m, T0);
    }
    assert_eq!(m.counters().writebacks() - wb_before, 4);
    assert_eq!(m.counters().storage_refs() - refs_before, 8, "fill + WB each");
    // The dirty data survived.
    for k in 0..4u32 {
        assert_eq!(m.read_virt(VirtAddr::new(k * 16)), 0xaaaa);
    }
}

#[test]
fn ifu_port_contends_with_processor_for_storage() {
    let mut m = MemorySystem::new(MemConfig::default());
    // Processor miss occupies storage...
    m.start_fetch(T0, VirtAddr::new(0x1000)).unwrap();
    // ...so an IFU miss in the same cycle is held.
    assert!(m.ifu_start_fetch(VirtAddr::new(0x2000)).is_err());
    for _ in 0..8 {
        m.tick();
    }
    m.ifu_start_fetch(VirtAddr::new(0x2000)).unwrap();
    // And both deliver.
    let w = drain(&mut m, T0);
    assert_eq!(w, 0);
    while m.ifu_data().is_none() {
        m.tick();
    }
}

#[test]
fn ifu_abort_discards_inflight_fetch() {
    let mut m = MemorySystem::new(MemConfig::default());
    m.ifu_start_fetch(VirtAddr::new(0)).unwrap();
    assert!(m.ifu_fetch_outstanding());
    m.ifu_abort_fetch();
    assert!(!m.ifu_fetch_outstanding());
    assert!(m.ifu_data().is_none());
}

#[test]
fn map_remapping_is_visible_to_timed_fetches() {
    let mut m = MemorySystem::new(MemConfig::default());
    // Real page 4 holds a marker; map virtual page 8 onto it.
    m.write_virt(VirtAddr::new(4 * 256 + 7), 0x1234);
    m.map_mut().map_page(8, 4);
    loop {
        match m.start_fetch(T0, VirtAddr::new(8 * 256 + 7)) {
            Ok(()) => break,
            Err(_) => m.tick(),
        }
    }
    assert_eq!(drain(&mut m, T0), 0x1234);
}

#[test]
fn fast_io_and_processor_interleave_fairly() {
    // Alternate fast-I/O munches and processor misses: both make
    // progress, storage never double-books.
    let mut m = MemorySystem::new(MemConfig::default());
    let mut fast = 0;
    let mut fetches = 0;
    for round in 0..16u32 {
        loop {
            match m.fast_fetch(VirtAddr::new(round * 16)) {
                Ok(_) => {
                    fast += 1;
                    break;
                }
                Err(_) => m.tick(),
            }
        }
        loop {
            match m.start_fetch(T0, VirtAddr::new(0x1000 + round * 16)) {
                Ok(()) => {
                    fetches += 1;
                    break;
                }
                Err(_) => m.tick(),
            }
        }
        let _ = drain(&mut m, T0);
    }
    assert_eq!((fast, fetches), (16, 16));
    assert_eq!(m.counters().storage_refs(), 32);
}
