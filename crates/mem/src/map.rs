//! The virtual-to-real page map.
//!
//! The processor presents 28-bit virtual addresses (base register + 16-bit
//! displacement, §6.3.2); the memory system maps virtual pages to real
//! storage pages.  The map defaults to identity — each virtual page *n* maps
//! to real page *n* while *n* is within storage — with explicit remappings
//! layered on top, which is all the emulators and experiments require.

use std::collections::HashMap;

use dorado_base::snap::{Reader, SnapError, Snapshot, Writer};
use dorado_base::{RealAddr, VirtAddr};

/// A page map from 28-bit virtual addresses to real storage addresses.
#[derive(Debug, Clone)]
pub struct Map {
    page_words: u32,
    storage_words: u32,
    overrides: HashMap<u32, Option<u32>>,
}

impl Map {
    /// Creates an identity map over `storage_words` of real memory with the
    /// given page size.
    ///
    /// # Panics
    ///
    /// Panics if `page_words` is not a power of two.
    pub fn identity(storage_words: u32, page_words: u32) -> Self {
        assert!(page_words.is_power_of_two(), "page size must be a power of two");
        Map {
            page_words,
            storage_words,
            overrides: HashMap::new(),
        }
    }

    /// Words per page.
    pub fn page_words(&self) -> u32 {
        self.page_words
    }

    /// Maps virtual page `vpage` to real page `rpage`.
    pub fn map_page(&mut self, vpage: u32, rpage: u32) {
        self.overrides.insert(vpage, Some(rpage));
    }

    /// Marks virtual page `vpage` as unmapped (references fault).
    pub fn unmap_page(&mut self, vpage: u32) {
        self.overrides.insert(vpage, None);
    }

    /// Translates a virtual address; `None` is a map fault.
    pub fn translate(&self, vaddr: VirtAddr) -> Option<RealAddr> {
        let vpage = vaddr.0 / self.page_words;
        let offset = vaddr.0 % self.page_words;
        let rpage = match self.overrides.get(&vpage) {
            Some(Some(rp)) => *rp,
            Some(None) => return None,
            None => vpage, // identity
        };
        let raddr = rpage
            .checked_mul(self.page_words)?
            .checked_add(offset)?;
        if raddr < self.storage_words {
            Some(RealAddr(raddr))
        } else {
            None
        }
    }
}

impl Snapshot for Map {
    fn save(&self, w: &mut Writer) {
        w.tag(b"PMAP");
        w.u32(self.page_words);
        w.u32(self.storage_words);
        // HashMap iteration order is nondeterministic; sort by key so the
        // same map always serializes to the same bytes (and checksum).
        let mut entries: Vec<(u32, Option<u32>)> =
            self.overrides.iter().map(|(&k, &v)| (k, v)).collect();
        entries.sort_unstable_by_key(|&(k, _)| k);
        w.len(entries.len());
        for (vpage, rpage) in entries {
            w.u32(vpage);
            match rpage {
                Some(rp) => {
                    w.bool(true);
                    w.u32(rp);
                }
                None => w.bool(false),
            }
        }
    }

    fn restore(&mut self, r: &mut Reader<'_>) -> Result<(), SnapError> {
        r.tag(b"PMAP")?;
        if r.u32()? != self.page_words || r.u32()? != self.storage_words {
            return Err(SnapError::Mismatch {
                what: "map geometry",
            });
        }
        let n = r.len()?;
        self.overrides.clear();
        for _ in 0..n {
            let vpage = r.u32()?;
            let rpage = if r.bool()? { Some(r.u32()?) } else { None };
            self.overrides.insert(vpage, rpage);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_within_storage() {
        let m = Map::identity(1024, 256);
        assert_eq!(m.translate(VirtAddr::new(100)), Some(RealAddr(100)));
        assert_eq!(m.translate(VirtAddr::new(1023)), Some(RealAddr(1023)));
        assert_eq!(m.translate(VirtAddr::new(1024)), None); // past storage
        assert_eq!(m.page_words(), 256);
    }

    #[test]
    fn remapping() {
        let mut m = Map::identity(1024, 256);
        m.map_page(10, 2); // virtual page 10 -> real page 2
        assert_eq!(
            m.translate(VirtAddr::new(10 * 256 + 5)),
            Some(RealAddr(2 * 256 + 5))
        );
        // Other pages unaffected.
        assert_eq!(m.translate(VirtAddr::new(300)), Some(RealAddr(300)));
    }

    #[test]
    fn unmapped_pages_fault() {
        let mut m = Map::identity(1024, 256);
        m.unmap_page(0);
        assert_eq!(m.translate(VirtAddr::new(0)), None);
        assert_eq!(m.translate(VirtAddr::new(255)), None);
        assert!(m.translate(VirtAddr::new(256)).is_some());
    }

    #[test]
    fn mapping_past_storage_faults() {
        let mut m = Map::identity(1024, 256);
        m.map_page(0, 100); // real page 100 starts at word 25600 > 1024
        assert_eq!(m.translate(VirtAddr::new(0)), None);
    }

    #[test]
    fn snapshot_bytes_are_deterministic_regardless_of_insertion_order() {
        use dorado_base::snap::{restore_image, save_image};
        let mut a = Map::identity(4096, 256);
        a.map_page(3, 7);
        a.unmap_page(1);
        a.map_page(9, 2);
        let mut b = Map::identity(4096, 256);
        b.map_page(9, 2);
        b.map_page(3, 7);
        b.unmap_page(1);
        assert_eq!(save_image(&a), save_image(&b));
        let mut c = Map::identity(4096, 256);
        restore_image(&mut c, &save_image(&a)).unwrap();
        for v in [0u32, 255, 256, 3 * 256 + 5, 9 * 256] {
            assert_eq!(a.translate(VirtAddr::new(v)), c.translate(VirtAddr::new(v)));
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_odd_page_size() {
        let _ = Map::identity(1024, 100);
    }
}
