//! The timed memory controller: latencies, storage occupancy, `Hold`, and
//! the fast I/O path (§5.7, §5.8).

use crate::cache::Cache;
use crate::config::MemConfig;
use crate::map::Map;
use crate::storage::Storage;
use dorado_base::snap::{Reader, SnapError, Snapshot, Writer};
use dorado_base::{
    BaseRegId, CacheStats, StorageStats, TaskId, VirtAddr, Word, MUNCH_WORDS, NUM_TASKS,
};

/// Why the memory asserted `Hold` (§5.7).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HoldReason {
    /// The task's previous fetch has not yet delivered its data and the
    /// instruction tried to start another reference.
    PipeBusy,
    /// A storage reference was needed but the storage RAMs are mid-cycle.
    StorageBusy,
    /// MEMDATA was used before the fetch completed.
    DataNotReady,
}

/// The `Hold` signal: "the effect of Hold is to stop any state changes
/// specified by the current instruction ... In effect, Hold converts the
/// currently executing instruction into a 'no operation, jump to self'
/// instruction" (§5.7).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Hold(pub HoldReason);

impl std::fmt::Display for Hold {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let why = match self.0 {
            HoldReason::PipeBusy => "reference pipe busy",
            HoldReason::StorageBusy => "storage busy",
            HoldReason::DataNotReady => "data not ready",
        };
        write!(f, "hold: {why}")
    }
}

impl std::error::Error for Hold {}

/// Counters the memory system accumulates (merged into machine-wide
/// [`Stats`](dorado_base::Stats) by the `Dorado` machine).
///
/// Cache traffic is split by requester port and storage traffic by kind;
/// the flat totals of the old counter block are available as methods.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemCounters {
    /// Cache references and hits, split by requester (processor port,
    /// IFU port, fast-I/O coherence probes).
    pub cache: CacheStats,
    /// Storage-pipeline references by kind, plus busy-cycle occupancy.
    pub storage: StorageStats,
    /// Map faults observed.
    pub faults: u64,
    /// Holds issued, by reason.
    pub holds_pipe: u64,
    /// Holds for storage occupancy.
    pub holds_storage: u64,
    /// Holds for unready MEMDATA.
    pub holds_data: u64,
}

impl MemCounters {
    /// Cache references started on the processor and IFU ports (the
    /// references that allocate in the cache).
    pub fn cache_refs(&self) -> u64 {
        self.cache.processor.refs + self.cache.ifu.refs
    }

    /// Cache hits on the processor and IFU ports.
    pub fn cache_hits(&self) -> u64 {
        self.cache.processor.hits + self.cache.ifu.hits
    }

    /// Storage references of any kind (misses, write-backs, fast I/O).
    pub fn storage_refs(&self) -> u64 {
        self.storage.refs
    }

    /// Dirty-victim write-backs.
    pub fn writebacks(&self) -> u64 {
        self.storage.writebacks
    }

    /// Fast I/O munches transferred, either direction.
    pub fn fast_munches(&self) -> u64 {
        self.storage.fast_fetches + self.storage.fast_stores
    }

    /// Cache references made on the IFU's port.
    pub fn ifu_refs(&self) -> u64 {
        self.cache.ifu.refs
    }
}

#[derive(Debug, Clone, Copy)]
struct PendingFetch {
    ready_at: u64,
    data: Word,
}

/// A task's fetch pipe: up to two outstanding references ("fully segmented
/// pipelining which allows a cache reference to start in every cycle", §3).
/// MEMDATA delivery is in reference order.
#[derive(Debug, Clone, Copy, Default)]
struct FetchPipe {
    slots: [Option<PendingFetch>; 2],
}

impl FetchPipe {
    fn front(&self) -> Option<PendingFetch> {
        self.slots[0]
    }

    fn is_full(&self) -> bool {
        self.slots[1].is_some()
    }

    fn pop(&mut self) -> Option<PendingFetch> {
        let f = self.slots[0].take();
        self.slots[0] = self.slots[1].take();
        f
    }

    fn push(&mut self, p: PendingFetch) {
        if self.slots[0].is_none() {
            self.slots[0] = Some(p);
        } else {
            debug_assert!(self.slots[1].is_none());
            self.slots[1] = Some(p);
        }
    }
}

/// The memory system: base registers, map, cache, storage, and timing.
///
/// Call [`MemorySystem::tick`] once per processor microcycle; reference-
/// starting and data-consuming methods return [`Hold`] exactly when the
/// hardware would assert it.
#[derive(Debug, Clone)]
pub struct MemorySystem {
    cfg: MemConfig,
    storage: Storage,
    cache: Cache,
    map: Map,
    base: [u32; dorado_base::NUM_BASE_REGISTERS],
    now: u64,
    storage_free_at: u64,
    pending: [FetchPipe; NUM_TASKS],
    memdata: [Word; NUM_TASKS],
    ifu_pending: Option<PendingFetch>,
    counters: MemCounters,
    fault: bool,
}

impl MemorySystem {
    /// Creates a memory system.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` is inconsistent (see [`MemConfig::validate`]).
    pub fn new(cfg: MemConfig) -> Self {
        cfg.validate();
        MemorySystem {
            storage: Storage::new(cfg.storage_words),
            cache: Cache::new(cfg.cache_sets(), cfg.assoc),
            map: Map::identity(cfg.storage_words, cfg.page_words),
            base: [0; dorado_base::NUM_BASE_REGISTERS],
            now: 0,
            storage_free_at: 0,
            pending: [FetchPipe::default(); NUM_TASKS],
            memdata: [0; NUM_TASKS],
            ifu_pending: None,
            counters: MemCounters::default(),
            cfg,
            fault: false,
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &MemConfig {
        &self.cfg
    }

    /// Advances one microcycle, accumulating storage-pipeline occupancy.
    #[inline]
    pub fn tick(&mut self) {
        if self.now < self.storage_free_at {
            self.counters.storage.busy_cycles += 1;
        }
        self.now += 1;
    }

    /// Whether nothing is in flight: the storage pipeline is idle, no task
    /// has an outstanding fetch, and the IFU port is empty.  A quiescent
    /// memory system's [`MemorySystem::tick`] only advances the clock, and
    /// `memdata`/cache/map state is frozen until the next reference.
    pub fn is_quiescent(&self) -> bool {
        self.now >= self.storage_free_at
            && self.ifu_pending.is_none()
            && self.pending.iter().all(|p| p.front().is_none())
    }

    /// The current cycle number.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Accumulated counters.
    pub fn counters(&self) -> &MemCounters {
        &self.counters
    }

    /// Whether a map fault has occurred since the last [`Self::clear_fault`].
    pub fn fault(&self) -> bool {
        self.fault
    }

    /// Clears the sticky map-fault flag.
    pub fn clear_fault(&mut self) {
        self.fault = false;
    }

    // --- base registers ---------------------------------------------------

    /// Reads a 28-bit base register.
    pub fn base_reg(&self, id: BaseRegId) -> u32 {
        self.base[id.index()]
    }

    /// Writes a 28-bit base register (extra bits are dropped).
    pub fn set_base_reg(&mut self, id: BaseRegId, value: u32) {
        self.base[id.index()] = value & VirtAddr::MASK;
    }

    /// Forms a virtual address: `base[MEMBASE] + displacement` (§6.3.2).
    pub fn resolve(&self, membase: BaseRegId, displacement: Word) -> VirtAddr {
        VirtAddr::new(self.base[membase.index()]).offset(displacement)
    }

    // --- processor references ----------------------------------------------

    /// Starts a fetch for `task` (the `ASelect` fetch forms, §6.3.1).
    ///
    /// # Errors
    ///
    /// Holds when the task's previous fetch is still in flight, or the
    /// fetch misses while storage is mid-cycle.
    pub fn start_fetch(&mut self, task: TaskId, vaddr: VirtAddr) -> Result<(), Hold> {
        let pipe = &mut self.pending[task.index()];
        if pipe.is_full() {
            match pipe.front() {
                Some(p) if self.now >= p.ready_at => {
                    // The oldest fetch delivered but was never consumed; it
                    // simply becomes "the word most recently fetched"
                    // (§6.3.2) and frees a pipe slot.
                    let p = pipe.pop().expect("front exists");
                    self.memdata[task.index()] = p.data;
                }
                _ => {
                    self.counters.holds_pipe += 1;
                    return Err(Hold(HoldReason::PipeBusy));
                }
            }
        }
        self.counters.cache.processor.refs += 1;
        if let Some(word) = self.cache.read(vaddr) {
            self.counters.cache.processor.hits += 1;
            self.pending[task.index()].push(PendingFetch {
                ready_at: self.now + self.cfg.hit_latency,
                data: word,
            });
            return Ok(());
        }
        // Miss: needs a storage cycle now.
        self.reserve_storage().inspect_err(|_h| {
            self.counters.cache.processor.refs -= 1; // the reference retries
        })?;
        let word = match self.fill_from_storage(vaddr) {
            Some(_) => self.cache.read(vaddr).expect("just filled"),
            None => 0,
        };
        self.pending[task.index()].push(PendingFetch {
            ready_at: self.now + self.cfg.miss_penalty,
            data: word,
        });
        Ok(())
    }

    /// Starts a store of `value` for `task` (the `ASelect` store forms).
    ///
    /// # Errors
    ///
    /// Holds when the store misses while storage is mid-cycle.  A hitting
    /// store completes without stalling the task.
    pub fn start_store(
        &mut self,
        task: TaskId,
        vaddr: VirtAddr,
        value: Word,
    ) -> Result<(), Hold> {
        let _ = task;
        self.counters.cache.processor.refs += 1;
        if self.cache.write(vaddr, value) {
            self.counters.cache.processor.hits += 1;
            return Ok(());
        }
        self.reserve_storage().inspect_err(|_h| {
            self.counters.cache.processor.refs -= 1;
        })?;
        if self.fill_from_storage(vaddr).is_some() {
            let ok = self.cache.write(vaddr, value);
            debug_assert!(ok, "write after fill must hit");
        }
        Ok(())
    }

    /// Reads MEMDATA for `task`: "the value of the memory word most
    /// recently fetched by the current task; if the fetch is not complete,
    /// the processor is held when it tries to use \[it\]" (§6.3.2).
    ///
    /// # Errors
    ///
    /// Holds while the fetch is in flight.
    pub fn memdata(&mut self, task: TaskId) -> Result<Word, Hold> {
        match self.pending[task.index()].front() {
            Some(p) if self.now >= p.ready_at => {
                self.pending[task.index()].pop();
                self.memdata[task.index()] = p.data;
                Ok(p.data)
            }
            Some(_) => {
                self.counters.holds_data += 1;
                Err(Hold(HoldReason::DataNotReady))
            }
            None => Ok(self.memdata[task.index()]),
        }
    }

    /// Whether `task` has a fetch still in flight (without holding).
    pub fn fetch_in_flight(&self, task: TaskId) -> bool {
        matches!(self.pending[task.index()].front(), Some(p) if self.now < p.ready_at)
    }

    // --- non-mutating hold predicates (the processor's check phase) ---------

    /// Whether MEMDATA for `task` can be read this cycle without holding.
    pub fn memdata_ready(&self, task: TaskId) -> bool {
        match self.pending[task.index()].front() {
            Some(p) => self.now >= p.ready_at,
            None => true,
        }
    }

    /// Whether `task` may start another fetch this cycle (a pipe slot is
    /// free, or the oldest reference has delivered).
    pub fn fetch_pipe_free(&self, task: TaskId) -> bool {
        let pipe = &self.pending[task.index()];
        !pipe.is_full() || matches!(pipe.front(), Some(p) if self.now >= p.ready_at)
    }

    /// Whether the storage RAMs are free to start a reference this cycle.
    pub fn storage_free(&self) -> bool {
        self.now >= self.storage_free_at
    }

    /// Whether the munch containing `vaddr` is cache-resident (no LRU
    /// update).
    pub fn would_hit(&self, vaddr: VirtAddr) -> bool {
        self.cache.probe(vaddr)
    }

    /// Whether [`Self::start_fetch`] would succeed this cycle.
    pub fn can_start_fetch(&self, task: TaskId, vaddr: VirtAddr) -> bool {
        self.fetch_pipe_free(task) && (self.cache.probe(vaddr) || self.storage_free())
    }

    /// Whether [`Self::start_store`] would succeed this cycle.
    pub fn can_start_store(&self, vaddr: VirtAddr) -> bool {
        self.cache.probe(vaddr) || self.storage_free()
    }

    // --- the IFU's private cache port ---------------------------------------

    /// Starts a fetch on the IFU's dedicated cache port ("independent busses
    /// communicate with the memory, IFU, and I/O systems", §4).
    ///
    /// # Errors
    ///
    /// Holds when the previous IFU fetch is in flight, or on a miss while
    /// storage is mid-cycle.
    pub fn ifu_start_fetch(&mut self, vaddr: VirtAddr) -> Result<(), Hold> {
        if matches!(self.ifu_pending, Some(p) if self.now < p.ready_at) {
            return Err(Hold(HoldReason::PipeBusy));
        }
        self.counters.cache.ifu.refs += 1;
        if let Some(word) = self.cache.read(vaddr) {
            self.counters.cache.ifu.hits += 1;
            self.ifu_pending = Some(PendingFetch {
                ready_at: self.now + self.cfg.hit_latency,
                data: word,
            });
            return Ok(());
        }
        self.reserve_storage().inspect_err(|_h| {
            self.counters.cache.ifu.refs -= 1;
        })?;
        let word = match self.fill_from_storage(vaddr) {
            Some(_) => self.cache.read(vaddr).expect("just filled"),
            None => 0,
        };
        self.ifu_pending = Some(PendingFetch {
            ready_at: self.now + self.cfg.miss_penalty,
            data: word,
        });
        Ok(())
    }

    /// Collects the IFU fetch result if it has arrived (consuming it).
    pub fn ifu_data(&mut self) -> Option<Word> {
        match self.ifu_pending {
            Some(p) if self.now >= p.ready_at => {
                self.ifu_pending = None;
                Some(p.data)
            }
            _ => None,
        }
    }

    /// Whether an IFU fetch is outstanding (ready or not).
    pub fn ifu_fetch_outstanding(&self) -> bool {
        self.ifu_pending.is_some()
    }

    /// Abandons any outstanding IFU fetch (after a macro jump).
    pub fn ifu_abort_fetch(&mut self) {
        self.ifu_pending = None;
    }

    // --- fast I/O path ------------------------------------------------------

    /// Fast I/O fetch: one munch from storage (or a dirty cached copy) to a
    /// device, bypassing the cache (§5.8).
    ///
    /// # Errors
    ///
    /// Holds while storage is mid-cycle.
    pub fn fast_fetch(&mut self, vaddr: VirtAddr) -> Result<[Word; MUNCH_WORDS], Hold> {
        self.reserve_storage()?;
        self.counters.storage.fast_fetches += 1;
        self.counters.cache.fast_io.refs += 1;
        // Coherence: a dirty cached copy is newer than storage.
        if let Some(data) = self.cache.peek_dirty_munch(vaddr) {
            self.counters.cache.fast_io.hits += 1;
            return Ok(data);
        }
        match self.translate(vaddr.munch_base()) {
            Some(raddr) => Ok(self.storage.read_munch(raddr)),
            None => Ok([0; MUNCH_WORDS]),
        }
    }

    /// Fast I/O store: one munch from a device to storage, bypassing (and
    /// invalidating) the cache.
    ///
    /// # Errors
    ///
    /// Holds while storage is mid-cycle.
    pub fn fast_store(
        &mut self,
        vaddr: VirtAddr,
        munch: &[Word; MUNCH_WORDS],
    ) -> Result<(), Hold> {
        self.reserve_storage()?;
        self.counters.storage.fast_stores += 1;
        self.counters.cache.fast_io.refs += 1;
        if self.cache.invalidate(vaddr) {
            // The munch was cache-resident: the coherence probe "hit".
            self.counters.cache.fast_io.hits += 1;
        }
        if let Some(raddr) = self.translate(vaddr.munch_base()) {
            self.storage.write_munch(raddr, munch);
        }
        Ok(())
    }

    // --- untimed host access -------------------------------------------------

    /// Reads a word with no timing (host/debugger view, coherent with the
    /// cache).
    pub fn read_virt(&self, vaddr: VirtAddr) -> Word {
        if let Some(w) = self.cache.peek(vaddr) {
            return w;
        }
        match self.map.translate(vaddr) {
            Some(raddr) => self.storage.read(raddr),
            None => 0,
        }
    }

    /// Writes a word with no timing (host preload; updates the cached copy
    /// if resident, else storage).
    pub fn write_virt(&mut self, vaddr: VirtAddr, value: Word) {
        if self.cache.write(vaddr, value) {
            return;
        }
        if let Some(raddr) = self.map.translate(vaddr) {
            self.storage.write(raddr, value);
        }
    }

    /// Mutable access to the page map.
    pub fn map_mut(&mut self) -> &mut Map {
        &mut self.map
    }

    /// The page map.
    pub fn map(&self) -> &Map {
        &self.map
    }

    // --- internals ------------------------------------------------------------

    fn reserve_storage(&mut self) -> Result<(), Hold> {
        if self.now < self.storage_free_at {
            self.counters.holds_storage += 1;
            return Err(Hold(HoldReason::StorageBusy));
        }
        self.storage_free_at = self.now + self.cfg.storage_cycle;
        self.counters.storage.refs += 1;
        Ok(())
    }

    /// Brings the munch containing `vaddr` into the cache; returns `None`
    /// on a map fault.  A dirty eviction consumes a further storage cycle.
    fn fill_from_storage(&mut self, vaddr: VirtAddr) -> Option<()> {
        let raddr = self.translate(vaddr.munch_base())?;
        let munch = self.storage.read_munch(raddr);
        self.counters.storage.fills += 1;
        if let Some(ev) = self.cache.fill(vaddr, munch) {
            self.counters.storage.writebacks += 1;
            self.counters.storage.refs += 1;
            self.storage_free_at += self.cfg.storage_cycle;
            if let Some(ev_raddr) = self.translate(ev.vaddr) {
                self.storage.write_munch(ev_raddr, &ev.data);
            }
        }
        Some(())
    }

    fn translate(&mut self, vaddr: VirtAddr) -> Option<dorado_base::RealAddr> {
        match self.map.translate(vaddr) {
            Some(r) => Some(r),
            None => {
                self.fault = true;
                self.counters.faults += 1;
                None
            }
        }
    }
}

fn save_fetch(w: &mut Writer, p: Option<PendingFetch>) {
    match p {
        Some(p) => {
            w.bool(true);
            w.u64(p.ready_at);
            w.u16(p.data);
        }
        None => w.bool(false),
    }
}

fn restore_fetch(r: &mut Reader<'_>) -> Result<Option<PendingFetch>, SnapError> {
    Ok(if r.bool()? {
        Some(PendingFetch {
            ready_at: r.u64()?,
            data: r.u16()?,
        })
    } else {
        None
    })
}

impl Snapshot for MemCounters {
    fn save(&self, w: &mut Writer) {
        self.cache.save(w);
        self.storage.save(w);
        w.u64(self.faults);
        w.u64(self.holds_pipe);
        w.u64(self.holds_storage);
        w.u64(self.holds_data);
    }

    fn restore(&mut self, r: &mut Reader<'_>) -> Result<(), SnapError> {
        self.cache.restore(r)?;
        self.storage.restore(r)?;
        self.faults = r.u64()?;
        self.holds_pipe = r.u64()?;
        self.holds_storage = r.u64()?;
        self.holds_data = r.u64()?;
        Ok(())
    }
}

impl Snapshot for MemorySystem {
    fn save(&self, w: &mut Writer) {
        w.tag(b"MEMS");
        for b in self.base {
            w.u32(b);
        }
        w.u64(self.now);
        w.u64(self.storage_free_at);
        for pipe in &self.pending {
            save_fetch(w, pipe.slots[0]);
            save_fetch(w, pipe.slots[1]);
        }
        w.words(&self.memdata);
        save_fetch(w, self.ifu_pending);
        self.counters.save(w);
        w.bool(self.fault);
        self.cache.save(w);
        self.storage.save(w);
        self.map.save(w);
    }

    fn restore(&mut self, r: &mut Reader<'_>) -> Result<(), SnapError> {
        r.tag(b"MEMS")?;
        for b in &mut self.base {
            *b = r.u32()?;
        }
        self.now = r.u64()?;
        self.storage_free_at = r.u64()?;
        for pipe in &mut self.pending {
            pipe.slots[0] = restore_fetch(r)?;
            pipe.slots[1] = restore_fetch(r)?;
        }
        r.words(&mut self.memdata)?;
        self.ifu_pending = restore_fetch(r)?;
        self.counters.restore(r)?;
        self.fault = r.bool()?;
        self.cache.restore(r)?;
        self.storage.restore(r)?;
        self.map.restore(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem() -> MemorySystem {
        MemorySystem::new(MemConfig::default())
    }

    const T0: TaskId = TaskId::EMULATOR;

    fn run_until_data(m: &mut MemorySystem, task: TaskId) -> (Word, u64) {
        let start = m.now();
        loop {
            match m.memdata(task) {
                Ok(w) => return (w, m.now() - start),
                Err(_) => m.tick(),
            }
        }
    }

    #[test]
    fn hit_latency_is_two_cycles() {
        let mut m = mem();
        m.write_virt(VirtAddr::new(0x40), 0x1111);
        // Warm the cache.
        m.start_fetch(T0, VirtAddr::new(0x40)).unwrap();
        let _ = run_until_data(&mut m, T0);
        // Timed hit.
        m.start_fetch(T0, VirtAddr::new(0x41)).unwrap();
        let (w, waited) = run_until_data(&mut m, T0);
        assert_eq!(w, 0);
        assert_eq!(waited, 2);
    }

    #[test]
    fn miss_penalty_applies() {
        let mut m = mem();
        m.write_virt(VirtAddr::new(0x1000), 0x2222);
        m.start_fetch(T0, VirtAddr::new(0x1000)).unwrap();
        let (w, waited) = run_until_data(&mut m, T0);
        assert_eq!(w, 0x2222);
        assert_eq!(waited, MemConfig::default().miss_penalty);
        assert_eq!(m.counters().cache_hits(), 0);
        assert_eq!(m.counters().cache_refs(), 1);
        assert_eq!(m.counters().cache.processor.refs, 1);
        assert_eq!(m.counters().storage_refs(), 1);
        assert_eq!(m.counters().storage.fills, 1);
    }

    #[test]
    fn memdata_is_sticky_after_delivery() {
        let mut m = mem();
        m.write_virt(VirtAddr::new(5), 99);
        m.start_fetch(T0, VirtAddr::new(5)).unwrap();
        let (w, _) = run_until_data(&mut m, T0);
        assert_eq!(w, 99);
        // Repeated uses see the same value without holding.
        assert_eq!(m.memdata(T0).unwrap(), 99);
        assert_eq!(m.memdata(T0).unwrap(), 99);
    }

    #[test]
    fn third_fetch_while_pipe_full_holds() {
        let mut m = mem();
        // Warm two munches so the fetches hit (storage is not the limit).
        m.start_fetch(T0, VirtAddr::new(0)).unwrap();
        let _ = run_until_data(&mut m, T0);
        for _ in 0..10 {
            m.tick();
        }
        m.start_fetch(T0, VirtAddr::new(0x2000)).unwrap();
        let _ = run_until_data(&mut m, T0);
        for _ in 0..10 {
            m.tick();
        }
        // Two back-to-back hits fill the pipe ("a cache reference [starts]
        // in every cycle", §3)...
        m.start_fetch(T0, VirtAddr::new(0)).unwrap();
        assert!(m.fetch_in_flight(T0));
        m.start_fetch(T0, VirtAddr::new(0x2000)).unwrap();
        // ...and a third in the same cycle holds.
        let e = m.start_fetch(T0, VirtAddr::new(1)).unwrap_err();
        assert_eq!(e, Hold(HoldReason::PipeBusy));
        assert!(!m.fetch_pipe_free(T0));
        // Deliveries drain in order: one word per cycle after latency.
        m.tick();
        m.tick();
        assert_eq!(m.memdata(T0).unwrap(), m.read_virt(VirtAddr::new(0)));
        m.tick();
        assert_eq!(m.memdata(T0).unwrap(), m.read_virt(VirtAddr::new(0x2000)));
    }

    #[test]
    fn tasks_have_independent_memdata() {
        let mut m = mem();
        let t1 = TaskId::new(11);
        m.write_virt(VirtAddr::new(1), 10);
        m.write_virt(VirtAddr::new(100), 20);
        m.start_fetch(T0, VirtAddr::new(1)).unwrap();
        for _ in 0..MemConfig::default().storage_cycle {
            m.tick(); // both fetches miss; let the storage cycle elapse
        }
        m.start_fetch(t1, VirtAddr::new(100)).unwrap();
        let (w1, _) = run_until_data(&mut m, t1);
        let (w0, _) = run_until_data(&mut m, T0);
        assert_eq!((w0, w1), (10, 20));
    }

    #[test]
    fn storage_busy_holds_second_miss() {
        let mut m = mem();
        let t1 = TaskId::new(1);
        m.start_fetch(T0, VirtAddr::new(0x1000)).unwrap(); // miss
        let e = m.start_fetch(t1, VirtAddr::new(0x2000)).unwrap_err();
        assert_eq!(e, Hold(HoldReason::StorageBusy));
        // After the storage cycle elapses the second miss can start.
        for _ in 0..MemConfig::default().storage_cycle {
            m.tick();
        }
        m.start_fetch(t1, VirtAddr::new(0x2000)).unwrap();
    }

    #[test]
    fn hits_do_not_occupy_storage() {
        let mut m = mem();
        m.start_fetch(T0, VirtAddr::new(0)).unwrap(); // miss warms line
        let _ = run_until_data(&mut m, T0);
        let t1 = TaskId::new(1);
        // A hit and a miss in the same cycle: the miss keeps storage, but a
        // hit right after is fine.
        m.start_fetch(t1, VirtAddr::new(0x3000)).unwrap(); // miss
        m.start_fetch(T0, VirtAddr::new(1)).unwrap(); // hit, no storage
    }

    #[test]
    fn store_hit_is_silent_and_write_back() {
        let mut m = mem();
        m.start_fetch(T0, VirtAddr::new(0)).unwrap();
        let _ = run_until_data(&mut m, T0);
        let refs_before = m.counters().storage_refs();
        m.start_store(T0, VirtAddr::new(0), 0xaaaa).unwrap();
        assert_eq!(m.counters().storage_refs(), refs_before, "write-back defers");
        assert_eq!(m.read_virt(VirtAddr::new(0)), 0xaaaa);
    }

    #[test]
    fn dirty_eviction_reaches_storage() {
        let mut m = MemorySystem::new(MemConfig {
            cache_words: 32, // 1 set × 2 ways, tiny cache
            assoc: 2,
            ..MemConfig::default()
        });
        m.start_store(T0, VirtAddr::new(0), 7).unwrap(); // allocate + dirty
        for _ in 0..20 {
            m.tick();
        }
        // Evict block 0 by filling two more blocks in the same (only) set.
        m.start_fetch(T0, VirtAddr::new(16)).unwrap();
        let _ = run_until_data(&mut m, T0);
        m.start_fetch(T0, VirtAddr::new(32)).unwrap();
        let _ = run_until_data(&mut m, T0);
        assert!(!m.would_hit(VirtAddr::new(0)), "block 0 must be evicted");
        assert_eq!(m.counters().writebacks(), 1);
        assert_eq!(m.counters().storage.writebacks, 1);
        // The dirty datum survives in storage.
        assert_eq!(m.read_virt(VirtAddr::new(0)), 7);
    }

    #[test]
    fn fast_fetch_sees_dirty_cache_data() {
        let mut m = mem();
        m.start_store(T0, VirtAddr::new(0x20), 0x5555).unwrap();
        for _ in 0..10 {
            m.tick();
        }
        let munch = m.fast_fetch(VirtAddr::new(0x20)).unwrap();
        assert_eq!(munch[0], 0x5555);
        assert_eq!(m.counters().fast_munches(), 1);
        // The coherence probe found the dirty munch: a fast-I/O cache hit.
        assert_eq!(m.counters().cache.fast_io.refs, 1);
        assert_eq!(m.counters().cache.fast_io.hits, 1);
    }

    #[test]
    fn fast_store_invalidates_cache() {
        let mut m = mem();
        m.start_fetch(T0, VirtAddr::new(0x40)).unwrap();
        let _ = run_until_data(&mut m, T0);
        for _ in 0..10 {
            m.tick();
        }
        let munch = [0x1212u16; MUNCH_WORDS];
        m.fast_store(VirtAddr::new(0x40), &munch).unwrap();
        // Cached (stale) copy must not be visible.
        assert_eq!(m.read_virt(VirtAddr::new(0x40)), 0x1212);
    }

    #[test]
    fn fast_io_respects_storage_cycle() {
        let mut m = mem();
        m.fast_fetch(VirtAddr::new(0)).unwrap();
        assert!(m.fast_fetch(VirtAddr::new(16)).is_err());
        for _ in 0..MemConfig::default().storage_cycle {
            m.tick();
        }
        m.fast_fetch(VirtAddr::new(16)).unwrap();
    }

    #[test]
    fn base_registers_and_resolve() {
        let mut m = mem();
        m.set_base_reg(BaseRegId::new(3), 0x1000);
        assert_eq!(m.base_reg(BaseRegId::new(3)), 0x1000);
        assert_eq!(
            m.resolve(BaseRegId::new(3), 0x34),
            VirtAddr::new(0x1034)
        );
        // Extra bits beyond 28 are dropped.
        m.set_base_reg(BaseRegId::new(4), 0xf000_0001);
        assert_eq!(m.base_reg(BaseRegId::new(4)), 1);
    }

    #[test]
    fn map_fault_is_sticky() {
        let mut m = mem();
        m.map_mut().unmap_page(0);
        m.start_fetch(T0, VirtAddr::new(0)).unwrap();
        let (w, _) = run_until_data(&mut m, T0);
        assert_eq!(w, 0);
        assert!(m.fault());
        assert_eq!(m.counters().faults, 1);
        m.clear_fault();
        assert!(!m.fault());
    }

    #[test]
    fn hold_display() {
        assert!(format!("{}", Hold(HoldReason::StorageBusy)).contains("storage"));
    }

    #[test]
    fn storage_busy_cycles_cover_the_ram_cycle() {
        let mut m = mem();
        m.start_fetch(T0, VirtAddr::new(0x1000)).unwrap(); // miss
        for _ in 0..2 * MemConfig::default().storage_cycle {
            m.tick();
        }
        // Exactly one RAM cycle's worth of busy time was accumulated.
        assert_eq!(
            m.counters().storage.busy_cycles,
            MemConfig::default().storage_cycle
        );
        assert_eq!(m.counters().storage.refs, 1);
    }

    #[test]
    fn cache_ports_are_split_by_requester() {
        let mut m = mem();
        // One processor miss, one IFU miss on another munch.
        m.start_fetch(T0, VirtAddr::new(0)).unwrap();
        let _ = run_until_data(&mut m, T0);
        m.ifu_start_fetch(VirtAddr::new(0x2000)).unwrap();
        while m.ifu_data().is_none() {
            m.tick();
        }
        // A processor hit on the warmed munch, an IFU hit on its own.
        m.start_fetch(T0, VirtAddr::new(1)).unwrap();
        let _ = run_until_data(&mut m, T0);
        m.ifu_start_fetch(VirtAddr::new(0x2001)).unwrap();
        while m.ifu_data().is_none() {
            m.tick();
        }
        let c = m.counters().cache;
        assert_eq!((c.processor.refs, c.processor.hits), (2, 1));
        assert_eq!((c.ifu.refs, c.ifu.hits), (2, 1));
        assert_eq!(c.fast_io.refs, 0);
        assert_eq!(m.counters().cache_refs(), 4);
        assert_eq!(m.counters().ifu_refs(), 2);
    }

    #[test]
    fn snapshot_mid_flight_fetch_resumes_identically() {
        use dorado_base::snap::{restore_image, save_image};
        let mut m = mem();
        m.write_virt(VirtAddr::new(0x1000), 0x2222);
        m.set_base_reg(BaseRegId::new(5), 0x300);
        m.map_mut().map_page(40, 2);
        m.start_fetch(T0, VirtAddr::new(0x1000)).unwrap(); // miss in flight
        for _ in 0..MemConfig::default().storage_cycle {
            m.tick();
        }
        m.ifu_start_fetch(VirtAddr::new(0x2000)).unwrap();
        m.tick();

        let img = save_image(&m);
        let mut n = mem();
        restore_image(&mut n, &img).unwrap();
        assert_eq!(save_image(&n), img, "save(restore(save)) is byte-stable");

        // Both machines deliver the same data after the same waits and end
        // with identical counters.
        let (wm, dm) = run_until_data(&mut m, T0);
        let (wn, dn) = run_until_data(&mut n, T0);
        assert_eq!((wm, dm), (wn, dn));
        assert_eq!(wm, 0x2222);
        while m.ifu_data().is_none() {
            m.tick();
        }
        while n.ifu_data().is_none() {
            n.tick();
        }
        assert_eq!(m.counters(), n.counters());
        assert_eq!(m.now(), n.now());
        assert_eq!(save_image(&m), save_image(&n));

        // A differently sized machine refuses the image.
        let mut other = MemorySystem::new(MemConfig {
            storage_words: MemConfig::default().storage_words * 2,
            ..MemConfig::default()
        });
        assert!(restore_image(&mut other, &img).is_err());
    }

    #[test]
    fn fast_store_probe_counts_resident_munch_as_hit() {
        let mut m = mem();
        m.start_fetch(T0, VirtAddr::new(0x40)).unwrap(); // make resident
        let _ = run_until_data(&mut m, T0);
        for _ in 0..10 {
            m.tick();
        }
        m.fast_store(VirtAddr::new(0x40), &[1; MUNCH_WORDS]).unwrap();
        for _ in 0..MemConfig::default().storage_cycle {
            m.tick();
        }
        m.fast_store(VirtAddr::new(0x800), &[2; MUNCH_WORDS]).unwrap();
        let c = m.counters().cache;
        assert_eq!((c.fast_io.refs, c.fast_io.hits), (2, 1));
        assert_eq!(m.counters().storage.fast_stores, 2);
    }
}
