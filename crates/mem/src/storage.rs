//! Main storage: the RAM modules behind the cache.
//!
//! Up to four modules of 16K or 64K RAMs for a maximum of 8 megabytes (§1).
//! Data moves to and from storage in 16-word munches; the module cycle time
//! is eight processor cycles (§6.2.1).

use dorado_base::snap::{Reader, SnapError, Snapshot, Writer};
use dorado_base::{RealAddr, Word, MUNCH_WORDS};

/// Flat word-addressed main storage.
#[derive(Debug, Clone)]
pub struct Storage {
    words: Vec<Word>,
}

impl Storage {
    /// Allocates zeroed storage of `words` words.
    ///
    /// # Panics
    ///
    /// Panics if `words` is zero or not munch-aligned.
    pub fn new(words: u32) -> Self {
        assert!(words > 0, "storage must be non-empty");
        assert!(
            (words as usize).is_multiple_of(MUNCH_WORDS),
            "storage size must be munch-aligned"
        );
        Storage {
            words: vec![0; words as usize],
        }
    }

    /// Capacity in words.
    pub fn len(&self) -> u32 {
        self.words.len() as u32
    }

    /// Whether the storage is empty (never true after construction).
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Whether `addr` is within storage.
    pub fn contains(&self, addr: RealAddr) -> bool {
        (addr.0 as usize) < self.words.len()
    }

    /// Reads one word.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is out of range (callers translate and bounds-check
    /// via the map first).
    pub fn read(&self, addr: RealAddr) -> Word {
        self.words[addr.0 as usize]
    }

    /// Writes one word.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is out of range.
    pub fn write(&mut self, addr: RealAddr, value: Word) {
        self.words[addr.0 as usize] = value;
    }

    /// Reads the whole munch containing `addr`.
    ///
    /// # Panics
    ///
    /// Panics if the munch is out of range.
    pub fn read_munch(&self, addr: RealAddr) -> [Word; MUNCH_WORDS] {
        let base = addr.munch_base().0 as usize;
        let mut munch = [0; MUNCH_WORDS];
        munch.copy_from_slice(&self.words[base..base + MUNCH_WORDS]);
        munch
    }

    /// Writes the whole munch containing `addr`.
    ///
    /// # Panics
    ///
    /// Panics if the munch is out of range.
    pub fn write_munch(&mut self, addr: RealAddr, munch: &[Word; MUNCH_WORDS]) {
        let base = addr.munch_base().0 as usize;
        self.words[base..base + MUNCH_WORDS].copy_from_slice(munch);
    }
}

impl Snapshot for Storage {
    fn save(&self, w: &mut Writer) {
        w.tag(b"STOR");
        w.word_seq(self.words.iter().copied());
    }

    fn restore(&mut self, r: &mut Reader<'_>) -> Result<(), SnapError> {
        r.tag(b"STOR")?;
        if r.len()? != self.words.len() {
            return Err(SnapError::Mismatch {
                what: "storage size",
            });
        }
        for w in &mut self.words {
            *w = r.u16()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_roundtrip() {
        let mut s = Storage::new(256);
        assert_eq!(s.len(), 256);
        assert!(!s.is_empty());
        s.write(RealAddr(7), 0x1234);
        assert_eq!(s.read(RealAddr(7)), 0x1234);
        assert_eq!(s.read(RealAddr(8)), 0);
    }

    #[test]
    fn munch_roundtrip() {
        let mut s = Storage::new(256);
        let mut m = [0u16; MUNCH_WORDS];
        for (i, w) in m.iter_mut().enumerate() {
            *w = i as u16 * 3;
        }
        s.write_munch(RealAddr(0x23), &m); // any address within the munch
        assert_eq!(s.read_munch(RealAddr(0x2f)), m);
        assert_eq!(s.read(RealAddr(0x20)), 0);
        assert_eq!(s.read(RealAddr(0x21)), 3);
    }

    #[test]
    fn contains_checks_bounds() {
        let s = Storage::new(64);
        assert!(s.contains(RealAddr(63)));
        assert!(!s.contains(RealAddr(64)));
    }

    #[test]
    #[should_panic(expected = "munch-aligned")]
    fn rejects_unaligned_size() {
        let _ = Storage::new(100);
    }
}
