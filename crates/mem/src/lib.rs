//! The Dorado memory system, as the processor sees it.
//!
//! The full memory system is the subject of a companion paper (Clark et al.,
//! *The memory system of a high-performance personal computer*); this crate
//! models exactly the behaviour the processor paper depends on:
//!
//! * a **cache** "which has a latency of two cycles, and can deliver a word
//!   every cycle" (§3), virtually addressed, write-back, set-associative,
//!   with 16-word blocks ("munches");
//! * **main storage** in which "the maximum rate at which storage references
//!   can be made is one every eight cycles (this is the cycle time of the
//!   storage RAMs)" (§6.2.1) — giving the 530 Mbit/s bandwidth ceiling;
//! * **virtual addressing**: "MEMADDRESS provides a sixteen bit
//!   displacement, which is added to a 28 bit base register in the memory
//!   system to form a virtual address" (§6.3.2), with 32 base registers
//!   selected by `MEMBASE`, and a page map from virtual to real pages;
//! * **`Hold` generation** (§5.7): "the memory keep\[s\] track of when data is
//!   ready ... if the memory is busy, or the data being used is not ready,
//!   the memory responds by asserting the signal Hold";
//! * the **fast I/O path** (§5.8): 16-word munches moved directly between
//!   storage and devices "without polluting the cache".
//!
//! # Examples
//!
//! ```
//! use dorado_base::{TaskId, VirtAddr};
//! use dorado_mem::{MemConfig, MemorySystem};
//!
//! let mut mem = MemorySystem::new(MemConfig::default());
//! let t = TaskId::EMULATOR;
//! mem.write_virt(VirtAddr::new(100), 0xbeef);
//! mem.start_fetch(t, VirtAddr::new(100)).unwrap(); // cold cache: a miss
//! while mem.memdata(t).is_err() {
//!     mem.tick(); // the processor would be Held here (§5.7)
//! }
//! assert_eq!(mem.memdata(t).unwrap(), 0xbeef);
//! // The munch is now resident: a fetch to a neighbour hits in 2 cycles.
//! mem.start_fetch(t, VirtAddr::new(101)).unwrap();
//! mem.tick();
//! mem.tick();
//! assert!(mem.memdata(t).is_ok());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod config;
pub mod map;
pub mod storage;
pub mod system;

pub use cache::Cache;
pub use config::MemConfig;
pub use map::Map;
pub use storage::Storage;
pub use system::{Hold, HoldReason, MemCounters, MemorySystem};
