//! Memory system configuration.

use dorado_base::MUNCH_WORDS;

/// Configuration for a [`MemorySystem`](crate::MemorySystem).
///
/// Defaults model the production Dorado: a 4096-word 2-way cache with
/// 16-word munches, 2-cycle hit latency, an 8-cycle storage cycle, and one
/// 64 K-word storage module (the experiments never touch more; raise
/// `storage_words` for up to the machine's 4 M-word / 8 MB maximum).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemConfig {
    /// Total words of main storage (up to 4 Mwords = 8 MB, §1).
    pub storage_words: u32,
    /// Total cache capacity in words.
    pub cache_words: usize,
    /// Cache associativity (columns per set).
    pub assoc: usize,
    /// Cycles from starting a cache-hit fetch to MEMDATA availability (§3:
    /// "a cache which has a latency of two cycles").
    pub hit_latency: u64,
    /// Cycles from starting a missing fetch to MEMDATA availability.
    /// Dominated by the storage access plus munch transport; "the
    /// difference between the best case (cache hit) and the worst case ...
    /// is more than an order of magnitude" (§5.7).
    pub miss_penalty: u64,
    /// Cycles between storage reference starts (§6.2.1: "one every eight
    /// cycles (this is the cycle time of the storage RAMs)").
    pub storage_cycle: u64,
    /// Words per virtual/real page for the map.
    pub page_words: u32,
}

impl MemConfig {
    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics if the cache geometry is not munch-aligned, associativity is
    /// zero, or sizes are zero.
    pub fn validate(&self) {
        assert!(self.storage_words > 0, "storage must be non-empty");
        assert!(
            self.storage_words.is_multiple_of(MUNCH_WORDS as u32),
            "storage size must be munch-aligned"
        );
        assert!(self.assoc > 0, "associativity must be positive");
        assert!(
            self.cache_words.is_multiple_of(self.assoc * MUNCH_WORDS),
            "cache words must divide into assoc × munch"
        );
        let sets = self.cache_words / (self.assoc * MUNCH_WORDS);
        assert!(sets.is_power_of_two(), "cache set count must be a power of two");
        assert!(self.hit_latency >= 1, "hit latency must be at least 1");
        assert!(
            self.miss_penalty > self.hit_latency,
            "a miss must cost more than a hit"
        );
        assert!(self.storage_cycle >= 1, "storage cycle must be at least 1");
        assert!(
            self.page_words.is_power_of_two() && self.page_words >= MUNCH_WORDS as u32,
            "page size must be a power of two, at least one munch"
        );
    }

    /// Number of cache sets implied by the geometry.
    pub fn cache_sets(&self) -> usize {
        self.cache_words / (self.assoc * MUNCH_WORDS)
    }
}

impl Default for MemConfig {
    fn default() -> Self {
        MemConfig {
            storage_words: 64 * 1024,
            cache_words: 4096,
            assoc: 2,
            hit_latency: 2,
            miss_penalty: 26,
            storage_cycle: 8,
            page_words: 256,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        let c = MemConfig::default();
        c.validate();
        assert_eq!(c.cache_sets(), 4096 / (2 * 16));
    }

    #[test]
    #[should_panic(expected = "associativity")]
    fn zero_assoc_rejected() {
        MemConfig {
            assoc: 0,
            ..MemConfig::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "more than a hit")]
    fn miss_must_exceed_hit() {
        MemConfig {
            miss_penalty: 2,
            ..MemConfig::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn sets_must_be_power_of_two() {
        MemConfig {
            cache_words: 96 * 16,
            assoc: 1,
            ..MemConfig::default()
        }
        .validate();
    }
}
