//! The processor cache: virtually addressed, write-back, set-associative,
//! with 16-word blocks (munches).
//!
//! The cache itself is purely functional here; the [`MemorySystem`] layers
//! the 2-cycle hit latency, storage occupancy, and `Hold` on top.
//!
//! [`MemorySystem`]: crate::MemorySystem

use dorado_base::snap::{Reader, SnapError, Snapshot, Writer};
use dorado_base::{VirtAddr, Word, MUNCH_WORDS};

/// One cache line: a munch of data plus its tags.
#[derive(Debug, Clone)]
struct Line {
    /// Virtual munch base address of the resident block.
    tag: u32,
    valid: bool,
    dirty: bool,
    /// LRU stamp: larger = more recently used.
    stamp: u64,
    data: [Word; MUNCH_WORDS],
}

impl Line {
    fn empty() -> Self {
        Line {
            tag: 0,
            valid: false,
            dirty: false,
            stamp: 0,
            data: [0; MUNCH_WORDS],
        }
    }
}

/// A block evicted from the cache that must be written back to storage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Eviction {
    /// Virtual address of the first word of the evicted munch.
    pub vaddr: VirtAddr,
    /// The dirty munch contents.
    pub data: [Word; MUNCH_WORDS],
}

/// A set-associative, write-back cache with munch-sized blocks.
#[derive(Debug, Clone)]
pub struct Cache {
    sets: usize,
    assoc: usize,
    lines: Vec<Line>,
    clock: u64,
}

impl Cache {
    /// Creates an empty cache with `sets × assoc` munch-sized lines.
    ///
    /// # Panics
    ///
    /// Panics if `sets` is not a power of two or `assoc` is zero.
    pub fn new(sets: usize, assoc: usize) -> Self {
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        assert!(assoc > 0, "associativity must be positive");
        Cache {
            sets,
            assoc,
            lines: (0..sets * assoc).map(|_| Line::empty()).collect(),
            clock: 0,
        }
    }

    /// Total capacity in words.
    pub fn capacity_words(&self) -> usize {
        self.sets * self.assoc * MUNCH_WORDS
    }

    fn set_of(&self, vaddr: VirtAddr) -> usize {
        (vaddr.0 as usize / MUNCH_WORDS) & (self.sets - 1)
    }

    fn line_range(&self, set: usize) -> std::ops::Range<usize> {
        set * self.assoc..(set + 1) * self.assoc
    }

    fn find(&self, vaddr: VirtAddr) -> Option<usize> {
        let tag = vaddr.munch_base().0;
        let set = self.set_of(vaddr);
        self.line_range(set)
            .find(|&i| self.lines[i].valid && self.lines[i].tag == tag)
    }

    /// Whether the munch containing `vaddr` is resident.
    pub fn probe(&self, vaddr: VirtAddr) -> bool {
        self.find(vaddr).is_some()
    }

    /// Reads a word if resident, updating LRU state.
    pub fn read(&mut self, vaddr: VirtAddr) -> Option<Word> {
        let i = self.find(vaddr)?;
        self.clock += 1;
        self.lines[i].stamp = self.clock;
        Some(self.lines[i].data[vaddr.munch_offset()])
    }

    /// Writes a word if resident, marking the line dirty.  Returns `false`
    /// on a miss (the caller must fill first).
    pub fn write(&mut self, vaddr: VirtAddr, value: Word) -> bool {
        match self.find(vaddr) {
            Some(i) => {
                self.clock += 1;
                self.lines[i].stamp = self.clock;
                self.lines[i].dirty = true;
                self.lines[i].data[vaddr.munch_offset()] = value;
                true
            }
            None => false,
        }
    }

    /// Reads a word without disturbing LRU or dirty state (for coherence
    /// snoops by the fast I/O path and for debugging).
    pub fn peek(&self, vaddr: VirtAddr) -> Option<Word> {
        let i = self.find(vaddr)?;
        Some(self.lines[i].data[vaddr.munch_offset()])
    }

    /// Returns the dirty munch containing `vaddr`, if resident and dirty.
    pub fn peek_dirty_munch(&self, vaddr: VirtAddr) -> Option<[Word; MUNCH_WORDS]> {
        let i = self.find(vaddr)?;
        if self.lines[i].dirty {
            Some(self.lines[i].data)
        } else {
            None
        }
    }

    /// Installs the munch containing `vaddr`, evicting the LRU victim of
    /// its set.  Returns the eviction if the victim was dirty.
    pub fn fill(&mut self, vaddr: VirtAddr, data: [Word; MUNCH_WORDS]) -> Option<Eviction> {
        debug_assert!(
            self.find(vaddr).is_none(),
            "fill of already-resident munch"
        );
        let set = self.set_of(vaddr);
        let victim = self
            .line_range(set)
            .min_by_key(|&i| (self.lines[i].valid, self.lines[i].stamp))
            .expect("assoc > 0");
        let evicted = if self.lines[victim].valid && self.lines[victim].dirty {
            Some(Eviction {
                vaddr: VirtAddr::new(self.lines[victim].tag),
                data: self.lines[victim].data,
            })
        } else {
            None
        };
        self.clock += 1;
        self.lines[victim] = Line {
            tag: vaddr.munch_base().0,
            valid: true,
            dirty: false,
            stamp: self.clock,
            data,
        };
        evicted
    }

    /// Invalidates the munch containing `vaddr` (fast I/O stores overwrite
    /// storage, so a resident copy — even a dirty one — is stale).  Returns
    /// whether a line was dropped.
    pub fn invalidate(&mut self, vaddr: VirtAddr) -> bool {
        match self.find(vaddr) {
            Some(i) => {
                self.lines[i].valid = false;
                self.lines[i].dirty = false;
                true
            }
            None => false,
        }
    }

    /// Iterates over all resident dirty munches (for flushes in tests).
    pub fn dirty_munches(&self) -> impl Iterator<Item = Eviction> + '_ {
        self.lines.iter().filter(|l| l.valid && l.dirty).map(|l| Eviction {
            vaddr: VirtAddr::new(l.tag),
            data: l.data,
        })
    }
}

impl Snapshot for Cache {
    fn save(&self, w: &mut Writer) {
        w.tag(b"CACH");
        w.len(self.sets);
        w.len(self.assoc);
        w.u64(self.clock);
        for line in &self.lines {
            w.u32(line.tag);
            w.bool(line.valid);
            w.bool(line.dirty);
            w.u64(line.stamp);
            w.words(&line.data);
        }
    }

    fn restore(&mut self, r: &mut Reader<'_>) -> Result<(), SnapError> {
        r.tag(b"CACH")?;
        if r.len()? != self.sets || r.len()? != self.assoc {
            return Err(SnapError::Mismatch {
                what: "cache geometry",
            });
        }
        self.clock = r.u64()?;
        for line in &mut self.lines {
            line.tag = r.u32()?;
            line.valid = r.bool()?;
            line.dirty = r.bool()?;
            line.stamp = r.u64()?;
            r.words(&mut line.data)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(n: u32) -> VirtAddr {
        VirtAddr::new(n)
    }

    #[test]
    fn miss_then_fill_then_hit() {
        let mut c = Cache::new(4, 2);
        assert_eq!(c.capacity_words(), 4 * 2 * 16);
        assert!(!c.probe(addr(0x123)));
        assert_eq!(c.read(addr(0x123)), None);
        let mut munch = [0u16; MUNCH_WORDS];
        munch[3] = 0xabcd;
        assert!(c.fill(addr(0x123), munch).is_none());
        assert!(c.probe(addr(0x120)));
        assert_eq!(c.read(addr(0x123)), Some(0xabcd));
        assert_eq!(c.peek(addr(0x120)), Some(0));
    }

    #[test]
    fn write_marks_dirty_and_eviction_carries_data() {
        let mut c = Cache::new(1, 1); // one line: every fill evicts
        c.fill(addr(0), [0; MUNCH_WORDS]);
        assert!(c.write(addr(5), 77));
        assert!(c.peek_dirty_munch(addr(0)).is_some());
        let ev = c.fill(addr(16), [0; MUNCH_WORDS]).expect("dirty eviction");
        assert_eq!(ev.vaddr, addr(0));
        assert_eq!(ev.data[5], 77);
        // Clean eviction yields nothing.
        assert!(c.fill(addr(32), [0; MUNCH_WORDS]).is_none());
    }

    #[test]
    fn write_miss_returns_false() {
        let mut c = Cache::new(4, 2);
        assert!(!c.write(addr(0), 1));
    }

    #[test]
    fn lru_replacement() {
        let mut c = Cache::new(1, 2); // one set, two ways
        c.fill(addr(0), [1; MUNCH_WORDS]);
        c.fill(addr(16), [2; MUNCH_WORDS]);
        // Touch block 0 so block 16 is LRU.
        assert_eq!(c.read(addr(0)), Some(1));
        c.fill(addr(32), [3; MUNCH_WORDS]);
        assert!(c.probe(addr(0)));
        assert!(!c.probe(addr(16)));
        assert!(c.probe(addr(32)));
    }

    #[test]
    fn invalidate_drops_line() {
        let mut c = Cache::new(4, 1);
        c.fill(addr(0), [9; MUNCH_WORDS]);
        c.write(addr(0), 1);
        assert!(c.invalidate(addr(3)));
        assert!(!c.probe(addr(0)));
        assert!(!c.invalidate(addr(3)));
        // Dirty data is gone — fast I/O overwrote storage.
        assert_eq!(c.dirty_munches().count(), 0);
    }

    #[test]
    fn snapshot_preserves_lru_order_exactly() {
        use dorado_base::snap::{restore_image, save_image};
        let mut c = Cache::new(1, 2);
        c.fill(addr(0), [1; MUNCH_WORDS]);
        c.fill(addr(16), [2; MUNCH_WORDS]);
        assert_eq!(c.read(addr(0)), Some(1)); // block 16 is now LRU
        c.write(addr(3), 0xbeef);

        let mut d = Cache::new(1, 2);
        restore_image(&mut d, &save_image(&c)).unwrap();
        assert_eq!(save_image(&c), save_image(&d));
        // The restored cache must make the same replacement decision.
        for m in [&mut c, &mut d] {
            m.fill(addr(32), [3; MUNCH_WORDS]);
            assert!(m.probe(addr(0)));
            assert!(!m.probe(addr(16)));
        }
        assert_eq!(d.peek(addr(3)), Some(0xbeef));

        // Geometry mismatch is rejected, not silently misapplied.
        let mut wrong = Cache::new(2, 2);
        assert_eq!(
            restore_image(&mut wrong, &save_image(&c)).unwrap_err(),
            SnapError::Mismatch {
                what: "cache geometry"
            }
        );
    }

    #[test]
    fn sets_partition_addresses() {
        let mut c = Cache::new(4, 1);
        // Addresses in different sets do not evict each other.
        c.fill(addr(0), [1; MUNCH_WORDS]); // set 0
        c.fill(addr(16), [2; MUNCH_WORDS]); // set 1
        c.fill(addr(32), [3; MUNCH_WORDS]); // set 2
        c.fill(addr(48), [4; MUNCH_WORDS]); // set 3
        for a in [0u32, 16, 32, 48] {
            assert!(c.probe(addr(a)), "{a}");
        }
        // Same set, different tag, evicts (assoc 1).
        c.fill(addr(64), [5; MUNCH_WORDS]); // set 0 again
        assert!(!c.probe(addr(0)));
    }
}
