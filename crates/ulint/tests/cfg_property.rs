//! Property tests over the CFG builder, driven by the in-repo
//! `dorado_base::check` harness: for randomly synthesized programs, the
//! graph's node set is exactly the `SlotUse`-used words, and the edge
//! relation is internally consistent.

use dorado_asm::placer::SlotUse;
use dorado_asm::synth::{random_program, SynthProfile};
use dorado_base::check::{check, Rng};
use dorado_base::{MicroAddr, MICROSTORE_SIZE};
use dorado_ulint::Cfg;

/// The CFG has a node for a word iff the placer marked that slot used
/// (an instruction or a relay — padding and empty slots carry none),
/// and relay-ness matches the slot kind.
#[test]
fn cfg_covers_exactly_the_used_words() {
    check("cfg_covers_exactly_the_used_words", 48, |rng: &mut Rng| {
        let seed = rng.next_u64();
        let placed = random_program(seed, 200, &SynthProfile::default())
            .place()
            .expect("synthesized programs place");
        let cfg = Cfg::build(&placed);
        let uses = placed.uses();
        let mut used_words = 0usize;
        for (i, slot) in uses.iter().enumerate() {
            let addr = MicroAddr::new(i as u16);
            match (slot, cfg.node(addr)) {
                (SlotUse::Empty | SlotUse::Waste, None) => {}
                (SlotUse::Empty | SlotUse::Waste, Some(_)) => {
                    panic!("seed {seed}: node at unused slot {addr}")
                }
                (SlotUse::Inst(_) | SlotUse::Relay(_), None) => {
                    panic!("seed {seed}: used slot {addr} has no node")
                }
                (slot, Some(node)) => {
                    used_words += 1;
                    assert_eq!(node.addr, addr, "seed {seed}");
                    assert_eq!(
                        node.relay,
                        matches!(slot, SlotUse::Relay(_)),
                        "seed {seed}: relay flag wrong at {addr}"
                    );
                    assert_eq!(
                        node.word.raw(),
                        placed.word(addr).raw(),
                        "seed {seed}: word mismatch at {addr}"
                    );
                }
            }
        }
        assert_eq!(cfg.len(), used_words, "seed {seed}");
    });
}

/// Edges stay inside the node set and the predecessor relation is the
/// exact inverse of the successor relation.
#[test]
fn cfg_edges_are_consistent() {
    check("cfg_edges_are_consistent", 48, |rng: &mut Rng| {
        let seed = rng.next_u64();
        let placed = random_program(seed, 160, &SynthProfile::default())
            .place()
            .expect("synthesized programs place");
        let cfg = Cfg::build(&placed);
        for node in cfg.iter() {
            for &s in &node.succs {
                let succ = cfg
                    .node(s)
                    .unwrap_or_else(|| panic!("seed {seed}: edge {} -> {s} leaves the graph", node.addr));
                assert!(
                    succ.preds.contains(&node.addr),
                    "seed {seed}: {} -> {s} missing inverse pred edge",
                    node.addr
                );
            }
            for &p in &node.preds {
                let pred = cfg
                    .node(p)
                    .unwrap_or_else(|| panic!("seed {seed}: pred {p} of {} not in graph", node.addr));
                assert!(
                    pred.succs.contains(&node.addr),
                    "seed {seed}: pred edge {p} -> {} has no forward edge",
                    node.addr
                );
            }
        }
        // Reachability from every label never escapes the node set and
        // is monotone in the root set.
        let labels: Vec<MicroAddr> = placed.labels().map(|(_, a)| a).collect();
        let all = cfg.reach(&labels);
        for (i, reached) in all.iter().enumerate() {
            if *reached {
                assert!(
                    cfg.node(MicroAddr::new(i as u16)).is_some(),
                    "seed {seed}: reached an address with no node"
                );
            }
        }
        if let Some((&first, _)) = labels.split_first() {
            let one = cfg.reach(&[first]);
            for i in 0..MICROSTORE_SIZE {
                assert!(
                    !one[i] || all[i],
                    "seed {seed}: single-root reach escapes the full-root reach at {i}"
                );
            }
        }
    });
}
