//! E18 differential validation as a test: run the workstation workload
//! and the stack-underflow probe, asserting the static hazard model has
//! no false negatives against the simulator's dynamic events.

use dorado_ulint::differential::{run_stack_underflow, run_workstation};

/// Every Hold the workstation run raises lands on a statically
/// predicted site for its cause, and the workload is not vacuous (it
/// exercises Hold and finishes the foreground computation).
#[test]
fn workstation_holds_are_all_predicted() {
    let out = run_workstation(2_000_000).expect("workstation builds");
    assert_eq!(out.tos, 610, "fib(15) did not complete");
    assert!(
        out.sound(),
        "unsound: missed holds {:?}, missed stack {:?}",
        out.missed_holds,
        out.missed_stack
    );
    let held: u64 = out.causes.iter().map(|t| t.held_cycles).sum();
    assert!(held > 0, "the workload never exercised Hold");
    let exercised: usize = out.causes.iter().map(|t| t.exercised).sum();
    let predicted: usize = out.causes.iter().map(|t| t.predicted).sum();
    assert!(exercised > 0 && exercised <= predicted);
}

/// The stack-error direction is exercised, not vacuous: a deliberate
/// underflow trips the checker on a predicted site.
#[test]
fn stack_underflow_lands_on_predicted_site() {
    let out = run_stack_underflow(100_000).expect("probe builds");
    assert!(out.stack_events > 0, "the probe never tripped stack-error");
    assert!(out.sound(), "missed stack sites: {:?}", out.missed_stack);
}
