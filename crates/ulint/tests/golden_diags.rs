//! Golden-diagnostic tests: a deliberately-bad corpus, one fixture per
//! pass, asserting the *exact* rendered output.  The fixtures double as
//! the negative tests the acceptance bar asks for — every seeded
//! violation must be caught, with the right severity, at the right
//! address, with the right words.
//!
//! Placement is deterministic, so the rendered addresses are stable; if
//! a placer change moves a word the expected text documents exactly
//! what the analyzer is anchored to.

use dorado_asm::{ASel, Assembler, BSel, Cond, FfOp, Inst, PlacedProgram};
use dorado_ulint::{lint, Severity};

/// Lints `placed` and renders every finding at or above `min`, in
/// report order, separated by blank lines.
fn rendered(placed: &PlacedProgram, min: Severity) -> String {
    let report = lint(placed);
    let mut out = String::new();
    for d in report.diags.iter().filter(|d| d.severity >= min) {
        out.push_str(&d.render(placed));
        out.push('\n');
    }
    out
}

#[track_caller]
fn assert_golden(actual: &str, expected: &str) {
    assert_eq!(
        actual.trim_end(),
        expected.trim_end(),
        "\n--- actual ---\n{actual}\n--- expected ---\n{expected}\n"
    );
}

/// ff-conflict: IFULOADPC and IFUJUMP in one word — statically
/// encodable, rejected by the decoder at runtime.
#[test]
fn ff_conflict_ifuloadpc_with_ifujump() {
    let mut a = Assembler::new();
    a.label("boot");
    a.emit(Inst::new().ff(FfOp::IfuLoadPc).ifu_jump());
    let placed = a.place().unwrap();
    let out = rendered(&placed, Severity::Error);
    assert_golden(
        &out,
        "error[ff-conflict]: FF function IFULOADPC conflicts with IFUJUMP in the same word\n\
         \x20 --> 000.00: RM[0] aluop0 RM[0], IFUPC\u{2190}B, ifujump\n\
         \x20  = note: the decoder rejects loading and dispatching the PC in one cycle",
    );
}

/// hold-hazard: a MEMDATA consumer no fetch can ever precede reads
/// stale data — the one genuine defect the hold pass promotes to a
/// warning (its definite/possible sites are info-level).
#[test]
fn hold_hazard_memdata_without_fetch() {
    let mut a = Assembler::new();
    a.label("boot");
    a.emit(Inst::new().b(BSel::MemData).load_t());
    a.emit(Inst::new().ff_halt().goto_("boot"));
    let placed = a.place().unwrap();
    let out = rendered(&placed, Severity::Warning);
    assert_golden(
        &out,
        "warning[hold-hazard]: reads MEMDATA but no path from any task entry starts a fetch first\n\
         \x20 --> 000.00: T\u{2190}, RM[0] aluop0 MEMDATA\n\
         \x20  = note: the read returns whatever the last memory reference left behind",
    );
}

/// hold-hazard stays quiet (no warning) once a fetch dominates the
/// consumer — the same consumer word, now legal.
#[test]
fn hold_hazard_memdata_after_fetch_is_clean() {
    let mut a = Assembler::new();
    a.label("boot");
    a.emit(Inst::new().a(ASel::FetchT));
    a.emit(Inst::new().b(BSel::MemData).load_t());
    a.emit(Inst::new().ff_halt().goto_("boot"));
    let placed = a.place().unwrap();
    assert_golden(&rendered(&placed, Severity::Warning), "");
}

/// branch-window: a latched-flag branch placed on the continuation of a
/// call tests the callee's RETURN flags, not the caller's.
#[test]
fn branch_window_flags_from_callee() {
    let mut a = Assembler::new();
    a.label("boot");
    a.emit(Inst::new().call("sub"));
    a.emit(Inst::new().branch(Cond::Zero, "done", "spin"));
    a.label("spin");
    a.emit(Inst::new().goto_("spin"));
    a.label("done");
    a.emit(Inst::new().ff_halt().goto_("done"));
    a.label("sub");
    a.emit(Inst::new().ret());
    let placed = a.place().unwrap();
    let out = rendered(&placed, Severity::Warning);
    assert_golden(
        &out,
        "warning[branch-window]: branch on ALU=0 follows the call at 000.00: the flags come from the callee's RETURN word, not the caller\n\
         \x20 --> 000.01: RM[0] aluop0 RM[0], if ALU=0 \u{2192} pair 1\n\
         \x20  = note: intentional only if the subroutine's last instruction computes the condition",
    );
}

/// stack-depth: a loop with no conditional exit whose every circuit
/// pushes — the 64-word stack must overflow.
#[test]
fn stack_depth_unbounded_push_loop() {
    let mut a = Assembler::new();
    a.label("boot");
    a.emit(Inst::new().stack(1).load_rm().goto_("boot"));
    let placed = a.place().unwrap();
    let out = rendered(&placed, Severity::Error);
    assert_golden(
        &out,
        "error[stack-depth]: stack depth drifts without bound around a loop (net push/pop is nonzero)\n\
         \x20 --> 000.00: RM[1]\u{2190}, RM[1] aluop0 RM[1], BLOCK/STK+1, goto .00\n\
         \x20  = note: every circuit of the loop moves STACKPTR; the 64-word stack must overflow",
    );
}

/// stack-depth: a straight-line excursion wider than the hardware
/// stack — no entry depth keeps every path in range.
#[test]
fn stack_depth_excursion_past_64() {
    let mut a = Assembler::new();
    a.label("boot");
    for _ in 0..10 {
        a.emit(Inst::new().stack(7).load_rm());
    }
    a.label("halt");
    a.emit(Inst::new().ff_halt().goto_("halt"));
    let placed = a.place().unwrap();
    let out = rendered(&placed, Severity::Error);
    assert_golden(
        &out,
        "error[stack-depth]: stack excursion [+0, +70] spans more than the 64-word stack\n\
         \x20 --> 000.00: RM[7]\u{2190}, RM[7] aluop0 RM[7], BLOCK/STK+7",
    );
}

/// task-safety: the emulator parks a value in COUNT while a disk
/// handler loads it — COUNT does not survive the task switch.
#[test]
fn task_safety_count_clobbered_across_tasks() {
    let mut a = Assembler::new();
    a.label("boot");
    a.emit(Inst::new().ff(FfOp::ReadCount).load_t().goto_("boot"));
    a.label("disk:init");
    a.emit(Inst::new().ff(FfOp::LoadCountImm(3)).io_block().goto_("disk:init"));
    let placed = a.place().unwrap();
    let out = rendered(&placed, Severity::Error);
    assert_golden(
        &out,
        "error[task-safety]: COUNT is read by the emulator task but I/O task `disk:init` writes it at 000.01; the value does not survive a task switch\n\
         \x20 --> 000.00: T\u{2190}, RM[0] aluop0 RM[0], CNT\u{2191}, goto .00\n\
         \x20  = note: COUNT, Q, SHIFTCTL and STACKPTR are shared across tasks (\u{a7}6.2); keep the value in T or an RM cell, or ensure only one task uses the register",
    );
}

/// dead-code: an emitted word behind an unconditional transfer, with no
/// label of its own, is unreachable from every task entry.
#[test]
fn dead_code_unreachable_word() {
    let mut a = Assembler::new();
    a.label("boot");
    a.emit(Inst::new().ff_halt().goto_("boot"));
    a.emit(Inst::new().goto_("boot"));
    let placed = a.place().unwrap();
    let out = rendered(&placed, Severity::Warning);
    assert_golden(
        &out,
        "warning[dead-code]: word is unreachable from every task entry\n\
         \x20 --> 000.01: RM[0] aluop0 RM[0], goto .00",
    );
}

/// dead-code: a CNT=0 branch directly after CNT<-0 — the CNT!=0 arm can
/// never be taken.
#[test]
fn dead_code_never_taken_count_arm() {
    let mut a = Assembler::new();
    a.label("boot");
    a.emit(Inst::new().ff(FfOp::LoadCountImm(0)));
    a.emit(Inst::new().branch(Cond::CntZero, "done", "boot"));
    a.label("done");
    a.emit(Inst::new().ff_halt().goto_("done"));
    let placed = a.place().unwrap();
    let out = rendered(&placed, Severity::Warning);
    assert_golden(
        &out,
        "warning[dead-code]: the CNT\u{2260}0 arm of this branch is never taken: COUNT is always 0 here\n\
         \x20 --> 000.01: RM[0] aluop0 RM[0], if CNT=0 \u{2192} pair 1\n\
         \x20  = note: the branch condition tests COUNT after this word's FF executes",
    );
}

/// bytecode: operand-stack underflow in a compiled `dorado-lang`
/// program renders with a source caret through the span map.
#[test]
fn bytecode_underflow_renders_source_caret() {
    use dorado_ulint::bytecode::{lint_bytecode, render_with_source};

    let src = "let x = 1;\nx + x;\nx;\n";
    let (mut bytes, map) = dorado_lang::compile_with_map(src).unwrap();
    // Corrupt the program: turn the DROP after `x + x` into a second
    // ADD, so the stack underflows at a known offset on line 2.
    assert_eq!(bytes[9], dorado_emu::mesa::Op::Drop as u8);
    bytes[9] = bytes[8];
    let diags = lint_bytecode(&bytes);
    let underflow: Vec<_> = diags
        .iter()
        .filter(|d| d.severity >= Severity::Warning)
        .collect();
    assert_eq!(underflow.len(), 1, "{diags:?}");
    let out = render_with_source(underflow[0], src, &map);
    assert_golden(
        &out,
        "error[bytecode]: operand stack underflows: depth is at most 1 but Add pops 2\n\
         \x20 --> line 2 (bytecode offset 9)\n\
         \x20  | x + x;\n\
         \x20  | ^^^^^^",
    );
}

/// The shipped emulator suites are lint-clean at -D warnings
/// strictness: zero errors, zero warnings, on every generator and on
/// the union image.
#[test]
fn shipped_suites_are_clean() {
    use dorado_emu::SuiteBuilder;
    let suites: Vec<(&str, SuiteBuilder)> = vec![
        ("mesa", SuiteBuilder::new().with_mesa()),
        ("smalltalk", SuiteBuilder::new().with_smalltalk()),
        ("lisp", SuiteBuilder::new().with_lisp()),
        ("bcpl", SuiteBuilder::new().with_bcpl()),
        ("bitblt", SuiteBuilder::new().with_mesa().with_bitblt()),
        ("cluster", SuiteBuilder::new().with_mesa().with_cluster()),
        ("everything", SuiteBuilder::everything()),
    ];
    for (name, builder) in suites {
        let suite = builder.assemble().unwrap();
        let report = lint(suite.placed());
        let loud: Vec<_> = report
            .diags
            .iter()
            .filter(|d| d.severity >= Severity::Warning)
            .map(|d| d.render(suite.placed()))
            .collect();
        assert!(loud.is_empty(), "{name}:\n{}", loud.join("\n"));
    }
}
