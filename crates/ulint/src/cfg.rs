//! The control-flow graph over a placed microprogram.
//!
//! The CFG started life here, but the compiled-simulation core in
//! `dorado-core` needs the same basic-block discovery, and `dorado-ulint`
//! already depends on `dorado-core` — so the graph itself now lives in
//! [`dorado_asm::cfg`], the layer both crates share.  This module
//! re-exports it so every existing `ulint` pass and downstream user keeps
//! compiling unchanged.

pub use dorado_asm::cfg::{successors, Cfg, Node};
