//! A worklist fixpoint engine for forward abstract interpretation over
//! the [`Cfg`](crate::cfg::Cfg).
//!
//! Passes plug in a [`Domain`]: an abstract value, a join, and a
//! transfer function over one microword.  The engine iterates to a
//! fixpoint, applying the domain's widening once a node has been
//! revisited enough times, so interval domains terminate on loops.

use dorado_base::{MicroAddr, MICROSTORE_SIZE};

use crate::cfg::{Cfg, Node};

/// An abstract domain for forward dataflow.
pub trait Domain {
    /// The abstract value attached to each program point.
    type Value: Clone + PartialEq;

    /// The value at analysis roots (task entries, labels).
    fn entry(&self) -> Self::Value;

    /// Least upper bound of two values.
    fn join(&self, a: &Self::Value, b: &Self::Value) -> Self::Value;

    /// Abstract effect of executing one word.
    fn transfer(&self, node: &Node, v: &Self::Value) -> Self::Value;

    /// Widening applied after a node has been revisited
    /// [`fixpoint`]'s `widen_after` times; defaults to plain join
    /// (fine for finite domains).
    fn widen(&self, old: &Self::Value, new: &Self::Value) -> Self::Value {
        self.join(old, new)
    }
}

/// Per-address input states after convergence, indexed by raw address.
/// `None` means the word was not reached from the roots.
pub struct Fixpoint<V> {
    states: Vec<Option<V>>,
}

impl<V> Fixpoint<V> {
    /// The input state at `addr` (the value *before* the word executes).
    pub fn input(&self, addr: MicroAddr) -> Option<&V> {
        self.states[addr.raw() as usize].as_ref()
    }
}

/// Runs `dom` to a fixpoint from `roots`.  `widen_after` bounds how many
/// times a node is re-joined precisely before widening kicks in.
pub fn fixpoint<D: Domain>(
    cfg: &Cfg,
    roots: &[MicroAddr],
    dom: &D,
    widen_after: usize,
) -> Fixpoint<D::Value> {
    let mut states: Vec<Option<D::Value>> = (0..MICROSTORE_SIZE).map(|_| None).collect();
    let mut visits = vec![0usize; MICROSTORE_SIZE];
    let mut work: Vec<MicroAddr> = Vec::new();
    for &r in roots {
        if cfg.node(r).is_none() {
            continue;
        }
        let i = r.raw() as usize;
        let entry = dom.entry();
        match &states[i] {
            Some(old) => {
                let joined = dom.join(old, &entry);
                if joined != *old {
                    states[i] = Some(joined);
                    work.push(r);
                }
            }
            None => {
                states[i] = Some(entry);
                work.push(r);
            }
        }
    }
    while let Some(a) = work.pop() {
        let node = cfg.node(a).expect("worklist holds live nodes");
        let input = states[a.raw() as usize]
            .clone()
            .expect("worklist nodes have states");
        let out = dom.transfer(node, &input);
        for &s in &node.succs {
            let i = s.raw() as usize;
            let updated = match &states[i] {
                None => Some(out.clone()),
                Some(old) => {
                    let new = if visits[i] > widen_after {
                        dom.widen(old, &out)
                    } else {
                        dom.join(old, &out)
                    };
                    if new == *old {
                        None
                    } else {
                        Some(new)
                    }
                }
            };
            if let Some(v) = updated {
                states[i] = Some(v);
                visits[i] += 1;
                work.push(s);
            }
        }
    }
    Fixpoint { states }
}
