//! Mesa bytecode lints with source-span rendering.
//!
//! The microcode passes anchor findings to microstore addresses; for
//! programs compiled from the `dorado-lang` surface language the
//! interesting defects live one level up, in the *bytecode* the
//! compiler emits.  This module abstract-interprets the operand-stack
//! depth over the bytecode CFG (interval per offset, joins at merges,
//! clamped so loops converge) and reports:
//!
//! * undefined or truncated instructions (Error);
//! * definite operand-stack underflow (Error) and possible underflow
//!   on some path (Warning);
//! * stack depth that can grow without bound around a loop (Warning);
//! * jump targets that land inside another instruction's operand
//!   bytes (Error);
//! * unreachable bytecode (Warning).
//!
//! Findings carry byte offsets; [`render_with_source`] maps them back
//! to the source line through the compiler's span map
//! (`dorado_lang::compile_with_map`) and renders a clippy-style
//! caret listing.

use dorado_emu::mesa::{opcode_table, Op};

use crate::diag::Severity;

/// Depth beyond which a loop is assumed to push without bound.
const DEPTH_CAP: i32 = 256;

/// One bytecode-level finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ByteDiagnostic {
    /// Finding severity.
    pub severity: Severity,
    /// Byte offset of the instruction.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl ByteDiagnostic {
    fn new(severity: Severity, offset: usize, message: impl Into<String>) -> Self {
        ByteDiagnostic {
            severity,
            offset,
            message: message.into(),
        }
    }
}

/// Stack effect of the straightforward opcodes; the flow ops (jumps,
/// call, ret, halt) are handled specially.
fn fixed_delta(op: Op) -> Option<i32> {
    Some(match op {
        Op::Lib | Op::Liw | Op::Ll | Op::Lg | Op::Dup => 1,
        Op::Sl | Op::Sg | Op::Drop | Op::Add | Op::Sub | Op::And | Op::Or | Op::Xor
        | Op::ARead => -1,
        Op::Neg | Op::Inc | Op::Rf | Op::Shift | Op::Mul | Op::Div => 0,
        Op::Wf => -2,
        Op::AWrite => -3,
        Op::Jb | Op::Jzb | Op::Jnzb | Op::Call | Op::Ret | Op::Halt => return None,
    })
}

/// Lints a Mesa bytecode program (entry at offset 0).
pub fn lint_bytecode(bytes: &[u8]) -> Vec<ByteDiagnostic> {
    let mut table: [Option<(Op, usize)>; 256] = [None; 256];
    for (op, _, operands, _) in opcode_table() {
        let size: usize = operands.iter().map(|k| k.bytes()).sum();
        table[op as u8 as usize] = Some((op, size));
    }
    let mut diags = Vec::new();
    let mut is_start = vec![false; bytes.len()];
    let mut is_operand = vec![false; bytes.len()];
    let mut depth: Vec<Option<(i32, i32)>> = vec![None; bytes.len()];
    let mut work: Vec<(usize, (i32, i32))> = vec![(0, (0, 0))];
    let mut reported_off_end = false;
    while let Some((at, d)) = work.pop() {
        if at >= bytes.len() {
            if !reported_off_end {
                diags.push(ByteDiagnostic::new(
                    Severity::Error,
                    bytes.len(),
                    "execution runs off the end of the program",
                ));
                reported_off_end = true;
            }
            continue;
        }
        // Clamp so net-push/net-pop loops converge; the clamps are
        // themselves reportable states.
        let d = (d.0.max(-1), d.1.min(DEPTH_CAP));
        let merged = match depth[at] {
            None => d,
            Some(old) => (old.0.min(d.0), old.1.max(d.1)),
        };
        if depth[at] == Some(merged) {
            continue;
        }
        depth[at] = Some(merged);
        is_start[at] = true;
        let Some((op, opsize)) = table[bytes[at] as usize] else {
            diags.push(ByteDiagnostic::new(
                Severity::Error,
                at,
                format!("undefined opcode {:#04x}", bytes[at]),
            ));
            continue;
        };
        if at + 1 + opsize > bytes.len() {
            diags.push(ByteDiagnostic::new(
                Severity::Error,
                at,
                format!("truncated instruction: {op:?} needs {opsize} operand bytes"),
            ));
            continue;
        }
        for slot in &mut is_operand[at + 1..at + 1 + opsize] {
            *slot = true;
        }
        let next = at + 1 + opsize;
        let rel_target = |operand_at: usize| {
            let disp = i64::from(bytes[operand_at] as i8);
            usize::try_from(operand_at as i64 + 1 + disp).ok()
        };
        match op {
            Op::Jb => {
                if let Some(t) = rel_target(at + 1) {
                    work.push((t, merged));
                }
            }
            Op::Jzb | Op::Jnzb => {
                let after = (merged.0 - 1, merged.1 - 1);
                if let Some(t) = rel_target(at + 1) {
                    work.push((t, after));
                }
                work.push((next, after));
            }
            Op::Call => {
                let nargs = i32::from(bytes[at + 1]);
                let target = usize::from(u16::from_be_bytes([bytes[at + 2], bytes[at + 3]]));
                // The callee runs in its own frame (arguments become
                // locals); the continuation sees the arguments replaced
                // by one result.
                work.push((target, (0, 0)));
                work.push((next, (merged.0 - nargs + 1, merged.1 - nargs + 1)));
            }
            Op::Ret | Op::Halt => {}
            _ => {
                let delta = fixed_delta(op).expect("flow ops handled above");
                work.push((next, (merged.0 + delta, merged.1 + delta)));
            }
        }
    }
    // Depth judgements, one per instruction, in offset order.
    for at in 0..bytes.len() {
        if !is_start[at] {
            continue;
        }
        let Some((lo, hi)) = depth[at] else { continue };
        let Some((op, _)) = table[bytes[at] as usize] else {
            continue;
        };
        let pops = match op {
            Op::Lib | Op::Liw | Op::Ll | Op::Lg | Op::Jb | Op::Halt => 0,
            Op::Sl | Op::Sg | Op::Neg | Op::Inc | Op::Jzb | Op::Jnzb | Op::Rf | Op::Shift
            | Op::Dup | Op::Drop | Op::Ret => 1,
            Op::Add | Op::Sub | Op::And | Op::Or | Op::Xor | Op::Wf | Op::ARead | Op::Mul
            | Op::Div => 2,
            Op::AWrite => 3,
            Op::Call => i32::from(bytes[at + 1]),
        };
        if hi - pops < 0 {
            diags.push(ByteDiagnostic::new(
                Severity::Error,
                at,
                format!("operand stack underflows: depth is at most {hi} but {op:?} pops {pops}"),
            ));
        } else if lo - pops < 0 {
            diags.push(ByteDiagnostic::new(
                Severity::Warning,
                at,
                format!(
                    "operand stack may underflow: depth can be as low as {lo} but {op:?} pops {pops}"
                ),
            ));
        }
        if hi >= DEPTH_CAP {
            diags.push(ByteDiagnostic::new(
                Severity::Warning,
                at,
                "operand stack depth can grow without bound around a loop",
            ));
        }
    }
    // Jump-into-operand conflicts.
    for at in 0..bytes.len() {
        if is_start[at] && is_operand[at] {
            diags.push(ByteDiagnostic::new(
                Severity::Error,
                at,
                "control transfers into another instruction's operand bytes",
            ));
        }
    }
    // Unreachable runs: report the first offset of each.
    let mut prev_dead = false;
    for at in 0..bytes.len() {
        let dead = !is_start[at] && !is_operand[at];
        if dead && !prev_dead {
            diags.push(ByteDiagnostic::new(
                Severity::Warning,
                at,
                "unreachable bytecode",
            ));
        }
        prev_dead = dead;
    }
    diags.sort_by(|a, b| (a.offset, &a.message).cmp(&(b.offset, &b.message)));
    diags.dedup();
    diags
}

/// Renders `d` against the source text through the compiler's span map
/// (pairs of bytecode offset and source `(start, end)` byte range, as
/// returned by `dorado_lang::compile_with_map`).
pub fn render_with_source(
    d: &ByteDiagnostic,
    src: &str,
    map: &[(usize, (usize, usize))],
) -> String {
    let mut out = format!("{}[bytecode]: {}\n", d.severity.name(), d.message);
    let span = map
        .iter()
        .rev()
        .find(|&&(o, _)| o <= d.offset)
        .map(|&(_, s)| s);
    match span {
        Some((start, end)) if start < src.len() => {
            let line_start = src[..start].rfind('\n').map_or(0, |i| i + 1);
            let line_no = src[..line_start].matches('\n').count() + 1;
            let line_end = src[line_start..]
                .find('\n')
                .map_or(src.len(), |i| line_start + i);
            let line = &src[line_start..line_end];
            let col = start - line_start;
            let width = end.min(line_end).saturating_sub(start).max(1);
            out.push_str(&format!("  --> line {line_no} (bytecode offset {})\n", d.offset));
            out.push_str(&format!("   | {line}\n"));
            out.push_str(&format!("   | {}{}\n", " ".repeat(col), "^".repeat(width)));
        }
        _ => {
            out.push_str(&format!("  --> bytecode offset {}\n", d.offset));
        }
    }
    out
}
