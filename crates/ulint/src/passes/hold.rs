//! Hold-hazard analysis (§3.2, §4.2): find every word that can stall
//! the processor by touching a resource that may not be ready, and
//! classify each site.
//!
//! The site set mirrors the simulator's `check_hold` exactly, so it is
//! sound by construction: any Hold the machine raises dynamically must
//! land on a statically listed site (the differential validator in
//! EXPERIMENTS.md E18 asserts this).
//!
//! Classification:
//! * **definite** — the word consumes MEMDATA and an immediate
//!   predecessor starts the fetch; the cache cannot answer in zero
//!   cycles, so Hold *will* occur on that path.
//! * **possible** — the stall depends on dynamic state (pipe busy,
//!   cache miss, IFU buffer empty).
//! * **bypassed** — a same-cycle RAW hazard on T/RM/Q that the bypass
//!   network (§4.2) hides; no Hold, reported for visibility.
//!
//! One genuine defect is reported: a word that consumes MEMDATA when no
//! path from any root has started a fetch — the read returns stale or
//! undefined data (Warning).

use dorado_asm::{ASel, BSel, FfOp, LoadControl, Microword};
use dorado_base::{HoldCause, MicroAddr, MICROSTORE_SIZE};

use crate::analysis::{fixpoint, Domain};
use crate::cfg::{Cfg, Node};
use crate::diag::{Diagnostic, Severity};

use super::{ff_function, Pass, PassCtx};

/// The statically predicted hold sites, per cause.
#[derive(Debug, Clone)]
pub struct HoldSites {
    /// `by_cause[cause.index()]` lists every word where that cause can
    /// raise Hold.
    pub by_cause: [Vec<MicroAddr>; HoldCause::COUNT],
}

impl HoldSites {
    /// Whether `addr` is a predicted site for `cause`.
    pub fn predicts(&self, cause: HoldCause, addr: MicroAddr) -> bool {
        self.by_cause[cause.index()].contains(&addr)
    }
}

/// Whether `word` can raise Hold for `cause`, mirroring `check_hold`.
pub fn can_hold(word: Microword, cause: HoldCause) -> bool {
    let Ok(asel) = word.asel() else { return false };
    let Ok(bsel) = word.bsel() else { return false };
    let ff = ff_function(word);
    match cause {
        HoldCause::MemData => bsel == BSel::MemData || ff == Some(FfOp::ShOutM),
        HoldCause::IfuOperand => asel.uses_ifudata(),
        HoldCause::MemPipe => asel.is_fetch(),
        HoldCause::MemStorage => {
            asel.starts_memory_ref() || matches!(ff, Some(FfOp::IoFetch16 | FfOp::IoStore16))
        }
        HoldCause::IfuDispatch => {
            matches!(word.control(), Ok(dorado_asm::ControlOp::IfuJump))
        }
    }
}

/// Computes the full static site set over the CFG.
pub fn hold_sites(cfg: &Cfg) -> HoldSites {
    let mut by_cause: [Vec<MicroAddr>; HoldCause::COUNT] = Default::default();
    for node in cfg.iter() {
        for cause in HoldCause::ALL {
            if can_hold(node.word, cause) {
                by_cause[cause.index()].push(node.addr);
            }
        }
    }
    HoldSites { by_cause }
}

/// Forward "a fetch may have started on some path to here" analysis.
struct FetchStarted;

impl Domain for FetchStarted {
    type Value = bool;
    fn entry(&self) -> bool {
        false
    }
    fn join(&self, a: &bool, b: &bool) -> bool {
        *a || *b
    }
    fn transfer(&self, node: &Node, v: &bool) -> bool {
        *v || node.word.asel().is_ok_and(|a| a.is_fetch())
    }
}

/// Does `next` read a value `prev` loads in the same cycle window — the
/// §4.2 bypass cases (T, RM same address, Q)?  Mirrors the assembler's
/// `hazard` predicate at the placed-word level.
fn bypassed_pair(prev: Microword, next: Microword) -> Option<&'static str> {
    let prev_load = prev.load_control().unwrap_or(LoadControl::None);
    let (Ok(next_asel), Ok(next_bsel)) = (next.asel(), next.bsel()) else {
        return None;
    };
    let next_ff = ff_function(next);
    let next_shifts = matches!(next_ff, Some(FfOp::ShOut | FfOp::ShOutZ | FfOp::ShOutM));
    if prev_load.loads_t() && (next_asel.reads_t() || next_bsel == BSel::T || next_shifts) {
        return Some("T");
    }
    if prev_load.loads_rm()
        && !prev.block()
        && !next.block()
        && next.raddr() == prev.raddr()
        && (next_asel.reads_rm() || next_bsel == BSel::Rm || next_shifts)
    {
        return Some("RM");
    }
    let prev_writes_q = matches!(
        ff_function(prev),
        Some(FfOp::LoadQ | FfOp::MulStep | FfOp::DivStep)
    );
    if prev_writes_q
        && (next_bsel == BSel::Q
            || matches!(next_ff, Some(FfOp::ReadQ | FfOp::MulStep | FfOp::DivStep)))
    {
        return Some("Q");
    }
    None
}

/// Input states of the "a fetch may have started" analysis from
/// `roots`, dense by raw address: `true` iff some root-to-word path
/// starts a fetch before the word executes.  A MEMDATA consumer whose
/// input is `false` is exactly what the pass warns about — a rewriter
/// placing a copy of such a consumer must check this first.
pub fn fetch_started(cfg: &Cfg, roots: &[MicroAddr]) -> Vec<bool> {
    let fetched = fixpoint(cfg, roots, &FetchStarted, 4);
    (0..MICROSTORE_SIZE)
        .map(|raw| fetched.input(MicroAddr::new(raw as u16)) == Some(&true))
        .collect()
}

/// The hold-hazard pass.
pub struct HoldHazard;

impl Pass for HoldHazard {
    fn name(&self) -> &'static str {
        "hold-hazard"
    }

    fn run(&self, ctx: &PassCtx<'_>) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        let mut roots = ctx.emu_roots();
        roots.extend(ctx.io_roots());
        let fetched = fixpoint(ctx.cfg, &roots, &FetchStarted, 4);
        for node in ctx.cfg.iter() {
            // MEMDATA consumers: definite after an adjacent fetch,
            // possible otherwise; a consumer no fetch can precede is a
            // genuine defect.
            if can_hold(node.word, HoldCause::MemData) {
                let adjacent_fetch = node
                    .preds
                    .iter()
                    .any(|&p| ctx.cfg.node(p).is_some_and(|n| n.word.asel().is_ok_and(ASel::is_fetch)));
                if adjacent_fetch {
                    out.push(Diagnostic::new(
                        self.name(),
                        Severity::Info,
                        node.addr,
                        "definite Hold: consumes MEMDATA in the cycle after the fetch starts",
                    ));
                } else if fetched.input(node.addr) == Some(&false) {
                    out.push(
                        Diagnostic::new(
                            self.name(),
                            Severity::Warning,
                            node.addr,
                            "reads MEMDATA but no path from any task entry starts a fetch first",
                        )
                        .note("the read returns whatever the last memory reference left behind"),
                    );
                } else {
                    out.push(Diagnostic::new(
                        self.name(),
                        Severity::Info,
                        node.addr,
                        "possible Hold: consumes MEMDATA (stalls until the fetch completes)",
                    ));
                }
            }
            if can_hold(node.word, HoldCause::IfuOperand) {
                out.push(Diagnostic::new(
                    self.name(),
                    Severity::Info,
                    node.addr,
                    "possible Hold: reads IFU operand bytes (stalls while the buffer is empty)",
                ));
            }
            if can_hold(node.word, HoldCause::IfuDispatch) {
                out.push(Diagnostic::new(
                    self.name(),
                    Severity::Info,
                    node.addr,
                    "possible Hold: IFUJUMP (stalls until an opcode is decoded)",
                ));
            }
            if can_hold(node.word, HoldCause::MemPipe) {
                out.push(Diagnostic::new(
                    self.name(),
                    Severity::Info,
                    node.addr,
                    "possible Hold: starts a fetch (stalls while the memory pipe is busy)",
                ));
            } else if can_hold(node.word, HoldCause::MemStorage) {
                out.push(Diagnostic::new(
                    self.name(),
                    Severity::Info,
                    node.addr,
                    "possible Hold: memory reference (stalls while storage is busy)",
                ));
            }
            // Bypassed same-cycle RAW hazards: no Hold, by §4.2.
            for &p in &node.preds {
                let Some(prev) = ctx.cfg.node(p) else { continue };
                if let Some(what) = bypassed_pair(prev.word, node.word) {
                    out.push(
                        Diagnostic::new(
                            self.name(),
                            Severity::Info,
                            node.addr,
                            format!("bypassed: reads {what} loaded by {p} in the previous cycle"),
                        )
                        .note("the bypass network forwards the value; no Hold occurs"),
                    );
                }
            }
        }
        out
    }
}
