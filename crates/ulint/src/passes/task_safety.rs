//! Task-safety analysis (§6.2): the Dorado multiplexes one datapath
//! between sixteen tasks, and while T, RBASE, MEMBASE, IOADDRESS and
//! the branch flags are task-specific, the small registers COUNT, Q,
//! SHIFTCTL and STACKPTR are **shared** — a task switch does not save
//! them.  A value one task leaves in a shared register is silently
//! clobbered when another task that uses the same register runs.
//!
//! When each task can be interrupted differs:
//!
//! * the **emulator task** is the lowest-priority task; any I/O wakeup
//!   preempts it at any microinstruction boundary, so *every* emulator
//!   read of a shared register is vulnerable if any I/O handler writes
//!   that register;
//! * an **I/O task** runs until it blocks (or a higher-priority task
//!   preempts it), so an I/O read is vulnerable when the value may have
//!   been set before a BLOCK yield — tracked by a small dataflow pass —
//!   or before the wakeup that entered the handler.
//!
//! Stack operations read and write STACKPTR but execute only on the
//! emulator task (BLOCK on an I/O task is a yield, not a stack op).

use dorado_asm::{BSel, Cond, ControlOp, FfOp, Microword};
use dorado_base::MicroAddr;

use crate::analysis::{fixpoint, Domain};
use crate::cfg::Node;
use crate::diag::{Diagnostic, Severity};

use super::{ff_function, is_stack_op, Pass, PassCtx};

/// The shared (not per-task) small registers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SharedReg {
    Count,
    Q,
    ShiftCtl,
    StackPtr,
}

impl SharedReg {
    const ALL: [SharedReg; 4] = [
        SharedReg::Count,
        SharedReg::Q,
        SharedReg::ShiftCtl,
        SharedReg::StackPtr,
    ];

    fn name(self) -> &'static str {
        match self {
            SharedReg::Count => "COUNT",
            SharedReg::Q => "Q",
            SharedReg::ShiftCtl => "SHIFTCTL",
            SharedReg::StackPtr => "STACKPTR",
        }
    }
}

/// Whether `word` writes `reg` (`emu` selects the emulator-task reading
/// of the BLOCK bit, where it is a stack operation).
fn writes(word: Microword, reg: SharedReg, emu: bool) -> bool {
    let ff = ff_function(word);
    match reg {
        SharedReg::Count => matches!(
            ff,
            Some(FfOp::LoadCount | FfOp::LoadCountImm(_) | FfOp::DecCount)
        ),
        SharedReg::Q => matches!(ff, Some(FfOp::LoadQ | FfOp::MulStep | FfOp::DivStep)),
        SharedReg::ShiftCtl => matches!(ff, Some(FfOp::LoadShiftCtl | FfOp::ShiftCtlImm(_))),
        SharedReg::StackPtr => {
            matches!(ff, Some(FfOp::LoadStackPtr))
                || (emu && is_stack_op(word) && word.stack_delta() != 0)
        }
    }
}

/// Whether `word` reads `reg`.
fn reads(word: Microword, reg: SharedReg, emu: bool) -> bool {
    let ff = ff_function(word);
    let bsel = word.bsel().ok();
    match reg {
        SharedReg::Count => {
            matches!(ff, Some(FfOp::ReadCount | FfOp::DecCount))
                || matches!(
                    word.control(),
                    Ok(ControlOp::CondGoto {
                        cond: Cond::CntZero,
                        ..
                    })
                )
        }
        SharedReg::Q => {
            bsel == Some(BSel::Q)
                || matches!(ff, Some(FfOp::ReadQ | FfOp::MulStep | FfOp::DivStep))
        }
        SharedReg::ShiftCtl => matches!(
            ff,
            Some(FfOp::ReadShiftCtl | FfOp::ShOut | FfOp::ShOutZ | FfOp::ShOutM)
        ),
        SharedReg::StackPtr => {
            matches!(ff, Some(FfOp::ReadStackPtr)) || (emu && is_stack_op(word))
        }
    }
}

/// Forward "the register may hold a value from before a yield" analysis
/// for one register inside one I/O handler region.  At the handler
/// entry the register holds whatever ran before the wakeup; a write
/// makes it fresh; a BLOCK yield (the FF executes first, then the task
/// sleeps) makes it stale again.
struct Stale(SharedReg);

impl Domain for Stale {
    type Value = bool;
    fn entry(&self) -> bool {
        true
    }
    fn join(&self, a: &bool, b: &bool) -> bool {
        *a || *b
    }
    fn transfer(&self, node: &Node, v: &bool) -> bool {
        if node.word.block() {
            true
        } else if writes(node.word, self.0, false) {
            false
        } else {
            *v
        }
    }
}

/// A task region: one reachability footprint that runs as one task.
struct Region {
    label: String,
    emu: bool,
    root: Option<MicroAddr>,
    reach: Vec<bool>,
}

/// The task-safety pass.
pub struct TaskSafety;

impl Pass for TaskSafety {
    fn name(&self) -> &'static str {
        "task-safety"
    }

    fn run(&self, ctx: &PassCtx<'_>) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        let mut regions = vec![Region {
            label: "the emulator task".into(),
            emu: true,
            root: None,
            reach: ctx.emu_reach.to_vec(),
        }];
        for (label, addr) in &ctx.config.io_roots {
            regions.push(Region {
                label: format!("I/O task `{label}`"),
                emu: false,
                root: Some(*addr),
                reach: ctx.cfg.reach(&[*addr]),
            });
        }
        for reg in SharedReg::ALL {
            // Write sites per region.
            let writers: Vec<Vec<MicroAddr>> = regions
                .iter()
                .map(|r| {
                    ctx.cfg
                        .iter()
                        .filter(|n| r.reach[n.addr.raw() as usize])
                        .filter(|n| writes(n.word, reg, r.emu))
                        .map(|n| n.addr)
                        .collect()
                })
                .collect();
            for (i, region) in regions.iter().enumerate() {
                // The first write of `reg` by any *other* region, if any.
                let clobber = regions
                    .iter()
                    .enumerate()
                    .filter(|&(j, _)| j != i)
                    .find_map(|(j, other)| writers[j].first().map(|&a| (other.label.clone(), a)));
                let Some((by, at)) = clobber else { continue };
                // Inside an I/O handler only reads of a possibly-stale
                // value are vulnerable; the emulator is preemptible
                // everywhere, so every read is.
                let stale = region
                    .root
                    .map(|root| fixpoint(ctx.cfg, &[root], &Stale(reg), 4));
                let site = ctx.cfg.iter().find(|n| {
                    region.reach[n.addr.raw() as usize]
                        && reads(n.word, reg, region.emu)
                        && n.addr != at
                        && stale
                            .as_ref()
                            .is_none_or(|s| s.input(n.addr) == Some(&true))
                });
                if let Some(node) = site {
                    out.push(
                        Diagnostic::new(
                            self.name(),
                            Severity::Error,
                            node.addr,
                            format!(
                                "{} is read by {} but {by} writes it at {at}; the value does \
                                 not survive a task switch",
                                reg.name(),
                                region.label,
                            ),
                        )
                        .note(
                            "COUNT, Q, SHIFTCTL and STACKPTR are shared across tasks (§6.2); \
                             keep the value in T or an RM cell, or ensure only one task uses \
                             the register",
                        ),
                    );
                }
            }
        }
        out
    }
}
