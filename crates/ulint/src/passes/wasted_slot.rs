//! Wasted-slot census: microstore words that execute without doing
//! useful work — the §7 placement costs an optimizer can try to win
//! back.
//!
//! Two kinds are counted:
//!
//! * **branch-window relays** — placer-inserted words (duplicated
//!   branch-pair arms, cross-page escapes with a busy FF) that burn one
//!   store word *and* one executed cycle purely re-aiming `NEXTPC`.
//!   Branch-slot filling can replace many of them with a copy of the
//!   target instruction.
//! * **hold-shadow no-ops** — reachable words whose data path is idle
//!   (no register sink, no stack op, no FF side effect) sitting directly
//!   in the shadow of a memory-start: the cycle the fetch latency could
//!   have hidden is spent doing nothing.  Scheduling can sometimes move
//!   independent work into the shadow.
//!
//! Everything here is informational — wasted words are a cost, not a
//! bug — but the census doubles as the optimizer's opportunity list:
//! `dorado-uopt` reports how much of it each pass reclaimed and why the
//! remainder stays.

use dorado_asm::{FfOp, LoadControl, Microword, SlotUse};
use dorado_base::MicroAddr;

use crate::diag::{Diagnostic, Severity};

use super::{ff_function, flag_branch, Pass, PassCtx};

/// Why a word is counted as wasted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WasteKind {
    /// A placer relay: the word only re-aims control at the named label.
    BranchWindow {
        /// The relay's target label.
        target: String,
    },
    /// A data-path-idle word in the cycle shadow of a memory start.
    HoldShadowNop,
}

/// One wasted word.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WastedSlot {
    /// The word's address.
    pub at: MicroAddr,
    /// Why it is wasted.
    pub kind: WasteKind,
}

/// Whether `word`'s data path does nothing observable: no register sink,
/// no stack operation, and no FF side effect.  (The ALU still runs and
/// commits flags every cycle, so callers must separately check that no
/// successor is a latched-flag branch before calling the word useless.)
fn datapath_idle(word: Microword) -> bool {
    let load = word.load_control().unwrap_or(LoadControl::None);
    if load.loads_t() || load.loads_rm() || word.block() {
        return false;
    }
    match ff_function(word) {
        // FF decodes to an executable function: only a true no-op is idle.
        Some(op) => op == FfOp::Nop,
        // FF is claimed as a constant or a page number — data, not effect.
        None => true,
    }
}

/// Computes the wasted-slot census over `ctx` — the query behind the
/// diagnostic pass and `dorado-uopt`'s opportunity accounting.
pub fn wasted_slots(ctx: &PassCtx<'_>) -> Vec<WastedSlot> {
    let mut out = Vec::new();
    for (raw, slot) in ctx.placed.uses().iter().enumerate() {
        let at = MicroAddr::new(raw as u16);
        match slot {
            SlotUse::Relay(target) => {
                out.push(WastedSlot {
                    at,
                    kind: WasteKind::BranchWindow {
                        target: target.clone(),
                    },
                });
            }
            SlotUse::Inst(_) => {
                if !ctx.emu_reach[raw] && !ctx.io_reach[raw] {
                    continue; // dead-code pass territory
                }
                let Some(node) = ctx.cfg.node(at) else {
                    continue;
                };
                if !datapath_idle(node.word) {
                    continue;
                }
                // The idle ALU still commits flags: a latched-flag branch
                // successor means the word is doing the comparison.
                let feeds_flags = node.succs.iter().any(|&s| {
                    ctx.cfg
                        .node(s)
                        .is_some_and(|n| flag_branch(n.word).is_some())
                });
                if feeds_flags {
                    continue;
                }
                let shadowed = node.preds.iter().any(|&p| {
                    ctx.cfg.node(p).is_some_and(|n| {
                        n.word
                            .asel()
                            .is_ok_and(dorado_asm::ASel::starts_memory_ref)
                    })
                });
                if shadowed {
                    out.push(WastedSlot {
                        at,
                        kind: WasteKind::HoldShadowNop,
                    });
                }
            }
            SlotUse::Empty | SlotUse::Waste => {}
        }
    }
    out
}

/// The wasted-slot pass.
pub struct WastedSlotPass;

impl Pass for WastedSlotPass {
    fn name(&self) -> &'static str {
        "wasted-slot"
    }

    fn run(&self, ctx: &PassCtx<'_>) -> Vec<Diagnostic> {
        wasted_slots(ctx)
            .into_iter()
            .map(|w| match w.kind {
                WasteKind::BranchWindow { target } => Diagnostic::new(
                    self.name(),
                    Severity::Info,
                    w.at,
                    format!("wasted slot: relay to `{target}` spends a word and a cycle re-aiming control"),
                )
                .note("branch-slot filling can replace a relay with a copy of its target"),
                WasteKind::HoldShadowNop => Diagnostic::new(
                    self.name(),
                    Severity::Info,
                    w.at,
                    "wasted slot: data-path-idle word in a memory-start shadow",
                )
                .note("the fetch latency could hide a useful instruction here"),
            })
            .collect()
    }
}
