//! FF-field conflict analysis (§5.5): the FF catchall field is a
//! constant source, a page number, or a function, and one word can only
//! mean one of those.  The structural placement checks
//! (`dorado_asm::verify`) are folded in here as the first layer; on top
//! of them this pass catches the semantic double-claims the structural
//! pass cannot see:
//!
//! * `IFULOADPC` together with `IFUJUMP` — the machine's decoder
//!   rejects the combination at runtime (the PC would be loaded and
//!   dispatched in one cycle); statically it encodes fine.
//! * A `DISPATCH8` word: its FF carries the table's page number, but
//!   the decoder *also* executes FF as a function.  If the page number
//!   happens to decode to a state-writing function the dispatch
//!   silently clobbers machine state; if it decodes to a register read
//!   it overrides the ALU result being written back.

use dorado_asm::verify::verify;
use dorado_asm::{ControlOp, FfOp};

use crate::diag::{Diagnostic, Severity};

use super::{ff_function, Pass, PassCtx};

/// Whether executing `op` as an FF function writes machine state.
fn writes_state(op: FfOp) -> bool {
    !matches!(
        op,
        FfOp::Nop
            | FfOp::ReadRBase
            | FfOp::ReadStackPtr
            | FfOp::ReadCount
            | FfOp::ReadShiftCtl
            | FfOp::ReadLink
            | FfOp::ReadQ
            | FfOp::ReadMemBase
            | FfOp::ReadIoAddress
            | FfOp::ReadBase
            | FfOp::ReadTpc
            | FfOp::IfuReadPc
            | FfOp::ShOut
            | FfOp::ShOutZ
            | FfOp::ShOutM
    )
}

/// The ff-conflict pass (structural verification plus decode-conflict
/// generalizations).
pub struct FfConflict;

impl Pass for FfConflict {
    fn name(&self) -> &'static str {
        "ff-conflict"
    }

    fn run(&self, ctx: &PassCtx<'_>) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        // Layer 1: the structural placement checks, deduplicated.
        let mut seen = Vec::new();
        for v in verify(ctx.placed) {
            let key = (v.at, v.what.clone());
            if seen.contains(&key) {
                continue;
            }
            out.push(Diagnostic::new(
                self.name(),
                Severity::Error,
                v.at,
                v.what.clone(),
            ));
            seen.push(key);
        }
        // Layer 2: decode-level double-claims.
        for node in ctx.cfg.iter() {
            let control = node.word.control();
            if ff_function(node.word) == Some(FfOp::IfuLoadPc)
                && matches!(control, Ok(ControlOp::IfuJump))
            {
                out.push(
                    Diagnostic::new(
                        self.name(),
                        Severity::Error,
                        node.addr,
                        "FF function IFULOADPC conflicts with IFUJUMP in the same word",
                    )
                    .note("the decoder rejects loading and dispatching the PC in one cycle"),
                );
            }
            if matches!(control, Ok(ControlOp::Dispatch8 { .. })) {
                if let Ok(op) = FfOp::decode(node.word.ff()) {
                    let loads = node
                        .word
                        .load_control()
                        .is_ok_and(|l| l.loads_t() || l.loads_rm());
                    if writes_state(op) {
                        out.push(
                            Diagnostic::new(
                                self.name(),
                                Severity::Error,
                                node.addr,
                                format!(
                                    "DISPATCH8 table page doubles as FF function {op:?}, which writes machine state"
                                ),
                            )
                            .note("move the dispatch table to a page whose number decodes to a harmless function"),
                        );
                    } else if op.drives_result() && loads {
                        out.push(Diagnostic::new(
                            self.name(),
                            Severity::Warning,
                            node.addr,
                            format!(
                                "DISPATCH8 table page doubles as FF function {op:?}, overriding the value written back"
                            ),
                        ));
                    }
                }
            }
        }
        out
    }
}
