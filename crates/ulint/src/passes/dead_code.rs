//! Dead-code analysis: microstore words no task can ever reach, and
//! conditional-branch arms that can never be taken.
//!
//! Reachability comes from the CFG closure over every labelled entry
//! (emulator and I/O).  Dead *arms* are found for CNT=0 branches by a
//! COUNT interval analysis: `CNT←n` pins the interval, `CNT-1` shifts
//! it while it stays above zero (the decrement wraps at zero, which
//! drops to ⊤), joins widen.  The condition is tested *after* the same
//! word's FF executes (§6.3.3: `CNT-1` with a CNT=0 branch tests the
//! decremented value), so the check uses the post-transfer interval.
//!
//! The interval is only sound while no other task writes COUNT (it is a
//! shared register): the analysis is gated off for emulator-region
//! branches when any I/O handler writes COUNT, and vice versa — the
//! task-safety pass reports that situation itself.

use dorado_asm::{Cond, ControlOp, FfOp, Microword};

use crate::analysis::{fixpoint, Domain};
use crate::cfg::Node;
use crate::diag::{Diagnostic, Severity};

use super::{ff_function, Pass, PassCtx};

/// Whether `word` writes COUNT.
fn writes_count(word: Microword) -> bool {
    matches!(
        ff_function(word),
        Some(FfOp::LoadCount | FfOp::LoadCountImm(_) | FfOp::DecCount)
    )
}

/// COUNT as an interval; `None` is ⊤ (unknown).
struct CountInterval;

impl Domain for CountInterval {
    type Value = Option<(u16, u16)>;
    fn entry(&self) -> Self::Value {
        None
    }
    fn join(&self, a: &Self::Value, b: &Self::Value) -> Self::Value {
        match (a, b) {
            (Some((al, ah)), Some((bl, bh))) => Some(((*al).min(*bl), (*ah).max(*bh))),
            _ => None,
        }
    }
    fn transfer(&self, node: &Node, v: &Self::Value) -> Self::Value {
        match ff_function(node.word) {
            Some(FfOp::LoadCountImm(n)) => Some((n.into(), n.into())),
            Some(FfOp::LoadCount) => None,
            Some(FfOp::DecCount) => v.and_then(|(l, h)| {
                // COUNT wraps at zero; only a strictly positive interval
                // shifts down intact.
                if l > 0 {
                    Some((l - 1, h - 1))
                } else {
                    None
                }
            }),
            _ => *v,
        }
    }
    fn widen(&self, _old: &Self::Value, _new: &Self::Value) -> Self::Value {
        None
    }
}

/// Which arm of a CNT=0 conditional branch can never be taken.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CntArm {
    /// COUNT is provably 0 at the branch: the CNT≠0 (false) arm is dead,
    /// the branch always goes to its true target.
    AlwaysZero,
    /// COUNT is provably nonzero at the branch: the CNT=0 (true) arm is
    /// dead, the branch always falls to its false target.
    NeverZero,
}

/// One proven-dead branch arm: the branch address, which arm is dead,
/// and the COUNT interval that proves it (tested *after* the word's own
/// FF executes, per §6.3.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CntArmFact {
    /// Address of the CNT=0 conditional branch.
    pub at: dorado_base::MicroAddr,
    /// Which arm is dead.
    pub arm: CntArm,
    /// The post-FF COUNT interval at the branch.
    pub interval: (u16, u16),
}

/// Computes the dead CNT branch arms over `ctx` — the query behind both
/// the diagnostic pass and the optimizer's dead-arm elimination.  The
/// interval analysis is gated off wherever COUNT is shared across task
/// classes (the task-safety pass reports that situation itself).
pub fn cnt_dead_arms(ctx: &PassCtx<'_>) -> Vec<CntArmFact> {
    let mut out = Vec::new();
    let emu_writes = ctx
        .cfg
        .iter()
        .any(|n| ctx.emu_reach[n.addr.raw() as usize] && writes_count(n.word));
    let io_writes = ctx
        .cfg
        .iter()
        .any(|n| ctx.io_reach[n.addr.raw() as usize] && writes_count(n.word));
    let mut roots = ctx.emu_roots();
    roots.extend(ctx.io_roots());
    let counts = fixpoint(ctx.cfg, &roots, &CountInterval, 4);
    for node in ctx.cfg.iter() {
        let Ok(ControlOp::CondGoto {
            cond: Cond::CntZero,
            ..
        }) = node.word.control()
        else {
            continue;
        };
        let i = node.addr.raw() as usize;
        if (ctx.emu_reach[i] && io_writes) || (ctx.io_reach[i] && emu_writes) {
            continue;
        }
        let Some(input) = counts.input(node.addr) else {
            continue;
        };
        let Some((lo, hi)) = CountInterval.transfer(node, input) else {
            continue;
        };
        if lo == 0 && hi == 0 {
            out.push(CntArmFact {
                at: node.addr,
                arm: CntArm::AlwaysZero,
                interval: (lo, hi),
            });
        } else if lo > 0 {
            out.push(CntArmFact {
                at: node.addr,
                arm: CntArm::NeverZero,
                interval: (lo, hi),
            });
        }
    }
    out
}

/// The dead-code pass.
pub struct DeadCode;

impl Pass for DeadCode {
    fn name(&self) -> &'static str {
        "dead-code"
    }

    fn run(&self, ctx: &PassCtx<'_>) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        for node in ctx.cfg.iter() {
            let i = node.addr.raw() as usize;
            if !ctx.emu_reach[i] && !ctx.io_reach[i] {
                out.push(Diagnostic::new(
                    self.name(),
                    Severity::Warning,
                    node.addr,
                    "word is unreachable from every task entry",
                ));
            }
        }
        // CNT=0 dead arms, gated on COUNT being single-task.
        for fact in cnt_dead_arms(ctx) {
            let (lo, hi) = fact.interval;
            let message = match fact.arm {
                CntArm::AlwaysZero => {
                    "the CNT≠0 arm of this branch is never taken: COUNT is always 0 here"
                        .to_string()
                }
                CntArm::NeverZero => format!(
                    "the CNT=0 arm of this branch is never taken: COUNT is always in \
                     [{lo}, {hi}] here"
                ),
            };
            out.push(
                Diagnostic::new(self.name(), Severity::Warning, fact.at, message)
                    .note("the branch condition tests COUNT after this word's FF executes"),
            );
        }
        out
    }
}
