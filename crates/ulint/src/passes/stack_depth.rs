//! Stack-depth interval analysis (§6.3.3): prove that no path through
//! the emulator-task microcode can push or pop the 64-word hardware
//! stack out of range.
//!
//! Depths are tracked *relative to entry* as an interval, joined at
//! merges and widened on loops.  Two defects are reported:
//!
//! * a loop whose net stack delta is nonzero — the depth drifts without
//!   bound and must eventually trip the stack-error checker (Error);
//! * a finite excursion wider than the 64-word stack — no entry depth
//!   can keep every path in range (Error).
//!
//! The overall excursion is reported as one Info line for the
//! differential validator and the listings.
//!
//! Stack operations execute only on the emulator task (BLOCK on an I/O
//! task is a yield), so the analysis runs over the emulator region.

use dorado_base::MicroAddr;

use crate::analysis::{fixpoint, Domain};
use crate::cfg::{Cfg, Node};
use crate::diag::{Diagnostic, Severity};

use super::{is_stack_op, Pass, PassCtx};

/// Widening sentinels: beyond any real depth.
const MIN: i32 = i32::MIN / 2;
const MAX: i32 = i32::MAX / 2;

/// A depth interval relative to the entry depth.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Depth {
    /// Least possible relative depth.
    pub lo: i32,
    /// Greatest possible relative depth.
    pub hi: i32,
}

struct DepthDomain;

impl Domain for DepthDomain {
    type Value = Depth;
    fn entry(&self) -> Depth {
        Depth { lo: 0, hi: 0 }
    }
    fn join(&self, a: &Depth, b: &Depth) -> Depth {
        Depth {
            lo: a.lo.min(b.lo),
            hi: a.hi.max(b.hi),
        }
    }
    fn transfer(&self, node: &Node, v: &Depth) -> Depth {
        if is_stack_op(node.word) {
            let d = i32::from(node.word.stack_delta());
            Depth {
                lo: v.lo.saturating_add(d).max(MIN),
                hi: v.hi.saturating_add(d).min(MAX),
            }
        } else {
            *v
        }
    }
    fn widen(&self, old: &Depth, new: &Depth) -> Depth {
        Depth {
            lo: if new.lo < old.lo { MIN } else { old.lo },
            hi: if new.hi > old.hi { MAX } else { old.hi },
        }
    }
}

/// The nodes on some cycle through `at`: reachable from `at` and able
/// to reach it back (via the predecessor edges).
fn cycle_through(cfg: &Cfg, at: MicroAddr) -> Vec<MicroAddr> {
    let fwd = cfg.reach(&[at]);
    let mut back = vec![false; fwd.len()];
    let mut work = vec![at];
    back[at.raw() as usize] = true;
    while let Some(a) = work.pop() {
        let Some(node) = cfg.node(a) else { continue };
        for &p in &node.preds {
            if !back[p.raw() as usize] {
                back[p.raw() as usize] = true;
                work.push(p);
            }
        }
    }
    cfg.iter()
        .map(|n| n.addr)
        .filter(|a| fwd[a.raw() as usize] && back[a.raw() as usize])
        .collect()
}

/// Emulator-reachable stack operations that move the pointer — the
/// static site set every dynamic stack-error event must map into.
pub fn stack_sites(cfg: &Cfg, emu_reach: &[bool]) -> Vec<MicroAddr> {
    cfg.iter()
        .filter(|n| emu_reach[n.addr.raw() as usize])
        .filter(|n| is_stack_op(n.word) && n.word.stack_delta() != 0)
        .map(|n| n.addr)
        .collect()
}

/// The stack-depth pass.
pub struct StackDepth;

impl Pass for StackDepth {
    fn name(&self) -> &'static str {
        "stack-depth"
    }

    fn run(&self, ctx: &PassCtx<'_>) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        let roots = ctx.emu_roots();
        if roots.is_empty() {
            return out;
        }
        let states = fixpoint(ctx.cfg, &roots, &DepthDomain, 8);
        let mut span = Depth { lo: 0, hi: 0 };
        let mut drift_reported = false;
        for node in ctx.cfg.iter() {
            let Some(input) = states.input(node.addr) else {
                continue;
            };
            if !is_stack_op(node.word) {
                continue;
            }
            let after = DepthDomain.transfer(node, input);
            if (after.lo <= MIN || after.hi >= MAX) && !drift_reported {
                // The interval widened: every circuit of some loop
                // through this stack op moves STACKPTR.  If the loop
                // has a conditional exit the depth is bounded by the
                // (statically unknown) trip count — report for the
                // listings; a loop with no conditional exit must
                // overflow.  Report once, at the first such site.
                let cycle = cycle_through(ctx.cfg, node.addr);
                let has_exit = cycle.iter().any(|&a| {
                    ctx.cfg.node(a).is_some_and(|n| {
                        matches!(n.word.control(), Ok(dorado_asm::ControlOp::CondGoto { .. }))
                    })
                });
                if has_exit {
                    out.push(Diagnostic::new(
                        self.name(),
                        Severity::Info,
                        node.addr,
                        "stack depth in this loop is bounded only by its iteration count \
                         (net push/pop per circuit is nonzero)",
                    ));
                } else {
                    out.push(
                        Diagnostic::new(
                            self.name(),
                            Severity::Error,
                            node.addr,
                            "stack depth drifts without bound around a loop (net push/pop is nonzero)",
                        )
                        .note("every circuit of the loop moves STACKPTR; the 64-word stack must overflow"),
                    );
                }
                drift_reported = true;
            }
            span.lo = span.lo.min(after.lo.max(MIN + 1));
            span.hi = span.hi.max(after.hi.min(MAX - 1));
        }
        if !drift_reported {
            if span.hi - span.lo > 63 {
                out.push(Diagnostic::new(
                    self.name(),
                    Severity::Error,
                    roots[0],
                    format!(
                        "stack excursion [{:+}, {:+}] spans more than the 64-word stack",
                        span.lo, span.hi
                    ),
                ));
            } else if span.lo != 0 || span.hi != 0 {
                out.push(Diagnostic::new(
                    self.name(),
                    Severity::Info,
                    roots[0],
                    format!(
                        "emulator stack excursion [{:+}, {:+}] words relative to entry",
                        span.lo, span.hi
                    ),
                ));
            }
        }
        out
    }
}
