//! The lint passes and the context they share.

use dorado_asm::{ControlOp, FfOp, Microword, PlacedProgram};
use dorado_base::MicroAddr;

use crate::cfg::Cfg;
use crate::diag::Diagnostic;
use crate::LintConfig;

pub mod branch_window;
pub mod dead_code;
pub mod ff_conflict;
pub mod hold;
pub mod stack_depth;
pub mod task_safety;
pub mod wasted_slot;

/// Everything a pass gets to look at.
pub struct PassCtx<'a> {
    /// The placed image.
    pub placed: &'a PlacedProgram,
    /// The control-flow graph over it.
    pub cfg: &'a Cfg,
    /// Root classification (emulator-task vs I/O-task entries).
    pub config: &'a LintConfig,
    /// Words reachable from emulator-task roots (dense, by raw address).
    pub emu_reach: &'a [bool],
    /// Words reachable from I/O-task roots.
    pub io_reach: &'a [bool],
}

impl PassCtx<'_> {
    /// Emulator-task root addresses.
    pub fn emu_roots(&self) -> Vec<MicroAddr> {
        self.config.emu_roots.iter().map(|&(_, a)| a).collect()
    }

    /// I/O-task root addresses.
    pub fn io_roots(&self) -> Vec<MicroAddr> {
        self.config.io_roots.iter().map(|&(_, a)| a).collect()
    }
}

/// One analysis pass.
pub trait Pass {
    /// The pass name used in diagnostics and `DORADO_ULINT_ALLOW`.
    fn name(&self) -> &'static str;
    /// Runs the pass and returns its findings.
    fn run(&self, ctx: &PassCtx<'_>) -> Vec<Diagnostic>;
}

/// All passes, in reporting order.
pub fn all_passes() -> Vec<Box<dyn Pass>> {
    vec![
        Box::new(ff_conflict::FfConflict),
        Box::new(hold::HoldHazard),
        Box::new(branch_window::BranchWindow),
        Box::new(stack_depth::StackDepth),
        Box::new(task_safety::TaskSafety),
        Box::new(dead_code::DeadCode),
        Box::new(wasted_slot::WastedSlotPass),
    ]
}

/// The FF field of `word` as the function the machine will execute, or
/// `None` when FF is claimed as a constant or a page number instead
/// (mirrors the decode rule in `dorado-core`).
pub fn ff_function(word: Microword) -> Option<FfOp> {
    let bsel = word.bsel().ok()?;
    let control = word.control().ok()?;
    if bsel.is_constant() || control.uses_ff_page() {
        return None;
    }
    FfOp::decode(word.ff()).ok()
}

/// Whether `word` is a conditional branch on a latched ALU flag
/// (ALU=0, ALU<0, Carry, Overflow, R odd) — the conditions that read
/// the *previous* instruction's branch-condition register.  The live
/// tests (CNT=0, IOAtten, StkErr) are excluded.
pub fn flag_branch(word: Microword) -> Option<dorado_asm::Cond> {
    use dorado_asm::Cond;
    match word.control() {
        Ok(ControlOp::CondGoto { cond, .. }) => match cond {
            Cond::Zero | Cond::Neg | Cond::Carry | Cond::Overflow | Cond::ROdd => Some(cond),
            Cond::CntZero | Cond::IoAtten | Cond::StackError => None,
        },
        _ => None,
    }
}

/// Whether `word` is an emulator stack operation (BLOCK set; on task 0
/// the RADDR field encodes a stack-pointer delta, §6.3.3).
pub fn is_stack_op(word: Microword) -> bool {
    word.block()
}
