//! Branch-window analysis (§3.1, §5.5): conditional branches on latched
//! ALU flags read the branch-condition register committed by the
//! *immediately preceding* instruction.  The NEXTPC scheme injects the
//! condition late, so the flags a branch tests are exactly those of its
//! dynamic predecessor — and two static patterns silently break that:
//!
//! * A placer-inserted **relay** between the flag-setting instruction
//!   and the branch.  Relays are synthesized cross-page escapes the
//!   programmer never wrote; like every executed word they run the ALU
//!   (an ADD of whatever A/B select) and commit fresh flags,
//!   clobbering the condition.  Error.
//! * A **call** immediately before the branch: the flags at the branch
//!   come from the callee's RETURN word, not from the instruction the
//!   programmer wrote before the call.  Warning (it can be intentional
//!   when the subroutine computes the condition).
//!
//! Live conditions (CNT=0, IOAtten, StkErr) are exempt — they read
//! machine state at branch time, not the latched flags.

use dorado_asm::ControlOp;

use crate::diag::{Diagnostic, Severity};

use super::{flag_branch, Pass, PassCtx};

/// Whether the `prev → node` edge is a call's *return continuation*
/// (LINK ← THISPC+1) rather than the edge into the callee itself.  Flags
/// at the callee entry come from the CALL word the programmer wrote;
/// only the continuation sees the callee's RETURN flags.
fn is_continuation(prev: &crate::cfg::Node, node: &crate::cfg::Node) -> bool {
    let continuation = dorado_base::MicroAddr::new(prev.addr.raw().wrapping_add(1));
    let callee = prev
        .word
        .control()
        .ok()
        .and_then(|c| c.static_next(prev.addr, prev.word.ff()));
    node.addr == continuation && Some(node.addr) != callee
}

/// The branch-window pass.
pub struct BranchWindow;

impl Pass for BranchWindow {
    fn name(&self) -> &'static str {
        "branch-window"
    }

    fn run(&self, ctx: &PassCtx<'_>) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        for node in ctx.cfg.iter() {
            let Some(cond) = flag_branch(node.word) else {
                continue;
            };
            for &p in &node.preds {
                let Some(prev) = ctx.cfg.node(p) else { continue };
                if prev.relay {
                    out.push(
                        Diagnostic::new(
                            self.name(),
                            Severity::Error,
                            node.addr,
                            format!(
                                "branch on {cond} tests flags clobbered by a placer relay at {p}"
                            ),
                        )
                        .note(
                            "the relay word runs the ALU and commits fresh flags; \
                             keep the flag-setting instruction and the branch on one page",
                        ),
                    );
                } else if prev.word.control().is_ok_and(ControlOp::is_call)
                    && is_continuation(prev, node)
                {
                    out.push(
                        Diagnostic::new(
                            self.name(),
                            Severity::Warning,
                            node.addr,
                            format!(
                                "branch on {cond} follows the call at {p}: the flags come from \
                                 the callee's RETURN word, not the caller"
                            ),
                        )
                        .note("intentional only if the subroutine's last instruction computes the condition"),
                    );
                }
            }
        }
        out
    }
}
