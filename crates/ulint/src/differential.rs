//! Differential validation of the static hazard model (EXPERIMENTS.md
//! E18): run the §4 workstation scenario — the Mesa emulator computing
//! fib(15) while the display refreshes, the disk streams a 2048-word
//! transfer and the network receives a packet — stepping the simulator
//! cycle by cycle, and map **every** dynamically observed event back to
//! a statically predicted site:
//!
//! * each Hold the machine raises must land on a [`hold_sites`] entry
//!   for that cause (the static model has no false negatives);
//! * each stack-error transition must land on a [`stack_sites`] entry.
//!
//! The outcome also reports how many predicted sites the workload
//! actually exercised — static prediction is intentionally a superset
//! (a site that *can* hold need not hold on one particular run).

use dorado_base::{BaseRegId, HoldCause, MicroAddr, TaskId, VirtAddr, Word};
use dorado_emu::layout::{
    BR_DISK, BR_DISPLAY, BR_NET, IOA_DISK, IOA_DISPLAY, IOA_NET, TASK_DISK, TASK_DISPLAY,
    TASK_EMU, TASK_NET,
};
use dorado_emu::mesa::{self, MesaAsm};
use dorado_emu::SuiteBuilder;
use dorado_io::{DiskController, DisplayController, NetworkController};

use crate::cfg::Cfg;
use crate::passes::hold::{hold_sites, HoldSites};
use crate::passes::stack_depth::stack_sites;
use crate::LintConfig;

/// What the differential run observed, per Hold cause.
#[derive(Debug, Clone, Copy, Default)]
pub struct CauseTally {
    /// Statically predicted sites for this cause.
    pub predicted: usize,
    /// Distinct predicted sites the workload exercised.
    pub exercised: usize,
    /// Held cycles observed.
    pub held_cycles: u64,
}

/// The outcome of one differential run.
#[derive(Debug, Clone, Default)]
pub struct DifferentialOutcome {
    /// Cycles simulated.
    pub cycles: u64,
    /// Final top-of-stack of the Mesa program (fib(15) = 610).
    pub tos: Word,
    /// Per-cause prediction/observation tallies, indexed by
    /// `HoldCause::index()`.
    pub causes: [CauseTally; HoldCause::COUNT],
    /// Observed holds at addresses the static model did *not* predict —
    /// must be empty (soundness).
    pub missed_holds: Vec<(HoldCause, MicroAddr)>,
    /// Stack-error transitions observed.
    pub stack_events: u64,
    /// Stack-error transitions at unpredicted addresses — must be empty.
    pub missed_stack: Vec<MicroAddr>,
    /// Statically predicted stack sites.
    pub stack_predicted: usize,
}

impl DifferentialOutcome {
    /// Whether the static model missed nothing the run observed.
    pub fn sound(&self) -> bool {
        self.missed_holds.is_empty() && self.missed_stack.is_empty()
    }
}

/// The §4 foreground program: naive recursive fib(15).
fn fib_program() -> Result<Vec<u8>, String> {
    let mut p = MesaAsm::new();
    p.lib(15);
    p.call("fib", 1);
    p.halt();
    p.label("fib");
    p.ll(0);
    p.lib(2);
    p.sub();
    p.sl(2);
    p.ll(0);
    p.jzb("base0");
    p.ll(0);
    p.lib(1);
    p.sub();
    p.jzb("base1");
    p.ll(0);
    p.lib(1);
    p.sub();
    p.call("fib", 1);
    p.ll(2);
    p.call("fib", 1);
    p.add();
    p.ret();
    p.label("base0");
    p.lib(0);
    p.ret();
    p.label("base1");
    p.lib(1);
    p.ret();
    p.assemble()
}

/// Runs the workstation workload for at most `max_cycles`, validating
/// every observed Hold and stack-error event against the static site
/// sets.
///
/// # Errors
///
/// Returns a message if the suite fails to assemble or the machine
/// fails to build (not if the model is unsound — that is reported in
/// the outcome so callers can render it).
pub fn run_workstation(max_cycles: u64) -> Result<DifferentialOutcome, String> {
    let program = fib_program()?;

    let mut display = DisplayController::with_rate(TASK_DISPLAY, 256.0, 60.0);
    display.start();
    let mut disk = DiskController::new(TASK_DISK);
    for (i, w) in disk.platter_mut().iter_mut().take(2048).enumerate() {
        *w = i as Word;
    }
    disk.start_read(2048);
    let mut net = NetworkController::new(TASK_NET);
    net.inject_packet((1..=48).map(|x| x * 3).collect());

    let suite = SuiteBuilder::new()
        .with_mesa()
        .with_display()
        .with_disk()
        .with_network()
        .assemble()
        .map_err(|e| format!("suite: {e}"))?;

    // The static model, over the same image the machine will run.
    let cfg = Cfg::build(suite.placed());
    let sites: HoldSites = hold_sites(&cfg);
    let config = LintConfig::infer(suite.placed());
    let emu: Vec<MicroAddr> = config.emu_roots.iter().map(|&(_, a)| a).collect();
    let emu_reach = cfg.reach(&emu);
    let stack = stack_sites(&cfg, &emu_reach);

    let mut m = suite
        .machine()
        .task_entry(TASK_EMU, "mesa:boot")
        .device(Box::new(display), IOA_DISPLAY, 2)
        .wire_ioaddress(TASK_DISPLAY, IOA_DISPLAY)
        .task_entry(TASK_DISPLAY, "disp:init")
        .device(Box::new(disk), IOA_DISK, 2)
        .wire_ioaddress(TASK_DISK, IOA_DISK)
        .task_entry(TASK_DISK, "disk:init")
        .device(Box::new(net), IOA_NET, 3)
        .wire_ioaddress(TASK_NET, IOA_NET)
        .task_entry(TASK_NET, "net:init")
        .build()
        .map_err(|e| format!("machine: {e}"))?;
    mesa::configure_ifu(&mut m);
    mesa::init_runtime(&mut m);
    mesa::load_program(&mut m, &program);
    m.memory_mut().set_base_reg(BaseRegId::new(BR_DISPLAY), 0x2000);
    m.memory_mut().set_base_reg(BaseRegId::new(BR_DISK), 0x3000);
    m.memory_mut().set_base_reg(BaseRegId::new(BR_NET), 0x3800);
    for i in 0..0x1000u32 {
        m.memory_mut()
            .write_virt(VirtAddr::new(0x2000 + i), (i as Word).wrapping_mul(3));
    }

    let mut out = observe(&mut m, &sites, &stack, max_cycles);
    out.tos = mesa::tos(&m);
    Ok(out)
}

/// Runs a deliberate stack underflow (DROP on an empty operand stack)
/// so the stack-error direction of the validation is exercised, not
/// vacuous: the transition must land on a predicted stack site.
pub fn run_stack_underflow(max_cycles: u64) -> Result<DifferentialOutcome, String> {
    let mut p = MesaAsm::new();
    p.drop_top();
    p.halt();
    let program = p.assemble()?;
    let suite = SuiteBuilder::new()
        .with_mesa()
        .assemble()
        .map_err(|e| format!("suite: {e}"))?;
    let cfg = Cfg::build(suite.placed());
    let sites = hold_sites(&cfg);
    let config = LintConfig::infer(suite.placed());
    let emu: Vec<MicroAddr> = config.emu_roots.iter().map(|&(_, a)| a).collect();
    let stack = stack_sites(&cfg, &cfg.reach(&emu));
    let mut m = suite
        .machine()
        .task_entry(TASK_EMU, "mesa:boot")
        .build()
        .map_err(|e| format!("machine: {e}"))?;
    mesa::configure_ifu(&mut m);
    mesa::init_runtime(&mut m);
    mesa::load_program(&mut m, &program);
    let mut out = observe(&mut m, &sites, &stack, max_cycles);
    out.tos = mesa::tos(&m);
    Ok(out)
}

/// Steps `m` for at most `max_cycles`, mapping every Hold and
/// stack-error event back to the static site sets.
fn observe(
    m: &mut dorado_core::Dorado,
    sites: &HoldSites,
    stack: &[MicroAddr],
    max_cycles: u64,
) -> DifferentialOutcome {
    let mut out = DifferentialOutcome {
        stack_predicted: stack.len(),
        ..DifferentialOutcome::default()
    };
    for (cause, tally) in HoldCause::ALL.iter().zip(out.causes.iter_mut()) {
        tally.predicted = sites.by_cause[cause.index()].len();
    }
    let mut exercised: [Vec<MicroAddr>; HoldCause::COUNT] = Default::default();
    let mut missed: Vec<(HoldCause, MicroAddr)> = Vec::new();
    let mut prev_stack_error = m.datapath().stack_error;
    for _ in 0..max_cycles {
        let ev = m.step();
        out.cycles = ev.cycle + 1;
        if let Some(cause) = ev.held {
            out.causes[cause.index()].held_cycles += 1;
            if sites.predicts(cause, ev.addr) {
                if !exercised[cause.index()].contains(&ev.addr) {
                    exercised[cause.index()].push(ev.addr);
                }
            } else if !missed.contains(&(cause, ev.addr)) {
                missed.push((cause, ev.addr));
            }
        }
        let stack_error = m.datapath().stack_error;
        if stack_error && !prev_stack_error {
            out.stack_events += 1;
            // The tripping word executed on the emulator task this cycle.
            if ev.task == TaskId::EMULATOR
                && !stack.contains(&ev.addr)
                && !out.missed_stack.contains(&ev.addr)
            {
                out.missed_stack.push(ev.addr);
            }
        }
        prev_stack_error = stack_error;
        if ev.halted {
            break;
        }
    }
    for (tally, ex) in out.causes.iter_mut().zip(exercised.iter()) {
        tally.exercised = ex.len();
    }
    out.missed_holds = missed;
    out
}

/// Renders the E18 table.
pub fn render_table(out: &DifferentialOutcome) -> String {
    let mut s = String::new();
    s.push_str("cause         predicted  exercised  held-cycles  missed\n");
    let mut missed_by: [usize; HoldCause::COUNT] = [0; HoldCause::COUNT];
    for &(cause, _) in &out.missed_holds {
        missed_by[cause.index()] += 1;
    }
    for cause in HoldCause::ALL {
        let t = &out.causes[cause.index()];
        s.push_str(&format!(
            "{:<13} {:>9}  {:>9}  {:>11}  {:>6}\n",
            cause.name(),
            t.predicted,
            t.exercised,
            t.held_cycles,
            missed_by[cause.index()],
        ));
    }
    s.push_str(&format!(
        "stack-error   {:>9}  {:>9}  {:>11}  {:>6}\n",
        out.stack_predicted,
        "-",
        out.stack_events,
        out.missed_stack.len(),
    ));
    s
}
