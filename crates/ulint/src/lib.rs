#![forbid(unsafe_code)]
//! `dorado-ulint`: a static analyzer for Dorado microcode.
//!
//! The Dorado paper's hazards — Hold stalls (§3.2), the late branch
//! window (§3.1), the 64-word emulator stack (§6.3.3), the overloaded
//! FF field (§5.5) and the shared small registers across tasks (§6.2)
//! — are all *timing* properties the assembler cannot check word by
//! word.  This crate checks them statically: it builds a control-flow
//! graph over a placed microstore image ([`Cfg`]), runs a small
//! abstract-interpretation framework over it ([`analysis`]), and
//! reports findings as clippy-style diagnostics anchored to microstore
//! addresses ([`Diagnostic`]).
//!
//! The pass set ([`passes::all_passes`]):
//!
//! | pass | finds |
//! |------|-------|
//! | `ff-conflict` | structural placement violations plus decode-level FF double-claims |
//! | `hold-hazard` | definite/possible Hold sites, bypassed RAW pairs, fetch-less MEMDATA reads |
//! | `branch-window` | latched-flag branches whose flags a relay or callee clobbers |
//! | `stack-depth` | unbounded or >64-word emulator stack excursions |
//! | `task-safety` | shared COUNT/Q/SHIFTCTL/STACKPTR values live across task switches |
//! | `dead-code` | unreachable words and never-taken CNT=0 branch arms |
//! | `wasted-slot` | branch-window relays and hold-shadow no-ops (informational census) |
//!
//! The hold and stack site sets mirror the simulator's own checks, so
//! they are *validated differentially*: running a workload and mapping
//! every observed Hold or stack-error event back to a predicted site
//! must never miss (EXPERIMENTS.md E18).
//!
//! # Examples
//!
//! ```
//! use dorado_asm::{Assembler, Inst};
//!
//! let mut a = Assembler::new();
//! a.label("boot");
//! a.emit(Inst::new().goto_("boot"));
//! let placed = a.place().unwrap();
//! let report = dorado_ulint::lint(&placed);
//! assert_eq!(report.errors(), 0);
//! ```

pub mod analysis;
pub mod bytecode;
pub mod cfg;
pub mod diag;
pub mod differential;
pub mod passes;

use std::time::Duration;

use dorado_asm::PlacedProgram;
use dorado_base::MicroAddr;

pub use cfg::Cfg;
pub use diag::{Diagnostic, Severity};
pub use passes::dead_code::{cnt_dead_arms, CntArm, CntArmFact};
pub use passes::hold::{fetch_started, hold_sites, HoldSites};
pub use passes::stack_depth::stack_sites;
pub use passes::wasted_slot::{wasted_slots, WasteKind, WastedSlot};
pub use passes::{all_passes, Pass, PassCtx};

/// Label prefixes that mark I/O-task microcode entries; all other
/// labels are emulator-task code (the label conventions are set by the
/// device modules in `dorado-emu`).
pub const IO_PREFIXES: &[&str] = &[
    "disk:", "diskw:", "disp:", "disp3:", "dispw:", "synthf:", "synths:", "net:", "eserv:",
    "clic:", "clid:", "kbd:", "mouse:",
];

/// Which labelled entries belong to which task class.
#[derive(Debug, Clone, Default)]
pub struct LintConfig {
    /// Emulator-task entry labels and addresses.
    pub emu_roots: Vec<(String, MicroAddr)>,
    /// I/O-task entry labels and addresses.
    pub io_roots: Vec<(String, MicroAddr)>,
}

impl LintConfig {
    /// Classifies every label in `placed` by the [`IO_PREFIXES`]
    /// convention.
    pub fn infer(placed: &PlacedProgram) -> Self {
        let mut config = LintConfig::default();
        for (label, addr) in placed.labels() {
            let dest = if IO_PREFIXES.iter().any(|p| label.starts_with(p)) {
                &mut config.io_roots
            } else {
                &mut config.emu_roots
            };
            dest.push((label.to_string(), addr));
        }
        config.emu_roots.sort();
        config.io_roots.sort();
        config
    }
}

/// The result of linting one placed image.
#[derive(Debug, Default)]
pub struct LintReport {
    /// Every finding, in pass order then address order.
    pub diags: Vec<Diagnostic>,
    /// Wall-clock time spent in each pass.
    pub timings: Vec<(&'static str, Duration)>,
}

impl LintReport {
    /// Number of error-severity findings.
    pub fn errors(&self) -> usize {
        self.count(Severity::Error)
    }

    /// Number of warning-severity findings.
    pub fn warnings(&self) -> usize {
        self.count(Severity::Warning)
    }

    /// Number of findings at `severity`.
    pub fn count(&self, severity: Severity) -> usize {
        self.diags.iter().filter(|d| d.severity == severity).count()
    }

    /// The findings from one pass.
    pub fn by_pass<'a>(&'a self, pass: &'a str) -> impl Iterator<Item = &'a Diagnostic> {
        self.diags.iter().filter(move |d| d.pass == pass)
    }
}

/// The analyzer's computed facts over one placed image, packaged as a
/// reusable query API: the CFG, per-task reachability, hold sites, dead
/// CNT branch arms, and the wasted-slot census.  This is what a
/// *transformation* layer (`dorado-uopt`) consumes as its dependence and
/// safety oracle; the diagnostic pipeline ([`lint`]) is a thin rendering
/// of the same facts.
#[derive(Debug)]
pub struct Analyses {
    /// The root classification the facts were computed under.
    pub config: LintConfig,
    /// The control-flow graph over the placed image.
    pub cfg: Cfg,
    /// Words reachable from emulator-task roots (dense, by raw address).
    pub emu_reach: Vec<bool>,
    /// Words reachable from I/O-task roots.
    pub io_reach: Vec<bool>,
    /// Statically predicted Hold sites, per cause.
    pub hold: HoldSites,
    /// Per-word input of the "a fetch may have started" analysis
    /// (dense, by raw address): `true` iff some root-to-word path
    /// starts a fetch before the word executes.
    pub fetch_started: Vec<bool>,
    /// CNT=0 branches with a proven-dead arm.
    pub cnt_arms: Vec<CntArmFact>,
    /// The wasted-slot census (relays, hold-shadow no-ops).
    pub wasted: Vec<WastedSlot>,
}

impl Analyses {
    /// A [`PassCtx`] over these facts, for running individual passes or
    /// the fact queries (`cnt_dead_arms`, `wasted_slots`) without
    /// recomputing the CFG and reachability.
    pub fn ctx<'a>(&'a self, placed: &'a PlacedProgram) -> PassCtx<'a> {
        PassCtx {
            placed,
            cfg: &self.cfg,
            config: &self.config,
            emu_reach: &self.emu_reach,
            io_reach: &self.io_reach,
        }
    }
}

/// Analyzes `placed` with roots inferred from its labels.
pub fn analyze(placed: &PlacedProgram) -> Analyses {
    analyze_with_config(placed, LintConfig::infer(placed))
}

/// Analyzes `placed` under an explicit root classification.
pub fn analyze_with_config(placed: &PlacedProgram, config: LintConfig) -> Analyses {
    let cfg = Cfg::build(placed);
    let emu: Vec<MicroAddr> = config.emu_roots.iter().map(|&(_, a)| a).collect();
    let io: Vec<MicroAddr> = config.io_roots.iter().map(|&(_, a)| a).collect();
    let emu_reach = cfg.reach(&emu);
    let io_reach = cfg.reach(&io);
    let all_roots: Vec<MicroAddr> = emu.iter().chain(io.iter()).copied().collect();
    let fetch_started = passes::hold::fetch_started(&cfg, &all_roots);
    let (hold, cnt_arms, wasted) = {
        let ctx = PassCtx {
            placed,
            cfg: &cfg,
            config: &config,
            emu_reach: &emu_reach,
            io_reach: &io_reach,
        };
        (
            hold_sites(ctx.cfg),
            cnt_dead_arms(&ctx),
            wasted_slots(&ctx),
        )
    };
    Analyses {
        config,
        cfg,
        emu_reach,
        io_reach,
        hold,
        fetch_started,
        cnt_arms,
        wasted,
    }
}

/// Lints `placed` with roots inferred from its labels.
pub fn lint(placed: &PlacedProgram) -> LintReport {
    lint_with_config(placed, &LintConfig::infer(placed))
}

/// Lints `placed` with an explicit root classification: runs [`analyze`]
/// once and renders every pass's findings over the shared facts.
pub fn lint_with_config(placed: &PlacedProgram, config: &LintConfig) -> LintReport {
    let analyses = analyze_with_config(placed, config.clone());
    let ctx = analyses.ctx(placed);
    let mut report = LintReport::default();
    for pass in all_passes() {
        let start = std::time::Instant::now();
        report.diags.extend(pass.run(&ctx));
        report.timings.push((pass.name(), start.elapsed()));
    }
    report
}
