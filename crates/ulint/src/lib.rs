#![forbid(unsafe_code)]
//! `dorado-ulint`: a static analyzer for Dorado microcode.
//!
//! The Dorado paper's hazards — Hold stalls (§3.2), the late branch
//! window (§3.1), the 64-word emulator stack (§6.3.3), the overloaded
//! FF field (§5.5) and the shared small registers across tasks (§6.2)
//! — are all *timing* properties the assembler cannot check word by
//! word.  This crate checks them statically: it builds a control-flow
//! graph over a placed microstore image ([`Cfg`]), runs a small
//! abstract-interpretation framework over it ([`analysis`]), and
//! reports findings as clippy-style diagnostics anchored to microstore
//! addresses ([`Diagnostic`]).
//!
//! The pass set ([`passes::all_passes`]):
//!
//! | pass | finds |
//! |------|-------|
//! | `ff-conflict` | structural placement violations plus decode-level FF double-claims |
//! | `hold-hazard` | definite/possible Hold sites, bypassed RAW pairs, fetch-less MEMDATA reads |
//! | `branch-window` | latched-flag branches whose flags a relay or callee clobbers |
//! | `stack-depth` | unbounded or >64-word emulator stack excursions |
//! | `task-safety` | shared COUNT/Q/SHIFTCTL/STACKPTR values live across task switches |
//! | `dead-code` | unreachable words and never-taken CNT=0 branch arms |
//!
//! The hold and stack site sets mirror the simulator's own checks, so
//! they are *validated differentially*: running a workload and mapping
//! every observed Hold or stack-error event back to a predicted site
//! must never miss (EXPERIMENTS.md E18).
//!
//! # Examples
//!
//! ```
//! use dorado_asm::{Assembler, Inst};
//!
//! let mut a = Assembler::new();
//! a.label("boot");
//! a.emit(Inst::new().goto_("boot"));
//! let placed = a.place().unwrap();
//! let report = dorado_ulint::lint(&placed);
//! assert_eq!(report.errors(), 0);
//! ```

pub mod analysis;
pub mod bytecode;
pub mod cfg;
pub mod diag;
pub mod differential;
pub mod passes;

use std::time::Duration;

use dorado_asm::PlacedProgram;
use dorado_base::MicroAddr;

pub use cfg::Cfg;
pub use diag::{Diagnostic, Severity};
pub use passes::hold::{hold_sites, HoldSites};
pub use passes::stack_depth::stack_sites;
pub use passes::{all_passes, Pass, PassCtx};

/// Label prefixes that mark I/O-task microcode entries; all other
/// labels are emulator-task code (the label conventions are set by the
/// device modules in `dorado-emu`).
pub const IO_PREFIXES: &[&str] = &[
    "disk:", "diskw:", "disp:", "disp3:", "dispw:", "synthf:", "synths:", "net:", "eserv:",
    "clic:", "clid:", "kbd:", "mouse:",
];

/// Which labelled entries belong to which task class.
#[derive(Debug, Clone, Default)]
pub struct LintConfig {
    /// Emulator-task entry labels and addresses.
    pub emu_roots: Vec<(String, MicroAddr)>,
    /// I/O-task entry labels and addresses.
    pub io_roots: Vec<(String, MicroAddr)>,
}

impl LintConfig {
    /// Classifies every label in `placed` by the [`IO_PREFIXES`]
    /// convention.
    pub fn infer(placed: &PlacedProgram) -> Self {
        let mut config = LintConfig::default();
        for (label, addr) in placed.labels() {
            let dest = if IO_PREFIXES.iter().any(|p| label.starts_with(p)) {
                &mut config.io_roots
            } else {
                &mut config.emu_roots
            };
            dest.push((label.to_string(), addr));
        }
        config.emu_roots.sort();
        config.io_roots.sort();
        config
    }
}

/// The result of linting one placed image.
#[derive(Debug, Default)]
pub struct LintReport {
    /// Every finding, in pass order then address order.
    pub diags: Vec<Diagnostic>,
    /// Wall-clock time spent in each pass.
    pub timings: Vec<(&'static str, Duration)>,
}

impl LintReport {
    /// Number of error-severity findings.
    pub fn errors(&self) -> usize {
        self.count(Severity::Error)
    }

    /// Number of warning-severity findings.
    pub fn warnings(&self) -> usize {
        self.count(Severity::Warning)
    }

    /// Number of findings at `severity`.
    pub fn count(&self, severity: Severity) -> usize {
        self.diags.iter().filter(|d| d.severity == severity).count()
    }

    /// The findings from one pass.
    pub fn by_pass<'a>(&'a self, pass: &'a str) -> impl Iterator<Item = &'a Diagnostic> {
        self.diags.iter().filter(move |d| d.pass == pass)
    }
}

/// Lints `placed` with roots inferred from its labels.
pub fn lint(placed: &PlacedProgram) -> LintReport {
    lint_with_config(placed, &LintConfig::infer(placed))
}

/// Lints `placed` with an explicit root classification.
pub fn lint_with_config(placed: &PlacedProgram, config: &LintConfig) -> LintReport {
    let cfg = Cfg::build(placed);
    let emu: Vec<MicroAddr> = config.emu_roots.iter().map(|&(_, a)| a).collect();
    let io: Vec<MicroAddr> = config.io_roots.iter().map(|&(_, a)| a).collect();
    let emu_reach = cfg.reach(&emu);
    let io_reach = cfg.reach(&io);
    let ctx = PassCtx {
        placed,
        cfg: &cfg,
        config,
        emu_reach: &emu_reach,
        io_reach: &io_reach,
    };
    let mut report = LintReport::default();
    for pass in all_passes() {
        let start = std::time::Instant::now();
        report.diags.extend(pass.run(&ctx));
        report.timings.push((pass.name(), start.elapsed()));
    }
    report
}
