//! `ulint` — lint Dorado microcode suites, clippy-style.
//!
//! ```sh
//! ulint                      # lint every generator suite + the union image
//! ulint mesa cluster         # lint selected suites
//! ulint --differential       # also run the E18 dynamic validation
//! ulint --lang prog.dl       # lint a surface-language program's bytecode
//! ulint --verbose            # show info-level findings too
//! ```
//!
//! Exit status is 1 if any error- or warning-severity finding is
//! produced by a pass not named in the `DORADO_ULINT_ALLOW`
//! environment variable (comma-separated pass names) — `-D warnings`
//! strictness with an explicit escape hatch.

use std::process::ExitCode;

use dorado_emu::SuiteBuilder;
use dorado_ulint::{differential, lint, Severity};

/// The lintable suites, in reporting order.
const SUITES: &[&str] = &[
    "mesa",
    "smalltalk",
    "lisp",
    "bcpl",
    "bitblt",
    "cluster",
    "devices",
    "scenario",
    "everything",
];

fn build(name: &str) -> Result<SuiteBuilder, String> {
    Ok(match name {
        "mesa" => SuiteBuilder::new().with_mesa(),
        "smalltalk" => SuiteBuilder::new().with_smalltalk(),
        "lisp" => SuiteBuilder::new().with_lisp(),
        "bcpl" => SuiteBuilder::new().with_bcpl(),
        "bitblt" => SuiteBuilder::new().with_mesa().with_bitblt(),
        "cluster" => SuiteBuilder::new().with_mesa().with_cluster(),
        "devices" => SuiteBuilder::new()
            .with_mesa()
            .with_disk()
            .with_display()
            .with_network(),
        "scenario" => SuiteBuilder::new().with_scenario().with_bitblt(),
        "everything" => SuiteBuilder::everything(),
        other => return Err(format!("unknown suite `{other}` (expected one of {SUITES:?})")),
    })
}

fn lint_lang(path: &str, verbose: bool) -> Result<(usize, usize), String> {
    let src = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let (bytes, map) =
        dorado_lang::compile_with_map(&src).map_err(|e| format!("{path}: {e}"))?;
    let diags = dorado_ulint::bytecode::lint_bytecode(&bytes);
    let mut errors = 0;
    let mut warnings = 0;
    for d in &diags {
        match d.severity {
            Severity::Error => errors += 1,
            Severity::Warning => warnings += 1,
            Severity::Info if !verbose => continue,
            Severity::Info => {}
        }
        print!("{}", dorado_ulint::bytecode::render_with_source(d, &src, &map));
    }
    println!(
        "{path}: {} bytecode bytes, {} finding(s) ({errors} error(s), {warnings} warning(s))",
        bytes.len(),
        diags.len()
    );
    Ok((errors, warnings))
}

fn main() -> ExitCode {
    let mut suites: Vec<String> = Vec::new();
    let mut verbose = false;
    let mut run_differential = false;
    let mut lang: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--verbose" | "-v" => verbose = true,
            "--differential" => run_differential = true,
            "--lang" => match args.next() {
                Some(p) => lang = Some(p),
                None => {
                    eprintln!("--lang needs a file argument");
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                println!(
                    "usage: ulint [--verbose] [--differential] [--lang FILE] [SUITE...]\n\
                     suites: {SUITES:?} (default: all)"
                );
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => {
                eprintln!("unknown flag `{other}`");
                return ExitCode::FAILURE;
            }
            other => suites.push(other.to_string()),
        }
    }
    let allowed: Vec<String> = std::env::var("DORADO_ULINT_ALLOW")
        .unwrap_or_default()
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(str::to_string)
        .collect();
    if !allowed.is_empty() {
        println!("allowed passes (DORADO_ULINT_ALLOW): {}", allowed.join(", "));
    }
    if suites.is_empty() && lang.is_none() {
        suites = SUITES.iter().map(|s| s.to_string()).collect();
    }

    let mut strict_findings = 0usize;
    if let Some(path) = &lang {
        match lint_lang(path, verbose) {
            Ok((errors, warnings)) => strict_findings += errors + warnings,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    for name in &suites {
        let suite = match build(name).map(SuiteBuilder::assemble) {
            Ok(Ok(s)) => s,
            Ok(Err(e)) => {
                eprintln!("{name}: assembly failed: {e}");
                return ExitCode::FAILURE;
            }
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        };
        let placed = suite.placed();
        let report = lint(placed);
        let mut errors = 0;
        let mut warnings = 0;
        for d in &report.diags {
            let strict = !allowed.iter().any(|a| a == d.pass);
            match d.severity {
                Severity::Error => {
                    errors += 1;
                    if strict {
                        strict_findings += 1;
                    }
                }
                Severity::Warning => {
                    warnings += 1;
                    if strict {
                        strict_findings += 1;
                    }
                }
                Severity::Info if !verbose => continue,
                Severity::Info => {}
            }
            println!("{}", d.render(placed));
        }
        let timing: Vec<String> = report
            .timings
            .iter()
            .map(|(pass, t)| format!("{pass} {:.1}ms", t.as_secs_f64() * 1e3))
            .collect();
        println!(
            "{name}: {} words, {} finding(s) ({errors} error(s), {warnings} warning(s), \
             {} info) [{}]",
            placed.words_used(),
            report.diags.len(),
            report.count(Severity::Info),
            timing.join(", ")
        );
    }

    if run_differential {
        match differential::run_workstation(2_000_000) {
            Ok(out) => {
                println!(
                    "\ndifferential (E18): {} cycles, fib(15) = {} (expected 610)",
                    out.cycles, out.tos
                );
                print!("{}", differential::render_table(&out));
                if out.sound() {
                    println!("static model is sound: every observed event was predicted");
                } else {
                    eprintln!(
                        "UNSOUND: {} hold(s) and {} stack event(s) were not predicted",
                        out.missed_holds.len(),
                        out.missed_stack.len()
                    );
                    strict_findings += 1;
                }
            }
            Err(e) => {
                eprintln!("differential: {e}");
                return ExitCode::FAILURE;
            }
        }
        match differential::run_stack_underflow(100_000) {
            Ok(out) if out.stack_events > 0 && out.sound() => {
                println!(
                    "stack-error probe: {} event(s), all on predicted sites",
                    out.stack_events
                );
            }
            Ok(out) => {
                eprintln!(
                    "stack-error probe failed: {} event(s), {} unpredicted",
                    out.stack_events,
                    out.missed_stack.len()
                );
                strict_findings += 1;
            }
            Err(e) => {
                eprintln!("differential: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    if strict_findings > 0 {
        eprintln!("ulint: {strict_findings} finding(s) at -D warnings strictness");
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
