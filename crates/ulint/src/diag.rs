//! Diagnostics: what a lint pass reports and how it renders.
//!
//! Every finding carries the microstore address it is anchored at, the
//! pass that produced it, and a severity.  Rendering is clippy-style:
//! a headline, the disassembled word it points at, and indented notes.

use dorado_asm::disasm::disassemble;
use dorado_asm::PlacedProgram;
use dorado_base::MicroAddr;

/// How serious a finding is.
///
/// * [`Severity::Error`] — the microcode is wrong: it will misbehave on
///   the machine (or already trips a structural invariant).
/// * [`Severity::Warning`] — suspicious; legal encodings that are
///   almost always mistakes.  CI treats these as fatal unless a pass is
///   named in `DORADO_ULINT_ALLOW`.
/// * [`Severity::Info`] — informational sites (hold sites, bypassed
///   hazards, stack excursions) used by the differential validator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Informational; never fails CI.
    Info,
    /// Suspicious; fails CI unless allowed.
    Warning,
    /// Definitely wrong; fails CI.
    Error,
}

impl Severity {
    /// The lowercase rendering prefix (`error`, `warning`, `info`).
    pub fn name(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
            Severity::Info => "info",
        }
    }
}

/// One finding from one pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// The pass that produced this finding (e.g. `hold-hazard`).
    pub pass: &'static str,
    /// How serious it is.
    pub severity: Severity,
    /// The microstore word the finding is anchored at.
    pub at: MicroAddr,
    /// The headline message.
    pub message: String,
    /// Secondary context lines.
    pub notes: Vec<String>,
}

impl Diagnostic {
    /// A new diagnostic with no notes.
    pub fn new(
        pass: &'static str,
        severity: Severity,
        at: MicroAddr,
        message: impl Into<String>,
    ) -> Self {
        Diagnostic {
            pass,
            severity,
            at,
            message: message.into(),
            notes: Vec::new(),
        }
    }

    /// Appends a note line.
    #[must_use]
    pub fn note(mut self, note: impl Into<String>) -> Self {
        self.notes.push(note.into());
        self
    }

    /// The clippy-style multi-line rendering:
    ///
    /// ```text
    /// error[branch-window]: branch tests flags clobbered by a relay
    ///   --> 012.03: T← RM[5] + B, goto .04
    ///    = note: relay inserted by the placer at 012.02
    /// ```
    pub fn render(&self, placed: &PlacedProgram) -> String {
        let mut out = format!(
            "{}[{}]: {}\n  --> {}",
            self.severity.name(),
            self.pass,
            self.message,
            disassemble(self.at, placed.word(self.at)),
        );
        for n in &self.notes {
            out.push_str("\n   = note: ");
            out.push_str(n);
        }
        out
    }

    /// A compact one-line form for microstore-listing annotations.
    pub fn render_line(&self) -> String {
        format!("{}[{}]: {}", self.severity.name(), self.pass, self.message)
    }
}
