//! A minimal, dependency-free timing harness for the `benches/` binaries.
//!
//! The workspace builds hermetically offline, so the benches are plain
//! `fn main()` binaries (`harness = false`) timed with [`std::time::Instant`]
//! instead of an external benchmark crate.  Each measurement does one
//! warm-up call, then samples the closure until either `SAMPLES` runs or
//! the time budget is spent, and prints min/median/mean wall times.

use std::time::{Duration, Instant};

/// Samples collected per measurement (upper bound; see [`BUDGET`]).
pub const SAMPLES: usize = 10;

/// Wall-clock budget per measurement.
pub const BUDGET: Duration = Duration::from_secs(3);

/// Times `f`, printing `name: min …, median …, mean … (n samples)`.
///
/// The closure's result is passed through [`std::hint::black_box`] so the
/// optimizer cannot delete the work.
pub fn bench<T>(name: &str, mut f: impl FnMut() -> T) {
    let _ = std::hint::black_box(f()); // warm-up (fills caches, JITs nothing)
    let start = Instant::now();
    let mut samples: Vec<Duration> = Vec::with_capacity(SAMPLES);
    while samples.len() < SAMPLES && (samples.is_empty() || start.elapsed() < BUDGET) {
        let t0 = Instant::now();
        let _ = std::hint::black_box(f());
        samples.push(t0.elapsed());
    }
    samples.sort();
    let n = samples.len();
    let min = samples[0];
    let median = samples[n / 2];
    let mean = samples.iter().sum::<Duration>() / n as u32;
    println!(
        "bench {name}: min {}, median {}, mean {} ({n} samples)",
        fmt(min),
        fmt(median),
        fmt(mean)
    );
}

fn fmt(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        // Just exercise the path; timing itself is not asserted.
        bench("noop", || 1 + 1);
    }

    #[test]
    fn durations_format_in_sane_units() {
        assert_eq!(fmt(Duration::from_nanos(12)), "12 ns");
        assert_eq!(fmt(Duration::from_micros(12)), "12.000 µs");
        assert_eq!(fmt(Duration::from_millis(12)), "12.000 ms");
        assert_eq!(fmt(Duration::from_secs(12)), "12.000 s");
    }
}
