//! Prints the paper-vs-measured table for every experiment, in markdown.
//!
//! ```sh
//! cargo run --release -p dorado-bench --bin report
//! ```

use dorado_bench as h;
use dorado_core::TaskingMode;
use dorado_emu::bitblt::BlitKind;

fn main() {
    println!("# Experiment report: paper vs. measured\n");
    println!("Machine: 60 ns multiwire clock, 4 KW 2-way cache, 8-cycle storage RAMs.\n");

    // --- E1 -------------------------------------------------------------
    println!("## E1 — microinstructions per macroinstruction (§7)\n");
    println!("| Opcode class | Paper (Mesa) | Measured (Mesa) | Paper (Lisp) | Measured (Lisp) | Measured (BCPL) |");
    println!("|---|---|---|---|---|---|");
    let mesa_load = h::mesa_cost(|p| p.ll(0), 64);
    let lisp_load = h::lisp_cost(|p| p.lget(0), 64);
    let bcpl_load = h::bcpl_cost(|p| p.lv(0), 64);
    println!("| load | 1–2 | {mesa_load:.1} | ≈5 | {lisp_load:.1} | {bcpl_load:.1} |");
    let mesa_store = h::mesa_cost(
        |p| {
            p.lib(1);
            p.sl(0);
        },
        64,
    ) - 1.0;
    let lisp_store = h::lisp_cost(
        |p| {
            p.push_fix(1);
            p.lset(0);
        },
        64,
    ) - 3.0;
    let bcpl_store = h::bcpl_cost(
        |p| {
            p.lit(1);
            p.sv(0);
        },
        64,
    ) - 1.0;
    println!("| store | 1–2 | {mesa_store:.1} | ≈5 | {lisp_store:.1} | {bcpl_store:.1} |");
    let mesa_field = h::mesa_cost(
        |p| {
            p.liw(0x100);
            p.rf(4, 8);
            p.drop_top();
        },
        32,
    ) - 2.0;
    println!("| read field | 5–10 | {mesa_field:.1} | 10–20 | n/a (CAR below) | — |");
    let lisp_car = h::lisp_cost(
        |p| {
            p.push_fix(5);
            p.push_fix(7);
            p.cons();
            p.car();
        },
        16,
    );
    println!("| cons+car | — | — | 10–20 each | {:.1} (pair) | — |", lisp_car);
    let mesa_call = h::mesa_call_cycles();
    let lisp_call = h::lisp_call_cycles();
    let bcpl_call = h::bcpl_call_cycles();
    println!("| call+return (cycles) | ≈50 | {mesa_call:.0} | ≈200 | {lisp_call:.0} | {bcpl_call:.0} |");
    println!();

    // --- E2 -------------------------------------------------------------
    println!("## E2 — BitBlt bandwidth (§7)\n");
    println!("| Operation | Paper | Measured |");
    println!("|---|---|---|");
    println!("| erase (fill) | ≥ simple class | {:.1} Mbit/s |", h::bitblt_mbps(BlitKind::Fill, 0));
    println!("| scroll (shifted copy) | 34 Mbit/s | {:.1} Mbit/s |", h::bitblt_mbps(BlitKind::ShiftedCopy, 5));
    println!("| aligned copy | ≈34 Mbit/s class | {:.1} Mbit/s |", h::bitblt_mbps(BlitKind::Copy, 0));
    println!("| src⊕dst∧filter (merge) | 24 Mbit/s | {:.1} Mbit/s |", h::bitblt_mbps(BlitKind::Merge, 5));
    println!();

    // --- E3 -------------------------------------------------------------
    println!("## E3 — slow-I/O processor share vs device rate (§7)\n");
    println!("| Device rate | Paper | Measured share |");
    println!("|---|---|---|");
    for mbps in [5.0, 10.0, 20.0, 40.0, 80.0] {
        let share = h::slow_io_share(mbps) * 100.0;
        let paper = if (mbps - 10.0).abs() < 0.1 { "5%" } else { "∝ rate" };
        println!("| {mbps:.0} Mbit/s | {paper} | {share:.1}% |");
    }
    println!();

    // --- E4/E5 ----------------------------------------------------------
    println!("## E4/E5 — fast I/O at full storage bandwidth (§6.2.1, §7)\n");
    let g2 = h::fastio_share(TaskingMode::OnDemand) * 100.0;
    let g3 = h::fastio_share(TaskingMode::NotifyGrain3) * 100.0;
    let mbps = h::fastio_mbps();
    println!("| Quantity | Paper | Measured |");
    println!("|---|---|---|");
    println!("| delivered bandwidth | 530 Mbit/s | {mbps:.0} Mbit/s |");
    println!("| processor share, 2-cycle grain | 25% | {g2:.1}% |");
    println!("| processor share, 3-cycle notify design | 37.5% | {g3:.1}% |");
    println!();

    // --- E6 -------------------------------------------------------------
    println!("## E6 — automatic placement of a full microstore (§7)\n");
    println!("| Program size | Paper | Measured utilization |");
    println!("|---|---|---|");
    for n in [1000usize, 2000, 3000, 3400] {
        println!(
            "| {n} instructions | 99.9% | {:.1}% |",
            h::placement_utilization(n) * 100.0
        );
    }
    println!("\n(Greedy placement with constraint repair; the paper's placer");
    println!("optimized page assignment globally — see EXPERIMENTS.md.)\n");

    // --- E7 -------------------------------------------------------------
    println!("## E7 — bus bandwidth constants (§5.8, §6.2.1)\n");
    let c = h::clock();
    println!("| Bus | Paper | This machine |");
    println!("|---|---|---|");
    println!(
        "| slow I/O (word/cycle) | 265 Mbit/s | {:.0} Mbit/s |",
        c.mbits_per_sec(16, dorado_base::Cycles(1))
    );
    println!(
        "| storage (munch / 8 cycles) | 530 Mbit/s | {:.0} Mbit/s |",
        c.mbits_per_sec(256, dorado_base::Cycles(8))
    );
    println!();

    // --- E9 -------------------------------------------------------------
    println!("## E9 — data bypassing ablation (§5.6)\n");
    let (with, without) = h::bypass_cycles();
    println!("| Machine | Cycles | Relative |");
    println!("|---|---|---|");
    println!("| with bypassing (shipped) | {with} | 1.00 |");
    println!(
        "| Model 0 (no bypassing, padded code) | {without} | {:.2} |",
        without as f64 / with as f64
    );
    println!();

    // --- E12 ------------------------------------------------------------
    println!("## E12 — wiring technology (§2)\n");
    let (stitch, multi) = h::wiring_times_ms();
    println!("| Build | Cycle | Workload time | Slowdown |");
    println!("|---|---|---|---|");
    println!("| stitchweld prototype | 50 ns | {stitch:.3} ms | — |");
    println!(
        "| multiwire production | 60 ns | {multi:.3} ms | {:.0}% (paper: ≈15%) |",
        (multi - stitch) / multi * 100.0
    );
    println!();

    // --- E13 ------------------------------------------------------------
    println!("## E13 — Hold overlaps memory latency with I/O work (§5.7)\n");
    let (alone, shared, disp) = h::hold_overlap();
    println!("| Configuration | Emulator instructions | Display instructions |");
    println!("|---|---|---|");
    println!("| cache-missing emulator alone | {alone} | 0 |");
    println!("| + display refresh | {shared} | {disp} |");
    println!(
        "\nThe display performed {disp} instructions of useful work while \
         costing the\nemulator only {:.1}% of its throughput — the held \
         cycles were recycled.\n",
        (1.0 - shared as f64 / alone as f64) * 100.0
    );
}
