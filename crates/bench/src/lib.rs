//! Measurement harness for the paper's experiments (E1–E13).
//!
//! Every quantitative claim in §7 (and the ablations of §2, §5.6, §5.7,
//! §6.2.1) has a function here that sets up the workload, runs the
//! simulator, and returns the number in the paper's units — via the
//! [`dorado_base::Report`] API wherever the number is a ratio of counters.
//! The plain-`main` benches under `benches/` (timed by [`harness`]) and
//! the `report` binary both call these.

#![forbid(unsafe_code)]

pub mod harness;

use dorado_asm::synth::{random_program, SynthProfile};
use dorado_base::{BaseRegId, ClockConfig, Cycles, TaskId, VirtAddr, Word};
use dorado_core::{Dorado, TaskingMode};
use dorado_emu::bitblt::{self, BitBltParams, BlitKind};
use dorado_emu::layout::*;
use dorado_emu::lisp::LispAsm;
use dorado_emu::mesa::MesaAsm;
use dorado_emu::suite::{build_bcpl, build_lisp, build_mesa};
use dorado_emu::{bcpl::BcplAsm, mesa, SuiteBuilder};
use dorado_io::{synth::SynthPath, DiskController, DisplayController, NetworkController, RateDevice};

/// The production clock.
pub fn clock() -> ClockConfig {
    ClockConfig::multiwire()
}

/// A Mesa program that spins forever (foreground load for device tests).
pub fn spinning_mesa() -> Vec<u8> {
    let mut p = MesaAsm::new();
    p.lib(1);
    p.label("top");
    for _ in 0..100 {
        p.inc();
    }
    p.jb("top");
    p.assemble().expect("spin program")
}

// --- E1: microinstructions per macroinstruction ------------------------------

/// Executed emulator microinstructions per macroinstruction for a snippet
/// repeated `reps` times on the Mesa machine.
pub fn mesa_cost(build: impl Fn(&mut MesaAsm), reps: usize) -> f64 {
    let mut p = MesaAsm::new();
    for _ in 0..=reps {
        build(&mut p);
    }
    p.halt();
    let mut m = build_mesa(&p.assemble().expect("asm")).expect("machine");
    assert!(m.run(5_000_000).halted());
    (m.stats().executed[0] as f64 - 2.0) / (reps + 1) as f64
}

/// Same for the Lisp machine.
pub fn lisp_cost(build: impl Fn(&mut LispAsm), reps: usize) -> f64 {
    let mut p = LispAsm::new();
    for _ in 0..=reps {
        build(&mut p);
    }
    p.halt();
    let mut m = build_lisp(&p.assemble().expect("asm")).expect("machine");
    assert!(m.run(5_000_000).halted());
    (m.stats().executed[0] as f64 - 2.0) / (reps + 1) as f64
}

/// Same for the BCPL machine.
pub fn bcpl_cost(build: impl Fn(&mut BcplAsm), reps: usize) -> f64 {
    let mut p = BcplAsm::new();
    for _ in 0..=reps {
        build(&mut p);
    }
    p.halt();
    let mut m = build_bcpl(&p.assemble().expect("asm")).expect("machine");
    assert!(m.run(5_000_000).halted());
    (m.stats().executed[0] as f64 - 2.0) / (reps + 1) as f64
}

/// Cycles per Mesa call+return round trip (the paper's "about 50").
pub fn mesa_call_cycles() -> f64 {
    let mut p = MesaAsm::new();
    for _ in 0..32 {
        p.lib(1);
        p.lib(2);
        p.call("f", 2);
        p.drop_top();
    }
    p.halt();
    p.label("f");
    p.ll(0);
    p.ll(1);
    p.add();
    p.ret();
    let mut m = build_mesa(&p.assemble().expect("asm")).expect("machine");
    assert!(m.run(5_000_000).halted());
    m.stats().cycles as f64 / 32.0 - 4.0 // glue ≈ 4 cycles per round
}

/// Cycles per Lisp call+return round trip (the paper's "about 200").
pub fn lisp_call_cycles() -> f64 {
    let mut p = LispAsm::new();
    for _ in 0..32 {
        p.push_fix(1);
        p.push_fix(2);
        p.call("f", 2);
    }
    p.halt();
    p.label("f");
    p.lget(0);
    p.lget(1);
    p.add();
    p.ret();
    let mut m = build_lisp(&p.assemble().expect("asm")).expect("machine");
    assert!(m.run(5_000_000).halted());
    m.stats().cycles as f64 / 32.0 - 8.0 // glue: two pushes ≈ 8 cycles
}

/// Cycles per BCPL call+return round trip.
pub fn bcpl_call_cycles() -> f64 {
    let mut p = BcplAsm::new();
    for _ in 0..32 {
        p.call("f");
    }
    p.halt();
    p.label("f");
    p.ret();
    let mut m = build_bcpl(&p.assemble().expect("asm")).expect("machine");
    assert!(m.run(5_000_000).halted());
    m.stats().cycles as f64 / 32.0
}

// --- E2: BitBlt bandwidths ----------------------------------------------------

/// Runs one blit over a screen-sized region; returns Mbit/s.
pub fn bitblt_mbps(kind: BlitKind, shift: u8) -> f64 {
    let suite = SuiteBuilder::new().with_bitblt().assemble().expect("suite");
    let mut m = suite
        .machine()
        .task_entry(TASK_EMU, kind.entry())
        .build()
        .expect("machine");
    let p = BitBltParams {
        src: 0,
        dst: 0x4000u16 as Word,
        width: 60,
        height: 80,
        src_pitch: 64,
        dst_pitch: 64,
        shift,
        fill: 0xffff,
        filter: 0xffff,
    };
    bitblt::load_params(&mut m, &p, kind);
    // Touch source memory so it is nonzero (and partially cached).
    for i in 0..(64 * 81u32) {
        m.memory_mut().write_virt(VirtAddr::new(i), i as Word);
    }
    let out = m.run(10_000_000);
    assert!(out.halted(), "{out:?}");
    let bits = u64::from(p.width) * u64::from(p.height) * 16;
    m.report().workload_mbps(bits)
}

// --- E3/E7: slow-I/O processor share -------------------------------------------

/// Processor share of a slow-I/O device at `mbps`, serviced by the
/// 3-instructions-per-pair loop, measured while the transfer is active.
pub fn slow_io_share(mbps: f64) -> f64 {
    let suite = SuiteBuilder::new()
        .with_mesa()
        .with_synth_sinks()
        .assemble()
        .expect("suite");
    let mut dev = RateDevice::new(TASK_SYNTH, mbps, 60.0, SynthPath::Slow);
    dev.start();
    let mut m = suite
        .machine()
        .task_entry(TASK_EMU, "mesa:boot")
        .device(Box::new(dev), IOA_SYNTH, 2)
        .wire_ioaddress(TASK_SYNTH, IOA_SYNTH)
        .task_entry(TASK_SYNTH, "synths:init")
        .build()
        .expect("machine");
    mesa::configure_ifu(&mut m);
    mesa::init_runtime(&mut m);
    mesa::load_program(&mut m, &spinning_mesa());
    let _ = m.run(40_000);
    m.report().utilization(TASK_SYNTH)
}

// --- E4/E5: fast-I/O share at full storage bandwidth ---------------------------

/// Processor share of the display fast-I/O task with the monitor consuming
/// the full 530 Mbit/s storage bandwidth, under either tasking mode.
pub fn fastio_share(mode: TaskingMode) -> f64 {
    let (entry, builder) = match mode {
        TaskingMode::OnDemand => ("disp:init", SuiteBuilder::new().with_mesa().with_display()),
        TaskingMode::NotifyGrain3 => (
            "disp3:init",
            SuiteBuilder::new().with_mesa().with_display_grain3(),
        ),
    };
    let suite = builder.assemble().expect("suite");
    let mut disp = DisplayController::with_rate(TASK_DISPLAY, 530.0, 60.0);
    disp.start();
    let mut m = suite
        .machine()
        .task_entry(TASK_EMU, "mesa:boot")
        .tasking(mode)
        .device(Box::new(disp), IOA_DISPLAY, 2)
        .wire_ioaddress(TASK_DISPLAY, IOA_DISPLAY)
        .task_entry(TASK_DISPLAY, entry)
        .build()
        .expect("machine");
    mesa::configure_ifu(&mut m);
    mesa::init_runtime(&mut m);
    mesa::load_program(&mut m, &spinning_mesa());
    m.memory_mut()
        .set_base_reg(BaseRegId::new(BR_DISPLAY), 0x2000);
    let _ = m.run(50_000);
    m.report().utilization(TASK_DISPLAY)
}

/// The fast-I/O bandwidth actually delivered to the display (Mbit/s).
pub fn fastio_mbps() -> f64 {
    let suite = SuiteBuilder::new()
        .with_mesa()
        .with_display()
        .assemble()
        .expect("suite");
    let mut disp = DisplayController::with_rate(TASK_DISPLAY, 530.0, 60.0);
    disp.start();
    let mut m = suite
        .machine()
        .task_entry(TASK_EMU, "mesa:boot")
        .device(Box::new(disp), IOA_DISPLAY, 2)
        .wire_ioaddress(TASK_DISPLAY, IOA_DISPLAY)
        .task_entry(TASK_DISPLAY, "disp:init")
        .build()
        .expect("machine");
    mesa::configure_ifu(&mut m);
    mesa::init_runtime(&mut m);
    mesa::load_program(&mut m, &spinning_mesa());
    m.memory_mut()
        .set_base_reg(BaseRegId::new(BR_DISPLAY), 0x2000);
    let _ = m.run(50_000);
    m.report().fast_io_mbps()
}

// --- E6: placement utilization ---------------------------------------------------

/// Placement utilization of a synthetic near-full store of `n` instructions.
pub fn placement_utilization(n: usize) -> f64 {
    let p = random_program(1981, n, &SynthProfile::default());
    p.place().expect("placement").stats().utilization()
}

// --- E9: the bypass ablation ---------------------------------------------------------

/// Cycles for a bypass-hazard-dense microprogram on the shipped machine
/// (bypassing) and on the Model 0 (no bypassing, padded code).
pub fn bypass_cycles() -> (u64, u64) {
    use dorado_asm::{ASel, Assembler, Inst};
    use dorado_asm::{AluOp, Cond, FfOp};
    let build = || {
        let mut a = Assembler::new();
        // Dependent chains: each instruction reads the previous result —
        // the common microcode shape §5.6 says bypassing makes "much
        // smaller and faster".
        a.emit(Inst::new().ff(FfOp::LoadCountImm(16)).goto_("top"));
        a.pair_align();
        a.label("top");
        a.emit(Inst::new().a(ASel::T).alu(AluOp::INC_A).load_t().goto_("w1"));
        a.label("exit");
        a.emit(Inst::new().ff_halt().goto_("exit"));
        a.label("w1");
        a.emit(Inst::new().rm(1).a(ASel::T).alu(AluOp::A).load_rm());
        a.emit(Inst::new().rm(1).alu(AluOp::INC_A).load_rm());
        a.emit(Inst::new().rm(1).b(dorado_asm::BSel::Rm).a(ASel::T).alu(AluOp::ADD).load_t());
        a.emit(Inst::new().ff(FfOp::DecCount).branch(Cond::CntZero, "exit", "top"));
        a.program()
    };
    let with = {
        let placed = build().place().expect("place");
        let mut m = dorado_core::DoradoBuilder::new()
            .microcode(placed)
            .bypass(true)
            .build()
            .expect("machine");
        let out = m.run(100_000);
        assert!(out.halted());
        m.stats().cycles
    };
    let without = {
        let placed = build().pad_for_no_bypass().place().expect("place");
        let mut m = dorado_core::DoradoBuilder::new()
            .microcode(placed)
            .bypass(false)
            .build()
            .expect("machine");
        let out = m.run(100_000);
        assert!(out.halted());
        m.stats().cycles
    };
    (with, without)
}

// --- E12: wiring technology ------------------------------------------------------------

/// Wall-clock milliseconds for one fixed workload on each wiring.
pub fn wiring_times_ms() -> (f64, f64) {
    let mut p = MesaAsm::new();
    p.lib(0);
    for _ in 0..100 {
        p.inc();
    }
    p.halt();
    let mut m = build_mesa(&p.assemble().expect("asm")).expect("machine");
    assert!(m.run(100_000).halted());
    let cycles = Cycles(m.stats().cycles);
    (
        ClockConfig::stitchweld().to_seconds(cycles) * 1e3,
        ClockConfig::multiwire().to_seconds(cycles) * 1e3,
    )
}

// --- E13: Hold overlap ---------------------------------------------------------------------

/// (emulator instructions alone, emulator instructions with a display
/// stealing held cycles, display instructions) over a fixed window.
pub fn hold_overlap() -> (u64, u64, u64) {
    let walker = || {
        let mut p = MesaAsm::new();
        p.liw(0x100);
        p.sl(0);
        p.label("top");
        p.ll(0);
        p.lib(0);
        p.aread();
        p.drop_top();
        p.ll(0);
        p.lib(16);
        p.add();
        p.sl(0);
        p.jb("top");
        p.assemble().expect("asm")
    };
    let run = |with_display: bool| -> (u64, u64) {
        let suite = SuiteBuilder::new()
            .with_mesa()
            .with_display()
            .assemble()
            .expect("suite");
        let mut b = suite.machine().task_entry(TASK_EMU, "mesa:boot");
        if with_display {
            let mut disp = DisplayController::with_rate(TASK_DISPLAY, 400.0, 60.0);
            disp.start();
            b = b
                .device(Box::new(disp), IOA_DISPLAY, 2)
                .wire_ioaddress(TASK_DISPLAY, IOA_DISPLAY)
                .task_entry(TASK_DISPLAY, "disp:init");
        }
        let mut m = b.build().expect("machine");
        mesa::configure_ifu(&mut m);
        mesa::init_runtime(&mut m);
        mesa::load_program(&mut m, &walker());
        m.memory_mut()
            .set_base_reg(BaseRegId::new(BR_DISPLAY), 0x2000);
        let _ = m.run(30_000);
        let s = m.stats();
        (s.executed[0], s.executed[TASK_DISPLAY.index()])
    };
    let (alone, _) = run(false);
    let (shared, disp) = run(true);
    (alone, shared, disp)
}

/// Builds a standard Mesa machine for simulator-throughput benchmarking.
pub fn mesa_machine_for_throughput() -> Dorado {
    build_mesa(&spinning_mesa()).expect("machine")
}

// --- E17: simulator throughput -----------------------------------------------

/// The §4 workstation scenario as a benchmark machine: the Mesa emulator
/// computing fib(15) in the foreground while the display refreshes over
/// fast I/O, the disk streams a 2048-word read, and the network receives a
/// packet — all sharing one processor by task priority.  Mirrors
/// `examples/workstation.rs`, so throughput numbers measured here describe
/// the example workload too.
pub fn workstation_machine() -> Dorado {
    let mut p = MesaAsm::new();
    p.lib(15);
    p.call("fib", 1);
    p.halt();
    p.label("fib");
    p.ll(0);
    p.lib(2);
    p.sub();
    p.sl(2);
    p.ll(0);
    p.jzb("base0");
    p.ll(0);
    p.lib(1);
    p.sub();
    p.jzb("base1");
    p.ll(0);
    p.lib(1);
    p.sub();
    p.call("fib", 1);
    p.ll(2);
    p.call("fib", 1);
    p.add();
    p.ret();
    p.label("base0");
    p.lib(0);
    p.ret();
    p.label("base1");
    p.lib(1);
    p.ret();
    let program = p.assemble().expect("fib program");

    let mut display = DisplayController::with_rate(TASK_DISPLAY, 256.0, 60.0);
    display.start();
    let mut disk = DiskController::new(TASK_DISK);
    for (i, w) in disk.platter_mut().iter_mut().take(2048).enumerate() {
        *w = i as Word;
    }
    disk.start_read(2048);
    let mut net = NetworkController::new(TASK_NET);
    net.inject_packet((1..=48).map(|x| x * 3).collect());

    let suite = SuiteBuilder::new()
        .with_mesa()
        .with_display()
        .with_disk()
        .with_network()
        .assemble()
        .expect("suite");
    let mut m = suite
        .machine()
        .task_entry(TASK_EMU, "mesa:boot")
        .device(Box::new(display), IOA_DISPLAY, 2)
        .wire_ioaddress(TASK_DISPLAY, IOA_DISPLAY)
        .task_entry(TASK_DISPLAY, "disp:init")
        .device(Box::new(disk), IOA_DISK, 2)
        .wire_ioaddress(TASK_DISK, IOA_DISK)
        .task_entry(TASK_DISK, "disk:init")
        .device(Box::new(net), IOA_NET, 3)
        .wire_ioaddress(TASK_NET, IOA_NET)
        .task_entry(TASK_NET, "net:init")
        .build()
        .expect("workstation machine");
    mesa::configure_ifu(&mut m);
    mesa::init_runtime(&mut m);
    mesa::load_program(&mut m, &program);
    m.memory_mut().set_base_reg(BaseRegId::new(BR_DISPLAY), 0x2000);
    m.memory_mut().set_base_reg(BaseRegId::new(BR_DISK), 0x3000);
    m.memory_mut().set_base_reg(BaseRegId::new(BR_NET), 0x3800);
    for i in 0..0x1000u32 {
        m.memory_mut()
            .write_virt(VirtAddr::new(0x2000 + i), (i as Word).wrapping_mul(3));
    }
    m
}

/// The emulator task id (re-export for benches).
pub const EMULATOR: TaskId = TaskId::EMULATOR;
