//! E5 (§6.2.1): task-grain ablation — the shipped 2-cycle grain needs 25%
//! of the processor to saturate storage; the "simpler" 3-cycle notify
//! design needs 37.5%.

use dorado_bench as h;
use dorado_bench::harness::bench;
use dorado_core::TaskingMode;

fn main() {
    let g2 = h::fastio_share(TaskingMode::OnDemand) * 100.0;
    let g3 = h::fastio_share(TaskingMode::NotifyGrain3) * 100.0;
    println!("E5 | 2-cycle grain: {g2:.1}% (paper 25%)");
    println!("E5 | 3-cycle notify: {g3:.1}% (paper 37.5%)");
    bench("e05/grain3_share", || h::fastio_share(TaskingMode::NotifyGrain3));
}
