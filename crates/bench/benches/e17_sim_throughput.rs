//! E17: raw simulator throughput (host Mcycles/s), with and without the
//! event-horizon I/O scheduler.
//!
//! Two workloads bracket the design space:
//!
//! * **workstation** — the §4 single-machine scenario (Mesa fib(15) plus
//!   display/disk/network device tasks).  Device-heavy: the disk and
//!   display pace real events, so the scheduler's win comes from skipping
//!   the cycles *between* events.
//! * **cluster8** — eight machines on the deterministic Ethernet running
//!   the closed-loop RPC workload, sequential executor (low noise).
//!   Network-idle-heavy: machines spend long stretches with empty FIFOs.
//!
//! Each workload runs three ways: `always_tick` (the naive reference —
//! every device ticked every cycle, exactly the pre-scheduler simulator),
//! `scheduled` (the event-horizon default), and `compiled` (E20: the
//! basic-block superinstruction core on top of the scheduler).  All modes
//! are asserted to produce the same architectural results before any
//! number is reported.
//!
//! ```sh
//! cargo bench -p dorado-bench --bench e17_sim_throughput               # full
//! cargo bench -p dorado-bench --bench e17_sim_throughput -- --quick   # ci-sized
//! cargo bench ... -- --json BENCH_PERF.json     # write machine-readable results
//! cargo bench ... -- --check BENCH_PERF.json    # fail if >25% below committed
//! ```
//!
//! The `--check` gate compares the *scheduled* throughput against the
//! committed `BENCH_PERF.json` and fails on a >25% regression.  Set
//! `DORADO_E17_NO_GATE=1` to skip the gate (slow or shared hardware).
//! The compiled-mode speedup ratios are gated the same way under
//! `DORADO_E20_NO_GATE=1`.

use std::time::Instant;

use dorado_bench::workstation_machine;
use dorado_cluster::{ClusterConfig, ClusterSim, Exec};
use dorado_core::ExecMode;
use dorado_emu::mesa;

/// One measured configuration of a workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// Naive reference: every device ticked every cycle.
    Naive,
    /// Event-horizon scheduled interpreter (the default).
    Scheduled,
    /// Scheduled plus the compiled basic-block core.
    Compiled,
}

impl Mode {
    const ALL: [Mode; 3] = [Mode::Naive, Mode::Scheduled, Mode::Compiled];
}

const WINDOW: u16 = 3;
const PAYLOAD: u16 = 2;
const EPOCH_CYCLES: u64 = 2_000;

struct Sized {
    workstation_cycles: u64,
    cluster_epochs: u64,
    samples: usize,
}

const FULL: Sized = Sized {
    workstation_cycles: 2_000_000,
    cluster_epochs: 150,
    samples: 9,
};
const QUICK: Sized = Sized {
    workstation_cycles: 400_000,
    cluster_epochs: 40,
    samples: 3,
};

/// Runs the workstation workload once; returns (simulated cycles, seconds,
/// fib result) so the modes can be cross-checked.
fn run_workstation(budget: u64, mode: Mode) -> (u64, f64, dorado_base::Word) {
    let mut m = workstation_machine();
    m.io_mut().set_always_tick(mode == Mode::Naive);
    if mode == Mode::Compiled {
        m.set_exec_mode(ExecMode::Compiled);
    }
    let t = Instant::now();
    m.run(budget);
    let secs = t.elapsed().as_secs_f64();
    (m.cycles(), secs, mesa::tos(&m))
}

/// Runs the 8-machine cluster sequentially; returns (aggregate simulated
/// machine-cycles, seconds, completed responses).
fn run_cluster(epochs: u64, mode: Mode) -> (u64, f64, u64) {
    let mut cfg = ClusterConfig::pairs(8, WINDOW, PAYLOAD);
    cfg.epoch_cycles = EPOCH_CYCLES;
    let mut sim = ClusterSim::build(&cfg).expect("cluster builds");
    for m in &mut sim.machines {
        m.io_mut().set_always_tick(mode == Mode::Naive);
        if mode == Mode::Compiled {
            m.set_exec_mode(ExecMode::Compiled);
        }
    }
    let t = Instant::now();
    sim.run(epochs, Exec::Sequential);
    let secs = t.elapsed().as_secs_f64();
    let cycles: u64 = sim.machines.iter().map(dorado_core::Dorado::cycles).sum();
    (cycles, secs, sim.responses())
}

/// Best-of-N Mcycles/s for every mode of one workload, sampled
/// *interleaved* (naive, scheduled, compiled, naive, ...) so a sustained
/// slow window on a shared host hits all sides rather than biasing the
/// ratios.  Asserts every sample reproduces the same architectural result
/// and that all modes agree on it.
fn measure_modes<C: PartialEq + std::fmt::Debug>(
    samples: usize,
    mut run: impl FnMut(Mode) -> (u64, f64, C),
) -> ([f64; 3], C) {
    let mut best = [0.0f64; 3];
    let (mut cycles0, mut check0) = (None, None);
    for _ in 0..samples.max(1) {
        for (slot, mode) in Mode::ALL.into_iter().enumerate() {
            let (cycles, secs, check) = run(mode);
            if let (Some(c0), Some(k0)) = (&cycles0, &check0) {
                assert_eq!(*c0, cycles, "simulated cycle count must be deterministic");
                assert_eq!(
                    k0, &check,
                    "execution modes must be architecturally invisible (same result everywhere)"
                );
            } else {
                cycles0 = Some(cycles);
                check0 = Some(check);
            }
            best[slot] = best[slot].max(cycles as f64 / secs.max(1e-9) / 1e6);
        }
    }
    (best, check0.expect("at least one sample"))
}

/// One instrumented compiled-mode workstation run for the E20 telemetry
/// lines: fused-frame coverage plus the basic-block length census.
fn workstation_telemetry(budget: u64) {
    let mut m = workstation_machine();
    m.set_exec_mode(ExecMode::Compiled);
    m.run(budget);
    let (frames, fused) = m.fused_coverage();
    let total = m.cycles().max(1);
    println!(
        "E20 | workstation coverage: {fused}/{total} cycles fused ({:.1}%), {frames} frames, avg {:.1} cycles/frame",
        fused as f64 * 100.0 / total as f64,
        fused as f64 / frames.max(1) as f64,
    );
    let lens = m.compiled_block_lengths();
    let census = |lo: u32, hi: u32| lens.iter().filter(|&&l| l >= lo && l <= hi).count();
    println!(
        "E20 | block census: {} blocks, len 1: {}, 2: {}, 3-4: {}, 5-8: {}, 9+: {}, max {}",
        lens.len(),
        census(1, 1),
        census(2, 2),
        census(3, 4),
        census(5, 8),
        census(9, u32::MAX),
        lens.iter().max().copied().unwrap_or(0),
    );
}

/// Pulls `"key": <number>` out of a flat JSON object without a JSON
/// dependency (the results file is machine-written, flat, and ours).
fn json_number(text: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\"");
    let rest = &text[text.find(&needle)? + needle.len()..];
    let rest = rest.trim_start().strip_prefix(':')?.trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn main() {
    let mut quick = false;
    let mut json_path: Option<String> = None;
    let mut check_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--json" => json_path = Some(args.next().expect("--json needs a path")),
            s if s.starts_with("--json=") => json_path = Some(s["--json=".len()..].to_string()),
            "--check" => check_path = Some(args.next().expect("--check needs a path")),
            s if s.starts_with("--check=") => check_path = Some(s["--check=".len()..].to_string()),
            "--bench" => {} // cargo bench passes this through
            other => panic!("unknown argument `{other}`"),
        }
    }
    let size = if quick { QUICK } else { FULL };

    println!(
        "E17 | workstation {} cycles, cluster 8 machines x {} epochs x {EPOCH_CYCLES} cycles, best of {} sample(s){}",
        size.workstation_cycles,
        size.cluster_epochs,
        size.samples,
        if quick { " (quick)" } else { "" },
    );

    let ([ws_naive, ws_sched, ws_comp], fib) = measure_modes(size.samples, |mode| {
        run_workstation(size.workstation_cycles, mode)
    });
    let ws_speedup = ws_sched / ws_naive.max(1e-9);
    let ws_comp_speedup = ws_comp / ws_sched.max(1e-9);
    println!(
        "E17 | workstation: always_tick {ws_naive:.2} Mcycles/s, scheduled {ws_sched:.2} Mcycles/s, speedup x{ws_speedup:.2} (fib(15) = {fib})"
    );
    println!(
        "E20 | workstation: compiled {ws_comp:.2} Mcycles/s, x{ws_comp_speedup:.2} over scheduled"
    );
    workstation_telemetry(size.workstation_cycles);

    let ([cl_naive, cl_sched, cl_comp], responses) = measure_modes(size.samples, |mode| {
        run_cluster(size.cluster_epochs, mode)
    });
    let cl_speedup = cl_sched / cl_naive.max(1e-9);
    let cl_comp_speedup = cl_comp / cl_sched.max(1e-9);
    println!(
        "E17 | cluster8: always_tick {cl_naive:.2} Mcycles/s, scheduled {cl_sched:.2} Mcycles/s, speedup x{cl_speedup:.2} ({responses} responses)"
    );
    println!(
        "E20 | cluster8: compiled {cl_comp:.2} Mcycles/s, x{cl_comp_speedup:.2} over scheduled"
    );

    if let Some(path) = &json_path {
        let json = format!(
            "{{\n  \"schema\": \"dorado-e17-v2\",\n  \"quick\": {quick},\n  \"workstation_always_tick_mcps\": {ws_naive:.3},\n  \"workstation_scheduled_mcps\": {ws_sched:.3},\n  \"workstation_speedup\": {ws_speedup:.3},\n  \"workstation_compiled_mcps\": {ws_comp:.3},\n  \"workstation_compiled_speedup\": {ws_comp_speedup:.3},\n  \"cluster8_always_tick_mcps\": {cl_naive:.3},\n  \"cluster8_scheduled_mcps\": {cl_sched:.3},\n  \"cluster8_speedup\": {cl_speedup:.3},\n  \"cluster8_compiled_mcps\": {cl_comp:.3},\n  \"cluster8_compiled_speedup\": {cl_comp_speedup:.3}\n}}\n"
        );
        std::fs::write(path, json).expect("write results json");
        println!("E17 | wrote {path}");
    }

    if let Some(path) = &check_path {
        let committed = std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("--check {path}: {e}"));
        // Absolute Mcycles/s is not comparable across hosts (or even across
        // invocations on a noisy shared runner — we have measured ±2×), so
        // the hard gates are on the *in-process* speedup ratios, which
        // cancel host speed: scheduled-vs-naive (E17) and
        // compiled-vs-scheduled (E20).  Absolute throughput is still
        // printed against the committed numbers for the log.
        let skip = |var: &str| std::env::var(var).is_ok_and(|v| v == "1");
        let (skip_e17, skip_e20) = (skip("DORADO_E17_NO_GATE"), skip("DORADO_E20_NO_GATE"));
        let mut failed = false;
        for (tag, skipped, key, measured, abs_key, abs) in [
            ("E17", skip_e17, "workstation_speedup", ws_speedup, "workstation_scheduled_mcps", ws_sched),
            ("E17", skip_e17, "cluster8_speedup", cl_speedup, "cluster8_scheduled_mcps", cl_sched),
            ("E20", skip_e20, "workstation_compiled_speedup", ws_comp_speedup, "workstation_compiled_mcps", ws_comp),
            ("E20", skip_e20, "cluster8_compiled_speedup", cl_comp_speedup, "cluster8_compiled_mcps", cl_comp),
        ] {
            if skipped {
                println!("{tag} | gate {key} skipped (DORADO_{tag}_NO_GATE=1)");
                continue;
            }
            let baseline = json_number(&committed, key)
                .unwrap_or_else(|| panic!("--check {path}: missing key {key}"));
            let floor = baseline * 0.75;
            let verdict = if measured < floor { "FAIL" } else { "ok" };
            println!(
                "{tag} | gate {key}: measured x{measured:.2} vs committed x{baseline:.2} (floor x{floor:.2}) {verdict}"
            );
            failed |= measured < floor;
            if let Some(abs_base) = json_number(&committed, abs_key) {
                println!(
                    "{tag} | info {abs_key}: measured {abs:.2} vs committed {abs_base:.2} (host-dependent, not gated)"
                );
            }
        }
        if failed {
            eprintln!(
                "E17 | a mode-speedup ratio regressed >25% vs {path}; rerun the full bench and recommit, or set DORADO_E17_NO_GATE=1 / DORADO_E20_NO_GATE=1"
            );
            std::process::exit(1);
        }
        println!("E17 | gate passed");
    }
}
