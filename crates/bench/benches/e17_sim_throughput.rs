//! E17: raw simulator throughput (host Mcycles/s), with and without the
//! event-horizon I/O scheduler.
//!
//! Two workloads bracket the design space:
//!
//! * **workstation** — the §4 single-machine scenario (Mesa fib(15) plus
//!   display/disk/network device tasks).  Device-heavy: the disk and
//!   display pace real events, so the scheduler's win comes from skipping
//!   the cycles *between* events.
//! * **cluster8** — eight machines on the deterministic Ethernet running
//!   the closed-loop RPC workload, sequential executor (low noise).
//!   Network-idle-heavy: machines spend long stretches with empty FIFOs.
//!
//! Each workload runs twice: `always_tick` (the naive reference — every
//! device ticked every cycle, exactly the pre-scheduler simulator) and
//! `scheduled` (the default).  Both modes are asserted to produce the same
//! architectural results before any number is reported.
//!
//! ```sh
//! cargo bench -p dorado-bench --bench e17_sim_throughput               # full
//! cargo bench -p dorado-bench --bench e17_sim_throughput -- --quick   # ci-sized
//! cargo bench ... -- --json BENCH_PERF.json     # write machine-readable results
//! cargo bench ... -- --check BENCH_PERF.json    # fail if >25% below committed
//! ```
//!
//! The `--check` gate compares the *scheduled* throughput against the
//! committed `BENCH_PERF.json` and fails on a >25% regression.  Set
//! `DORADO_E17_NO_GATE=1` to skip the gate (slow or shared hardware).

use std::time::Instant;

use dorado_bench::workstation_machine;
use dorado_cluster::{ClusterConfig, ClusterSim};
use dorado_emu::mesa;

const WINDOW: u16 = 3;
const PAYLOAD: u16 = 2;
const EPOCH_CYCLES: u64 = 2_000;

struct Sized {
    workstation_cycles: u64,
    cluster_epochs: u64,
    samples: usize,
}

const FULL: Sized = Sized {
    workstation_cycles: 2_000_000,
    cluster_epochs: 150,
    samples: 9,
};
const QUICK: Sized = Sized {
    workstation_cycles: 400_000,
    cluster_epochs: 40,
    samples: 3,
};

/// Runs the workstation workload once; returns (simulated cycles, seconds,
/// fib result) so the two modes can be cross-checked.
fn run_workstation(budget: u64, always_tick: bool) -> (u64, f64, dorado_base::Word) {
    let mut m = workstation_machine();
    m.io_mut().set_always_tick(always_tick);
    let t = Instant::now();
    m.run(budget);
    let secs = t.elapsed().as_secs_f64();
    (m.cycles(), secs, mesa::tos(&m))
}

/// Runs the 8-machine cluster sequentially; returns (aggregate simulated
/// machine-cycles, seconds, completed responses).
fn run_cluster(epochs: u64, always_tick: bool) -> (u64, f64, u64) {
    let mut cfg = ClusterConfig::pairs(8, WINDOW, PAYLOAD);
    cfg.epoch_cycles = EPOCH_CYCLES;
    let mut sim = ClusterSim::build(&cfg).expect("cluster builds");
    for m in &mut sim.machines {
        m.io_mut().set_always_tick(always_tick);
    }
    let t = Instant::now();
    sim.run(epochs, false);
    let secs = t.elapsed().as_secs_f64();
    let cycles: u64 = sim.machines.iter().map(dorado_core::Dorado::cycles).sum();
    (cycles, secs, sim.responses())
}

/// Best-of-N Mcycles/s for both modes of one workload, sampled
/// *interleaved* (naive, scheduled, naive, ...) so a sustained slow window
/// on a shared host hits both sides rather than biasing the ratio.
/// Asserts every sample reproduces the same architectural result and that
/// the two modes agree on it.
fn measure_pair<C: PartialEq + std::fmt::Debug>(
    samples: usize,
    mut run: impl FnMut(bool) -> (u64, f64, C),
) -> (f64, f64, C) {
    let mut best = [0.0f64; 2];
    let (mut cycles0, mut check0) = (None, None);
    for _ in 0..samples.max(1) {
        for (slot, always_tick) in [(0usize, true), (1usize, false)] {
            let (cycles, secs, check) = run(always_tick);
            if let (Some(c0), Some(k0)) = (&cycles0, &check0) {
                assert_eq!(*c0, cycles, "simulated cycle count must be deterministic");
                assert_eq!(
                    k0, &check,
                    "scheduler must be architecturally invisible (same result in both modes)"
                );
            } else {
                cycles0 = Some(cycles);
                check0 = Some(check);
            }
            best[slot] = best[slot].max(cycles as f64 / secs.max(1e-9) / 1e6);
        }
    }
    (best[0], best[1], check0.expect("at least one sample"))
}

/// Pulls `"key": <number>` out of a flat JSON object without a JSON
/// dependency (the results file is machine-written, flat, and ours).
fn json_number(text: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\"");
    let rest = &text[text.find(&needle)? + needle.len()..];
    let rest = rest.trim_start().strip_prefix(':')?.trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn main() {
    let mut quick = false;
    let mut json_path: Option<String> = None;
    let mut check_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--json" => json_path = Some(args.next().expect("--json needs a path")),
            s if s.starts_with("--json=") => json_path = Some(s["--json=".len()..].to_string()),
            "--check" => check_path = Some(args.next().expect("--check needs a path")),
            s if s.starts_with("--check=") => check_path = Some(s["--check=".len()..].to_string()),
            "--bench" => {} // cargo bench passes this through
            other => panic!("unknown argument `{other}`"),
        }
    }
    let size = if quick { QUICK } else { FULL };

    println!(
        "E17 | workstation {} cycles, cluster 8 machines x {} epochs x {EPOCH_CYCLES} cycles, best of {} sample(s){}",
        size.workstation_cycles,
        size.cluster_epochs,
        size.samples,
        if quick { " (quick)" } else { "" },
    );

    let (ws_naive, ws_sched, fib) = measure_pair(size.samples, |always_tick| {
        run_workstation(size.workstation_cycles, always_tick)
    });
    let ws_speedup = ws_sched / ws_naive.max(1e-9);
    println!(
        "E17 | workstation: always_tick {ws_naive:.2} Mcycles/s, scheduled {ws_sched:.2} Mcycles/s, speedup x{ws_speedup:.2} (fib(15) = {fib})"
    );

    let (cl_naive, cl_sched, responses) = measure_pair(size.samples, |always_tick| {
        run_cluster(size.cluster_epochs, always_tick)
    });
    let cl_speedup = cl_sched / cl_naive.max(1e-9);
    println!(
        "E17 | cluster8: always_tick {cl_naive:.2} Mcycles/s, scheduled {cl_sched:.2} Mcycles/s, speedup x{cl_speedup:.2} ({responses} responses)"
    );

    if let Some(path) = &json_path {
        let json = format!(
            "{{\n  \"schema\": \"dorado-e17-v1\",\n  \"quick\": {quick},\n  \"workstation_always_tick_mcps\": {ws_naive:.3},\n  \"workstation_scheduled_mcps\": {ws_sched:.3},\n  \"workstation_speedup\": {ws_speedup:.3},\n  \"cluster8_always_tick_mcps\": {cl_naive:.3},\n  \"cluster8_scheduled_mcps\": {cl_sched:.3},\n  \"cluster8_speedup\": {cl_speedup:.3}\n}}\n"
        );
        std::fs::write(path, json).expect("write results json");
        println!("E17 | wrote {path}");
    }

    if let Some(path) = &check_path {
        if std::env::var("DORADO_E17_NO_GATE").is_ok_and(|v| v == "1") {
            println!("E17 | gate skipped (DORADO_E17_NO_GATE=1)");
            return;
        }
        let committed = std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("--check {path}: {e}"));
        // Absolute Mcycles/s is not comparable across hosts (or even across
        // invocations on a noisy shared runner — we have measured ±2×), so
        // the hard gate is on the *in-process* scheduled-vs-naive speedup,
        // which cancels host speed.  Absolute throughput is still printed
        // against the committed numbers for the log.
        let mut failed = false;
        for (key, measured, abs_key, abs) in [
            ("workstation_speedup", ws_speedup, "workstation_scheduled_mcps", ws_sched),
            ("cluster8_speedup", cl_speedup, "cluster8_scheduled_mcps", cl_sched),
        ] {
            let baseline = json_number(&committed, key)
                .unwrap_or_else(|| panic!("--check {path}: missing key {key}"));
            let floor = baseline * 0.75;
            let verdict = if measured < floor { "FAIL" } else { "ok" };
            println!(
                "E17 | gate {key}: measured x{measured:.2} vs committed x{baseline:.2} (floor x{floor:.2}) {verdict}"
            );
            failed |= measured < floor;
            if let Some(abs_base) = json_number(&committed, abs_key) {
                println!(
                    "E17 | info {abs_key}: measured {abs:.2} vs committed {abs_base:.2} (host-dependent, not gated)"
                );
            }
        }
        if failed {
            eprintln!(
                "E17 | scheduler speedup regressed >25% vs {path}; rerun the full bench and recommit, or set DORADO_E17_NO_GATE=1"
            );
            std::process::exit(1);
        }
        println!("E17 | gate passed");
    }
}
