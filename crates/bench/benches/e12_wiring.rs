//! E12 (§2): multiwire boards slowed the machine about 15% relative to the
//! stitchwelded prototypes — a pure cycle-time scale factor.

use dorado_bench as h;
use dorado_bench::harness::bench;

fn main() {
    let (stitch, multi) = h::wiring_times_ms();
    println!(
        "E12 | stitchweld {stitch:.3} ms vs multiwire {multi:.3} ms: {:.0}% slowdown (paper ≈15%)",
        (multi - stitch) / multi * 100.0
    );
    bench("e12/workload", h::wiring_times_ms);
}
