//! E12 (§2): multiwire boards slowed the machine about 15% relative to the
//! stitchwelded prototypes — a pure cycle-time scale factor.

use criterion::{criterion_group, criterion_main, Criterion};
use dorado_bench as h;

fn bench(c: &mut Criterion) {
    let (stitch, multi) = h::wiring_times_ms();
    println!(
        "E12 | stitchweld {stitch:.3} ms vs multiwire {multi:.3} ms: {:.0}% slowdown (paper ≈15%)",
        (multi - stitch) / multi * 100.0
    );
    let mut g = c.benchmark_group("e12");
    g.sample_size(10);
    g.bench_function("workload", |b| {
        b.iter(|| std::hint::black_box(h::wiring_times_ms()))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
