//! E10 (§5.5): the paged NEXTPC scheme costs 8 bits of microword instead
//! of ~16, and conditional branches execute with no delay slot.

use dorado_asm::synth::{random_program, SynthProfile};
use dorado_bench::harness::bench;

fn main() {
    // Static accounting: sequencing bits per word.
    println!("E10 | NextControl: 8 bits/word (horizontal equivalent: ≈15-16)");
    let p = random_program(3, 2000, &SynthProfile::default());
    let placed = p.place().expect("place");
    println!(
        "E10 | savings on a 2000-word program: {} bits",
        placed.words_used() * 8
    );
    bench("e10/place_2000_branchy", || {
        let p = random_program(
            3,
            2000,
            &SynthProfile {
                branch_pct: 60,
                ..SynthProfile::default()
            },
        );
        p.place().expect("place").words_used()
    });
}
