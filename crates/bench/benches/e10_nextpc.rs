//! E10 (§5.5): the paged NEXTPC scheme costs 8 bits of microword instead
//! of ~16, and conditional branches execute with no delay slot.

use criterion::{criterion_group, criterion_main, Criterion};
use dorado_asm::synth::{random_program, SynthProfile};

fn bench(c: &mut Criterion) {
    // Static accounting: sequencing bits per word.
    println!("E10 | NextControl: 8 bits/word (horizontal equivalent: ≈15-16)");
    let p = random_program(3, 2000, &SynthProfile::default());
    let placed = p.place().expect("place");
    println!(
        "E10 | savings on a 2000-word program: {} bits",
        placed.words_used() * 8
    );
    let mut g = c.benchmark_group("e10");
    g.sample_size(10);
    g.bench_function("place_2000_branchy", |b| {
        b.iter(|| {
            let p = random_program(
                3,
                2000,
                &SynthProfile {
                    branch_pct: 60,
                    ..SynthProfile::default()
                },
            );
            std::hint::black_box(p.place().expect("place").words_used())
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
