//! E11 (§5.9): byte-form constants — most 16-bit constants in one
//! microinstruction, any in two.

use dorado_asm::synthesis_cost;
use dorado_bench::harness::bench;

fn main() {
    let corpus: Vec<u16> = (0..256u16)
        .chain((1..=256u16).map(|v| 0u16.wrapping_sub(v)))
        .chain((0..16).map(|b| 1u16 << b))
        .chain((0..16).map(|b| !(1u16 << b)))
        .collect();
    let one = corpus.iter().filter(|&&v| synthesis_cost(v) == 1).count();
    println!(
        "E11 | {one}/{} realistic constants need one instruction ({:.0}%)",
        corpus.len(),
        one as f64 / corpus.len() as f64 * 100.0
    );
    let all_two = (0..=u16::MAX).all(|v| synthesis_cost(v) <= 2);
    println!("E11 | every 16-bit constant fits in two instructions: {all_two}");
    bench("e11/classify_64k", || {
        (0..=u16::MAX).map(synthesis_cost).sum::<usize>()
    });
}
