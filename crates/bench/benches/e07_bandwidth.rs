//! E7 (§5.8/§6.2.1): bus bandwidth constants — 265 Mbit/s slow I/O,
//! 530 Mbit/s storage.

use criterion::{criterion_group, criterion_main, Criterion};
use dorado_base::Cycles;
use dorado_bench as h;

fn bench(c: &mut Criterion) {
    let clk = h::clock();
    println!(
        "E7 | slow I/O bus: {:.0} Mbit/s (paper 265)",
        clk.mbits_per_sec(16, Cycles(1))
    );
    println!(
        "E7 | storage: {:.0} Mbit/s (paper 530)",
        clk.mbits_per_sec(256, Cycles(8))
    );
    let mut g = c.benchmark_group("e07");
    g.sample_size(10);
    g.bench_function("slow_io_80mbps_share", |b| {
        b.iter(|| std::hint::black_box(h::slow_io_share(80.0)))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
