//! E7 (§5.8/§6.2.1): bus bandwidth constants — 265 Mbit/s slow I/O,
//! 530 Mbit/s storage.

use dorado_base::Cycles;
use dorado_bench as h;
use dorado_bench::harness::bench;

fn main() {
    let clk = h::clock();
    println!(
        "E7 | slow I/O bus: {:.0} Mbit/s (paper 265)",
        clk.mbits_per_sec(16, Cycles(1))
    );
    println!(
        "E7 | storage: {:.0} Mbit/s (paper 530)",
        clk.mbits_per_sec(256, Cycles(8))
    );
    bench("e07/slow_io_80mbps_share", || h::slow_io_share(80.0));
}
