//! E15 (§2): many Dorados on one Ethernet — now to fleet scale.  Sweeps
//! cluster size over 1→256 machines running the closed-loop RPC workload
//! and reports, per size:
//!
//! * aggregate completed requests per second of *simulated* time (the
//!   throughput scaling claim: client/server pairs scale linearly), and
//! * wall-clock epochs/s under all three executors — sequential oracle,
//!   legacy thread-per-machine, and the work-stealing pool — on identical
//!   work (bit-identical schedules make this a pure execution-strategy
//!   comparison).  The pool-vs-threads ratio at 256 machines is the E15
//!   scaling claim: one OS thread per simulated machine stops scaling the
//!   moment machines outnumber cores.
//!
//! E21 rides on the same binary: an open-loop saturation sweep (8
//! servers + 8 burst generators, offered load stepped by shrinking the
//! firing period) reporting offered load vs. goodput vs. drops vs.
//! p50/p99/p999 round-trip latency — the serving-stack SLO view.
//!
//! ```sh
//! cargo bench -p dorado-bench --bench e15_cluster_scaling               # full
//! cargo bench -p dorado-bench --bench e15_cluster_scaling -- --quick   # ci-sized
//! cargo bench ... -- --json BENCH_CLUSTER.json   # write machine-readable results
//! cargo bench ... -- --check BENCH_CLUSTER.json  # fail if pool speedup regressed
//! ```
//!
//! The `--check` gate compares the in-process pool-vs-threads wall-clock
//! ratio at 256 machines (host-speed cancels) against the committed
//! `BENCH_CLUSTER.json` and fails on a >25% regression.  Set
//! `DORADO_E21_NO_GATE=1` to skip (slow or shared hardware).

use std::time::Instant;

use dorado_cluster::{ClusterConfig, ClusterSim, Exec};

const WINDOW: u16 = 3;
const PAYLOAD: u16 = 2;
const EPOCH_CYCLES: u64 = 2_000;
const SIZES: [usize; 9] = [1, 2, 4, 8, 16, 32, 64, 128, 256];
const SAT_MACHINES: usize = 16;
const SAT_BURST: u16 = 4;
const SAT_PERIODS: [u16; 5] = [400, 150, 60, 25, 10];

/// Epochs per scaling point, scaled down with cluster size so the sweep
/// stays CI-sized while every point still moves real traffic.
fn epochs_for(machines: usize, quick: bool) -> u64 {
    let budget = if quick { 400 } else { 1_200 };
    let (lo, hi) = if quick { (10, 40) } else { (30, 150) };
    (budget / machines as u64).clamp(lo, hi)
}

fn build(machines: usize) -> ClusterSim {
    let mut cfg = ClusterConfig::pairs(machines, WINDOW, PAYLOAD);
    cfg.epoch_cycles = EPOCH_CYCLES;
    ClusterSim::build(&cfg).expect("cluster builds")
}

/// Runs one (size, executor) point; returns (sim, wall-clock epochs/s).
fn run(machines: usize, epochs: u64, exec: Exec) -> (ClusterSim, f64) {
    let mut sim = build(machines);
    let t = Instant::now();
    sim.run(epochs, exec);
    (sim, epochs as f64 / t.elapsed().as_secs_f64().max(1e-9))
}

/// One saturation point: open-loop generators at `period`, pool executor.
fn run_saturation(period: u16, quick: bool) -> ClusterSim {
    let mut cfg = ClusterConfig::open_loop(SAT_MACHINES, period, SAT_BURST, PAYLOAD);
    cfg.epoch_cycles = EPOCH_CYCLES;
    let mut sim = ClusterSim::build(&cfg).expect("cluster builds");
    sim.run(if quick { 50 } else { 150 }, Exec::Pool(0));
    sim
}

/// Pulls `"key": <number>` out of a flat JSON object without a JSON
/// dependency (the results file is machine-written, flat, and ours).
fn json_number(text: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\"");
    let rest = &text[text.find(&needle)? + needle.len()..];
    let rest = rest.trim_start().strip_prefix(':')?.trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn main() {
    let mut quick = false;
    let mut json_path: Option<String> = None;
    let mut check_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--json" => json_path = Some(args.next().expect("--json needs a path")),
            s if s.starts_with("--json=") => json_path = Some(s["--json=".len()..].to_string()),
            "--check" => check_path = Some(args.next().expect("--check needs a path")),
            s if s.starts_with("--check=") => check_path = Some(s["--check=".len()..].to_string()),
            "--bench" => {} // cargo bench passes this through
            other => panic!("unknown argument `{other}`"),
        }
    }

    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "E15 | scaling 1->256 machines, {EPOCH_CYCLES}-cycle epochs, closed-loop window {WINDOW}, \
         payload {PAYLOAD} words, {cores} core(s) available{}",
        if quick { " (quick)" } else { "" },
    );
    if cores == 1 {
        println!(
            "E15 | single-core host: the pool degenerates to ~sequential; \
             thread-per-machine still pays per-machine spawn + barrier convoys"
        );
    }

    let mut json = format!(
        "{{\n  \"schema\": \"dorado-e15-v3\",\n  \"quick\": {quick},\n  \"cores\": {cores}"
    );
    let mut speedup_256 = None;
    for machines in SIZES {
        let epochs = epochs_for(machines, quick);
        let (seq, seq_eps) = run(machines, epochs, Exec::Sequential);
        let (pool, pool_eps) = run(machines, epochs, Exec::Pool(0));
        let (threads, threads_eps) = run(machines, epochs, Exec::Threads);
        assert_eq!(
            seq.responses(),
            pool.responses(),
            "pool run must match sequential at {machines} machines"
        );
        assert_eq!(
            seq.responses(),
            threads.responses(),
            "threads run must match sequential at {machines} machines"
        );
        let w = seq.workload_summary();
        let pool_vs_threads = pool_eps / threads_eps.max(1e-9);
        println!(
            "E15 | {machines:>3} machine(s) x {epochs} epoch(s): {:.0} req/s simulated \
             ({} responses), p50 {} p99 {} cycles; epochs/s seq {seq_eps:.1} pool {pool_eps:.1} \
             threads {threads_eps:.1} (pool x{pool_vs_threads:.2} vs threads)",
            w.goodput_rps, w.responses, w.latency.p50, w.latency.p99,
        );
        json.push_str(&format!(
            ",\n  \"scaling_{machines}_req_s\": {:.1},\n  \"scaling_{machines}_seq_eps\": {seq_eps:.2},\n  \"scaling_{machines}_pool_eps\": {pool_eps:.2},\n  \"scaling_{machines}_threads_eps\": {threads_eps:.2}",
            w.goodput_rps,
        ));
        if machines == 256 {
            speedup_256 = Some(pool_vs_threads);
        }
    }
    let speedup_256 = speedup_256.expect("256 is in SIZES");
    println!("E15 | 256 machines: pool executor x{speedup_256:.2} over thread-per-machine");
    json.push_str(&format!(
        ",\n  \"pool_vs_threads_speedup_256\": {speedup_256:.3}"
    ));

    println!(
        "E21 | saturation: {SAT_MACHINES} machines (8 servers + 8 open-loop generators, \
         burst {SAT_BURST}), firing period swept {SAT_PERIODS:?}"
    );
    for period in SAT_PERIODS {
        let sim = run_saturation(period, quick);
        let w = sim.workload_summary();
        println!(
            "E21 | period {period:>3}: offered {:.0} req/s, goodput {:.0} req/s, {} drop(s), \
             latency p50 {} p99 {} p999 {} max {} cycles",
            w.offered_rps, w.goodput_rps, w.drops,
            w.latency.p50, w.latency.p99, w.latency.p999, w.latency.max,
        );
        json.push_str(&format!(
            ",\n  \"sat_{period}_offered_rps\": {:.1},\n  \"sat_{period}_goodput_rps\": {:.1},\n  \"sat_{period}_drops\": {},\n  \"sat_{period}_p50\": {},\n  \"sat_{period}_p99\": {},\n  \"sat_{period}_p999\": {}",
            w.offered_rps, w.goodput_rps, w.drops,
            w.latency.p50, w.latency.p99, w.latency.p999,
        ));
    }
    json.push_str("\n}\n");

    if let Some(path) = &json_path {
        std::fs::write(path, &json).expect("write results json");
        println!("E15 | wrote {path}");
    }

    if let Some(path) = &check_path {
        let committed =
            std::fs::read_to_string(path).unwrap_or_else(|e| panic!("--check {path}: {e}"));
        // Absolute epochs/s is host-dependent; the gate is the in-process
        // pool-vs-threads wall-clock ratio at 256 machines, which cancels
        // host speed.
        if std::env::var("DORADO_E21_NO_GATE").is_ok_and(|v| v == "1") {
            println!("E21 | gate pool_vs_threads_speedup_256 skipped (DORADO_E21_NO_GATE=1)");
            return;
        }
        let baseline = json_number(&committed, "pool_vs_threads_speedup_256")
            .unwrap_or_else(|| panic!("--check {path}: missing key pool_vs_threads_speedup_256"));
        let floor = baseline * 0.75;
        let verdict = if speedup_256 < floor { "FAIL" } else { "ok" };
        println!(
            "E21 | gate pool_vs_threads_speedup_256: measured x{speedup_256:.2} vs committed \
             x{baseline:.2} (floor x{floor:.2}) {verdict}"
        );
        if speedup_256 < floor {
            eprintln!(
                "E21 | pool speedup regressed >25% vs {path}; rerun the full bench and \
                 recommit, or set DORADO_E21_NO_GATE=1"
            );
            std::process::exit(1);
        }
        println!("E21 | gate passed");
    }
}
