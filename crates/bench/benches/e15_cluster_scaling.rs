//! E15 (§2): many Dorados on one Ethernet.  Sweeps cluster size over
//! 1/2/4/8 machines running the closed-loop RPC workload and reports
//!
//! * aggregate completed requests per second of *simulated* time (the
//!   throughput scaling claim: client/server pairs scale linearly), and
//! * the parallel executor's wall-clock speedup over the single-threaded
//!   reference on identical work (the bit-identical schedules make this a
//!   pure execution-strategy comparison).

use std::time::Instant;

use dorado_bench::harness::bench;
use dorado_cluster::{ClusterConfig, ClusterSim};

const WINDOW: u16 = 3;
const PAYLOAD: u16 = 2;
const EPOCH_CYCLES: u64 = 2_000;
const EPOCHS: u64 = 150;

fn run(machines: usize, parallel: bool) -> ClusterSim {
    let mut cfg = ClusterConfig::pairs(machines, WINDOW, PAYLOAD);
    cfg.epoch_cycles = EPOCH_CYCLES;
    let mut sim = ClusterSim::build(&cfg).expect("cluster builds");
    sim.run(EPOCHS, parallel);
    sim
}

fn main() {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "E15 | {} epochs x {EPOCH_CYCLES} cycles, closed-loop window {WINDOW}, payload {PAYLOAD} words, {cores} core(s) available",
        EPOCHS
    );
    if cores == 1 {
        println!("E15 | single-core host: expect speedup ~x1.0 (threading overhead only)");
    }
    for machines in [1usize, 2, 4, 8] {
        // Measure throughput and the two execution strategies once each
        // for the claim lines; the timing harness re-samples below.
        let t0 = Instant::now();
        let seq = run(machines, false);
        let seq_wall = t0.elapsed();
        let t1 = Instant::now();
        let par = run(machines, true);
        let par_wall = t1.elapsed();
        assert_eq!(
            seq.responses(),
            par.responses(),
            "parallel run must match sequential"
        );
        let lat = seq.request_latencies();
        let mean_lat = if lat.is_empty() {
            0.0
        } else {
            lat.iter().sum::<u64>() as f64 / lat.len() as f64
        };
        println!(
            "E15 | {machines} machine(s): {:.0} req/s simulated ({} responses), mean latency {:.0} cycles, fabric {:.3} Mbit/s, speedup x{:.2}",
            seq.requests_per_sec(),
            seq.responses(),
            mean_lat,
            seq.report().fabric_rx_mbps(),
            seq_wall.as_secs_f64() / par_wall.as_secs_f64().max(1e-9),
        );
        bench(&format!("e15/seq/{machines}"), || {
            run(machines, false).responses()
        });
        bench(&format!("e15/par/{machines}"), || {
            run(machines, true).responses()
        });
    }
}
