//! E4 (§7): fast I/O delivers the full 530 Mbit/s memory bandwidth using
//! one quarter of the processor.

use dorado_bench as h;
use dorado_bench::harness::bench;
use dorado_core::TaskingMode;

fn main() {
    println!("E4 | delivered: {:.0} Mbit/s (paper 530)", h::fastio_mbps());
    println!(
        "E4 | processor share: {:.1}% (paper 25%)",
        h::fastio_share(TaskingMode::OnDemand) * 100.0
    );
    bench("e04/fastio_50k_cycles", h::fastio_mbps);
}
