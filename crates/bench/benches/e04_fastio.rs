//! E4 (§7): fast I/O delivers the full 530 Mbit/s memory bandwidth using
//! one quarter of the processor.

use criterion::{criterion_group, criterion_main, Criterion};
use dorado_bench as h;
use dorado_core::TaskingMode;

fn bench(c: &mut Criterion) {
    println!("E4 | delivered: {:.0} Mbit/s (paper 530)", h::fastio_mbps());
    println!(
        "E4 | processor share: {:.1}% (paper 25%)",
        h::fastio_share(TaskingMode::OnDemand) * 100.0
    );
    let mut g = c.benchmark_group("e04");
    g.sample_size(10);
    g.bench_function("fastio_50k_cycles", |b| {
        b.iter(|| std::hint::black_box(h::fastio_mbps()))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
