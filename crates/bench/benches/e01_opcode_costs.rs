//! E1 (§7): microinstructions per macroinstruction, per emulator.
//! Prints the paper-vs-measured rows, then benchmarks the Mesa load path.

use dorado_bench as h;
use dorado_bench::harness::bench;

fn main() {
    let mesa_load = h::mesa_cost(|p| p.ll(0), 64);
    let lisp_load = h::lisp_cost(|p| p.lget(0), 64);
    println!("E1 | Mesa load: {mesa_load:.1} µinst (paper 1-2)");
    println!("E1 | Lisp load: {lisp_load:.1} µinst (paper ≈5)");
    println!(
        "E1 | calls: Mesa {:.0}, Lisp {:.0}, BCPL {:.0} cycles (paper ≈50 / ≈200 / cheap)",
        h::mesa_call_cycles(),
        h::lisp_call_cycles(),
        h::bcpl_call_cycles()
    );
    bench("e01/mesa_load_64", || h::mesa_cost(|p| p.ll(0), 64));
    bench("e01/lisp_load_64", || h::lisp_cost(|p| p.lget(0), 64));
}
