//! E1 (§7): microinstructions per macroinstruction, per emulator.
//! Prints the paper-vs-measured rows, then benchmarks the Mesa load path.

use criterion::{criterion_group, criterion_main, Criterion};
use dorado_bench as h;

fn bench(c: &mut Criterion) {
    let mesa_load = h::mesa_cost(|p| p.ll(0), 64);
    let lisp_load = h::lisp_cost(|p| p.lget(0), 64);
    println!("E1 | Mesa load: {mesa_load:.1} µinst (paper 1-2)");
    println!("E1 | Lisp load: {lisp_load:.1} µinst (paper ≈5)");
    println!(
        "E1 | calls: Mesa {:.0}, Lisp {:.0}, BCPL {:.0} cycles (paper ≈50 / ≈200 / cheap)",
        h::mesa_call_cycles(),
        h::lisp_call_cycles(),
        h::bcpl_call_cycles()
    );
    let mut g = c.benchmark_group("e01");
    g.sample_size(10);
    g.bench_function("mesa_load_64", |b| {
        b.iter(|| std::hint::black_box(h::mesa_cost(|p| p.ll(0), 64)))
    });
    g.bench_function("lisp_load_64", |b| {
        b.iter(|| std::hint::black_box(h::lisp_cost(|p| p.lget(0), 64)))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
