//! E2 (§7): BitBlt bandwidths — simple (erase/scroll) vs complex (merge).

use dorado_bench as h;
use dorado_bench::harness::bench;
use dorado_emu::bitblt::BlitKind;

fn main() {
    for (name, kind, shift, paper) in [
        ("fill", BlitKind::Fill, 0u8, "(fastest)"),
        ("copy", BlitKind::Copy, 0, "≈34 class"),
        ("scroll", BlitKind::ShiftedCopy, 5, "34 Mbit/s"),
        ("merge", BlitKind::Merge, 5, "24 Mbit/s"),
    ] {
        println!(
            "E2 | {name}: {:.1} Mbit/s (paper {paper})",
            h::bitblt_mbps(kind, shift)
        );
    }
    bench("e02/scroll_60x80", || h::bitblt_mbps(BlitKind::ShiftedCopy, 5));
    bench("e02/merge_60x80", || h::bitblt_mbps(BlitKind::Merge, 5));
}
