//! E2 (§7): BitBlt bandwidths — simple (erase/scroll) vs complex (merge).

use criterion::{criterion_group, criterion_main, Criterion};
use dorado_bench as h;
use dorado_emu::bitblt::BlitKind;

fn bench(c: &mut Criterion) {
    for (name, kind, shift, paper) in [
        ("fill", BlitKind::Fill, 0u8, "(fastest)"),
        ("copy", BlitKind::Copy, 0, "≈34 class"),
        ("scroll", BlitKind::ShiftedCopy, 5, "34 Mbit/s"),
        ("merge", BlitKind::Merge, 5, "24 Mbit/s"),
    ] {
        println!("E2 | {name}: {:.1} Mbit/s (paper {paper})", h::bitblt_mbps(kind, shift));
    }
    let mut g = c.benchmark_group("e02");
    g.sample_size(10);
    g.bench_function("scroll_60x80", |b| {
        b.iter(|| std::hint::black_box(h::bitblt_mbps(BlitKind::ShiftedCopy, 5)))
    });
    g.bench_function("merge_60x80", |b| {
        b.iter(|| std::hint::black_box(h::bitblt_mbps(BlitKind::Merge, 5)))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
