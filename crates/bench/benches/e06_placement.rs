//! E6 (§7): automatic placement fills an essentially full microstore
//! (paper: 99.9%; this placer: high nineties).

use criterion::{criterion_group, criterion_main, Criterion};
use dorado_bench as h;

fn bench(c: &mut Criterion) {
    for n in [1000usize, 2000, 3400] {
        println!(
            "E6 | {n} instructions -> {:.2}% utilization (paper 99.9%)",
            h::placement_utilization(n) * 100.0
        );
    }
    let mut g = c.benchmark_group("e06");
    g.sample_size(10);
    g.bench_function("place_3400", |b| {
        b.iter(|| std::hint::black_box(h::placement_utilization(3400)))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
