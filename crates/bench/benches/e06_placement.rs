//! E6 (§7): automatic placement fills an essentially full microstore
//! (paper: 99.9%; this placer: high nineties).

use dorado_bench as h;
use dorado_bench::harness::bench;

fn main() {
    for n in [1000usize, 2000, 3400] {
        println!(
            "E6 | {n} instructions -> {:.2}% utilization (paper 99.9%)",
            h::placement_utilization(n) * 100.0
        );
    }
    bench("e06/place_3400", || h::placement_utilization(3400));
}
