//! E13 (§5.7): Hold converts memory-wait cycles into useful work for
//! higher-priority tasks.

use criterion::{criterion_group, criterion_main, Criterion};
use dorado_bench as h;

fn bench(c: &mut Criterion) {
    let (alone, shared, disp) = h::hold_overlap();
    println!(
        "E13 | emulator alone {alone} instrs; with display {shared} (+{disp} display instrs)"
    );
    println!(
        "E13 | display work recovered from held cycles at only {:.1}% emulator cost",
        (1.0 - shared as f64 / alone as f64) * 100.0
    );
    let mut g = c.benchmark_group("e13");
    g.sample_size(10);
    g.bench_function("overlap", |b| b.iter(|| std::hint::black_box(h::hold_overlap())));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
