//! E13 (§5.7): Hold converts memory-wait cycles into useful work for
//! higher-priority tasks.

use dorado_bench as h;
use dorado_bench::harness::bench;

fn main() {
    let (alone, shared, disp) = h::hold_overlap();
    println!(
        "E13 | emulator alone {alone} instrs; with display {shared} (+{disp} display instrs)"
    );
    println!(
        "E13 | display work recovered from held cycles at only {:.1}% emulator cost",
        (1.0 - shared as f64 / alone as f64) * 100.0
    );
    bench("e13/overlap", h::hold_overlap);
}
