//! E22: what the microcode optimizer buys, per opcode class and per
//! suite.
//!
//! `dorado-uopt` promises bit-identical architectural effect, so its
//! whole value is in two deterministic numbers: *simulated cycles* per
//! opcode-class microbenchmark (hold-shadow scheduling and branch-slot
//! filling shorten hot paths) and *wasted microstore slots* per suite
//! (relay words reclaimed, dead arms deleted).  Each opcode class runs
//! the identical macroprogram on the plain and the optimized image of
//! the same suite; both runs halt, and the architectural end state is
//! asserted equal before any number is reported.
//!
//! ```sh
//! cargo bench -p dorado-bench --bench e22_uopt             # full
//! cargo bench -p dorado-bench --bench e22_uopt -- --quick  # ci-sized
//! cargo bench ... -- --json E22.json   # machine-readable results
//! cargo bench ... -- --gate            # fail unless >= 2 opcode classes improved
//! ```
//!
//! The `--gate` flag is the ci hook: it requires at least two opcode
//! classes to show a nonzero cycles-or-words reduction, proving the
//! optimizer still earns its place in the pipeline.  Set
//! `DORADO_E22_NO_GATE=1` to skip (e.g. while bisecting a pass).

use dorado_base::{VirtAddr, Word};
use dorado_bench::harness::bench;
use dorado_core::Dorado;
use dorado_emu::bcpl::BcplAsm;
use dorado_emu::layout::{GLOBAL_FRAME, SCRATCH};
use dorado_emu::lisp::LispAsm;
use dorado_emu::mesa::{self, MesaAsm};
use dorado_emu::smalltalk::{self, StAsm};
use dorado_emu::suite::{
    build_bcpl, build_bcpl_on, build_lisp, build_lisp_on, build_mesa, build_mesa_on,
    build_smalltalk, build_smalltalk_on, Suite, SuiteBuilder,
};
use dorado_uopt::{optimize, OptReport};

/// One optimized suite plus the account of what changed.
fn optimized(builder: SuiteBuilder) -> (Suite, OptReport) {
    let (modules, program) = builder.program();
    let opt = optimize(&program).expect("suite must optimize ulint-clean");
    (Suite::from_parts(modules, opt.placed), opt.report)
}

fn run_halted(name: &str, mut m: Dorado) -> (u64, Word) {
    assert!(m.run(10_000_000).halted(), "{name}: did not halt");
    let probe = m.memory().read_virt(VirtAddr::new(GLOBAL_FRAME));
    (m.cycles(), probe)
}

/// One opcode class: simulated cycles for the identical program on the
/// plain and the optimized image.
struct Class {
    name: &'static str,
    base: u64,
    opt: u64,
}

impl Class {
    fn measure(
        name: &'static str,
        base_machine: Dorado,
        opt_machine: Dorado,
    ) -> Class {
        let (base, check_b) = run_halted(name, base_machine);
        let (opt, check_o) = run_halted(name, opt_machine);
        assert_eq!(check_b, check_o, "{name}: architectural end state diverged");
        Class { name, base, opt }
    }

    fn improved(&self) -> bool {
        self.opt < self.base
    }
}

fn mesa_classes(reps: usize, out: &mut Vec<Class>) {
    let (suite, report) = optimized(SuiteBuilder::new().with_mesa());
    print_suite("mesa", &report);

    let mut p = MesaAsm::new();
    for _ in 0..reps {
        p.ll(0);
        p.drop_top();
    }
    p.halt();
    let bytes = p.assemble().expect("mesa asm");
    let (base, opt) = (
        build_mesa(&bytes).expect("machine"),
        build_mesa_on(&suite, &bytes).expect("machine"),
    );
    out.push(Class::measure("mesa/load", base, opt));

    let mut p = MesaAsm::new();
    for _ in 0..reps {
        p.lib(1);
        p.lib(2);
        p.call("f", 2);
        p.drop_top();
    }
    p.halt();
    p.label("f");
    p.ll(0);
    p.ll(1);
    p.add();
    p.ret();
    let bytes = p.assemble().expect("mesa asm");
    let b = build_mesa(&bytes).expect("machine");
    let o = build_mesa_on(&suite, &bytes).expect("machine");
    assert_eq!(mesa::tos(&b), mesa::tos(&o), "mesa/call: TOS before run");
    out.push(Class::measure("mesa/call", b, o));
}

fn lisp_classes(reps: usize, out: &mut Vec<Class>) {
    let (suite, report) = optimized(SuiteBuilder::new().with_lisp());
    print_suite("lisp", &report);

    let mut p = LispAsm::new();
    p.push_fix(1);
    for _ in 0..reps {
        p.push_fix(3);
        p.push_fix(9);
        p.cons();
        p.car();
        p.add();
    }
    p.halt();
    let bytes = p.assemble().expect("lisp asm");
    let (base, opt) = (
        build_lisp(&bytes).expect("machine"),
        build_lisp_on(&suite, &bytes).expect("machine"),
    );
    out.push(Class::measure("lisp/cons+car", base, opt));

    let mut p = LispAsm::new();
    for _ in 0..reps.min(64) {
        p.push_fix(1);
        p.push_fix(2);
        p.call("f", 2);
    }
    p.halt();
    p.label("f");
    p.lget(0);
    p.lget(1);
    p.add();
    p.ret();
    let bytes = p.assemble().expect("lisp asm");
    let (base, opt) = (
        build_lisp(&bytes).expect("machine"),
        build_lisp_on(&suite, &bytes).expect("machine"),
    );
    out.push(Class::measure("lisp/call", base, opt));
}

fn bcpl_class(reps: usize, out: &mut Vec<Class>) {
    let (suite, report) = optimized(SuiteBuilder::new().with_bcpl());
    print_suite("bcpl", &report);

    let mut p = BcplAsm::new();
    p.lit(3);
    p.sv(0);
    for _ in 0..reps {
        p.call("double");
    }
    p.lv(0);
    p.halt();
    p.label("double");
    p.lv(0);
    p.lv(0);
    p.add();
    p.sv(0);
    p.ret();
    let bytes = p.assemble().expect("bcpl asm");
    let (base, opt) = (
        build_bcpl(&bytes).expect("machine"),
        build_bcpl_on(&suite, &bytes).expect("machine"),
    );
    out.push(Class::measure("bcpl/call", base, opt));
}

fn smalltalk_class(reps: usize, out: &mut Vec<Class>) {
    let (suite, report) = optimized(SuiteBuilder::new().with_smalltalk());
    print_suite("smalltalk", &report);

    let mut p = StAsm::new();
    p.push_fix(5);
    for _ in 0..reps.min(200) {
        p.push_var(0);
        p.send(7, 0);
        p.add();
    }
    p.halt();
    let target = p.label("m_field");
    p.push_inst(0);
    p.mret();
    let bytes = p.assemble();

    let setup = |mut m: Dorado| -> Dorado {
        smalltalk::define_class(&mut m, SCRATCH, &[(7, target)]);
        smalltalk::define_object(&mut m, SCRATCH + 0x40, SCRATCH, &[11]);
        m.memory_mut()
            .write_virt(VirtAddr::new(GLOBAL_FRAME), (SCRATCH + 0x40) as Word);
        m
    };
    let base = setup(build_smalltalk(&bytes).expect("machine"));
    let opt = setup(build_smalltalk_on(&suite, &bytes).expect("machine"));
    out.push(Class::measure("smalltalk/send", base, opt));
}

fn print_suite(name: &str, r: &OptReport) {
    println!(
        "E22 | {name}: {} rewrites, words {} -> {}, wasted (relays, no-ops) ({}, {}) -> ({}, {})",
        r.rewrites(),
        r.words_before,
        r.words_after,
        r.wasted_before.0,
        r.wasted_before.1,
        r.wasted_after.0,
        r.wasted_after.1,
    );
}

fn main() {
    let mut quick = false;
    let mut gate = false;
    let mut json_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--gate" => gate = true,
            "--json" => json_path = Some(args.next().expect("--json needs a path")),
            s if s.starts_with("--json=") => json_path = Some(s["--json=".len()..].to_string()),
            "--bench" => {} // cargo bench passes this through
            other => panic!("unknown argument `{other}`"),
        }
    }
    let reps = if quick { 64 } else { 512 };
    println!(
        "E22 | opcode classes at {reps} reps{}",
        if quick { " (quick)" } else { "" }
    );

    let mut classes = Vec::new();
    mesa_classes(reps, &mut classes);
    lisp_classes(reps, &mut classes);
    bcpl_class(reps, &mut classes);
    smalltalk_class(reps, &mut classes);

    for c in &classes {
        let delta = c.base as i64 - c.opt as i64;
        let pct = delta as f64 * 100.0 / c.base.max(1) as f64;
        println!(
            "E22 | {:<16} {:>9} -> {:>9} cycles ({delta:+} = {pct:+.2}%)",
            c.name, c.base, c.opt
        );
    }
    let improved = classes.iter().filter(|c| c.improved()).count();
    println!(
        "E22 | {improved}/{} opcode classes improved on the optimized image",
        classes.len()
    );

    // How long the optimizer itself takes on the richest suite.
    bench("e22/optimize_everything", || {
        let (_, program) = SuiteBuilder::everything().program();
        optimize(&program).expect("optimizes").report.rewrites()
    });

    if let Some(path) = &json_path {
        let mut body = String::new();
        for c in &classes {
            let key = c.name.replace(['/', '+'], "_");
            body.push_str(&format!(
                "  \"{key}_base\": {},\n  \"{key}_opt\": {},\n",
                c.base, c.opt
            ));
        }
        let json = format!(
            "{{\n  \"schema\": \"dorado-e22-v1\",\n  \"quick\": {quick},\n{body}  \"classes_improved\": {improved}\n}}\n"
        );
        std::fs::write(path, json).expect("write results json");
        println!("E22 | wrote {path}");
    }

    if gate {
        if std::env::var("DORADO_E22_NO_GATE").is_ok_and(|v| v == "1") {
            println!("E22 | gate skipped (DORADO_E22_NO_GATE=1)");
            return;
        }
        if improved < 2 {
            eprintln!(
                "E22 | gate FAIL: only {improved} opcode class(es) improved (need >= 2); \
                 the optimizer no longer pays for itself — fix the regressed pass or set \
                 DORADO_E22_NO_GATE=1 while bisecting"
            );
            std::process::exit(1);
        }
        println!("E22 | gate passed ({improved} classes improved)");
    }
}
