//! E9 (§5.6): the Model-0 bypassing ablation — the same logical microcode
//! without bypass hardware needs padding and runs measurably slower.

use criterion::{criterion_group, criterion_main, Criterion};
use dorado_bench as h;

fn bench(c: &mut Criterion) {
    let (with, without) = h::bypass_cycles();
    println!(
        "E9 | with bypass {with} cycles; Model 0 {without} cycles ({:.2}x)",
        without as f64 / with as f64
    );
    let mut g = c.benchmark_group("e09");
    g.sample_size(10);
    g.bench_function("both_machines", |b| {
        b.iter(|| std::hint::black_box(h::bypass_cycles()))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
