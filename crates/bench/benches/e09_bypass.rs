//! E9 (§5.6): the Model-0 bypassing ablation — the same logical microcode
//! without bypass hardware needs padding and runs measurably slower.

use dorado_bench as h;
use dorado_bench::harness::bench;

fn main() {
    let (with, without) = h::bypass_cycles();
    println!(
        "E9 | with bypass {with} cycles; Model 0 {without} cycles ({:.2}x)",
        without as f64 / with as f64
    );
    bench("e09/both_machines", h::bypass_cycles);
}
