//! E3 (§7): the 10 Mbit/s disk consumes 5% of the processor; share scales
//! with device rate.

use criterion::{criterion_group, criterion_main, Criterion};
use dorado_bench as h;

fn bench(c: &mut Criterion) {
    for mbps in [5.0, 10.0, 20.0, 40.0] {
        println!(
            "E3 | {mbps:>4.0} Mbit/s device -> {:.1}% of the processor (paper: 5% at 10)",
            h::slow_io_share(mbps) * 100.0
        );
    }
    let mut g = c.benchmark_group("e03");
    g.sample_size(10);
    g.bench_function("share_at_10mbps", |b| {
        b.iter(|| std::hint::black_box(h::slow_io_share(10.0)))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
