//! E3 (§7): the 10 Mbit/s disk consumes 5% of the processor; share scales
//! with device rate.

use dorado_bench as h;
use dorado_bench::harness::bench;

fn main() {
    for mbps in [5.0, 10.0, 20.0, 40.0] {
        println!(
            "E3 | {mbps:>4.0} Mbit/s device -> {:.1}% of the processor (paper: 5% at 10)",
            h::slow_io_share(mbps) * 100.0
        );
    }
    bench("e03/share_at_10mbps", || h::slow_io_share(10.0));
}
