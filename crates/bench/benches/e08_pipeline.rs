//! E8 (Figures 2 & 3): pipeline timings are asserted in
//! `tests/pipeline_timing.rs`; this bench measures raw simulator speed
//! (host time per simulated microcycle) on the pipelined machine.

use dorado_bench as h;
use dorado_bench::harness::bench;

fn main() {
    bench("e08/simulate_100k_cycles", || {
        let mut m = h::mesa_machine_for_throughput();
        let _ = m.run(100_000);
        m.stats().cycles
    });
}
