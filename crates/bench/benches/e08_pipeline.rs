//! E8 (Figures 2 & 3): pipeline timings are asserted in
//! `tests/pipeline_timing.rs`; this bench measures raw simulator speed
//! (host instructions per simulated microcycle) on the pipelined machine.

use criterion::{criterion_group, criterion_main, Criterion};
use dorado_bench as h;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e08");
    g.sample_size(10);
    g.bench_function("simulate_100k_cycles", |b| {
        b.iter_batched(
            h::mesa_machine_for_throughput,
            |mut m| {
                let _ = m.run(100_000);
                std::hint::black_box(m.stats().cycles)
            },
            criterion::BatchSize::LargeInput,
        )
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
