//! The epoch-based executor: N machines, one fabric, bit-identical results
//! whether the machines run on one thread or N.
//!
//! Time advances in fixed *epochs* of `epoch_cycles` microcycles.  Within
//! an epoch every machine runs independently; packets a machine transmits
//! are drained at the epoch boundary, stamped with the boundary cycle, and
//! injected at their destination only once their fabric flight time has
//! elapsed — always at a later boundary.  Because no machine can observe
//! another mid-epoch, the parallel schedule and the sequential schedule
//! compute the same thing, and [`run_parallel`] is asserted bit-identical
//! to [`run_sequential`] by the determinism test.
//!
//! Each epoch has three phases separated by barriers:
//!
//! 1. **run** — every machine executes its quantum ([`Dorado::run_quantum`]);
//! 2. **send** — every machine drains its [`NetworkController`] transcript
//!    into the fabric (per-source order preserved; cross-source
//!    interleaving is irrelevant by the fabric's ordering contract);
//! 3. **collect** — every machine takes the packets now due at its port
//!    and injects them into its controller.
//!
//! The third barrier keeps a fast thread's epoch-*e+1* sends out of a slow
//! thread's epoch-*e* queue-cap accounting.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Barrier, Mutex};

use dorado_base::Word;
use dorado_core::Dorado;
use dorado_io::NetworkController;

use crate::fabric::Fabric;

/// How long to run, in epochs of a fixed cycle quantum.
#[derive(Debug, Clone, Copy)]
pub struct EpochConfig {
    /// Microcycles per epoch (also the fabric timestamp granularity).
    pub epoch_cycles: u64,
    /// Number of epochs.
    pub epochs: u64,
}

fn net(m: &mut Dorado) -> &mut NetworkController {
    m.device_mut::<NetworkController>("network")
        .expect("cluster machines carry a network controller")
}

fn exchange(m: &mut Dorado, port: usize, fabric: &mut Fabric, now: u64, phase_send: bool) {
    if phase_send {
        for pkt in net(m).drain_transmitted() {
            fabric.send(port, pkt, now);
        }
    } else {
        let packets = fabric.collect_for_port(port, now);
        // Only reach into the machine when something actually arrived:
        // the device lookup forces the controller awake for a cycle
        // (host access is opaque to the event-horizon scheduler), and an
        // idle machine should stay skippable.
        if !packets.is_empty() {
            let controller = net(m);
            for pkt in packets {
                controller.inject_packet(pkt);
            }
        }
    }
}

/// A deterministic packet fault injector for [`run_sequential_mangled`]:
/// called in the send phase with the boundary cycle, the source port, and
/// the outbound packet (mutable, so it can corrupt words in place).
/// Return `false` to drop the packet on the wire — it never reaches the
/// fabric, so no port is charged and no delivery happens.
pub type Mangle<'a> = &'a mut dyn FnMut(u64, usize, &mut Vec<Word>) -> bool;

/// Runs every machine for `cfg.epochs` epochs on the calling thread.
/// Machine *i* owns fabric port *i*.  `start_cycle` is the fabric
/// timestamp of the first boundary minus one epoch (pass the value a
/// previous call returned to continue).  Returns the final fabric time —
/// early, without the remaining epochs, once every machine has halted
/// (a halted machine's quantum is an instant no-op, so running on would
/// spin through the remaining epochs doing nothing).
pub fn run_sequential(
    machines: &mut [Dorado],
    fabric: &mut Fabric,
    cfg: EpochConfig,
    start_cycle: u64,
) -> u64 {
    run_sequential_mangled(machines, fabric, cfg, start_cycle, &mut |_, _, _| true)
}

/// [`run_sequential`] with a fault injector applied to every outbound
/// packet in the send phase.  `run_sequential(..)` is exactly
/// `run_sequential_mangled(.., &mut |_, _, _| true)`.
pub fn run_sequential_mangled(
    machines: &mut [Dorado],
    fabric: &mut Fabric,
    cfg: EpochConfig,
    start_cycle: u64,
    mangle: Mangle<'_>,
) -> u64 {
    assert_eq!(machines.len(), fabric.ports(), "one machine per port");
    let mut now = start_cycle;
    for _ in 0..cfg.epochs {
        if !machines.is_empty() && machines.iter().all(Dorado::halted) {
            break;
        }
        now += cfg.epoch_cycles;
        for m in machines.iter_mut() {
            m.run_quantum(cfg.epoch_cycles);
        }
        for (port, m) in machines.iter_mut().enumerate() {
            for mut pkt in net(m).drain_transmitted() {
                if mangle(now, port, &mut pkt) {
                    fabric.send(port, pkt, now);
                }
            }
        }
        for (port, m) in machines.iter_mut().enumerate() {
            exchange(m, port, fabric, now, false);
        }
    }
    now
}

/// Like [`run_sequential`], but each machine runs on its own OS thread;
/// the fabric is shared behind a mutex and the phases are separated by
/// barriers.  Produces bit-identical machine statistics and fabric
/// counters, and terminates at the same (possibly early) fabric time when
/// every machine has halted: each epoch opens with a halt census, and all
/// threads leave together once the census reaches the machine count.
pub fn run_parallel(
    machines: &mut [Dorado],
    fabric: &mut Fabric,
    cfg: EpochConfig,
    start_cycle: u64,
) -> u64 {
    assert_eq!(machines.len(), fabric.ports(), "one machine per port");
    if machines.is_empty() {
        return start_cycle + cfg.epochs * cfg.epoch_cycles;
    }
    let count = machines.len();
    let barrier = Barrier::new(count);
    let shared = Mutex::new(fabric);
    // Halt census for the epoch being entered, and the agreed final time.
    let census = AtomicUsize::new(0);
    let finished_at = AtomicU64::new(start_cycle + cfg.epochs * cfg.epoch_cycles);
    std::thread::scope(|s| {
        for (port, m) in machines.iter_mut().enumerate() {
            let barrier = &barrier;
            let shared = &shared;
            let census = &census;
            let finished_at = &finished_at;
            s.spawn(move || {
                let mut now = start_cycle;
                for _ in 0..cfg.epochs {
                    if m.halted() {
                        census.fetch_add(1, Ordering::SeqCst);
                    }
                    barrier.wait();
                    let all_halted = census.load(Ordering::SeqCst) == count;
                    barrier.wait();
                    // Port 0 resets the census; its store is ordered
                    // before everyone's next census increment by the run
                    // barrier below, which port 0 must also pass.
                    if port == 0 {
                        census.store(0, Ordering::SeqCst);
                        if all_halted {
                            finished_at.store(now, Ordering::SeqCst);
                        }
                    }
                    if all_halted {
                        break;
                    }
                    now += cfg.epoch_cycles;
                    m.run_quantum(cfg.epoch_cycles);
                    barrier.wait();
                    exchange(m, port, &mut shared.lock().unwrap(), now, true);
                    barrier.wait();
                    exchange(m, port, &mut shared.lock().unwrap(), now, false);
                    barrier.wait();
                }
            });
        }
    });
    finished_at.load(Ordering::SeqCst)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fabric::FabricConfig;
    use dorado_emu::layout::{IOA_NET, TASK_EMU, TASK_NET};
    use dorado_emu::SuiteBuilder;

    #[test]
    fn empty_cluster_advances_time() {
        let mut fabric = Fabric::new(&FabricConfig::default(), vec![]);
        let cfg = EpochConfig {
            epoch_cycles: 100,
            epochs: 7,
        };
        assert_eq!(run_sequential(&mut [], &mut fabric, cfg, 50), 750);
        assert_eq!(run_parallel(&mut [], &mut fabric, cfg, 50), 750);
    }

    /// Machines that halt on their first instruction (the suite's trap
    /// handler), each carrying a network controller.
    fn halting_cluster(n: usize) -> (Vec<Dorado>, Fabric) {
        let suite = SuiteBuilder::new().assemble().unwrap();
        let machines = (0..n)
            .map(|_| {
                suite
                    .machine()
                    .device(Box::new(NetworkController::new(TASK_NET)), IOA_NET, 4)
                    .wire_ioaddress(TASK_NET, IOA_NET)
                    .task_entry(TASK_EMU, "trap")
                    .build()
                    .unwrap()
            })
            .collect();
        let addresses = (0..n).map(|i| 0x100 + i as Word).collect();
        (machines, Fabric::new(&FabricConfig::default(), addresses))
    }

    #[test]
    fn all_halted_cluster_terminates_early() {
        let cfg = EpochConfig {
            epoch_cycles: 500,
            epochs: 1_000_000,
        };
        let (mut seq_machines, mut seq_fabric) = halting_cluster(3);
        let t_seq = run_sequential(&mut seq_machines, &mut seq_fabric, cfg, 0);
        assert_eq!(
            t_seq, 500,
            "everyone halts during epoch 1; census fires at epoch 2"
        );
        assert!(seq_machines.iter().all(Dorado::halted));

        let (mut par_machines, mut par_fabric) = halting_cluster(3);
        let t_par = run_parallel(&mut par_machines, &mut par_fabric, cfg, 0);
        assert_eq!(t_par, t_seq, "both executors agree on the final time");
        for (a, b) in seq_machines.iter().zip(&par_machines) {
            assert_eq!(a.cycles(), b.cycles());
        }
    }
}
