//! The epoch-based executors: N machines, one fabric, bit-identical
//! results whether the machines run on one thread, N threads, or a fixed
//! worker pool.
//!
//! Time advances in fixed *epochs* of `epoch_cycles` microcycles.  Within
//! an epoch every machine runs independently; packets a machine transmits
//! are drained at the epoch boundary, stamped with the boundary cycle, and
//! injected at their destination only once their fabric flight time has
//! elapsed — always at a later boundary.  Because no machine can observe
//! another mid-epoch, every schedule of the per-machine work computes the
//! same thing, and both parallel executors are asserted bit-identical to
//! [`run_sequential`] by the determinism tests.
//!
//! Each epoch has three phases separated by barriers:
//!
//! 1. **run** — every machine executes its quantum ([`Dorado::run_quantum`]);
//! 2. **send** — every machine's [`NetworkController`] transcript drains
//!    into the fabric (per-source order preserved; cross-source
//!    interleaving is irrelevant by the fabric's ordering contract);
//! 3. **collect** — every machine takes the packets now due at its port
//!    and injects them into its controller.
//!
//! The barrier between send and collect keeps a fast machine's epoch-*e+1*
//! sends out of a slow machine's epoch-*e* queue-cap accounting.
//!
//! Two parallel strategies implement that contract:
//!
//! * [`run_parallel`] — the legacy *thread-per-machine* executor: one OS
//!   thread per machine, every thread crossing every barrier.  It stops
//!   scaling the moment machines outnumber cores: a 256-machine cluster
//!   on an N-core host pays 256-way barrier convoys and context-switch
//!   storms per epoch.
//! * [`run_pool`] — the production *work-stealing pool* executor: a fixed
//!   pool of workers (defaulting to the host parallelism) pulls machine
//!   indices from a shared injector each phase, so load balances across
//!   heterogeneous machines, idle (halted) machines cost one compare, and
//!   only `workers` threads ever cross a barrier.  The per-epoch fabric
//!   exchange is sharded per port (see [`Fabric`]): collects run in
//!   parallel on disjoint shards, while sends are ingested serially in
//!   port order by the coordinator — which is also where the
//!   [`Mangle`] fault hook runs, keyed by `(epoch boundary, port)` and
//!   therefore independent of thread timing.
//!
//! [`NetworkController`]: dorado_io::NetworkController

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Barrier, Mutex};

use dorado_base::Word;
use dorado_core::Dorado;
use dorado_io::NetworkController;

use crate::fabric::Fabric;

/// How long to run, in epochs of a fixed cycle quantum.
#[derive(Debug, Clone, Copy)]
pub struct EpochConfig {
    /// Microcycles per epoch (also the fabric timestamp granularity).
    pub epoch_cycles: u64,
    /// Number of epochs.
    pub epochs: u64,
}

/// Which executor drives the cluster — all three produce identical
/// simulated results; they differ only in wall-clock strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Exec {
    /// Everything on the calling thread: the reference oracle.
    Sequential,
    /// The legacy thread-per-machine executor (one OS thread per machine).
    Threads,
    /// The work-stealing pool executor with this many workers; `0` means
    /// one worker per available hardware core.  The worker count never
    /// exceeds the machine count, and `Pool(1)` spawns no threads at all.
    Pool(usize),
}

impl Exec {
    /// The worker count a [`Exec::Pool`] request resolves to for
    /// `machines` machines on this host.
    pub fn pool_workers(requested: usize, machines: usize) -> usize {
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        let want = if requested == 0 { cores } else { requested };
        want.clamp(1, machines.max(1))
    }
}

fn net(m: &mut Dorado) -> &mut NetworkController {
    m.device_mut::<NetworkController>("network")
        .expect("cluster machines carry a network controller")
}

/// Whether the machine's controller holds transmitted packets awaiting a
/// drain.  A frozen read through the immutable device registry: unlike
/// [`Dorado::device_mut`], it does not force the controller awake, so a
/// machine that sent nothing this epoch stays skippable to the
/// event-horizon scheduler.
fn tx_pending(m: &Dorado) -> bool {
    m.io()
        .device_by_name("network")
        .is_some_and(dorado_io::Device::tx_pending)
}

/// A deterministic packet fault injector for the mangled executors:
/// called in the send phase with the boundary cycle, the source port, and
/// the outbound packet (mutable, so it can corrupt words in place).
/// Return `false` to drop the packet on the wire — it never reaches the
/// fabric, so no port is charged and no delivery happens.  Every executor
/// invokes the hook serially in `(boundary cycle, port)` order, so the
/// fault schedule is a pure function of the simulation, never of thread
/// timing.
pub type Mangle<'a> = &'a mut dyn FnMut(u64, usize, &mut Vec<Word>) -> bool;

/// Drains one machine's transmit transcript into the fabric, applying the
/// fault hook.  Shared by the sequential executor and the pool
/// coordinator (both call it in port order).
fn drain_into_fabric(
    m: &mut Dorado,
    port: usize,
    fabric: &Fabric,
    now: u64,
    mangle: &mut dyn FnMut(u64, usize, &mut Vec<Word>) -> bool,
) {
    if !tx_pending(m) {
        return;
    }
    for (stamp, mut pkt) in net(m).drain_transmitted_stamped() {
        if mangle(now, port, &mut pkt) {
            fabric.send_stamped(port, pkt, now, stamp);
        }
    }
}

/// Delivers the packets due at `port` into the machine's controller.
/// Reaches into the machine only when something actually arrived: the
/// mutable device lookup forces the controller awake for a cycle (host
/// access is opaque to the event-horizon scheduler), and an idle machine
/// should stay skippable.
fn deliver_due(m: &mut Dorado, port: usize, fabric: &Fabric, now: u64) {
    let packets = fabric.collect_for_port(port, now);
    if !packets.is_empty() {
        let controller = net(m);
        for pkt in packets {
            controller.inject_packet(pkt);
        }
    }
}

/// Runs every machine for `cfg.epochs` epochs on the calling thread.
/// Machine *i* owns fabric port *i*.  `start_cycle` is the fabric
/// timestamp of the first boundary minus one epoch (pass the value a
/// previous call returned to continue).  Returns the final fabric time —
/// early, without the remaining epochs, once every machine has halted
/// (a halted machine's quantum is an instant no-op, so running on would
/// spin through the remaining epochs doing nothing).
pub fn run_sequential(
    machines: &mut [Dorado],
    fabric: &mut Fabric,
    cfg: EpochConfig,
    start_cycle: u64,
) -> u64 {
    run_sequential_mangled(machines, fabric, cfg, start_cycle, &mut |_, _, _| true)
}

/// [`run_sequential`] with a fault injector applied to every outbound
/// packet in the send phase.  `run_sequential(..)` is exactly
/// `run_sequential_mangled(.., &mut |_, _, _| true)`.
pub fn run_sequential_mangled(
    machines: &mut [Dorado],
    fabric: &mut Fabric,
    cfg: EpochConfig,
    start_cycle: u64,
    mangle: Mangle<'_>,
) -> u64 {
    assert_eq!(machines.len(), fabric.ports(), "one machine per port");
    let mut now = start_cycle;
    for _ in 0..cfg.epochs {
        if !machines.is_empty() && machines.iter().all(Dorado::halted) {
            break;
        }
        now += cfg.epoch_cycles;
        for m in machines.iter_mut() {
            m.run_quantum(cfg.epoch_cycles);
        }
        for (port, m) in machines.iter_mut().enumerate() {
            drain_into_fabric(m, port, fabric, now, mangle);
        }
        for (port, m) in machines.iter_mut().enumerate() {
            deliver_due(m, port, fabric, now);
        }
    }
    now
}

/// Like [`run_sequential`], but each machine runs on its own OS thread,
/// with the phases separated by whole-cluster barriers.  Produces
/// bit-identical machine statistics and fabric counters, and terminates at
/// the same (possibly early) fabric time when every machine has halted:
/// each epoch opens with a halt census, and all threads leave together
/// once the census reaches the machine count.
///
/// This is the legacy executor kept as a comparison point; it burns one
/// OS thread per machine and convoys every epoch behind the slowest of
/// them.  Prefer [`run_pool`], which is bit-identical to both.
pub fn run_parallel(
    machines: &mut [Dorado],
    fabric: &mut Fabric,
    cfg: EpochConfig,
    start_cycle: u64,
) -> u64 {
    assert_eq!(machines.len(), fabric.ports(), "one machine per port");
    if machines.is_empty() {
        return start_cycle + cfg.epochs * cfg.epoch_cycles;
    }
    let count = machines.len();
    let barrier = Barrier::new(count);
    // Halt census for the epoch being entered, and the agreed final time.
    let census = AtomicUsize::new(0);
    let finished_at = AtomicU64::new(start_cycle + cfg.epochs * cfg.epoch_cycles);
    let shared: &Fabric = fabric;
    std::thread::scope(|s| {
        for (port, m) in machines.iter_mut().enumerate() {
            let barrier = &barrier;
            let census = &census;
            let finished_at = &finished_at;
            s.spawn(move || {
                let mut now = start_cycle;
                for _ in 0..cfg.epochs {
                    if m.halted() {
                        census.fetch_add(1, Ordering::SeqCst);
                    }
                    barrier.wait();
                    let all_halted = census.load(Ordering::SeqCst) == count;
                    barrier.wait();
                    // Port 0 resets the census; its store is ordered
                    // before everyone's next census increment by the run
                    // barrier below, which port 0 must also pass.
                    if port == 0 {
                        census.store(0, Ordering::SeqCst);
                        if all_halted {
                            finished_at.store(now, Ordering::SeqCst);
                        }
                    }
                    if all_halted {
                        break;
                    }
                    now += cfg.epoch_cycles;
                    m.run_quantum(cfg.epoch_cycles);
                    barrier.wait();
                    // Sends from different sources interleave freely: the
                    // fabric's sharded locks and ordering contract make
                    // cross-source order unobservable.
                    drain_into_fabric(m, port, shared, now, &mut |_, _, _| true);
                    barrier.wait();
                    deliver_due(m, port, shared, now);
                    barrier.wait();
                }
            });
        }
    });
    finished_at.load(Ordering::SeqCst)
}

/// One machine's slot in the pool executor: the machine itself plus the
/// outbox its claimant fills during the run phase.  The mutex is never
/// contended — the injector hands each index to exactly one worker per
/// phase — it exists to hand `&mut` access across the pool safely.
struct Slot<'m> {
    machine: &'m mut Dorado,
    outbox: Vec<(u64, Vec<Word>)>,
}

/// The run phase, as executed by every pool member: claim machine indices
/// from the shared injector until it runs dry; run each claimed machine's
/// quantum, census it if halted, and drain its transmit transcript into
/// its outbox.  A halted machine costs one compare and one fetch-add.
fn pool_run_phase(
    slots: &[Mutex<Slot<'_>>],
    claim: &AtomicUsize,
    census: &AtomicUsize,
    epoch_cycles: u64,
) {
    loop {
        let i = claim.fetch_add(1, Ordering::Relaxed);
        let Some(slot) = slots.get(i) else { break };
        let slot = &mut *slot.lock().expect("pool slot lock");
        if slot.machine.halted() {
            census.fetch_add(1, Ordering::Relaxed);
            continue;
        }
        slot.machine.run_quantum(epoch_cycles);
        if slot.machine.halted() {
            census.fetch_add(1, Ordering::Relaxed);
        }
        if tx_pending(slot.machine) {
            debug_assert!(slot.outbox.is_empty(), "outbox drained every epoch");
            slot.outbox = net(slot.machine).drain_transmitted_stamped();
        }
    }
}

/// The collect phase: claim port indices, pull each port's due packets
/// from its fabric shard (disjoint per port, so collects parallelize),
/// and inject them into the owning machine.  Ports with nothing in
/// flight never touch their machine.
fn pool_collect_phase(slots: &[Mutex<Slot<'_>>], fabric: &Fabric, claim: &AtomicUsize, now: u64) {
    loop {
        let port = claim.fetch_add(1, Ordering::Relaxed);
        let Some(slot) = slots.get(port) else { break };
        let packets = fabric.collect_for_port(port, now);
        if packets.is_empty() {
            continue;
        }
        let slot = &mut *slot.lock().expect("pool slot lock");
        let controller = net(slot.machine);
        for pkt in packets {
            controller.inject_packet(pkt);
        }
    }
}

/// Runs the cluster on a fixed pool of `workers` worker threads (`0` =
/// host parallelism), bit-identical to [`run_sequential`] for *any* pool
/// size.  See the module docs for the phase protocol; the short version:
///
/// * machines are `Send` jobs claimed from a shared atomic injector each
///   phase, so `--machines 256` runs on ~N threads of an N-core host;
/// * the calling thread is the coordinator *and* a full pool member —
///   `Pool(1)` spawns no threads and degenerates to the sequential loop;
/// * fabric sends are ingested serially in port order between the run and
///   collect barriers, which is what makes the result independent of
///   which worker ran which machine;
/// * fabric collects run in parallel over the per-port shards.
pub fn run_pool(
    machines: &mut [Dorado],
    fabric: &mut Fabric,
    cfg: EpochConfig,
    start_cycle: u64,
    workers: usize,
) -> u64 {
    run_pool_mangled(machines, fabric, cfg, start_cycle, workers, &mut |_, _, _| true)
}

/// [`run_pool`] with a fault injector applied to every outbound packet in
/// the send phase.  The hook runs on the coordinator thread, serially in
/// `(boundary, port)` order — exactly the schedule
/// [`run_sequential_mangled`] uses — so a seeded
/// [`PacketMangler`](crate::inject::PacketMangler) produces the same
/// fault pattern under either executor.
pub fn run_pool_mangled(
    machines: &mut [Dorado],
    fabric: &mut Fabric,
    cfg: EpochConfig,
    start_cycle: u64,
    workers: usize,
    mangle: Mangle<'_>,
) -> u64 {
    assert_eq!(machines.len(), fabric.ports(), "one machine per port");
    if machines.is_empty() {
        return start_cycle + cfg.epochs * cfg.epoch_cycles;
    }
    let count = machines.len();
    let workers = Exec::pool_workers(workers, count);
    // Halt state at the top of the first epoch; afterwards the run-phase
    // census maintains it (halt flags only move inside run_quantum).
    let mut halted_now = machines.iter().filter(|m| m.halted()).count();
    let slots: Vec<Mutex<Slot<'_>>> = machines
        .iter_mut()
        .map(|machine| {
            Mutex::new(Slot {
                machine,
                outbox: Vec::new(),
            })
        })
        .collect();
    let barrier = Barrier::new(workers);
    let run_claim = AtomicUsize::new(0);
    let collect_claim = AtomicUsize::new(0);
    let census = AtomicUsize::new(0);
    let done = AtomicBool::new(false);
    let boundary = AtomicU64::new(start_cycle);
    let fabric: &Fabric = fabric;
    let mut now = start_cycle;
    std::thread::scope(|s| {
        for _ in 1..workers {
            let (slots, barrier) = (&slots, &barrier);
            let (run_claim, collect_claim) = (&run_claim, &collect_claim);
            let (census, done, boundary) = (&census, &done, &boundary);
            s.spawn(move || loop {
                barrier.wait(); // epoch start (or shutdown release)
                if done.load(Ordering::SeqCst) {
                    break;
                }
                pool_run_phase(slots, run_claim, census, cfg.epoch_cycles);
                barrier.wait(); // run end: coordinator ingests sends
                barrier.wait(); // send end
                pool_collect_phase(slots, fabric, collect_claim, boundary.load(Ordering::SeqCst));
                barrier.wait(); // collect end: coordinator's bookkeeping window
            });
        }
        // The coordinator: same phases as the workers, plus the serial
        // bookkeeping between the collect-end and epoch-start barriers.
        for _ in 0..cfg.epochs {
            if halted_now == count {
                break;
            }
            now += cfg.epoch_cycles;
            boundary.store(now, Ordering::SeqCst);
            run_claim.store(0, Ordering::SeqCst);
            collect_claim.store(0, Ordering::SeqCst);
            census.store(0, Ordering::SeqCst);
            barrier.wait(); // epoch start
            pool_run_phase(&slots, &run_claim, &census, cfg.epoch_cycles);
            barrier.wait(); // run end
            // Serial send phase, in port order: determinism (and the
            // mangle schedule) must not depend on which worker drained
            // which machine.  The slot locks are uncontended here — every
            // worker is parked at the send-end barrier.
            for (port, slot) in slots.iter().enumerate() {
                let slot = &mut *slot.lock().expect("pool slot lock");
                if slot.outbox.is_empty() {
                    continue;
                }
                for (stamp, mut pkt) in slot.outbox.drain(..) {
                    if mangle(now, port, &mut pkt) {
                        fabric.send_stamped(port, pkt, now, stamp);
                    }
                }
            }
            barrier.wait(); // send end
            pool_collect_phase(&slots, fabric, &collect_claim, now);
            barrier.wait(); // collect end
            halted_now = census.load(Ordering::SeqCst);
        }
        done.store(true, Ordering::SeqCst);
        barrier.wait(); // release workers into shutdown
    });
    now
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fabric::FabricConfig;
    use dorado_emu::layout::{IOA_NET, TASK_EMU, TASK_NET};
    use dorado_emu::SuiteBuilder;

    #[test]
    fn empty_cluster_advances_time() {
        let mut fabric = Fabric::new(&FabricConfig::default(), vec![]);
        let cfg = EpochConfig {
            epoch_cycles: 100,
            epochs: 7,
        };
        assert_eq!(run_sequential(&mut [], &mut fabric, cfg, 50), 750);
        assert_eq!(run_parallel(&mut [], &mut fabric, cfg, 50), 750);
        assert_eq!(run_pool(&mut [], &mut fabric, cfg, 50, 4), 750);
    }

    /// Machines that halt on their first instruction (the suite's trap
    /// handler), each carrying a network controller.
    fn halting_cluster(n: usize) -> (Vec<Dorado>, Fabric) {
        let suite = SuiteBuilder::new().assemble().unwrap();
        let machines = (0..n)
            .map(|_| {
                suite
                    .machine()
                    .device(Box::new(NetworkController::new(TASK_NET)), IOA_NET, 4)
                    .wire_ioaddress(TASK_NET, IOA_NET)
                    .task_entry(TASK_EMU, "trap")
                    .build()
                    .unwrap()
            })
            .collect();
        let addresses = (0..n).map(|i| 0x100 + i as Word).collect();
        (machines, Fabric::new(&FabricConfig::default(), addresses))
    }

    #[test]
    fn all_halted_cluster_terminates_early() {
        let cfg = EpochConfig {
            epoch_cycles: 500,
            epochs: 1_000_000,
        };
        let (mut seq_machines, mut seq_fabric) = halting_cluster(3);
        let t_seq = run_sequential(&mut seq_machines, &mut seq_fabric, cfg, 0);
        assert_eq!(
            t_seq, 500,
            "everyone halts during epoch 1; census fires at epoch 2"
        );
        assert!(seq_machines.iter().all(Dorado::halted));

        let (mut par_machines, mut par_fabric) = halting_cluster(3);
        let t_par = run_parallel(&mut par_machines, &mut par_fabric, cfg, 0);
        assert_eq!(t_par, t_seq, "both executors agree on the final time");
        for (a, b) in seq_machines.iter().zip(&par_machines) {
            assert_eq!(a.cycles(), b.cycles());
        }

        for pool in [1, 2, 8] {
            let (mut pool_machines, mut pool_fabric) = halting_cluster(3);
            let t_pool = run_pool(&mut pool_machines, &mut pool_fabric, cfg, 0, pool);
            assert_eq!(t_pool, t_seq, "pool({pool}) agrees on the final time");
            for (a, b) in seq_machines.iter().zip(&pool_machines) {
                assert_eq!(a.cycles(), b.cycles());
            }
        }
    }

    #[test]
    fn pool_worker_resolution_clamps() {
        assert_eq!(Exec::pool_workers(4, 2), 2, "never more workers than machines");
        assert_eq!(Exec::pool_workers(4, 100), 4);
        assert_eq!(Exec::pool_workers(1, 100), 1);
        assert!(Exec::pool_workers(0, 100) >= 1, "auto resolves to >= 1");
    }
}
