//! The epoch-based executor: N machines, one fabric, bit-identical results
//! whether the machines run on one thread or N.
//!
//! Time advances in fixed *epochs* of `epoch_cycles` microcycles.  Within
//! an epoch every machine runs independently; packets a machine transmits
//! are drained at the epoch boundary, stamped with the boundary cycle, and
//! injected at their destination only once their fabric flight time has
//! elapsed — always at a later boundary.  Because no machine can observe
//! another mid-epoch, the parallel schedule and the sequential schedule
//! compute the same thing, and [`run_parallel`] is asserted bit-identical
//! to [`run_sequential`] by the determinism test.
//!
//! Each epoch has three phases separated by barriers:
//!
//! 1. **run** — every machine executes its quantum ([`Dorado::run_quantum`]);
//! 2. **send** — every machine drains its [`NetworkController`] transcript
//!    into the fabric (per-source order preserved; cross-source
//!    interleaving is irrelevant by the fabric's ordering contract);
//! 3. **collect** — every machine takes the packets now due at its port
//!    and injects them into its controller.
//!
//! The third barrier keeps a fast thread's epoch-*e+1* sends out of a slow
//! thread's epoch-*e* queue-cap accounting.

use std::sync::{Barrier, Mutex};

use dorado_core::Dorado;
use dorado_io::NetworkController;

use crate::fabric::Fabric;

/// How long to run, in epochs of a fixed cycle quantum.
#[derive(Debug, Clone, Copy)]
pub struct EpochConfig {
    /// Microcycles per epoch (also the fabric timestamp granularity).
    pub epoch_cycles: u64,
    /// Number of epochs.
    pub epochs: u64,
}

fn net(m: &mut Dorado) -> &mut NetworkController {
    m.device_mut::<NetworkController>("network")
        .expect("cluster machines carry a network controller")
}

fn exchange(m: &mut Dorado, port: usize, fabric: &mut Fabric, now: u64, phase_send: bool) {
    if phase_send {
        for pkt in net(m).drain_transmitted() {
            fabric.send(port, pkt, now);
        }
    } else {
        for pkt in fabric.collect_for_port(port, now) {
            net(m).inject_packet(pkt);
        }
    }
}

/// Runs every machine for `cfg.epochs` epochs on the calling thread.
/// Machine *i* owns fabric port *i*.  `start_cycle` is the fabric
/// timestamp of the first boundary minus one epoch (pass the value a
/// previous call returned to continue).  Returns the final fabric time.
pub fn run_sequential(
    machines: &mut [Dorado],
    fabric: &mut Fabric,
    cfg: EpochConfig,
    start_cycle: u64,
) -> u64 {
    assert_eq!(machines.len(), fabric.ports(), "one machine per port");
    let mut now = start_cycle;
    for _ in 0..cfg.epochs {
        now += cfg.epoch_cycles;
        for m in machines.iter_mut() {
            m.run_quantum(cfg.epoch_cycles);
        }
        for (port, m) in machines.iter_mut().enumerate() {
            exchange(m, port, fabric, now, true);
        }
        for (port, m) in machines.iter_mut().enumerate() {
            exchange(m, port, fabric, now, false);
        }
    }
    now
}

/// Like [`run_sequential`], but each machine runs on its own OS thread;
/// the fabric is shared behind a mutex and the three phases are separated
/// by barriers.  Produces bit-identical machine statistics and fabric
/// counters.
pub fn run_parallel(
    machines: &mut [Dorado],
    fabric: &mut Fabric,
    cfg: EpochConfig,
    start_cycle: u64,
) -> u64 {
    assert_eq!(machines.len(), fabric.ports(), "one machine per port");
    if machines.is_empty() {
        return start_cycle + cfg.epochs * cfg.epoch_cycles;
    }
    let barrier = Barrier::new(machines.len());
    let shared = Mutex::new(fabric);
    std::thread::scope(|s| {
        for (port, m) in machines.iter_mut().enumerate() {
            let barrier = &barrier;
            let shared = &shared;
            s.spawn(move || {
                let mut now = start_cycle;
                for _ in 0..cfg.epochs {
                    now += cfg.epoch_cycles;
                    m.run_quantum(cfg.epoch_cycles);
                    barrier.wait();
                    exchange(m, port, &mut shared.lock().unwrap(), now, true);
                    barrier.wait();
                    exchange(m, port, &mut shared.lock().unwrap(), now, false);
                    barrier.wait();
                }
            });
        }
    });
    start_cycle + cfg.epochs * cfg.epoch_cycles
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fabric::FabricConfig;

    #[test]
    fn empty_cluster_advances_time() {
        let mut fabric = Fabric::new(&FabricConfig::default(), vec![]);
        let cfg = EpochConfig {
            epoch_cycles: 100,
            epochs: 7,
        };
        assert_eq!(run_sequential(&mut [], &mut fabric, cfg, 50), 750);
        assert_eq!(run_parallel(&mut [], &mut fabric, cfg, 50), 750);
    }
}
