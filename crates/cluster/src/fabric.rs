//! The Ethernet fabric: a switch connecting Dorado network controllers.
//!
//! The paper's machines shared a 3 Mbit/s experimental Ethernet (§2).  The
//! fabric models the medium between [`NetworkController`]s as a store-and-
//! forward switch: a packet transmitted out of port *s* is routed by its
//! first word (the destination address) and becomes deliverable at the
//! destination port after a latency of `latency_words` plus the packet's
//! own serialization time, all expressed in line-rate *word times*.
//!
//! Determinism is the design constraint: the parallel executor sends from
//! many threads, so nothing observable may depend on send interleaving.
//! Deliveries are ordered by `(due cycle, source port, per-fabric
//! sequence)` — the sequence counter is assigned under the fabric lock and
//! only ever compared between packets of the *same* source, where relative
//! order is fixed by the sender's FIFO — and the output-queue cap is
//! enforced per destination port at collect time, never at send time.
//!
//! [`NetworkController`]: dorado_io::NetworkController

use dorado_base::snap::{Reader, SnapError, Snapshot, Writer};
use dorado_base::{ClockConfig, FabricPortStats, FabricStats, Word};

/// Fabric parameters.
#[derive(Debug, Clone, Copy)]
pub struct FabricConfig {
    /// Line rate in Mbit/s (3.0 = the experimental Ethernet).
    pub mbps: f64,
    /// The cycle time the word clock is derived from.
    pub clock: ClockConfig,
    /// Switch latency in word times, added to every packet's serialization.
    pub latency_words: u64,
    /// Maximum packets that may remain queued toward one destination port
    /// across an epoch boundary; the newest beyond this are dropped.
    pub port_queue_limit: usize,
}

impl Default for FabricConfig {
    fn default() -> Self {
        FabricConfig {
            mbps: 3.0,
            clock: ClockConfig::default(),
            latency_words: 2,
            port_queue_limit: 32,
        }
    }
}

impl FabricConfig {
    /// Cycles per word time at this line rate and clock (at least 1).
    pub fn word_cycles(&self) -> u64 {
        // 16 bits/word ÷ (mbps·10⁶ bit/s) in ns, over the cycle time.
        let ns_per_word = 16.0 * 1000.0 / self.mbps;
        ((ns_per_word / self.clock.cycle_ns()).round() as u64).max(1)
    }
}

/// One packet either sent or delivered on a port, for latency matching.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PacketRecord {
    /// Cycle the packet was sent (tx log) or delivered (rx log).
    pub cycle: u64,
    /// The other end: destination address (tx) or source address (rx).
    pub peer: Word,
    /// The packet's third word (the workload's sequence number), 0 if the
    /// packet is shorter than three words.
    pub seq: Word,
    /// Packet length in words.
    pub len: usize,
}

#[derive(Debug)]
struct Delivery {
    due: u64,
    src: usize,
    seq: u64,
    dst: usize,
    words: Vec<Word>,
}

/// The switch.  Ports are dense indices; each is bound to one fabric
/// address (the value clients put in packet word 0).
#[derive(Debug)]
pub struct Fabric {
    word_cycles: u64,
    latency_words: u64,
    port_queue_limit: usize,
    addresses: Vec<Word>,
    in_flight: Vec<Delivery>,
    next_seq: u64,
    ports: Vec<FabricPortStats>,
    tx_log: Vec<Vec<PacketRecord>>,
    rx_log: Vec<Vec<PacketRecord>>,
}

impl Fabric {
    /// Creates a fabric with one port per entry of `addresses`.
    ///
    /// # Panics
    ///
    /// Panics if two ports share an address.
    pub fn new(config: &FabricConfig, addresses: Vec<Word>) -> Self {
        for (i, a) in addresses.iter().enumerate() {
            assert!(
                !addresses[..i].contains(a),
                "fabric address {a:#x} bound twice"
            );
        }
        let n = addresses.len();
        Fabric {
            word_cycles: config.word_cycles(),
            latency_words: config.latency_words,
            port_queue_limit: config.port_queue_limit,
            addresses,
            in_flight: Vec::new(),
            next_seq: 0,
            ports: vec![FabricPortStats::default(); n],
            tx_log: vec![Vec::new(); n],
            rx_log: vec![Vec::new(); n],
        }
    }

    /// Number of ports.
    pub fn ports(&self) -> usize {
        self.addresses.len()
    }

    /// Cycles per word time on the wire.
    pub fn word_cycles(&self) -> u64 {
        self.word_cycles
    }

    /// The fabric address bound to `port`.
    pub fn address(&self, port: usize) -> Word {
        self.addresses[port]
    }

    fn record(packet: &[Word], peer: Word, cycle: u64) -> PacketRecord {
        PacketRecord {
            cycle,
            peer,
            seq: packet.get(2).copied().unwrap_or(0),
            len: packet.len(),
        }
    }

    /// Accepts a packet transmitted out of `src` at cycle `now`.  Word 0
    /// addresses the destination; a packet addressed to no port is dropped
    /// and the drop charged to the source.
    ///
    /// # Panics
    ///
    /// Panics on an empty packet (controllers never emit one).
    pub fn send(&mut self, src: usize, packet: Vec<Word>, now: u64) {
        assert!(!packet.is_empty(), "fabric packets are non-empty");
        self.ports[src].tx_packets += 1;
        self.ports[src].tx_words += packet.len() as u64;
        self.tx_log[src].push(Self::record(&packet, packet[0], now));
        let Some(dst) = self.addresses.iter().position(|&a| a == packet[0]) else {
            self.ports[src].drops += 1;
            return;
        };
        let flight = (self.latency_words + packet.len() as u64) * self.word_cycles;
        self.in_flight.push(Delivery {
            due: now + flight,
            src,
            seq: self.next_seq,
            dst,
            words: packet,
        });
        self.next_seq += 1;
    }

    /// Extracts the packets due at `port` by cycle `now`, in deterministic
    /// `(due, src, seq)` order, and enforces the port's queue cap on
    /// whatever remains in flight toward it (newest dropped first —
    /// charged to the destination).
    pub fn collect_for_port(&mut self, port: usize, now: u64) -> Vec<Vec<Word>> {
        let mut due: Vec<Delivery> = Vec::new();
        let mut pending = 0usize;
        let mut i = 0;
        while i < self.in_flight.len() {
            if self.in_flight[i].dst == port {
                if self.in_flight[i].due <= now {
                    due.push(self.in_flight.swap_remove(i));
                    continue;
                }
                pending += 1;
            }
            i += 1;
        }
        due.sort_by_key(|d| (d.due, d.src, d.seq));
        if pending > self.port_queue_limit {
            let mut excess = pending - self.port_queue_limit;
            // Drop the newest (largest sort key) still-pending packets.
            let mut keys: Vec<(u64, usize, u64, usize)> = self
                .in_flight
                .iter()
                .enumerate()
                .filter(|(_, d)| d.dst == port)
                .map(|(i, d)| (d.due, d.src, d.seq, i))
                .collect();
            keys.sort_unstable();
            while excess > 0 {
                let (_, _, _, victim) = keys.pop().expect("excess implies entries");
                self.in_flight.swap_remove(victim);
                // Fix up indices displaced by swap_remove.
                let moved = self.in_flight.len();
                for k in &mut keys {
                    if k.3 == moved {
                        k.3 = victim;
                    }
                }
                self.ports[port].drops += 1;
                excess -= 1;
            }
        }
        due.into_iter()
            .map(|d| {
                self.ports[port].rx_packets += 1;
                self.ports[port].rx_words += d.words.len() as u64;
                self.rx_log[port]
                    .push(Self::record(&d.words, d.words.get(1).copied().unwrap_or(0), now));
                d.words
            })
            .collect()
    }

    /// Per-port counters plus the word clock, for the cluster report.
    pub fn stats(&self) -> FabricStats {
        FabricStats {
            ports: self.ports.clone(),
            word_cycles: self.word_cycles,
        }
    }

    /// Packets sent out of `port`, oldest first.
    pub fn tx_log(&self, port: usize) -> &[PacketRecord] {
        &self.tx_log[port]
    }

    /// Packets delivered to `port`, oldest first.
    pub fn rx_log(&self, port: usize) -> &[PacketRecord] {
        &self.rx_log[port]
    }
}

fn save_log(w: &mut Writer, log: &[PacketRecord]) {
    w.len(log.len());
    for r in log {
        w.u64(r.cycle);
        w.u16(r.peer);
        w.u16(r.seq);
        w.u64(r.len as u64);
    }
}

fn restore_log(r: &mut Reader<'_>) -> Result<Vec<PacketRecord>, SnapError> {
    let n = r.len()?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(PacketRecord {
            cycle: r.u64()?,
            peer: r.u16()?,
            seq: r.u16()?,
            len: r.u64()? as usize,
        });
    }
    Ok(out)
}

impl Snapshot for Fabric {
    fn save(&self, w: &mut Writer) {
        w.tag(b"FABR");
        w.word_seq(self.addresses.iter().copied());
        w.len(self.in_flight.len());
        for d in &self.in_flight {
            w.u64(d.due);
            w.u64(d.src as u64);
            w.u64(d.seq);
            w.u64(d.dst as u64);
            w.word_seq(d.words.iter().copied());
        }
        w.u64(self.next_seq);
        for p in &self.ports {
            p.save(w);
        }
        for log in &self.tx_log {
            save_log(w, log);
        }
        for log in &self.rx_log {
            save_log(w, log);
        }
    }

    fn restore(&mut self, r: &mut Reader<'_>) -> Result<(), SnapError> {
        r.tag(b"FABR")?;
        // Geometry (port addresses, and with them the port count) is
        // configuration; word_cycles/latency/queue-limit travel with it.
        if r.word_seq()? != self.addresses {
            return Err(SnapError::Mismatch {
                what: "fabric addresses",
            });
        }
        let n = r.len()?;
        self.in_flight.clear();
        for _ in 0..n {
            let due = r.u64()?;
            let src = r.u64()? as usize;
            let seq = r.u64()?;
            let dst = r.u64()? as usize;
            let words = r.word_seq()?;
            if src >= self.addresses.len() || dst >= self.addresses.len() {
                return Err(SnapError::Invalid {
                    what: "fabric port index",
                });
            }
            self.in_flight.push(Delivery {
                due,
                src,
                seq,
                dst,
                words,
            });
        }
        self.next_seq = r.u64()?;
        for p in &mut self.ports {
            p.restore(r)?;
        }
        for log in &mut self.tx_log {
            *log = restore_log(r)?;
        }
        for log in &mut self.rx_log {
            *log = restore_log(r)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fabric(n: usize) -> Fabric {
        let cfg = FabricConfig::default();
        Fabric::new(&cfg, (0..n).map(|i| 0x100 + i as Word).collect())
    }

    #[test]
    fn word_clock_from_rate_and_cycle() {
        // 3 Mbit/s at 60 ns: 16 bits take 5333 ns ≈ 89 cycles.
        assert_eq!(FabricConfig::default().word_cycles(), 89);
        let fast = FabricConfig {
            mbps: 3000.0,
            ..FabricConfig::default()
        };
        assert_eq!(fast.word_cycles(), 1, "clamped to one cycle per word");
    }

    #[test]
    fn routes_by_first_word_with_latency() {
        let mut f = fabric(2);
        f.send(0, vec![0x101, 0x100, 7, 42], 1000);
        let flight = (2 + 4) * 89;
        assert!(f.collect_for_port(1, 1000 + flight - 1).is_empty());
        let got = f.collect_for_port(1, 1000 + flight);
        assert_eq!(got, vec![vec![0x101, 0x100, 7, 42]]);
        let s = f.stats();
        assert_eq!(s.tx_packets(), 1);
        assert_eq!(s.rx_words(), 4);
        assert_eq!(s.drops(), 0);
        assert_eq!(f.tx_log(0), &[PacketRecord { cycle: 1000, peer: 0x101, seq: 7, len: 4 }]);
        assert_eq!(f.rx_log(1).len(), 1);
        assert_eq!(f.rx_log(1)[0].peer, 0x100, "rx peer is the source address");
    }

    #[test]
    fn unroutable_charged_to_source() {
        let mut f = fabric(2);
        f.send(0, vec![0xdead, 0x100, 0], 0);
        let s = f.stats();
        assert_eq!(s.drops(), 1);
        assert_eq!(s.tx_packets(), 1, "tx counted even when dropped");
        assert_eq!(f.collect_for_port(1, u64::MAX), Vec::<Vec<Word>>::new());
    }

    #[test]
    fn deliveries_sorted_by_due_then_source() {
        let mut f = fabric(3);
        // Port 2 hears from both peers; the longer packet sent earlier
        // lands later.
        f.send(1, vec![0x102, 0x101, 1, 0, 0, 0, 0, 0], 0);
        f.send(0, vec![0x102, 0x100, 2], 0);
        let got = f.collect_for_port(2, u64::MAX);
        assert_eq!(got[0][1], 0x100, "short packet arrives first");
        assert_eq!(got[1][1], 0x101);
    }

    #[test]
    fn queue_cap_drops_newest_pending() {
        let cfg = FabricConfig {
            port_queue_limit: 2,
            ..FabricConfig::default()
        };
        let mut f = Fabric::new(&cfg, vec![0x100, 0x101]);
        for seq in 0..5 {
            f.send(0, vec![0x101, 0x100, seq], 0);
        }
        // Nothing due yet: the cap trims the backlog to 2, dropping the
        // 3 newest.
        assert!(f.collect_for_port(1, 0).is_empty());
        assert_eq!(f.stats().ports[1].drops, 3);
        let got = f.collect_for_port(1, u64::MAX);
        assert_eq!(got.len(), 2);
        assert_eq!((got[0][2], got[1][2]), (0, 1), "oldest survive");
    }

    #[test]
    #[should_panic(expected = "bound twice")]
    fn duplicate_addresses_rejected() {
        let cfg = FabricConfig::default();
        let _ = Fabric::new(&cfg, vec![0x100, 0x100]);
    }
}
