//! The Ethernet fabric: a switch connecting Dorado network controllers.
//!
//! The paper's machines shared a 3 Mbit/s experimental Ethernet (§2).  The
//! fabric models the medium between [`NetworkController`]s as a store-and-
//! forward switch: a packet transmitted out of port *s* is routed by its
//! first word (the destination address) and becomes deliverable at the
//! destination port after a latency of `latency_words` plus the packet's
//! own serialization time, all expressed in line-rate *word times*.
//!
//! Determinism is the design constraint: the parallel executors send from
//! many threads, so nothing observable may depend on send interleaving.
//! Deliveries are ordered by `(due cycle, source port, per-fabric
//! sequence)` — the sequence counter is atomic and only ever compared
//! between packets of the *same* source, where relative order is fixed by
//! the sender's FIFO — and the output-queue cap is enforced per
//! destination port at collect time, never at send time.
//!
//! Internally the switch is *sharded per port* so a worker pool can drive
//! it without a global lock: each destination port owns a shard (its
//! in-flight queue, delivery counters, and receive log) behind its own
//! mutex, and each source port owns its transmit counters and log the
//! same way.  [`Fabric::send`] and [`Fabric::collect_for_port`] therefore
//! take `&self`: sends touch one tx record and one destination shard,
//! collects touch exactly one shard, and two collects for different ports
//! never contend.  Deliveries destined to different ports are disjoint,
//! so collect order across ports is immaterial — the property the pool
//! executor's determinism contract rests on.
//!
//! [`NetworkController`]: dorado_io::NetworkController

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use dorado_base::snap::{Reader, SnapError, Snapshot, Writer};
use dorado_base::{ClockConfig, FabricPortStats, FabricStats, Word};

/// Fabric parameters.
#[derive(Debug, Clone, Copy)]
pub struct FabricConfig {
    /// Line rate in Mbit/s (3.0 = the experimental Ethernet).
    pub mbps: f64,
    /// The cycle time the word clock is derived from.
    pub clock: ClockConfig,
    /// Switch latency in word times, added to every packet's serialization.
    pub latency_words: u64,
    /// Maximum packets that may remain queued toward one destination port
    /// across an epoch boundary; the newest beyond this are dropped.
    pub port_queue_limit: usize,
}

impl Default for FabricConfig {
    fn default() -> Self {
        FabricConfig {
            mbps: 3.0,
            clock: ClockConfig::default(),
            latency_words: 2,
            port_queue_limit: 32,
        }
    }
}

impl FabricConfig {
    /// Cycles per word time at this line rate and clock (at least 1).
    pub fn word_cycles(&self) -> u64 {
        // 16 bits/word ÷ (mbps·10⁶ bit/s) in ns, over the cycle time.
        let ns_per_word = 16.0 * 1000.0 / self.mbps;
        ((ns_per_word / self.clock.cycle_ns()).round() as u64).max(1)
    }
}

/// One packet either sent or delivered on a port, for latency matching.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PacketRecord {
    /// Cycle the packet was committed to the wire (tx log — the sender's
    /// completion stamp when the executor supplies one, else the epoch
    /// boundary) or delivered (rx log — always an epoch boundary).
    pub cycle: u64,
    /// The other end: destination address (tx) or source address (rx).
    pub peer: Word,
    /// The packet's third word (the workload's sequence number), 0 if the
    /// packet is shorter than three words.
    pub seq: Word,
    /// Packet length in words.
    pub len: usize,
}

#[derive(Debug)]
struct Delivery {
    due: u64,
    src: usize,
    seq: u64,
    words: Vec<Word>,
}

/// The transmit side of one source port: counters and log.  Touched only
/// by whoever is sending on behalf of that port, under its own lock.
#[derive(Debug, Default)]
struct TxPort {
    packets: u64,
    words: u64,
    /// Unroutable packets, charged to this source.
    drops: u64,
    log: Vec<PacketRecord>,
}

/// The receive shard of one destination port: the in-flight queue plus
/// delivery counters and log.  A collect for port *p* touches shard *p*
/// and nothing else.
#[derive(Debug, Default)]
struct PortShard {
    in_flight: Vec<Delivery>,
    packets: u64,
    words: u64,
    /// Queue-cap overflow, charged to this destination.
    drops: u64,
    log: Vec<PacketRecord>,
}

/// The switch.  Ports are dense indices; each is bound to one fabric
/// address (the value clients put in packet word 0).
#[derive(Debug)]
pub struct Fabric {
    word_cycles: u64,
    latency_words: u64,
    port_queue_limit: usize,
    addresses: Vec<Word>,
    next_seq: AtomicU64,
    tx: Vec<Mutex<TxPort>>,
    shards: Vec<Mutex<PortShard>>,
}

impl Fabric {
    /// Creates a fabric with one port per entry of `addresses`.
    ///
    /// # Panics
    ///
    /// Panics if two ports share an address.
    pub fn new(config: &FabricConfig, addresses: Vec<Word>) -> Self {
        for (i, a) in addresses.iter().enumerate() {
            assert!(
                !addresses[..i].contains(a),
                "fabric address {a:#x} bound twice"
            );
        }
        let n = addresses.len();
        Fabric {
            word_cycles: config.word_cycles(),
            latency_words: config.latency_words,
            port_queue_limit: config.port_queue_limit,
            addresses,
            next_seq: AtomicU64::new(0),
            tx: (0..n).map(|_| Mutex::new(TxPort::default())).collect(),
            shards: (0..n).map(|_| Mutex::new(PortShard::default())).collect(),
        }
    }

    /// Number of ports.
    pub fn ports(&self) -> usize {
        self.addresses.len()
    }

    /// Cycles per word time on the wire.
    pub fn word_cycles(&self) -> u64 {
        self.word_cycles
    }

    /// The fabric address bound to `port`.
    pub fn address(&self, port: usize) -> Word {
        self.addresses[port]
    }

    fn record(packet: &[Word], peer: Word, cycle: u64) -> PacketRecord {
        PacketRecord {
            cycle,
            peer,
            seq: packet.get(2).copied().unwrap_or(0),
            len: packet.len(),
        }
    }

    /// Accepts a packet transmitted out of `src` at boundary cycle `now`,
    /// logging it at `now`.  See [`Fabric::send_stamped`].
    pub fn send(&self, src: usize, packet: Vec<Word>, now: u64) {
        self.send_stamped(src, packet, now, now);
    }

    /// Accepts a packet transmitted out of `src` at boundary cycle `now`,
    /// logging the transmit at `tx_stamp` — the sender-side completion
    /// cycle a [`NetworkController`] stamps on each packet, which gives
    /// latency measurement sub-epoch resolution while flight time is still
    /// computed from the boundary (the delivery-determinism contract).
    /// Word 0 addresses the destination; a packet addressed to no port is
    /// dropped and the drop charged to the source.
    ///
    /// [`NetworkController`]: dorado_io::NetworkController
    ///
    /// # Panics
    ///
    /// Panics on an empty packet (controllers never emit one).
    pub fn send_stamped(&self, src: usize, packet: Vec<Word>, now: u64, tx_stamp: u64) {
        assert!(!packet.is_empty(), "fabric packets are non-empty");
        let dst = self.addresses.iter().position(|&a| a == packet[0]);
        {
            let mut tx = self.tx[src].lock().expect("fabric tx lock");
            tx.packets += 1;
            tx.words += packet.len() as u64;
            tx.log.push(Self::record(&packet, packet[0], tx_stamp));
            if dst.is_none() {
                tx.drops += 1;
                return;
            }
        }
        let flight = (self.latency_words + packet.len() as u64) * self.word_cycles;
        let delivery = Delivery {
            due: now + flight,
            src,
            seq: self.next_seq.fetch_add(1, Ordering::Relaxed),
            words: packet,
        };
        let dst = dst.expect("checked above");
        self.shards[dst]
            .lock()
            .expect("fabric shard lock")
            .in_flight
            .push(delivery);
    }

    /// Extracts the packets due at `port` by cycle `now`, in deterministic
    /// `(due, src, seq)` order, and enforces the port's queue cap on
    /// whatever remains in flight toward it (newest dropped first —
    /// charged to the destination).  Touches only port `port`'s shard, so
    /// concurrent collects for distinct ports neither contend nor observe
    /// each other — the pool executor collects all ports in parallel.
    pub fn collect_for_port(&self, port: usize, now: u64) -> Vec<Vec<Word>> {
        let mut sh = self.shards[port].lock().expect("fabric shard lock");
        if sh.in_flight.is_empty() {
            return Vec::new();
        }
        let mut due: Vec<Delivery> = Vec::new();
        let mut i = 0;
        while i < sh.in_flight.len() {
            if sh.in_flight[i].due <= now {
                due.push(sh.in_flight.swap_remove(i));
            } else {
                i += 1;
            }
        }
        due.sort_by_key(|d| (d.due, d.src, d.seq));
        if sh.in_flight.len() > self.port_queue_limit {
            // Drop the newest (largest sort key) still-pending packets.
            sh.in_flight.sort_by_key(|d| (d.due, d.src, d.seq));
            while sh.in_flight.len() > self.port_queue_limit {
                sh.in_flight.pop();
                sh.drops += 1;
            }
        }
        due.into_iter()
            .map(|d| {
                sh.packets += 1;
                sh.words += d.words.len() as u64;
                sh.log
                    .push(Self::record(&d.words, d.words.get(1).copied().unwrap_or(0), now));
                d.words
            })
            .collect()
    }

    /// Whether any packet is in flight toward `port` (due or not).  A
    /// cheap probe the pool executor uses to skip idle ports entirely.
    pub fn port_pending(&self, port: usize) -> bool {
        !self.shards[port]
            .lock()
            .expect("fabric shard lock")
            .in_flight
            .is_empty()
    }

    /// Per-port counters plus the word clock, for the cluster report.
    pub fn stats(&self) -> FabricStats {
        let ports = (0..self.ports())
            .map(|p| {
                let tx = self.tx[p].lock().expect("fabric tx lock");
                let sh = self.shards[p].lock().expect("fabric shard lock");
                FabricPortStats {
                    tx_packets: tx.packets,
                    tx_words: tx.words,
                    rx_packets: sh.packets,
                    rx_words: sh.words,
                    drops: tx.drops + sh.drops,
                }
            })
            .collect();
        FabricStats {
            ports,
            word_cycles: self.word_cycles,
        }
    }

    /// Packets sent out of `port`, oldest first.  The tx cycle of each
    /// record is the sender's completion stamp when the executor supplied
    /// one (see [`Fabric::send_stamped`]).
    pub fn tx_log(&self, port: usize) -> Vec<PacketRecord> {
        self.tx[port].lock().expect("fabric tx lock").log.clone()
    }

    /// Packets delivered to `port`, oldest first.
    pub fn rx_log(&self, port: usize) -> Vec<PacketRecord> {
        self.shards[port].lock().expect("fabric shard lock").log.clone()
    }
}

fn save_log(w: &mut Writer, log: &[PacketRecord]) {
    w.len(log.len());
    for r in log {
        w.u64(r.cycle);
        w.u16(r.peer);
        w.u16(r.seq);
        w.u64(r.len as u64);
    }
}

fn restore_log(r: &mut Reader<'_>) -> Result<Vec<PacketRecord>, SnapError> {
    let n = r.len()?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(PacketRecord {
            cycle: r.u64()?,
            peer: r.u16()?,
            seq: r.u16()?,
            len: r.u64()? as usize,
        });
    }
    Ok(out)
}

impl Snapshot for Fabric {
    fn save(&self, w: &mut Writer) {
        w.tag(b"FABR");
        w.word_seq(self.addresses.iter().copied());
        // In-flight deliveries across all shards, serialized in global
        // sequence order so the image is independent of shard layout and
        // of the (sort-on-eviction) in-shard ordering.
        let mut flat: Vec<(u64, usize, u64, usize, Vec<Word>)> = Vec::new();
        for (dst, shard) in self.shards.iter().enumerate() {
            let sh = shard.lock().expect("fabric shard lock");
            for d in &sh.in_flight {
                flat.push((d.due, d.src, d.seq, dst, d.words.clone()));
            }
        }
        flat.sort_by_key(|&(_, _, seq, _, _)| seq);
        w.len(flat.len());
        for (due, src, seq, dst, words) in &flat {
            w.u64(*due);
            w.u64(*src as u64);
            w.u64(*seq);
            w.u64(*dst as u64);
            w.word_seq(words.iter().copied());
        }
        w.u64(self.next_seq.load(Ordering::Relaxed));
        for tx in &self.tx {
            let tx = tx.lock().expect("fabric tx lock");
            w.u64(tx.packets);
            w.u64(tx.words);
            w.u64(tx.drops);
            save_log(w, &tx.log);
        }
        for shard in &self.shards {
            let sh = shard.lock().expect("fabric shard lock");
            w.u64(sh.packets);
            w.u64(sh.words);
            w.u64(sh.drops);
            save_log(w, &sh.log);
        }
    }

    fn restore(&mut self, r: &mut Reader<'_>) -> Result<(), SnapError> {
        r.tag(b"FABR")?;
        // Geometry (port addresses, and with them the port count) is
        // configuration; word_cycles/latency/queue-limit travel with it.
        if r.word_seq()? != self.addresses {
            return Err(SnapError::Mismatch {
                what: "fabric addresses",
            });
        }
        let n = r.len()?;
        for shard in &mut self.shards {
            shard.get_mut().expect("fabric shard lock").in_flight.clear();
        }
        for _ in 0..n {
            let due = r.u64()?;
            let src = r.u64()? as usize;
            let seq = r.u64()?;
            let dst = r.u64()? as usize;
            let words = r.word_seq()?;
            if src >= self.addresses.len() || dst >= self.addresses.len() {
                return Err(SnapError::Invalid {
                    what: "fabric port index",
                });
            }
            self.shards[dst]
                .get_mut()
                .expect("fabric shard lock")
                .in_flight
                .push(Delivery {
                    due,
                    src,
                    seq,
                    words,
                });
        }
        *self.next_seq.get_mut() = r.u64()?;
        for tx in &mut self.tx {
            let tx = tx.get_mut().expect("fabric tx lock");
            tx.packets = r.u64()?;
            tx.words = r.u64()?;
            tx.drops = r.u64()?;
            tx.log = restore_log(r)?;
        }
        for shard in &mut self.shards {
            let sh = shard.get_mut().expect("fabric shard lock");
            sh.packets = r.u64()?;
            sh.words = r.u64()?;
            sh.drops = r.u64()?;
            sh.log = restore_log(r)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fabric(n: usize) -> Fabric {
        let cfg = FabricConfig::default();
        Fabric::new(&cfg, (0..n).map(|i| 0x100 + i as Word).collect())
    }

    #[test]
    fn word_clock_from_rate_and_cycle() {
        // 3 Mbit/s at 60 ns: 16 bits take 5333 ns ≈ 89 cycles.
        assert_eq!(FabricConfig::default().word_cycles(), 89);
        let fast = FabricConfig {
            mbps: 3000.0,
            ..FabricConfig::default()
        };
        assert_eq!(fast.word_cycles(), 1, "clamped to one cycle per word");
    }

    #[test]
    fn routes_by_first_word_with_latency() {
        let f = fabric(2);
        f.send(0, vec![0x101, 0x100, 7, 42], 1000);
        let flight = (2 + 4) * 89;
        assert!(f.collect_for_port(1, 1000 + flight - 1).is_empty());
        assert!(f.port_pending(1));
        let got = f.collect_for_port(1, 1000 + flight);
        assert_eq!(got, vec![vec![0x101, 0x100, 7, 42]]);
        assert!(!f.port_pending(1));
        let s = f.stats();
        assert_eq!(s.tx_packets(), 1);
        assert_eq!(s.rx_words(), 4);
        assert_eq!(s.drops(), 0);
        assert_eq!(f.tx_log(0), vec![PacketRecord { cycle: 1000, peer: 0x101, seq: 7, len: 4 }]);
        assert_eq!(f.rx_log(1).len(), 1);
        assert_eq!(f.rx_log(1)[0].peer, 0x100, "rx peer is the source address");
    }

    #[test]
    fn stamped_sends_log_the_completion_cycle() {
        let f = fabric(2);
        // Committed mid-epoch at 940, drained at the 1000 boundary: the tx
        // log keeps the completion stamp, flight time runs from the
        // boundary.
        f.send_stamped(0, vec![0x101, 0x100, 9], 1000, 940);
        assert_eq!(f.tx_log(0)[0].cycle, 940);
        let flight = (2 + 3) * 89;
        assert!(f.collect_for_port(1, 1000 + flight - 1).is_empty());
        let got = f.collect_for_port(1, 1000 + flight);
        assert_eq!(got.len(), 1);
        assert_eq!(f.rx_log(1)[0].cycle, 1000 + flight);
    }

    #[test]
    fn unroutable_charged_to_source() {
        let f = fabric(2);
        f.send(0, vec![0xdead, 0x100, 0], 0);
        let s = f.stats();
        assert_eq!(s.drops(), 1);
        assert_eq!(s.ports[0].drops, 1, "charged to the source port");
        assert_eq!(s.tx_packets(), 1, "tx counted even when dropped");
        assert_eq!(f.collect_for_port(1, u64::MAX), Vec::<Vec<Word>>::new());
    }

    #[test]
    fn deliveries_sorted_by_due_then_source() {
        let f = fabric(3);
        // Port 2 hears from both peers; the longer packet sent earlier
        // lands later.
        f.send(1, vec![0x102, 0x101, 1, 0, 0, 0, 0, 0], 0);
        f.send(0, vec![0x102, 0x100, 2], 0);
        let got = f.collect_for_port(2, u64::MAX);
        assert_eq!(got[0][1], 0x100, "short packet arrives first");
        assert_eq!(got[1][1], 0x101);
    }

    #[test]
    fn queue_cap_drops_newest_pending() {
        let cfg = FabricConfig {
            port_queue_limit: 2,
            ..FabricConfig::default()
        };
        let f = Fabric::new(&cfg, vec![0x100, 0x101]);
        for seq in 0..5 {
            f.send(0, vec![0x101, 0x100, seq], 0);
        }
        // Nothing due yet: the cap trims the backlog to 2, dropping the
        // 3 newest.
        assert!(f.collect_for_port(1, 0).is_empty());
        assert_eq!(f.stats().ports[1].drops, 3);
        let got = f.collect_for_port(1, u64::MAX);
        assert_eq!(got.len(), 2);
        assert_eq!((got[0][2], got[1][2]), (0, 1), "oldest survive");
    }

    #[test]
    fn snapshot_round_trips_across_shards() {
        use dorado_base::snap::{restore_image, save_image};
        let f = fabric(3);
        f.send(0, vec![0x101, 0x100, 1], 0);
        f.send(1, vec![0x102, 0x101, 2], 0);
        f.send(2, vec![0xdead, 0x102, 3], 0); // unroutable: tx drop
        let _ = f.collect_for_port(1, u64::MAX); // one delivered
        let img = save_image(&f);
        let mut g = fabric(3);
        restore_image(&mut g, &img).unwrap();
        assert_eq!(save_image(&g), img);
        assert_eq!(g.stats(), f.stats());
        // The still-in-flight packet survives into the restored fabric.
        assert_eq!(g.collect_for_port(2, u64::MAX).len(), 1);
    }

    #[test]
    #[should_panic(expected = "bound twice")]
    fn duplicate_addresses_rejected() {
        let cfg = FabricConfig::default();
        let _ = Fabric::new(&cfg, vec![0x100, 0x100]);
    }
}
