//! Deterministic fault injection against the epoch executor.
//!
//! Two fault models, both driven by the seeded splitmix64 generator of
//! [`dorado_base::check`] so every failure is replayable from its seed:
//!
//! * [`kill_and_recover`] — a machine "crashes" mid-workload (its
//!   registers, stacks, and program counters are scrambled); the cluster
//!   rolls back to the checkpoint taken at the last epoch barrier and
//!   replays.  Because checkpoints capture *all* dynamic state, the
//!   recovered run must reproduce the uninterrupted run's
//!   [`ClusterReport`](dorado_base::ClusterReport) bit for bit — asserted
//!   by the recovery test.
//! * [`PacketMangler`] — packets leaving a controller are corrupted
//!   (destination word rewritten to an address no port binds, so the
//!   fabric drops them and charges the source) or lost outright on the
//!   wire, exercising the drop and overrun accounting paths.

use dorado_base::check::Rng;
use dorado_base::task::TaskSet;
use dorado_base::{MicroAddr, Word};
use dorado_core::Dorado;
use dorado_io::NetworkController;

use crate::exec::Exec;
use crate::workload::ClusterSim;

/// What one [`kill_and_recover`] run did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Recovery {
    /// The 0-based epoch whose first run was destroyed and replayed.
    pub kill_epoch: u64,
    /// Size in bytes of the barrier checkpoint the recovery restored.
    pub checkpoint_bytes: usize,
    /// Simulated cycles re-executed by the replay.
    pub replayed_cycles: u64,
}

/// Scrambles everything a crash could plausibly destroy: the register
/// files, stacks, counters, program counters, ready set, and the network
/// controller's inbound queue.  Restore must overwrite all of it.
fn crash(m: &mut Dorado, rng: &mut Rng) {
    let dp = m.datapath_mut();
    for r in dp.rm.iter_mut() {
        *r = rng.word();
    }
    for s in dp.stack.iter_mut() {
        *s = rng.word();
    }
    for t in dp.t.iter_mut() {
        *t = rng.word();
    }
    dp.count = rng.word();
    dp.q = rng.word();
    dp.set_stackptr(rng.word() as u8);
    for io in dp.ioaddress.iter_mut() {
        *io = rng.word();
    }
    let c = m.control_mut();
    for pc in c.tpc.iter_mut() {
        *pc = MicroAddr::new(rng.word() & 0xfff);
    }
    for l in c.link.iter_mut() {
        *l = MicroAddr::new(rng.word() & 0xfff);
    }
    c.ready = TaskSet::from_bits(rng.word());
    c.this_pc = MicroAddr::new(rng.word() & 0xfff);
    if let Some(net) = m.device_mut::<NetworkController>("network") {
        net.inject_packet(vec![rng.word(), rng.word(), rng.word()]);
    }
}

/// Runs `sim` for `epochs` epochs under the chosen executor, killing
/// machine `victim` during epoch `kill_epoch` and recovering it from the
/// checkpoint taken at the barrier just before: the whole cluster rolls
/// back and replays the epoch, then the remaining epochs run normally.
/// The crash scramble is derived from `seed`, so a failing recovery is
/// replayable — under any executor, since all of them are bit-identical.
///
/// # Panics
///
/// Panics if `victim` is not a machine index or `kill_epoch >= epochs`.
pub fn kill_and_recover(
    sim: &mut ClusterSim,
    epochs: u64,
    kill_epoch: u64,
    victim: usize,
    seed: u64,
    exec: Exec,
) -> Recovery {
    assert!(victim < sim.machines.len(), "victim out of range");
    assert!(kill_epoch < epochs, "kill epoch beyond the run");
    let mut rng = Rng::new(seed);
    sim.run(kill_epoch, exec);
    let checkpoint = sim.save_checkpoint();
    let barrier_cycles = sim.cycles();
    // The epoch that will be lost: run it, then destroy the victim.
    sim.run(1, exec);
    crash(&mut sim.machines[victim], &mut rng);
    sim.restore_checkpoint(&checkpoint)
        .expect("checkpoint taken from this very cluster");
    // Replay the killed epoch and finish the run.
    sim.run(1, exec);
    let replayed_cycles = sim.cycles() - barrier_cycles;
    sim.run(epochs - kill_epoch - 1, exec);
    Recovery {
        kill_epoch,
        checkpoint_bytes: checkpoint.len(),
        replayed_cycles,
    }
}

/// A destination-address packets cannot reach: [`port_address`] hands out
/// `0x100 + port`, so the all-ones word never binds to a port and the
/// fabric charges a drop to the source.
///
/// [`port_address`]: crate::workload::port_address
pub const UNROUTABLE: Word = 0xffff;

/// A deterministic packet-fault injector for
/// [`run_sequential_mangled`](crate::exec::run_sequential_mangled) /
/// [`ClusterSim::run_mangled`]: each outbound packet is independently
/// lost on the wire with probability `drop_permille`/1000, else its
/// destination word is rewritten to [`UNROUTABLE`] with probability
/// `corrupt_permille`/1000.
#[derive(Debug, Clone)]
pub struct PacketMangler {
    rng: Rng,
    corrupt_permille: u64,
    drop_permille: u64,
    /// Packets whose destination word was corrupted.
    pub corrupted: u64,
    /// Packets lost on the wire (never reached the fabric).
    pub dropped: u64,
}

impl PacketMangler {
    /// Creates an injector from a seed and per-mille fault rates.
    pub fn new(seed: u64, corrupt_permille: u64, drop_permille: u64) -> Self {
        PacketMangler {
            rng: Rng::new(seed),
            corrupt_permille,
            drop_permille,
            corrupted: 0,
            dropped: 0,
        }
    }

    /// Applies the fault model to one outbound packet; `false` means the
    /// packet is lost on the wire.
    pub fn apply(&mut self, pkt: &mut [Word]) -> bool {
        if self.rng.chance(self.drop_permille, 1000) {
            self.dropped += 1;
            return false;
        }
        if self.rng.chance(self.corrupt_permille, 1000) && !pkt.is_empty() {
            pkt[0] = UNROUTABLE;
            self.corrupted += 1;
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{ClusterConfig, ClusterSim, Role};

    #[test]
    fn killed_machine_recovers_to_identical_report() {
        let cfg = ClusterConfig::pairs(4, 2, 1);
        let mut straight = ClusterSim::build(&cfg).unwrap();
        straight.run(60, Exec::Sequential);

        let mut faulted = ClusterSim::build(&cfg).unwrap();
        let recovery = kill_and_recover(&mut faulted, 60, 17, 3, 0xD0D0, Exec::Sequential);
        assert_eq!(recovery.kill_epoch, 17);
        assert!(recovery.checkpoint_bytes > 0);
        assert_eq!(recovery.replayed_cycles, 2_000, "one epoch replayed");

        assert_eq!(faulted.cycles(), straight.cycles());
        assert_eq!(faulted.report(), straight.report());
        // Stronger than the report: the full dynamic state is identical.
        assert_eq!(faulted.save_checkpoint(), straight.save_checkpoint());
    }

    #[test]
    fn recovery_from_any_victim_and_seed() {
        let cfg = ClusterConfig::pairs(2, 1, 1);
        let mut straight = ClusterSim::build(&cfg).unwrap();
        straight.run(30, Exec::Sequential);
        let want = straight.save_checkpoint();
        for (victim, seed) in [(0usize, 1u64), (1, 2), (0, 3)] {
            let mut faulted = ClusterSim::build(&cfg).unwrap();
            kill_and_recover(&mut faulted, 30, 9, victim, seed, Exec::Sequential);
            assert_eq!(
                faulted.save_checkpoint(),
                want,
                "victim {victim} seed {seed}"
            );
        }
    }

    #[test]
    fn recovery_runs_under_the_pool_executor() {
        // The production executor drives the same kill/restore/replay
        // sequence to the same final state as the sequential oracle.
        let cfg = ClusterConfig::pairs(4, 2, 1);
        let mut straight = ClusterSim::build(&cfg).unwrap();
        straight.run(40, Exec::Sequential);
        let want = straight.save_checkpoint();
        let mut faulted = ClusterSim::build(&cfg).unwrap();
        let recovery = kill_and_recover(&mut faulted, 40, 11, 1, 0xBEEF, Exec::Pool(3));
        assert_eq!(recovery.replayed_cycles, 2_000);
        assert_eq!(faulted.save_checkpoint(), want);
    }

    fn open_cluster() -> ClusterSim {
        let mut cfg = ClusterConfig::pairs(2, 0, 0);
        cfg.specs[1].role = Role::OpenClient {
            target: 0,
            period: 40,
            burst: 1,
            payload: 1,
        };
        ClusterSim::build(&cfg).unwrap()
    }

    #[test]
    fn mangled_packets_are_dropped_and_charged() {
        let mut sim = open_cluster();
        let mut mangler = PacketMangler::new(7, 400, 200);
        sim.run_mangled(120, Exec::Sequential, &mut |_, _, pkt| mangler.apply(pkt));
        assert!(mangler.corrupted > 0, "corruption never fired");
        assert!(mangler.dropped > 0, "wire loss never fired");
        // Every corrupted packet is unroutable: the fabric charges its
        // source; wire-dropped packets never reach the fabric at all.
        let report = sim.report();
        assert!(report.fabric().drops() >= mangler.corrupted);
        let clean_responses = {
            let mut clean = open_cluster();
            clean.run(120, Exec::Sequential);
            clean.responses()
        };
        assert!(
            sim.responses() < clean_responses,
            "faults must cost responses: {} vs {}",
            sim.responses(),
            clean_responses
        );
    }

    #[test]
    fn mangler_is_deterministic_under_either_executor() {
        let run = |exec| {
            let mut sim = open_cluster();
            let mut mangler = PacketMangler::new(42, 300, 100);
            sim.run_mangled(80, exec, &mut |_, _, pkt| mangler.apply(pkt));
            (sim.save_checkpoint(), mangler.corrupted, mangler.dropped)
        };
        let seq = run(Exec::Sequential);
        assert_eq!(seq, run(Exec::Sequential));
        // The pool executor calls the mangler in the same (epoch, port)
        // order, so the seeded fault schedule — and everything downstream
        // of it — is identical.
        assert_eq!(seq, run(Exec::Pool(2)));
        assert_eq!(seq, run(Exec::Pool(5)));
    }
}
